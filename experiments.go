package aapm

import "aapm/internal/experiment"

// Experiments regenerates the paper's tables and figures; see
// internal/experiment for the per-figure entry points.
type Experiments = experiment.Context

// ExperimentOptions configures an Experiments context.
type ExperimentOptions = experiment.Options

// NewExperiments builds an experiment context that caches runs shared
// across figures (e.g. the unconstrained 2 GHz suite baselines).
func NewExperiments(opts ExperimentOptions) (*Experiments, error) {
	return experiment.NewContext(opts)
}
