// Quickstart: run one SPEC workload on the simulated Pentium M under
// the paper's PerformanceMaximizer policy and print what happened.
package main

import (
	"fmt"
	"log"
	"os"

	"aapm"
)

func main() {
	// A platform with the paper's measurement chain (gain error, noise,
	// quantization). Seed fixes the run exactly.
	m, err := aapm.NewPlatform(aapm.PlatformConfig{Seed: 1, Chain: aapm.NIChain()})
	if err != nil {
		log.Fatal(err)
	}

	// ammp alternates memory- and core-bound phases — the workload the
	// paper uses for its PM and PS timelines (Figs. 5 and 8).
	w, err := aapm.Workload("ammp")
	if err != nil {
		log.Fatal(err)
	}

	// Unconstrained 2 GHz baseline.
	base, err := m.Run(w, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unconstrained: %6.2fs  %6.2fW avg  %7.1fJ\n",
		base.Duration.Seconds(), base.AvgPowerW(), base.EnergyJ)

	// PerformanceMaximizer with a 14.5 W power limit: the highest
	// frequency whose predicted power fits the limit, re-decided every
	// 10 ms from the decoded-instructions counter.
	pm, err := aapm.NewPerformanceMaximizer(aapm.PMConfig{LimitW: 14.5})
	if err != nil {
		log.Fatal(err)
	}
	run, err := m.Run(w, pm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PM @ 14.5 W:   %6.2fs  %6.2fW avg  %7.1fJ  (%d p-state changes)\n",
		run.Duration.Seconds(), run.AvgPowerW(), run.EnergyJ, run.Transitions)

	if err := run.TimelineSummary(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
