// Powercap: PerformanceMaximizer with runtime power-limit changes.
//
// The paper's PM prototype accepts a new power limit at any instant
// (delivered as SIGUSR1/SIGUSR2) so the system can ride through
// partial supply or cooling failures at the best still-safe
// performance (§IV-A). This example reproduces that scenario: the
// budget collapses from 17.5 W to 11.5 W mid-run — a failed fan — and
// recovers later.
package main

import (
	"fmt"
	"log"
	"time"

	"aapm"
)

// limitSchedule wraps a PerformanceMaximizer and applies timed limit
// changes, the simulation analogue of the prototype's signal handler.
type limitSchedule struct {
	pm      *aapm.PerformanceMaximizer
	changes []limitChange
}

type limitChange struct {
	at     time.Duration
	limitW float64
}

func (s *limitSchedule) Name() string { return s.pm.Name() + "+schedule" }

func (s *limitSchedule) Tick(info aapm.TickInfo) int {
	for len(s.changes) > 0 && info.Now >= s.changes[0].at {
		fmt.Printf("t=%5.1fs: power limit -> %.1f W\n",
			info.Now.Seconds(), s.changes[0].limitW)
		s.pm.SetLimit(s.changes[0].limitW)
		s.changes = s.changes[1:]
	}
	return s.pm.Tick(info)
}

func main() {
	m, err := aapm.NewPlatform(aapm.PlatformConfig{Seed: 42, Chain: aapm.NIChain()})
	if err != nil {
		log.Fatal(err)
	}
	// crafty is the suite's highest-power workload — the one a failing
	// cooling budget hurts most.
	w, err := aapm.Workload("crafty")
	if err != nil {
		log.Fatal(err)
	}

	pm, err := aapm.NewPerformanceMaximizer(aapm.PMConfig{LimitW: 17.5})
	if err != nil {
		log.Fatal(err)
	}
	gov := &limitSchedule{
		pm: pm,
		changes: []limitChange{
			{at: 8 * time.Second, limitW: 11.5},  // fan failure
			{at: 16 * time.Second, limitW: 17.5}, // repaired
		},
	}
	run, err := m.Run(w, gov)
	if err != nil {
		log.Fatal(err)
	}

	// Per-second residency digest: watch the policy track the budget.
	fmt.Printf("\n%6s %9s %9s\n", "t(s)", "avg MHz", "avg W")
	var secMHz, secW float64
	var secDur time.Duration
	next := time.Second
	for _, row := range run.Rows {
		secMHz += float64(row.FreqMHz) * row.Interval.Seconds()
		secW += row.MeasuredPowerW * row.Interval.Seconds()
		secDur += row.Interval
		if row.T+row.Interval >= next {
			d := secDur.Seconds()
			fmt.Printf("%6.0f %9.0f %9.2f\n", next.Seconds(), secMHz/d, secW/d)
			secMHz, secW, secDur = 0, 0, 0
			next += time.Second
		}
	}
	fmt.Printf("\ncompleted in %.2fs, %.1fJ, %d p-state changes\n",
		run.Duration.Seconds(), run.EnergyJ, run.Transitions)
}
