// Cluster: one power budget shared across several machines, enforced
// closed-loop.
//
// The paper motivates PM with components sharing supply and cooling
// (§IV-A: "controlling multiple components with shared power supply/
// cooling resources"). This example co-simulates four machines in
// lockstep under one 56 W cap. Each machine runs PM with measured-
// power feedback; every 500 ms a coordinator water-fills the budget
// over the machines' corrected demand signals, so slack left by
// memory-bound workloads flows to the power-hungry node. Compare the
// naive equal split: same cap, but a quarter each, forever.
package main

import (
	"fmt"
	"log"

	"aapm"
)

const budgetW = 56.0

func main() {
	names := []string{"swim", "mcf", "lucas", "crafty"}

	equal, err := run(names, true)
	if err != nil {
		log.Fatal(err)
	}
	demand, err := run(names, false)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("shared %.0f W budget, four machines\n\n", budgetW)
	fmt.Printf("%-8s %14s %14s\n", "machine", "equal split", "demand-aware")
	for i, n := range names {
		fmt.Printf("%-8s %13.2fs %13.2fs\n", n,
			equal.Runs[i].Duration.Seconds(), demand.Runs[i].Duration.Seconds())
	}
	fmt.Printf("\nmachine-seconds: equal %.1f, demand-aware %.1f (%.1f%% faster)\n",
		equal.MachineSeconds, demand.MachineSeconds,
		(equal.MachineSeconds/demand.MachineSeconds-1)*100)
	fmt.Printf("budget exceeded: equal %.1f%%, demand-aware %.1f%% of intervals (peaks %.1f / %.1f W)\n",
		equal.OverFrac*100, demand.OverFrac*100, equal.PeakTotalW, demand.PeakTotalW)
}

func run(names []string, static bool) (*aapm.ClusterResult, error) {
	var nodes []aapm.ClusterNode
	for _, n := range names {
		w, err := aapm.Workload(n)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, aapm.ClusterNode{Workload: w})
	}
	return aapm.RunCluster(aapm.ClusterConfig{
		BudgetW: budgetW,
		Nodes:   nodes,
		Seed:    7,
		Chain:   aapm.NIChain(),
		Static:  static,
	})
}
