// Energysaver: PowerSave across performance floors.
//
// PS conserves energy even at full load by relaxing performance to an
// explicit floor (§IV-B) — unlike utilization governors, which only
// save when the machine is idle. This example contrasts the two on a
// mix of workload types and shows how the benefit depends on
// memory-boundedness.
package main

import (
	"fmt"
	"log"

	"aapm"
)

func main() {
	workloads := []string{"swim", "mcf", "gap", "bzip2", "sixtrack"}
	floors := []float64{0.9, 0.8, 0.6}

	m, err := aapm.NewPlatform(aapm.PlatformConfig{Seed: 11, Chain: aapm.NIChain()})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %10s", "workload", "ondemand")
	for _, f := range floors {
		fmt.Printf("   PS@%2.0f%%      ", f*100)
	}
	fmt.Println()

	for _, name := range workloads {
		w, err := aapm.Workload(name)
		if err != nil {
			log.Fatal(err)
		}
		base, err := m.Run(w, nil)
		if err != nil {
			log.Fatal(err)
		}

		// The ondemand baseline: at 100% utilization it never leaves
		// the top frequency, so it saves nothing on these workloads.
		od, err := m.Run(w, &aapm.OnDemand{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %9.1f%%", name, savings(base, od)*100)

		for _, f := range floors {
			ps, err := aapm.NewPowerSave(aapm.PSConfig{Floor: f})
			if err != nil {
				log.Fatal(err)
			}
			run, err := m.Run(w, ps)
			if err != nil {
				log.Fatal(err)
			}
			loss := 1 - base.Duration.Seconds()/run.Duration.Seconds()
			fmt.Printf("   %5.1f%%/-%4.1f%%", savings(base, run)*100, loss*100)
		}
		fmt.Println()
	}
	fmt.Println("\ncells are energy-savings% / performance-loss% against full speed;")
	fmt.Println("memory-bound workloads (swim, mcf) save the most for the least loss.")
}

func savings(base, run *aapm.Run) float64 {
	return 1 - run.MeasuredEnergyJ/base.MeasuredEnergyJ
}
