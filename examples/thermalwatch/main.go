// Thermalwatch: keep the die under a temperature ceiling with DVFS.
//
// The paper's methodology (monitor -> estimate -> control) extends
// naturally from power limits to thermal envelopes — the closed-loop
// control its related-work section describes for Intel's Foxton. This
// example enables the platform's RC thermal model and compares an
// unmanaged run of the suite's hottest workload against reactive and
// predictive thermal guards.
package main

import (
	"fmt"
	"log"

	"aapm"
)

const limitC = 75

func main() {
	tc := aapm.PentiumMThermal()
	fmt.Printf("thermal path: ambient %.0f°C, %.1f°C/W, tau %s\n",
		tc.AmbientC, tc.ResistanceCW, tc.TimeConstant())
	fmt.Printf("a sustained %.1f W settles at %.1f°C — above the %d°C ceiling\n\n",
		17.8, tc.SteadyC(17.8), limitC)

	run("unmanaged 2 GHz", tc, nil)

	reactive, err := aapm.NewThermalGuard(aapm.ThermalGuardConfig{
		LimitC: limitC, Thermal: tc, Reactive: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	run("reactive guard", tc, reactive)

	predictive, err := aapm.NewThermalGuard(aapm.ThermalGuardConfig{
		LimitC: limitC, Thermal: tc,
	})
	if err != nil {
		log.Fatal(err)
	}
	run("predictive guard", tc, predictive)
}

func run(label string, tc aapm.ThermalConfig, gov aapm.Governor) {
	m, err := aapm.NewPlatform(aapm.PlatformConfig{
		Seed: 3, Chain: aapm.NIChain(), Thermal: &tc,
	})
	if err != nil {
		log.Fatal(err)
	}
	w, err := aapm.Workload("crafty")
	if err != nil {
		log.Fatal(err)
	}
	r, err := m.Run(w, gov)
	if err != nil {
		log.Fatal(err)
	}
	var maxC float64
	over := 0
	for _, row := range r.Rows {
		if row.TempC > maxC {
			maxC = row.TempC
		}
		if row.TempC > limitC {
			over++
		}
	}
	fmt.Printf("%-18s %6.2fs  max %5.1f°C  %5.1f%% of time over %d°C\n",
		label, r.Duration.Seconds(), maxC,
		100*float64(over)/float64(len(r.Rows)), limitC)
}
