// Package aapm is a reproduction of "Application-Aware Power
// Management" (Rajamani, Hanson, Rubio, Ghiasi, Rawson — IBM Austin
// Research Lab, IISWC 2006) as a self-contained Go library.
//
// The package exposes the system the paper prototypes — the
// three-phase monitor/estimate/control methodology, the counter-based
// power and performance models, and the PerformanceMaximizer (PM) and
// PowerSave (PS) policies — on a deterministic simulated Pentium M 755
// platform (p-states, PMU, sense-resistor power measurement, cache
// hierarchy, and a synthetic SPEC CPU2000 suite).
//
// Quick start:
//
//	m, _ := aapm.NewPlatform(aapm.PlatformConfig{Seed: 1})
//	w, _ := aapm.Workload("ammp")
//	pm, _ := aapm.NewPerformanceMaximizer(aapm.PMConfig{LimitW: 14.5})
//	run, _ := m.Run(w, pm)
//	fmt.Printf("%.2fs at %.2fW average\n", run.Duration.Seconds(), run.AvgPowerW())
//
// The experiment entry points that regenerate every table and figure
// of the paper's evaluation live behind NewExperiments; the runnable
// commands are cmd/aapm-run, cmd/aapm-train and cmd/aapm-eval.
package aapm

import (
	"io"

	"aapm/internal/cluster"
	"aapm/internal/control"
	"aapm/internal/faults"
	"aapm/internal/intent"
	"aapm/internal/kernel"
	"aapm/internal/machine"
	"aapm/internal/metrics"
	"aapm/internal/mixes"
	"aapm/internal/model"
	"aapm/internal/phase"
	"aapm/internal/pstate"
	"aapm/internal/sensor"
	"aapm/internal/serve"
	"aapm/internal/spec"
	"aapm/internal/telemetry"
	"aapm/internal/thermal"
	"aapm/internal/trace"
)

// Platform is the simulated Pentium M machine workloads run on.
type Platform = machine.Machine

// PlatformConfig configures a Platform; the zero value selects the
// paper's setup (Pentium M 755 table, NI-like measurement chain is NOT
// implied — pass Chain: aapm.NIChain() to add realistic noise).
type PlatformConfig = machine.Config

// TickInfo is what a governor observes each 10 ms interval.
type TickInfo = machine.TickInfo

// Governor is a power-management policy driving p-state decisions.
type Governor = machine.Governor

// Session is an in-progress run advanced one monitoring interval at a
// time; subscribe Hooks to it before stepping.
type Session = machine.Session

// Hook observes the staged tick engine: one OnTick per interval, plus
// transition, degradation and run-done events. Embed HookBase and
// override only what you need, then pass the hook to
// Platform.RunWith or Session.Subscribe.
type Hook = machine.Hook

// HookBase is a no-op Hook for embedding.
type HookBase = machine.BaseHook

// TickState is the per-interval record the staged engine delivers to
// every Hook.
type TickState = machine.TickState

// Transition describes one p-state change the engine's actuate stage
// resolved.
type Transition = machine.Transition

// RunMetrics aggregates per-run engine counters (ticks, transitions,
// stall time, energy, violations, per-stage wall-clock) from the Hook
// bus; see NewMetricsCollector.
type RunMetrics = metrics.Collector

// NewMetricsCollector returns a Hook that aggregates engine counters
// over one run. limitW > 0 additionally counts intervals whose
// measured power exceeded it; pass 0 to disable violation counting.
func NewMetricsCollector(limitW float64) *RunMetrics {
	return &metrics.Collector{LimitW: limitW}
}

// Run is a recorded workload execution.
type Run = trace.Run

// TraceRow is one 10 ms interval of a Run.
type TraceRow = trace.Row

// PState is one voltage/frequency operating point.
type PState = pstate.PState

// PStateTable is an ordered set of p-states.
type PStateTable = pstate.Table

// WorkloadSpec is a phase-trace workload description.
type WorkloadSpec = phase.Workload

// PhaseParams describes one workload phase.
type PhaseParams = phase.Params

// PMConfig configures a PerformanceMaximizer.
type PMConfig = control.PMConfig

// PSConfig configures a PowerSave policy.
type PSConfig = control.PSConfig

// PerformanceMaximizer is the paper's PM policy: the highest frequency
// whose predicted power fits a runtime-adjustable limit.
type PerformanceMaximizer = control.PerformanceMaximizer

// PowerSave is the paper's PS policy: the lowest frequency whose
// predicted performance clears a floor.
type PowerSave = control.PowerSave

// StaticClock pins one p-state (the conventional baseline).
type StaticClock = control.StaticClock

// OnDemand is a Linux-ondemand-style utilization governor baseline.
type OnDemand = control.OnDemand

// PowerModel is the per-p-state DPC power model (paper eq. 2).
type PowerModel = model.PowerModel

// PerfModel is the two-class IPC projection model (paper eq. 3).
type PerfModel = model.PerfModel

// ThermalConfig describes a package thermal path (RC model).
type ThermalConfig = thermal.Config

// ThermalGuardConfig configures a ThermalGuard policy.
type ThermalGuardConfig = control.ThermalGuardConfig

// ThermalGuard keeps die temperature under a limit by DVFS.
type ThermalGuard = control.ThermalGuard

// ThrottleSaveConfig configures a ThrottleSave policy.
type ThrottleSaveConfig = control.ThrottleSaveConfig

// ThrottleSave meets a performance floor with ACPI T-state clock
// modulation instead of DVFS (the ablation partner of PowerSave).
type ThrottleSave = control.ThrottleSave

// NewPlatform builds a simulated platform.
func NewPlatform(cfg PlatformConfig) (*Platform, error) { return machine.New(cfg) }

// PentiumM755 returns the paper platform's p-state table (Table II
// voltage/frequency pairs).
func PentiumM755() *PStateTable { return pstate.PentiumM755() }

// NIChain returns a measurement chain with the simulated DAQ's gain
// error, noise and quantization; use sensor-free PlatformConfig for
// ideal readings.
func NIChain() sensor.Chain { return sensor.NIDefault() }

// Workload returns a synthetic SPEC CPU2000 workload by name
// (see WorkloadNames).
func Workload(name string) (WorkloadSpec, error) { return spec.ByName(name) }

// WorkloadNames lists the 26 SPEC CPU2000 workloads in suite order.
func WorkloadNames() []string { return spec.Names() }

// NewPerformanceMaximizer builds a PM policy.
func NewPerformanceMaximizer(cfg PMConfig) (*PerformanceMaximizer, error) {
	return control.NewPerformanceMaximizer(cfg)
}

// NewPowerSave builds a PS policy.
func NewPowerSave(cfg PSConfig) (*PowerSave, error) { return control.NewPowerSave(cfg) }

// NewStaticClock builds a pinned-frequency baseline at p-state index i.
func NewStaticClock(i int, label string) *StaticClock { return control.NewStaticClock(i, label) }

// PaperPowerModel returns the published Table II power model.
func PaperPowerModel() *PowerModel { return model.PaperPowerModel() }

// PaperPerfModel returns eq. 3 with the published 1.21/0.81 values.
func PaperPerfModel() PerfModel { return model.PaperPerfModel() }

// PentiumMThermal returns the default package thermal path; pass its
// address in PlatformConfig.Thermal to enable the die-temperature
// model.
func PentiumMThermal() ThermalConfig { return thermal.PentiumMThermal() }

// NewThermalGuard builds a thermal-envelope policy.
func NewThermalGuard(cfg ThermalGuardConfig) (*ThermalGuard, error) {
	return control.NewThermalGuard(cfg)
}

// NewThrottleSave builds a T-state clock-modulation policy.
func NewThrottleSave(cfg ThrottleSaveConfig) (*ThrottleSave, error) {
	return control.NewThrottleSave(cfg)
}

// MixWorkloads returns the utilization-mix set (interactive office,
// web serving at 50% and 90%, full-load batch) used by the
// demand-based-switching comparison.
func MixWorkloads() []WorkloadSpec { return mixes.All() }

// ClusterNode assigns a workload to one machine in a shared-budget
// co-simulation.
type ClusterNode = cluster.Node

// ClusterConfig describes a shared-budget co-simulation.
type ClusterConfig = cluster.Config

// ClusterResult is a co-simulation outcome.
type ClusterResult = cluster.Result

// RunCluster co-simulates several machines under one power budget; see
// internal/cluster for the coordinator's water-filling policy.
func RunCluster(cfg ClusterConfig) (*ClusterResult, error) { return cluster.Run(cfg) }

// FleetConfig describes a hierarchical shared-budget co-simulation:
// the flat coordinator's budget policy run at every tier of an
// allocation tree (root over pods over racks over nodes), sized for
// fleets of 10⁵+ nodes in one process.
type FleetConfig = cluster.FleetConfig

// FleetResult is a hierarchical co-simulation outcome.
type FleetResult = cluster.FleetResult

// RunFleet co-simulates a node fleet under the hierarchical
// coordinator. A one-level fleet reproduces RunCluster byte for byte;
// deeper trees re-run the same allocator over per-group aggregates at
// each level. See the "Hierarchical fleet coordinator" section of
// DESIGN.md.
func RunFleet(cfg FleetConfig) (*FleetResult, error) { return cluster.RunFleet(cfg) }

// SyntheticFleetNodes builds n synthetic leaf nodes (three fixed
// profiles, round-robin) sized to run roughly the given number of
// 10 ms intervals each — the stock population for fleet-scale
// benchmarks.
func SyntheticFleetNodes(n, ticks int) []ClusterNode { return cluster.SyntheticFleet(n, ticks) }

// FleetGroupSpec declares a static per-group constraint (today a
// guaranteed minimum budget) for one level-1 group of a fleet, via
// FleetConfig.Groups.
type FleetGroupSpec = cluster.GroupSpec

// FleetControl is the fleet's control-plane seam: an implementation
// observes per-group aggregates at every epoch barrier and answers
// with budget directives and per-node overrides. IntentController is
// the stock implementation; see the "Intent orchestration" section of
// DESIGN.md.
type FleetControl = cluster.FleetControl

// IntentSpec declares one fleet intent: a power cap, minimum-
// performance floor, drain, or priority weight on a node group.
type IntentSpec = intent.Spec

// IntentStatus reports one intent's reconcile state: converging or
// converged, current enforcement phase, and the last observation.
type IntentStatus = intent.Status

// IntentReason is a machine-readable admission rejection (code +
// human-readable detail).
type IntentReason = intent.Reason

// IntentCapability is the aggregate fleet capability intents are
// admitted against; derive it from a FleetConfig with
// IntentCapabilityOf.
type IntentCapability = intent.Capability

// IntentController reconciles admitted intents against a running
// fleet; wire it in as FleetConfig.Control.
type IntentController = intent.Controller

// IntentConfig configures an IntentController.
type IntentConfig = intent.Config

// IntentCapabilityOf derives the admission capability from a fleet
// configuration.
func IntentCapabilityOf(cfg FleetConfig) IntentCapability { return intent.CapabilityOf(cfg) }

// NewIntentController builds an intent controller over the given
// capability; Submit intents to it and pass it as FleetConfig.Control.
func NewIntentController(cfg IntentConfig) (*IntentController, error) { return intent.New(cfg) }

// BatchNode binds one node's platform, workload and governor for a
// batch-kernel run. The governor must be a fresh instance, exactly as
// with Platform.Run.
type BatchNode = kernel.BatchNode

// BatchOptions configures a batch-kernel run (trace retention,
// observer hooks).
type BatchOptions = kernel.BatchOptions

// BatchState is the batch tick kernel: contiguous per-node tick state
// stepped by per-run specialized loop bodies with zero heap
// allocations per tick. It is the simulator's throughput path — the
// staged Session remains the reference implementation, and every
// batch run is byte-identical to it (same trace rows, same energy
// integrals, same transition and degradation logs). Step it with
// StepNode/StepAll/Run and read results with Result; see
// internal/kernel and the "Batch kernel" section of DESIGN.md.
type BatchState = kernel.BatchState

// NewBatch builds a batch kernel over the given nodes, initialized
// exactly as staged sessions would be.
func NewBatch(nodes []BatchNode, opts BatchOptions) (*BatchState, error) {
	return kernel.NewBatch(nodes, opts)
}

// RunBatch steps every node of a batch to completion on the batch
// kernel and returns the per-node runs in node order. It is the
// high-throughput equivalent of calling Platform.Run per node.
func RunBatch(nodes []BatchNode, opts BatchOptions) ([]*Run, error) {
	b, err := kernel.NewBatch(nodes, opts)
	if err != nil {
		return nil, err
	}
	if err := b.Run(); err != nil {
		return nil, err
	}
	runs := make([]*Run, b.Len())
	for i := range runs {
		runs[i] = b.Result(i)
	}
	return runs, nil
}

// FaultPlan composes sensor, counter and actuator fault injection for
// a platform; pass its address in PlatformConfig.Faults. Faults
// corrupt only what governors observe, never the ground-truth physics.
type FaultPlan = faults.Plan

// SensorFaultPlan describes measured-power faults (dropout, stuck-at,
// spikes, gain drift).
type SensorFaultPlan = faults.SensorPlan

// CounterFaultPlan describes PMU sample faults (missed reads, 32-bit
// wrap, saturation).
type CounterFaultPlan = faults.CounterPlan

// ActuatorFaultPlan describes p-state transition faults (failures,
// retries, latency jitter).
type ActuatorFaultPlan = faults.ActuatorPlan

// Degradation is one entry in a run's degradation log: an injected
// fault or a governor's graceful-degradation response.
type Degradation = trace.Degradation

// FaultPreset returns a balanced fault plan exercising every fault
// class at the given base per-interval rate (e.g. 0.05).
func FaultPreset(rate float64) FaultPlan { return faults.Preset(rate) }

// TelemetryRegistry is a concurrency-safe registry of counters, gauges
// and histograms exportable as Prometheus text (WritePrometheus) or a
// structured Snapshot; see internal/telemetry.
type TelemetryRegistry = telemetry.Registry

// NewTelemetryRegistry builds an empty telemetry registry.
func NewTelemetryRegistry() *TelemetryRegistry { return telemetry.NewRegistry() }

// NewTelemetryObserver returns a Hook that feeds a run's intervals,
// transitions and degradations into the registry under the given node
// and governor labels. One observer observes one session at a time.
func NewTelemetryObserver(reg *TelemetryRegistry, node, governor string) Hook {
	return telemetry.NewObserver(reg, node, governor)
}

// TraceEventWriter streams Chrome trace-event JSON (Perfetto,
// chrome://tracing) as runs execute; subscribe its RunHook to a
// session, or pass one per run via ClusterConfig.Observe.
type TraceEventWriter = telemetry.TraceEventWriter

// NewTraceEventWriter builds a trace-event writer over w. Call Close
// to finish the JSON array (the underlying writer is not closed).
func NewTraceEventWriter(w io.Writer) *TraceEventWriter {
	return telemetry.NewTraceEventWriter(w)
}

// RunService is the asynchronous run service: a bounded job queue
// with backpressure, a worker pool reusing the simulation entry
// points, a content-addressed result cache, and an NDJSON progress
// stream per job; mount RunService.Handler on an HTTP mux (see
// cmd/aapm-serve).
type RunService = serve.Service

// RunServiceConfig configures a RunService; the zero value gives a
// queue of 64, min(GOMAXPROCS, 4) workers and a 2-minute job deadline.
type RunServiceConfig = serve.Config

// JobSpec describes one run-service job; equal normalized specs share
// one content-addressed job (and therefore one cached result).
type JobSpec = serve.JobSpec

// JobState is a run-service job's lifecycle state
// (queued/running/done/failed/canceled/aborted).
type JobState = serve.State

// NewRunService starts a run service's workers and returns it; call
// Shutdown to drain.
func NewRunService(cfg RunServiceConfig) *RunService { return serve.New(cfg) }

// WorkloadFromTrace inverts a recorded run into a replayable workload —
// the record-and-replay workflow for evaluating policies offline from
// captured traces. mlp is the assumed memory-level parallelism (pass 0
// for the default of 2).
func WorkloadFromTrace(name string, rows []TraceRow, table *PStateTable, mlp float64) (WorkloadSpec, error) {
	return phase.FromTrace(name, rows, table, mlp)
}
