module aapm

go 1.22
