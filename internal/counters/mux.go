package counters

import "fmt"

// Multiplexer models the real platform's scarcity of physical
// counters: the Pentium M exposes two programmable counters for 92
// events (§III-B), so monitoring more than two logical events requires
// rotating event groups across intervals — the technique Isci et al.
// use to drive 24 events through 15 counters (§II).
//
// Each monitoring interval the multiplexer programs the next group.
// Observe returns the sample a driver would believe: actually-counted
// events carry their true interval counts; the others are synthesized
// from the rate recorded the last time their group was scheduled.
// Cycles are always available (timestamp counter) and never consume a
// programmable counter.
type Multiplexer struct {
	groups [][]Event
	cur    int
	// lastRate holds per-cycle rates from each event's last scheduled
	// interval; seen marks events observed at least once.
	lastRate [numEvents]float64
	seen     [numEvents]bool

	rotations uint64
}

// NewMultiplexer builds a rotation schedule packing the given events
// into groups of at most nphys, in order. Cycles is implicit and must
// not be listed.
func NewMultiplexer(nphys int, events []Event) (*Multiplexer, error) {
	if nphys < 1 {
		return nil, fmt.Errorf("counters: need at least one physical counter")
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("counters: no events to schedule")
	}
	seen := map[Event]bool{}
	var groups [][]Event
	var cur []Event
	for _, e := range events {
		if e == Cycles {
			return nil, fmt.Errorf("counters: cycles is free-running, do not schedule it")
		}
		if int(e) < 0 || int(e) >= NumEvents {
			return nil, fmt.Errorf("counters: unknown event %d", int(e))
		}
		if seen[e] {
			return nil, fmt.Errorf("counters: event %v listed twice", e)
		}
		seen[e] = true
		cur = append(cur, e)
		if len(cur) == nphys {
			groups = append(groups, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return &Multiplexer{groups: groups}, nil
}

// Groups returns the rotation schedule.
func (m *Multiplexer) Groups() [][]Event {
	out := make([][]Event, len(m.groups))
	for i, g := range m.groups {
		out[i] = append([]Event(nil), g...)
	}
	return out
}

// Rotations returns how many interval rotations have occurred.
func (m *Multiplexer) Rotations() uint64 { return m.rotations }

// Observe consumes the interval's true sample (what ideal hardware
// would have counted) and returns the driver's view under
// multiplexing, then rotates to the next group.
func (m *Multiplexer) Observe(truth Sample) Sample {
	cycles := truth.Count(Cycles)
	var out Sample
	out.SetCount(Cycles, cycles)

	active := m.groups[m.cur]
	inGroup := map[Event]bool{}
	for _, e := range active {
		inGroup[e] = true
		out.SetCount(e, truth.Count(e))
		if cycles > 0 {
			m.lastRate[e] = float64(truth.Count(e)) / float64(cycles)
			m.seen[e] = true
		}
	}
	for _, g := range m.groups {
		for _, e := range g {
			if inGroup[e] || !m.seen[e] {
				continue
			}
			out.SetCount(e, uint64(m.lastRate[e]*float64(cycles)+0.5))
		}
	}
	m.cur = (m.cur + 1) % len(m.groups)
	m.rotations++
	return out
}
