package counters

import (
	"testing"
)

func TestNewMultiplexerValidation(t *testing.T) {
	if _, err := NewMultiplexer(0, []Event{InstRetired}); err == nil {
		t.Error("zero physical counters accepted")
	}
	if _, err := NewMultiplexer(2, nil); err == nil {
		t.Error("empty event list accepted")
	}
	if _, err := NewMultiplexer(2, []Event{Cycles}); err == nil {
		t.Error("scheduling cycles accepted")
	}
	if _, err := NewMultiplexer(2, []Event{InstRetired, InstRetired}); err == nil {
		t.Error("duplicate event accepted")
	}
	if _, err := NewMultiplexer(2, []Event{Event(99)}); err == nil {
		t.Error("unknown event accepted")
	}
}

func TestMultiplexerGrouping(t *testing.T) {
	m, err := NewMultiplexer(2, []Event{InstRetired, DCUMissOutstanding, InstDecoded, L2Requests, MemRequests})
	if err != nil {
		t.Fatal(err)
	}
	g := m.Groups()
	if len(g) != 3 {
		t.Fatalf("groups = %v", g)
	}
	if len(g[0]) != 2 || len(g[1]) != 2 || len(g[2]) != 1 {
		t.Errorf("group sizes wrong: %v", g)
	}
}

func makeSample(cycles uint64, rates map[Event]float64) Sample {
	var s Sample
	s.SetCount(Cycles, cycles)
	for e, r := range rates {
		s.SetCount(e, uint64(r*float64(cycles)))
	}
	return s
}

func TestObserveRotatesAndHoldsRates(t *testing.T) {
	m, err := NewMultiplexer(1, []Event{InstRetired, DCUMissOutstanding})
	if err != nil {
		t.Fatal(err)
	}
	truth := makeSample(1000, map[Event]float64{InstRetired: 0.8, DCUMissOutstanding: 0.4})

	// Interval 1: group {InstRetired}; DCU never observed -> zero.
	s1 := m.Observe(truth)
	if s1.Count(InstRetired) != 800 {
		t.Errorf("interval 1 retired = %d", s1.Count(InstRetired))
	}
	if s1.Count(DCUMissOutstanding) != 0 {
		t.Errorf("interval 1 dcu = %d, want 0 (never observed)", s1.Count(DCUMissOutstanding))
	}
	// Interval 2: group {DCU}; retired synthesized from last rate.
	truth2 := makeSample(2000, map[Event]float64{InstRetired: 0.5, DCUMissOutstanding: 0.4})
	s2 := m.Observe(truth2)
	if s2.Count(DCUMissOutstanding) != 800 {
		t.Errorf("interval 2 dcu = %d, want 800 (true)", s2.Count(DCUMissOutstanding))
	}
	if s2.Count(InstRetired) != 1600 { // 0.8 held rate * 2000 cycles
		t.Errorf("interval 2 retired = %d, want 1600 (held rate)", s2.Count(InstRetired))
	}
	if m.Rotations() != 2 {
		t.Errorf("rotations = %d", m.Rotations())
	}
}

func TestObserveCyclesAlwaysTrue(t *testing.T) {
	m, _ := NewMultiplexer(1, []Event{InstRetired, DCUMissOutstanding})
	truth := makeSample(12345, map[Event]float64{InstRetired: 1})
	if got := m.Observe(truth).Count(Cycles); got != 12345 {
		t.Errorf("cycles = %d", got)
	}
}

func TestObserveAllEventsFitNoLoss(t *testing.T) {
	// With enough physical counters the mux is transparent.
	m, _ := NewMultiplexer(2, []Event{InstRetired, DCUMissOutstanding})
	truth := makeSample(1000, map[Event]float64{InstRetired: 0.7, DCUMissOutstanding: 0.2})
	got := m.Observe(truth)
	if got.Count(InstRetired) != truth.Count(InstRetired) ||
		got.Count(DCUMissOutstanding) != truth.Count(DCUMissOutstanding) {
		t.Errorf("transparent mux altered counts: %+v", got)
	}
}
