// Package counters models the performance monitoring unit (PMU) of the
// simulated Pentium M platform.
//
// The real Pentium M exposes two programmable counters selecting among
// 92 events; the paper's driver samples them every 10 ms. This package
// keeps the full event set the paper's analysis uses and exposes
// per-interval rate snapshots. Controllers are expected to consume only
// the events a real deployment would program (PM: decoded instructions;
// PS: retired instructions and DCU miss outstanding cycles).
package counters

import "fmt"

// Event identifies a PMU event the simulated platform accumulates.
type Event int

// Events used by the paper's models and workload characterization.
const (
	// Cycles counts elapsed core clock cycles.
	Cycles Event = iota
	// InstDecoded counts decoded instructions, including speculative
	// work on wrong paths (the power model's activity proxy).
	InstDecoded
	// InstRetired counts architecturally completed instructions
	// (the performance model's throughput proxy).
	InstRetired
	// DCUMissOutstanding counts cycles in which the L1 data cache has
	// at least one miss outstanding.
	DCUMissOutstanding
	// L2Requests counts L2 cache accesses (L1 misses plus prefetches).
	L2Requests
	// MemRequests counts bus (DRAM) accesses, i.e. L2 misses.
	MemRequests
	// ResourceStalls counts cycles the allocator is stalled for
	// machine resources.
	ResourceStalls

	numEvents
)

// NumEvents is the number of distinct events a Bank accumulates.
const NumEvents = int(numEvents)

var eventNames = [...]string{
	Cycles:             "cycles",
	InstDecoded:        "inst_decoded",
	InstRetired:        "inst_retired",
	DCUMissOutstanding: "dcu_miss_outstanding",
	L2Requests:         "l2_requests",
	MemRequests:        "mem_requests",
	ResourceStalls:     "resource_stalls",
}

// String returns the event's canonical lowercase name.
func (e Event) String() string {
	if e < 0 || int(e) >= NumEvents {
		return fmt.Sprintf("event(%d)", int(e))
	}
	return eventNames[e]
}

// Bank accumulates event counts. It is the simulated analogue of the
// PMU MSRs: monotonically increasing 64-bit counters.
type Bank struct {
	counts [numEvents]uint64
}

// Add increments event e by n.
func (b *Bank) Add(e Event, n uint64) { b.counts[e] += n }

// Read returns the running total for event e.
func (b *Bank) Read(e Event) uint64 { return b.counts[e] }

// Snapshot captures all counters at one instant.
func (b *Bank) Snapshot() Snapshot {
	var s Snapshot
	copy(s.counts[:], b.counts[:])
	return s
}

// Reset zeroes every counter.
func (b *Bank) Reset() { b.counts = [numEvents]uint64{} }

// Snapshot is a point-in-time copy of all counters.
type Snapshot struct {
	counts [numEvents]uint64
}

// Read returns the snapshot value for event e.
func (s Snapshot) Read(e Event) uint64 { return s.counts[e] }

// Delta returns the per-event difference now - prev as a Sample.
// Counters are monotonic, so a negative delta indicates misuse and
// saturates to zero rather than wrapping.
func Delta(prev, now Snapshot) Sample {
	var d Sample
	for i := range d.counts {
		if now.counts[i] >= prev.counts[i] {
			d.counts[i] = now.counts[i] - prev.counts[i]
		}
	}
	return d
}

// Sample is the event activity within one monitoring interval.
type Sample struct {
	counts [numEvents]uint64
}

// Count returns the interval count for event e.
func (s Sample) Count(e Event) uint64 { return s.counts[e] }

// SetCount sets the interval count for event e (used by the platform
// when synthesizing interval activity).
func (s *Sample) SetCount(e Event, n uint64) { s.counts[e] = n }

// Cycles returns the interval's elapsed core cycles.
func (s Sample) Cycles() float64 { return float64(s.counts[Cycles]) }

// rate returns count/cycles, or 0 for an empty interval.
func (s Sample) rate(e Event) float64 {
	c := s.counts[Cycles]
	if c == 0 {
		return 0
	}
	return float64(s.counts[e]) / float64(c)
}

// DPC returns decoded instructions per cycle, the power model input.
func (s Sample) DPC() float64 { return s.rate(InstDecoded) }

// IPC returns retired instructions per cycle, the performance proxy.
func (s Sample) IPC() float64 { return s.rate(InstRetired) }

// DCU returns DCU-miss-outstanding cycles per cycle (0..1).
func (s Sample) DCU() float64 { return s.rate(DCUMissOutstanding) }

// L2PC returns L2 requests per cycle.
func (s Sample) L2PC() float64 { return s.rate(L2Requests) }

// MemPC returns memory (bus) requests per cycle.
func (s Sample) MemPC() float64 { return s.rate(MemRequests) }

// StallPC returns resource-stall cycles per cycle.
func (s Sample) StallPC() float64 { return s.rate(ResourceStalls) }

// PowerRates returns the four power-model input rates — DPC, L2PC,
// MemPC, DCU — with the cycle count converted to float64 once. Each
// rate is the same division rate() performs, so results are
// bit-identical to calling the accessors individually.
func (s *Sample) PowerRates() (dpc, l2pc, mempc, dcu float64) {
	c := s.counts[Cycles]
	if c == 0 {
		return 0, 0, 0, 0
	}
	cf := float64(c)
	return float64(s.counts[InstDecoded]) / cf,
		float64(s.counts[L2Requests]) / cf,
		float64(s.counts[MemRequests]) / cf,
		float64(s.counts[DCUMissOutstanding]) / cf
}

// DCUPerInst returns DCU miss outstanding cycles per retired
// instruction — the paper's memory-boundedness measure (DCU/IPC).
// It returns 0 when no instructions retired in the interval.
func (s Sample) DCUPerInst() float64 {
	r := s.counts[InstRetired]
	if r == 0 {
		return 0
	}
	return float64(s.counts[DCUMissOutstanding]) / float64(r)
}

// Accumulate adds the interval activity of other into s.
func (s *Sample) Accumulate(other Sample) {
	for i := range s.counts {
		s.counts[i] += other.counts[i]
	}
}

// MaxPlausibleRate bounds per-cycle event rates on a real core: a
// 3-wide machine cannot decode, retire or issue more than a few
// events per cycle, so rates far above it indicate a corrupted
// sample (e.g. a wrapped counter delta).
const MaxPlausibleRate = 8.0

// Implausible reports whether the sample is physically impossible on
// live hardware: event counts without elapsed cycles, or any
// per-cycle rate beyond MaxPlausibleRate. An all-zero sample is NOT
// implausible — it is indistinguishable from an idle (halted)
// interval or a missed read; callers that need to tell those apart
// must use history.
func (s Sample) Implausible() bool {
	c := s.counts[Cycles]
	if c == 0 {
		for _, n := range s.counts {
			if n != 0 {
				return true
			}
		}
		return false
	}
	for e := Event(0); e < numEvents; e++ {
		if e == Cycles {
			continue
		}
		if float64(s.counts[e]) > MaxPlausibleRate*float64(c) {
			return true
		}
	}
	return false
}
