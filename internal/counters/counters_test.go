package counters

import (
	"testing"
	"testing/quick"
)

func TestEventNames(t *testing.T) {
	want := map[Event]string{
		Cycles:             "cycles",
		InstDecoded:        "inst_decoded",
		InstRetired:        "inst_retired",
		DCUMissOutstanding: "dcu_miss_outstanding",
		L2Requests:         "l2_requests",
		MemRequests:        "mem_requests",
		ResourceStalls:     "resource_stalls",
	}
	for e, name := range want {
		if e.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(e), e.String(), name)
		}
	}
	if got := Event(99).String(); got != "event(99)" {
		t.Errorf("out-of-range event name = %q", got)
	}
}

func TestBankAccumulatesAndResets(t *testing.T) {
	var b Bank
	b.Add(Cycles, 100)
	b.Add(Cycles, 50)
	b.Add(InstRetired, 70)
	if got := b.Read(Cycles); got != 150 {
		t.Errorf("Read(Cycles) = %d, want 150", got)
	}
	if got := b.Read(InstRetired); got != 70 {
		t.Errorf("Read(InstRetired) = %d, want 70", got)
	}
	b.Reset()
	if got := b.Read(Cycles); got != 0 {
		t.Errorf("after Reset, Read(Cycles) = %d", got)
	}
}

func TestSnapshotDelta(t *testing.T) {
	var b Bank
	b.Add(Cycles, 1000)
	b.Add(InstDecoded, 900)
	s1 := b.Snapshot()
	b.Add(Cycles, 500)
	b.Add(InstDecoded, 450)
	s2 := b.Snapshot()
	d := Delta(s1, s2)
	if got := d.Count(Cycles); got != 500 {
		t.Errorf("delta cycles = %d, want 500", got)
	}
	if got := d.Count(InstDecoded); got != 450 {
		t.Errorf("delta decoded = %d, want 450", got)
	}
	// Reversed order saturates to zero instead of wrapping.
	rev := Delta(s2, s1)
	if got := rev.Count(Cycles); got != 0 {
		t.Errorf("reversed delta cycles = %d, want 0", got)
	}
}

func TestSampleRates(t *testing.T) {
	var s Sample
	s.SetCount(Cycles, 2000)
	s.SetCount(InstDecoded, 3000)
	s.SetCount(InstRetired, 2500)
	s.SetCount(DCUMissOutstanding, 500)
	s.SetCount(L2Requests, 100)
	s.SetCount(MemRequests, 40)
	s.SetCount(ResourceStalls, 200)

	if got := s.DPC(); got != 1.5 {
		t.Errorf("DPC() = %g, want 1.5", got)
	}
	if got := s.IPC(); got != 1.25 {
		t.Errorf("IPC() = %g, want 1.25", got)
	}
	if got := s.DCU(); got != 0.25 {
		t.Errorf("DCU() = %g, want 0.25", got)
	}
	if got := s.L2PC(); got != 0.05 {
		t.Errorf("L2PC() = %g, want 0.05", got)
	}
	if got := s.MemPC(); got != 0.02 {
		t.Errorf("MemPC() = %g, want 0.02", got)
	}
	if got := s.StallPC(); got != 0.1 {
		t.Errorf("StallPC() = %g, want 0.1", got)
	}
	if got := s.DCUPerInst(); got != 0.2 {
		t.Errorf("DCUPerInst() = %g, want 0.2", got)
	}
	if got := s.Cycles(); got != 2000 {
		t.Errorf("Cycles() = %g, want 2000", got)
	}
}

func TestEmptySampleRatesAreZero(t *testing.T) {
	var s Sample
	if s.DPC() != 0 || s.IPC() != 0 || s.DCU() != 0 || s.DCUPerInst() != 0 {
		t.Errorf("zero sample produced nonzero rates: %+v", s)
	}
}

func TestSampleAccumulate(t *testing.T) {
	var a, b Sample
	a.SetCount(Cycles, 100)
	a.SetCount(InstRetired, 50)
	b.SetCount(Cycles, 200)
	b.SetCount(InstRetired, 250)
	a.Accumulate(b)
	if got := a.Count(Cycles); got != 300 {
		t.Errorf("accumulated cycles = %d, want 300", got)
	}
	if got := a.IPC(); got != 1.0 {
		t.Errorf("accumulated IPC = %g, want 1.0", got)
	}
}

// Property: for any additions, Delta(before, after) returns exactly the
// added amounts.
func TestDeltaMatchesAdditions(t *testing.T) {
	f := func(adds [7]uint32) bool {
		var b Bank
		before := b.Snapshot()
		for e, n := range adds {
			b.Add(Event(e), uint64(n))
		}
		d := Delta(before, b.Snapshot())
		for e, n := range adds {
			if d.Count(Event(e)) != uint64(n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: DPC, IPC, DCU are finite and DCU <= 1 whenever the DCU
// count does not exceed cycles.
func TestRateBounds(t *testing.T) {
	f := func(cyc uint32, dcu uint32) bool {
		var s Sample
		c := uint64(cyc) + 1
		s.SetCount(Cycles, c)
		s.SetCount(DCUMissOutstanding, uint64(dcu)%c)
		return s.DCU() >= 0 && s.DCU() < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
