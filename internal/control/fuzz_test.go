package control

import (
	"testing"

	"aapm/internal/counters"
	"aapm/internal/machine"
	"aapm/internal/pstate"
)

// FuzzGovernorDecisions drives every stateless-constructible governor
// with arbitrary counter samples and checks the invariant a machine
// relies on: decisions are always valid p-state indices.
func FuzzGovernorDecisions(f *testing.F) {
	f.Add(uint64(20_000_000), uint64(24_000_000), uint64(20_000_000), uint64(5_000_000), uint8(7), 13.5)
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint8(0), 10.5)
	f.Add(uint64(1), uint64(1<<62), uint64(1<<62), uint64(1<<62), uint8(3), 17.5)
	tab := pstate.PentiumM755()
	f.Fuzz(func(t *testing.T, cycles, decoded, retired, dcu uint64, idx8 uint8, meas float64) {
		var s counters.Sample
		s.SetCount(counters.Cycles, cycles)
		s.SetCount(counters.InstDecoded, decoded)
		s.SetCount(counters.InstRetired, retired)
		s.SetCount(counters.DCUMissOutstanding, dcu)
		idx := int(idx8) % tab.Len()
		info := machine.TickInfo{
			Sample:         s,
			PState:         tab.At(idx),
			PStateIndex:    idx,
			Table:          tab,
			MeasuredPowerW: meas,
		}
		pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 13.5, FeedbackGain: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		ps, err := NewPowerSave(PSConfig{Floor: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		cc, err := NewCruiseControl(CruiseControlConfig{Slowdown: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		govs := []machine.Governor{pm, ps, cc, &OnDemand{}, NewStaticClock(idx, "")}
		for _, g := range govs {
			for k := 0; k < 3; k++ { // stateful governors see it repeatedly
				got := g.Tick(info)
				if got < 0 || got >= tab.Len() {
					t.Fatalf("%s returned out-of-range index %d", g.Name(), got)
				}
			}
		}
	})
}

// FuzzParseGovernorSpec checks the spec parser never panics and every
// accepted spec yields a usable governor.
func FuzzParseGovernorSpec(f *testing.F) {
	for _, s := range []string{
		"pm:limit=14.5", "ps:floor=0.8,exponent=0.59", "static:freq=1800",
		"ondemand", "thermal:limit=75,reactive", "cruise:slowdown=0.1",
		"none", "pm:limit=", "x:y=z", "pm:limit=1e309",
	} {
		f.Add(s)
	}
	tab := pstate.PentiumM755()
	f.Fuzz(func(t *testing.T, spec string) {
		g, err := Parse(spec, tab)
		if err != nil || g == nil {
			return
		}
		info := tick(2000, 1.2, 1.0, 0.5, 12)
		if got := g.Tick(info); got < 0 || got >= tab.Len() {
			t.Fatalf("Parse(%q) governor returned index %d", spec, got)
		}
	})
}
