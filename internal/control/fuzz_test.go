package control

import (
	"math"
	"testing"

	"aapm/internal/counters"
	"aapm/internal/machine"
	"aapm/internal/pstate"
)

// FuzzGovernorDecisions drives every stateless-constructible governor
// with arbitrary counter samples and checks the invariant a machine
// relies on: decisions are always valid p-state indices. The measured
// power arrives as raw float64 bits so the corpus reaches NaN, both
// infinities, negative zero and subnormals — exactly what a faulted
// sensing path can deliver.
func FuzzGovernorDecisions(f *testing.F) {
	f.Add(uint64(20_000_000), uint64(24_000_000), uint64(20_000_000), uint64(5_000_000), uint8(7), math.Float64bits(13.5))
	f.Add(uint64(0), uint64(0), uint64(0), uint64(0), uint8(0), math.Float64bits(10.5))
	f.Add(uint64(1), uint64(1<<62), uint64(1<<62), uint64(1<<62), uint8(3), math.Float64bits(17.5))
	f.Add(uint64(1_000_000), uint64(800_000), uint64(700_000), uint64(100_000), uint8(5), math.Float64bits(math.NaN()))
	f.Add(uint64(1_000_000), uint64(800_000), uint64(700_000), uint64(100_000), uint8(5), math.Float64bits(math.Inf(1)))
	f.Add(uint64(1_000_000), uint64(800_000), uint64(700_000), uint64(100_000), uint8(5), math.Float64bits(math.Inf(-1)))
	f.Add(uint64(1_000_000), uint64(800_000), uint64(700_000), uint64(100_000), uint8(5), math.Float64bits(-42.0))
	tab := pstate.PentiumM755()
	f.Fuzz(func(t *testing.T, cycles, decoded, retired, dcu uint64, idx8 uint8, measBits uint64) {
		var s counters.Sample
		s.SetCount(counters.Cycles, cycles)
		s.SetCount(counters.InstDecoded, decoded)
		s.SetCount(counters.InstRetired, retired)
		s.SetCount(counters.DCUMissOutstanding, dcu)
		idx := int(idx8) % tab.Len()
		info := machine.TickInfo{
			Sample:         s,
			PState:         tab.At(idx),
			PStateIndex:    idx,
			Table:          tab,
			MeasuredPowerW: math.Float64frombits(measBits),
		}
		pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 13.5, FeedbackGain: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		pmDegrade, err := NewPerformanceMaximizer(PMConfig{LimitW: 13.5, FeedbackGain: 0.2, Degrade: true})
		if err != nil {
			t.Fatal(err)
		}
		ps, err := NewPowerSave(PSConfig{Floor: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		psDegrade, err := NewPowerSave(PSConfig{Floor: 0.8, Degrade: true, StaleTicks: 2})
		if err != nil {
			t.Fatal(err)
		}
		cc, err := NewCruiseControl(CruiseControlConfig{Slowdown: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		govs := []machine.Governor{pm, pmDegrade, ps, psDegrade, cc, &OnDemand{}, NewStaticClock(idx, "")}
		for _, g := range govs {
			for k := 0; k < 3; k++ { // stateful governors see it repeatedly
				got := g.Tick(info)
				if got < 0 || got >= tab.Len() {
					t.Fatalf("%s returned out-of-range index %d", g.Name(), got)
				}
			}
			if r, ok := g.(machine.DegradationReporter); ok {
				for _, d := range r.DrainDegradations() {
					if d.Source == "" || d.Kind == "" {
						t.Fatalf("%s produced a degradation with empty source/kind: %+v", g.Name(), d)
					}
				}
			}
		}
	})
}

// FuzzParseGovernorSpec checks the spec parser never panics and every
// accepted spec yields a usable governor.
func FuzzParseGovernorSpec(f *testing.F) {
	for _, s := range []string{
		"pm:limit=14.5", "pm:limit=13.5,degrade", "ps:floor=0.8,exponent=0.59",
		"ps:floor=0.8,degrade", "static:freq=1800",
		"ondemand", "thermal:limit=75,reactive", "cruise:slowdown=0.1",
		"none", "pm:limit=", "x:y=z", "pm:limit=1e309",
	} {
		f.Add(s)
	}
	tab := pstate.PentiumM755()
	f.Fuzz(func(t *testing.T, spec string) {
		g, err := Parse(spec, tab)
		if err != nil || g == nil {
			return
		}
		info := tick(2000, 1.2, 1.0, 0.5, 12)
		if got := g.Tick(info); got < 0 || got >= tab.Len() {
			t.Fatalf("Parse(%q) governor returned index %d", spec, got)
		}
	})
}
