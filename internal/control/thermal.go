package control

import (
	"fmt"

	"aapm/internal/machine"
	"aapm/internal/model"
	"aapm/internal/thermal"
)

// ThermalGuardConfig parameterizes a ThermalGuard policy.
type ThermalGuardConfig struct {
	// LimitC is the die temperature ceiling to enforce.
	LimitC float64
	// Thermal is the policy's model of the package thermal path (used
	// for prediction; the platform owns the true one).
	Thermal thermal.Config
	// Model estimates power per p-state from DPC; nil selects the
	// published Table II model.
	Model *model.PowerModel
	// GuardC is subtracted from LimitC before prediction; negative
	// selects the default 1 °C, zero keeps the default too.
	GuardC float64
	// Reactive selects the naive baseline: step down one state when
	// the sensor reads at or above the limit, step back up after
	// RaiseTicks cool samples. The default (false) is the predictive
	// controller: convert the remaining thermal headroom into a power
	// budget and run the PM selection against it.
	Reactive bool
	// RaiseTicks is the up-shift hysteresis; 0 selects 10 (100 ms).
	RaiseTicks int
	// HorizonSec is the predictive controller's headroom horizon: how
	// quickly it is willing to consume the thermal capacitance. 0
	// selects 2 s.
	HorizonSec float64
}

// ThermalGuard keeps die temperature under a limit by DVFS — the
// closed-loop power/thermal envelope control the paper cites from
// Intel's Foxton (§II), built from this repository's monitor/estimate/
// control pieces.
type ThermalGuard struct {
	cfg       ThermalGuardConfig
	pendingUp int
}

// NewThermalGuard validates cfg and builds the policy.
func NewThermalGuard(cfg ThermalGuardConfig) (*ThermalGuard, error) {
	if err := cfg.Thermal.Validate(); err != nil {
		return nil, err
	}
	if cfg.LimitC <= cfg.Thermal.AmbientC {
		return nil, fmt.Errorf("control: thermal limit %g°C at or below ambient %g°C", cfg.LimitC, cfg.Thermal.AmbientC)
	}
	if cfg.Model == nil {
		cfg.Model = model.PaperPowerModel()
	}
	if cfg.GuardC <= 0 {
		cfg.GuardC = 1
	}
	if cfg.RaiseTicks <= 0 {
		cfg.RaiseTicks = DefaultRaiseTicks
	}
	if cfg.HorizonSec <= 0 {
		cfg.HorizonSec = 2
	}
	return &ThermalGuard{cfg: cfg}, nil
}

// Name identifies the policy in traces.
func (tg *ThermalGuard) Name() string {
	mode := "pred"
	if tg.cfg.Reactive {
		mode = "react"
	}
	return fmt.Sprintf("TG-%s(%.0fC)", mode, tg.cfg.LimitC)
}

// Tick chooses the next p-state from the sensor temperature.
func (tg *ThermalGuard) Tick(info machine.TickInfo) int {
	if tg.cfg.Reactive {
		return tg.reactive(info)
	}
	return tg.predictive(info)
}

func (tg *ThermalGuard) reactive(info machine.TickInfo) int {
	switch {
	case info.TempC >= tg.cfg.LimitC:
		tg.pendingUp = 0
		if info.PStateIndex > 0 {
			return info.PStateIndex - 1
		}
		return 0
	case info.TempC <= tg.cfg.LimitC-2:
		tg.pendingUp++
		if tg.pendingUp >= tg.cfg.RaiseTicks && info.PStateIndex < info.Table.Len()-1 {
			tg.pendingUp = 0
			return info.PStateIndex + 1
		}
		return info.PStateIndex
	default:
		tg.pendingUp = 0
		return info.PStateIndex
	}
}

// predictive converts thermal headroom into a power budget: the
// sustained power that settles at the guarded limit, plus a transient
// allowance for charging the remaining headroom over the horizon, then
// picks the highest p-state whose predicted power fits.
func (tg *ThermalGuard) predictive(info machine.TickInfo) int {
	target := tg.cfg.LimitC - tg.cfg.GuardC
	budget := tg.cfg.Thermal.PowerForC(target)
	if head := target - info.TempC; head > 0 {
		budget += head * tg.cfg.Thermal.CapacitanceJC / tg.cfg.HorizonSec
	}
	dpc := info.Sample.DPC()
	want := 0
	for i := info.Table.Len() - 1; i >= 0; i-- {
		if tg.cfg.Model.EstimateAt(i, dpc, info.PState.FreqMHz) <= budget {
			want = i
			break
		}
	}
	switch {
	case want < info.PStateIndex:
		tg.pendingUp = 0
		return want
	case want > info.PStateIndex:
		tg.pendingUp++
		if tg.pendingUp >= tg.cfg.RaiseTicks {
			tg.pendingUp = 0
			return want
		}
		return info.PStateIndex
	default:
		tg.pendingUp = 0
		return info.PStateIndex
	}
}
