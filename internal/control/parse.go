package control

import (
	"fmt"
	"strconv"
	"strings"

	"aapm/internal/machine"
	"aapm/internal/model"
	"aapm/internal/pstate"
	"aapm/internal/thermal"
)

// Parse builds a governor from a cpufreq-style specification string:
//
//	"none"                           pinned at the platform start state
//	"static:freq=1800"               fixed frequency
//	"pm:limit=14.5[,guardband=0.5][,feedback=0.1][,degrade]"
//	"ps:floor=0.8[,exponent=0.59][,degrade]"
//	"throttle:floor=0.75"
//	"cruise:slowdown=0.1"
//	"ondemand[:up=0.8]"
//	"thermal:limit=75[,reactive]"
//
// The table is needed to resolve frequencies to p-state indices.
// "none" returns a nil governor.
func Parse(spec string, table *pstate.Table) (machine.Governor, error) {
	name, args := spec, ""
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, args = spec[:i], spec[i+1:]
	}
	kv, err := parseArgs(args)
	if err != nil {
		return nil, fmt.Errorf("control: %q: %w", spec, err)
	}
	get := func(key string, def float64) (float64, error) {
		s, ok := kv[key]
		if !ok {
			return def, nil
		}
		delete(kv, key)
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, fmt.Errorf("control: %q: bad %s: %w", spec, key, err)
		}
		return v, nil
	}
	has := func(key string) bool {
		_, ok := kv[key]
		delete(kv, key)
		return ok
	}
	leftover := func() error {
		for k := range kv {
			return fmt.Errorf("control: %q: unknown option %q", spec, k)
		}
		return nil
	}

	var gov machine.Governor
	switch name {
	case "none":
		gov = nil
	case "static":
		freq, err := get("freq", 0)
		if err != nil {
			return nil, err
		}
		idx := table.IndexOf(int(freq))
		if idx < 0 {
			return nil, fmt.Errorf("control: %q: no p-state at %g MHz", spec, freq)
		}
		gov = NewStaticClock(idx, fmt.Sprintf("static%d", int(freq)))
	case "pm":
		limit, err := get("limit", 0)
		if err != nil {
			return nil, err
		}
		gb, err := get("guardband", 0)
		if err != nil {
			return nil, err
		}
		fb, err := get("feedback", 0)
		if err != nil {
			return nil, err
		}
		gov, err = NewPerformanceMaximizer(PMConfig{
			LimitW: limit, GuardbandW: gb, FeedbackGain: fb,
			Degrade: has("degrade"),
		})
		if err != nil {
			return nil, err
		}
	case "ps":
		floor, err := get("floor", 0)
		if err != nil {
			return nil, err
		}
		exp, err := get("exponent", model.PaperExponent)
		if err != nil {
			return nil, err
		}
		gov, err = NewPowerSave(PSConfig{
			Floor:   floor,
			Perf:    model.PerfModel{Threshold: model.PaperDCUThreshold, Exponent: exp},
			Degrade: has("degrade"),
		})
		if err != nil {
			return nil, err
		}
	case "throttle":
		floor, err := get("floor", 0)
		if err != nil {
			return nil, err
		}
		gov, err = NewThrottleSave(ThrottleSaveConfig{Floor: floor})
		if err != nil {
			return nil, err
		}
	case "cruise":
		sd, err := get("slowdown", 0)
		if err != nil {
			return nil, err
		}
		gov, err = NewCruiseControl(CruiseControlConfig{Slowdown: sd})
		if err != nil {
			return nil, err
		}
	case "ondemand":
		up, err := get("up", 0)
		if err != nil {
			return nil, err
		}
		gov = &OnDemand{UpThreshold: up}
	case "thermal":
		limit, err := get("limit", 0)
		if err != nil {
			return nil, err
		}
		reactive := has("reactive")
		var terr error
		gov, terr = NewThermalGuard(ThermalGuardConfig{
			LimitC:   limit,
			Thermal:  thermal.PentiumMThermal(),
			Reactive: reactive,
		})
		if terr != nil {
			return nil, terr
		}
	default:
		return nil, fmt.Errorf("control: unknown governor %q (none, static, pm, ps, throttle, cruise, ondemand, thermal)", name)
	}
	if err := leftover(); err != nil {
		return nil, err
	}
	return gov, nil
}

func parseArgs(args string) (map[string]string, error) {
	kv := map[string]string{}
	if args == "" {
		return kv, nil
	}
	for _, part := range strings.Split(args, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("empty option")
		}
		k, v, found := strings.Cut(part, "=")
		if k == "" {
			return nil, fmt.Errorf("malformed option %q", part)
		}
		if !found {
			v = "" // boolean flag, e.g. "reactive"
		}
		if _, dup := kv[k]; dup {
			return nil, fmt.Errorf("duplicate option %q", k)
		}
		kv[k] = v
	}
	return kv, nil
}
