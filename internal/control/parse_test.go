package control

import (
	"testing"

	"aapm/internal/pstate"
)

func TestParseGovernors(t *testing.T) {
	tab := pstate.PentiumM755()
	cases := []struct {
		spec string
		name string
	}{
		{"static:freq=1800", "static1800"},
		{"pm:limit=14.5", "PM(14.5W)"},
		{"pm:limit=14.5,guardband=1.0,feedback=0.1", "PM+fb(14.5W)"},
		{"ps:floor=0.8", "PS(80%,e=0.81)"},
		{"ps:floor=0.8,exponent=0.59", "PS(80%,e=0.59)"},
		{"throttle:floor=0.75", "Throttle(75%)"},
		{"cruise:slowdown=0.1", "cruise(10%)"},
		{"ondemand", "ondemand"},
		{"ondemand:up=0.9", "ondemand"},
		{"thermal:limit=75", "TG-pred(75C)"},
		{"thermal:limit=75,reactive", "TG-react(75C)"},
	}
	for _, c := range cases {
		t.Run(c.spec, func(t *testing.T) {
			g, err := Parse(c.spec, tab)
			if err != nil {
				t.Fatal(err)
			}
			if g.Name() != c.name {
				t.Errorf("Parse(%q).Name() = %q, want %q", c.spec, g.Name(), c.name)
			}
		})
	}
}

func TestParseNone(t *testing.T) {
	g, err := Parse("none", pstate.PentiumM755())
	if err != nil {
		t.Fatal(err)
	}
	if g != nil {
		t.Errorf("Parse(none) = %v, want nil governor", g)
	}
}

func TestParseErrors(t *testing.T) {
	tab := pstate.PentiumM755()
	for _, spec := range []string{
		"bogus",
		"static:freq=1700",
		"static",
		"pm",
		"pm:limit=abc",
		"pm:limit=14.5,bogus=1",
		"ps:floor=2",
		"ps:floor=0.8,floor=0.7",
		"cruise:slowdown=0",
		"pm:limit=14.5,,",
		"pm:=x",
	} {
		if _, err := Parse(spec, tab); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}
