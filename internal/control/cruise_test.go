package control

import "testing"

func TestCruiseControlValidation(t *testing.T) {
	if _, err := NewCruiseControl(CruiseControlConfig{}); err == nil {
		t.Error("zero slowdown accepted")
	}
	if _, err := NewCruiseControl(CruiseControlConfig{Slowdown: 1}); err == nil {
		t.Error("slowdown 1 accepted")
	}
	cc, err := NewCruiseControl(CruiseControlConfig{Slowdown: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if cc.Name() != "cruise(10%)" {
		t.Errorf("Name = %q", cc.Name())
	}
}

func TestCruiseControlCoreBoundHoldsHighFrequency(t *testing.T) {
	cc, _ := NewCruiseControl(CruiseControlConfig{Slowdown: 0.1})
	got := cc.Tick(tick(2000, 1.5, 1.4, 0.1, 0))
	// 10% tolerated slowdown, core-bound: lowest f with f/2000 >= 0.9
	// is 1800.
	if f := tickTable().At(got).FreqMHz; f != 1800 {
		t.Errorf("core-bound cruise chose %d MHz, want 1800", f)
	}
}

func TestCruiseControlMemoryBoundDropsFurther(t *testing.T) {
	cc, _ := NewCruiseControl(CruiseControlConfig{Slowdown: 0.1})
	got := cc.Tick(tick(2000, 0.3, 0.2, 4.0, 0))
	// Memory-bound with e=0.81: (f'/2000)^0.19 >= 0.9 first holds at
	// f' >= 2000*0.9^(1/0.19) ~ 1148 -> 1200 MHz.
	if f := tickTable().At(got).FreqMHz; f != 1200 {
		t.Errorf("memory-bound cruise chose %d MHz, want 1200", f)
	}
}

func TestCruiseControlQuantizesIntensity(t *testing.T) {
	// DCU/IPC 1.24 quantizes down to 1.0 with 4 buckets — below the
	// 1.21 threshold, so the coarse table misclassifies a borderline
	// memory-bound sample as core-bound (the precision PS's direct
	// model use avoids).
	cc, _ := NewCruiseControl(CruiseControlConfig{Slowdown: 0.1})
	got := cc.Tick(tick(2000, 0.5, 0.4, 1.24, 0))
	if f := tickTable().At(got).FreqMHz; f != 1800 {
		t.Errorf("borderline sample chose %d MHz, want 1800 (quantized core-bound)", f)
	}
	// A finer table preserves the classification.
	fine, _ := NewCruiseControl(CruiseControlConfig{Slowdown: 0.1, Quantize: 100})
	got = fine.Tick(tick(2000, 0.5, 0.4, 1.24, 0))
	if f := tickTable().At(got).FreqMHz; f != 1200 {
		t.Errorf("fine-table sample chose %d MHz, want 1200", f)
	}
}

func TestCruiseControlIdleGoesToMinimum(t *testing.T) {
	cc, _ := NewCruiseControl(CruiseControlConfig{Slowdown: 0.1})
	if got := cc.Tick(tick(2000, 0, 0, 0, 0)); got != 0 {
		t.Errorf("idle tick chose %d", got)
	}
}
