package control

import (
	"math"
	"math/rand"
	"testing"

	"aapm/internal/model"
	"aapm/internal/pstate"
)

// Property: PM never selects a p-state whose predicted power (with
// the feedback correction and the tick's effective guardband) exceeds
// the limit — except index 0, the forced floor when nothing fits.
// Starting each trial at the top state makes the returned index the
// selection loop's own choice (down-shifts are immediate; up-shift
// hysteresis can't mask an infeasible state from above).
func TestPropertyPMEstimateNeverExceedsLimit(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	tab := pstate.PentiumM755()
	pow := model.PaperPowerModel()
	top := tab.Len() - 1
	for trial := 0; trial < 3000; trial++ {
		limit := 6 + rng.Float64()*14
		cfg := PMConfig{LimitW: limit}
		if rng.Intn(2) == 0 {
			cfg.FeedbackGain = rng.Float64()
		}
		if rng.Intn(2) == 0 {
			cfg.Degrade = true
		}
		pm, err := NewPerformanceMaximizer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		cur := top
		for step := 0; step < 8; step++ {
			dpc := rng.Float64() * 2.5
			meas := 5 + rng.Float64()*20
			switch rng.Intn(6) {
			case 0:
				meas = math.NaN()
			case 1:
				meas = 0
			}
			info := tick(tab.At(cur).FreqMHz, dpc, dpc, 0, meas)
			got := pm.Tick(info)
			if got < 0 || got > top {
				t.Fatalf("trial %d: index %d out of range", trial, got)
			}
			if got > cur {
				// Hysteresis defers up-shifts; the state actually adopted
				// is cur, which the previous iteration already validated.
				got = cur
			}
			if got > 0 {
				est := pm.corr*pow.EstimateAt(got, pm.LastEvalDPC(), tab.At(cur).FreqMHz) + pm.EffectiveGuardbandW()
				if est > limit+1e-9 {
					t.Fatalf("trial %d step %d: selected state %d with estimate %.4f W over limit %.4f W (dpc %.3f, degrade %v)",
						trial, step, got, est, limit, dpc, cfg.Degrade)
				}
			}
			cur = got
		}
	}
}

// Property: PS never picks a p-state below the performance floor when
// a feasible one exists — the chosen state's projected performance
// clears floor x projected peak (up to the documented boundary
// tolerance), or the chosen state is the maximum (nothing feasible).
func TestPropertyPSNeverBelowFloorWhenFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tab := pstate.PentiumM755()
	maxIdx := tab.Len() - 1
	for trial := 0; trial < 3000; trial++ {
		floor := 0.05 + 0.95*rng.Float64()
		perf := model.PaperPerfModel()
		if rng.Intn(2) == 0 {
			perf.Exponent = model.PaperExponentAlt
		}
		ps, err := NewPowerSave(PSConfig{Floor: floor, Perf: perf, Degrade: rng.Intn(2) == 0})
		if err != nil {
			t.Fatal(err)
		}
		cur := rng.Intn(tab.Len())
		ipc := 0.05 + rng.Float64()*2.5
		dcu := rng.Float64() * 4
		info := tick(tab.At(cur).FreqMHz, ipc, ipc, dcu/ipc, 12)
		// Recompute the rates the sample actually carries (integer
		// counter truncation), so the assertion uses PS's own inputs.
		sIPC := info.Sample.IPC()
		sDCU := info.Sample.DCUPerInst()
		got := ps.Tick(info)
		if got < 0 || got > maxIdx {
			t.Fatalf("trial %d: index %d out of range", trial, got)
		}
		if sIPC == 0 || got == maxIdx {
			continue
		}
		from := tab.At(cur).FreqMHz
		peak := perf.ProjectPerf(sIPC, sDCU, from, tab.At(maxIdx).FreqMHz)
		have := perf.ProjectPerf(sIPC, sDCU, from, tab.At(got).FreqMHz)
		if have < floor*peak*(1-1e-9) {
			t.Fatalf("trial %d: state %d delivers %.5f of peak %.5f, below floor %.3f (ipc %.3f dcu %.3f from %d)",
				trial, got, have/peak, peak, floor, sIPC, sDCU, from)
		}
	}
}

// Property: the offline fallback state itself always meets the floor
// (its frequency ratio alone clears it), so a degraded PS that lost
// its counters still honors the contract.
func TestPropertyPSOfflineFallbackMeetsFloor(t *testing.T) {
	tab := pstate.PentiumM755()
	fmax := float64(tab.Max().FreqMHz)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 1000; trial++ {
		floor := 0.05 + 0.95*rng.Float64()
		ps, err := NewPowerSave(PSConfig{Floor: floor, Degrade: true})
		if err != nil {
			t.Fatal(err)
		}
		idx := ps.offlineIndex(tab)
		if ratio := float64(tab.At(idx).FreqMHz) / fmax; ratio < floor*(1-1e-9) {
			t.Fatalf("floor %.3f: offline state %d MHz is only %.3f of peak", floor, tab.At(idx).FreqMHz, ratio)
		}
	}
}
