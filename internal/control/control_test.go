package control

import (
	"testing"
	"time"

	"aapm/internal/counters"
	"aapm/internal/machine"
	"aapm/internal/model"
	"aapm/internal/pstate"
)

func tick(freqMHz int, dpc, ipc, dcuPerInst, measuredW float64) machine.TickInfo {
	tab := pstate.PentiumM755()
	ps, err := tab.ByFreq(freqMHz)
	if err != nil {
		panic(err)
	}
	var s counters.Sample
	const cycles = 1_000_000
	s.SetCount(counters.Cycles, cycles)
	s.SetCount(counters.InstDecoded, uint64(dpc*cycles))
	s.SetCount(counters.InstRetired, uint64(ipc*cycles))
	s.SetCount(counters.DCUMissOutstanding, uint64(dcuPerInst*ipc*cycles))
	return machine.TickInfo{
		Now:            time.Second,
		Interval:       10 * time.Millisecond,
		Sample:         s,
		PState:         ps,
		PStateIndex:    tab.IndexOf(freqMHz),
		Table:          tab,
		MeasuredPowerW: measuredW,
	}
}

func TestStaticClock(t *testing.T) {
	s := NewStaticClock(3, "")
	if s.Name() != "static[3]" {
		t.Errorf("Name = %q", s.Name())
	}
	if got := s.Tick(tick(2000, 1, 1, 0, 0)); got != 3 {
		t.Errorf("Tick = %d, want 3", got)
	}
	if got := s.InitialIndex(7); got != 3 {
		t.Errorf("InitialIndex = %d, want 3", got)
	}
	if NewStaticClock(1, "custom").Name() != "custom" {
		t.Error("custom label ignored")
	}
}

func TestPMValidation(t *testing.T) {
	if _, err := NewPerformanceMaximizer(PMConfig{}); err == nil {
		t.Error("zero limit accepted")
	}
	if _, err := NewPerformanceMaximizer(PMConfig{LimitW: 10, FeedbackGain: 2}); err == nil {
		t.Error("feedback gain > 1 accepted")
	}
	pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
	if err != nil {
		t.Fatal(err)
	}
	if pm.Limit() != 14.5 {
		t.Errorf("Limit = %g", pm.Limit())
	}
}

func TestPMGuardbandSemantics(t *testing.T) {
	// Zero value selects the paper's 0.5 W; negative disables.
	def, _ := NewPerformanceMaximizer(PMConfig{LimitW: 17.5})
	if def.cfg.GuardbandW != DefaultGuardbandW {
		t.Errorf("default guardband = %g, want %g", def.cfg.GuardbandW, DefaultGuardbandW)
	}
	off, _ := NewPerformanceMaximizer(PMConfig{LimitW: 17.5, GuardbandW: -1})
	if off.cfg.GuardbandW != 0 {
		t.Errorf("disabled guardband = %g, want 0", off.cfg.GuardbandW)
	}
	exp, _ := NewPerformanceMaximizer(PMConfig{LimitW: 17.5, GuardbandW: 1.25})
	if exp.cfg.GuardbandW != 1.25 {
		t.Errorf("explicit guardband = %g", exp.cfg.GuardbandW)
	}
}

func TestPMDropsImmediately(t *testing.T) {
	pm, _ := NewPerformanceMaximizer(PMConfig{LimitW: 13.5})
	// High decode rate at 2000 MHz: model predicts ~18 W, so PM must
	// leave 2000 at once. est@1600 = 1.82*2 + 8.44 + 0.5 = 12.58.
	got := pm.Tick(tick(2000, 2.0, 1.6, 0.1, 0))
	tab := pstate.PentiumM755()
	if f := tab.At(got).FreqMHz; f != 1600 {
		t.Errorf("PM chose %d MHz, want 1600", f)
	}
}

func TestPMRaiseNeedsConsecutiveSamples(t *testing.T) {
	pm, _ := NewPerformanceMaximizer(PMConfig{LimitW: 17.5})
	tab := pstate.PentiumM755()
	i1800 := tab.IndexOf(1800)
	low := tick(1800, 0.5, 0.5, 0.1, 0) // est@2000 = 2.93*0.5+12.61 ~ 14 W: feasible
	for k := 0; k < DefaultRaiseTicks-1; k++ {
		if got := pm.Tick(low); got != i1800 {
			t.Fatalf("raised after %d samples, want %d", k+1, DefaultRaiseTicks)
		}
	}
	if got := pm.Tick(low); tab.At(got).FreqMHz != 2000 {
		t.Errorf("did not raise after %d consecutive samples", DefaultRaiseTicks)
	}
}

func TestPMRaiseCounterResetsOnContrarySample(t *testing.T) {
	pm, _ := NewPerformanceMaximizer(PMConfig{LimitW: 17.5})
	tab := pstate.PentiumM755()
	i1800 := tab.IndexOf(1800)
	low := tick(1800, 0.5, 0.5, 0.1, 0)
	high := tick(1800, 1.8, 1.5, 0.1, 0) // est@2000 ~ 17.9: stay at 1800
	for k := 0; k < DefaultRaiseTicks-1; k++ {
		pm.Tick(low)
	}
	if got := pm.Tick(high); got != i1800 {
		t.Fatalf("contrary sample moved PM to index %d", got)
	}
	// The streak must restart.
	for k := 0; k < DefaultRaiseTicks-1; k++ {
		if got := pm.Tick(low); got != i1800 {
			t.Fatalf("raised after only %d samples post-reset", k+1)
		}
	}
	if got := pm.Tick(low); tab.At(got).FreqMHz != 2000 {
		t.Error("did not raise after a full new streak")
	}
}

func TestPMSetLimitTakesEffect(t *testing.T) {
	pm, _ := NewPerformanceMaximizer(PMConfig{LimitW: 17.5})
	mid := tick(1800, 1.0, 0.9, 0.2, 0) // est@1800 = 13.04: fine at 17.5
	if got := pm.Tick(mid); pstate.PentiumM755().At(got).FreqMHz != 1800 {
		t.Fatalf("unexpected move at 17.5 W")
	}
	pm.SetLimit(10.5)
	if pm.Limit() != 10.5 {
		t.Fatalf("SetLimit ignored")
	}
	// est@1400 = 1.42+6.95+0.5 = 8.87 <= 10.5; est@1600 = 1.82+8.44+0.5
	// = 10.76 > 10.5 -> drop to 1400 immediately.
	got := pm.Tick(mid)
	if f := pstate.PentiumM755().At(got).FreqMHz; f != 1400 {
		t.Errorf("after SetLimit(10.5), chose %d MHz, want 1400", f)
	}
}

func TestPMInfeasibleLimitFallsToMinimum(t *testing.T) {
	pm, _ := NewPerformanceMaximizer(PMConfig{LimitW: 1.0})
	if got := pm.Tick(tick(2000, 1.5, 1.2, 0.1, 0)); got != 0 {
		t.Errorf("infeasible limit chose index %d, want 0", got)
	}
}

func TestPMNameIncludesLimit(t *testing.T) {
	pm, _ := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
	if pm.Name() != "PM(14.5W)" {
		t.Errorf("Name = %q", pm.Name())
	}
	fb, _ := NewPerformanceMaximizer(PMConfig{LimitW: 14.5, FeedbackGain: 0.2})
	if fb.Name() != "PM+fb(14.5W)" {
		t.Errorf("Name = %q", fb.Name())
	}
}

func TestPMFeedbackCorrectsUnderestimation(t *testing.T) {
	// Model says ~15.5 W at 1800 for DPC 2.0 (2.36*2+10.18 = 14.9 plus
	// guardband), but "measured" power is persistently 17 W. With
	// feedback, PM should learn the scale factor and stop choosing
	// states the plain model would pick.
	plain, _ := NewPerformanceMaximizer(PMConfig{LimitW: 15.8})
	fb, _ := NewPerformanceMaximizer(PMConfig{LimitW: 15.8, FeedbackGain: 0.5})
	sample := tick(1800, 2.0, 1.6, 0.1, 17.0)
	if got := plain.Tick(sample); pstate.PentiumM755().At(got).FreqMHz != 1800 {
		t.Fatalf("plain PM left 1800 unexpectedly")
	}
	var got int
	for k := 0; k < 10; k++ {
		got = fb.Tick(sample)
	}
	if f := pstate.PentiumM755().At(got).FreqMHz; f >= 1800 {
		t.Errorf("feedback PM stayed at %d MHz despite measured overdraw", f)
	}
}

func TestPSValidation(t *testing.T) {
	if _, err := NewPowerSave(PSConfig{Floor: 0}); err == nil {
		t.Error("zero floor accepted")
	}
	if _, err := NewPowerSave(PSConfig{Floor: 1.5}); err == nil {
		t.Error("floor > 1 accepted")
	}
	if _, err := NewPowerSave(PSConfig{Floor: 0.8, Perf: model.PerfModel{Threshold: -1, Exponent: 0.8}}); err == nil {
		t.Error("invalid perf model accepted")
	}
	ps, err := NewPowerSave(PSConfig{Floor: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if ps.Floor() != 0.8 {
		t.Errorf("Floor = %g", ps.Floor())
	}
	if ps.Name() != "PS(80%,e=0.81)" {
		t.Errorf("Name = %q", ps.Name())
	}
}

func TestPSCoreBoundPicksExactFloorState(t *testing.T) {
	ps, _ := NewPowerSave(PSConfig{Floor: 0.8})
	// Core-bound at 2000: the 80% floor is exactly 1600 MHz.
	got := ps.Tick(tick(2000, 1.5, 1.4, 0.1, 0))
	if f := pstate.PentiumM755().At(got).FreqMHz; f != 1600 {
		t.Errorf("PS chose %d MHz, want 1600", f)
	}
	// And it is stable there.
	got = ps.Tick(tick(1600, 1.5, 1.4, 0.1, 0))
	if f := pstate.PentiumM755().At(got).FreqMHz; f != 1600 {
		t.Errorf("PS moved from 1600 to %d MHz", f)
	}
}

func TestPSMemoryBoundDropsLow(t *testing.T) {
	ps, _ := NewPowerSave(PSConfig{Floor: 0.8})
	// Deep memory-bound: predicted perf ratio (f'/2000)^0.19 >= 0.8
	// first holds at 800 MHz.
	got := ps.Tick(tick(2000, 0.3, 0.2, 4.0, 0))
	if f := pstate.PentiumM755().At(got).FreqMHz; f != 800 {
		t.Errorf("PS chose %d MHz, want 800", f)
	}
}

func TestPSAltExponentIsLessAggressive(t *testing.T) {
	ps, _ := NewPowerSave(PSConfig{Floor: 0.8, Perf: model.PaperPerfModelAlt()})
	got := ps.Tick(tick(2000, 0.3, 0.2, 4.0, 0))
	if f := pstate.PentiumM755().At(got).FreqMHz; f != 1200 {
		t.Errorf("PS(e=0.59) chose %d MHz, want 1200", f)
	}
}

func TestPSIdleGoesToMinimum(t *testing.T) {
	ps, _ := NewPowerSave(PSConfig{Floor: 0.8})
	if got := ps.Tick(tick(2000, 0, 0, 0, 0)); got != 0 {
		t.Errorf("idle tick chose index %d, want 0", got)
	}
}

func TestPSLowFloors(t *testing.T) {
	tab := pstate.PentiumM755()
	core := tick(2000, 1.5, 1.4, 0.1, 0)
	for _, c := range []struct {
		floor float64
		want  int
	}{
		{0.60, 1200},
		{0.40, 800},
		{0.20, 600},
	} {
		ps, _ := NewPowerSave(PSConfig{Floor: c.floor})
		got := ps.Tick(core)
		if f := tab.At(got).FreqMHz; f != c.want {
			t.Errorf("floor %.0f%%: chose %d MHz, want %d", c.floor*100, f, c.want)
		}
	}
}

func TestOnDemandFullLoadPinsMax(t *testing.T) {
	od := &OnDemand{}
	info := tick(1000, 1.2, 1.0, 0.2, 0)
	// Busy for the whole 10 ms interval at 1 GHz.
	var s counters.Sample
	s.SetCount(counters.Cycles, uint64(1000*1e6*0.01))
	info.Sample = s
	got := od.Tick(info)
	if f := pstate.PentiumM755().At(got).FreqMHz; f != 2000 {
		t.Errorf("ondemand at full load chose %d MHz, want 2000", f)
	}
	if od.Name() != "ondemand" {
		t.Errorf("Name = %q", od.Name())
	}
}

func TestOnDemandLowUtilizationDrops(t *testing.T) {
	od := &OnDemand{}
	tab := pstate.PentiumM755()
	info := tick(2000, 1.2, 1.0, 0.2, 0)
	// Busy cycles for only 10% of the interval at 2 GHz.
	var s counters.Sample
	s.SetCount(counters.Cycles, uint64(0.10*2e9*0.01))
	info.Sample = s
	got := od.Tick(info)
	// Demand 200 MHz-equivalents / 0.8 -> lowest state covering 250.
	if f := tab.At(got).FreqMHz; f != 600 {
		t.Errorf("ondemand at 10%% load chose %d MHz, want 600", f)
	}
}

// tickTable returns the table the tick helper builds its infos from.
func tickTable() *pstate.Table { return pstate.PentiumM755() }
