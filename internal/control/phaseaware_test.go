package control

import (
	"testing"

	"aapm/internal/machine"
	"aapm/internal/sensor"
	"aapm/internal/spec"
	"aapm/internal/trace"
)

func TestNewPhaseAwarePMValidation(t *testing.T) {
	if _, err := NewPhaseAwarePM(nil, 0, 0); err == nil {
		t.Error("nil PM accepted")
	}
	pm, _ := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
	if _, err := NewPhaseAwarePM(pm, 1, 0); err == nil {
		t.Error("window 1 accepted")
	}
	pa, err := NewPhaseAwarePM(pm, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pa.Name() != "PM(14.5W)+phase" {
		t.Errorf("Name = %q", pa.Name())
	}
}

func TestBypassHysteresisArmsNextTick(t *testing.T) {
	pm, _ := NewPerformanceMaximizer(PMConfig{LimitW: 17.5})
	low := tick(1800, 0.5, 0.5, 0.1, 0)
	pm.BypassHysteresis()
	if got := pm.Tick(low); tickTable().At(got).FreqMHz != 2000 {
		t.Errorf("armed PM did not raise on the next supporting sample (index %d)", got)
	}
}

// TestPhaseAwareRecoversFasterOnAmmp compares time spent at the top
// feasible frequency after ammp's hot->cool phase boundaries.
func TestPhaseAwareRecoversFasterOnAmmp(t *testing.T) {
	w, err := spec.ByName("ammp")
	if err != nil {
		t.Fatal(err)
	}
	w.Iterations = max(1, w.Repeats()/3)

	run := func(phaseAware bool) *trace.Run {
		m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
		if err != nil {
			t.Fatal(err)
		}
		var gov machine.Governor = pm
		if phaseAware {
			pa, err := NewPhaseAwarePM(pm, 0, 0)
			if err != nil {
				t.Fatal(err)
			}
			gov = pa
		}
		r, err := m.Run(w, gov)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	plain := run(false)
	aware := run(true)
	// ammp's memory phases allow 2000 MHz under the 14.5 W limit; the
	// phase-aware variant reaches it sooner after each boundary, so its
	// 2000 MHz residency must be at least the plain PM's.
	res2000 := func(r *trace.Run) float64 {
		var hi, tot float64
		for _, row := range r.Rows {
			tot += row.Interval.Seconds()
			if row.FreqMHz == 2000 {
				hi += row.Interval.Seconds()
			}
		}
		return hi / tot
	}
	if res2000(aware) < res2000(plain) {
		t.Errorf("phase-aware 2000 MHz residency %.3f below plain %.3f", res2000(aware), res2000(plain))
	}
	if aware.Duration > plain.Duration {
		t.Errorf("phase-aware run slower: %v vs %v", aware.Duration, plain.Duration)
	}
}
