package control

import (
	"fmt"

	"aapm/internal/machine"
)

// ThrottleSaveConfig parameterizes a ThrottleSave policy.
type ThrottleSaveConfig struct {
	// Floor is the minimum acceptable performance relative to peak.
	Floor float64
	// Levels is the number of ACPI T-state duty levels; 0 selects 8
	// (duty cycles 1/8 .. 8/8).
	Levels int
}

// ThrottleSave meets a performance floor with clock modulation
// (T-states) instead of DVFS: the core runs at maximum frequency and
// voltage but receives only a duty-cycle fraction of the clocks.
//
// It exists as the ablation partner of PowerSave: delivered
// performance is proportional to duty, but power only scales linearly
// (no voltage reduction), so throttling saves far less energy than
// DVFS at the same performance floor — the non-linearity of eq. 1 the
// paper builds on.
type ThrottleSave struct {
	cfg  ThrottleSaveConfig
	duty float64
}

// NewThrottleSave validates cfg and builds the policy.
func NewThrottleSave(cfg ThrottleSaveConfig) (*ThrottleSave, error) {
	if cfg.Floor <= 0 || cfg.Floor > 1 {
		return nil, fmt.Errorf("control: throttle floor %g outside (0,1]", cfg.Floor)
	}
	if cfg.Levels == 0 {
		cfg.Levels = 8
	}
	if cfg.Levels < 2 {
		return nil, fmt.Errorf("control: need at least 2 T-state levels, got %d", cfg.Levels)
	}
	return &ThrottleSave{cfg: cfg, duty: 1}, nil
}

// Name identifies the policy in traces.
func (ts *ThrottleSave) Name() string {
	return fmt.Sprintf("Throttle(%.0f%%)", ts.cfg.Floor*100)
}

// Tick pins the maximum frequency and selects the lowest duty level
// that keeps delivered performance (proportional to duty) at or above
// the floor.
func (ts *ThrottleSave) Tick(info machine.TickInfo) int {
	n := ts.cfg.Levels
	level := int(ts.cfg.Floor*float64(n) + 1 - 1e-9) // ceil(floor*n)
	if level > n {
		level = n
	}
	if level < 1 {
		level = 1
	}
	ts.duty = float64(level) / float64(n)
	return info.Table.Len() - 1
}

// Duty implements machine.Throttler.
func (ts *ThrottleSave) Duty() float64 { return ts.duty }
