package control

import (
	"fmt"

	"aapm/internal/machine"
	"aapm/internal/model"
)

// CruiseControlConfig parameterizes a CruiseControl governor.
type CruiseControlConfig struct {
	// Slowdown is the tolerated per-interval slowdown (e.g. 0.1 =
	// each interval may run up to 10% slower than it would at maximum
	// frequency). Plays the role of Process Cruise Control's
	// precomputed table tolerance.
	Slowdown float64
	// Perf is the IPC projection model used to build the lookup
	// decision; the zero value selects the published eq. 3 parameters.
	Perf model.PerfModel
	// Quantize rounds the memory-intensity input to this many buckets
	// per unit of DCU/IPC, emulating the original's coarse
	// (memory-references, instructions) lookup table; 0 selects 4.
	Quantize int
}

// CruiseControl is a Process-Cruise-Control-style governor (Weissel &
// Bellosa, cited in §II as pioneering event-driven clock scaling): it
// reduces frequency according to a workload's memory intensity, read
// from a quantized counter-derived table, accepting a fixed small
// slowdown. Unlike PowerSave it has no explicit end-to-end floor — the
// tolerance applies per interval and the table is coarse, which is
// exactly the gap PS's model-based projection closes.
type CruiseControl struct {
	cfg CruiseControlConfig
}

// NewCruiseControl validates cfg and builds the governor.
func NewCruiseControl(cfg CruiseControlConfig) (*CruiseControl, error) {
	if cfg.Slowdown <= 0 || cfg.Slowdown >= 1 {
		return nil, fmt.Errorf("control: cruise slowdown %g outside (0,1)", cfg.Slowdown)
	}
	if cfg.Perf == (model.PerfModel{}) {
		cfg.Perf = model.PaperPerfModel()
	}
	if err := cfg.Perf.Validate(); err != nil {
		return nil, err
	}
	if cfg.Quantize <= 0 {
		cfg.Quantize = 4
	}
	return &CruiseControl{cfg: cfg}, nil
}

// Name identifies the policy in traces.
func (cc *CruiseControl) Name() string {
	return fmt.Sprintf("cruise(%.0f%%)", cc.cfg.Slowdown*100)
}

// Tick quantizes the sample's memory intensity and picks the lowest
// frequency whose projected per-interval performance stays within the
// slowdown tolerance of the projected maximum.
func (cc *CruiseControl) Tick(info machine.TickInfo) int {
	ipc := info.Sample.IPC()
	if ipc == 0 {
		return 0
	}
	// Coarse table index: DCU/IPC rounded down to 1/Quantize steps.
	q := float64(cc.cfg.Quantize)
	dcu := float64(int(info.Sample.DCUPerInst()*q)) / q
	from := info.PState.FreqMHz
	maxIdx := info.Table.Len() - 1
	peak := cc.cfg.Perf.ProjectPerf(ipc, dcu, from, info.Table.At(maxIdx).FreqMHz)
	if peak <= 0 {
		return info.PStateIndex
	}
	need := (1 - cc.cfg.Slowdown) * peak * (1 - 1e-9)
	for i := 0; i <= maxIdx; i++ {
		if cc.cfg.Perf.ProjectPerf(ipc, dcu, from, info.Table.At(i).FreqMHz) >= need {
			return i
		}
	}
	return maxIdx
}
