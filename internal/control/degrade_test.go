package control

import (
	"math"
	"testing"

	"aapm/internal/counters"
	"aapm/internal/machine"
	"aapm/internal/pstate"
)

// nanTick is tick() with a NaN measured-power reading (sensor dropout).
func nanTick(freqMHz int, dpc, ipc, dcuPerInst float64) machine.TickInfo {
	info := tick(freqMHz, dpc, ipc, dcuPerInst, 0)
	info.MeasuredPowerW = math.NaN()
	return info
}

// implausibleTick is tick() whose sample carries a wrapped counter
// delta: a decode count far beyond any real per-cycle rate.
func implausibleTick(freqMHz int) machine.TickInfo {
	info := tick(freqMHz, 1, 1, 0, 12)
	var s counters.Sample
	s.SetCount(counters.Cycles, 1_000_000)
	s.SetCount(counters.InstDecoded, 1<<40)
	info.Sample = s
	return info
}

func TestPMDegradeWidensGuardbandOnDropout(t *testing.T) {
	mk := func(degrade bool) *PerformanceMaximizer {
		pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5, Degrade: degrade})
		if err != nil {
			t.Fatal(err)
		}
		return pm
	}
	pm := mk(true)
	pm.Tick(tick(2000, 1.0, 1.0, 0, 12))
	if gb := pm.EffectiveGuardbandW(); gb != DefaultGuardbandW {
		t.Fatalf("clean tick guardband = %g, want %g", gb, DefaultGuardbandW)
	}
	pm.Tick(nanTick(2000, 1.0, 1.0, 0))
	want := DefaultGuardbandW + DefaultDegradeGuardbandW
	if gb := pm.EffectiveGuardbandW(); gb != want {
		t.Fatalf("dropout guardband = %g, want %g", gb, want)
	}
	pm.Tick(tick(2000, 1.0, 1.0, 0, 12))
	if gb := pm.EffectiveGuardbandW(); gb != DefaultGuardbandW {
		t.Fatalf("restored guardband = %g, want %g", gb, DefaultGuardbandW)
	}

	// A naive PM keeps the base guardband throughout.
	naive := mk(false)
	naive.Tick(nanTick(2000, 1.0, 1.0, 0))
	if gb := naive.EffectiveGuardbandW(); gb != DefaultGuardbandW {
		t.Fatalf("naive dropout guardband = %g, want %g", gb, DefaultGuardbandW)
	}
}

func TestPMDegradeWiderGuardbandIsMoreConservative(t *testing.T) {
	// At a decode rate that exactly fits the limit at 2000 MHz with the
	// base guardband, the widened dropout guardband must pick a lower
	// state.
	pmN, _ := NewPerformanceMaximizer(PMConfig{LimitW: 14.5})
	pmD, _ := NewPerformanceMaximizer(PMConfig{LimitW: 14.5, Degrade: true})
	// Find a DPC where naive PM stays at top.
	dpc := 0.8
	topN := pmN.Tick(tick(2000, dpc, 1.0, 0, 12))
	topD := pmD.Tick(nanTick(2000, dpc, 1.0, 0))
	if topD > topN {
		t.Fatalf("degraded PM under dropout chose %d, above naive %d", topD, topN)
	}
}

func TestPMDegradeHoldsLastGoodDPC(t *testing.T) {
	pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5, Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	pm.Tick(tick(2000, 0.9, 1.0, 0, 12))
	if got := pm.LastEvalDPC(); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("clean LastEvalDPC = %g, want 0.9", got)
	}
	pm.Tick(implausibleTick(2000))
	if got := pm.LastEvalDPC(); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("hold LastEvalDPC = %g, want last good 0.9", got)
	}
	d := pm.DrainDegradations()
	var sawHold bool
	for _, e := range d {
		if e.Source == "pm" && e.Kind == "hold-dpc" {
			sawHold = true
		}
	}
	if !sawHold {
		t.Fatalf("no pm/hold-dpc degradation logged; got %v", d)
	}
	if len(pm.DrainDegradations()) != 0 {
		t.Fatal("second drain not empty")
	}
}

func TestPMNaiveFeedbackIgnoresInfReading(t *testing.T) {
	pm, err := NewPerformanceMaximizer(PMConfig{LimitW: 14.5, FeedbackGain: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	pm.Tick(tick(2000, 1.0, 1.0, 0, 12))
	before := pm.corr
	info := tick(2000, 1.0, 1.0, 0, 0)
	info.MeasuredPowerW = math.Inf(1)
	pm.Tick(info)
	if pm.corr != before {
		t.Fatalf("corr moved on +Inf reading: %g -> %g", before, pm.corr)
	}
}

func TestPSDegradeHoldThenOfflineFallback(t *testing.T) {
	ps, err := NewPowerSave(PSConfig{Floor: 0.8, Degrade: true, StaleTicks: 3})
	if err != nil {
		t.Fatal(err)
	}
	tab := pstate.PentiumM755()
	// Core-bound busy sample at 2000 MHz: floor 0.8 -> 1600 MHz.
	busy := tick(2000, 1.0, 1.0, 0, 12)
	wantIdx := ps.Tick(busy)
	if tab.At(wantIdx).FreqMHz != 1600 {
		t.Fatalf("busy tick chose %d MHz, want 1600", tab.At(wantIdx).FreqMHz)
	}
	if ps.LastMode() != PSNormal {
		t.Fatalf("busy mode = %v, want normal", ps.LastMode())
	}
	// Stale zeros: hold the projection for StaleTicks.
	stale := tick(2000, 0, 0, 0, 12)
	var s counters.Sample
	stale.Sample = s
	for i := 0; i < 3; i++ {
		got := ps.Tick(stale)
		if got != wantIdx {
			t.Fatalf("hold tick %d chose index %d, want %d", i, got, wantIdx)
		}
		if ps.LastMode() != PSHold {
			t.Fatalf("hold tick %d mode = %v", i, ps.LastMode())
		}
	}
	// Past StaleTicks: offline core-bound fallback (>= 0.8*2000 MHz).
	got := ps.Tick(stale)
	if ps.LastMode() != PSOffline {
		t.Fatalf("mode after stale window = %v, want offline", ps.LastMode())
	}
	if f := tab.At(got).FreqMHz; f < 1600 {
		t.Fatalf("offline fallback chose %d MHz, below floor frequency 1600", f)
	}
	// Recovery returns to normal projection.
	if ps.Tick(busy) != wantIdx {
		t.Fatal("recovery tick did not resume normal projection")
	}
	if ps.LastMode() != PSNormal {
		t.Fatalf("recovery mode = %v", ps.LastMode())
	}
	counts := map[string]int{}
	for _, e := range ps.DrainDegradations() {
		counts[e.Source+"/"+e.Kind]++
	}
	if counts["ps/stale-counters"] == 0 || counts["ps/offline-fallback"] == 0 || counts["ps/counters-restored"] == 0 {
		t.Fatalf("degradation log incomplete: %v", counts)
	}
}

func TestPSDegradeIdleWithoutHistory(t *testing.T) {
	ps, err := NewPowerSave(PSConfig{Floor: 0.8, Degrade: true})
	if err != nil {
		t.Fatal(err)
	}
	stale := tick(2000, 0, 0, 0, 12)
	stale.Sample = counters.Sample{}
	if got := ps.Tick(stale); got != 0 {
		t.Fatalf("zero sample with no history chose %d, want 0 (idle)", got)
	}
	if ps.LastMode() != PSIdle {
		t.Fatalf("mode = %v, want idle", ps.LastMode())
	}
}

func TestPSNaiveGarbageSampleStandsStill(t *testing.T) {
	ps, err := NewPowerSave(PSConfig{Floor: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	info := implausibleTick(1400)
	// Retired count of zero with huge decoded count: IPC 0 but sample
	// implausible; naive PS must not jump to max on garbage.
	info.Sample.SetCount(counters.InstRetired, 1<<40)
	got := ps.Tick(info)
	if got != info.PStateIndex {
		t.Fatalf("naive PS moved to %d on implausible sample, want hold at %d", got, info.PStateIndex)
	}
}

func TestPSModeString(t *testing.T) {
	for m, want := range map[PSMode]string{PSNormal: "normal", PSIdle: "idle", PSHold: "hold", PSOffline: "offline", PSMode(99): "psmode(99)"} {
		if m.String() != want {
			t.Errorf("PSMode(%d).String() = %q, want %q", int(m), m.String(), want)
		}
	}
}

func TestPSValidatesStaleTicks(t *testing.T) {
	if _, err := NewPowerSave(PSConfig{Floor: 0.8, StaleTicks: -1}); err == nil {
		t.Error("negative StaleTicks accepted")
	}
}

func TestDegradeNames(t *testing.T) {
	pm, _ := NewPerformanceMaximizer(PMConfig{LimitW: 13.5, Degrade: true})
	if pm.Name() != "PM+dg(13.5W)" {
		t.Errorf("PM name = %q", pm.Name())
	}
	ps, _ := NewPowerSave(PSConfig{Floor: 0.8, Degrade: true})
	if got := ps.Name(); got != "PS+dg(80%,e=0.81)" {
		t.Errorf("PS name = %q", got)
	}
}
