package control

import (
	"fmt"

	"aapm/internal/machine"
	"aapm/internal/phasedetect"
)

// PhaseAwarePM wraps a PerformanceMaximizer with an online phase
// detector over the decode rate: when the workload demonstrably
// switches regimes, the wrapper arms PM to act on the very next
// supporting sample instead of waiting out the 100 ms up-shift
// hysteresis. Down-shifts are untouched (they were already immediate),
// so the safety property is preserved; only the recovery after a
// hot-to-cool phase boundary accelerates.
type PhaseAwarePM struct {
	pm  *PerformanceMaximizer
	det *phasedetect.Detector
}

// NewPhaseAwarePM wraps pm with a detector over DPC; window is in
// monitoring intervals (0 selects 4) and relDelta is the mean-shift
// threshold (0 selects 0.25).
func NewPhaseAwarePM(pm *PerformanceMaximizer, window int, relDelta float64) (*PhaseAwarePM, error) {
	if pm == nil {
		return nil, fmt.Errorf("control: nil PM")
	}
	if window == 0 {
		window = 4
	}
	if relDelta == 0 {
		relDelta = 0.25
	}
	det, err := phasedetect.New(window, relDelta)
	if err != nil {
		return nil, err
	}
	return &PhaseAwarePM{pm: pm, det: det}, nil
}

// Name identifies the policy in traces.
func (p *PhaseAwarePM) Name() string { return p.pm.Name() + "+phase" }

// PhaseChanges returns how many regime switches the detector reported.
func (p *PhaseAwarePM) PhaseChanges() uint64 { return p.det.Changes() }

// Tick feeds the detector and delegates to PM, bypassing the up-shift
// hysteresis on a detected phase change.
func (p *PhaseAwarePM) Tick(info machine.TickInfo) int {
	if p.det.Observe(info.Sample.DPC()) {
		p.pm.BypassHysteresis()
	}
	return p.pm.Tick(info)
}
