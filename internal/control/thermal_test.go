package control

import (
	"testing"

	"aapm/internal/machine"
	"aapm/internal/thermal"
)

func tgConfig(reactive bool) ThermalGuardConfig {
	return ThermalGuardConfig{
		LimitC:   75,
		Thermal:  thermal.PentiumMThermal(),
		Reactive: reactive,
	}
}

func thermalTick(freqMHz int, dpc, tempC float64) machine.TickInfo {
	info := tick(freqMHz, dpc, dpc/1.2, 0.1, 0)
	info.TempC = tempC
	return info
}

func TestThermalGuardValidation(t *testing.T) {
	if _, err := NewThermalGuard(ThermalGuardConfig{LimitC: 75}); err == nil {
		t.Error("invalid thermal config accepted")
	}
	cfg := tgConfig(false)
	cfg.LimitC = 40 // below 45 ambient
	if _, err := NewThermalGuard(cfg); err == nil {
		t.Error("limit below ambient accepted")
	}
	tg, err := NewThermalGuard(tgConfig(false))
	if err != nil {
		t.Fatal(err)
	}
	if tg.Name() != "TG-pred(75C)" {
		t.Errorf("Name = %q", tg.Name())
	}
	rg, _ := NewThermalGuard(tgConfig(true))
	if rg.Name() != "TG-react(75C)" {
		t.Errorf("Name = %q", rg.Name())
	}
}

func TestReactiveGuardStepsDownWhenHot(t *testing.T) {
	tg, _ := NewThermalGuard(tgConfig(true))
	got := tg.Tick(thermalTick(2000, 1.8, 76))
	if got != 6 { // one step below the 2000 MHz index 7
		t.Errorf("hot tick chose index %d, want 6", got)
	}
	// At the floor it stays put.
	got = tg.Tick(thermalTick(600, 1.8, 80))
	if got != 0 {
		t.Errorf("hot tick at min chose %d", got)
	}
}

func TestReactiveGuardStepsUpSlowly(t *testing.T) {
	tg, _ := NewThermalGuard(tgConfig(true))
	cool := thermalTick(1600, 1.0, 70)
	for k := 0; k < DefaultRaiseTicks-1; k++ {
		if got := tg.Tick(cool); got != 5 {
			t.Fatalf("raised after %d cool samples", k+1)
		}
	}
	if got := tg.Tick(cool); got != 6 {
		t.Errorf("did not raise after %d cool samples (got %d)", DefaultRaiseTicks, got)
	}
}

func TestReactiveGuardHoldsInDeadband(t *testing.T) {
	tg, _ := NewThermalGuard(tgConfig(true))
	if got := tg.Tick(thermalTick(1600, 1.0, 74)); got != 5 {
		t.Errorf("deadband tick moved to %d", got)
	}
}

func TestPredictiveGuardUsesHeadroom(t *testing.T) {
	tg, _ := NewThermalGuard(tgConfig(false))
	// Cold die: plenty of transient headroom, high states allowed even
	// for a hot workload.
	coldWant := tg.Tick(thermalTick(2000, 1.9, 46))
	// Near the limit: budget collapses to the sustained power for
	// 74 °C = (74-45)/1.7 ~ 17 W; a 1.9-DPC workload (>17.6 W at
	// 2000 MHz) must be capped below the top state.
	tg2, _ := NewThermalGuard(tgConfig(false))
	hotWant := tg2.Tick(thermalTick(2000, 1.9, 74))
	if hotWant >= coldWant {
		t.Errorf("predictive guard ignored temperature: cold->%d hot->%d", coldWant, hotWant)
	}
	if hotWant >= 7 {
		t.Errorf("hot die still allowed top state (index %d)", hotWant)
	}
}

func TestPredictiveGuardRaiseHysteresis(t *testing.T) {
	tg, _ := NewThermalGuard(tgConfig(false))
	cool := thermalTick(1400, 0.8, 50)
	for k := 0; k < DefaultRaiseTicks-1; k++ {
		if got := tg.Tick(cool); got != 4 {
			t.Fatalf("raised after only %d cool ticks (to %d)", k+1, got)
		}
	}
	if got := tg.Tick(cool); got <= 4 {
		t.Errorf("did not raise after %d cool ticks (got %d)", DefaultRaiseTicks, got)
	}
}

func TestThrottleSaveValidation(t *testing.T) {
	if _, err := NewThrottleSave(ThrottleSaveConfig{}); err == nil {
		t.Error("zero floor accepted")
	}
	if _, err := NewThrottleSave(ThrottleSaveConfig{Floor: 0.5, Levels: 1}); err == nil {
		t.Error("single level accepted")
	}
	ts, err := NewThrottleSave(ThrottleSaveConfig{Floor: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	if ts.Name() != "Throttle(80%)" {
		t.Errorf("Name = %q", ts.Name())
	}
}

func TestThrottleSavePinsMaxAndSetsDuty(t *testing.T) {
	cases := []struct {
		floor float64
		duty  float64
	}{
		{0.80, 7.0 / 8},
		{0.75, 6.0 / 8},
		{0.50, 4.0 / 8},
		{0.10, 1.0 / 8},
		{1.00, 1.0},
	}
	for _, c := range cases {
		ts, err := NewThrottleSave(ThrottleSaveConfig{Floor: c.floor})
		if err != nil {
			t.Fatal(err)
		}
		got := ts.Tick(tick(2000, 1.5, 1.4, 0.1, 0))
		if got != 7 {
			t.Errorf("floor %.2f: index %d, want max", c.floor, got)
		}
		if ts.Duty() != c.duty {
			t.Errorf("floor %.2f: duty %.3f, want %.3f", c.floor, ts.Duty(), c.duty)
		}
	}
}
