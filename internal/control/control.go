// Package control implements the paper's power-management policies as
// machine governors, each following the three-phase loop of §III
// (monitor → estimate/predict → control):
//
//   - PerformanceMaximizer (PM, §IV-A): highest frequency whose
//     predicted power stays under a runtime-adjustable limit, with a
//     0.5 W guardband, immediate down-shifts and a 100 ms up-shift
//     hysteresis.
//   - PowerSave (PS, §IV-B): lowest frequency whose predicted
//     performance stays above a floor relative to peak.
//   - StaticClock: the conventional fixed-frequency baseline.
//   - OnDemand: a Linux-ondemand-style utilization governor included
//     as an additional related-work baseline (Demand-Based Switching).
//
// All policies see only TickInfo — the counters a real deployment
// would have — never the platform's ground truth.
package control

import (
	"fmt"

	"aapm/internal/machine"
	"aapm/internal/model"
	"aapm/internal/pstate"
)

// StaticClock pins one p-state for the whole run — the paper's
// "static clocking" baseline (and, at the table extremes, its
// unconstrained-2GHz and maximum-savings-600MHz reference runs).
type StaticClock struct {
	Index int
	label string
}

// NewStaticClock pins p-state index i.
func NewStaticClock(i int, label string) *StaticClock {
	if label == "" {
		label = fmt.Sprintf("static[%d]", i)
	}
	return &StaticClock{Index: i, label: label}
}

// Name returns the policy label.
func (s *StaticClock) Name() string { return s.label }

// Tick always returns the pinned index.
func (s *StaticClock) Tick(machine.TickInfo) int { return s.Index }

// InitialIndex pins the run's starting p-state so a static run never
// spends its first interval at the platform default.
func (s *StaticClock) InitialIndex(int) int { return s.Index }

// PMConfig parameterizes a PerformanceMaximizer.
type PMConfig struct {
	// Model estimates power per p-state from DPC; nil selects the
	// published Table II model.
	Model *model.PowerModel
	// LimitW is the initial power limit.
	LimitW float64
	// GuardbandW is added to estimates before the limit comparison.
	// The zero value selects the paper's 0.5 W; pass a negative value
	// to disable the guardband entirely (ablation use).
	GuardbandW float64
	// RaiseTicks is the number of consecutive raise-indicating samples
	// required before shifting up; 0 selects the paper's 10 (100 ms of
	// 10 ms samples).
	RaiseTicks int
	// FeedbackGain, when positive, enables the measured-power feedback
	// extension the paper sketches as future work: a multiplicative
	// correction factor tracks measured/estimated power with this EMA
	// gain and scales subsequent estimates.
	FeedbackGain float64
	// DisableDPCProjection skips the paper's eq. 4 projection and
	// evaluates every candidate p-state at the observed decode rate.
	// Ablation use only: without the conservative down-projection the
	// power estimate for lower frequencies is too optimistic for
	// memory-bound work.
	DisableDPCProjection bool
}

// DefaultGuardbandW is the paper's 0.5 W estimation guardband.
const DefaultGuardbandW = 0.5

// DefaultRaiseTicks is the paper's 100 ms of consecutive 10 ms samples.
const DefaultRaiseTicks = 10

// PerformanceMaximizer implements the PM policy.
type PerformanceMaximizer struct {
	cfg       PMConfig
	limitW    float64
	pendingUp int
	// corr is the feedback correction factor (1 = trust the model).
	corr float64
}

// NewPerformanceMaximizer builds a PM with the given configuration.
func NewPerformanceMaximizer(cfg PMConfig) (*PerformanceMaximizer, error) {
	if cfg.Model == nil {
		cfg.Model = model.PaperPowerModel()
	}
	if cfg.LimitW <= 0 {
		return nil, fmt.Errorf("control: PM needs a positive power limit, got %g", cfg.LimitW)
	}
	switch {
	case cfg.GuardbandW == 0:
		cfg.GuardbandW = DefaultGuardbandW
	case cfg.GuardbandW < 0:
		cfg.GuardbandW = 0
	}
	if cfg.RaiseTicks <= 0 {
		cfg.RaiseTicks = DefaultRaiseTicks
	}
	if cfg.FeedbackGain < 0 || cfg.FeedbackGain > 1 {
		return nil, fmt.Errorf("control: PM feedback gain %g outside [0,1]", cfg.FeedbackGain)
	}
	return &PerformanceMaximizer{cfg: cfg, limitW: cfg.LimitW, corr: 1}, nil
}

// Name identifies the policy in traces.
func (pm *PerformanceMaximizer) Name() string {
	if pm.cfg.FeedbackGain > 0 {
		return fmt.Sprintf("PM+fb(%.1fW)", pm.limitW)
	}
	return fmt.Sprintf("PM(%.1fW)", pm.limitW)
}

// SetLimit changes the power limit, effective at the next tick — the
// simulation analogue of the SIGUSR1/SIGUSR2 runtime limit changes the
// prototype accepts.
func (pm *PerformanceMaximizer) SetLimit(w float64) {
	pm.limitW = w
	pm.pendingUp = 0
}

// BypassHysteresis arms the next tick to raise immediately if its
// estimate permits, instead of waiting out the full RaiseTicks streak.
// Phase-aware wrappers call it when the workload demonstrably switched
// regimes, making the conservative streak requirement moot.
func (pm *PerformanceMaximizer) BypassHysteresis() {
	pm.pendingUp = pm.cfg.RaiseTicks - 1
}

// Limit returns the active power limit.
func (pm *PerformanceMaximizer) Limit() float64 { return pm.limitW }

// Tick chooses the highest p-state whose corrected power estimate,
// plus guardband, fits the limit. Down-shifts apply immediately;
// up-shifts wait for RaiseTicks consecutive supporting samples.
func (pm *PerformanceMaximizer) Tick(info machine.TickInfo) int {
	dpc := info.Sample.DPC()
	if pm.cfg.FeedbackGain > 0 {
		est := pm.corr * pm.cfg.Model.Estimate(info.PStateIndex, dpc)
		if est > 0 && info.MeasuredPowerW > 0 {
			g := pm.cfg.FeedbackGain
			pm.corr *= 1 + g*(info.MeasuredPowerW/est-1)
			if pm.corr < 0.5 {
				pm.corr = 0.5
			}
			if pm.corr > 2 {
				pm.corr = 2
			}
		}
	}
	want := 0
	for i := info.Table.Len() - 1; i >= 0; i-- {
		var est float64
		if pm.cfg.DisableDPCProjection {
			est = pm.cfg.Model.Estimate(i, dpc)
		} else {
			est = pm.cfg.Model.EstimateAt(i, dpc, info.PState.FreqMHz)
		}
		est = pm.corr*est + pm.cfg.GuardbandW
		if est <= pm.limitW {
			want = i
			break
		}
	}
	switch {
	case want < info.PStateIndex:
		pm.pendingUp = 0
		return want
	case want > info.PStateIndex:
		pm.pendingUp++
		if pm.pendingUp >= pm.cfg.RaiseTicks {
			pm.pendingUp = 0
			return want
		}
		return info.PStateIndex
	default:
		pm.pendingUp = 0
		return info.PStateIndex
	}
}

// BudgetDesireW returns the power limit this PM would need to run the
// platform's top p-state for the given recent decode rate, including
// its guardband and (when feedback is enabled) the learned measurement
// correction. Budget coordinators use it as a node's demand signal.
func (pm *PerformanceMaximizer) BudgetDesireW(table *pstate.Table, dpc float64) float64 {
	top := table.Len() - 1
	return pm.corr*pm.cfg.Model.Estimate(top, dpc) + pm.cfg.GuardbandW
}

// PSConfig parameterizes a PowerSave policy.
type PSConfig struct {
	// Perf is the IPC projection model; the zero value selects the
	// published eq. 3 parameters (threshold 1.21, exponent 0.81).
	Perf model.PerfModel
	// Floor is the minimum acceptable performance relative to peak
	// (e.g. 0.8 allows a 20% slowdown).
	Floor float64
}

// PowerSave implements the PS policy: run as slow as the performance
// floor permits, even at full load.
type PowerSave struct {
	cfg PSConfig
}

// NewPowerSave builds a PS with the given configuration.
func NewPowerSave(cfg PSConfig) (*PowerSave, error) {
	if cfg.Perf == (model.PerfModel{}) {
		cfg.Perf = model.PaperPerfModel()
	}
	if err := cfg.Perf.Validate(); err != nil {
		return nil, err
	}
	if cfg.Floor <= 0 || cfg.Floor > 1 {
		return nil, fmt.Errorf("control: PS floor %g outside (0,1]", cfg.Floor)
	}
	return &PowerSave{cfg: cfg}, nil
}

// Name identifies the policy in traces.
func (ps *PowerSave) Name() string {
	return fmt.Sprintf("PS(%.0f%%,e=%.2f)", ps.cfg.Floor*100, ps.cfg.Perf.Exponent)
}

// Floor returns the configured performance floor.
func (ps *PowerSave) Floor() float64 { return ps.cfg.Floor }

// Tick predicts throughput (IPC*f) at every p-state from the current
// sample and picks the lowest frequency whose predicted performance
// clears Floor x the predicted peak performance.
func (ps *PowerSave) Tick(info machine.TickInfo) int {
	ipc := info.Sample.IPC()
	if ipc == 0 {
		// Idle interval: any frequency meets the floor; save maximally.
		return 0
	}
	dcu := info.Sample.DCUPerInst()
	from := info.PState.FreqMHz
	maxIdx := info.Table.Len() - 1
	peak := ps.cfg.Perf.ProjectPerf(ipc, dcu, from, info.Table.At(maxIdx).FreqMHz)
	if peak <= 0 {
		return info.PStateIndex
	}
	// The relative tolerance keeps exact-boundary states (e.g. 1600 MHz
	// for an 80% floor on a 2000 MHz part) on the feasible side of
	// floating-point rounding.
	need := ps.cfg.Floor * peak * (1 - 1e-9)
	for i := 0; i <= maxIdx; i++ {
		if ps.cfg.Perf.ProjectPerf(ipc, dcu, from, info.Table.At(i).FreqMHz) >= need {
			return i
		}
	}
	return maxIdx
}

// OnDemand approximates the Linux ondemand governor: jump to maximum
// frequency when utilization exceeds the up-threshold, otherwise pick
// the lowest frequency that keeps utilization at the threshold. With
// the paper's fully loaded SPEC workloads it pins the maximum state —
// exactly the "saving energy only during low utilization is
// insufficient" behaviour PS improves on.
type OnDemand struct {
	// UpThreshold is the utilization that triggers max frequency;
	// 0 selects the classic 0.8.
	UpThreshold float64
}

// Name identifies the policy in traces.
func (o *OnDemand) Name() string { return "ondemand" }

func (o *OnDemand) threshold() float64 {
	if o.UpThreshold <= 0 || o.UpThreshold > 1 {
		return 0.8
	}
	return o.UpThreshold
}

// Tick computes utilization as busy cycles over interval capacity.
func (o *OnDemand) Tick(info machine.TickInfo) int {
	capacity := info.PState.FreqHz() * info.Interval.Seconds()
	if capacity <= 0 {
		return info.PStateIndex
	}
	util := info.Sample.Cycles() / capacity
	if util > 1 {
		util = 1
	}
	th := o.threshold()
	if util >= th {
		return info.Table.Len() - 1
	}
	// Choose the lowest frequency that would run at ~threshold
	// utilization for the same busy-cycle demand.
	demand := util * float64(info.PState.FreqMHz)
	for i := 0; i < info.Table.Len(); i++ {
		if float64(info.Table.At(i).FreqMHz)*th >= demand {
			return i
		}
	}
	return info.Table.Len() - 1
}
