// Package control implements the paper's power-management policies as
// machine governors, each following the three-phase loop of §III
// (monitor → estimate/predict → control):
//
//   - PerformanceMaximizer (PM, §IV-A): highest frequency whose
//     predicted power stays under a runtime-adjustable limit, with a
//     0.5 W guardband, immediate down-shifts and a 100 ms up-shift
//     hysteresis.
//   - PowerSave (PS, §IV-B): lowest frequency whose predicted
//     performance stays above a floor relative to peak.
//   - StaticClock: the conventional fixed-frequency baseline.
//   - OnDemand: a Linux-ondemand-style utilization governor included
//     as an additional related-work baseline (Demand-Based Switching).
//
// All policies see only TickInfo — the counters a real deployment
// would have — never the platform's ground truth.
package control

import (
	"fmt"
	"math"

	"aapm/internal/machine"
	"aapm/internal/model"
	"aapm/internal/pstate"
	"aapm/internal/trace"
)

// StaticClock pins one p-state for the whole run — the paper's
// "static clocking" baseline (and, at the table extremes, its
// unconstrained-2GHz and maximum-savings-600MHz reference runs).
type StaticClock struct {
	Index int
	label string
}

// NewStaticClock pins p-state index i.
func NewStaticClock(i int, label string) *StaticClock {
	if label == "" {
		label = fmt.Sprintf("static[%d]", i)
	}
	return &StaticClock{Index: i, label: label}
}

// Name returns the policy label.
func (s *StaticClock) Name() string { return s.label }

// Tick always returns the pinned index.
func (s *StaticClock) Tick(machine.TickInfo) int { return s.Index }

// InitialIndex pins the run's starting p-state so a static run never
// spends its first interval at the platform default.
func (s *StaticClock) InitialIndex(int) int { return s.Index }

// PMConfig parameterizes a PerformanceMaximizer.
type PMConfig struct {
	// Model estimates power per p-state from DPC; nil selects the
	// published Table II model.
	Model *model.PowerModel
	// LimitW is the initial power limit.
	LimitW float64
	// GuardbandW is added to estimates before the limit comparison.
	// The zero value selects the paper's 0.5 W; pass a negative value
	// to disable the guardband entirely (ablation use).
	GuardbandW float64
	// RaiseTicks is the number of consecutive raise-indicating samples
	// required before shifting up; 0 selects the paper's 10 (100 ms of
	// 10 ms samples).
	RaiseTicks int
	// FeedbackGain, when positive, enables the measured-power feedback
	// extension the paper sketches as future work: a multiplicative
	// correction factor tracks measured/estimated power with this EMA
	// gain and scales subsequent estimates.
	FeedbackGain float64
	// DisableDPCProjection skips the paper's eq. 4 projection and
	// evaluates every candidate p-state at the observed decode rate.
	// Ablation use only: without the conservative down-projection the
	// power estimate for lower frequencies is too optimistic for
	// memory-bound work.
	DisableDPCProjection bool
	// Degrade enables graceful degradation under faulted inputs:
	// implausible counter samples (wrapped deltas, counts without
	// cycles) evaluate at the last good decode rate instead of
	// garbage, and while the power sensor is unreadable
	// (NaN/Inf/non-positive readings) the guardband widens by
	// DegradeGuardbandW and the feedback correction holds its last
	// good value. Degradation decisions are logged and surfaced in
	// trace.Run via the machine's DegradationReporter hook.
	Degrade bool
	// DegradeGuardbandW is the extra guardband applied while the
	// sensor is unreadable; 0 selects DefaultDegradeGuardbandW. Only
	// meaningful with Degrade.
	DegradeGuardbandW float64
}

// DefaultGuardbandW is the paper's 0.5 W estimation guardband.
const DefaultGuardbandW = 0.5

// DefaultRaiseTicks is the paper's 100 ms of consecutive 10 ms samples.
const DefaultRaiseTicks = 10

// DefaultDegradeGuardbandW is the extra guardband a degraded PM
// applies while its power sensor is unreadable: twice the normal
// guardband, covering the estimation error the measured-power loop
// can no longer observe.
const DefaultDegradeGuardbandW = 1.0

// sensorReadingOK reports whether a measured-power sample is usable:
// finite and positive (a live platform always draws power; NaN marks
// a dropped acquisition, zero a dead channel).
func sensorReadingOK(w float64) bool {
	return !math.IsNaN(w) && !math.IsInf(w, 0) && w > 0
}

// PerformanceMaximizer implements the PM policy.
type PerformanceMaximizer struct {
	cfg       PMConfig
	limitW    float64
	pendingUp int
	// corr is the feedback correction factor (1 = trust the model).
	corr float64

	// Graceful-degradation state (cfg.Degrade).
	lastGoodDPC float64
	lastDPC     float64 // decode rate the last tick evaluated
	lastGB      float64 // guardband the last tick applied
	inDropout   bool
	inHold      bool
	degr        []trace.Degradation
}

// NewPerformanceMaximizer builds a PM with the given configuration.
func NewPerformanceMaximizer(cfg PMConfig) (*PerformanceMaximizer, error) {
	if cfg.Model == nil {
		cfg.Model = model.PaperPowerModel()
	}
	if cfg.LimitW <= 0 {
		return nil, fmt.Errorf("control: PM needs a positive power limit, got %g", cfg.LimitW)
	}
	switch {
	case cfg.GuardbandW == 0:
		cfg.GuardbandW = DefaultGuardbandW
	case cfg.GuardbandW < 0:
		cfg.GuardbandW = 0
	}
	if cfg.RaiseTicks <= 0 {
		cfg.RaiseTicks = DefaultRaiseTicks
	}
	if cfg.FeedbackGain < 0 || cfg.FeedbackGain > 1 {
		return nil, fmt.Errorf("control: PM feedback gain %g outside [0,1]", cfg.FeedbackGain)
	}
	if cfg.DegradeGuardbandW < 0 || math.IsNaN(cfg.DegradeGuardbandW) {
		return nil, fmt.Errorf("control: PM degrade guardband %g negative", cfg.DegradeGuardbandW)
	}
	if cfg.Degrade && cfg.DegradeGuardbandW == 0 {
		cfg.DegradeGuardbandW = DefaultDegradeGuardbandW
	}
	return &PerformanceMaximizer{cfg: cfg, limitW: cfg.LimitW, corr: 1, lastGB: cfg.GuardbandW}, nil
}

// Name identifies the policy in traces.
func (pm *PerformanceMaximizer) Name() string {
	suffix := ""
	if pm.cfg.Degrade {
		suffix = "+dg"
	}
	if pm.cfg.FeedbackGain > 0 {
		return fmt.Sprintf("PM+fb%s(%.1fW)", suffix, pm.limitW)
	}
	return fmt.Sprintf("PM%s(%.1fW)", suffix, pm.limitW)
}

// SetLimit changes the power limit, effective at the next tick — the
// simulation analogue of the SIGUSR1/SIGUSR2 runtime limit changes the
// prototype accepts.
func (pm *PerformanceMaximizer) SetLimit(w float64) {
	pm.limitW = w
	pm.pendingUp = 0
}

// BypassHysteresis arms the next tick to raise immediately if its
// estimate permits, instead of waiting out the full RaiseTicks streak.
// Phase-aware wrappers call it when the workload demonstrably switched
// regimes, making the conservative streak requirement moot.
func (pm *PerformanceMaximizer) BypassHysteresis() {
	pm.pendingUp = pm.cfg.RaiseTicks - 1
}

// Limit returns the active power limit.
func (pm *PerformanceMaximizer) Limit() float64 { return pm.limitW }

// Tick chooses the highest p-state whose corrected power estimate,
// plus guardband, fits the limit. Down-shifts apply immediately;
// up-shifts wait for RaiseTicks consecutive supporting samples.
//
// With cfg.Degrade, faulted inputs degrade the policy gracefully
// instead of corrupting it: an implausible counter sample evaluates
// at the last good decode rate, and while the sensor is unreadable
// the guardband widens by cfg.DegradeGuardbandW and the feedback
// correction freezes at its last good value.
func (pm *PerformanceMaximizer) Tick(info machine.TickInfo) int {
	return pm.TickP(&info)
}

// TickP is Tick without the TickInfo copy, for callers that already
// hold the interval record in memory (the batch kernel's hot path).
// Identical decision arithmetic.
func (pm *PerformanceMaximizer) TickP(info *machine.TickInfo) int {
	dpc := info.Sample.DPC()
	counterOK := !info.Sample.Implausible() && !math.IsNaN(dpc) && !math.IsInf(dpc, 0) && dpc >= 0
	if pm.cfg.Degrade {
		if counterOK {
			pm.lastGoodDPC = dpc
			if pm.inHold {
				pm.inHold = false
				pm.note("pm", "counters-restored", "")
			}
		} else {
			dpc = pm.lastGoodDPC
			if !pm.inHold {
				pm.inHold = true
				pm.note("pm", "hold-dpc", fmt.Sprintf("implausible sample; evaluating at last good DPC %.3f", dpc))
			}
		}
	}
	sensorOK := sensorReadingOK(info.MeasuredPowerW)
	gb := pm.cfg.GuardbandW
	if pm.cfg.Degrade && !sensorOK {
		gb += pm.cfg.DegradeGuardbandW
		if !pm.inDropout {
			pm.inDropout = true
			pm.note("pm", "sensor-dropout", fmt.Sprintf("guardband widened to %.2f W; feedback frozen", gb))
		}
	} else if pm.inDropout {
		pm.inDropout = false
		pm.note("pm", "sensor-restored", "")
	}
	pm.lastGB = gb
	if pm.cfg.FeedbackGain > 0 && sensorOK {
		est := pm.corr * pm.cfg.Model.Estimate(info.PStateIndex, dpc)
		if est > 0 {
			g := pm.cfg.FeedbackGain
			pm.corr *= 1 + g*(info.MeasuredPowerW/est-1)
			if pm.corr < 0.5 {
				pm.corr = 0.5
			}
			if pm.corr > 2 {
				pm.corr = 2
			}
		}
	}
	pm.lastDPC = dpc
	want := 0
	for i := info.Table.Len() - 1; i >= 0; i-- {
		var est float64
		if pm.cfg.DisableDPCProjection {
			est = pm.cfg.Model.Estimate(i, dpc)
		} else {
			est = pm.cfg.Model.EstimateAt(i, dpc, info.PState.FreqMHz)
		}
		est = pm.corr*est + gb
		if est <= pm.limitW {
			want = i
			break
		}
	}
	switch {
	case want < info.PStateIndex:
		pm.pendingUp = 0
		return want
	case want > info.PStateIndex:
		pm.pendingUp++
		if pm.pendingUp >= pm.cfg.RaiseTicks {
			pm.pendingUp = 0
			return want
		}
		return info.PStateIndex
	default:
		pm.pendingUp = 0
		return info.PStateIndex
	}
}

// note records a degradation event for the machine to drain. Events
// carry no timestamp; the machine stamps virtual time when draining.
func (pm *PerformanceMaximizer) note(source, kind, detail string) {
	pm.degr = append(pm.degr, trace.Degradation{Source: source, Kind: kind, Detail: detail})
}

// DrainDegradations returns and clears degradation events recorded
// since the last drain (machine.DegradationReporter).
func (pm *PerformanceMaximizer) DrainDegradations() []trace.Degradation {
	d := pm.degr
	pm.degr = nil
	return d
}

// EffectiveGuardbandW returns the guardband the most recent tick
// applied — cfg.GuardbandW, widened by cfg.DegradeGuardbandW while a
// degraded PM's sensor is unreadable.
func (pm *PerformanceMaximizer) EffectiveGuardbandW() float64 { return pm.lastGB }

// LastEvalDPC returns the decode rate the most recent tick evaluated
// the power model at (the held last-good value during a counter hold).
func (pm *PerformanceMaximizer) LastEvalDPC() float64 { return pm.lastDPC }

// BudgetDesireW returns the power limit this PM would need to run the
// platform's top p-state for the given recent decode rate, including
// its guardband and (when feedback is enabled) the learned measurement
// correction. Budget coordinators use it as a node's demand signal.
func (pm *PerformanceMaximizer) BudgetDesireW(table *pstate.Table, dpc float64) float64 {
	top := table.Len() - 1
	return pm.corr*pm.cfg.Model.Estimate(top, dpc) + pm.cfg.GuardbandW
}

// PSConfig parameterizes a PowerSave policy.
type PSConfig struct {
	// Perf is the IPC projection model; the zero value selects the
	// published eq. 3 parameters (threshold 1.21, exponent 0.81).
	Perf model.PerfModel
	// Floor is the minimum acceptable performance relative to peak
	// (e.g. 0.8 allows a 20% slowdown).
	Floor float64
	// Degrade enables graceful degradation when counters go stale: a
	// zero or implausible sample arriving while the workload was
	// recently busy replays the last good sample for up to StaleTicks
	// intervals (hold), after which PS abandons the online projection
	// and falls back to the offline model — the lowest frequency that
	// meets the floor for a core-bound workload, a frequency that
	// satisfies the floor for every memory-boundedness. Zero samples
	// with no busy history still mean idle (minimum frequency).
	Degrade bool
	// StaleTicks is how many consecutive stale intervals PS holds the
	// last good projection before the offline fallback; 0 selects
	// DefaultStaleTicks. Only meaningful with Degrade.
	StaleTicks int
}

// DefaultStaleTicks is how long a degraded PS trusts a held projection
// (5 intervals = 50 ms) before falling back to the offline model.
const DefaultStaleTicks = 5

// PSMode labels the decision path a degraded PowerSave tick took.
type PSMode int

// PowerSave decision modes, reported by LastMode.
const (
	// PSNormal projects from the current (good) sample.
	PSNormal PSMode = iota
	// PSIdle saw a zero sample with no recent busy history.
	PSIdle
	// PSHold replayed the last good sample during a stale episode.
	PSHold
	// PSOffline uses the offline core-bound fallback after a stale
	// episode outlasted StaleTicks.
	PSOffline
)

// String returns the mode's lowercase name.
func (m PSMode) String() string {
	switch m {
	case PSNormal:
		return "normal"
	case PSIdle:
		return "idle"
	case PSHold:
		return "hold"
	case PSOffline:
		return "offline"
	}
	return fmt.Sprintf("psmode(%d)", int(m))
}

// PowerSave implements the PS policy: run as slow as the performance
// floor permits, even at full load.
type PowerSave struct {
	cfg PSConfig

	// Graceful-degradation state (cfg.Degrade).
	goodIPC  float64
	goodDCU  float64
	goodFrom int
	haveGood bool
	stale    int
	mode     PSMode
	degr     []trace.Degradation
}

// NewPowerSave builds a PS with the given configuration.
func NewPowerSave(cfg PSConfig) (*PowerSave, error) {
	if cfg.Perf == (model.PerfModel{}) {
		cfg.Perf = model.PaperPerfModel()
	}
	if err := cfg.Perf.Validate(); err != nil {
		return nil, err
	}
	if cfg.Floor <= 0 || cfg.Floor > 1 {
		return nil, fmt.Errorf("control: PS floor %g outside (0,1]", cfg.Floor)
	}
	if cfg.StaleTicks < 0 {
		return nil, fmt.Errorf("control: PS stale ticks %d negative", cfg.StaleTicks)
	}
	if cfg.Degrade && cfg.StaleTicks == 0 {
		cfg.StaleTicks = DefaultStaleTicks
	}
	return &PowerSave{cfg: cfg}, nil
}

// Name identifies the policy in traces.
func (ps *PowerSave) Name() string {
	suffix := ""
	if ps.cfg.Degrade {
		suffix = "+dg"
	}
	return fmt.Sprintf("PS%s(%.0f%%,e=%.2f)", suffix, ps.cfg.Floor*100, ps.cfg.Perf.Exponent)
}

// Floor returns the configured performance floor.
func (ps *PowerSave) Floor() float64 { return ps.cfg.Floor }

// LastMode returns the decision path the most recent tick took.
func (ps *PowerSave) LastMode() PSMode { return ps.mode }

// note records a degradation event for the machine to drain.
func (ps *PowerSave) note(kind, detail string) {
	ps.degr = append(ps.degr, trace.Degradation{Source: "ps", Kind: kind, Detail: detail})
}

// DrainDegradations returns and clears degradation events recorded
// since the last drain (machine.DegradationReporter).
func (ps *PowerSave) DrainDegradations() []trace.Degradation {
	d := ps.degr
	ps.degr = nil
	return d
}

// sampleUsable reports whether the tick's counter-derived rates can
// feed the projection model.
func sampleUsable(ipc, dcu float64) bool {
	return !math.IsNaN(ipc) && !math.IsInf(ipc, 0) && ipc >= 0 &&
		!math.IsNaN(dcu) && !math.IsInf(dcu, 0) && dcu >= 0
}

// Tick predicts throughput (IPC*f) at every p-state from the current
// sample and picks the lowest frequency whose predicted performance
// clears Floor x the predicted peak performance.
//
// With cfg.Degrade, stale counters (zero or implausible samples while
// recently busy) replay the last good sample for up to StaleTicks
// intervals, then fall back to the offline core-bound model.
func (ps *PowerSave) Tick(info machine.TickInfo) int {
	return ps.TickP(&info)
}

// TickP is Tick without the TickInfo copy, for the batch kernel's hot
// path. Identical decision arithmetic.
func (ps *PowerSave) TickP(info *machine.TickInfo) int {
	ipc := info.Sample.IPC()
	dcu := info.Sample.DCUPerInst()
	from := info.PState.FreqMHz
	usable := sampleUsable(ipc, dcu) && !info.Sample.Implausible()
	if ps.cfg.Degrade {
		switch {
		case usable && ipc > 0:
			// Good busy sample: remember it and project normally.
			ps.goodIPC, ps.goodDCU, ps.goodFrom = ipc, dcu, from
			ps.haveGood = true
			if ps.stale > 0 {
				ps.note("counters-restored", "")
			}
			ps.stale = 0
			ps.mode = PSNormal
		case !ps.haveGood:
			// Zero (or garbage) sample with no busy history: idle.
			ps.mode = PSIdle
			return 0
		default:
			// Stale episode: hold the last good projection, then
			// abandon the online model.
			ps.stale++
			if ps.stale == 1 {
				ps.note("stale-counters", fmt.Sprintf("holding projection from %.3f IPC @%d MHz", ps.goodIPC, ps.goodFrom))
			}
			if ps.stale > ps.cfg.StaleTicks {
				if ps.stale == ps.cfg.StaleTicks+1 {
					ps.note("offline-fallback", fmt.Sprintf("stale for %d ticks; using offline core-bound floor", ps.stale))
				}
				ps.mode = PSOffline
				return ps.offlineIndex(info.Table)
			}
			ps.mode = PSHold
			ipc, dcu, from = ps.goodIPC, ps.goodDCU, ps.goodFrom
		}
	} else {
		ps.mode = PSNormal
		if !usable {
			// Garbage rates would poison the projection; stand still.
			return info.PStateIndex
		}
		if ipc == 0 {
			// Idle interval: any frequency meets the floor; save maximally.
			ps.mode = PSIdle
			return 0
		}
	}
	maxIdx := info.Table.Len() - 1
	peak := ps.cfg.Perf.ProjectPerf(ipc, dcu, from, info.Table.At(maxIdx).FreqMHz)
	if !(peak > 0) {
		// Covers zero, negative and NaN projections alike.
		return info.PStateIndex
	}
	// The relative tolerance keeps exact-boundary states (e.g. 1600 MHz
	// for an 80% floor on a 2000 MHz part) on the feasible side of
	// floating-point rounding.
	need := ps.cfg.Floor * peak * (1 - 1e-9)
	for i := 0; i <= maxIdx; i++ {
		if ps.cfg.Perf.ProjectPerf(ipc, dcu, from, info.Table.At(i).FreqMHz) >= need {
			return i
		}
	}
	return maxIdx
}

// offlineIndex is the degraded fallback when counters have been stale
// too long: the lowest p-state whose frequency ratio alone meets the
// floor. A core-bound workload's performance scales linearly with
// frequency — the worst case — so f >= Floor*fmax satisfies the floor
// for every memory-boundedness.
func (ps *PowerSave) offlineIndex(t *pstate.Table) int {
	fmax := float64(t.Max().FreqMHz)
	for i := 0; i < t.Len(); i++ {
		if float64(t.At(i).FreqMHz) >= ps.cfg.Floor*fmax*(1-1e-9) {
			return i
		}
	}
	return t.Len() - 1
}

// OnDemand approximates the Linux ondemand governor: jump to maximum
// frequency when utilization exceeds the up-threshold, otherwise pick
// the lowest frequency that keeps utilization at the threshold. With
// the paper's fully loaded SPEC workloads it pins the maximum state —
// exactly the "saving energy only during low utilization is
// insufficient" behaviour PS improves on.
type OnDemand struct {
	// UpThreshold is the utilization that triggers max frequency;
	// 0 selects the classic 0.8.
	UpThreshold float64
}

// Name identifies the policy in traces.
func (o *OnDemand) Name() string { return "ondemand" }

func (o *OnDemand) threshold() float64 {
	if o.UpThreshold <= 0 || o.UpThreshold > 1 {
		return 0.8
	}
	return o.UpThreshold
}

// Tick computes utilization as busy cycles over interval capacity.
func (o *OnDemand) Tick(info machine.TickInfo) int {
	capacity := info.PState.FreqHz() * info.Interval.Seconds()
	if capacity <= 0 {
		return info.PStateIndex
	}
	util := info.Sample.Cycles() / capacity
	if util > 1 {
		util = 1
	}
	th := o.threshold()
	if util >= th {
		return info.Table.Len() - 1
	}
	// Choose the lowest frequency that would run at ~threshold
	// utilization for the same busy-cycle demand.
	demand := util * float64(info.PState.FreqMHz)
	for i := 0; i < info.Table.Len(); i++ {
		if float64(info.Table.At(i).FreqMHz)*th >= demand {
			return i
		}
	}
	return info.Table.Len() - 1
}
