package control

import (
	"fmt"

	"aapm/internal/counters"
	"aapm/internal/machine"
)

// Multiplexed wraps a governor so it observes counter samples through
// a rotating multiplexer instead of ideal full-width monitoring —
// what the policy would actually see on hardware with fewer physical
// counters than the events it consumes.
type Multiplexed struct {
	inner machine.Governor
	mux   *counters.Multiplexer
}

// NewMultiplexed schedules the listed events onto nphys physical
// counters in front of the inner governor.
func NewMultiplexed(inner machine.Governor, nphys int, events []counters.Event) (*Multiplexed, error) {
	if inner == nil {
		return nil, fmt.Errorf("control: nil inner governor")
	}
	mux, err := counters.NewMultiplexer(nphys, events)
	if err != nil {
		return nil, err
	}
	return &Multiplexed{inner: inner, mux: mux}, nil
}

// Name identifies the wrapped policy in traces.
func (m *Multiplexed) Name() string { return m.inner.Name() + "+mux" }

// Tick filters the sample through the multiplexer before delegating.
func (m *Multiplexed) Tick(info machine.TickInfo) int {
	info.Sample = m.mux.Observe(info.Sample)
	return m.inner.Tick(info)
}

// InitialIndex delegates if the inner governor pins a start state.
func (m *Multiplexed) InitialIndex(def int) int {
	if is, ok := m.inner.(machine.InitialStater); ok {
		return is.InitialIndex(def)
	}
	return def
}

// Duty delegates clock modulation if the inner governor throttles.
func (m *Multiplexed) Duty() float64 {
	if th, ok := m.inner.(machine.Throttler); ok {
		return th.Duty()
	}
	return 1
}
