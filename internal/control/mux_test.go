package control

import (
	"testing"

	"aapm/internal/counters"
)

func TestNewMultiplexedValidation(t *testing.T) {
	if _, err := NewMultiplexed(nil, 2, []counters.Event{counters.InstRetired}); err == nil {
		t.Error("nil inner governor accepted")
	}
	ps, _ := NewPowerSave(PSConfig{Floor: 0.8})
	if _, err := NewMultiplexed(ps, 0, []counters.Event{counters.InstRetired}); err == nil {
		t.Error("zero counters accepted")
	}
}

func TestMultiplexedDelegates(t *testing.T) {
	ps, _ := NewPowerSave(PSConfig{Floor: 0.8})
	// Two physical counters fit PS's two events: behaviour identical
	// to the unwrapped policy.
	mux, err := NewMultiplexed(ps, 2, []counters.Event{counters.InstRetired, counters.DCUMissOutstanding})
	if err != nil {
		t.Fatal(err)
	}
	if mux.Name() != "PS(80%,e=0.81)+mux" {
		t.Errorf("Name = %q", mux.Name())
	}
	info := tick(2000, 1.5, 1.4, 0.1, 0)
	ps2, _ := NewPowerSave(PSConfig{Floor: 0.8})
	if got, want := mux.Tick(info), ps2.Tick(info); got != want {
		t.Errorf("transparent mux decision %d, want %d", got, want)
	}
}

func TestMultiplexedStaleEventChangesDecision(t *testing.T) {
	// One physical counter: the DCU event is stale every other tick.
	// First tick observes only InstRetired, so DCU reads zero ->
	// core-bound classification even for a memory-bound sample.
	ps, _ := NewPowerSave(PSConfig{Floor: 0.8})
	mux, _ := NewMultiplexed(ps, 1, []counters.Event{counters.InstRetired, counters.DCUMissOutstanding})
	memInfo := tick(2000, 0.3, 0.2, 4.0, 0)
	got := mux.Tick(memInfo)
	// Unwrapped PS would drop to 800 MHz (memory-classified); the
	// muxed one, blind to DCU on this tick, treats it core-bound and
	// picks 1600.
	if f := memInfo.Table.At(got).FreqMHz; f != 1600 {
		t.Errorf("stale-DCU tick chose %d MHz, want 1600", f)
	}
	// Next tick observes DCU and recovers the memory classification.
	got = mux.Tick(memInfo)
	if f := memInfo.Table.At(got).FreqMHz; f != 800 {
		t.Errorf("post-rotation tick chose %d MHz, want 800", f)
	}
}

func TestMultiplexedPassthroughInterfaces(t *testing.T) {
	sc := NewStaticClock(3, "s")
	mux, _ := NewMultiplexed(sc, 2, []counters.Event{counters.InstRetired})
	if mux.InitialIndex(7) != 3 {
		t.Error("InitialIndex not delegated")
	}
	if mux.Duty() != 1 {
		t.Error("non-throttling inner reported duty != 1")
	}
	th, _ := NewThrottleSave(ThrottleSaveConfig{Floor: 0.5})
	mux2, _ := NewMultiplexed(th, 2, []counters.Event{counters.InstRetired})
	mux2.Tick(tick(2000, 1, 1, 0.1, 0))
	if mux2.Duty() != 0.5 {
		t.Errorf("throttling inner duty = %g", mux2.Duty())
	}
}
