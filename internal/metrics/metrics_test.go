package metrics

import (
	"math"
	"strings"
	"testing"
	"time"

	"aapm/internal/control"
	"aapm/internal/machine"
	"aapm/internal/phase"
	"aapm/internal/sensor"
)

func collectorRun(t *testing.T, limitW float64) (*Collector, int, time.Duration) {
	t.Helper()
	m, err := machine.New(machine.Config{Seed: 1, Chain: sensor.NIDefault()})
	if err != nil {
		t.Fatal(err)
	}
	w := phase.Workload{
		Name: "metrics-test",
		Phases: []phase.Params{{
			Name: "p", Instructions: 5e8,
			CPICore: 0.5, L2APKI: 10, MemAPKI: 1, MLP: 2, SpecFactor: 1.2, StallFrac: 0.05,
		}},
	}
	pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: 14.5})
	if err != nil {
		t.Fatal(err)
	}
	col := &Collector{LimitW: limitW}
	run, err := m.RunWith(w, pm, col)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check the collector against the canonical trace.
	if col.Ticks != len(run.Rows) {
		t.Errorf("Ticks = %d, want %d rows", col.Ticks, len(run.Rows))
	}
	if col.Duration != run.Duration {
		t.Errorf("Duration = %v, want %v", col.Duration, run.Duration)
	}
	if col.Transitions != run.Transitions {
		t.Errorf("Transitions = %d, want %d", col.Transitions, run.Transitions)
	}
	if col.FailedTransitions != run.FailedTransitions {
		t.Errorf("FailedTransitions = %d, want %d", col.FailedTransitions, run.FailedTransitions)
	}
	if math.Abs(col.EnergyJ-run.EnergyJ) > 1e-9*run.EnergyJ {
		t.Errorf("EnergyJ = %g, want %g", col.EnergyJ, run.EnergyJ)
	}
	if !col.Done {
		t.Error("OnDone never fired")
	}
	var over int
	if limitW > 0 {
		for _, r := range run.Rows {
			if r.MeasuredPowerW > limitW {
				over++
			}
		}
	}
	return col, over, run.Duration
}

func TestCollectorMatchesRun(t *testing.T) {
	col, over, _ := collectorRun(t, 14.5)
	if col.Violations != over {
		t.Errorf("Violations = %d, want %d rows over limit", col.Violations, over)
	}
	if col.Ticks > 0 {
		want := float64(over) / float64(col.Ticks)
		if col.ViolationFrac() != want {
			t.Errorf("ViolationFrac = %g, want %g", col.ViolationFrac(), want)
		}
	}
	if avg := col.AvgPowerW(); avg <= 0 || avg > 50 {
		t.Errorf("AvgPowerW = %g, implausible", avg)
	}
}

func TestCollectorNoLimitCountsNoViolations(t *testing.T) {
	col, _, _ := collectorRun(t, 0)
	if col.Violations != 0 {
		t.Errorf("Violations = %d with no limit, want 0", col.Violations)
	}
	if col.ViolationFrac() != 0 {
		t.Errorf("ViolationFrac = %g with no limit", col.ViolationFrac())
	}
}

func TestCollectorStageTiming(t *testing.T) {
	m, err := machine.New(machine.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := phase.Workload{
		Name:   "timing-test",
		Phases: []phase.Params{{Name: "p", Instructions: 2e8, CPICore: 0.5, MLP: 1, SpecFactor: 1.1}},
	}
	col := &Collector{}
	s, err := m.NewSession(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Subscribe(col)
	s.EnableStageTiming()
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	s.Result()
	if col.StageTotal() <= 0 {
		t.Error("stage timing enabled but StageTotal is zero")
	}
	var b strings.Builder
	if err := col.Print(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range machine.StageNames {
		if !strings.Contains(out, name) {
			t.Errorf("Print output missing stage %q:\n%s", name, out)
		}
	}
}

func TestCollectorPrint(t *testing.T) {
	col, _, _ := collectorRun(t, 14.5)
	var b strings.Builder
	if err := col.Print(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"ticks", "transitions", "energy", "violations"} {
		if !strings.Contains(out, want) {
			t.Errorf("Print output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "per-stage wall-clock") {
		t.Error("per-stage section printed without timing enabled")
	}
	// Zero-value collector prints without dividing by zero.
	var zero Collector
	var zb strings.Builder
	if err := zero.Print(&zb); err != nil {
		t.Fatal(err)
	}
	if zero.AvgPowerW() != 0 || zero.ViolationFrac() != 0 {
		t.Error("zero-value collector derived nonzero ratios")
	}
}

func TestWallClock(t *testing.T) {
	var w WallClock
	if w.Avg() != 0 {
		t.Error("empty aggregate has nonzero average")
	}
	for _, d := range []time.Duration{3 * time.Microsecond, 9 * time.Microsecond, 6 * time.Microsecond} {
		w.Add(d)
	}
	if w.N != 3 || w.Total != 18*time.Microsecond {
		t.Errorf("N=%d Total=%v, want 3 and 18us", w.N, w.Total)
	}
	if w.Max != 9*time.Microsecond {
		t.Errorf("Max=%v, want 9us", w.Max)
	}
	if w.Min != 3*time.Microsecond {
		t.Errorf("Min=%v, want 3us", w.Min)
	}
	if w.Avg() != 6*time.Microsecond {
		t.Errorf("Avg=%v, want 6us", w.Avg())
	}
}

func wallOf(ds ...time.Duration) WallClock {
	var w WallClock
	for _, d := range ds {
		w.Add(d)
	}
	return w
}

func TestWallClockMergeIdentity(t *testing.T) {
	// Merging the zero value is the identity, both ways.
	w := wallOf(3*time.Microsecond, 9*time.Microsecond)
	before := w
	w.Merge(WallClock{})
	if w != before {
		t.Errorf("w.Merge(zero) changed w: %+v -> %+v", before, w)
	}
	var z WallClock
	z.Merge(before)
	if z != before {
		t.Errorf("zero.Merge(w) = %+v, want %+v", z, before)
	}
}

func TestWallClockMergeCommutative(t *testing.T) {
	a := wallOf(3*time.Microsecond, 9*time.Microsecond)
	b := wallOf(1*time.Microsecond, 20*time.Microsecond, 5*time.Microsecond)
	ab, ba := a, b
	ab.Merge(b)
	ba.Merge(a)
	if ab != ba {
		t.Errorf("merge not commutative: a+b=%+v b+a=%+v", ab, ba)
	}
	if ab.N != 5 || ab.Total != 38*time.Microsecond {
		t.Errorf("merged N/Total = %d/%v", ab.N, ab.Total)
	}
	// The distribution tails survive the merge.
	if ab.Min != 1*time.Microsecond || ab.Max != 20*time.Microsecond {
		t.Errorf("merged Min/Max = %v/%v, want 1us/20us", ab.Min, ab.Max)
	}
	// Merging equals adding every sample to one aggregate.
	want := wallOf(3*time.Microsecond, 9*time.Microsecond, 1*time.Microsecond, 20*time.Microsecond, 5*time.Microsecond)
	if ab != want {
		t.Errorf("merge disagrees with sequential Add: %+v vs %+v", ab, want)
	}
}
