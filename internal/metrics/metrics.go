// Package metrics aggregates per-run engine counters from the
// machine's staged tick engine. A Collector subscribes to a session's
// Hook bus (machine.Session.Subscribe / Machine.RunWith) and tallies
// ticks, transitions, stall time, energy, power-limit violations,
// degradation events and — when the session has stage timing enabled —
// per-stage wall-clock, without touching the trace itself.
package metrics

import (
	"fmt"
	"io"
	"time"

	"aapm/internal/machine"
	"aapm/internal/trace"
)

// WallClock aggregates host wall-clock samples of a repeated
// operation — e.g. the cluster coordinator's per-tick step/aggregate/
// reallocate cycle, where it makes worker-pool speedups observable.
// Purely observational: wall-clock never feeds back into virtual time
// or policy decisions, so timed runs stay deterministic. The zero
// value is ready to use. Not safe for concurrent use.
type WallClock struct {
	// N is the number of samples; Total their sum; Max the largest;
	// Min the smallest (0 before any Add).
	N     int
	Total time.Duration
	Max   time.Duration
	Min   time.Duration
}

// Add records one sample.
func (w *WallClock) Add(d time.Duration) {
	if w.N == 0 || d < w.Min {
		w.Min = d
	}
	w.N++
	w.Total += d
	if d > w.Max {
		w.Max = d
	}
}

// Merge folds another aggregate into w, preserving the distribution
// tails (Min and Max) — how the cluster coordinator combines its
// workers' per-tick shard timings into one Result.TickWall. Merging
// the zero value is the identity, and Merge is commutative up to
// field equality.
func (w *WallClock) Merge(o WallClock) {
	if o.N == 0 {
		return
	}
	if w.N == 0 || o.Min < w.Min {
		w.Min = o.Min
	}
	if o.Max > w.Max {
		w.Max = o.Max
	}
	w.N += o.N
	w.Total += o.Total
}

// Avg returns the mean sample, or 0 before any Add.
func (w *WallClock) Avg() time.Duration {
	if w.N == 0 {
		return 0
	}
	return w.Total / time.Duration(w.N)
}

// Collector is a machine.Hook that aggregates engine counters over
// one run. The zero value is ready to use; set LimitW to also count
// power-limit violations. A Collector must not be shared across
// concurrently stepped sessions.
type Collector struct {
	// LimitW, when positive, counts intervals whose measured power
	// exceeded it (the paper's adherence view of a run).
	LimitW float64

	// Ticks is the number of recorded intervals; Duration their
	// virtual-time sum.
	Ticks    int
	Duration time.Duration
	// Transitions counts p-state changes applied; FailedTransitions
	// attempts a faulted actuator abandoned.
	Transitions       int
	FailedTransitions int
	// StallTime sums halted time (transition latency + modulated-clock
	// stop fraction); BusyTime sums compute time.
	StallTime time.Duration
	BusyTime  time.Duration
	// EnergyJ integrates true power over the run.
	EnergyJ float64
	// Violations counts intervals with measured power above LimitW.
	Violations int
	// Degradations counts every degradation event on the bus (injected
	// faults plus governor graceful-degradation responses).
	Degradations int
	// StageNanos sums per-stage wall-clock in machine.StageNames
	// order; all zero unless the session enabled stage timing.
	StageNanos [machine.NumStages]int64
	// Done reports whether the run's result was finalized.
	Done bool
}

// OnTick implements machine.Hook.
func (c *Collector) OnTick(ts machine.TickState) {
	c.Ticks++
	c.Duration += ts.Used
	c.StallTime += ts.Stall
	c.BusyTime += ts.Busy
	c.EnergyJ += ts.TruePowerW * ts.Used.Seconds()
	if c.LimitW > 0 && ts.MeasuredPowerW > c.LimitW {
		c.Violations++
	}
	for i, n := range ts.StageNanos {
		c.StageNanos[i] += n
	}
}

// OnTransition implements machine.Hook.
func (c *Collector) OnTransition(tr machine.Transition) {
	if tr.OK {
		c.Transitions++
	} else {
		c.FailedTransitions++
	}
}

// OnDegradation implements machine.Hook.
func (c *Collector) OnDegradation(trace.Degradation) { c.Degradations++ }

// OnDone implements machine.Hook.
func (c *Collector) OnDone(*trace.Run) { c.Done = true }

// AvgPowerW returns time-weighted average true power over the
// collected intervals.
func (c *Collector) AvgPowerW() float64 {
	if c.Duration <= 0 {
		return 0
	}
	return c.EnergyJ / c.Duration.Seconds()
}

// ViolationFrac returns the fraction of intervals over LimitW.
func (c *Collector) ViolationFrac() float64 {
	if c.Ticks == 0 {
		return 0
	}
	return float64(c.Violations) / float64(c.Ticks)
}

// StageTotal returns the summed wall-clock across all stages.
func (c *Collector) StageTotal() time.Duration {
	var n int64
	for _, v := range c.StageNanos {
		n += v
	}
	return time.Duration(n)
}

// Print writes the collected counters as an aligned table; per-stage
// wall-clock rows appear only when timing was enabled.
func (c *Collector) Print(w io.Writer) error {
	p := func(format string, args ...any) error {
		_, err := fmt.Fprintf(w, format, args...)
		return err
	}
	if err := p("engine metrics:\n"); err != nil {
		return err
	}
	rows := []struct {
		k, v string
	}{
		{"ticks", fmt.Sprintf("%d", c.Ticks)},
		{"virtual time", fmt.Sprintf("%.2fs", c.Duration.Seconds())},
		{"transitions", fmt.Sprintf("%d", c.Transitions)},
		{"failed transitions", fmt.Sprintf("%d", c.FailedTransitions)},
		{"stall time", fmt.Sprintf("%.1fms", float64(c.StallTime)/float64(time.Millisecond))},
		{"busy time", fmt.Sprintf("%.2fs", c.BusyTime.Seconds())},
		{"energy", fmt.Sprintf("%.1fJ", c.EnergyJ)},
		{"avg power", fmt.Sprintf("%.2fW", c.AvgPowerW())},
		{"degradations", fmt.Sprintf("%d", c.Degradations)},
	}
	if c.LimitW > 0 {
		rows = append(rows, struct{ k, v string }{
			"violations", fmt.Sprintf("%d (%.1f%% of intervals over %.1fW)", c.Violations, c.ViolationFrac()*100, c.LimitW),
		})
	}
	for _, r := range rows {
		if err := p("  %-20s %s\n", r.k, r.v); err != nil {
			return err
		}
	}
	if total := c.StageTotal(); total > 0 {
		if err := p("  per-stage wall-clock (total %v):\n", total.Round(time.Microsecond)); err != nil {
			return err
		}
		for i, n := range c.StageNanos {
			d := time.Duration(n)
			if err := p("    %-10s %10v  %5.1f%%\n", machine.StageNames[i], d.Round(time.Microsecond), 100*float64(n)/float64(total)); err != nil {
				return err
			}
		}
	}
	return nil
}
