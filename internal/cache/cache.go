// Package cache implements the set-associative cache models used to
// characterize the MS-Loops microbenchmarks from first principles.
//
// The simulated hierarchy mirrors the Pentium M 755 (Dothan): a 32 KB
// 8-way L1 data cache and a 2 MB 8-way unified L2, both with 64-byte
// lines, write-back/write-allocate, and true-LRU replacement, plus a
// simple sequential stream prefetcher in front of the L2 (the "DCU
// prefetcher" the paper credits for FMA's behaviour).
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	// SizeBytes is the total capacity.
	SizeBytes int
	// Ways is the set associativity.
	Ways int
	// LineBytes is the cache line size.
	LineBytes int
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineBytes)
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("cache: size %d not divisible by ways*line %d", c.SizeBytes, c.Ways*c.LineBytes)
	}
	sets := c.SizeBytes / (c.Ways * c.LineBytes)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of sets.
func (c Config) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// PentiumML1D returns the L1 data cache geometry (32 KB, 8-way, 64 B).
func PentiumML1D() Config { return Config{SizeBytes: 32 << 10, Ways: 8, LineBytes: 64} }

// PentiumML2 returns the L2 geometry (2 MB, 8-way, 64 B).
func PentiumML2() Config { return Config{SizeBytes: 2 << 20, Ways: 8, LineBytes: 64} }

type line struct {
	tag   uint64
	valid bool
	dirty bool
	// lru is a per-set logical timestamp; larger = more recent.
	lru uint64
}

// Stats counts the accesses a cache level served.
type Stats struct {
	Accesses   uint64
	Hits       uint64
	Misses     uint64
	Evictions  uint64
	Writebacks uint64
}

// MissRate returns Misses/Accesses, or 0 with no accesses.
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is one set-associative, write-back, write-allocate level.
type Cache struct {
	cfg      Config
	sets     [][]line
	setMask  uint64
	lineBits uint
	clock    uint64
	stats    Stats
}

// New builds a cache; it panics only on invalid configuration
// (programmer error), reported via error instead.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nsets := cfg.Sets()
	sets := make([][]line, nsets)
	backing := make([]line, nsets*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	lb := uint(0)
	for 1<<lb < cfg.LineBytes {
		lb++
	}
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		setMask:  uint64(nsets - 1),
		lineBits: lb,
	}, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the access counters so far.
func (c *Cache) Stats() Stats { return c.stats }

// Result describes the outcome of one access.
type Result struct {
	// Hit reports whether the line was present.
	Hit bool
	// WritebackAddr is the address of a dirty line evicted to make
	// room; valid only when Writeback is true.
	Writeback     bool
	WritebackAddr uint64
}

// Access looks up addr, allocating on miss (write-allocate). write
// marks the line dirty. The returned Result reports hit/miss and any
// dirty eviction the allocation caused.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.clock++
	c.stats.Accesses++
	lineAddr := addr >> c.lineBits
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> popBits(c.setMask)

	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.stats.Hits++
			set[i].lru = c.clock
			if write {
				set[i].dirty = true
			}
			return Result{Hit: true}
		}
	}
	c.stats.Misses++
	// Victim: invalid way first, else least recently used.
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	var res Result
	if set[victim].valid {
		c.stats.Evictions++
		if set[victim].dirty {
			c.stats.Writebacks++
			res.Writeback = true
			res.WritebackAddr = c.rebuild(set[victim].tag, lineAddr&c.setMask)
		}
	}
	set[victim] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return res
}

// Contains reports whether addr's line is resident, without touching
// LRU state or statistics.
func (c *Cache) Contains(addr uint64) bool {
	lineAddr := addr >> c.lineBits
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> popBits(c.setMask)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Fill inserts addr's line without counting a demand access (used for
// prefetches). It marks the line clean and returns any dirty eviction.
func (c *Cache) Fill(addr uint64) Result {
	c.clock++
	lineAddr := addr >> c.lineBits
	set := c.sets[lineAddr&c.setMask]
	tag := lineAddr >> popBits(c.setMask)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return Result{Hit: true}
		}
	}
	victim := 0
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	var res Result
	if set[victim].valid {
		c.stats.Evictions++
		if set[victim].dirty {
			c.stats.Writebacks++
			res.Writeback = true
			res.WritebackAddr = c.rebuild(set[victim].tag, lineAddr&c.setMask)
		}
	}
	set[victim] = line{tag: tag, valid: true, lru: c.clock}
	return res
}

func (c *Cache) rebuild(tag, setIdx uint64) uint64 {
	return (tag<<popBits(c.setMask) | setIdx) << c.lineBits
}

func popBits(mask uint64) uint {
	n := uint(0)
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return c.cfg.LineBytes }
