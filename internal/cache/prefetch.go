package cache

// StreamPrefetcher models the Pentium M's hardware prefetcher: it
// watches demand misses, detects ascending sequential streams and,
// once a stream is confirmed, requests the next lines ahead of the
// demand accesses.
type StreamPrefetcher struct {
	lineBytes uint64
	streams   []stream
	degree    int
	clock     uint64

	issued uint64
	useful uint64
}

type stream struct {
	nextLine uint64 // next expected miss line address
	conf     int    // confirmation count
	valid    bool
	lru      uint64
}

// NewStreamPrefetcher tracks up to nStreams concurrent streams and
// prefetches degree lines ahead once a stream has two consecutive
// sequential misses.
func NewStreamPrefetcher(lineBytes, nStreams, degree int) *StreamPrefetcher {
	if nStreams <= 0 {
		nStreams = 8
	}
	if degree <= 0 {
		degree = 2
	}
	return &StreamPrefetcher{
		lineBytes: uint64(lineBytes),
		streams:   make([]stream, nStreams),
		degree:    degree,
	}
}

// OnMiss records a demand miss at addr and returns the line-aligned
// addresses the prefetcher wants fetched (possibly none).
func (p *StreamPrefetcher) OnMiss(addr uint64) []uint64 {
	p.clock++
	lineAddr := addr &^ (p.lineBytes - 1)
	next := lineAddr + p.lineBytes

	// Existing stream hit?
	for i := range p.streams {
		s := &p.streams[i]
		if s.valid && lineAddr == s.nextLine {
			s.conf++
			s.nextLine = next
			s.lru = p.clock
			if s.conf >= 2 {
				p.issued += uint64(p.degree)
				out := make([]uint64, p.degree)
				for d := 0; d < p.degree; d++ {
					out[d] = next + uint64(d)*p.lineBytes
				}
				return out
			}
			return nil
		}
	}
	// Allocate a new stream over the LRU slot.
	victim := 0
	for i := range p.streams {
		if !p.streams[i].valid {
			victim = i
			break
		}
		if p.streams[i].lru < p.streams[victim].lru {
			victim = i
		}
	}
	p.streams[victim] = stream{nextLine: next, conf: 1, valid: true, lru: p.clock}
	return nil
}

// NoteUseful records that a prefetched line was later hit by a demand
// access; exposed so the hierarchy can track prefetch accuracy.
func (p *StreamPrefetcher) NoteUseful() { p.useful++ }

// Issued returns the number of prefetch requests issued.
func (p *StreamPrefetcher) Issued() uint64 { return p.issued }

// Useful returns the number of prefetches recorded as useful.
func (p *StreamPrefetcher) Useful() uint64 { return p.useful }
