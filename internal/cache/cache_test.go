package cache

import (
	"testing"
	"testing/quick"
)

func small() Config { return Config{SizeBytes: 1024, Ways: 2, LineBytes: 64} } // 8 sets

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
	}{
		{"zero size", Config{0, 2, 64}},
		{"zero ways", Config{1024, 0, 64}},
		{"zero line", Config{1024, 2, 0}},
		{"line not power of two", Config{1024, 2, 48}},
		{"size not divisible", Config{1000, 2, 64}},
		{"sets not power of two", Config{64 * 2 * 3, 2, 64}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.cfg.Validate(); err == nil {
				t.Errorf("Validate(%+v) = nil, want error", tc.cfg)
			}
			if _, err := New(tc.cfg); err == nil {
				t.Errorf("New(%+v) succeeded, want error", tc.cfg)
			}
		})
	}
	if err := PentiumML1D().Validate(); err != nil {
		t.Errorf("L1D config invalid: %v", err)
	}
	if err := PentiumML2().Validate(); err != nil {
		t.Errorf("L2 config invalid: %v", err)
	}
	if got := PentiumML1D().Sets(); got != 64 {
		t.Errorf("L1D sets = %d, want 64", got)
	}
}

func TestMissThenHit(t *testing.T) {
	c, err := New(small())
	if err != nil {
		t.Fatal(err)
	}
	if r := c.Access(0x1000, false); r.Hit {
		t.Error("first access hit")
	}
	if r := c.Access(0x1000, false); !r.Hit {
		t.Error("second access missed")
	}
	if r := c.Access(0x1010, false); !r.Hit {
		t.Error("same-line access missed")
	}
	s := c.Stats()
	if s.Accesses != 3 || s.Hits != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestLRUEviction(t *testing.T) {
	c, err := New(small()) // 8 sets, 2 ways
	if err != nil {
		t.Fatal(err)
	}
	// Three lines mapping to set 0: stride = sets*line = 512.
	a, b, d := uint64(0), uint64(512), uint64(1024)
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // evicts b (LRU)
	if !c.Contains(a) {
		t.Error("a evicted, want kept (MRU)")
	}
	if c.Contains(b) {
		t.Error("b kept, want evicted (LRU)")
	}
	if !c.Contains(d) {
		t.Error("d not inserted")
	}
}

func TestDirtyEvictionReportsWriteback(t *testing.T) {
	c, err := New(small())
	if err != nil {
		t.Fatal(err)
	}
	c.Access(0, true) // dirty line in set 0
	c.Access(512, false)
	r := c.Access(1024, false) // evicts line 0 (dirty)
	if !r.Writeback {
		t.Fatal("no writeback reported")
	}
	if r.WritebackAddr != 0 {
		t.Errorf("writeback addr = %#x, want 0", r.WritebackAddr)
	}
	s := c.Stats()
	if s.Writebacks != 1 || s.Evictions != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestWriteMarksDirtyOnHit(t *testing.T) {
	c, _ := New(small())
	c.Access(0, false) // clean fill
	c.Access(0, true)  // hit marks dirty
	c.Access(512, false)
	r := c.Access(1024, false)
	if !r.Writeback {
		t.Error("dirty-on-hit line evicted without writeback")
	}
}

func TestContainsDoesNotDisturbState(t *testing.T) {
	c, _ := New(small())
	c.Access(0, false)
	c.Access(512, false)
	// Probing a (LRU) must not refresh it.
	if !c.Contains(0) {
		t.Fatal("line 0 missing")
	}
	c.Access(1024, false) // should still evict 0 as LRU
	if c.Contains(0) {
		t.Error("Contains refreshed LRU state")
	}
	st := c.Stats()
	if st.Accesses != 3 {
		t.Errorf("Contains counted as access: %+v", st)
	}
}

func TestFillInsertsCleanWithoutDemandStats(t *testing.T) {
	c, _ := New(small())
	c.Fill(0)
	if got := c.Stats().Accesses; got != 0 {
		t.Errorf("Fill counted as access: %d", got)
	}
	if !c.Contains(0) {
		t.Error("Fill did not insert line")
	}
	if r := c.Fill(0); !r.Hit {
		t.Error("refill of present line not reported as hit")
	}
	// Filled lines are clean: evicting one must not write back.
	c.Fill(512)
	r := c.Fill(1024)
	if r.Writeback {
		t.Error("clean fill evicted with writeback")
	}
}

func TestMissRate(t *testing.T) {
	var s Stats
	if s.MissRate() != 0 {
		t.Error("empty MissRate != 0")
	}
	s = Stats{Accesses: 4, Misses: 1}
	if s.MissRate() != 0.25 {
		t.Errorf("MissRate = %g, want 0.25", s.MissRate())
	}
}

// Property: hits + misses == accesses for arbitrary access streams.
func TestStatsConservation(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c, err := New(small())
		if err != nil {
			return false
		}
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint64(a), w)
		}
		s := c.Stats()
		return s.Hits+s.Misses == s.Accesses && s.Accesses == uint64(len(addrs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: the working set fitting one set's ways never misses after
// the first pass, regardless of access order.
func TestNoCapacityMissesWithinWays(t *testing.T) {
	f := func(order []uint8) bool {
		c, err := New(small())
		if err != nil {
			return false
		}
		lines := []uint64{0, 512} // exactly the 2 ways of set 0
		for _, l := range lines {
			c.Access(l, false)
		}
		before := c.Stats().Misses
		for _, o := range order {
			c.Access(lines[int(o)%2], false)
		}
		return c.Stats().Misses == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStreamPrefetcherDetectsSequentialStream(t *testing.T) {
	p := NewStreamPrefetcher(64, 4, 2)
	if got := p.OnMiss(0); got != nil {
		t.Errorf("first miss prefetched %v", got)
	}
	got := p.OnMiss(64) // second sequential miss confirms the stream
	want := []uint64{128, 192}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("prefetches = %v, want %v", got, want)
	}
	if p.Issued() != 2 {
		t.Errorf("Issued = %d, want 2", p.Issued())
	}
}

func TestStreamPrefetcherIgnoresRandomMisses(t *testing.T) {
	p := NewStreamPrefetcher(64, 4, 2)
	addrs := []uint64{0, 4096, 10240, 512, 900000}
	for _, a := range addrs {
		if got := p.OnMiss(a); got != nil {
			t.Errorf("random miss %#x prefetched %v", a, got)
		}
	}
}

func TestStreamPrefetcherTracksMultipleStreams(t *testing.T) {
	p := NewStreamPrefetcher(64, 4, 1)
	p.OnMiss(0)
	p.OnMiss(1 << 20)
	if got := p.OnMiss(64); len(got) != 1 || got[0] != 128 {
		t.Errorf("stream A prefetch = %v", got)
	}
	if got := p.OnMiss(1<<20 + 64); len(got) != 1 || got[0] != 1<<20+128 {
		t.Errorf("stream B prefetch = %v", got)
	}
}

func TestStreamPrefetcherUsefulCounter(t *testing.T) {
	p := NewStreamPrefetcher(64, 4, 2)
	p.NoteUseful()
	p.NoteUseful()
	if p.Useful() != 2 {
		t.Errorf("Useful = %d, want 2", p.Useful())
	}
}
