package kernel

import (
	"testing"
)

// seqGen emits a fixed-stride sequential read stream.
type seqGen struct {
	i      uint64
	stride uint64
	n      uint64
}

func (g *seqGen) Name() string { return "seq" }
func (g *seqGen) Reset()       { g.i = 0 }
func (g *seqGen) Next() Op {
	addr := (g.i % g.n) * g.stride
	g.i++
	return Op{
		Refs:       []Ref{{Addr: addr}},
		Instrs:     4,
		CoreCycles: 2,
	}
}

func TestLevelString(t *testing.T) {
	if LevelL1.String() != "L1" || LevelL2.String() != "L2" || LevelMem.String() != "MEM" {
		t.Error("level names wrong")
	}
	if Level(9).String() != "level(9)" {
		t.Error("unknown level name wrong")
	}
}

func TestHierarchyServesRepeatedAccessFromL1(t *testing.T) {
	h, err := NewPentiumMHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	if lvl := h.Access(0x1000, false); lvl != LevelMem {
		t.Errorf("cold access served from %v, want MEM", lvl)
	}
	if lvl := h.Access(0x1000, false); lvl != LevelL1 {
		t.Errorf("warm access served from %v, want L1", lvl)
	}
}

func TestHierarchyL2ServesL1Victims(t *testing.T) {
	h, err := NewPentiumMHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	// Touch enough distinct lines mapping to one L1 set to overflow its
	// 8 ways while staying inside L2. L1: 64 sets * 64 B lines -> lines
	// that alias in L1 are 4 KB apart.
	const stride = 4096
	for i := 0; i < 16; i++ {
		h.Access(uint64(i*stride), false)
	}
	// Line 0 has been evicted from L1 but must be in L2.
	if lvl := h.Access(0, false); lvl != LevelL2 {
		t.Errorf("L1 victim served from %v, want L2", lvl)
	}
}

func TestPrefetcherHidesSequentialStream(t *testing.T) {
	h, err := NewPentiumMHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	// A long sequential line-granular stream: after the stream is
	// confirmed, demand misses should find their lines prefetched into
	// L2 rather than going to DRAM.
	memHits := 0
	for i := 0; i < 256; i++ {
		if h.Access(uint64(i*64), false) == LevelMem {
			memHits++
		}
	}
	if memHits > 8 {
		t.Errorf("sequential stream hit DRAM %d times, want <= 8 (prefetch coverage)", memHits)
	}
	if h.PrefetchMemAccesses() == 0 {
		t.Error("prefetcher issued no DRAM fills")
	}
}

func TestCharacterizeProfile(t *testing.T) {
	h, err := NewPentiumMHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	g := &seqGen{stride: 64, n: 64} // 4 KB loop: L1 resident after warmup
	prof, err := Characterize(g, h, 200, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Instructions != 4000 || prof.CoreCycles != 2000 {
		t.Errorf("instr=%g cycles=%g, want 4000/2000", prof.Instructions, prof.CoreCycles)
	}
	if got := prof.CPICore(); got != 0.5 {
		t.Errorf("CPICore = %g, want 0.5", got)
	}
	if prof.ServedL1 != prof.Accesses() {
		t.Errorf("L1-resident loop missed: %+v", prof)
	}
	if prof.L2APKI() != 0 || prof.MemAPKI() != 0 {
		t.Errorf("L1-resident loop shows traffic: L2APKI=%g MemAPKI=%g", prof.L2APKI(), prof.MemAPKI())
	}
}

func TestCharacterizeErrors(t *testing.T) {
	g := &seqGen{stride: 64, n: 64}
	if _, err := Characterize(g, nil, 0, 10); err == nil {
		t.Error("nil hierarchy accepted")
	}
	h, _ := NewPentiumMHierarchy()
	if _, err := Characterize(g, h, 0, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestEmptyProfileRates(t *testing.T) {
	var p Profile
	if p.CPICore() != 0 || p.L2APKI() != 0 || p.MemAPKI() != 0 {
		t.Error("empty profile rates nonzero")
	}
}

func TestWritebackReachesDRAM(t *testing.T) {
	h, err := NewPentiumMHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	// Dirty a large region exceeding L2 (2 MB), then stream past it so
	// dirty L2 victims are written back to DRAM.
	const lines = (4 << 20) / 64
	for i := 0; i < lines; i++ {
		h.Access(uint64(i*64), true)
	}
	if h.MemAccesses() <= lines/2 {
		t.Errorf("expected demand+writeback DRAM traffic, got %d accesses", h.MemAccesses())
	}
	if h.Mem.Stats().BytesXfr == 0 {
		t.Error("no DRAM bytes transferred")
	}
}
