package kernel

import (
	"math"
	"testing"
	"time"

	"aapm/internal/control"
	"aapm/internal/faults"
	"aapm/internal/machine"
	"aapm/internal/phase"
	"aapm/internal/sensor"
	"aapm/internal/trace"
)

// FuzzBatchStep is the fuzzing arm of the batch/staged differential:
// arbitrary float bit patterns (NaN, infinities, denormals, huge
// magnitudes) become phase parameters, jitter amplitudes and governor
// limits, and whatever the staged engine does with them — reject the
// spec, error mid-run, or complete — the batch kernel must do
// byte-for-byte the same. Counter and power corruption is covered by
// routing part of the input space through fault plans, whose injector
// writes NaN/Inf and wrapped counter values into the governor-visible
// stream. It mirrors FuzzGovernorDecisions one layer up: there a
// single Tick is probed, here the whole tick loop.
func FuzzBatchStep(f *testing.F) {
	bits := math.Float64bits
	// Plausible spec, idle-only, NaN params, Inf intensity, huge
	// magnitudes, heavy faults, each governor selector.
	f.Add(bits(40e6), bits(0.9), bits(3.0), bits(1.5), bits(0.1), bits(13.5), uint16(0), uint8(0), uint8(0), int64(1))
	f.Add(bits(0), bits(0), bits(0), bits(0), bits(0), bits(14.5), uint16(25), uint8(0), uint8(1), int64(2))
	f.Add(bits(math.NaN()), bits(math.NaN()), bits(math.NaN()), bits(math.NaN()), bits(math.NaN()), bits(13.0), uint16(3), uint8(1), uint8(2), int64(3))
	f.Add(bits(1e6), bits(1.2), bits(math.Inf(1)), bits(math.Inf(1)), bits(0.3), bits(0.8), uint16(0), uint8(2), uint8(3), int64(4))
	f.Add(bits(1e300), bits(1e-300), bits(50), bits(40), bits(0.5), bits(13.5), uint16(1), uint8(3), uint8(4), int64(5))
	f.Add(bits(2e6), bits(1.0), bits(20), bits(5), bits(0.2), bits(12.0), uint16(7), uint8(7), uint8(0), int64(6))

	f.Fuzz(func(t *testing.T, instrBits, cpiBits, l2Bits, memBits, jitBits, limitBits uint64,
		idleMs uint16, faultSel, govSel uint8, seed int64) {
		w := phase.Workload{
			Name:       "fuzz",
			JitterPct:  math.Float64frombits(jitBits),
			Iterations: 2,
			Phases: []phase.Params{
				{
					Name:         "work",
					Instructions: math.Float64frombits(instrBits),
					CPICore:      math.Float64frombits(cpiBits),
					L2APKI:       math.Float64frombits(l2Bits),
					MemAPKI:      math.Float64frombits(memBits),
					MemBPI:       math.Float64frombits(memBits) / 4,
					MLP:          2,
					SpecFactor:   1.1,
					StallFrac:    0.1,
				},
				{Name: "nap", IdleDuration: time.Duration(idleMs%64) * time.Millisecond},
			},
		}
		if w.Phases[1].IdleDuration == 0 {
			w.Phases[1].IdleDuration = time.Millisecond
		}
		// MaxTicks bounds both engines on huge/non-finite specs; the
		// cap itself is part of the differential (both must trip it
		// identically).
		cfg := machine.Config{Chain: sensor.NIDefault(), Seed: seed, MaxTicks: 500}
		if faultSel%4 != 0 {
			plan := faults.Preset(float64(faultSel%4) * 0.04)
			cfg.Faults = &plan
		}
		limit := math.Float64frombits(limitBits)
		mkGov := func() (machine.Governor, error) {
			switch govSel % 5 {
			case 0:
				return control.NewPerformanceMaximizer(control.PMConfig{LimitW: limit, FeedbackGain: 0.2})
			case 1:
				return control.NewPowerSave(control.PSConfig{Floor: 0.8})
			case 2:
				return nil, nil
			case 3:
				return control.NewStaticClock(3, "static-fuzz"), nil
			default:
				return &control.OnDemand{}, nil
			}
		}
		if _, err := mkGov(); err != nil {
			// The governor spec itself is invalid (e.g. NaN limit);
			// neither engine would get past construction.
			return
		}

		runStaged := func() (*trace.Run, error) {
			m, err := machine.New(cfg)
			if err != nil {
				return nil, err
			}
			g, err := mkGov()
			if err != nil {
				return nil, err
			}
			s, err := m.NewSession(w, g)
			if err != nil {
				return nil, err
			}
			for {
				done, err := s.Step()
				if err != nil {
					return nil, err
				}
				if done {
					return s.Result(), nil
				}
			}
		}
		runBatch := func() (*trace.Run, error) {
			m, err := machine.New(cfg)
			if err != nil {
				return nil, err
			}
			g, err := mkGov()
			if err != nil {
				return nil, err
			}
			b, err := NewBatch([]BatchNode{{Machine: m, Workload: w, Governor: g}}, BatchOptions{RetainTraces: true})
			if err != nil {
				return nil, err
			}
			for b.StepNode(0) {
			}
			if err := b.NodeErr(0); err != nil {
				return nil, err
			}
			return b.Result(0), nil
		}

		want, errS := runStaged()
		got, errB := runBatch()
		if (errS == nil) != (errB == nil) {
			t.Fatalf("engines disagree on failure: staged err=%v, batch err=%v", errS, errB)
		}
		if errS != nil {
			if errS.Error() != errB.Error() {
				t.Fatalf("engines fail differently: staged %q, batch %q", errS, errB)
			}
			return
		}
		compareRuns(t, "fuzz", want, got)
	})
}
