// Package kernel executes memory-reference kernels through the
// simulated cache hierarchy to characterize them from first
// principles.
//
// The MS-Loops microbenchmarks (package mloops) are defined as
// reference generators; this package runs them against the L1/L2/DRAM
// models and distills the result into the analytic phase parameters
// (package phase) the platform executes at scale. This keeps the
// model-training pipeline honest: the training data's cache behaviour
// is simulated, not asserted.
package kernel

import (
	"fmt"

	"aapm/internal/cache"
	"aapm/internal/memsim"
)

// Ref is one memory reference of a kernel operation.
type Ref struct {
	Addr  uint64
	Write bool
}

// Op is one loop iteration: its memory references plus the retired
// instructions and core (L1-hit) cycles it accounts for.
type Op struct {
	Refs       []Ref
	Instrs     float64
	CoreCycles float64
}

// Generator produces a kernel's reference stream.
type Generator interface {
	// Name labels the kernel.
	Name() string
	// Reset rewinds the generator to the start of the loop.
	Reset()
	// Next returns the next operation. Generators cycle indefinitely
	// over their footprint.
	Next() Op
}

// Level identifies where an access was served.
type Level int

// Hierarchy levels.
const (
	LevelL1 Level = iota + 1
	LevelL2
	LevelMem
)

// String names the level.
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelMem:
		return "MEM"
	default:
		return fmt.Sprintf("level(%d)", int(l))
	}
}

// Hierarchy couples the two cache levels, the stream prefetcher and
// the DRAM model into the platform's memory system.
type Hierarchy struct {
	L1   *cache.Cache
	L2   *cache.Cache
	Pref *cache.StreamPrefetcher
	Mem  *memsim.Memory

	memAccesses uint64 // demand L2 misses + writebacks reaching DRAM
	prefMem     uint64 // prefetch fills fetched from DRAM
}

// NewPentiumMHierarchy assembles the paper platform's memory system.
func NewPentiumMHierarchy() (*Hierarchy, error) {
	l1, err := cache.New(cache.PentiumML1D())
	if err != nil {
		return nil, fmt.Errorf("kernel: l1: %w", err)
	}
	l2, err := cache.New(cache.PentiumML2())
	if err != nil {
		return nil, fmt.Errorf("kernel: l2: %w", err)
	}
	mem, err := memsim.New(memsim.DDR333())
	if err != nil {
		return nil, fmt.Errorf("kernel: mem: %w", err)
	}
	return &Hierarchy{
		L1:   l1,
		L2:   l2,
		Pref: cache.NewStreamPrefetcher(l1.LineBytes(), 8, 2),
		Mem:  mem,
	}, nil
}

// Access performs one data access and returns the serving level.
func (h *Hierarchy) Access(addr uint64, write bool) Level {
	if h.L1.Access(addr, write).Hit {
		return LevelL1
	}
	// L1 miss: consult L2 (demand), train the prefetcher.
	for _, pf := range h.Pref.OnMiss(addr) {
		if !h.L2.Contains(pf) {
			h.Mem.Access(pf, h.L2.LineBytes())
			h.prefMem++
			if r := h.L2.Fill(pf); r.Writeback {
				h.Mem.Access(r.WritebackAddr, h.L2.LineBytes())
				h.memAccesses++
			}
		}
	}
	res := h.L2.Access(addr, write)
	if res.Writeback {
		h.Mem.Access(res.WritebackAddr, h.L2.LineBytes())
		h.memAccesses++
	}
	if res.Hit {
		return LevelL2
	}
	h.Mem.Access(addr, h.L2.LineBytes())
	h.memAccesses++
	return LevelMem
}

// MemAccesses returns demand+writeback DRAM accesses (prefetches
// excluded).
func (h *Hierarchy) MemAccesses() uint64 { return h.memAccesses }

// PrefetchMemAccesses returns DRAM accesses made on behalf of the
// prefetcher.
func (h *Hierarchy) PrefetchMemAccesses() uint64 { return h.prefMem }

// Profile is the distilled characterization of a kernel window.
type Profile struct {
	// Instructions and CoreCycles accumulate the generator's own
	// accounting over the measured window.
	Instructions float64
	CoreCycles   float64
	// Served counts accesses by serving level.
	ServedL1, ServedL2, ServedMem uint64
	// MemTraffic is total DRAM accesses including writebacks and
	// prefetches.
	MemTraffic uint64
	// RowHitRate is the DRAM open-row hit fraction over the window.
	RowHitRate float64
}

// Accesses returns the total demand accesses in the window.
func (p Profile) Accesses() uint64 { return p.ServedL1 + p.ServedL2 + p.ServedMem }

// CPICore returns core cycles per instruction.
func (p Profile) CPICore() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return p.CoreCycles / p.Instructions
}

// L2APKI returns L1 misses (L2 demand accesses) per kilo-instruction.
func (p Profile) L2APKI() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return float64(p.ServedL2+p.ServedMem) / p.Instructions * 1000
}

// MemAPKI returns DRAM demand accesses per kilo-instruction.
func (p Profile) MemAPKI() float64 {
	if p.Instructions == 0 {
		return 0
	}
	return float64(p.ServedMem) / p.Instructions * 1000
}

// Characterize runs the generator for warmup ops (to populate caches)
// and then a measured window of ops, returning the window's Profile.
func Characterize(g Generator, h *Hierarchy, warmup, window int) (Profile, error) {
	if h == nil {
		return Profile{}, fmt.Errorf("kernel: nil hierarchy")
	}
	if window <= 0 {
		return Profile{}, fmt.Errorf("kernel: non-positive window %d", window)
	}
	g.Reset()
	for i := 0; i < warmup; i++ {
		op := g.Next()
		for _, r := range op.Refs {
			h.Access(r.Addr, r.Write)
		}
	}
	memBefore := h.Mem.Stats()
	var p Profile
	for i := 0; i < window; i++ {
		op := g.Next()
		p.Instructions += op.Instrs
		p.CoreCycles += op.CoreCycles
		for _, r := range op.Refs {
			switch h.Access(r.Addr, r.Write) {
			case LevelL1:
				p.ServedL1++
			case LevelL2:
				p.ServedL2++
			case LevelMem:
				p.ServedMem++
			}
		}
	}
	memAfter := h.Mem.Stats()
	p.MemTraffic = memAfter.Accesses - memBefore.Accesses
	if d := memAfter.Accesses - memBefore.Accesses; d > 0 {
		p.RowHitRate = float64(memAfter.RowHits-memBefore.RowHits) / float64(d)
	}
	return p, nil
}
