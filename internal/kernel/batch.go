package kernel

import (
	"fmt"
	"math/rand"
	"time"

	"aapm/internal/control"
	"aapm/internal/counters"
	"aapm/internal/faults"
	"aapm/internal/machine"
	"aapm/internal/phase"
	"aapm/internal/power"
	"aapm/internal/pstate"
	"aapm/internal/sensor"
	"aapm/internal/thermal"
	"aapm/internal/trace"
)

// The batch tick engine steps many nodes through their monitoring
// intervals with a struct-of-arrays layout and per-run specialized
// step bodies. It is the throughput path of the simulator: the staged
// engine (internal/machine, Session.Step) remains the reference
// implementation, and every batch run is required to be byte-identical
// to it — same trace rows, same energy integrals, same transition and
// degradation logs — which the differential suite pins across
// governors, fault plans and randomized specs.
//
// Where the staged engine builds a ~400-byte TickState per interval
// and fans it out to a hook bus, the batch engine keeps all mutable
// per-node state in contiguous parallel slices (BatchState) and
// selects one of a small set of step bodies once per run:
//
//	body        governor          faults  thermal  hooks
//	pinned      nil, StaticClock  off     off      none
//	pm          PerformanceMax.   off     off      none
//	psave       PowerSave         off     off      none
//	generic     any               any     any      any
//
// The specialized bodies allocate nothing per tick (asserted by
// TestBatchTickAllocs); the generic body reproduces the full staged
// event order including hook fan-out, fault drains and throttling.

// BatchNode binds one node's machine, workload and governor. The
// governor must be a fresh instance (its state is mutated by the run),
// exactly as with machine.NewSession.
type BatchNode struct {
	Machine  *machine.Machine
	Workload phase.Workload
	Governor machine.Governor
}

// BatchOptions configures a batch run.
type BatchOptions struct {
	// RetainTraces keeps per-interval trace rows in each node's
	// trace.Run. Off by default: the hot path then writes no rows and
	// the per-node Result carries only run-level totals.
	RetainTraces bool
	// Hooks, when non-nil, returns the observer hooks to subscribe for
	// node i (nil for none). Any hook forces the generic step body for
	// the whole batch, mirroring the staged bus semantics exactly.
	Hooks func(i int) []machine.Hook
}

// stepKind identifies the specialized step body a batch selected.
type stepKind uint8

const (
	stepGeneric stepKind = iota
	stepPinned
	stepPM
	stepPS
)

func (k stepKind) String() string {
	switch k {
	case stepPinned:
		return "pinned"
	case stepPM:
		return "pm"
	case stepPS:
		return "psave"
	default:
		return "generic"
	}
}

// BatchState holds the tick state of every node in a batch as
// parallel slices, stepped in lockstep by StepNode/StepAll. One
// BatchState is single-coordinator: distinct index ranges may be
// stepped concurrently (the cluster pool shards them), but each node
// index must be stepped by one goroutine at a time with a
// happens-before edge between rounds, as with machine.Session.
type BatchState struct {
	n      int
	retain bool
	kind   stepKind
	step   func(b *BatchState, i int)

	// Immutable per-node wiring, fixed at construction.
	machines []*machine.Machine
	truths   []*power.GroundTruth
	govs     []machine.Governor
	pms      []*control.PerformanceMaximizer
	pss      []*control.PowerSave
	acts     []*pstate.Actuator
	rngs     []*rand.Rand
	injs     []*faults.Injector
	tms      []*thermal.Model
	chains   []sensor.Prepared
	tables   []*pstate.Table
	states   [][]pstate.PState
	freqHz   [][]float64
	behav    [][]phase.Behavior // flat [state*nPhases+phase] cache of Params.At
	phases   [][]phase.Params
	period   []time.Duration
	perSec   []float64 // period[i].Seconds(), cached for full intervals
	jitter   []float64 // workload JitterPct
	maxTicks []int
	repeats  []int32
	policy   []string
	runs     []*trace.Run
	hooks    [][]machine.Hook

	// Hot mutable state, one lane per node.
	curIdx    []int32
	phaseIdx  []int32
	iter      []int32
	tick      []int
	duty      []float64
	remInstr  []float64
	remIdle   []time.Duration
	now       []time.Duration
	pendStall []time.Duration
	instrTot  []float64
	lastW     []float64
	seq       []uint64
	exhausted []bool
	done      []bool
	finalized []bool
	errs      []error

	energyTrue []power.Energy
	energyMeas []power.Energy
	// tinfo holds each node's persistent TickInfo: the true PMU sample
	// is accumulated in place (never copied), and the constant fields
	// (Table, Duty=1) are set once, so the specialized bodies only
	// touch the per-tick fields before handing the record to TickP.
	tinfo []machine.TickInfo
	obs   []counters.Sample // governor-visible sample (faulted runs only)
}

// behavKey identifies one node's pure-value behavior cache: nodes
// sharing a p-state table and a phase list (fleet runs repeat a few
// workload profiles across 10⁵+ nodes) share one cache instead of
// each carrying its own copy.
type behavKey struct {
	table  *pstate.Table
	phase0 *phase.Params
	n      int
}

// NewBatch validates the nodes and builds a batch ready to step. Each
// node is initialized exactly as machine.NewSession initializes a
// session — same actuator positioning, same RNG and injector seeds —
// except that no acquisition marks are written to the machines'
// sensor.Recorder (the batch engine bypasses the shared acquisition
// stream; see DESIGN.md).
//
// The per-node footprint is kept lean for fleet-scale batches: the
// ~5 KB rand.Rand source is allocated only for nodes that can draw
// from it (workload jitter or chain noise — without either, the
// staged engine never consumes the stream, so a nil RNG is
// bit-identical), and the p-state/behavior caches are interned per
// (table, phase list) so homogeneous fleets share them.
func NewBatch(nodes []BatchNode, opts BatchOptions) (*BatchState, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("kernel: batch needs at least one node")
	}
	n := len(nodes)
	b := &BatchState{
		n:      n,
		retain: opts.RetainTraces,

		machines: make([]*machine.Machine, n),
		truths:   make([]*power.GroundTruth, n),
		govs:     make([]machine.Governor, n),
		pms:      make([]*control.PerformanceMaximizer, n),
		pss:      make([]*control.PowerSave, n),
		acts:     make([]*pstate.Actuator, n),
		rngs:     make([]*rand.Rand, n),
		injs:     make([]*faults.Injector, n),
		tms:      make([]*thermal.Model, n),
		chains:   make([]sensor.Prepared, n),
		tables:   make([]*pstate.Table, n),
		states:   make([][]pstate.PState, n),
		freqHz:   make([][]float64, n),
		behav:    make([][]phase.Behavior, n),
		phases:   make([][]phase.Params, n),
		period:   make([]time.Duration, n),
		perSec:   make([]float64, n),
		jitter:   make([]float64, n),
		maxTicks: make([]int, n),
		repeats:  make([]int32, n),
		policy:   make([]string, n),
		runs:     make([]*trace.Run, n),
		hooks:    make([][]machine.Hook, n),

		curIdx:    make([]int32, n),
		phaseIdx:  make([]int32, n),
		iter:      make([]int32, n),
		tick:      make([]int, n),
		duty:      make([]float64, n),
		remInstr:  make([]float64, n),
		remIdle:   make([]time.Duration, n),
		now:       make([]time.Duration, n),
		pendStall: make([]time.Duration, n),
		instrTot:  make([]float64, n),
		lastW:     make([]float64, n),
		seq:       make([]uint64, n),
		exhausted: make([]bool, n),
		done:      make([]bool, n),
		finalized: make([]bool, n),
		errs:      make([]error, n),

		energyTrue: make([]power.Energy, n),
		energyMeas: make([]power.Energy, n),
		tinfo:      make([]machine.TickInfo, n),
		obs:        make([]counters.Sample, n),
	}
	statesCache := make(map[*pstate.Table][]pstate.PState)
	freqCache := make(map[*pstate.Table][]float64)
	behavCache := make(map[behavKey][]phase.Behavior)
	anyHooks := false
	for i, node := range nodes {
		m, w, g := node.Machine, node.Workload, node.Governor
		if m == nil {
			return nil, fmt.Errorf("kernel: batch node %d has no machine", i)
		}
		if err := w.Validate(); err != nil {
			return nil, err
		}
		act := pstate.NewActuator(m.Table())
		act.SetTransitionLatency(m.TransitionLatency())
		if _, err := act.Set(m.StartIndex(g)); err != nil {
			return nil, err
		}
		act.ResetStats() // positioning is not a policy transition

		policy := "static"
		if g != nil {
			policy = g.Name()
		}
		if tc := m.ThermalConfig(); tc != nil {
			tm, err := thermal.New(*tc)
			if err != nil {
				return nil, err
			}
			b.tms[i] = tm
		}
		if plan := m.FaultPlan(); plan != nil {
			inj, err := faults.NewInjector(*plan, m.SessionSeed(w.Name))
			if err != nil {
				return nil, err
			}
			b.injs[i] = inj
		}
		b.machines[i] = m
		b.truths[i] = m.Truth()
		b.govs[i] = g
		b.acts[i] = act
		if w.JitterPct > 0 || m.Chain().NoiseStdW > 0 {
			// Only jitter draws and noise draws consume the stream;
			// without either the RNG is dead weight (~5 KB/node at
			// fleet scale) and a nil RNG is bit-identical.
			b.rngs[i] = rand.New(rand.NewSource(m.SessionSeed(w.Name)))
		}
		b.chains[i] = m.Chain().Prepare()
		b.tables[i] = m.Table()
		if sts, ok := statesCache[b.tables[i]]; ok {
			b.states[i] = sts
		} else {
			b.states[i] = m.Table().States()
			statesCache[b.tables[i]] = b.states[i]
		}
		b.phases[i] = w.Phases
		b.period[i] = m.SamplePeriod()
		b.perSec[i] = m.SamplePeriod().Seconds()
		b.jitter[i] = w.JitterPct
		b.maxTicks[i] = m.MaxTicks()
		b.repeats[i] = int32(w.Repeats())
		b.policy[i] = policy
		b.runs[i] = &trace.Run{Workload: w.Name, Policy: policy}
		if opts.Hooks != nil {
			b.hooks[i] = opts.Hooks(i)
			if len(b.hooks[i]) > 0 {
				anyHooks = true
			}
		}

		// Behavior cache: Params.At is pure in (phase, p-state), so the
		// staged engine's per-tick evaluation can be precomputed without
		// changing a single float bit — and shared across every node
		// with the same table and phase list.
		sts := b.states[i]
		if f, ok := freqCache[b.tables[i]]; ok {
			b.freqHz[i] = f
		} else {
			f = make([]float64, len(sts))
			for si, ps := range sts {
				f[si] = ps.FreqHz()
			}
			b.freqHz[i] = f
			freqCache[b.tables[i]] = f
		}
		var ph0 *phase.Params
		if len(w.Phases) > 0 {
			ph0 = &w.Phases[0]
		}
		bk := behavKey{table: b.tables[i], phase0: ph0, n: len(w.Phases)}
		if bv, ok := behavCache[bk]; ok {
			b.behav[i] = bv
		} else {
			bv = make([]phase.Behavior, len(sts)*len(w.Phases))
			for si, ps := range sts {
				for pi, p := range w.Phases {
					bv[si*len(w.Phases)+pi] = p.At(ps)
				}
			}
			b.behav[i] = bv
			behavCache[bk] = bv
		}

		b.curIdx[i] = int32(act.CurrentIndex())
		b.duty[i] = 1.0
		// Constant TickInfo fields for the specialized bodies; the
		// per-tick fields are written in place each interval.
		b.tinfo[i].Table = b.tables[i]
		b.tinfo[i].Duty = 1
		b.loadPhase(i)
	}
	b.kind = b.selectKind(anyHooks)
	switch b.kind {
	case stepPinned:
		b.step = stepPinnedBody
	case stepPM:
		b.step = stepPMBody
	case stepPS:
		b.step = stepPSBody
	default:
		b.step = stepGenericBody
	}
	return b, nil
}

// selectKind picks the most specialized step body that is exact for
// every node in the batch. Any node that needs the full staged event
// order — fault injection, a thermal model, observer hooks, a
// throttling or otherwise unrecognized governor — demotes the whole
// batch to the generic body; a mixed set of recognized governors does
// too, so the per-tick body stays branch-free on governor kind.
func (b *BatchState) selectKind(anyHooks bool) stepKind {
	if anyHooks {
		return stepGeneric
	}
	kind := stepKind(0xff)
	for i := 0; i < b.n; i++ {
		if b.injs[i] != nil || b.tms[i] != nil {
			return stepGeneric
		}
		if _, ok := b.govs[i].(machine.Throttler); ok {
			return stepGeneric
		}
		var k stepKind
		switch g := b.govs[i].(type) {
		case nil:
			k = stepPinned
		case *control.StaticClock:
			_ = g
			k = stepPinned
		case *control.PerformanceMaximizer:
			b.pms[i] = g
			k = stepPM
		case *control.PowerSave:
			b.pss[i] = g
			k = stepPS
		default:
			return stepGeneric
		}
		if kind == 0xff {
			kind = k
		} else if kind != k {
			return stepGeneric
		}
	}
	return kind
}

// Kind reports which step body the batch selected (for tests and
// diagnostics).
func (b *BatchState) Kind() string { return b.kind.String() }

// Len returns the number of nodes.
func (b *BatchState) Len() int { return b.n }

// loadPhase mirrors the staged runState.load: position the node at the
// next runnable phase, wrapping repeats, or mark it exhausted.
func (b *BatchState) loadPhase(i int) {
	phs := b.phases[i]
	for {
		if int(b.phaseIdx[i]) >= len(phs) {
			b.phaseIdx[i] = 0
			b.iter[i]++
			if b.iter[i] >= b.repeats[i] {
				b.exhausted[i] = true
				return
			}
		}
		p := &phs[b.phaseIdx[i]]
		if p.Idle() {
			b.remIdle[i] = p.IdleDuration
			if b.remIdle[i] > 0 {
				return
			}
		} else if p.Instructions > 0 {
			b.remInstr[i] = p.Instructions
			return
		}
		b.phaseIdx[i]++
	}
}

// StepNode advances node i by one monitoring interval, reporting
// whether the node was stepped (false once it is done or errored).
func (b *BatchState) StepNode(i int) bool {
	if b.done[i] || b.errs[i] != nil {
		return false
	}
	b.step(b, i)
	return true
}

// StepAll advances every unfinished node one interval in node order,
// reporting whether any node was stepped.
func (b *BatchState) StepAll() bool {
	active := false
	for i := 0; i < b.n; i++ {
		if b.StepNode(i) {
			active = true
		}
	}
	return active
}

// Run steps all nodes to completion and returns the first error by
// node index, if any.
func (b *BatchState) Run() error {
	for b.StepAll() {
		if err := b.Err(); err != nil {
			return err
		}
	}
	return b.Err()
}

// Done reports whether every node has completed (or errored).
func (b *BatchState) Done() bool {
	for i := 0; i < b.n; i++ {
		if !b.done[i] && b.errs[i] == nil {
			return false
		}
	}
	return true
}

// NodeDone reports whether node i has completed.
func (b *BatchState) NodeDone(i int) bool { return b.done[i] }

// NodeErr returns node i's error, if stepping failed.
func (b *BatchState) NodeErr(i int) error { return b.errs[i] }

// Err returns the first node error by index, or nil.
func (b *BatchState) Err() error {
	for i := 0; i < b.n; i++ {
		if b.errs[i] != nil {
			return b.errs[i]
		}
	}
	return nil
}

// Seq returns the count of recorded intervals of node i — the batch
// analogue of a coordinator tap's sequence number. It advances exactly
// once per emitted interval.
func (b *BatchState) Seq(i int) uint64 { return b.seq[i] }

// LastPowerW returns node i's most recent measured power.
func (b *BatchState) LastPowerW(i int) float64 { return b.lastW[i] }

// LastDPC returns the decode rate of node i's most recent
// governor-visible sample — what a coordinator tap would read from the
// staged bus.
func (b *BatchState) LastDPC(i int) float64 {
	if b.injs[i] != nil {
		return b.obs[i].DPC()
	}
	return b.tinfo[i].Sample.DPC()
}

// Ticks returns the number of intervals node i has executed.
func (b *BatchState) Ticks(i int) int { return b.tick[i] }

// Governor returns node i's governor.
func (b *BatchState) Governor(i int) machine.Governor { return b.govs[i] }

// Result finalizes and returns node i's recorded run. Idempotent;
// fires each subscribed hook's OnDone exactly once, like
// Session.Result.
func (b *BatchState) Result(i int) *trace.Run {
	if !b.finalized[i] {
		run := b.runs[i]
		run.Duration = b.now[i]
		run.EnergyJ = b.energyTrue[i].Joules()
		run.MeasuredEnergyJ = b.energyMeas[i].Joules()
		run.Transitions = b.acts[i].Transitions()
		run.FailedTransitions = b.acts[i].FailedTransitions()
		run.Instructions = b.instrTot[i]
		b.finalized[i] = true
		for _, h := range b.hooks[i] {
			h.OnDone(run)
		}
	}
	return b.runs[i]
}
