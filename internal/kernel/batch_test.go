package kernel

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"aapm/internal/control"
	"aapm/internal/faults"
	"aapm/internal/machine"
	"aapm/internal/metrics"
	"aapm/internal/phase"
	"aapm/internal/sensor"
	"aapm/internal/spec"
	"aapm/internal/thermal"
	"aapm/internal/trace"
)

// govFactory builds a fresh governor instance; both engines need their
// own because governors are stateful.
type govFactory func(t *testing.T) machine.Governor

func pmGov(limitW, gain float64, degrade bool) govFactory {
	return func(t *testing.T) machine.Governor {
		t.Helper()
		pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: limitW, FeedbackGain: gain, Degrade: degrade})
		if err != nil {
			t.Fatal(err)
		}
		return pm
	}
}

func psGov(floor float64, degrade bool) govFactory {
	return func(t *testing.T) machine.Governor {
		t.Helper()
		ps, err := control.NewPowerSave(control.PSConfig{Floor: floor, Degrade: degrade})
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
}

func staticGov(idx int) govFactory {
	return func(t *testing.T) machine.Governor {
		return control.NewStaticClock(idx, "static-test")
	}
}

func throttleGov(floor float64) govFactory {
	return func(t *testing.T) machine.Governor {
		t.Helper()
		ts, err := control.NewThrottleSave(control.ThrottleSaveConfig{Floor: floor})
		if err != nil {
			t.Fatal(err)
		}
		return ts
	}
}

func phaseAwareGov(limitW float64) govFactory {
	return func(t *testing.T) machine.Governor {
		t.Helper()
		pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: limitW})
		if err != nil {
			t.Fatal(err)
		}
		pa, err := control.NewPhaseAwarePM(pm, 8, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		return pa
	}
}

func nilGov() govFactory {
	return func(t *testing.T) machine.Governor { return nil }
}

func onDemandGov() govFactory {
	return func(t *testing.T) machine.Governor { return &control.OnDemand{} }
}

// specWorkload materializes one SPEC benchmark scaled to its
// iterations for test speed.
func specWorkload(t *testing.T, name string, iterations int) phase.Workload {
	t.Helper()
	w, err := spec.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	w.Iterations = iterations
	return w
}

// syntheticWorkload exercises the execute-stage corners in one run:
// idle phases longer than the interval, a phase too small to fill an
// interval, heavy jitter and multiple repeats.
func syntheticWorkload() phase.Workload {
	return phase.Workload{
		Name:       "synthetic",
		JitterPct:  0.3,
		Iterations: 3,
		Phases: []phase.Params{
			{Name: "burn", Instructions: 40e6, CPICore: 0.8, L2APKI: 2, MemAPKI: 0.5, MemBPI: 1, MLP: 2, SpecFactor: 1.1, StallFrac: 0.1},
			{Name: "nap", IdleDuration: 23 * time.Millisecond},
			{Name: "mem", Instructions: 5e6, CPICore: 1.2, L2APKI: 40, MemAPKI: 20, MemBPI: 8, MLP: 1.5, SpecFactor: 1.05, StallFrac: 0.2},
			{Name: "blip", Instructions: 1e5, CPICore: 1.0, MLP: 1, SpecFactor: 1, StallFrac: 0},
		},
	}
}

type diffCase struct {
	name     string
	workload func(t *testing.T) phase.Workload
	gov      govFactory
	cfg      machine.Config
	wantKind string
}

func diffCases() []diffCase {
	ni := sensor.NIDefault()
	tc := thermal.PentiumMThermal()
	lightFaults := faults.Preset(0.02)
	heavyFaults := faults.Preset(0.08)
	cases := []diffCase{
		{
			name:     "ammp/pm-feedback/ni",
			workload: func(t *testing.T) phase.Workload { return specWorkload(t, "ammp", 1) },
			gov:      pmGov(14.5, 0.25, false),
			cfg:      machine.Config{Chain: ni, Seed: 1},
			wantKind: "pm",
		},
		{
			name:     "ammp/pinned/ideal",
			workload: func(t *testing.T) phase.Workload { return specWorkload(t, "ammp", 1) },
			gov:      nilGov(),
			cfg:      machine.Config{Seed: 3},
			wantKind: "pinned",
		},
		{
			name:     "gzip/static-min/ni",
			workload: func(t *testing.T) phase.Workload { return specWorkload(t, "gzip", 1) },
			gov:      staticGov(0),
			cfg:      machine.Config{Chain: ni, Seed: 4},
			wantKind: "pinned",
		},
		{
			name:     "mcf/psave/ni",
			workload: func(t *testing.T) phase.Workload { return specWorkload(t, "mcf", 1) },
			gov:      psGov(0.8, false),
			cfg:      machine.Config{Chain: ni, Seed: 5},
			wantKind: "psave",
		},
		{
			name:     "synthetic/pm/ni",
			workload: func(t *testing.T) phase.Workload { return syntheticWorkload() },
			gov:      pmGov(12, 0.25, false),
			cfg:      machine.Config{Chain: ni, Seed: 6},
			wantKind: "pm",
		},
		{
			name:     "swim/pm-degrade/faults",
			workload: func(t *testing.T) phase.Workload { return specWorkload(t, "swim", 1) },
			gov:      pmGov(13, 0.25, true),
			cfg:      machine.Config{Chain: ni, Seed: 7, Faults: &lightFaults},
			wantKind: "generic",
		},
		{
			name:     "art/psave-degrade/heavy-faults",
			workload: func(t *testing.T) phase.Workload { return specWorkload(t, "art", 1) },
			gov:      psGov(0.7, true),
			cfg:      machine.Config{Chain: ni, Seed: 8, Faults: &heavyFaults},
			wantKind: "generic",
		},
		{
			name:     "crafty/ondemand/ideal",
			workload: func(t *testing.T) phase.Workload { return specWorkload(t, "crafty", 1) },
			gov:      onDemandGov(),
			cfg:      machine.Config{Seed: 9},
			wantKind: "generic",
		},
		{
			name:     "gcc/throttlesave/ni",
			workload: func(t *testing.T) phase.Workload { return specWorkload(t, "gcc", 1) },
			gov:      throttleGov(0.7),
			cfg:      machine.Config{Chain: ni, Seed: 10},
			wantKind: "generic",
		},
		{
			name:     "lucas/pm/thermal",
			workload: func(t *testing.T) phase.Workload { return specWorkload(t, "lucas", 1) },
			gov:      pmGov(14, 0.25, false),
			cfg:      machine.Config{Chain: ni, Seed: 11, Thermal: &tc},
			wantKind: "generic",
		},
		{
			name:     "ammp/phaseaware/ni",
			workload: func(t *testing.T) phase.Workload { return specWorkload(t, "ammp", 1) },
			gov:      phaseAwareGov(14.5),
			cfg:      machine.Config{Chain: ni, Seed: 12},
			wantKind: "generic",
		},
	}

	// Randomized sweep: governors × workloads × fault plans × seeds
	// from a fixed-seed generator, so the table is reproducible while
	// covering combinations nobody hand-picked.
	rng := rand.New(rand.NewSource(0x5eed))
	names := spec.Names()
	factories := []struct {
		label string
		fresh func(r *rand.Rand) govFactory
		kind  string
	}{
		{"pm", func(r *rand.Rand) govFactory { return pmGov(10+8*r.Float64(), 0.25, false) }, "pm"},
		{"pm-degrade", func(r *rand.Rand) govFactory { return pmGov(10+8*r.Float64(), 0.25, true) }, "pm"},
		{"psave", func(r *rand.Rand) govFactory { return psGov(0.6+0.3*r.Float64(), false) }, "psave"},
		{"psave-degrade", func(r *rand.Rand) govFactory { return psGov(0.6+0.3*r.Float64(), true) }, "psave"},
		{"static", func(r *rand.Rand) govFactory { return staticGov(r.Intn(6)) }, "pinned"},
		{"pinned", func(r *rand.Rand) govFactory { return nilGov() }, "pinned"},
		{"ondemand", func(r *rand.Rand) govFactory { return onDemandGov() }, "generic"},
	}
	for k := 0; k < 12; k++ {
		wname := names[rng.Intn(len(names))]
		fac := factories[rng.Intn(len(factories))]
		cfg := machine.Config{Seed: rng.Int63()}
		kind := fac.kind
		if rng.Intn(2) == 0 {
			cfg.Chain = ni
		}
		if rng.Intn(3) == 0 {
			fp := faults.Preset(0.01 + 0.07*rng.Float64())
			cfg.Faults = &fp
			kind = "generic"
		}
		cases = append(cases, diffCase{
			name:     "rand/" + wname + "/" + fac.label,
			workload: func(t *testing.T) phase.Workload { return specWorkload(t, wname, 1) },
			gov:      fac.fresh(rng),
			cfg:      cfg,
			wantKind: kind,
		})
	}
	return cases
}

func csvBytes(t *testing.T, run *trace.Run) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := run.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// compareRuns asserts the two runs are byte-identical as CSV and equal
// in every run-level total, degradation log included.
func compareRuns(t *testing.T, label string, want, got *trace.Run) {
	t.Helper()
	wantCSV, gotCSV := csvBytes(t, want), csvBytes(t, got)
	if !bytes.Equal(wantCSV, gotCSV) {
		reportCSVDiff(t, label, wantCSV, gotCSV)
	}
	if want.Workload != got.Workload || want.Policy != got.Policy {
		t.Errorf("%s: identity mismatch: staged %s/%s, batch %s/%s",
			label, want.Workload, want.Policy, got.Workload, got.Policy)
	}
	if want.Duration != got.Duration {
		t.Errorf("%s: duration: staged %v, batch %v", label, want.Duration, got.Duration)
	}
	if math.Float64bits(want.EnergyJ) != math.Float64bits(got.EnergyJ) {
		t.Errorf("%s: energy: staged %v, batch %v", label, want.EnergyJ, got.EnergyJ)
	}
	if math.Float64bits(want.MeasuredEnergyJ) != math.Float64bits(got.MeasuredEnergyJ) {
		t.Errorf("%s: measured energy: staged %v, batch %v", label, want.MeasuredEnergyJ, got.MeasuredEnergyJ)
	}
	if math.Float64bits(want.Instructions) != math.Float64bits(got.Instructions) {
		t.Errorf("%s: instructions: staged %v, batch %v", label, want.Instructions, got.Instructions)
	}
	if want.Transitions != got.Transitions || want.FailedTransitions != got.FailedTransitions {
		t.Errorf("%s: transitions: staged %d/%d, batch %d/%d",
			label, want.Transitions, want.FailedTransitions, got.Transitions, got.FailedTransitions)
	}
	if !reflect.DeepEqual(want.Degradations, got.Degradations) {
		t.Errorf("%s: degradation logs differ: staged %d entries, batch %d entries",
			label, len(want.Degradations), len(got.Degradations))
	}
	if !reflect.DeepEqual(want.DegradationCounts, got.DegradationCounts) {
		t.Errorf("%s: degradation counts differ: staged %v, batch %v",
			label, want.DegradationCounts, got.DegradationCounts)
	}
}

func reportCSVDiff(t *testing.T, label string, want, got []byte) {
	t.Helper()
	wantLines := bytes.Split(want, []byte("\n"))
	gotLines := bytes.Split(got, []byte("\n"))
	n := len(wantLines)
	if len(gotLines) < n {
		n = len(gotLines)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wantLines[i], gotLines[i]) {
			t.Fatalf("%s: CSV line %d differs\nstaged: %s\nbatch:  %s", label, i+1, wantLines[i], gotLines[i])
		}
	}
	t.Fatalf("%s: CSV row counts differ: staged %d lines, batch %d lines", label, len(wantLines), len(gotLines))
}

// TestBatchMatchesStaged is the batch kernel's correctness anchor:
// randomized and hand-picked specs run through both engines must
// produce byte-identical CSV traces, equal run summaries and equal
// metrics snapshots. Each case runs the batch twice — once bare (the
// specialized body when eligible) and once under a metrics hook (the
// generic body) — so both step paths are pinned against the staged
// reference.
func TestBatchMatchesStaged(t *testing.T) {
	for _, tc := range diffCases() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			w := tc.workload(t)

			// Staged reference run, with a metrics snapshot.
			mRef, err := machine.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			colRef := &metrics.Collector{LimitW: 12}
			want, err := mRef.RunWith(w, tc.gov(t), colRef)
			if err != nil {
				t.Fatal(err)
			}

			// Batch run on the specialized path (no hooks).
			mFast, err := machine.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			bFast, err := NewBatch(
				[]BatchNode{{Machine: mFast, Workload: w, Governor: tc.gov(t)}},
				BatchOptions{RetainTraces: true},
			)
			if err != nil {
				t.Fatal(err)
			}
			if bFast.Kind() != tc.wantKind {
				t.Errorf("specialization: got %q, want %q", bFast.Kind(), tc.wantKind)
			}
			if err := bFast.Run(); err != nil {
				t.Fatal(err)
			}
			compareRuns(t, "fast", want, bFast.Result(0))

			// Batch run on the generic path (metrics hook subscribed),
			// comparing the full metrics snapshot too.
			mGen, err := machine.New(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			colGen := &metrics.Collector{LimitW: 12}
			bGen, err := NewBatch(
				[]BatchNode{{Machine: mGen, Workload: w, Governor: tc.gov(t)}},
				BatchOptions{RetainTraces: true, Hooks: func(int) []machine.Hook {
					return []machine.Hook{colGen}
				}},
			)
			if err != nil {
				t.Fatal(err)
			}
			if bGen.Kind() != "generic" {
				t.Errorf("hooked batch should demote to generic, got %q", bGen.Kind())
			}
			if err := bGen.Run(); err != nil {
				t.Fatal(err)
			}
			run := bGen.Result(0)
			compareRuns(t, "generic", want, run)
			if !reflect.DeepEqual(colRef, colGen) {
				t.Errorf("metrics snapshots differ:\nstaged: %+v\nbatch:  %+v", colRef, colGen)
			}
		})
	}
}

// TestBatchMultiNodeMatchesStaged steps a heterogeneous batch in
// lockstep and checks every node against its own staged run — the
// interleaving must not leak state across lanes.
func TestBatchMultiNodeMatchesStaged(t *testing.T) {
	names := []string{"swim", "mcf", "gzip", "ammp"}
	cfg := machine.Config{Chain: sensor.NIDefault(), Seed: 77}
	nodes := make([]BatchNode, len(names))
	for i, name := range names {
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: 11 + float64(i), FeedbackGain: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = BatchNode{Machine: m, Workload: specWorkload(t, name, 1), Governor: pm}
	}
	b, err := NewBatch(nodes, BatchOptions{RetainTraces: true})
	if err != nil {
		t.Fatal(err)
	}
	if b.Kind() != "pm" {
		t.Fatalf("homogeneous PM batch should specialize, got %q", b.Kind())
	}
	if err := b.Run(); err != nil {
		t.Fatal(err)
	}
	for i, name := range names {
		m, err := machine.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: 11 + float64(i), FeedbackGain: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		want, err := m.Run(specWorkload(t, name, 1), pm)
		if err != nil {
			t.Fatal(err)
		}
		compareRuns(t, name, want, b.Result(i))
	}
}

// TestBatchTickAllocs is the allocation-budget gate: on the
// specialized (telemetry-off, faults-off) paths a tick allocates
// nothing. Trace retention is off, as in the cluster's default
// steady-state configuration.
func TestBatchTickAllocs(t *testing.T) {
	build := func(t *testing.T, gf govFactory, wantKind string) *BatchState {
		t.Helper()
		nodes := make([]BatchNode, 4)
		for i := range nodes {
			m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: int64(31 + i)})
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = BatchNode{Machine: m, Workload: specWorkload(t, "ammp", 4), Governor: gf(t)}
		}
		b, err := NewBatch(nodes, BatchOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if b.Kind() != wantKind {
			t.Fatalf("got kind %q, want %q", b.Kind(), wantKind)
		}
		// Warm the run past its first transitions before measuring.
		for k := 0; k < 50; k++ {
			b.StepAll()
		}
		return b
	}
	kinds := []struct {
		kind string
		gov  govFactory
	}{
		{"pm", pmGov(13, 0.25, false)},
		{"psave", psGov(0.8, false)},
		{"pinned", nilGov()},
	}
	for _, k := range kinds {
		k := k
		t.Run(k.kind, func(t *testing.T) {
			b := build(t, k.gov, k.kind)
			allocs := testing.AllocsPerRun(200, func() {
				b.StepAll()
			})
			if allocs != 0 {
				t.Fatalf("%s step body allocates %.1f times per lockstep round, want 0", k.kind, allocs)
			}
			if b.Done() {
				t.Fatal("workload exhausted during the measurement window; grow it")
			}
			if err := b.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}
