package kernel

import (
	"fmt"
	"math"
	"time"

	"aapm/internal/counters"
	"aapm/internal/machine"
	"aapm/internal/trace"
)

// The step bodies in this file replicate machine.Session.Step stage by
// stage — execute → measure → observe → govern → actuate — with the
// same float operations in the same order, so a batch run's trace is
// byte-identical to a staged run's. The only legal divergences from a
// literal transcription are pure-value caches: Params.At per
// (phase, p-state), PState.FreqHz per state, and period.Seconds() for
// full intervals, each of which reproduces the staged value exactly.
// Anything that would change float bits (reassociating sums, replacing
// divisions with reciprocal multiplies) is off the table; the
// differential suite enforces this.

// failTicks records the staged engine's tick-bound error for node i.
func (b *BatchState) failTicks(i int) {
	b.errs[i] = fmt.Errorf("machine: run %s/%s exceeded %d ticks",
		b.runs[i].Workload, b.policy[i], b.maxTicks[i])
}

// advancePhase mirrors runState.advance.
func (b *BatchState) advancePhase(i int) {
	b.phaseIdx[i]++
	b.loadPhase(i)
}

// executeTick is the execute stage: draw the interval's intensity
// jitter, charge pending stall and the stopped fraction of a modulated
// clock, then walk phases accumulating cycles, instructions and
// counter activity into the node's sample lane. ok is false when the
// workload was already exhausted (zero-length interval).
func (b *BatchState) executeTick(i, cur int) (used, busy, stall time.Duration, instr, jitter float64, phName string, ok bool) {
	jitter = 1.0
	if b.jitter[i] > 0 {
		jitter = machine.JitterFactor(b.jitter[i], b.rngs[i].NormFloat64())
	}
	interval := b.period[i]
	stall = b.pendStall[i]
	if stall > interval {
		stall = interval
	}
	b.pendStall[i] -= stall
	if duty := b.duty[i]; duty < 1 {
		stall += time.Duration(float64(interval-stall) * (1 - duty))
	}
	remaining := interval - stall

	freq := b.freqHz[i][cur]
	phs := b.phases[i]
	nph := len(phs)
	bRow := b.behav[i][cur*nph : cur*nph+nph]
	sample := &b.tinfo[i].Sample
	*sample = counters.Sample{}
	zero := true
	for remaining > 0 && !b.exhausted[i] {
		pi := int(b.phaseIdx[i])
		p := &phs[pi]
		phName = p.Name
		if p.Idle() {
			idle := b.remIdle[i]
			if idle > remaining {
				b.remIdle[i] -= remaining
				remaining = 0
				break
			}
			remaining -= idle
			b.remIdle[i] = 0
			b.advancePhase(i)
			continue
		}
		bb := &bRow[pi]
		ipcEff := bb.IPC * jitter
		remSec := remaining.Seconds()
		if remaining == interval {
			remSec = b.perSec[i]
		}
		cyclesAvail := freq * remSec
		instrPossible := cyclesAvail * ipcEff
		if instrPossible >= b.remInstr[i] {
			// Phase completes within the interval.
			cyclesUsed := b.remInstr[i] / ipcEff
			dt := time.Duration(cyclesUsed / freq * float64(time.Second))
			if dt > remaining {
				dt = remaining
			}
			if zero {
				machine.SetActivityP(sample, bb, jitter, cyclesUsed)
				zero = false
			} else {
				machine.AddActivityP(sample, bb, jitter, cyclesUsed)
			}
			instr += b.remInstr[i]
			busy += dt
			remaining -= dt
			b.advancePhase(i)
			continue
		}
		if zero {
			machine.SetActivityP(sample, bb, jitter, cyclesAvail)
			zero = false
		} else {
			machine.AddActivityP(sample, bb, jitter, cyclesAvail)
		}
		instr += instrPossible
		b.remInstr[i] -= instrPossible
		busy += remaining
		remaining = 0
	}
	used = interval - remaining
	ok = used > 0
	return
}

// measureFast is the measure stage on the fault-free path: ground
// truth, the chain's reading, and both energy integrals.
func (b *BatchState) measureFast(i, cur int, used, busy time.Duration) (trueW, meaW float64) {
	trueW = b.machines[i].IntervalPower(cur, &b.tinfo[i].Sample, busy, used)
	meaW = b.chains[i].Measure(trueW, b.rngs[i])
	usedSec := used.Seconds()
	if used == b.period[i] {
		usedSec = b.perSec[i]
	}
	b.energyTrue[i].Add(trueW, usedSec)
	if !math.IsNaN(meaW) {
		b.energyMeas[i].Add(meaW, usedSec)
	}
	return
}

// emitFastRow records the interval on the fault-free specialized
// paths: instruction totals always, the trace row only under
// RetainTraces. Rate divisions happen only when a row is kept.
func (b *BatchState) emitFastRow(i int, start, used time.Duration, cur int, trueW, meaW, instr float64, phName string) {
	b.instrTot[i] += instr
	if !b.retain {
		return
	}
	s := &b.tinfo[i].Sample
	run := b.runs[i]
	run.Rows = append(run.Rows, trace.Row{
		T:              start,
		Interval:       used,
		FreqMHz:        b.states[i][cur].FreqMHz,
		DPC:            s.DPC(),
		IPC:            s.IPC(),
		DCU:            s.DCU(),
		L2PC:           s.L2PC(),
		MemPC:          s.MemPC(),
		TruePowerW:     trueW,
		MeasuredPowerW: meaW,
		Instructions:   instr,
		Phase:          phName,
		Duty:           1,
	})
}

// noteDegradations records governor degradation notes stamped at the
// node's virtual time, as the staged govern stage does.
func (b *BatchState) noteDegradations(i int, ds []trace.Degradation) {
	for _, d := range ds {
		d.T = b.now[i]
		b.runs[i].AddDegradation(d)
	}
}

// stepPinnedBody steps a node with no governor (or a static clock
// pinned at its start state): execute and measure only — govern and
// actuate are provably no-ops.
func stepPinnedBody(b *BatchState, i int) {
	if b.tick[i] >= b.maxTicks[i] {
		b.failTicks(i)
		return
	}
	b.tick[i]++
	cur := int(b.curIdx[i])
	start := b.now[i]
	used, busy, _, instr, _, phName, ok := b.executeTick(i, cur)
	if !ok {
		b.done[i] = true
		return
	}
	trueW, meaW := b.measureFast(i, cur, used, busy)
	b.now[i] = start + used
	b.lastW[i] = meaW
	b.seq[i]++
	if b.exhausted[i] {
		b.done[i] = true
	}
	b.emitFastRow(i, start, used, cur, trueW, meaW, instr, phName)
}

// stepPMBody steps a node governed by a PerformanceMaximizer on the
// fault-free, thermal-free, hook-free path.
func stepPMBody(b *BatchState, i int) {
	if b.tick[i] >= b.maxTicks[i] {
		b.failTicks(i)
		return
	}
	b.tick[i]++
	cur := int(b.curIdx[i])
	start := b.now[i]
	used, busy, _, instr, _, phName, ok := b.executeTick(i, cur)
	if !ok {
		b.done[i] = true
		return
	}
	trueW, meaW := b.measureFast(i, cur, used, busy)
	b.now[i] = start + used
	b.lastW[i] = meaW
	b.seq[i]++
	if b.exhausted[i] {
		b.done[i] = true
		b.emitFastRow(i, start, used, cur, trueW, meaW, instr, phName)
		return
	}
	pm := b.pms[i]
	ti := &b.tinfo[i]
	ti.Now = b.now[i]
	ti.Interval = used
	ti.PState = b.states[i][cur]
	ti.PStateIndex = cur
	ti.MeasuredPowerW = meaW
	want := pm.TickP(ti)
	if ds := pm.DrainDegradations(); len(ds) != 0 {
		b.noteDegradations(i, ds)
	}
	if want != cur {
		d, err := b.acts[i].Set(want)
		if err != nil {
			b.errs[i] = fmt.Errorf("machine: governor %s: %w", b.policy[i], err)
			return
		}
		b.pendStall[i] += d
		b.curIdx[i] = int32(want)
	}
	b.emitFastRow(i, start, used, cur, trueW, meaW, instr, phName)
}

// stepPSBody steps a node governed by a PowerSave on the fault-free,
// thermal-free, hook-free path.
func stepPSBody(b *BatchState, i int) {
	if b.tick[i] >= b.maxTicks[i] {
		b.failTicks(i)
		return
	}
	b.tick[i]++
	cur := int(b.curIdx[i])
	start := b.now[i]
	used, busy, _, instr, _, phName, ok := b.executeTick(i, cur)
	if !ok {
		b.done[i] = true
		return
	}
	trueW, meaW := b.measureFast(i, cur, used, busy)
	b.now[i] = start + used
	b.lastW[i] = meaW
	b.seq[i]++
	if b.exhausted[i] {
		b.done[i] = true
		b.emitFastRow(i, start, used, cur, trueW, meaW, instr, phName)
		return
	}
	ps := b.pss[i]
	ti := &b.tinfo[i]
	ti.Now = b.now[i]
	ti.Interval = used
	ti.PState = b.states[i][cur]
	ti.PStateIndex = cur
	ti.MeasuredPowerW = meaW
	want := ps.TickP(ti)
	if ds := ps.DrainDegradations(); len(ds) != 0 {
		b.noteDegradations(i, ds)
	}
	if want != cur {
		d, err := b.acts[i].Set(want)
		if err != nil {
			b.errs[i] = fmt.Errorf("machine: governor %s: %w", b.policy[i], err)
			return
		}
		b.pendStall[i] += d
		b.curIdx[i] = int32(want)
	}
	b.emitFastRow(i, start, used, cur, trueW, meaW, instr, phName)
}

// emitTick mirrors the staged bus for the generic body: the canonical
// recorder first (rows under RetainTraces, instruction totals always),
// then the subscribed hooks in order.
func (b *BatchState) emitTick(i int, ts *machine.TickState) {
	b.instrTot[i] += ts.Instructions
	if b.retain {
		run := b.runs[i]
		run.Rows = append(run.Rows, trace.Row{
			T:              ts.Start,
			Interval:       ts.Used,
			FreqMHz:        ts.PState.FreqMHz,
			DPC:            ts.Observed.DPC(),
			IPC:            ts.Observed.IPC(),
			DCU:            ts.Observed.DCU(),
			L2PC:           ts.Observed.L2PC(),
			MemPC:          ts.Observed.MemPC(),
			TruePowerW:     ts.TruePowerW,
			MeasuredPowerW: ts.MeasuredPowerW,
			Instructions:   ts.Instructions,
			Phase:          ts.Phase,
			TempC:          ts.TempC,
			Duty:           ts.Duty,
		})
	}
	for _, h := range b.hooks[i] {
		h.OnTick(*ts)
	}
}

// emitTransition fans a resolved transition out to node i's hooks.
func (b *BatchState) emitTransition(i int, tr machine.Transition) {
	for _, h := range b.hooks[i] {
		h.OnTransition(tr)
	}
}

// emitDegradation records one degradation event in the node's run and
// fans it out to the hooks, like the staged bus's canonical recorder.
func (b *BatchState) emitDegradation(i int, d trace.Degradation) {
	b.runs[i].AddDegradation(d)
	for _, h := range b.hooks[i] {
		h.OnDegradation(d)
	}
}

// drainInjector forwards the fault injector's pending events stamped
// at virtual time t.
func (b *BatchState) drainInjector(i int, t time.Duration) {
	for _, e := range b.injs[i].Drain() {
		b.emitDegradation(i, trace.Degradation{T: t, Source: e.Source, Kind: e.Kind, Detail: e.Detail})
	}
}

// stepGenericBody reproduces the full staged tick — fault injection,
// thermal model, arbitrary governors (throttling included) and hook
// fan-out — against the batch state lanes. It is the fallback whenever
// a node needs anything the specialized bodies shed.
func stepGenericBody(b *BatchState, i int) {
	if b.tick[i] >= b.maxTicks[i] {
		b.failTicks(i)
		return
	}
	b.tick[i]++
	cur := int(b.curIdx[i])
	ts := machine.TickState{
		Tick:        b.tick[i],
		Start:       b.now[i],
		Interval:    b.period[i],
		PState:      b.states[i][cur],
		PStateIndex: cur,
		Duty:        b.duty[i],
		Jitter:      1.0,
	}
	ts.WantIndex = cur
	ts.NextDuty = ts.Duty

	used, busy, stall, instr, jitter, phName, ok := b.executeTick(i, cur)
	if !ok {
		b.done[i] = true
		return
	}
	ts.Used, ts.Busy, ts.Stall = used, busy, stall
	ts.Instructions, ts.Jitter, ts.Phase = instr, jitter, phName
	ts.Sample = b.tinfo[i].Sample

	ts.TruePowerW = b.machines[i].IntervalPower(cur, &b.tinfo[i].Sample, busy, used)
	ts.MeasuredPowerW = b.chains[i].Measure(ts.TruePowerW, b.rngs[i])
	ts.Observed = ts.Sample
	if inj := b.injs[i]; inj != nil {
		inj.BeginTick()
		ts.Observed = inj.Counters(ts.Sample)
		ts.MeasuredPowerW = inj.Sense(ts.MeasuredPowerW)
		b.obs[i] = ts.Observed
		b.drainInjector(i, ts.Start+used)
	}
	usedSec := used.Seconds()
	if used == b.period[i] {
		usedSec = b.perSec[i]
	}
	b.energyTrue[i].Add(ts.TruePowerW, usedSec)
	if !math.IsNaN(ts.MeasuredPowerW) {
		b.energyMeas[i].Add(ts.MeasuredPowerW, usedSec)
	}
	if tm := b.tms[i]; tm != nil {
		tm.Step(ts.TruePowerW, used)
		ts.TempC = tm.SensorC()
	}

	b.now[i] += used
	b.lastW[i] = ts.MeasuredPowerW
	b.seq[i]++
	if b.exhausted[i] {
		ts.Final = true
		b.done[i] = true
		b.emitTick(i, &ts)
		return
	}

	if g := b.govs[i]; g != nil {
		ts.WantIndex = g.Tick(machine.TickInfo{
			Now:            b.now[i],
			Interval:       used,
			Sample:         ts.Observed,
			PState:         ts.PState,
			PStateIndex:    cur,
			Table:          b.tables[i],
			MeasuredPowerW: ts.MeasuredPowerW,
			TempC:          ts.TempC,
			Duty:           ts.Duty,
		})
		if dr, ok := g.(machine.DegradationReporter); ok {
			for _, d := range dr.DrainDegradations() {
				d.T = b.now[i]
				b.emitDegradation(i, d)
			}
		}
		if ts.WantIndex != cur {
			okT, extra := true, time.Duration(0)
			if inj := b.injs[i]; inj != nil {
				okT, extra = inj.Transition(b.acts[i].Latency())
				b.drainInjector(i, b.now[i])
			}
			if okT {
				d, err := b.acts[i].Set(ts.WantIndex)
				if err != nil {
					b.errs[i] = fmt.Errorf("machine: governor %s: %w", b.policy[i], err)
					return
				}
				b.pendStall[i] += d + extra
				b.curIdx[i] = int32(ts.WantIndex)
				b.emitTransition(i, machine.Transition{T: b.now[i], From: cur, To: ts.WantIndex, OK: true, Stall: d + extra})
			} else {
				// Transition abandoned: the actuator stays put and the
				// failed attempt's stall time is still paid.
				b.acts[i].RecordFailure(extra)
				b.pendStall[i] += extra
				b.emitTransition(i, machine.Transition{T: b.now[i], From: cur, To: ts.WantIndex, OK: false, Stall: extra})
			}
		}
		if th, ok := g.(machine.Throttler); ok {
			b.duty[i] = machine.ClampDuty(th.Duty())
		}
		ts.NextDuty = b.duty[i]
	}
	b.emitTick(i, &ts)
}
