// Package memsim models the off-chip DRAM main memory of the
// simulated platform: a fixed wall-clock access latency with a simple
// open-row bonus and a bandwidth ceiling.
//
// DRAM timing is frequency-independent in wall-clock terms, which is
// the physical root of the paper's core observation: memory-bound
// workloads see little performance change across p-states because
// their critical path is measured in nanoseconds, not core cycles.
package memsim

import "fmt"

// Config describes the DRAM model.
type Config struct {
	// LatencyNs is the row-miss (closed page) access latency.
	LatencyNs float64
	// RowHitLatencyNs is the latency when the access falls in the most
	// recently opened row of its bank.
	RowHitLatencyNs float64
	// RowBytes is the row (page) size per bank.
	RowBytes uint64
	// Banks is the number of independent banks.
	Banks int
	// PeakBandwidthGBs caps sustained transfer bandwidth.
	PeakBandwidthGBs float64
}

// DDR333 returns timing for the DDR-333 memory of the paper's
// platform era: ~90 ns closed-page latency, ~45 ns open-page.
func DDR333() Config {
	return Config{
		LatencyNs:        90,
		RowHitLatencyNs:  45,
		RowBytes:         4096,
		Banks:            4,
		PeakBandwidthGBs: 2.7,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.LatencyNs <= 0 || c.RowHitLatencyNs <= 0:
		return fmt.Errorf("memsim: non-positive latency %+v", c)
	case c.RowHitLatencyNs > c.LatencyNs:
		return fmt.Errorf("memsim: row hit latency %g above row miss latency %g", c.RowHitLatencyNs, c.LatencyNs)
	case c.RowBytes == 0 || c.Banks <= 0:
		return fmt.Errorf("memsim: invalid geometry %+v", c)
	case c.PeakBandwidthGBs <= 0:
		return fmt.Errorf("memsim: non-positive bandwidth")
	}
	return nil
}

// Stats counts DRAM activity.
type Stats struct {
	Accesses uint64
	RowHits  uint64
	BytesXfr uint64
}

// RowHitRate returns the open-row hit fraction.
func (s Stats) RowHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// Memory is the DRAM model instance.
type Memory struct {
	cfg      Config
	openRow  []uint64
	rowValid []bool
	stats    Stats
}

// New builds a Memory from cfg.
func New(cfg Config) (*Memory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Memory{
		cfg:      cfg,
		openRow:  make([]uint64, cfg.Banks),
		rowValid: make([]bool, cfg.Banks),
	}, nil
}

// Config returns the DRAM configuration.
func (m *Memory) Config() Config { return m.cfg }

// Stats returns DRAM activity counters.
func (m *Memory) Stats() Stats { return m.stats }

// Access performs one line transfer of lineBytes at addr and returns
// its latency in nanoseconds.
func (m *Memory) Access(addr uint64, lineBytes int) float64 {
	m.stats.Accesses++
	m.stats.BytesXfr += uint64(lineBytes)
	row := addr / m.cfg.RowBytes
	bank := int(row) % m.cfg.Banks
	if m.rowValid[bank] && m.openRow[bank] == row {
		m.stats.RowHits++
		return m.cfg.RowHitLatencyNs
	}
	m.openRow[bank] = row
	m.rowValid[bank] = true
	return m.cfg.LatencyNs
}

// MinTransferNs returns the bandwidth-limited minimum time to move
// n bytes, used to throttle streaming kernels beyond latency effects.
func (m *Memory) MinTransferNs(n uint64) float64 {
	return float64(n) / m.cfg.PeakBandwidthGBs // bytes / (GB/s) == ns
}
