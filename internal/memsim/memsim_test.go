package memsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigValidation(t *testing.T) {
	ok := DDR333()
	if err := ok.Validate(); err != nil {
		t.Fatalf("DDR333 invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero latency", func(c *Config) { c.LatencyNs = 0 }},
		{"zero row hit latency", func(c *Config) { c.RowHitLatencyNs = 0 }},
		{"row hit above row miss", func(c *Config) { c.RowHitLatencyNs = c.LatencyNs + 1 }},
		{"zero row bytes", func(c *Config) { c.RowBytes = 0 }},
		{"zero banks", func(c *Config) { c.Banks = 0 }},
		{"zero bandwidth", func(c *Config) { c.PeakBandwidthGBs = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := DDR333()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Errorf("Validate accepted %+v", c)
			}
			if _, err := New(c); err == nil {
				t.Error("New accepted invalid config")
			}
		})
	}
}

func TestRowHitLatency(t *testing.T) {
	m, err := New(DDR333())
	if err != nil {
		t.Fatal(err)
	}
	first := m.Access(0, 64)
	if first != 90 {
		t.Errorf("cold access latency = %g, want 90", first)
	}
	second := m.Access(64, 64) // same 4 KB row
	if second != 45 {
		t.Errorf("open-row access latency = %g, want 45", second)
	}
	s := m.Stats()
	if s.Accesses != 2 || s.RowHits != 1 || s.BytesXfr != 128 {
		t.Errorf("stats = %+v", s)
	}
	if s.RowHitRate() != 0.5 {
		t.Errorf("RowHitRate = %g, want 0.5", s.RowHitRate())
	}
}

func TestRowConflictReopensRow(t *testing.T) {
	m, _ := New(DDR333())
	cfg := m.Config()
	// Two rows mapping to the same bank: rows r and r+banks.
	a := uint64(0)
	b := uint64(cfg.RowBytes) * uint64(cfg.Banks)
	m.Access(a, 64)
	if got := m.Access(b, 64); got != 90 {
		t.Errorf("row conflict latency = %g, want 90", got)
	}
	if got := m.Access(a, 64); got != 90 {
		t.Errorf("reopened row latency = %g, want 90", got)
	}
}

func TestBanksAreIndependent(t *testing.T) {
	m, _ := New(DDR333())
	cfg := m.Config()
	a := uint64(0)                // bank 0
	b := uint64(cfg.RowBytes * 1) // bank 1
	m.Access(a, 64)
	m.Access(b, 64)
	if got := m.Access(a+64, 64); got != cfg.RowHitLatencyNs {
		t.Errorf("bank-0 row closed by bank-1 access: latency %g", got)
	}
}

func TestMinTransferNs(t *testing.T) {
	m, _ := New(DDR333())
	got := m.MinTransferNs(2700)
	if math.Abs(got-1000) > 1e-9 {
		t.Errorf("MinTransferNs(2700B at 2.7GB/s) = %g, want 1000", got)
	}
}

func TestEmptyStats(t *testing.T) {
	var s Stats
	if s.RowHitRate() != 0 {
		t.Error("empty RowHitRate != 0")
	}
}

// Property: every access latency is either the row-hit or row-miss
// latency, and stats stay consistent.
func TestLatencyValuesAreWellFormed(t *testing.T) {
	f := func(addrs []uint32) bool {
		m, err := New(DDR333())
		if err != nil {
			return false
		}
		cfg := m.Config()
		hits := uint64(0)
		for _, a := range addrs {
			lat := m.Access(uint64(a), 64)
			switch lat {
			case cfg.RowHitLatencyNs:
				hits++
			case cfg.LatencyNs:
			default:
				return false
			}
		}
		s := m.Stats()
		return s.Accesses == uint64(len(addrs)) && s.RowHits == hits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
