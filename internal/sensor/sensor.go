// Package sensor simulates the paper's power-measurement apparatus: a
// Radisys board with high-precision sense resistors between the
// voltage regulators and the processor, feeding a National Instruments
// SCXI-1125 + PCI-6052E data-acquisition chain, plus the 3.3 V GPIO
// the authors toggle to synchronize workload execution with the
// acquired samples.
//
// The simulated chain converts true power (package power) into the
// measured samples the evaluation sees: shunt + amplifier gain error,
// additive noise, and ADC quantization. Tests can use Ideal for exact
// readings.
package sensor

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Chain models the analog front end and digitizer.
type Chain struct {
	// GainError is the multiplicative calibration error of the
	// shunt/amplifier path (e.g. 0.01 = reads 1% high).
	GainError float64
	// NoiseStdW is the standard deviation of additive Gaussian noise
	// per sample, in watts.
	NoiseStdW float64
	// QuantStepW is the ADC quantization step in watts.
	QuantStepW float64
}

// Ideal returns a noiseless, perfectly calibrated chain.
func Ideal() Chain { return Chain{} }

// NIDefault returns the default chain calibrated to the paper's setup:
// a 16-bit DAQ over a ~30 W full-scale range gives sub-milliwatt
// quantization; board-level noise dominates at a few tens of
// milliwatts.
func NIDefault() Chain {
	return Chain{
		GainError:  0.002,
		NoiseStdW:  0.04,
		QuantStepW: 0.001,
	}
}

// Validate reports implausible chain parameters.
func (c Chain) Validate() error {
	switch {
	case c.GainError < -0.5 || c.GainError > 0.5:
		return fmt.Errorf("sensor: gain error %g outside [-0.5,0.5]", c.GainError)
	case c.NoiseStdW < 0:
		return fmt.Errorf("sensor: negative noise")
	case c.QuantStepW < 0:
		return fmt.Errorf("sensor: negative quantization step")
	}
	return nil
}

// Measure converts a true power value into one measured sample. rng
// supplies the noise; a nil rng yields the noise-free reading.
func (c Chain) Measure(trueW float64, rng *rand.Rand) float64 {
	return (&c).MeasureP(trueW, rng)
}

// MeasureP is Measure on a pointer receiver, for hot loops that hold
// the chain in a slice and want to skip the receiver copy. Identical
// arithmetic.
func (c *Chain) MeasureP(trueW float64, rng *rand.Rand) float64 {
	v := trueW * (1 + c.GainError)
	if rng != nil && c.NoiseStdW > 0 {
		v += rng.NormFloat64() * c.NoiseStdW
	}
	if c.QuantStepW > 0 {
		steps := v / c.QuantStepW
		v = float64(int64(steps+0.5)) * c.QuantStepW
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Prepared is a measurement chain with its per-sample constants
// folded: the gain multiplier (1 + GainError) is computed once instead
// of per reading. Measurement results are bit-identical to
// Chain.Measure — the fold is a pure constant.
type Prepared struct {
	gain1      float64
	noiseStdW  float64
	quantStepW float64
}

// Prepare folds the chain's constants for a hot measurement loop.
func (c Chain) Prepare() Prepared {
	return Prepared{gain1: 1 + c.GainError, noiseStdW: c.NoiseStdW, quantStepW: c.QuantStepW}
}

// Measure converts a true power value into one measured sample,
// exactly as Chain.Measure does.
func (p *Prepared) Measure(trueW float64, rng *rand.Rand) float64 {
	v := trueW * p.gain1
	if rng != nil && p.noiseStdW > 0 {
		v += rng.NormFloat64() * p.noiseStdW
	}
	if p.quantStepW > 0 {
		steps := v / p.quantStepW
		v = float64(int64(steps+0.5)) * p.quantStepW
	}
	if v < 0 {
		v = 0
	}
	return v
}

// Sample is one acquired power reading.
type Sample struct {
	T      time.Duration
	PowerW float64
}

// Marker is a GPIO edge used to synchronize workload execution with
// the acquisition stream.
type Marker struct {
	T      time.Duration
	Label  string
	Rising bool
}

// Recorder accumulates the acquisition stream of one machine. A
// machine's sessions share its recorder, and parallel drivers (the
// cluster coordinator's worker pool) may step sessions of different
// machines — or, for sequential workloads on one board, interleave
// sessions — from multiple goroutines, so the appends are
// mutex-guarded. The stream stays in acquisition order per goroutine;
// callers wanting a strict global time order across concurrently
// stepped sessions must sort.
type Recorder struct {
	mu      sync.Mutex
	samples []Sample
	markers []Marker
}

// Record appends one power sample.
func (r *Recorder) Record(t time.Duration, powerW float64) {
	r.mu.Lock()
	r.samples = append(r.samples, Sample{T: t, PowerW: powerW})
	r.mu.Unlock()
}

// Mark appends a GPIO edge.
func (r *Recorder) Mark(t time.Duration, label string, rising bool) {
	r.mu.Lock()
	r.markers = append(r.markers, Marker{T: t, Label: label, Rising: rising})
	r.mu.Unlock()
}

// Samples returns the acquired samples in acquisition order. The
// returned slice is shared with the recorder; do not append to it
// while sessions are still being stepped.
func (r *Recorder) Samples() []Sample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.samples
}

// Markers returns the GPIO edges in acquisition order, under the same
// sharing caveat as Samples.
func (r *Recorder) Markers() []Marker {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.markers
}

// Between returns the samples acquired between the rising and falling
// edges of the marker with the given label, mirroring how the paper
// crops acquisition data to one benchmark run.
func (r *Recorder) Between(label string) ([]Sample, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var start, end time.Duration
	var haveStart, haveEnd bool
	for _, m := range r.markers {
		if m.Label != label {
			continue
		}
		if m.Rising && !haveStart {
			start, haveStart = m.T, true
		}
		if !m.Rising && haveStart && !haveEnd {
			end, haveEnd = m.T, true
		}
	}
	if !haveStart || !haveEnd {
		return nil, fmt.Errorf("sensor: no complete marker pair %q", label)
	}
	var out []Sample
	for _, s := range r.samples {
		if s.T >= start && s.T <= end {
			out = append(out, s)
		}
	}
	return out, nil
}
