package sensor

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestChainValidation(t *testing.T) {
	if err := Ideal().Validate(); err != nil {
		t.Errorf("Ideal invalid: %v", err)
	}
	if err := NIDefault().Validate(); err != nil {
		t.Errorf("NIDefault invalid: %v", err)
	}
	bad := []Chain{
		{GainError: 0.6},
		{GainError: -0.6},
		{NoiseStdW: -1},
		{QuantStepW: -0.1},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", c)
		}
	}
}

func TestIdealChainIsExact(t *testing.T) {
	c := Ideal()
	rng := rand.New(rand.NewSource(1))
	for _, w := range []float64{0, 3.86, 17.78} {
		if got := c.Measure(w, rng); got != w {
			t.Errorf("Measure(%g) = %g, want exact", w, got)
		}
	}
}

func TestGainErrorApplied(t *testing.T) {
	c := Chain{GainError: 0.01}
	if got := c.Measure(10, nil); math.Abs(got-10.1) > 1e-12 {
		t.Errorf("Measure = %g, want 10.1", got)
	}
}

func TestQuantization(t *testing.T) {
	c := Chain{QuantStepW: 0.5}
	if got := c.Measure(10.30, nil); got != 10.5 {
		t.Errorf("Measure(10.30) = %g, want 10.5", got)
	}
	if got := c.Measure(10.20, nil); got != 10.0 {
		t.Errorf("Measure(10.20) = %g, want 10.0", got)
	}
}

func TestNoiseStatistics(t *testing.T) {
	c := Chain{NoiseStdW: 0.05}
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := c.Measure(10, rng) - 10
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	std := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean) > 0.002 {
		t.Errorf("noise mean = %g, want ~0", mean)
	}
	if math.Abs(std-0.05) > 0.005 {
		t.Errorf("noise std = %g, want ~0.05", std)
	}
}

func TestNilRNGSkipsNoise(t *testing.T) {
	c := Chain{NoiseStdW: 1}
	if got := c.Measure(10, nil); got != 10 {
		t.Errorf("Measure with nil rng = %g, want 10", got)
	}
}

func TestMeasureClampsNegative(t *testing.T) {
	c := Chain{GainError: -0.5}
	if got := c.Measure(0.0001, nil); got < 0 {
		t.Errorf("negative measurement %g", got)
	}
}

func TestRecorderBetweenMarkers(t *testing.T) {
	var r Recorder
	r.Record(0, 1)
	r.Mark(5*time.Millisecond, "run", true)
	r.Record(10*time.Millisecond, 2)
	r.Record(20*time.Millisecond, 3)
	r.Mark(25*time.Millisecond, "run", false)
	r.Record(30*time.Millisecond, 4)

	got, err := r.Between("run")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].PowerW != 2 || got[1].PowerW != 3 {
		t.Errorf("Between = %+v", got)
	}
	if len(r.Samples()) != 4 || len(r.Markers()) != 2 {
		t.Errorf("recorder holds %d samples, %d markers", len(r.Samples()), len(r.Markers()))
	}
}

func TestRecorderBetweenMissingMarker(t *testing.T) {
	var r Recorder
	r.Mark(0, "only-rising", true)
	if _, err := r.Between("only-rising"); err == nil {
		t.Error("incomplete marker pair accepted")
	}
	if _, err := r.Between("absent"); err == nil {
		t.Error("absent marker accepted")
	}
}

func TestRecorderBetweenFirstPair(t *testing.T) {
	var r Recorder
	r.Mark(0, "w", true)
	r.Record(1*time.Millisecond, 10)
	r.Mark(2*time.Millisecond, "w", false)
	r.Mark(3*time.Millisecond, "w", true)
	r.Record(4*time.Millisecond, 20)
	r.Mark(5*time.Millisecond, "w", false)
	got, err := r.Between("w")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].PowerW != 10 {
		t.Errorf("Between picked %+v, want first pair's sample", got)
	}
}
