// Control-plane seam for the hierarchical fleet coordinator: a layer
// above RunFleet (package intent) observes each reallocation epoch and
// answers with per-group directives (floors, caps, priority weights)
// and per-node overrides (forced p-state pins, offlining). Everything
// crosses the seam at epoch boundaries on the coordinator goroutine,
// so directives never race the stepping workers and a deterministic
// controller keeps the whole run byte-deterministic at any worker
// count.
package cluster

// GroupDirective is one interior group's control-plane override for
// the next reallocation epochs. Zero values mean "no override".
type GroupDirective struct {
	// MinW raises the group's guaranteed minimum above the sum of its
	// children's floors (plumbed into alloc.Aggregate.MinW).
	MinW float64
	// CapW bounds the group's budget ask: the water-fill never grants
	// the group more than this. Values below the group's guaranteed
	// minimum are raised to it (admission should prevent that case).
	CapW float64
	// Weight scales the group's surplus demand (ask above its
	// guaranteed minimum): >1 bids harder for contended headroom, <1
	// yields it. 0 and 1 both mean neutral.
	Weight float64
}

// NodeOverride is a per-leaf control-plane command, applied at epoch
// boundaries and sticky until replaced.
type NodeOverride uint8

const (
	// NodeAuto leaves the leaf under normal governor + water-fill
	// control.
	NodeAuto NodeOverride = iota
	// NodePinned forces the leaf's governor limit to ~0 W after every
	// reallocation, driving it to the bottom p-state regardless of its
	// granted share (the hard rung of cap enforcement).
	NodePinned
	// NodeOffline removes the leaf from service: it is no longer
	// stepped, its demand reads inactive, and its share is released to
	// the rest of the fleet.
	NodeOffline
)

// GroupObs is one first-interior-level group's epoch summary, as
// handed to the control plane.
type GroupObs struct {
	// AvgPowerW is the epoch-average measured power of the group (sum
	// of usable node samples per tick, averaged over the epoch's
	// ticks).
	AvgPowerW float64
	// BudgetW is the budget the group was granted at the previous
	// reallocation.
	BudgetW float64
	// Nodes is the group's leaf span; Active counts leaves still in
	// service (not finished, not offlined).
	Nodes, Active int
}

// FleetEpochObs is what the control plane sees at each reallocation
// epoch. Slices are valid only during the Epoch call (the coordinator
// reuses the buffers).
type FleetEpochObs struct {
	// Epoch counts completed reallocations this run; Tick is the
	// lockstep tick the epoch closed at; VirtUS is the corresponding
	// virtual time in microseconds.
	Epoch  int
	Tick   int
	VirtUS float64
	// BudgetW and FloorW echo the run's global cap and per-node floor.
	BudgetW float64
	FloorW  float64
	// Groups summarizes the first interior level in index order (nil
	// when Levels == 1).
	Groups []GroupObs
	// NodeActive[i] reports whether leaf i is still in service.
	NodeActive []bool
}

// FleetDirectives is the control plane's answer for the epoch.
type FleetDirectives struct {
	// Groups[l][g] overrides interior level l's group g (level 0 is
	// unused; nil rows mean no overrides at that level).
	Groups [][]GroupDirective
	// Nodes[i] overrides leaf i; nil leaves the previous epoch's
	// overrides in place. The coordinator copies the commands, so the
	// controller may reuse the slice.
	Nodes []NodeOverride
}

// FleetControl is the control-plane hook on FleetConfig: Epoch is
// called once per reallocation, post-barrier, on the coordinator
// goroutine, before the epoch's budgets are distributed — the returned
// directives take effect immediately. Implementations must be
// deterministic functions of the observation sequence for the run to
// stay byte-deterministic.
type FleetControl interface {
	Epoch(FleetEpochObs) FleetDirectives
}

// GroupSpec is a static per-group definition on FleetConfig (the
// first interior level): today a guaranteed minimum, the heterogeneous
// floor the water-fill honors through alloc.Aggregate.MinW.
type GroupSpec struct {
	// MinW is the group's guaranteed minimum allocation; values below
	// the sum of the group's leaf floors have no effect.
	MinW float64
}

// pinLimitW is the governor limit applied to NodePinned leaves: below
// any p-state's power, so the governor selects the bottom state.
const pinLimitW = 1e-3

// TreeShape exposes the fleet's static tree geometry to layers above
// the coordinator (intent admission walks it to map groups to leaf
// ranges). The zero value is invalid; build one with ShapeOf.
type TreeShape struct {
	s fleetShape
	n int
}

// ShapeOf resolves the same defaults RunFleet does (levels 0 → 1,
// fanout 0 → 64) and returns the resulting tree geometry.
func ShapeOf(nodes, levels, fanout int) TreeShape {
	if levels <= 0 {
		levels = 1
	}
	if fanout <= 0 {
		fanout = 64
	}
	return TreeShape{s: fleetShapeOf(nodes, levels, fanout), n: nodes}
}

// Levels is the allocation-tree depth above the leaves.
func (t TreeShape) Levels() int { return t.s.levels }

// Nodes is the leaf count.
func (t TreeShape) Nodes() int { return t.n }

// Groups is the group count at interior level l (l == 0 returns the
// leaf count).
func (t TreeShape) Groups(l int) int {
	if l < 0 || l >= t.s.levels {
		return 0
	}
	return t.s.counts[l]
}

// LeafRange is the leaf index range [lo, hi) covered by group g at
// level l (for l == 0 it is the single leaf g).
func (t TreeShape) LeafRange(l, g int) (lo, hi int) {
	span := t.s.spanSize[l]
	lo = g * span
	hi = min(lo+span, t.n)
	return lo, hi
}

// ChildRange is the level-(l-1) index range [lo, hi) under group g at
// level l.
func (t TreeShape) ChildRange(l, g int) (lo, hi int) {
	return t.s.childRange(l, g)
}

// controlEpochIn carries the coordinator's epoch state into the
// control-plane call.
type controlEpochIn struct {
	epoch, tick     int
	periodUS        float64
	budgetW, floorW float64
	shape           fleetShape
	demands         []demand
	budgets         [][]float64
	ctlW            []float64
	ctlTicks        int
	nodeOv          []NodeOverride
}

// runControlEpoch assembles the epoch observation, invokes the control
// plane, and folds its node overrides into the sticky per-leaf state.
// Runs on the coordinator goroutine at epoch granularity — nothing
// here touches the per-tick hot path.
func runControlEpoch(ctl FleetControl, in controlEpochIn) ([][]GroupDirective, []NodeOverride) {
	n := len(in.demands)
	o := FleetEpochObs{
		Epoch: in.epoch, Tick: in.tick,
		VirtUS:  float64(in.tick) * in.periodUS,
		BudgetW: in.budgetW, FloorW: in.floorW,
	}
	active := make([]bool, n)
	for i := range in.demands {
		active[i] = in.demands[i].active
	}
	o.NodeActive = active
	if in.ctlW != nil {
		gs := make([]GroupObs, in.shape.counts[1])
		span := in.shape.spanSize[1]
		for g := range gs {
			lo := g * span
			hi := min(lo+span, n)
			act := 0
			for i := lo; i < hi; i++ {
				if active[i] {
					act++
				}
			}
			var avg float64
			if in.ctlTicks > 0 {
				avg = in.ctlW[g] / float64(in.ctlTicks)
			}
			gs[g] = GroupObs{AvgPowerW: avg, BudgetW: in.budgets[1][g], Nodes: hi - lo, Active: act}
		}
		o.Groups = gs
	}
	d := ctl.Epoch(o)
	if d.Nodes != nil {
		for i := 0; i < n && i < len(d.Nodes); i++ {
			in.nodeOv[i] = d.Nodes[i]
		}
	}
	return d.Groups, in.nodeOv
}
