package cluster

import (
	"testing"

	"aapm/internal/sensor"
	"aapm/internal/spec"
)

func TestDebugRealloc(t *testing.T) {
	if !testing.Verbose() {
		t.Skip("debug aid; run with -v")
	}
	debugHook = func(node int, desire, limit float64) {
		t.Logf("node %d desire %.2f limit %.2f", node, desire, limit)
	}
	defer func() { debugHook = nil }()
	var ns []Node
	for _, n := range []string{"swim", "mcf", "lucas", "crafty"} {
		w, err := spec.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		w.Iterations = max(1, w.Repeats()/6)
		ns = append(ns, Node{Workload: w})
	}
	res, err := Run(Config{BudgetW: 52, Nodes: ns, Seed: 7, Chain: sensor.NIDefault()})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res.Runs {
		t.Logf("%s %.2fs", res.Names[i], r.Duration.Seconds())
	}
}
