package cluster

import (
	"fmt"
	"runtime"
	"testing"

	"aapm/internal/sensor"
)

// BenchmarkClusterTick measures the coordinator's per-tick cost on an
// 8-node shared-budget run, serially and across the worker pool. The
// serial/parallel pair is the speedup record for EXPERIMENTS.md; on a
// single-core host the parallel variant mostly measures pool overhead
// (the barrier handoffs), which is the other number worth pinning.
func BenchmarkClusterTick(b *testing.B) {
	for _, workers := range []int{1, 8} {
		name := "serial"
		if workers > 1 {
			name = fmt.Sprintf("parallel%d-on-%dcore", workers, runtime.GOMAXPROCS(0))
		}
		b.Run(name, func(b *testing.B) {
			ticks := 0
			for i := 0; i < b.N; i++ {
				res, err := Run(Config{
					BudgetW: 104,
					Nodes:   eightNodes(b),
					Seed:    7,
					Chain:   sensor.NIDefault(),
					Workers: workers,
				})
				if err != nil {
					b.Fatal(err)
				}
				ticks += res.TickWall.N
			}
			// TickWall.N counts per-worker shard-steps (== ticks for
			// the serial run).
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(ticks), "ns/step")
			b.ReportMetric(float64(ticks)/float64(b.N), "steps/run")
		})
	}
}
