package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"aapm/internal/sensor"
	"aapm/internal/spec"
)

// eightNodes builds an 8-node population over the suite's spread of
// power appetites, shortened for test runtime.
func eightNodes(t testing.TB) []Node {
	t.Helper()
	names := []string{"swim", "mcf", "lucas", "crafty", "gzip", "gcc", "art", "ammp"}
	out := make([]Node, len(names))
	for i, n := range names {
		w, err := spec.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		w.Iterations = max(1, w.Repeats()/8)
		out[i] = Node{Workload: w}
	}
	return out
}

// tracesCSV serializes every node trace of a result, in node order.
func tracesCSV(t testing.TB, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, run := range res.Runs {
		fmt.Fprintf(&buf, "# node %d %s\n", i, res.Names[i])
		if err := run.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestParallelMatchesSerial is the determinism proof the parallel
// coordinator must carry: for several seeds, a run stepped across 8
// workers produces byte-for-byte the traces of the serial (Workers=1)
// reference, and the aggregate results match.
func TestParallelMatchesSerial(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			cfg := Config{
				BudgetW: 104,
				Nodes:   eightNodes(t),
				Seed:    seed,
				Chain:   sensor.NIDefault(),
				Workers: 1,
			}
			serial, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Nodes = eightNodes(t)
			cfg.Workers = 8
			par, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if par.Workers != 8 || serial.Workers != 1 {
				t.Fatalf("worker counts: serial %d, parallel %d", serial.Workers, par.Workers)
			}
			sb, pb := tracesCSV(t, serial), tracesCSV(t, par)
			if !bytes.Equal(sb, pb) {
				// Locate the first diverging line for the failure report.
				sl, pl := bytes.Split(sb, []byte("\n")), bytes.Split(pb, []byte("\n"))
				for i := 0; i < len(sl) && i < len(pl); i++ {
					if !bytes.Equal(sl[i], pl[i]) {
						t.Fatalf("parallel trace diverges from serial at line %d:\n  serial   %s\n  parallel %s", i, sl[i], pl[i])
					}
				}
				t.Fatalf("parallel traces differ in length: %d vs %d lines", len(sl), len(pl))
			}
			if serial.MachineSeconds != par.MachineSeconds || serial.Makespan != par.Makespan {
				t.Errorf("aggregates diverge: serial %v/%v, parallel %v/%v",
					serial.MachineSeconds, serial.Makespan, par.MachineSeconds, par.Makespan)
			}
			if serial.PeakTotalW != par.PeakTotalW || serial.OverFrac != par.OverFrac ||
				serial.ContendedOverFrac != par.ContendedOverFrac ||
				serial.ContendedIntervals != par.ContendedIntervals {
				t.Errorf("budget accounting diverges: serial %+v, parallel %+v", serial, par)
			}
		})
	}
}

// TestParallelEightNodeRace drives the default worker count over an
// 8-node run; under -race (CI) it proves the stepping path clean.
func TestParallelEightNodeRace(t *testing.T) {
	res, err := Run(Config{
		BudgetW: 104,
		Nodes:   eightNodes(t),
		Seed:    5,
		Chain:   sensor.NIDefault(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 8 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	for i, run := range res.Runs {
		if run.Duration <= 0 || run.Instructions <= 0 {
			t.Errorf("node %s degenerate run", res.Names[i])
		}
	}
	if res.TickWall.N == 0 || res.TickWall.Total <= 0 {
		t.Errorf("coordinator wall-clock not collected: %+v", res.TickWall)
	}
}

// TestWorkerCountClamps pins the worker-count selection: more workers
// than nodes clamp to the node count, and 0 selects a positive
// default.
func TestWorkerCountClamps(t *testing.T) {
	ws := nodes(t, "gzip", "crafty")
	ws[0].Workload.Iterations = 1
	ws[1].Workload.Iterations = 1
	res, err := Run(Config{BudgetW: 30, Nodes: ws, Seed: 3, Chain: sensor.NIDefault(), Workers: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers != 2 {
		t.Errorf("64 workers over 2 nodes ran with %d workers, want 2", res.Workers)
	}
	res, err = Run(Config{BudgetW: 30, Nodes: nodes(t, "gzip", "crafty"), Seed: 3, Chain: sensor.NIDefault()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workers < 1 {
		t.Errorf("default worker count %d", res.Workers)
	}
}
