package cluster

import (
	"bytes"
	"reflect"
	"testing"

	"aapm/internal/sensor"
)

// TestEngineMatchesStaged is the cluster-level differential gate: a
// shared-budget run stepped through the batch kernel (the default
// engine) must produce byte-for-byte the traces and identical
// aggregates of the staged-session reference, serially and across the
// worker pool.
func TestEngineMatchesStaged(t *testing.T) {
	base := Config{
		BudgetW: 104,
		Seed:    11,
		Chain:   sensor.NIDefault(),
	}
	ref := base
	ref.Nodes = eightNodes(t)
	ref.Engine = "staged"
	ref.Workers = 1
	want, err := Run(ref)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV := tracesCSV(t, want)

	for _, tc := range []struct {
		name    string
		engine  string
		workers int
	}{
		{"batch-serial", "batch", 1},
		{"default-serial", "", 1},
		{"batch-pool", "batch", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Nodes = eightNodes(t)
			cfg.Engine = tc.engine
			cfg.Workers = tc.workers
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if csv := tracesCSV(t, got); !bytes.Equal(csv, wantCSV) {
				t.Fatalf("engine %q (workers=%d) diverged from the staged traces", tc.engine, tc.workers)
			}
			if got.MachineSeconds != want.MachineSeconds || got.Makespan != want.Makespan {
				t.Errorf("completion aggregates diverged: %.6f/%v vs %.6f/%v",
					got.MachineSeconds, got.Makespan, want.MachineSeconds, want.Makespan)
			}
			if got.PeakTotalW != want.PeakTotalW || got.OverFrac != want.OverFrac ||
				got.ContendedOverFrac != want.ContendedOverFrac ||
				got.ContendedIntervals != want.ContendedIntervals {
				t.Errorf("budget aggregates diverged")
			}
			for i := range want.Runs {
				if !reflect.DeepEqual(got.Runs[i].Degradations, want.Runs[i].Degradations) {
					t.Errorf("node %s degradation log diverged", want.Names[i])
				}
			}
		})
	}
}

// TestEngineUnknownRejected pins the Engine field's validation.
func TestEngineUnknownRejected(t *testing.T) {
	cfg := Config{BudgetW: 30, Nodes: nodes(t, "gzip", "crafty"), Chain: sensor.NIDefault(), Engine: "vectorized"}
	if _, err := Run(cfg); err == nil {
		t.Fatal("unknown engine accepted")
	}
}
