//go:build !race

package cluster

// raceEnabled reports whether the race detector instruments this
// build; allocation- and wall-clock-sensitive tests skip under it.
const raceEnabled = false
