// Hierarchical fleet coordinator: the flat shared-budget loop scaled
// to 10⁵+ nodes by running the level-agnostic allocator (package
// alloc) at every tier of a tree. Leaves are index ranges of one
// kernel.BatchState stepped by the existing worker pool; interior
// levels aggregate their children's epoch demands into group
// summaries and re-run the same Allocator; the root holds the global
// cap. Grouping is by consecutive node index with a fixed fanout, so
// group membership is a pure function of (index, fanout) and needs no
// per-node storage.
//
// Determinism anchor: with Levels == 1 the hierarchy degenerates to a
// single Allocate over all leaves — operation-for-operation the flat
// coordinator's reallocation — so traces, energy integrals and
// degradation logs are byte-identical to Run on the same Config
// inputs. With Levels > 1 every cross-node read still happens
// post-barrier in index order on the coordinator goroutine and the
// top-down recursion visits groups in index order, so traces are
// byte-identical for every worker count.
//
// Memory: the per-node footprint is the BatchState's lanes plus one
// machine/PM/run header — no per-node goroutines, hooks, RNGs (unless
// the workload jitters or the chain is noisy) or retained trace rows
// unless FleetConfig.RetainTraces asks for them. TestFleetMemoryBudget
// pins the measured bytes/node.
package cluster

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"aapm/internal/alloc"
	"aapm/internal/control"
	"aapm/internal/faults"
	"aapm/internal/kernel"
	"aapm/internal/machine"
	"aapm/internal/metrics"
	"aapm/internal/obs"
	"aapm/internal/phase"
	"aapm/internal/power"
	"aapm/internal/sensor"
	"aapm/internal/telemetry"
	"aapm/internal/trace"
)

// FleetConfig describes a hierarchical shared-budget co-simulation.
type FleetConfig struct {
	// BudgetW is the global power cap held by the root.
	BudgetW float64
	// Nodes are the leaf machines (see SyntheticFleet for bulk
	// construction).
	Nodes []Node
	// Seed drives each node's noise/jitter (offset per node, same
	// scheme as Config.Seed).
	Seed int64
	// Chain is each node's measurement chain.
	Chain sensor.Chain
	// EpochTicks is the reallocation period; 0 selects 50.
	EpochTicks int
	// FloorW is the per-node minimum allocation; 0 selects 4 W.
	FloorW float64
	// Workers bounds the stepping goroutines, as Config.Workers.
	Workers int
	// Levels is the allocation-tree depth above the leaves: 1 (the
	// default) is the root allocating straight over nodes — the flat
	// coordinator, byte for byte; 2 inserts one tier of groups; and so
	// on. Each extra level re-runs the same allocator over the level
	// below's aggregates.
	Levels int
	// Fanout is the maximum children per group (consecutive node
	// indices); 0 selects 64. Must be >= 2 when Levels > 1.
	Fanout int
	// Groups, when non-nil, defines the first interior level's groups
	// (length must equal the level-1 group count, requires Levels >=
	// 2): heterogeneous per-group guaranteed minima plumbed into the
	// water-fill through alloc.Aggregate.MinW.
	Groups []GroupSpec
	// Control, when non-nil, is the control-plane hook: called at
	// every reallocation epoch with the fleet's group observations,
	// its directives (group floors/caps/weights, node pins/offlines)
	// apply to that epoch's allocation. See FleetControl.
	Control FleetControl
	// Faults, when non-nil, supplies node i's fault-injection plan
	// (nil result = no faults for that node), the PR-1 machinery the
	// control plane's hard escalation is exercised against.
	Faults func(i int) *faults.Plan
	// RetainTraces keeps every node's per-interval rows. Off by
	// default: at fleet scale the rows dwarf the simulation state.
	RetainTraces bool
	// Telemetry, when non-nil, receives the fleet-level series:
	// per-level group budgets and over-budget counters, per-level
	// allocation wall, and the cluster-wide aggregates. Purely
	// observational.
	Telemetry *telemetry.Registry
}

// FleetResult is the hierarchical co-simulation outcome. The flat
// aggregate fields mean exactly what they do on Result.
type FleetResult struct {
	Nodes  int
	Levels int
	Fanout int
	// GroupsPerLevel[l] is the group count at interior level l+1
	// (empty when Levels == 1).
	GroupsPerLevel []int
	// Runs/Names as Result; with RetainTraces off each Run carries
	// aggregates (duration, energy, transitions) but no rows.
	Runs  []*trace.Run
	Names []string

	MachineSeconds     float64
	Makespan           time.Duration
	PeakTotalW         float64
	OverFrac           float64
	ContendedOverFrac  float64
	ContendedIntervals int
	// Intervals counts lockstep intervals; Epochs counts completed
	// reallocations; NodeTicks counts node-steps (the throughput
	// numerator for node-ticks/sec).
	Intervals int
	Epochs    int
	NodeTicks int64

	Workers    int
	TickWall   metrics.WallClock
	WorkerWall []metrics.WallClock
	CoordWall  metrics.WallClock
}

// fleetShape is the static tree geometry: counts[0] is the node
// count, counts[l] the group count at level l (ceil division by
// fanout, consecutive indices), up to counts[levels-1] directly under
// the root.
type fleetShape struct {
	levels, fanout int
	counts         []int
	// spanSize[l] is the node-index span one level-l group covers
	// (fanout^l clamped to n).
	spanSize []int
}

func fleetShapeOf(n, levels, fanout int) fleetShape {
	s := fleetShape{levels: levels, fanout: fanout}
	s.counts = make([]int, levels)
	s.spanSize = make([]int, levels)
	s.counts[0] = n
	s.spanSize[0] = 1
	for l := 1; l < levels; l++ {
		s.counts[l] = (s.counts[l-1] + fanout - 1) / fanout
		s.spanSize[l] = min(s.spanSize[l-1]*fanout, n)
	}
	return s
}

// childRange returns the index range [lo, hi) of level-(l-1) entities
// under level-l group g.
func (s fleetShape) childRange(l, g int) (lo, hi int) {
	lo = g * s.fanout
	hi = min(lo+s.fanout, s.counts[l-1])
	return lo, hi
}

// groupAgg is an interior group's epoch summary: sums over its
// children assembled bottom-up each epoch. A group is never stale —
// staleness is a leaf property; a stale leaf's held share is folded
// into both the group's ask and its guaranteed minimum, so every
// ancestor keeps paying the hold.
type groupAgg struct {
	active bool
	askW   float64
	minW   float64
}

func (g *groupAgg) Active() bool                { return g.active }
func (g *groupAgg) Stale() bool                 { return false }
func (g *groupAgg) HeldW() float64              { return 0 }
func (g *groupAgg) DesireW() float64            { return g.askW }
func (g *groupAgg) RecentPowerW() float64       { return 0 }
func (g *groupAgg) RecentDPC() float64          { return 0 }
func (g *groupAgg) MinW(floorW float64) float64 { return g.minW }

// RunFleet executes the hierarchical co-simulation to completion.
func RunFleet(cfg FleetConfig) (*FleetResult, error) {
	return RunFleetContext(context.Background(), cfg)
}

// RunFleetContext executes the hierarchical co-simulation under ctx,
// observing cancellation between lockstep ticks.
func RunFleetContext(ctx context.Context, cfg FleetConfig) (*FleetResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(cfg.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("fleet: no nodes")
	}
	if cfg.BudgetW <= 0 {
		return nil, fmt.Errorf("fleet: non-positive budget")
	}
	floor := cfg.FloorW
	if floor == 0 {
		floor = 4
	}
	if floor*float64(n) > cfg.BudgetW {
		return nil, fmt.Errorf("fleet: budget %.1f W cannot cover %d nodes at the %.1f W floor", cfg.BudgetW, n, floor)
	}
	epoch := cfg.EpochTicks
	if epoch <= 0 {
		epoch = 50
	}
	levels := cfg.Levels
	if levels == 0 {
		levels = 1
	}
	if levels < 1 || levels > 16 {
		return nil, fmt.Errorf("fleet: levels %d out of range [1, 16]", cfg.Levels)
	}
	fanout := cfg.Fanout
	if fanout == 0 {
		fanout = 64
	}
	if levels > 1 && fanout < 2 {
		return nil, fmt.Errorf("fleet: fanout %d must be >= 2 with %d levels", cfg.Fanout, levels)
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	shape := fleetShapeOf(n, levels, fanout)

	var staticMin []float64
	if cfg.Groups != nil {
		if levels < 2 {
			return nil, fmt.Errorf("fleet: Groups requires Levels >= 2 (got %d)", levels)
		}
		if len(cfg.Groups) != shape.counts[1] {
			return nil, fmt.Errorf("fleet: %d group specs for %d level-1 groups", len(cfg.Groups), shape.counts[1])
		}
		staticMin = make([]float64, len(cfg.Groups))
		units := make([]int, len(cfg.Groups))
		for g, gs := range cfg.Groups {
			if gs.MinW < 0 || gs.MinW != gs.MinW {
				return nil, fmt.Errorf("fleet: group %d MinW %g invalid", g, gs.MinW)
			}
			staticMin[g] = gs.MinW
			lo := g * shape.spanSize[1]
			units[g] = min(lo+shape.spanSize[1], n) - lo
		}
		if need := alloc.MinTotalW(floor, units, staticMin); need > cfg.BudgetW {
			return nil, fmt.Errorf("fleet: budget %.1f W cannot cover the %.1f W of group minima", cfg.BudgetW, need)
		}
	}

	// One ground truth (and so one p-state table) for the whole fleet:
	// the per-node values are identical to what machine.New would build
	// per node, so traces match the flat coordinator bit for bit, but a
	// single shared table keeps the kernel's interned behavior/frequency
	// caches to one entry set instead of one per node.
	truth := power.PentiumM755Truth()
	table := truth.Table()
	share := cfg.BudgetW / float64(n)
	machines := make([]*machine.Machine, n)
	pms := make([]*control.PerformanceMaximizer, n)
	names := make([]string, n)
	for i, node := range cfg.Nodes {
		name := node.Name
		if name == "" {
			name = node.Workload.Name
		}
		names[i] = name
		mcfg := machine.Config{
			Truth: truth,
			Chain: cfg.Chain,
			Seed:  cfg.Seed + int64(i)*7919,
		}
		if cfg.Faults != nil {
			mcfg.Faults = cfg.Faults(i)
		}
		m, err := machine.New(mcfg)
		if err != nil {
			return nil, err
		}
		pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: share, FeedbackGain: 0.25})
		if err != nil {
			return nil, err
		}
		machines[i] = m
		pms[i] = pm
	}
	bnodes := make([]kernel.BatchNode, n)
	for i, node := range cfg.Nodes {
		bnodes[i] = kernel.BatchNode{Machine: machines[i], Workload: node.Workload, Governor: pms[i]}
	}
	bs, err := kernel.NewBatch(bnodes, kernel.BatchOptions{RetainTraces: cfg.RetainTraces})
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	eng := &batchEngine{b: bs}

	// Control-plane state: node overrides are written post-barrier on
	// the coordinator goroutine and read by the workers only after the
	// next generation advance, so the pool's happens-before edges cover
	// them. With Control nil none of this exists and the step function
	// is the engine's, untouched.
	ctl := cfg.Control
	stepFn := eng.step
	var nodeOv []NodeOverride
	var ctlW []float64
	ctlTicks := 0
	if ctl != nil {
		nodeOv = make([]NodeOverride, n)
		if levels > 1 {
			ctlW = make([]float64, shape.counts[1])
		}
		stepFn = func(i int) bool {
			if nodeOv[i] == NodeOffline {
				return false
			}
			return eng.step(i)
		}
	}

	st := &stepper{
		workers: workers,
		n:       n,
		step:    stepFn,
		stepped: make([]bool, n),
		wall:    make([]metrics.WallClock, workers),
	}
	var ft *fleetTelemetry
	if cfg.Telemetry != nil {
		ft = newFleetTelemetry(cfg.Telemetry, cfg.BudgetW, workers, shape)
		st.shardWall = ft.shardWall
	}
	var pool *workerPool
	if workers > 1 {
		pool = newWorkerPool(ctx, fmt.Sprintf("fleet-l%d", levels), workers, st.shard)
		defer pool.close()
	}
	// Tracing is epoch-granular here too: an unsampled (or absent)
	// trace makes spans nil and the per-tick loop does no span work.
	spans := newCoordSpans(obs.FromContext(ctx), machines[0].SamplePeriod(), st, workers)
	spans.trackLevels(shape.counts)

	res := &FleetResult{
		Nodes: n, Levels: levels, Fanout: fanout,
		Names: names, Workers: workers,
	}
	for l := 1; l < levels; l++ {
		res.GroupsPerLevel = append(res.GroupsPerLevel, shape.counts[l])
	}

	limits := make([]float64, n)
	for i := range limits {
		limits[i] = share
	}
	recentW := make([]float64, n)
	recentDPC := make([]float64, n)
	recentN := make([]int, n)
	lastSeq := make([]uint64, n)
	epochFresh := make([]bool, n)
	demands := make([]demand, n)

	// Persistent allocation state: leaf adapters over the demand
	// records, one groupAgg row per interior level, one Allocator per
	// level (scratch is reused across epochs, and the top-down
	// recursion runs level l's Allocate to completion inside level
	// l+1's apply callback, so per-level instances never re-enter).
	leafAggs := make([]nodeAgg, n)
	leafKids := make([]alloc.Aggregate, n)
	for i := range leafAggs {
		leafAggs[i] = nodeAgg{d: &demands[i], pm: pms[i], table: table, limits: limits, i: i}
		leafKids[i] = &leafAggs[i]
	}
	groupAggs := make([][]groupAgg, levels)
	groupKids := make([][]alloc.Aggregate, levels)
	budgets := make([][]float64, levels)
	for l := 1; l < levels; l++ {
		groupAggs[l] = make([]groupAgg, shape.counts[l])
		groupKids[l] = make([]alloc.Aggregate, shape.counts[l])
		budgets[l] = make([]float64, shape.counts[l])
		for g := range groupAggs[l] {
			groupKids[l][g] = &groupAggs[l][g]
			// Until the first epoch, over-budget accounting uses the
			// node-proportional split of the cap.
			lo := g * shape.spanSize[l]
			hi := min(lo+shape.spanSize[l], n)
			budgets[l][g] = cfg.BudgetW * float64(hi-lo) / float64(n)
		}
	}
	applyLeaf := func(lo int) func(k int, w float64) {
		return func(k int, w float64) {
			i := lo + k
			limits[i] = w
			pms[i].SetLimit(w)
		}
	}
	allocators := make([]alloc.Allocator, levels)
	for l := range allocators {
		allocators[l].MarginW = budgetMarginW
	}
	// distribute splits budget over level-l entities [lo, hi): leaves
	// get their PM limits set; a group recurses with its grant. Groups
	// are visited in index order at every level, so the leaf apply
	// order — and with it every trace byte — is worker-count
	// independent.
	var distribute func(l, lo, hi int, budget float64)
	distribute = func(l, lo, hi int, budget float64) {
		var t0 time.Time
		if ft != nil || spans.active() {
			t0 = time.Now()
		}
		al := &allocators[l]
		if l == 0 {
			al.Allocate(budget, floor, leafKids[lo:hi], applyLeaf(lo))
		} else {
			al.Allocate(budget, floor, groupKids[l][lo:hi], func(k int, w float64) {
				g := lo + k
				budgets[l][g] = w
				clo, chi := shape.childRange(l, g)
				distribute(l-1, clo, chi, w)
			})
		}
		if ft != nil || spans.active() {
			// Inclusive wall: a level's sample covers its own Allocate
			// plus the recursion below it (the root sample is the whole
			// epoch's allocation cost).
			d := time.Since(t0)
			if ft != nil {
				ft.wallAcc[l] += d
			}
			spans.levelDur(l, d)
		}
	}
	// aggregate rebuilds the interior summaries bottom-up from the
	// fresh demand records. Stale leaves fold their held share into
	// both ask and min; interior children are never stale. Static
	// group minima and the control plane's epoch directives fold in
	// after the child sums — with neither configured the loop is the
	// plain sum, byte-identical to a control-free run.
	pol := &allocators[0]
	var dirGroups [][]GroupDirective
	aggregate := func() {
		for l := 1; l < levels; l++ {
			kids := leafKids
			if l > 1 {
				kids = groupKids[l-1]
			}
			var dirs []GroupDirective
			if l < len(dirGroups) {
				dirs = dirGroups[l]
			}
			for g := range groupAggs[l] {
				lo, hi := shape.childRange(l, g)
				ga := &groupAggs[l][g]
				*ga = groupAgg{}
				for _, c := range kids[lo:hi] {
					if !c.Active() {
						continue
					}
					ga.active = true
					if c.Stale() {
						h := c.HeldW()
						ga.askW += h
						ga.minW += h
						continue
					}
					ga.minW += c.MinW(floor)
					ga.askW += pol.EffectiveDesireW(c, floor)
				}
				if l == 1 && staticMin != nil && ga.minW < staticMin[g] {
					ga.minW = staticMin[g]
				}
				if dirs != nil {
					d := dirs[g]
					if ga.minW < d.MinW {
						ga.minW = d.MinW
					}
					if d.Weight > 0 && d.Weight != 1 {
						ga.askW = ga.minW + d.Weight*(ga.askW-ga.minW)
					}
					if d.CapW > 0 {
						c := d.CapW
						if c < ga.minW {
							c = ga.minW
						}
						if ga.askW > c {
							ga.askW = c
						}
					}
				}
			}
		}
	}

	var intervals, overIntervals, contended, overContended int
	for tick := 0; ; tick++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("fleet: abandoned after %d ticks: %w", tick, err)
		}
		for i := range st.stepped {
			st.stepped[i] = false
		}
		if pool != nil {
			pool.tick()
		} else {
			st.shard(0)
		}
		t0 := time.Now()
		// Post-barrier: identical structure (and index order) to the
		// flat coordinator's aggregation pass.
		for i := 0; i < n; i++ {
			if err := eng.err(i); err != nil {
				return nil, fmt.Errorf("fleet: node %s: %w", names[i], err)
			}
		}
		anyActive := false
		allActive := true
		var totalW float64
		for i := 0; i < n; i++ {
			if !st.stepped[i] {
				allActive = false
				continue
			}
			anyActive = true
			res.NodeTicks++
			if eng.seq(i) == lastSeq[i] {
				continue
			}
			lastSeq[i] = eng.seq(i)
			epochFresh[i] = true
			w := eng.lastPowerW(i)
			dpc := eng.lastDPC(i)
			if !usable(w) || !usable(dpc) {
				continue
			}
			totalW += w
			recentW[i] += w
			recentDPC[i] += dpc
			recentN[i]++
			if ft != nil && levels > 1 {
				ft.groupW[1][i/fanout] += w
			}
			if ctlW != nil {
				ctlW[i/fanout] += w
			}
		}
		if !anyActive {
			res.CoordWall.Add(time.Since(t0))
			spans.finish(tick)
			break
		}
		intervals++
		if totalW > res.PeakTotalW {
			res.PeakTotalW = totalW
		}
		over := totalW > cfg.BudgetW
		if over {
			overIntervals++
		}
		if allActive {
			contended++
			if over {
				overContended++
			}
		}
		if ft != nil {
			ft.tick(totalW, over, allActive, budgets)
		}
		if ctl != nil {
			ctlTicks++
		}

		if tick > 0 && tick%epoch == 0 {
			for i := range demands {
				done := eng.done(i)
				if nodeOv != nil && nodeOv[i] == NodeOffline {
					done = true
				}
				assembleDemand(&demands[i], done, recentW[i], recentDPC[i], recentN[i], epochFresh[i], eng.seq(i), eng.lastDPC(i))
			}
			if ctl != nil {
				dirGroups, nodeOv = runControlEpoch(ctl, controlEpochIn{
					epoch: res.Epochs, tick: tick,
					periodUS: float64(machines[0].SamplePeriod()) / float64(time.Microsecond),
					budgetW:  cfg.BudgetW, floorW: floor,
					shape: shape, demands: demands, budgets: budgets,
					ctlW: ctlW, ctlTicks: ctlTicks, nodeOv: nodeOv,
				})
				ctlTicks = 0
				if ctlW != nil {
					clear(ctlW)
				}
				// Offlining takes effect in this epoch's allocation too:
				// the released share must not sit on a dead node.
				for i := range demands {
					if nodeOv[i] == NodeOffline && demands[i].active {
						demands[i] = demand{}
					}
				}
			}
			if levels == 1 {
				distribute(0, 0, n, cfg.BudgetW)
			} else {
				aggregate()
				distribute(levels-1, 0, shape.counts[levels-1], cfg.BudgetW)
			}
			if nodeOv != nil {
				for i, ov := range nodeOv {
					if ov == NodePinned {
						limits[i] = pinLimitW
						pms[i].SetLimit(pinLimitW)
					}
				}
			}
			res.Epochs++
			spans.fleetEpoch(tick, cfg.BudgetW)
			for i := range recentW {
				recentW[i], recentDPC[i], recentN[i], epochFresh[i] = 0, 0, 0, false
			}
			if ft != nil {
				ft.epoch(budgets)
			}
		}
		res.CoordWall.Add(time.Since(t0))
	}

	res.WorkerWall = st.wall
	for k := range st.wall {
		res.TickWall.Merge(st.wall[k])
	}
	res.Intervals = intervals
	res.Runs = make([]*trace.Run, n)
	for i := 0; i < n; i++ {
		run := eng.result(i)
		res.Runs[i] = run
		res.MachineSeconds += run.Duration.Seconds()
		if run.Duration > res.Makespan {
			res.Makespan = run.Duration
		}
	}
	if intervals > 0 {
		res.OverFrac = float64(overIntervals) / float64(intervals)
	}
	res.ContendedIntervals = contended
	if contended > 0 {
		res.ContendedOverFrac = float64(overContended) / float64(contended)
	}
	return res, nil
}

// SyntheticFleet builds n leaf nodes for fleet-scale runs: three
// fixed single-phase profiles (CPU-bound, mixed, memory-ish) assigned
// round-robin, each sized to retire in roughly ticks monitoring
// intervals at the top p-state (2 GHz x 10 ms = 2e7 cycles per tick).
// The three Workload values are shared across nodes, so the kernel's
// interned behavior caches hold three entries regardless of n, and
// with zero jitter no node carries an RNG.
func SyntheticFleet(n, ticks int) []Node {
	const cyclesPerTick = 20e6
	profiles := []phase.Workload{
		{Name: "fleet-cpu", Phases: []phase.Params{
			{Name: "cpu", Instructions: float64(ticks) * cyclesPerTick / 1.0, CPICore: 1.0, MLP: 1, SpecFactor: 1.05},
		}},
		{Name: "fleet-mid", Phases: []phase.Params{
			{Name: "mid", Instructions: float64(ticks) * cyclesPerTick / 2.0, CPICore: 2.0, MLP: 1, SpecFactor: 1.05},
		}},
		{Name: "fleet-mem", Phases: []phase.Params{
			{Name: "mem", Instructions: float64(ticks) * cyclesPerTick / 3.0, CPICore: 3.0, MLP: 1, SpecFactor: 1.05},
		}},
	}
	nodes := make([]Node, n)
	for i := range nodes {
		nodes[i] = Node{Workload: profiles[i%len(profiles)]}
	}
	return nodes
}

// maxGroupSeries caps per-group telemetry: a level with more groups
// than this gets one aggregated over-budget series (group="all") and
// no per-group budget gauges, so a 100k-node fleet does not mint tens
// of thousands of series.
const maxGroupSeries = 64

// fleetEpochWallBuckets bound the per-level allocation wall: leaf
// Allocates are microseconds, a 100k-leaf epoch tops out in the
// milliseconds.
var fleetEpochWallBuckets = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1}

// fleetTelemetry owns the hierarchy-level series, all written on the
// coordinator goroutine (the shard histograms aside, which the
// registry serializes).
type fleetTelemetry struct {
	shape fleetShape

	totalW    *telemetry.Series
	intervals *telemetry.Series
	contended *telemetry.Series
	epochs    *telemetry.Series
	overRoot  *telemetry.Series
	// overBy[l][g] / budgetBy[l][g] are per-group series for interior
	// level l (nil rows when the level exceeds maxGroupSeries, in
	// which case overAll[l] aggregates the group-interval violations).
	overBy    [][]*telemetry.Series
	overAll   []*telemetry.Series
	budgetBy  [][]*telemetry.Series
	epochWall []*telemetry.Series
	shardWall []*telemetry.Series

	// groupW[l][g] accumulates the current tick's measured power per
	// group; wallAcc[l] the current epoch's allocation wall.
	groupW  [][]float64
	wallAcc []time.Duration
}

func newFleetTelemetry(reg *telemetry.Registry, budget float64, workers int, shape fleetShape) *fleetTelemetry {
	ft := &fleetTelemetry{shape: shape}
	reg.Gauge("aapm_fleet_nodes", "Leaf nodes in the hierarchical co-simulation.").With().Set(float64(shape.counts[0]))
	reg.Gauge("aapm_fleet_levels", "Allocation-tree depth above the leaves.").With().Set(float64(shape.levels))
	reg.Gauge("aapm_fleet_fanout", "Maximum children per group.").With().Set(float64(shape.fanout))
	reg.Gauge("aapm_fleet_budget_watts", "Global power cap held by the root.").With().Set(budget)
	ft.totalW = reg.Gauge("aapm_fleet_total_power_watts", "Sum of measured node powers over the last lockstep interval.").With()
	ft.intervals = reg.Counter("aapm_fleet_intervals_total", "Lockstep intervals stepped.").With()
	ft.contended = reg.Counter("aapm_fleet_contended_intervals_total", "Lockstep intervals where every node was still active.").With()
	ft.epochs = reg.Counter("aapm_fleet_reallocation_epochs_total", "Budget reallocation epochs completed.").With()
	over := reg.Counter("aapm_fleet_over_budget_intervals_total", "Intervals where measured power exceeded the budget at the labeled level/group (level \"root\" is the global cap; group \"all\" aggregates levels too wide for per-group series).", "level", "group")
	ft.overRoot = over.With("root", "")
	groupBudget := reg.Gauge("aapm_fleet_group_budget_watts", "Budget granted to the labeled interior group at the last reallocation.", "level", "group")
	ft.overBy = make([][]*telemetry.Series, shape.levels)
	ft.budgetBy = make([][]*telemetry.Series, shape.levels)
	ft.overAll = make([]*telemetry.Series, shape.levels)
	ft.groupW = make([][]float64, shape.levels)
	for l := 1; l < shape.levels; l++ {
		ft.groupW[l] = make([]float64, shape.counts[l])
		if shape.counts[l] > maxGroupSeries {
			ft.overAll[l] = over.With(fmt.Sprint(l), "all")
			continue
		}
		for g := 0; g < shape.counts[l]; g++ {
			ft.overBy[l] = append(ft.overBy[l], over.With(fmt.Sprint(l), fmt.Sprint(g)))
			ft.budgetBy[l] = append(ft.budgetBy[l], groupBudget.With(fmt.Sprint(l), fmt.Sprint(g)))
		}
	}
	wall := reg.Histogram("aapm_fleet_epoch_wall_seconds", "Per-epoch allocation wall-clock at the labeled level, inclusive of the recursion below it (the top level is the whole epoch's allocation cost).", fleetEpochWallBuckets, "level")
	ft.wallAcc = make([]time.Duration, shape.levels)
	for l := 0; l < shape.levels; l++ {
		ft.epochWall = append(ft.epochWall, wall.With(fmt.Sprint(l)))
	}
	shard := reg.Histogram("aapm_fleet_shard_wall_seconds", "Per-worker wall-clock to step one shard for one tick.", shardWallBuckets, "worker")
	for k := 0; k < workers; k++ {
		ft.shardWall = append(ft.shardWall, shard.With(fmt.Sprint(k)))
	}
	return ft
}

// tick publishes one lockstep interval's aggregates and drains the
// per-group power accumulators against the current group budgets.
func (ft *fleetTelemetry) tick(totalW float64, over, allActive bool, budgets [][]float64) {
	ft.totalW.Set(totalW)
	ft.intervals.Inc()
	if over {
		ft.overRoot.Inc()
	}
	if allActive {
		ft.contended.Inc()
	}
	for l := 1; l < ft.shape.levels; l++ {
		if l > 1 {
			// Roll the lower level's sums up one tier before judging.
			for g := range ft.groupW[l] {
				lo, hi := ft.shape.childRange(l, g)
				var sum float64
				for c := lo; c < hi; c++ {
					sum += ft.groupW[l-1][c]
				}
				ft.groupW[l][g] = sum
			}
		}
		for g, w := range ft.groupW[l] {
			if w <= budgets[l][g] {
				continue
			}
			if ft.overBy[l] != nil {
				ft.overBy[l][g].Inc()
			} else {
				ft.overAll[l].Inc()
			}
		}
	}
	for l := 1; l < ft.shape.levels; l++ {
		clear(ft.groupW[l])
	}
}

// epoch publishes one reallocation's outcome: the granted group
// budgets and the per-level allocation wall.
func (ft *fleetTelemetry) epoch(budgets [][]float64) {
	ft.epochs.Inc()
	for l := 1; l < ft.shape.levels; l++ {
		for g, s := range ft.budgetBy[l] {
			s.Set(budgets[l][g])
		}
	}
	for l, d := range ft.wallAcc {
		ft.epochWall[l].Observe(d.Seconds())
		ft.wallAcc[l] = 0
	}
}
