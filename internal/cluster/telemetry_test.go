package cluster

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"aapm/internal/sensor"
	"aapm/internal/telemetry"
)

// TestClusterTelemetry runs a parallel shared-budget co-simulation with
// a registry attached while concurrent goroutines scrape it — the
// telemetry layer's -race exercise — then checks the coordinator-level
// families landed with plausible values.
func TestClusterTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()

	// Scrapers hammer the exposition and snapshot paths for the whole
	// run, racing the stepping workers' series writes.
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var buf bytes.Buffer
				if err := reg.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
				_ = reg.Snapshot()
			}
		}()
	}

	res, err := Run(Config{
		BudgetW:   104,
		Nodes:     eightNodes(t),
		Seed:      7,
		Chain:     sensor.NIDefault(),
		Workers:   4,
		Telemetry: reg,
	})
	stop.Store(true)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	get := func(fam string) (telemetry.FamilySnapshot, bool) {
		for _, f := range snap.Families {
			if f.Name == fam {
				return f, true
			}
		}
		return telemetry.FamilySnapshot{}, false
	}

	nodes, ok := get("aapm_cluster_nodes")
	if !ok || nodes.Series[0].Value != 8 {
		t.Errorf("aapm_cluster_nodes = %+v (ok=%v), want 8", nodes, ok)
	}
	budget, _ := get("aapm_cluster_budget_watts")
	if budget.Series[0].Value != 104 {
		t.Errorf("budget gauge = %v", budget.Series[0].Value)
	}
	intervals, ok := get("aapm_cluster_intervals_total")
	if !ok || intervals.Series[0].Value <= 0 {
		t.Error("no lockstep intervals counted")
	}
	epochs, ok := get("aapm_cluster_reallocation_epochs_total")
	if !ok || epochs.Series[0].Value <= 0 {
		t.Error("no reallocation epochs counted")
	}
	limits, ok := get("aapm_cluster_node_limit_watts")
	if !ok || len(limits.Series) != 8 {
		t.Fatalf("per-node limit series = %d, want 8", len(limits.Series))
	}
	// Each gauge holds the node's last-assigned share: between the
	// floor and the whole budget. (The sum across nodes can exceed the
	// budget at end of run — finished nodes keep their final gauge
	// value while their released share is reallocated.)
	for _, s := range limits.Series {
		if s.Value < 4 || s.Value > 104 {
			t.Errorf("node %v limit %v, want within [floor, budget]", s.Labels, s.Value)
		}
	}

	// Shard wall-clock histograms: one series per worker, and their
	// total observation count matches the merged TickWall.
	shard, ok := get("aapm_cluster_shard_wall_seconds")
	if !ok || len(shard.Series) == 0 {
		t.Fatal("no shard wall-clock series")
	}
	var shardObs uint64
	for _, s := range shard.Series {
		shardObs += s.Count
	}
	if int(shardObs) != res.TickWall.N {
		t.Errorf("shard histogram observations %d != merged TickWall.N %d", shardObs, res.TickWall.N)
	}

	// Per-node observer series: one ticks counter per node, matching
	// each node's trace length.
	ticks, ok := get(telemetry.MetricTicks)
	if !ok || len(ticks.Series) != 8 {
		t.Fatalf("per-node tick series = %d, want 8", len(ticks.Series))
	}
	byNode := map[string]float64{}
	for _, s := range ticks.Series {
		byNode[s.Labels[0]] = s.Value
	}
	for i, run := range res.Runs {
		if int(byNode[res.Names[i]]) != len(run.Rows) {
			t.Errorf("node %s telemetry ticks %v != %d trace rows", res.Names[i], byNode[res.Names[i]], len(run.Rows))
		}
	}

	// The /metrics acceptance floor: at least 10 families exposed.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), "# TYPE "); n < 10 {
		t.Errorf("exposition has %d families, want >= 10", n)
	}
}

// TestClusterTelemetryPreservesTraces pins the observational contract:
// the same run with and without a registry produces byte-identical
// node traces.
func TestClusterTelemetryPreservesTraces(t *testing.T) {
	cfg := Config{
		BudgetW: 104,
		Nodes:   eightNodes(t),
		Seed:    7,
		Chain:   sensor.NIDefault(),
		Workers: 4,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Nodes = eightNodes(t)
	cfg.Telemetry = telemetry.NewRegistry()
	observed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tracesCSV(t, observed), tracesCSV(t, plain)) {
		t.Error("telemetry changed the cluster traces")
	}
}
