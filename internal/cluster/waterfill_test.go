package cluster

import (
	"math/rand"
	"testing"
)

// Property: water-filling never over-commits the shared budget
// (whenever the floor is coverable), never starves a node below the
// floor, and never hands a node more than it asked for.
func TestPropertyWaterfillRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(12)
		floor := 1 + rng.Float64()*5
		// Budget always covers the floor (Run rejects the rest).
		budget := floor*float64(n) + rng.Float64()*100
		desires := make([]float64, n)
		for i := range desires {
			desires[i] = rng.Float64() * 30
		}
		limits := waterfill(budget, floor, desires)
		if len(limits) != n {
			t.Fatalf("trial %d: %d limits for %d nodes", trial, len(limits), n)
		}
		var sum float64
		for i, l := range limits {
			sum += l
			if l < floor-1e-9 {
				t.Fatalf("trial %d: node %d limit %.4f below floor %.4f", trial, i, l, floor)
			}
			want := desires[i]
			if want < floor {
				want = floor
			}
			if l > want+1e-9 {
				t.Fatalf("trial %d: node %d limit %.4f above clamped desire %.4f", trial, i, l, want)
			}
		}
		if sum > budget+1e-6 {
			t.Fatalf("trial %d: limits sum %.6f exceed budget %.6f (floor %.3f, n %d, desires %v)",
				trial, sum, budget, floor, n, desires)
		}
	}
}

// When the budget covers every desire, everyone gets exactly what they
// asked for (clamped to the floor).
func TestWaterfillSatisfiesAllWhenAmple(t *testing.T) {
	desires := []float64{5, 12, 8.5, 3}
	limits := waterfill(100, 4, desires)
	want := []float64{5, 12, 8.5, 4}
	for i := range want {
		if limits[i] != want[i] {
			t.Fatalf("limits = %v, want %v", limits, want)
		}
	}
}

// When everyone wants more than an even share, the level is exactly
// budget/n.
func TestWaterfillEvenSplitUnderUniformPressure(t *testing.T) {
	limits := waterfill(30, 4, []float64{20, 25, 30})
	for i, l := range limits {
		if diff := l - 10; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("node %d limit %.6f, want 10", i, l)
		}
	}
}

func TestWaterfillEmpty(t *testing.T) {
	if got := waterfill(10, 1, nil); len(got) != 0 {
		t.Fatalf("waterfill(nil) = %v", got)
	}
}
