package cluster

import (
	"testing"

	"aapm/internal/sensor"
	"aapm/internal/spec"
)

func nodes(t *testing.T, names ...string) []Node {
	t.Helper()
	out := make([]Node, len(names))
	for i, n := range names {
		w, err := spec.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		// Shorten for test runtime.
		w.Iterations = max(1, w.Repeats()/4)
		out[i] = Node{Workload: w}
	}
	return out
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{BudgetW: 50}); err == nil {
		t.Error("no nodes accepted")
	}
	if _, err := Run(Config{Nodes: nodes(t, "gzip")}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := Run(Config{Nodes: nodes(t, "gzip", "gcc"), BudgetW: 5}); err == nil {
		t.Error("budget below floors accepted")
	}
}

func TestSharedBudgetRespected(t *testing.T) {
	cfg := Config{
		BudgetW: 56,
		Nodes:   nodes(t, "swim", "mcf", "lucas", "crafty"),
		Seed:    7,
		Chain:   sensor.NIDefault(),
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	// The coordinator may transiently exceed the budget while PM reacts
	// (one 10 ms interval per node), but not persistently.
	if res.OverFrac > 0.05 {
		t.Errorf("total power above budget %.1f%% of intervals", res.OverFrac*100)
	}
	if res.PeakTotalW > cfg.BudgetW*1.15 {
		t.Errorf("peak total %.1f W far above the %.1f W budget", res.PeakTotalW, cfg.BudgetW)
	}
	for i, run := range res.Runs {
		if run.Duration <= 0 || run.Instructions <= 0 {
			t.Errorf("node %s degenerate run", res.Names[i])
		}
	}
}

func TestDemandAwareBeatsEqualSplit(t *testing.T) {
	base := Config{
		BudgetW: 56,
		Nodes:   nodes(t, "swim", "mcf", "lucas", "crafty"),
		Seed:    7,
		Chain:   sensor.NIDefault(),
	}
	static := base
	static.Static = true
	static.Nodes = nodes(t, "swim", "mcf", "lucas", "crafty")

	dyn, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	st, err := Run(static)
	if err != nil {
		t.Fatal(err)
	}
	// Demand-aware reallocation routes the memory-bound nodes' slack
	// to crafty: total completion time must improve.
	if dyn.MachineSeconds >= st.MachineSeconds {
		t.Errorf("demand-aware %.2f machine-seconds not below equal split %.2f",
			dyn.MachineSeconds, st.MachineSeconds)
	}
	// Both must keep the budget.
	if dyn.OverFrac > 0.05 || st.OverFrac > 0.05 {
		t.Errorf("budget violations: dyn %.1f%%, static %.1f%%", dyn.OverFrac*100, st.OverFrac*100)
	}
}

func TestNodesFinishIndependently(t *testing.T) {
	// A short and a long workload: the coordinator must hand the
	// finisher's share to the survivor and run to completion.
	ws := nodes(t, "gzip", "crafty")
	ws[0].Workload.Iterations = 1
	res, err := Run(Config{BudgetW: 30, Nodes: ws, Seed: 3, Chain: sensor.NIDefault()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs[0].Duration >= res.Runs[1].Duration {
		t.Errorf("short node (%v) did not finish before long node (%v)",
			res.Runs[0].Duration, res.Runs[1].Duration)
	}
	if res.Makespan != res.Runs[1].Duration {
		t.Errorf("makespan %v != longest run %v", res.Makespan, res.Runs[1].Duration)
	}
}
