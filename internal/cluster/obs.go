package cluster

import (
	"time"

	"aapm/internal/obs"
)

// coordSpans records a coordinator run's epoch-granularity spans on
// the job trace carried by the run's context: one "reallocate" span
// per epoch (per level, for the fleet hierarchy) and one "shard-step"
// span per worker covering the ticks between reallocations. It exists
// only when the trace is sampled — a nil *coordSpans is the off state,
// every method is nil-safe, and nothing here runs per tick — so with
// tracing off (or unsampled) the coordinator's hot loop is unchanged
// and the tracing-off overhead budget holds.
type coordSpans struct {
	tr       *obs.Trace
	periodUS float64 // virtual microseconds per monitoring interval
	st       *stepper
	workers  int
	wallMark []time.Duration // st.wall[k].Total at the last boundary
	from     int             // tick the current shard-span window opened at

	// levelWall/levelCount track the fleet hierarchy's per-level
	// allocation wall between epochs (nil for the flat coordinator).
	levelWall  []time.Duration
	levelCount []int
}

// newCoordSpans builds the span recorder, or nil when the trace is
// absent or unsampled.
func newCoordSpans(tr *obs.Trace, period time.Duration, st *stepper, workers int) *coordSpans {
	if !tr.Sampled() {
		return nil
	}
	return &coordSpans{
		tr:       tr,
		periodUS: float64(period) / float64(time.Microsecond),
		st:       st,
		workers:  workers,
		wallMark: make([]time.Duration, workers),
	}
}

// active reports whether spans are being recorded (call sites that pay
// setup cost — a time.Now before an Allocate — guard on it).
func (c *coordSpans) active() bool { return c != nil }

// trackLevels arms per-level allocation-wall accounting for the fleet
// hierarchy; counts[l] is the entity count at level l.
func (c *coordSpans) trackLevels(counts []int) {
	if c == nil {
		return
	}
	c.levelWall = make([]time.Duration, len(counts))
	c.levelCount = counts
}

// levelDur folds one distribute call's wall into its level.
func (c *coordSpans) levelDur(l int, d time.Duration) {
	if c == nil || c.levelWall == nil {
		return
	}
	c.levelWall[l] += d
}

// reallocEpoch records the flat coordinator's reallocation at tick:
// the reallocate span (with the epoch's demand aggregates, read before
// the caller resets the accumulators) and the shard-step spans for the
// window that just closed.
func (c *coordSpans) reallocEpoch(tick int, reallocStart time.Time, budgetW float64, recentW, recentDPC []float64, recentN []int) {
	if c == nil {
		return
	}
	var sumW, sumDPC float64
	var cnt int
	for i := range recentN {
		sumW += recentW[i]
		sumDPC += recentDPC[i]
		cnt += recentN[i]
	}
	attrs := map[string]float64{
		"budget_w": budgetW,
		"nodes":    float64(len(recentN)),
	}
	if cnt > 0 {
		attrs["avg_node_power_w"] = sumW / float64(cnt)
		attrs["avg_node_dpc"] = sumDPC / float64(cnt)
	}
	c.tr.Record(obs.Span{
		Name:      "reallocate",
		VirtUS:    float64(tick) * c.periodUS,
		Start:     reallocStart,
		WallDurUS: float64(time.Since(reallocStart)) / float64(time.Microsecond),
		Attrs:     attrs,
	})
	c.shardSpans(tick)
}

// fleetEpoch records the hierarchy's reallocation at tick: one
// reallocate span per level (wall from the distribute recursion,
// deepest level first so the Perfetto nesting reads root-outward) and
// the window's shard-step spans.
func (c *coordSpans) fleetEpoch(tick int, budgetW float64) {
	if c == nil {
		return
	}
	for l := range c.levelWall {
		c.tr.Record(obs.Span{
			Name:      "reallocate",
			VirtUS:    float64(tick) * c.periodUS,
			Start:     time.Now(),
			WallDurUS: float64(c.levelWall[l]) / float64(time.Microsecond),
			Attrs: map[string]float64{
				"budget_w": budgetW,
				"level":    float64(l),
				"entities": float64(c.levelCount[l]),
			},
		})
		c.levelWall[l] = 0
	}
	c.shardSpans(tick)
}

// shardSpans closes the current window at tick: one span per worker
// whose wall is the shard-stepping time accumulated since the last
// boundary (diffed off the stepper's per-worker aggregates, which the
// workers already maintain — no extra work on the stepping path).
func (c *coordSpans) shardSpans(tick int) {
	for k := 0; k < c.workers; k++ {
		d := c.st.wall[k].Total - c.wallMark[k]
		c.wallMark[k] = c.st.wall[k].Total
		c.tr.Record(obs.Span{
			Name:      "shard-step",
			VirtUS:    float64(c.from) * c.periodUS,
			VirtDurUS: float64(tick-c.from) * c.periodUS,
			Start:     time.Now(),
			WallDurUS: float64(d) / float64(time.Microsecond),
			Attrs: map[string]float64{
				"worker":  float64(k),
				"workers": float64(c.workers),
				"ticks":   float64(tick - c.from),
			},
		})
	}
	c.from = tick
}

// finish closes the final partial window when the run ends at tick.
func (c *coordSpans) finish(tick int) {
	if c == nil || tick <= c.from {
		return
	}
	c.shardSpans(tick)
}
