package cluster

import (
	"context"
	"errors"
	"testing"
)

func TestRunContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, Config{
		BudgetW: 30,
		Nodes:   nodes(t, "gzip", "gcc"),
		Seed:    7,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRunNilContextMatchesBackground(t *testing.T) {
	cfg := Config{BudgetW: 30, Nodes: nodes(t, "gzip", "gcc"), Seed: 7}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), Config{BudgetW: 30, Nodes: nodes(t, "gzip", "gcc"), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan || a.MachineSeconds != b.MachineSeconds {
		t.Errorf("Run and RunContext diverged: %v/%v vs %v/%v",
			a.Makespan, a.MachineSeconds, b.Makespan, b.MachineSeconds)
	}
}
