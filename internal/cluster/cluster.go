// Package cluster co-simulates several machines sharing one power
// budget — the paper's first motivating deployment for PM ("(i)
// controlling multiple components with shared power supply/cooling
// resources", §IV-A; compare Felter et al., cited in §II, on shared
// budgets).
//
// A Coordinator steps every machine's session in lockstep and
// periodically redistributes the global budget as per-machine PM
// limits: each epoch a node's share follows its measured appetite,
// floored so no node starves, so slack left by memory-bound phases
// flows to power-hungry neighbours within the same global cap.
package cluster

import (
	"fmt"
	"sort"
	"time"

	"aapm/internal/control"
	"aapm/internal/machine"
	"aapm/internal/phase"
	"aapm/internal/pstate"
	"aapm/internal/sensor"
	"aapm/internal/trace"
)

// Node is one machine's assignment.
type Node struct {
	// Name labels the node; defaults to the workload name.
	Name     string
	Workload phase.Workload
}

// Config describes a shared-budget co-simulation.
type Config struct {
	// BudgetW is the global power cap the per-node limits must sum to.
	BudgetW float64
	// Nodes are the participating machines.
	Nodes []Node
	// Seed drives each node's noise/jitter (offset per node).
	Seed int64
	// Chain is each node's measurement chain.
	Chain sensor.Chain
	// EpochTicks is the reallocation period in monitoring intervals;
	// 0 selects 50 (500 ms at the default 10 ms period).
	EpochTicks int
	// FloorW is the per-node minimum allocation; 0 selects 4 W
	// (enough for the lowest p-state under any workload).
	FloorW float64
	// Static disables reallocation: every node keeps BudgetW/len(Nodes)
	// for the whole run (the naive equal split baseline).
	Static bool
}

// Result is the co-simulation outcome.
type Result struct {
	// Runs holds each node's trace in Config.Nodes order.
	Runs []*trace.Run
	// Names mirrors Runs.
	Names []string
	// MachineSeconds is the sum of node completion times (lower is
	// better for equal work).
	MachineSeconds float64
	// Makespan is the time until the last node finished.
	Makespan time.Duration
	// PeakTotalW is the highest lockstep-interval sum of measured
	// node powers; OverFrac is the fraction of intervals where that
	// sum exceeded the budget.
	PeakTotalW float64
	OverFrac   float64
}

// Run executes the co-simulation.
func Run(cfg Config) (*Result, error) {
	n := len(cfg.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if cfg.BudgetW <= 0 {
		return nil, fmt.Errorf("cluster: non-positive budget")
	}
	floor := cfg.FloorW
	if floor == 0 {
		floor = 4
	}
	if floor*float64(n) > cfg.BudgetW {
		return nil, fmt.Errorf("cluster: budget %.1f W cannot cover %d nodes at the %.1f W floor", cfg.BudgetW, n, floor)
	}
	epoch := cfg.EpochTicks
	if epoch <= 0 {
		epoch = 50
	}

	share := cfg.BudgetW / float64(n)
	sessions := make([]*machine.Session, n)
	pms := make([]*control.PerformanceMaximizer, n)
	taps := make([]*nodeTap, n)
	names := make([]string, n)
	var table *pstate.Table
	for i, node := range cfg.Nodes {
		name := node.Name
		if name == "" {
			name = node.Workload.Name
		}
		names[i] = name
		m, err := machine.New(machine.Config{
			Chain: cfg.Chain,
			Seed:  cfg.Seed + int64(i)*7919,
		})
		if err != nil {
			return nil, err
		}
		table = m.Table()
		// Measured-power feedback tightens each node's estimates so the
		// coordinator can pack the budget by real consumption instead
		// of the DPC model's conservative projections.
		pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: share, FeedbackGain: 0.25})
		if err != nil {
			return nil, err
		}
		s, err := m.NewSession(node.Workload, pm)
		if err != nil {
			return nil, fmt.Errorf("cluster: node %s: %w", name, err)
		}
		taps[i] = &nodeTap{}
		s.Subscribe(taps[i])
		sessions[i] = s
		pms[i] = pm
	}

	res := &Result{Names: names}
	recent := make([]float64, n) // epoch-average measured power
	recentN := make([]int, n)
	var intervals, overIntervals int

	for tick := 0; ; tick++ {
		anyActive := false
		var totalW float64
		for i, s := range sessions {
			if s.Done() {
				continue
			}
			anyActive = true
			if _, err := s.Step(); err != nil {
				return nil, fmt.Errorf("cluster: node %s: %w", names[i], err)
			}
			if taps[i].ok {
				w := taps[i].last.MeasuredPowerW
				totalW += w
				recent[i] += w
				recentN[i]++
			}
		}
		if !anyActive {
			break
		}
		intervals++
		if totalW > res.PeakTotalW {
			res.PeakTotalW = totalW
		}
		if totalW > cfg.BudgetW {
			overIntervals++
		}

		if !cfg.Static && tick > 0 && tick%epoch == 0 {
			reallocate(cfg.BudgetW, floor, table, sessions, taps, pms)
			for i := range recent {
				recent[i], recentN[i] = 0, 0
			}
		}
	}

	for i, s := range sessions {
		run := s.Result()
		res.Runs = append(res.Runs, run)
		res.MachineSeconds += run.Duration.Seconds()
		if run.Duration > res.Makespan {
			res.Makespan = run.Duration
		}
		_ = i
	}
	if intervals > 0 {
		res.OverFrac = float64(overIntervals) / float64(intervals)
	}
	return res, nil
}

// nodeTap subscribes to one node's tick bus and keeps the latest
// interval's observations for the coordinator, replacing the old
// pattern of groping the node's trace via LastRow.
type nodeTap struct {
	machine.BaseHook
	last machine.TickState
	ok   bool
}

// OnTick implements machine.Hook.
func (t *nodeTap) OnTick(ts machine.TickState) { t.last, t.ok = ts, true }

// reallocate redistributes the budget over the active nodes' desires:
// each active node asks for the (feedback-corrected) power it would
// need to run the top p-state at its recent decode rate. Finished
// nodes release their share.
func reallocate(budget, floor float64, table *pstate.Table, sessions []*machine.Session, taps []*nodeTap, pms []*control.PerformanceMaximizer) {
	var idx []int
	var desires []float64
	for i, s := range sessions {
		if s.Done() {
			continue
		}
		desire := floor
		if taps[i].ok {
			// A small margin above the node's own requirement keeps
			// intensity jitter from tripping a tightly fitted limit.
			desire = pms[i].BudgetDesireW(table, taps[i].last.Observed.DPC()) + 0.5
		}
		idx = append(idx, i)
		desires = append(desires, desire)
	}
	if len(idx) == 0 {
		return
	}
	limits := waterfill(budget, floor, desires)
	for k, i := range idx {
		pms[i].SetLimit(limits[k])
		if debugHook != nil {
			debugHook(i, desires[k], limits[k])
		}
	}
}

// waterfill computes per-node power limits from the nodes' desires:
// everyone receives min(desire, level) where the common water level
// spends the whole budget — the cheapest desires are satisfied fully
// and what remains splits evenly among the rest. Desires below the
// floor clamp up so no node starves. Provided floor*len(desires) <=
// budget, the returned limits sum to at most budget.
func waterfill(budget, floor float64, desires []float64) []float64 {
	n := len(desires)
	limits := make([]float64, n)
	if n == 0 {
		return limits
	}
	clamped := make([]float64, n)
	for i, d := range desires {
		if d < floor {
			d = floor
		}
		clamped[i] = d
	}
	sorted := make([]float64, n)
	copy(sorted, clamped)
	sort.Float64s(sorted)

	remaining := budget
	level := 0.0
	for k, d := range sorted {
		evenShare := remaining / float64(n-k)
		if d >= evenShare {
			level = evenShare
			break
		}
		remaining -= d
		level = d // all remaining nodes satisfied
	}
	for i, d := range clamped {
		limit := d
		if limit > level {
			limit = level
		}
		if limit < floor {
			limit = floor
		}
		limits[i] = limit
	}
	return limits
}

// debugHook, when set by tests, receives each reallocation decision.
var debugHook func(node int, desire, limit float64)
