// Package cluster co-simulates several machines sharing one power
// budget — the paper's first motivating deployment for PM ("(i)
// controlling multiple components with shared power supply/cooling
// resources", §IV-A; compare Felter et al., cited in §II, on shared
// budgets).
//
// A Coordinator steps every machine's session in lockstep and
// periodically redistributes the global budget as per-machine PM
// limits: each epoch a node's share follows its measured appetite,
// floored so no node starves, so slack left by memory-bound phases
// flows to power-hungry neighbours within the same global cap.
//
// Stepping is parallel: each tick the active sessions are stepped
// concurrently across a persistent worker pool (Config.Workers), with
// a barrier before the coordinator reads any node state. Traces are
// identical for every worker count — each node owns its seeded RNG
// and its tap, workers never share mutable state, and all cross-node
// reads happen post-barrier in node-index order (see DESIGN.md,
// "Parallel cluster coordinator").
package cluster

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"time"

	"aapm/internal/alloc"
	"aapm/internal/control"
	"aapm/internal/kernel"
	"aapm/internal/machine"
	"aapm/internal/metrics"
	"aapm/internal/obs"
	"aapm/internal/phase"
	"aapm/internal/pstate"
	"aapm/internal/sensor"
	"aapm/internal/telemetry"
	"aapm/internal/trace"
)

// Node is one machine's assignment.
type Node struct {
	// Name labels the node; defaults to the workload name.
	Name     string
	Workload phase.Workload
}

// Config describes a shared-budget co-simulation.
type Config struct {
	// BudgetW is the global power cap the per-node limits must sum to.
	BudgetW float64
	// Nodes are the participating machines.
	Nodes []Node
	// Seed drives each node's noise/jitter (offset per node).
	Seed int64
	// Chain is each node's measurement chain.
	Chain sensor.Chain
	// EpochTicks is the reallocation period in monitoring intervals;
	// 0 selects 50 (500 ms at the default 10 ms period).
	EpochTicks int
	// FloorW is the per-node minimum allocation; 0 selects 4 W
	// (enough for the lowest p-state under any workload).
	FloorW float64
	// Static disables reallocation: every node keeps BudgetW/len(Nodes)
	// for the whole run (the naive equal split baseline).
	Static bool
	// Workers bounds the stepping goroutines: each tick the active
	// sessions are stepped concurrently across min(Workers, nodes)
	// workers. 0 selects min(GOMAXPROCS, nodes); 1 steps every node
	// in the coordinator goroutine (the serial reference). The traces
	// are identical for every value.
	Workers int
	// Engine selects the per-node stepping backend: "batch" (the
	// default) steps all nodes through one kernel.BatchState — the
	// zero-allocation fast path when the run needs no hooks, the
	// generic batch body when telemetry or observers are attached —
	// while "staged" drives one machine.Session per node, the
	// reference implementation. Traces are byte-identical between the
	// two (the kernel's differential suite pins this); "staged" exists
	// for cross-checks and honest baseline benchmarks.
	Engine string
	// Telemetry, when non-nil, receives the coordinator's live
	// metrics: one aapm_* series set per node (via telemetry.Observer
	// on each session's Hook bus), per-worker shard wall-clock
	// histograms, reallocation-epoch and budget-violation counters,
	// and per-node limit gauges. Purely observational — the registry
	// never feeds back into stepping or reallocation, so traces stay
	// byte-identical with telemetry enabled.
	Telemetry *telemetry.Registry
	// Observe, when non-nil, returns an extra Hook subscribed to node
	// i's session before the run (nil return skips that node) — e.g.
	// a telemetry.TraceEventWriter run hook per node.
	Observe func(i int, name string) machine.Hook
}

// Result is the co-simulation outcome.
type Result struct {
	// Runs holds each node's trace in Config.Nodes order.
	Runs []*trace.Run
	// Names mirrors Runs.
	Names []string
	// MachineSeconds is the sum of node completion times (lower is
	// better for equal work).
	MachineSeconds float64
	// Makespan is the time until the last node finished.
	Makespan time.Duration
	// PeakTotalW is the highest lockstep-interval sum of measured
	// node powers across the whole run.
	PeakTotalW float64
	// OverFrac is the fraction of all lockstep intervals — including
	// the tail where some nodes have already finished — whose total
	// measured power exceeded the budget. It is the physical
	// shared-supply view: the supply is violated whenever the sum of
	// whatever is still drawing exceeds the cap, so tail intervals
	// legitimately count (and, with fewer nodes drawing, almost never
	// violate, which dilutes the ratio on runs with long tails).
	OverFrac float64
	// ContendedOverFrac is the same ratio restricted to contended
	// intervals — those where every node was still active. It is the
	// coordinator-quality view: the only intervals where reallocation
	// has to arbitrate the full population, undiluted by the tail.
	// ContendedIntervals counts them.
	ContendedOverFrac  float64
	ContendedIntervals int
	// Workers is the stepping-goroutine count the run used. TickWall
	// is the per-worker shard-stepping wall-clock, merged across all
	// workers (metrics.WallClock.Merge) so the distribution tails —
	// the fastest and slowest shard-ticks — survive aggregation;
	// WorkerWall keeps the unmerged per-worker aggregates. CoordWall
	// times the coordinator's post-barrier work per tick (aggregation
	// and reallocation). All purely observational wall-clock.
	Workers    int
	TickWall   metrics.WallClock
	WorkerWall []metrics.WallClock
	CoordWall  metrics.WallClock
}

// Run executes the co-simulation to completion.
func Run(cfg Config) (*Result, error) {
	return RunContext(context.Background(), cfg)
}

// RunContext executes the co-simulation under ctx: cancellation (or a
// deadline) is observed between lockstep ticks, abandoning the run
// with ctx's error. A nil ctx behaves like context.Background.
func RunContext(ctx context.Context, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(cfg.Nodes)
	if n == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	if cfg.BudgetW <= 0 {
		return nil, fmt.Errorf("cluster: non-positive budget")
	}
	floor := cfg.FloorW
	if floor == 0 {
		floor = 4
	}
	if floor*float64(n) > cfg.BudgetW {
		return nil, fmt.Errorf("cluster: budget %.1f W cannot cover %d nodes at the %.1f W floor", cfg.BudgetW, n, floor)
	}
	epoch := cfg.EpochTicks
	if epoch <= 0 {
		epoch = 50
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	share := cfg.BudgetW / float64(n)
	machines := make([]*machine.Machine, n)
	pms := make([]*control.PerformanceMaximizer, n)
	names := make([]string, n)
	var table *pstate.Table
	for i, node := range cfg.Nodes {
		name := node.Name
		if name == "" {
			name = node.Workload.Name
		}
		names[i] = name
		m, err := machine.New(machine.Config{
			Chain: cfg.Chain,
			Seed:  cfg.Seed + int64(i)*7919,
		})
		if err != nil {
			return nil, err
		}
		table = m.Table()
		// Measured-power feedback tightens each node's estimates so the
		// coordinator can pack the budget by real consumption instead
		// of the DPC model's conservative projections.
		pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: share, FeedbackGain: 0.25})
		if err != nil {
			return nil, err
		}
		machines[i] = m
		pms[i] = pm
	}
	// hookRow assembles node i's observer hooks in the staged
	// subscription order (telemetry, then Observe); nil when none.
	hookRow := func(i int) []machine.Hook {
		var hs []machine.Hook
		if cfg.Telemetry != nil {
			hs = append(hs, telemetry.NewObserver(cfg.Telemetry, names[i], "pm"))
		}
		if cfg.Observe != nil {
			if h := cfg.Observe(i, names[i]); h != nil {
				hs = append(hs, h)
			}
		}
		return hs
	}
	var eng engine
	switch cfg.Engine {
	case "", "batch":
		bnodes := make([]kernel.BatchNode, n)
		for i, node := range cfg.Nodes {
			bnodes[i] = kernel.BatchNode{Machine: machines[i], Workload: node.Workload, Governor: pms[i]}
		}
		opts := kernel.BatchOptions{RetainTraces: true}
		if cfg.Telemetry != nil || cfg.Observe != nil {
			opts.Hooks = hookRow
		}
		bs, err := kernel.NewBatch(bnodes, opts)
		if err != nil {
			return nil, fmt.Errorf("cluster: %w", err)
		}
		eng = &batchEngine{b: bs}
	case "staged":
		se := &sessionEngine{
			sessions: make([]*machine.Session, n),
			taps:     make([]*nodeTap, n),
			errs:     make([]error, n),
		}
		for i, node := range cfg.Nodes {
			s, err := machines[i].NewSession(node.Workload, pms[i])
			if err != nil {
				return nil, fmt.Errorf("cluster: node %s: %w", names[i], err)
			}
			se.taps[i] = &nodeTap{}
			s.Subscribe(se.taps[i])
			for _, h := range hookRow(i) {
				s.Subscribe(h)
			}
			se.sessions[i] = s
		}
		eng = se
	default:
		return nil, fmt.Errorf("cluster: unknown engine %q", cfg.Engine)
	}

	st := &stepper{
		workers: workers,
		n:       n,
		step:    eng.step,
		stepped: make([]bool, n),
		wall:    make([]metrics.WallClock, workers),
	}
	var ct *clusterTelemetry
	if cfg.Telemetry != nil {
		ct = newClusterTelemetry(cfg.Telemetry, cfg.BudgetW, n, workers, names)
		st.shardWall = ct.shardWall
	}
	var pool *workerPool
	if workers > 1 {
		pool = newWorkerPool(ctx, "cluster", workers, st.shard)
		defer pool.close()
	}

	// Tracing is epoch-granular: with an unsampled (or absent) trace
	// the per-tick loop does no span work at all — the nil-safe guard
	// below is the only cost, and the tracing-off budget test pins it.
	tr := obs.FromContext(ctx)
	spans := newCoordSpans(tr, machines[0].SamplePeriod(), st, workers)

	res := &Result{Names: names, Workers: workers}
	limits := make([]float64, n) // each node's current share
	for i := range limits {
		limits[i] = share
	}
	// Per-epoch accumulators: usable (finite) measured power and
	// observed decode rate, and the count of usable ticks. recentN==0
	// at a reallocation means the node produced no usable observation
	// the whole epoch.
	recentW := make([]float64, n)
	recentDPC := make([]float64, n)
	recentN := make([]int, n)
	lastSeq := make([]uint64, n)  // tap sequence at the previous tick
	epochFresh := make([]bool, n) // tap advanced at all this epoch
	demands := make([]demand, n)
	var intervals, overIntervals, contended, overContended int

	for tick := 0; ; tick++ {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("cluster: abandoned after %d ticks: %w", tick, err)
		}
		for i := range st.stepped {
			st.stepped[i] = false
		}
		if pool != nil {
			pool.tick()
		} else {
			st.shard(0)
		}
		t0 := time.Now()
		// Post-barrier: every cross-node read below happens in
		// node-index order on the coordinator goroutine, so the
		// aggregate state is identical for every worker count. The
		// first error by node index wins, deterministically.
		for i := 0; i < n; i++ {
			if err := eng.err(i); err != nil {
				return nil, fmt.Errorf("cluster: node %s: %w", names[i], err)
			}
		}
		anyActive := false
		allActive := true
		var totalW float64
		for i := 0; i < n; i++ {
			if !st.stepped[i] {
				allActive = false
				continue
			}
			anyActive = true
			// Only a node refreshed by this tick contributes; a node
			// that stepped into completion without emitting an interval
			// would otherwise replay its previous tick's power.
			if eng.seq(i) == lastSeq[i] {
				continue
			}
			lastSeq[i] = eng.seq(i)
			epochFresh[i] = true
			w := eng.lastPowerW(i)
			dpc := eng.lastDPC(i)
			if !usable(w) || !usable(dpc) {
				continue
			}
			totalW += w
			recentW[i] += w
			recentDPC[i] += dpc
			recentN[i]++
		}
		if !anyActive {
			res.CoordWall.Add(time.Since(t0))
			spans.finish(tick)
			break
		}
		intervals++
		if totalW > res.PeakTotalW {
			res.PeakTotalW = totalW
		}
		over := totalW > cfg.BudgetW
		if over {
			overIntervals++
		}
		if allActive {
			contended++
			if over {
				overContended++
			}
		}
		if ct != nil {
			ct.tick(totalW, over, allActive)
		}

		if !cfg.Static && tick > 0 && tick%epoch == 0 {
			for i := range demands {
				assembleDemand(&demands[i], eng.done(i), recentW[i], recentDPC[i], recentN[i], epochFresh[i], eng.seq(i), eng.lastDPC(i))
			}
			reallocStart := time.Now()
			reallocate(cfg.BudgetW, floor, table, demands, pms, limits)
			spans.reallocEpoch(tick, reallocStart, cfg.BudgetW, recentW, recentDPC, recentN)
			for i := range recentW {
				recentW[i], recentDPC[i], recentN[i], epochFresh[i] = 0, 0, 0, false
			}
			if ct != nil {
				ct.epoch(limits)
			}
		}
		res.CoordWall.Add(time.Since(t0))
	}

	// Fold every worker's shard timing into one aggregate; Merge
	// keeps the Min/Max tails, so a straggler worker stays visible in
	// the merged distribution.
	res.WorkerWall = st.wall
	for k := range st.wall {
		res.TickWall.Merge(st.wall[k])
	}

	for i := 0; i < n; i++ {
		run := eng.result(i)
		res.Runs = append(res.Runs, run)
		res.MachineSeconds += run.Duration.Seconds()
		if run.Duration > res.Makespan {
			res.Makespan = run.Duration
		}
	}
	if intervals > 0 {
		res.OverFrac = float64(overIntervals) / float64(intervals)
	}
	res.ContendedIntervals = contended
	if contended > 0 {
		res.ContendedOverFrac = float64(overContended) / float64(contended)
	}
	return res, nil
}

// usable reports whether a tap observation is fit for accumulation
// (faulted sensors and counters can hand the coordinator NaN/Inf).
func usable(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0 }

// nodeTap subscribes to one node's tick bus and keeps the latest
// interval's observations for the coordinator, replacing the old
// pattern of groping the node's trace via LastRow. Each tap is owned
// by exactly one node: during a tick only that node's stepping worker
// writes it, and the coordinator reads it only after the barrier.
type nodeTap struct {
	machine.BaseHook
	last machine.TickState
	seq  uint64 // increments per OnTick, so the coordinator can spot stale data
	ok   bool
}

// OnTick implements machine.Hook.
func (t *nodeTap) OnTick(ts machine.TickState) { t.last, t.ok = ts, true; t.seq++ }

// engine abstracts the per-node stepping backend the coordinator
// drives. Both implementations expose the same post-barrier view:
// step advances an active node and reports whether it was stepped;
// seq counts emitted intervals so the coordinator can spot nodes that
// stepped without emitting (stale observations); lastPowerW/lastDPC
// are the most recent interval's governor-visible observations.
type engine interface {
	step(i int) bool
	err(i int) error
	done(i int) bool
	seq(i int) uint64
	lastPowerW(i int) float64
	lastDPC(i int) float64
	result(i int) *trace.Run
}

// sessionEngine is the staged reference backend: one machine.Session
// per node, observed through a nodeTap on each session's hook bus.
type sessionEngine struct {
	sessions []*machine.Session
	taps     []*nodeTap
	errs     []error
}

func (e *sessionEngine) step(i int) bool {
	s := e.sessions[i]
	if s.Done() || e.errs[i] != nil {
		return false
	}
	if _, err := s.Step(); err != nil {
		e.errs[i] = err
	}
	return true
}
func (e *sessionEngine) err(i int) error          { return e.errs[i] }
func (e *sessionEngine) done(i int) bool          { return e.sessions[i].Done() }
func (e *sessionEngine) seq(i int) uint64         { return e.taps[i].seq }
func (e *sessionEngine) lastPowerW(i int) float64 { return e.taps[i].last.MeasuredPowerW }
func (e *sessionEngine) lastDPC(i int) float64    { return e.taps[i].last.Observed.DPC() }
func (e *sessionEngine) result(i int) *trace.Run  { return e.sessions[i].Result() }

// batchEngine is the kernel fast path: all nodes live in one
// BatchState whose lanes the pool's shards step concurrently over
// disjoint index ranges. The coordinator's observations come from the
// kernel's per-node accessors instead of a hook tap, which keeps the
// specialized (hook-free) step bodies eligible.
type batchEngine struct {
	b *kernel.BatchState
}

func (e *batchEngine) step(i int) bool          { return e.b.StepNode(i) }
func (e *batchEngine) err(i int) error          { return e.b.NodeErr(i) }
func (e *batchEngine) done(i int) bool          { return e.b.NodeDone(i) }
func (e *batchEngine) seq(i int) uint64         { return e.b.Seq(i) }
func (e *batchEngine) lastPowerW(i int) float64 { return e.b.LastPowerW(i) }
func (e *batchEngine) lastDPC(i int) float64    { return e.b.LastDPC(i) }
func (e *batchEngine) result(i int) *trace.Run  { return e.b.Result(i) }

// demand is one node's reallocation input, assembled post-barrier by
// the coordinator from the epoch accumulators and the node's tap.
type demand struct {
	// active is false once the node finished (its share is released).
	active bool
	// hold keeps the node's previous share: it is active but produced
	// no fresh observation all epoch, so its tap is stale.
	hold bool
	// useDPC marks dpc as valid; dpc is the epoch-average (or, as a
	// fallback, last-tap) decode rate the desire is evaluated at.
	useDPC bool
	dpc    float64
	// avgW is the epoch-average measured power (0 when unknown): a
	// lower bound on the node's demand, since it was drawn at the
	// current — possibly capped — p-state.
	avgW float64
}

// assembleDemand builds one node's reallocation input from its epoch
// accumulators and tap state. Shared verbatim by the flat coordinator
// and the fleet hierarchy so the two cannot drift: done/seq/lastDPC
// come from the engine's post-barrier accessors, the rest are the
// coordinator's per-epoch accumulators.
func assembleDemand(d *demand, done bool, recentW, recentDPC float64, recentN int, epochFresh bool, seq uint64, lastDPC float64) {
	*d = demand{active: !done}
	if !d.active {
		return
	}
	switch {
	case recentN > 0:
		// The epoch average, not the last tick: a one-tick
		// spike must not swing a whole epoch's shares.
		d.useDPC = true
		d.dpc = recentDPC / float64(recentN)
		d.avgW = recentW / float64(recentN)
	case !epochFresh && seq > 0:
		// The tap was last written in an earlier epoch: the
		// node has effectively gone dark (e.g. degraded
		// offline mid-epoch). Hold its previous share rather
		// than reallocating on stale data.
		d.hold = true
	case seq > 0 && usable(lastDPC):
		// Fresh tap but no full-epoch average (e.g. power
		// readings dropped all epoch): fall back to the tap.
		d.useDPC = true
		d.dpc = lastDPC
	}
}

// budgetMarginW is the small headroom added to each node's desire so
// intensity jitter does not trip a tightly fitted limit.
const budgetMarginW = alloc.DefaultMarginW

// nodeAgg adapts one node's demand record to the alloc.Aggregate
// summary the level-agnostic allocator consumes. Its HeldW reads the
// live limits slice, so holds accumulated during an Allocate see the
// share as of the epoch boundary (apply callbacks fire only after all
// summaries are read).
type nodeAgg struct {
	d      *demand
	pm     *control.PerformanceMaximizer
	table  *pstate.Table
	limits []float64
	i      int
}

func (a *nodeAgg) Active() bool { return a.d.active }
func (a *nodeAgg) Stale() bool  { return a.d.hold }
func (a *nodeAgg) HeldW() float64 {
	return a.limits[a.i]
}
func (a *nodeAgg) DesireW() float64 {
	if !a.d.useDPC {
		return math.NaN()
	}
	return a.pm.BudgetDesireW(a.table, a.d.dpc)
}
func (a *nodeAgg) RecentPowerW() float64       { return a.d.avgW }
func (a *nodeAgg) RecentDPC() float64          { return a.d.dpc }
func (a *nodeAgg) MinW(floorW float64) float64 { return floorW }

// reallocate redistributes the budget over the active nodes' demands:
// each node with a usable epoch average asks for the power its PM
// would need to run the top p-state at that average decode rate (at
// least its average measured draw), held nodes keep their previous
// share off the top of the budget, and finished nodes release theirs.
// limits is updated in place with each node's new share. The policy
// and waterfill live in package alloc (the level-agnostic layer the
// fleet hierarchy reuses); this is the one-level leaf adapter.
func reallocate(budget, floor float64, table *pstate.Table, demands []demand, pms []*control.PerformanceMaximizer, limits []float64) {
	aggs := make([]nodeAgg, len(demands))
	children := make([]alloc.Aggregate, len(demands))
	for i := range demands {
		aggs[i] = nodeAgg{d: &demands[i], pm: pms[i], table: table, limits: limits, i: i}
		children[i] = &aggs[i]
	}
	al := alloc.Allocator{MarginW: budgetMarginW, OnDecision: debugHook}
	al.Allocate(budget, floor, children, func(i int, w float64) {
		limits[i] = w
		pms[i].SetLimit(w)
	})
}

// debugHook, when set by tests, receives each reallocation decision.
var debugHook func(node int, desire, limit float64)

// shardWallBuckets are the per-worker shard-step histogram bounds in
// seconds: a shard-tick is typically single-digit microseconds, with
// a long tail under contention.
var shardWallBuckets = []float64{1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2}

// clusterTelemetry owns the coordinator-level series: cluster-wide
// gauges and counters updated post-barrier on the coordinator
// goroutine, plus the per-worker shard histograms written by the
// stepping workers (the registry serializes those internally).
type clusterTelemetry struct {
	totalW     *telemetry.Series
	overBudget *telemetry.Series
	intervals  *telemetry.Series
	contended  *telemetry.Series
	epochs     *telemetry.Series
	limitBy    []*telemetry.Series
	shardWall  []*telemetry.Series
}

func newClusterTelemetry(reg *telemetry.Registry, budget float64, n, workers int, names []string) *clusterTelemetry {
	ct := &clusterTelemetry{}
	reg.Gauge("aapm_cluster_nodes", "Nodes in the shared-budget co-simulation.").With().Set(float64(n))
	reg.Gauge("aapm_cluster_budget_watts", "Global power cap the per-node limits sum to.").With().Set(budget)
	ct.totalW = reg.Gauge("aapm_cluster_total_power_watts", "Sum of measured node powers over the last lockstep interval.").With()
	ct.intervals = reg.Counter("aapm_cluster_intervals_total", "Lockstep intervals stepped.").With()
	ct.overBudget = reg.Counter("aapm_cluster_over_budget_intervals_total", "Lockstep intervals whose total measured power exceeded the budget.").With()
	ct.contended = reg.Counter("aapm_cluster_contended_intervals_total", "Lockstep intervals where every node was still active.").With()
	ct.epochs = reg.Counter("aapm_cluster_reallocation_epochs_total", "Budget reallocation epochs completed.").With()
	limits := reg.Gauge("aapm_cluster_node_limit_watts", "Current per-node PM power limit.", "node")
	for _, name := range names {
		ct.limitBy = append(ct.limitBy, limits.With(name))
	}
	shard := reg.Histogram("aapm_cluster_shard_wall_seconds", "Per-worker wall-clock to step one shard for one tick.", shardWallBuckets, "worker")
	for k := 0; k < workers; k++ {
		ct.shardWall = append(ct.shardWall, shard.With(fmt.Sprint(k)))
	}
	return ct
}

// tick publishes one lockstep interval's aggregates.
func (ct *clusterTelemetry) tick(totalW float64, over, allActive bool) {
	ct.totalW.Set(totalW)
	ct.intervals.Inc()
	if over {
		ct.overBudget.Inc()
	}
	if allActive {
		ct.contended.Inc()
	}
}

// epoch publishes one reallocation's outcome.
func (ct *clusterTelemetry) epoch(limits []float64) {
	ct.epochs.Inc()
	for i, l := range limits {
		ct.limitBy[i].Set(l)
	}
}
