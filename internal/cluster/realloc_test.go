package cluster

import (
	"math"
	"testing"
	"time"

	"aapm/internal/control"
	"aapm/internal/phase"
	"aapm/internal/pstate"
	"aapm/internal/sensor"
	"aapm/internal/spec"
)

func testPMs(t *testing.T, n int, limitW float64) []*control.PerformanceMaximizer {
	t.Helper()
	pms := make([]*control.PerformanceMaximizer, n)
	for i := range pms {
		pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: limitW, FeedbackGain: 0.25})
		if err != nil {
			t.Fatal(err)
		}
		pms[i] = pm
	}
	return pms
}

// TestReallocateConsumesAverageNotTap pins the reallocation input
// contract: the allocator sees only the epoch-average decode rate
// carried by the demand record, so a spiked last tick that left the
// average unchanged cannot move the shares (the regression the old
// last-tap-only coordinator had).
func TestReallocateConsumesAverageNotTap(t *testing.T) {
	table := pstate.PentiumM755()
	mk := func() ([]demand, []float64) {
		return []demand{
			{active: true, useDPC: true, dpc: 0.5},
			{active: true, useDPC: true, dpc: 0.5},
		}, []float64{15, 15}
	}

	steady, steadyLimits := mk()
	reallocate(30, 4, table, steady, testPMs(t, 2, 15), steadyLimits)

	// Same epoch averages; node 0's tap spiked on the final tick of
	// the epoch. The demand record is built from the averages, so the
	// allocator's output must be bit-identical.
	spiked, spikedLimits := mk()
	reallocate(30, 4, table, spiked, testPMs(t, 2, 15), spikedLimits)
	for i := range steadyLimits {
		if steadyLimits[i] != spikedLimits[i] {
			t.Errorf("node %d share moved on a last-tick spike: %.3f -> %.3f", i, steadyLimits[i], spikedLimits[i])
		}
	}
	if steadyLimits[0] != steadyLimits[1] {
		t.Errorf("equal demands got unequal shares: %v", steadyLimits)
	}
}

// TestReallocateAvgPowerFloorsDesire pins that a node's epoch-average
// measured draw lower-bounds its desire: a node drawing more than the
// model projects (at its current state) is not squeezed below what it
// demonstrably consumes.
func TestReallocateAvgPowerFloorsDesire(t *testing.T) {
	table := pstate.PentiumM755()
	var gotDesire float64
	debugHook = func(node int, desire, limit float64) {
		if node == 0 {
			gotDesire = desire
		}
	}
	defer func() { debugHook = nil }()

	pms := testPMs(t, 1, 15)
	modelDesire := pms[0].BudgetDesireW(table, 0.1) + budgetMarginW
	demands := []demand{{active: true, useDPC: true, dpc: 0.1, avgW: modelDesire + 5}}
	limits := []float64{15}
	reallocate(40, 4, table, demands, pms, limits)
	if gotDesire != modelDesire+5 {
		t.Errorf("desire %.2f W, want the %.2f W epoch-average draw to floor it", gotDesire, modelDesire+5)
	}
}

// TestReallocateHoldsStaleNode pins the stale-tap guard: an active
// node that produced no fresh observation all epoch keeps its
// previous share untouched (its PM limit is not reassigned), the
// finished node's share is released, and only the fresh node is
// waterfilled over what remains.
func TestReallocateHoldsStaleNode(t *testing.T) {
	table := pstate.PentiumM755()
	pms := testPMs(t, 3, 10)
	demands := []demand{
		{active: true, useDPC: true, dpc: 2.0}, // fresh, hungry
		{active: true, hold: true},             // active but dark
		{active: false},                        // finished
	}
	limits := []float64{10, 12, 8}
	reallocate(30, 4, table, demands, pms, limits)

	if limits[1] != 12 {
		t.Errorf("held node's share moved: %.2f, want 12", limits[1])
	}
	if got := pms[1].Limit(); got != 10 {
		t.Errorf("held node's PM limit reassigned to %.2f", got)
	}
	if limits[2] != 8 {
		t.Errorf("finished node's recorded share rewritten: %.2f", limits[2])
	}
	// The fresh node gets at most the unheld budget (30 - 12 = 18).
	if limits[0] > 18+1e-9 {
		t.Errorf("fresh node granted %.2f W, exceeding the 18 W left after the hold", limits[0])
	}
	if got := pms[0].Limit(); got != limits[0] {
		t.Errorf("fresh node's PM limit %.2f != recorded share %.2f", got, limits[0])
	}
}

// TestReallocateHoldRespectsFloorGuarantee pins the pathological
// case: when held shares squeeze the fresh nodes below their floors,
// the floor guarantee wins over the budget.
func TestReallocateHoldRespectsFloorGuarantee(t *testing.T) {
	table := pstate.PentiumM755()
	pms := testPMs(t, 2, 10)
	demands := []demand{
		{active: true, useDPC: true, dpc: 0.1},
		{active: true, hold: true},
	}
	limits := []float64{4, 18}
	reallocate(20, 4, table, demands, pms, limits)
	if limits[0] < 4 {
		t.Errorf("fresh node starved below the 4 W floor: %.2f", limits[0])
	}
	if limits[1] != 18 {
		t.Errorf("held share moved: %.2f", limits[1])
	}
}

// spikeProbe builds a synthetic workload whose per-tick decode rate
// alternates every interval between a core-bound and a dilated phase
// (each sized to exactly one 10 ms interval at the top p-state), so a
// last-tick reader sees wildly different demand depending on which
// phase a reallocation boundary lands on, while the epoch average is
// steady at the midpoint.
func spikeProbe(iterations int) phase.Workload {
	const instrPerTickFast = 20e6 // 2 GHz * 10 ms at CPI 1
	return phase.Workload{
		Name:       "spikeprobe",
		Iterations: iterations,
		Phases: []phase.Params{
			{Name: "fast", Instructions: instrPerTickFast, CPICore: 1.0, MLP: 1, SpecFactor: 1.05},
			{Name: "slow", Instructions: instrPerTickFast / 4, CPICore: 4.0, MLP: 1, SpecFactor: 1.05},
		},
	}
}

// TestEpochAverageStabilizesShares is the end-to-end regression for
// the epoch-average fix: with a probe whose instantaneous decode rate
// alternates tick to tick and an odd epoch length (so successive
// boundaries land on opposite phases), the desires the coordinator
// computes at successive reallocations must stay nearly constant.
// Under the old last-tick-tap coordinator they alternated with the
// boundary phase by several watts.
func TestEpochAverageStabilizesShares(t *testing.T) {
	var desires []float64
	debugHook = func(node int, desire, limit float64) {
		if node == 0 {
			desires = append(desires, desire)
		}
	}
	defer func() { debugHook = nil }()

	companion, err := spec.ByName("crafty")
	if err != nil {
		t.Fatal(err)
	}
	companion.Iterations = max(1, companion.Repeats()/4)
	_, err = Run(Config{
		// Generous budget: both nodes stay at the top p-state, so the
		// probe's phase/tick alignment is exact and the desires isolate
		// the DPC input rather than p-state churn.
		BudgetW:    70,
		Nodes:      []Node{{Workload: spikeProbe(120)}, {Workload: companion}},
		Seed:       7,
		EpochTicks: 5, // odd: boundaries alternate between fast and slow ticks
		Workers:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(desires) < 6 {
		t.Fatalf("only %d reallocations observed", len(desires))
	}
	// Skip the first boundaries while the measured-power feedback
	// correction settles, then require the remaining desires steady.
	settled := desires[2:]
	lo, hi := settled[0], settled[0]
	for _, d := range settled {
		lo, hi = math.Min(lo, d), math.Max(hi, d)
	}
	if hi-lo > 1.0 {
		t.Errorf("probe desires swing %.2f W across boundaries (%v): epoch averaging not in effect", hi-lo, settled)
	}
}

// TestTailPhaseAccounting pins the documented OverFrac semantics: a
// run with a long single-node tail reports OverFrac over all
// intervals (the physical shared-supply view) and ContendedOverFrac
// over only the intervals where every node was active, with
// ContendedIntervals matching the first finisher's participation.
func TestTailPhaseAccounting(t *testing.T) {
	ws := nodes(t, "gzip", "crafty")
	ws[0].Workload.Iterations = 1
	res, err := Run(Config{BudgetW: 30, Nodes: ws, Seed: 3, Chain: sensor.NIDefault(), Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	short, long := res.Runs[0], res.Runs[1]
	if short.Duration >= long.Duration {
		t.Fatalf("probe setup broken: short %v !< long %v", short.Duration, long.Duration)
	}
	// Contended intervals = ticks until the short node finished: its
	// recorded rows, plus possibly one unrecorded final step that
	// found the workload already exhausted.
	if got, want := res.ContendedIntervals, len(short.Rows); got != want && got != want+1 {
		t.Errorf("ContendedIntervals = %d, want %d or %d (short node's participation)", got, want, want+1)
	}
	if res.ContendedIntervals >= len(long.Rows) {
		t.Errorf("no tail: contended %d !< total %d — probe workloads too similar", res.ContendedIntervals, len(long.Rows))
	}
	if res.OverFrac > 0.05 || res.ContendedOverFrac > 0.05 {
		t.Errorf("budget violated: OverFrac %.3f, ContendedOverFrac %.3f", res.OverFrac, res.ContendedOverFrac)
	}
}

// TestTickWallCollected pins that the coordinator publishes its
// per-tick wall-clock through metrics.WallClock.
func TestTickWallCollected(t *testing.T) {
	ws := nodes(t, "gzip", "gcc")
	ws[0].Workload.Iterations = 1
	ws[1].Workload.Iterations = 1
	res, err := Run(Config{BudgetW: 30, Nodes: ws, Seed: 3, Chain: sensor.NIDefault()})
	if err != nil {
		t.Fatal(err)
	}
	if res.TickWall.N == 0 {
		t.Fatal("no wall-clock samples")
	}
	if res.TickWall.Total <= 0 || res.TickWall.Max <= 0 || res.TickWall.Avg() <= 0 {
		t.Errorf("degenerate wall-clock aggregate: %+v", res.TickWall)
	}
	if res.TickWall.Avg() > res.TickWall.Max {
		t.Errorf("avg %v exceeds max %v", res.TickWall.Avg(), res.TickWall.Max)
	}
	if res.TickWall.Total > time.Minute {
		t.Errorf("implausible total %v for a short run", res.TickWall.Total)
	}
}
