package cluster

import (
	"bytes"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"aapm/internal/sensor"
	"aapm/internal/telemetry"
)

// fleetCSV serializes every node trace of a fleet result, in node
// order, in the same format tracesCSV uses for flat results so the
// two are directly comparable.
func fleetCSV(t testing.TB, res *FleetResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, run := range res.Runs {
		fmt.Fprintf(&buf, "# node %d %s\n", i, res.Names[i])
		if err := run.WriteCSV(&buf); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// diffLines fails the test at the first diverging line of two trace
// serializations.
func diffLines(t *testing.T, what string, a, b []byte) {
	t.Helper()
	if bytes.Equal(a, b) {
		return
	}
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := 0; i < len(al) && i < len(bl); i++ {
		if !bytes.Equal(al[i], bl[i]) {
			t.Fatalf("%s: traces diverge at line %d:\n  a %s\n  b %s", what, i, al[i], bl[i])
		}
	}
	t.Fatalf("%s: traces differ in length: %d vs %d lines", what, len(al), len(bl))
}

// TestFleetOneLevelMatchesFlat is the hierarchy's determinism anchor:
// a one-level fleet — the root allocating straight over the leaves —
// must reproduce the flat coordinator byte for byte: traces, energy
// integrals, degradation logs and budget accounting, at any worker
// count.
func TestFleetOneLevelMatchesFlat(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			flat, err := Run(Config{
				BudgetW: 104,
				Nodes:   eightNodes(t),
				Seed:    seed,
				Chain:   sensor.NIDefault(),
				Workers: 1,
			})
			if err != nil {
				t.Fatal(err)
			}
			fleet, err := RunFleet(FleetConfig{
				BudgetW:      104,
				Nodes:        eightNodes(t),
				Seed:         seed,
				Chain:        sensor.NIDefault(),
				Workers:      8,
				Levels:       1,
				RetainTraces: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			diffLines(t, "flat vs one-level fleet", tracesCSV(t, flat), fleetCSV(t, fleet))
			for i := range flat.Runs {
				fr, hr := flat.Runs[i], fleet.Runs[i]
				if fr.EnergyJ != hr.EnergyJ || fr.MeasuredEnergyJ != hr.MeasuredEnergyJ {
					t.Errorf("node %d energy diverges: flat %v/%v J, fleet %v/%v J",
						i, fr.EnergyJ, fr.MeasuredEnergyJ, hr.EnergyJ, hr.MeasuredEnergyJ)
				}
				if len(fr.Degradations) != len(hr.Degradations) {
					t.Errorf("node %d degradation logs diverge: %d vs %d entries",
						i, len(fr.Degradations), len(hr.Degradations))
				}
			}
			if flat.MachineSeconds != fleet.MachineSeconds || flat.Makespan != fleet.Makespan {
				t.Errorf("aggregates diverge: flat %v/%v, fleet %v/%v",
					flat.MachineSeconds, flat.Makespan, fleet.MachineSeconds, fleet.Makespan)
			}
			if flat.PeakTotalW != fleet.PeakTotalW || flat.OverFrac != fleet.OverFrac ||
				flat.ContendedOverFrac != fleet.ContendedOverFrac ||
				flat.ContendedIntervals != fleet.ContendedIntervals {
				t.Errorf("budget accounting diverges: flat peak=%v over=%v cover=%v cint=%d, fleet peak=%v over=%v cover=%v cint=%d",
					flat.PeakTotalW, flat.OverFrac, flat.ContendedOverFrac, flat.ContendedIntervals,
					fleet.PeakTotalW, fleet.OverFrac, fleet.ContendedOverFrac, fleet.ContendedIntervals)
			}
		})
	}
}

// TestFleetMultiLevelDeterministic pins the multi-level contract: a
// hierarchy of any depth produces byte-identical traces and aggregates
// for every worker count.
func TestFleetMultiLevelDeterministic(t *testing.T) {
	for _, levels := range []int{2, 3} {
		levels := levels
		t.Run(fmt.Sprintf("levels=%d", levels), func(t *testing.T) {
			t.Parallel()
			run := func(workers int) (*FleetResult, []byte) {
				res, err := RunFleet(FleetConfig{
					BudgetW:      16 * 48,
					Nodes:        SyntheticFleet(48, 60),
					Seed:         7,
					Chain:        sensor.NIDefault(),
					Workers:      workers,
					Levels:       levels,
					Fanout:       4,
					RetainTraces: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				return res, fleetCSV(t, res)
			}
			ref, refCSV := run(1)
			if ref.Levels != levels || ref.Epochs == 0 || ref.Intervals == 0 {
				t.Fatalf("degenerate reference run: %+v", ref)
			}
			wantGroups := []int{12, 3}[:levels-1]
			for i, g := range wantGroups {
				if ref.GroupsPerLevel[i] != g {
					t.Errorf("GroupsPerLevel[%d] = %d, want %d", i, ref.GroupsPerLevel[i], g)
				}
			}
			for _, workers := range []int{5, 8} {
				res, csv := run(workers)
				diffLines(t, fmt.Sprintf("workers 1 vs %d", workers), refCSV, csv)
				if res.MachineSeconds != ref.MachineSeconds || res.Makespan != ref.Makespan ||
					res.PeakTotalW != ref.PeakTotalW || res.OverFrac != ref.OverFrac ||
					res.NodeTicks != ref.NodeTicks || res.Epochs != ref.Epochs {
					t.Errorf("workers=%d aggregates diverge from serial", workers)
				}
			}
		})
	}
}

// TestFleetValidation pins the config error paths.
func TestFleetValidation(t *testing.T) {
	if _, err := RunFleet(FleetConfig{BudgetW: 100}); err == nil {
		t.Error("no nodes accepted")
	}
	nodes := SyntheticFleet(4, 5)
	if _, err := RunFleet(FleetConfig{Nodes: nodes}); err == nil {
		t.Error("non-positive budget accepted")
	}
	if _, err := RunFleet(FleetConfig{BudgetW: 10, Nodes: nodes}); err == nil {
		t.Error("budget below the floor guarantee accepted")
	}
	if _, err := RunFleet(FleetConfig{BudgetW: 100, Nodes: nodes, Levels: 2, Fanout: 1}); err == nil {
		t.Error("fanout 1 with 2 levels accepted")
	}
	if _, err := RunFleet(FleetConfig{BudgetW: 100, Nodes: nodes, Levels: 17}); err == nil {
		t.Error("17 levels accepted")
	}
}

// fleetBytesPerNodeBudget caps the per-node allocation cost of a
// fleet run (cumulative bytes allocated during RunFleet divided by
// the node count). The footprint is the BatchState's lanes plus one
// machine/PM/run header per node; the budget holds headroom over the
// measured ~1.7 KiB so a regression that, say, reintroduces per-node
// RNGs (~5 KiB each) or per-node tables fails loudly.
const fleetBytesPerNodeBudget = 2560

// TestFleetMemoryBudget is the scale gate: one process steps 100,000
// nodes through a multi-epoch hierarchical run, within the per-node
// allocation budget.
func TestFleetMemoryBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is race-instrumented")
	}
	if testing.Short() {
		t.Skip("fleet-scale run")
	}
	const n, ticks = 100_000, 120
	nodes := SyntheticFleet(n, ticks)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	res, err := RunFleet(FleetConfig{
		BudgetW: 30 * n,
		Nodes:   nodes,
		Seed:    1,
		Levels:  3,
		Fanout:  64,
	})
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&m1)
	perNode := float64(m1.TotalAlloc-m0.TotalAlloc) / n
	t.Logf("fleet %d nodes, %d levels: %d node-ticks, %d epochs, %.0f B/node allocated",
		res.Nodes, res.Levels, res.NodeTicks, res.Epochs, perNode)
	if res.NodeTicks < int64(n)*ticks {
		t.Errorf("NodeTicks = %d, want >= %d", res.NodeTicks, int64(n)*ticks)
	}
	if res.Epochs < 2 {
		t.Errorf("Epochs = %d, want >= 2", res.Epochs)
	}
	if res.GroupsPerLevel[0] != (n+63)/64 {
		t.Errorf("GroupsPerLevel = %v", res.GroupsPerLevel)
	}
	if perNode > fleetBytesPerNodeBudget {
		t.Errorf("allocated %.0f B/node, budget %d", perNode, fleetBytesPerNodeBudget)
	}
}

// TestFleetTelemetry checks the per-level series surface on a small
// hierarchy: static gauges, per-group budgets, the root over-budget
// counter and the per-level epoch wall all registered and populated.
func TestFleetTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	res, err := RunFleet(FleetConfig{
		BudgetW:    16 * 12,
		Nodes:      SyntheticFleet(12, 30),
		Seed:       3,
		Chain:      sensor.NIDefault(),
		EpochTicks: 10,
		Levels:     2,
		Fanout:     4,
		Telemetry:  reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epochs == 0 {
		t.Fatal("no epochs completed")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"aapm_fleet_nodes 12",
		"aapm_fleet_levels 2",
		"aapm_fleet_budget_watts 192",
		`aapm_fleet_group_budget_watts{level="1",group="0"}`,
		`aapm_fleet_group_budget_watts{level="1",group="2"}`,
		`aapm_fleet_over_budget_intervals_total{level="root",group=""}`,
		`aapm_fleet_epoch_wall_seconds_count{level="0"}`,
		`aapm_fleet_epoch_wall_seconds_count{level="1"}`,
		"aapm_fleet_reallocation_epochs_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("telemetry output missing %q", want)
		}
	}
}

// budgetRecorder observes per-epoch level-1 budgets through the
// control-plane seam without issuing directives.
type budgetRecorder struct {
	budgets [][]float64
}

func (r *budgetRecorder) Epoch(o FleetEpochObs) FleetDirectives {
	row := make([]float64, len(o.Groups))
	for g, gr := range o.Groups {
		row[g] = gr.BudgetW
	}
	r.budgets = append(r.budgets, row)
	return FleetDirectives{}
}

// TestFleetHeterogeneousFloors pins the per-group minima path: a
// static GroupSpec floor flows through alloc.Aggregate.MinW into the
// water-fill, the floored group's grant never dips below its minimum
// under budget scarcity, and the heterogeneous-floor allocation stays
// byte-deterministic at any worker count.
func TestFleetHeterogeneousFloors(t *testing.T) {
	run := func(workers int, groups []GroupSpec) (*FleetResult, *budgetRecorder, []byte) {
		rec := &budgetRecorder{}
		res, err := RunFleet(FleetConfig{
			BudgetW:      180,
			Nodes:        SyntheticFleet(16, 120),
			Seed:         5,
			Chain:        sensor.NIDefault(),
			Workers:      workers,
			Levels:       2,
			Fanout:       4,
			EpochTicks:   10,
			Groups:       groups,
			Control:      rec,
			RetainTraces: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res, rec, fleetCSV(t, res)
	}
	floors := []GroupSpec{{MinW: 80}, {}, {}, {}}
	ref, rec, refCSV := run(1, floors)
	if ref.Epochs < 3 {
		t.Fatalf("degenerate run: %d epochs", ref.Epochs)
	}
	// The first control call still reports the bootstrap even split;
	// every reallocated epoch after it must honor the floor.
	for e, row := range rec.budgets[1:] {
		if row[0] < 80-1e-9 {
			t.Errorf("epoch %d: floored group granted %.2f W, floor 80", e+1, row[0])
		}
	}
	// The floor binds: without it, scarcity leaves group 0 below 80 W.
	_, base, _ := run(1, nil)
	bound := false
	for _, row := range base.budgets[1:] {
		if row[0] < 80-1e-9 {
			bound = true
		}
	}
	if !bound {
		t.Error("floor never bound: group 0 held >= 80 W even without it")
	}
	for _, workers := range []int{5, 8} {
		res, rec2, csv := run(workers, floors)
		diffLines(t, fmt.Sprintf("floors workers 1 vs %d", workers), refCSV, csv)
		if res.MachineSeconds != ref.MachineSeconds || res.Epochs != ref.Epochs ||
			res.PeakTotalW != ref.PeakTotalW {
			t.Errorf("workers=%d aggregates diverge from serial", workers)
		}
		if len(rec2.budgets) != len(rec.budgets) {
			t.Fatalf("workers=%d: %d control epochs vs %d", workers, len(rec2.budgets), len(rec.budgets))
		}
		for e := range rec.budgets {
			for g := range rec.budgets[e] {
				if rec.budgets[e][g] != rec2.budgets[e][g] {
					t.Fatalf("workers=%d epoch %d group %d budget %v != %v",
						workers, e, g, rec2.budgets[e][g], rec.budgets[e][g])
				}
			}
		}
	}
}

// TestFleetGroupsValidation pins the GroupSpec config error paths.
func TestFleetGroupsValidation(t *testing.T) {
	nodes := SyntheticFleet(8, 5)
	if _, err := RunFleet(FleetConfig{BudgetW: 100, Nodes: nodes, Levels: 1,
		Groups: []GroupSpec{{}}}); err == nil {
		t.Error("Groups with one level accepted")
	}
	if _, err := RunFleet(FleetConfig{BudgetW: 100, Nodes: nodes, Levels: 2, Fanout: 4,
		Groups: []GroupSpec{{}}}); err == nil {
		t.Error("wrong Groups length accepted")
	}
	if _, err := RunFleet(FleetConfig{BudgetW: 100, Nodes: nodes, Levels: 2, Fanout: 4,
		Groups: []GroupSpec{{MinW: -1}, {}}}); err == nil {
		t.Error("negative group minimum accepted")
	}
	if _, err := RunFleet(FleetConfig{BudgetW: 100, Nodes: nodes, Levels: 2, Fanout: 4,
		Groups: []GroupSpec{{MinW: 90}, {MinW: 90}}}); err == nil {
		t.Error("group minima exceeding the budget accepted")
	}
}
