package cluster

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"aapm/internal/metrics"
	"aapm/internal/telemetry"
)

// stepper owns the per-tick stepping work. Nodes are statically
// sharded: worker k steps nodes k, k+workers, k+2*workers, … so a
// node is stepped by the same goroutine for the whole run and no two
// workers ever touch the same node state, stepped flag or error slot
// — with the staged engine each node is its own session; with the
// batch engine the shards step disjoint index ranges of one
// BatchState, which the kernel's concurrency contract permits. The
// coordinator reads stepped/errs (via the engine) only after the tick
// barrier.
type stepper struct {
	workers int
	n       int
	// step advances node i by one interval if it is still active,
	// reporting whether it was stepped. Provided by the engine.
	step func(i int) bool
	// stepped[i] records that node i was active at tick start and was
	// stepped this tick. Entry i is written only by the worker owning
	// shard i%workers.
	stepped []bool
	// wall[k] aggregates worker k's per-tick shard wall-clock (ticks
	// where the shard had at least one active node). Each entry is
	// written only by its owning worker; the coordinator merges them
	// into Result.TickWall after the run.
	wall []metrics.WallClock
	// shardWall[k], when telemetry is enabled, receives the same
	// samples as a labeled histogram series.
	shardWall []*telemetry.Series
}

// shard steps worker k's nodes for one tick, timing the shard when it
// did any work.
func (st *stepper) shard(k int) {
	start := time.Now()
	any := false
	for i := k; i < st.n; i += st.workers {
		if st.step(i) {
			any = true
			st.stepped[i] = true
		}
	}
	if any {
		d := time.Since(start)
		st.wall[k].Add(d)
		if st.shardWall != nil {
			st.shardWall[k].Observe(d.Seconds())
		}
	}
}

// workerPool is a persistent set of stepping goroutines, spawned once
// per cluster run instead of per tick: a run is millions of ticks and
// per-tick goroutine churn would dwarf the stepping work. The tick
// handoff is a generation-counter barrier rather than channels — a
// session step is a few hundred nanoseconds, so two channel operations
// per worker per tick would cost more than the work being
// parallelized. Workers spin (yielding to the scheduler) on the
// generation counter, step their shard when it advances, and bump the
// done counter; the coordinator releases a tick by advancing the
// generation and waits until every worker reported.
//
// The spin is bounded: after spinYields fruitless yields a waiter
// parks on a sync.Cond (workers on wake, the coordinator on idle)
// instead of burning its core, so a fleet-scale process with many
// pools — or a pool idling between reallocation epochs while the
// coordinator does post-barrier work — costs nothing while blocked.
// The generation advance and the final done-count report happen with
// the lock held around the matching signal, so a waiter that
// re-checks its condition under the lock can never miss the wakeup.
// The fast path is unchanged: an active tick hands off through the
// same atomics and never touches the mutex.
//
// The sequentially consistent atomics give the happens-before edges
// the determinism argument needs: workers' writes (session state,
// taps, stepped, errs) are made before the done-counter add and so
// visible to the coordinator once it observes the full count, and the
// coordinator's writes (SetLimit, cleared stepped flags) are made
// before the generation advance and so visible to every worker that
// observes the new generation. Parking changes only who is scheduled
// when — the barrier order, and therefore every trace byte, is
// identical to the pure-spin pool.
type workerPool struct {
	workers int
	gen     atomic.Uint64 // current tick generation
	done    atomic.Int64  // workers finished with the current generation
	closed  atomic.Bool   // set before the final generation advance

	mu   sync.Mutex
	wake sync.Cond // workers: gen advanced
	idle sync.Cond // coordinator: all workers reported
}

// spinYields bounds the optimistic spin before a waiter parks: long
// enough that a barrier partner mid-shard on another core is caught
// without a syscall, short enough that an idle pool leaves the CPU in
// microseconds.
const spinYields = 64

// newWorkerPool starts one goroutine per worker; each waits for the
// generation to advance, runs fn with its worker index, and reports
// done. Each worker goroutine carries pprof labels — the pool scope
// plus its shard range — layered over whatever labels ctx already
// carries (the serve scheduler's tenant/job labels propagate through
// here), so CPU profiles attribute stepping time to tenant, job,
// coordinator and shard. Labels do not cross goroutine creation on
// their own, hence the explicit SetGoroutineLabels per worker.
func newWorkerPool(ctx context.Context, scope string, workers int, fn func(worker int)) *workerPool {
	if ctx == nil {
		ctx = context.Background()
	}
	p := &workerPool{workers: workers}
	p.wake.L = &p.mu
	p.idle.L = &p.mu
	for k := 0; k < workers; k++ {
		go func(k int) {
			lctx := pprof.WithLabels(ctx, pprof.Labels(
				"aapm_pool", scope,
				"aapm_shard", fmt.Sprintf("%d/%d", k, workers),
			))
			pprof.SetGoroutineLabels(lctx)
			var seen uint64
			for {
				g := p.gen.Load()
				if g == seen {
					p.awaitGen(seen)
					continue
				}
				if p.closed.Load() {
					return
				}
				seen = g
				fn(k)
				if p.done.Add(1) == int64(p.workers) {
					// Last reporter: the coordinator may have parked.
					p.mu.Lock()
					p.idle.Signal()
					p.mu.Unlock()
				}
			}
		}(k)
	}
	return p
}

// awaitGen blocks until the generation moves past seen: a bounded
// spin first, then parked on wake.
func (p *workerPool) awaitGen(seen uint64) {
	for i := 0; i < spinYields; i++ {
		runtime.Gosched()
		if p.gen.Load() != seen {
			return
		}
	}
	p.mu.Lock()
	for p.gen.Load() == seen {
		p.wake.Wait()
	}
	p.mu.Unlock()
}

// tick runs one stepping round: release every worker, then wait for
// all of them (the barrier).
func (p *workerPool) tick() {
	p.done.Store(0)
	p.advance()
	for i := 0; i < spinYields; i++ {
		if p.done.Load() == int64(p.workers) {
			return
		}
		runtime.Gosched()
	}
	p.mu.Lock()
	for p.done.Load() != int64(p.workers) {
		p.idle.Wait()
	}
	p.mu.Unlock()
}

// advance publishes the next generation and wakes any parked workers.
// The advance happens under the lock so a worker that checked the
// generation and decided to park cannot miss the broadcast.
func (p *workerPool) advance() {
	p.mu.Lock()
	p.gen.Add(1)
	p.wake.Broadcast()
	p.mu.Unlock()
}

// close terminates the workers. The pool must be idle (no tick in
// flight).
func (p *workerPool) close() {
	p.closed.Store(true)
	p.advance()
}
