package cluster

import (
	"runtime"
	"sync/atomic"
	"time"

	"aapm/internal/metrics"
	"aapm/internal/telemetry"
)

// stepper owns the per-tick stepping work. Nodes are statically
// sharded: worker k steps nodes k, k+workers, k+2*workers, … so a
// node is stepped by the same goroutine for the whole run and no two
// workers ever touch the same node state, stepped flag or error slot
// — with the staged engine each node is its own session; with the
// batch engine the shards step disjoint index ranges of one
// BatchState, which the kernel's concurrency contract permits. The
// coordinator reads stepped/errs (via the engine) only after the tick
// barrier.
type stepper struct {
	workers int
	n       int
	// step advances node i by one interval if it is still active,
	// reporting whether it was stepped. Provided by the engine.
	step func(i int) bool
	// stepped[i] records that node i was active at tick start and was
	// stepped this tick. Entry i is written only by the worker owning
	// shard i%workers.
	stepped []bool
	// wall[k] aggregates worker k's per-tick shard wall-clock (ticks
	// where the shard had at least one active node). Each entry is
	// written only by its owning worker; the coordinator merges them
	// into Result.TickWall after the run.
	wall []metrics.WallClock
	// shardWall[k], when telemetry is enabled, receives the same
	// samples as a labeled histogram series.
	shardWall []*telemetry.Series
}

// shard steps worker k's nodes for one tick, timing the shard when it
// did any work.
func (st *stepper) shard(k int) {
	start := time.Now()
	any := false
	for i := k; i < st.n; i += st.workers {
		if st.step(i) {
			any = true
			st.stepped[i] = true
		}
	}
	if any {
		d := time.Since(start)
		st.wall[k].Add(d)
		if st.shardWall != nil {
			st.shardWall[k].Observe(d.Seconds())
		}
	}
}

// workerPool is a persistent set of stepping goroutines, spawned once
// per cluster run instead of per tick: a run is millions of ticks and
// per-tick goroutine churn would dwarf the stepping work. The tick
// handoff is a generation-counter spin barrier rather than channels —
// a session step is a few hundred nanoseconds, so two channel
// operations per worker per tick would cost more than the work being
// parallelized. Workers spin (yielding to the scheduler) on the
// generation counter, step their shard when it advances, and bump the
// done counter; the coordinator releases a tick by advancing the
// generation and spins until every worker reported.
//
// The sequentially consistent atomics give the happens-before edges
// the determinism argument needs: workers' writes (session state,
// taps, stepped, errs) are made before the done-counter add and so
// visible to the coordinator once it observes the full count, and the
// coordinator's writes (SetLimit, cleared stepped flags) are made
// before the generation advance and so visible to every worker that
// observes the new generation.
type workerPool struct {
	workers int
	gen     atomic.Uint64 // current tick generation
	done    atomic.Int64  // workers finished with the current generation
	closed  atomic.Bool   // set before the final generation advance
}

// newWorkerPool starts one goroutine per worker; each waits for the
// generation to advance, runs fn with its worker index, and reports
// done.
func newWorkerPool(workers int, fn func(worker int)) *workerPool {
	p := &workerPool{workers: workers}
	for k := 0; k < workers; k++ {
		go func(k int) {
			var seen uint64
			for {
				g := p.gen.Load()
				if g == seen {
					runtime.Gosched()
					continue
				}
				if p.closed.Load() {
					return
				}
				seen = g
				fn(k)
				p.done.Add(1)
			}
		}(k)
	}
	return p
}

// tick runs one stepping round: release every worker, then wait for
// all of them (the barrier).
func (p *workerPool) tick() {
	p.done.Store(0)
	p.gen.Add(1)
	for p.done.Load() != int64(p.workers) {
		runtime.Gosched()
	}
}

// close terminates the workers. The pool must be idle (no tick in
// flight).
func (p *workerPool) close() {
	p.closed.Store(true)
	p.gen.Add(1)
}
