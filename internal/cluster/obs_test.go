package cluster

import (
	"bytes"
	"context"
	"fmt"
	"testing"
	"time"

	"aapm/internal/obs"
	"aapm/internal/sensor"
	"aapm/internal/spec"
	"aapm/internal/telemetry"
)

// exposition renders the registry's Prometheus text format.
func exposition(t *testing.T, reg *telemetry.Registry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// shortNodes builds a small population trimmed for test runtime.
func shortNodes(t *testing.T, names ...string) []Node {
	t.Helper()
	out := make([]Node, len(names))
	for i, n := range names {
		w, err := spec.ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		w.Iterations = 1
		out[i] = Node{Workload: w}
	}
	return out
}

// sampledCtx returns a context carrying an always-sampled trace plus
// the tracer holding its spans.
func sampledCtx(job string) (context.Context, *obs.Tracer, *obs.Trace) {
	tracer := obs.NewTracer(obs.Config{SampleRate: 1})
	tr := tracer.Start(job, "test", nil)
	return obs.NewContext(context.Background(), tr), tracer, tr
}

// TestClusterTraceSpans proves the coordinator's span layer is purely
// observational — traces from a run with a sampled job trace attached
// are byte-identical to an untraced run — and that the trace carries
// the epoch structure: reallocate spans at each epoch plus per-worker
// shard-step windows.
func TestClusterTraceSpans(t *testing.T) {
	cfg := Config{
		BudgetW:    30,
		Nodes:      shortNodes(t, "gzip", "crafty"),
		Seed:       3,
		Chain:      sensor.NIDefault(),
		EpochTicks: 5,
		Workers:    2,
	}
	plain, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, tracer, tr := sampledCtx("jobA")
	cfg.Nodes = shortNodes(t, "gzip", "crafty")
	traced, err := RunContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tracesCSV(t, plain), tracesCSV(t, traced)) {
		t.Error("tracing changed the simulation traces")
	}

	spans, dropped, ok := tracer.Spans(tr.TraceID())
	if !ok {
		t.Fatal("trace not found in store")
	}
	if dropped != 0 {
		t.Errorf("dropped %d spans with default ring", dropped)
	}
	var reallocs, shardSteps int
	workersSeen := map[float64]bool{}
	for _, s := range spans {
		switch s.Name {
		case "reallocate":
			reallocs++
			if s.Attrs["budget_w"] != cfg.BudgetW {
				t.Errorf("reallocate budget_w = %v, want %v", s.Attrs["budget_w"], cfg.BudgetW)
			}
			if s.Attrs["nodes"] != 2 {
				t.Errorf("reallocate nodes = %v, want 2", s.Attrs["nodes"])
			}
		case "shard-step":
			shardSteps++
			workersSeen[s.Attrs["worker"]] = true
			if s.Attrs["workers"] != 2 {
				t.Errorf("shard-step workers = %v, want 2", s.Attrs["workers"])
			}
			if s.VirtDurUS <= 0 || s.Attrs["ticks"] <= 0 {
				t.Errorf("shard-step window degenerate: %+v", s)
			}
		}
	}
	if len(traced.Runs[0].Rows) <= cfg.EpochTicks {
		t.Fatalf("run too short to cross an epoch: %d ticks", len(traced.Runs[0].Rows))
	}
	if reallocs == 0 {
		t.Error("no reallocate spans recorded across epochs")
	}
	if shardSteps == 0 || !workersSeen[0] || !workersSeen[1] {
		t.Errorf("shard-step spans missing workers: %d spans, seen %v", shardSteps, workersSeen)
	}
}

// TestFleetTraceSpansPerLevel drives the hierarchy with a sampled
// trace: byte-identical node traces, one reallocate span per level per
// epoch (with the tree geometry in the attrs), and shard windows.
func TestFleetTraceSpansPerLevel(t *testing.T) {
	cfg := FleetConfig{
		BudgetW:      120,
		Nodes:        SyntheticFleet(8, 40),
		Seed:         1,
		Levels:       2,
		Fanout:       4,
		EpochTicks:   10,
		Workers:      2,
		RetainTraces: true,
	}
	plain, err := RunFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, tracer, tr := sampledCtx("jobF")
	cfg.Nodes = SyntheticFleet(8, 40)
	traced, err := RunFleetContext(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var pb, tb bytes.Buffer
	for i := range plain.Runs {
		if err := plain.Runs[i].WriteCSV(&pb); err != nil {
			t.Fatal(err)
		}
		if err := traced.Runs[i].WriteCSV(&tb); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(pb.Bytes(), tb.Bytes()) {
		t.Error("tracing changed the fleet traces")
	}
	if traced.Epochs == 0 {
		t.Fatal("run crossed no reallocation epochs")
	}

	spans, _, ok := tracer.Spans(tr.TraceID())
	if !ok {
		t.Fatal("trace not found in store")
	}
	levels := map[float64]int{}
	shardSteps := 0
	for _, s := range spans {
		switch s.Name {
		case "reallocate":
			levels[s.Attrs["level"]]++
			switch s.Attrs["level"] {
			case 0:
				if s.Attrs["entities"] != 8 {
					t.Errorf("level 0 entities = %v, want 8", s.Attrs["entities"])
				}
			case 1:
				if s.Attrs["entities"] != 2 {
					t.Errorf("level 1 entities = %v, want 2", s.Attrs["entities"])
				}
			}
		case "shard-step":
			shardSteps++
		}
	}
	if levels[0] != traced.Epochs || levels[1] != traced.Epochs {
		t.Errorf("reallocate spans per level = %v, want %d at each of 2 levels", levels, traced.Epochs)
	}
	if shardSteps == 0 {
		t.Error("no shard-step spans recorded")
	}
}

// TestTracingOffNoAllocs pins the tracing-off cost structure: with no
// trace in the context (or an unsampled one) the span recorder is nil,
// and every call the coordinator makes on that nil recorder — plus the
// context lookup itself — allocates nothing.
func TestTracingOffNoAllocs(t *testing.T) {
	tracer := obs.NewTracer(obs.Config{SampleRate: 0})
	unsampled := tracer.Start("job", "t", nil)
	if cs := newCoordSpans(unsampled, 10*time.Millisecond, nil, 2); cs != nil {
		t.Fatal("unsampled trace built a span recorder")
	}
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		tr := obs.FromContext(ctx)
		cs := newCoordSpans(tr, 10*time.Millisecond, nil, 2)
		cs.reallocEpoch(50, time.Time{}, 30, nil, nil, nil)
		cs.fleetEpoch(50, 30)
		cs.levelDur(0, time.Millisecond)
		cs.finish(60)
		_ = cs.active()
	})
	if allocs != 0 {
		t.Errorf("tracing-off path allocates %.1f per tick, want 0", allocs)
	}
}

// TestTracingOffOverhead is the tracing-off wall-clock budget, in the
// style of the telemetry-off budget: a run whose context carries an
// unsampled trace must cost ≤5% per interval versus a run with no
// trace at all. Min-of-trials on both sides, interleaved and retried
// so drifting CI load hits both configurations alike.
func TestTracingOffOverhead(t *testing.T) {
	const (
		trials   = 3
		attempts = 4
		budget   = 1.05
	)
	mk := func() Config {
		return Config{
			BudgetW:    30,
			Nodes:      shortNodes(t, "gzip", "crafty"),
			Seed:       3,
			Chain:      sensor.NIDefault(),
			EpochTicks: 5,
			Workers:    1,
		}
	}
	cost := func(ctx context.Context) time.Duration {
		var best time.Duration
		for trial := 0; trial < trials; trial++ {
			cfg := mk()
			t0 := time.Now()
			res, err := RunContext(ctx, cfg)
			elapsed := time.Since(t0)
			if err != nil {
				t.Fatal(err)
			}
			if res.CoordWall.N == 0 {
				t.Fatal("degenerate run")
			}
			per := elapsed / time.Duration(res.CoordWall.N)
			if trial == 0 || per < best {
				best = per
			}
		}
		return best
	}
	tracer := obs.NewTracer(obs.Config{SampleRate: 0})
	var base, traced time.Duration
	for attempt := 0; attempt < attempts; attempt++ {
		base = cost(context.Background())
		traced = cost(obs.NewContext(context.Background(),
			tracer.Start(fmt.Sprintf("job%d", attempt), "t", nil)))
		if float64(traced) <= float64(base)*budget {
			return
		}
	}
	t.Errorf("unsampled-trace per-interval cost %v vs bare %v exceeds the %.0f%% budget",
		traced, base, (budget-1)*100)
}

// TestFleetGroupSeriesCap pins the 64-series cap on per-group fleet
// telemetry: a level wider than maxGroupSeries gets no per-group
// budget gauges and aggregates its over-budget counts under
// group="all", deterministically, and the Prometheus exposition stays
// byte-stable under that cap pressure.
func TestFleetGroupSeriesCap(t *testing.T) {
	reg := telemetry.NewRegistry()
	shape := fleetShapeOf(200, 2, 2) // counts[1] = 100 > maxGroupSeries
	if shape.counts[1] <= maxGroupSeries {
		t.Fatalf("test geometry under the cap: %d groups", shape.counts[1])
	}
	ft := newFleetTelemetry(reg, 400, 2, shape)
	if ft.overBy[1] != nil || ft.budgetBy[1] != nil {
		t.Fatal("per-group series minted past the cap")
	}
	if ft.overAll[1] == nil {
		t.Fatal("no aggregate over-budget series for the capped level")
	}
	budgets := [][]float64{nil, make([]float64, shape.counts[1])}
	for g := range budgets[1] {
		budgets[1][g] = 4
	}
	// Three groups over budget in one tick → 3 aggregated increments.
	ft.groupW[1][5] = 10
	ft.groupW[1][42] = 10
	ft.groupW[1][99] = 10
	ft.tick(30, false, true, budgets)
	ft.epoch(budgets)

	first := exposition(t, reg)
	if !bytes.Contains(first, []byte(`aapm_fleet_over_budget_intervals_total{level="1",group="all"} 3`)) {
		t.Errorf("aggregate over-budget series missing or wrong:\n%s", first)
	}
	if bytes.Contains(first, []byte(`aapm_fleet_group_budget_watts{level="1"`)) {
		t.Error("per-group budget gauges minted past the cap")
	}
	second := exposition(t, reg)
	if !bytes.Equal(first, second) {
		t.Error("exposition not byte-stable across renders under cap pressure")
	}

	// Below the cap the same geometry gets real per-group series.
	reg2 := telemetry.NewRegistry()
	shape2 := fleetShapeOf(64, 2, 2) // counts[1] = 32
	ft2 := newFleetTelemetry(reg2, 400, 2, shape2)
	if len(ft2.overBy[1]) != shape2.counts[1] || len(ft2.budgetBy[1]) != shape2.counts[1] {
		t.Errorf("below-cap level minted %d/%d series, want %d",
			len(ft2.overBy[1]), len(ft2.budgetBy[1]), shape2.counts[1])
	}
	if ft2.overAll[1] != nil {
		t.Error("below-cap level got the aggregate series")
	}
}
