// Package mixes provides workloads with varying utilization —
// interactive and server load patterns with real idle time.
//
// The SPEC suite runs at 100% load, where demand-based switching saves
// nothing (the paper's §IV-B critique). These mixes exercise the other
// half of the comparison: an ondemand-style governor recovers energy
// during idle gaps, PS additionally trades performance during the busy
// bursts, and the two compose.
package mixes

import (
	"fmt"
	"time"

	"aapm/internal/phase"
	"aapm/internal/pstate"
)

// burst describes compute work resembling an integer-code working set:
// moderately memory-light, speculation-heavy.
func burst(name string, ms float64) phase.Params {
	p := phase.Params{
		Name:         name,
		Instructions: 1, // replaced from duration below
		CPICore:      0.7,
		L2APKI:       60, // ~0.3 stall cycles/instr at L2 latency, MLP 2
		MemAPKI:      7,  // light DRAM traffic
		MemBPI:       0.45,
		MLP:          2,
		SpecFactor:   1.5,
		StallFrac:    0.12,
	}
	ps := pstate.PentiumM755().Max()
	p.Instructions = ps.FreqHz() * (ms / 1000) * p.At(ps).IPC
	return p
}

func idle(name string, ms float64) phase.Params {
	return phase.Params{Name: name, IdleDuration: time.Duration(ms * float64(time.Millisecond))}
}

// Office models an interactive desktop: short keystroke/recalc bursts
// separated by think time, ~30% average utilization.
func Office() phase.Workload {
	w := phase.Workload{
		Name: "office",
		Phases: []phase.Params{
			burst("office/edit", 120),
			idle("office/think", 280),
			burst("office/recalc", 60),
			idle("office/pause", 140),
		},
		Iterations: 50,
		JitterPct:  0.05,
	}
	mustValidate(w)
	return w
}

// WebServer models request processing at the given utilization
// (0 < util <= 1): a fixed 50 ms service burst followed by the idle
// gap that produces the requested utilization.
func WebServer(util float64) phase.Workload {
	if util <= 0 || util > 1 {
		panic(fmt.Sprintf("mixes: utilization %g outside (0,1]", util))
	}
	const busyMs = 50.0
	idleMs := busyMs*(1/util) - busyMs
	phases := []phase.Params{burst("web/request", busyMs)}
	if idleMs > 0.5 {
		phases = append(phases, idle("web/wait", idleMs))
	}
	w := phase.Workload{
		Name:       fmt.Sprintf("web-%02.0f", util*100),
		Phases:     phases,
		Iterations: int(20000 / (busyMs + idleMs)),
		JitterPct:  0.05,
	}
	mustValidate(w)
	return w
}

// Batch models a fully loaded compute job (the regime the SPEC suite
// covers), included so the three mixes span the utilization axis.
func Batch() phase.Workload {
	w := phase.Workload{
		Name:       "batch",
		Phases:     []phase.Params{burst("batch/compute", 1000)},
		Iterations: 20,
		JitterPct:  0.03,
	}
	mustValidate(w)
	return w
}

// All returns the standard mix set: office (~30% util), web at 50%,
// web at 90%, and batch (100%).
func All() []phase.Workload {
	return []phase.Workload{Office(), WebServer(0.5), WebServer(0.9), Batch()}
}

func mustValidate(w phase.Workload) {
	if err := w.Validate(); err != nil {
		panic("mixes: " + err.Error())
	}
}
