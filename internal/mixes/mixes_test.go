package mixes

import (
	"testing"

	"aapm/internal/machine"
	"aapm/internal/pstate"
)

func TestAllMixesValidate(t *testing.T) {
	ws := All()
	if len(ws) != 4 {
		t.Fatalf("All = %d mixes", len(ws))
	}
	seen := map[string]bool{}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if seen[w.Name] {
			t.Errorf("duplicate mix %q", w.Name)
		}
		seen[w.Name] = true
	}
}

func TestOfficeUtilization(t *testing.T) {
	w := Office()
	ps := pstate.PentiumM755().Max()
	var busy, idle float64
	for _, p := range w.Phases {
		if p.Idle() {
			idle += p.IdleDuration.Seconds()
		} else {
			busy += p.TimeAt(ps).Seconds()
		}
	}
	util := busy / (busy + idle)
	if util < 0.2 || util > 0.4 {
		t.Errorf("office utilization = %.2f, want ~0.3", util)
	}
}

func TestWebServerUtilization(t *testing.T) {
	for _, util := range []float64{0.3, 0.5, 0.9, 1.0} {
		w := WebServer(util)
		ps := pstate.PentiumM755().Max()
		var busy, idle float64
		for _, p := range w.Phases {
			if p.Idle() {
				idle += p.IdleDuration.Seconds()
			} else {
				busy += p.TimeAt(ps).Seconds()
			}
		}
		got := busy / (busy + idle)
		if diff := got - util; diff > 0.05 || diff < -0.05 {
			t.Errorf("web(%g) utilization = %.2f", util, got)
		}
	}
}

func TestWebServerPanicsOnBadUtil(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WebServer(0) did not panic")
		}
	}()
	WebServer(0)
}

func TestBatchHasNoIdle(t *testing.T) {
	for _, p := range Batch().Phases {
		if p.Idle() {
			t.Error("batch contains idle phases")
		}
	}
}

func TestMixesRunnable(t *testing.T) {
	m, err := machine.New(machine.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range All() {
		run, err := m.Run(w, nil)
		if err != nil {
			t.Fatalf("%s: %v", w.Name, err)
		}
		if run.Duration <= 0 || run.Instructions <= 0 {
			t.Errorf("%s: degenerate run", w.Name)
		}
	}
}
