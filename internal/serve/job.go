package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"aapm/internal/control"
	"aapm/internal/experiment"
	"aapm/internal/obs"
	"aapm/internal/pstate"
	"aapm/internal/spec"
	"aapm/internal/trace"
)

// JobSpec describes one simulation job. Exactly one of Workload and
// Experiment must be set: a workload job runs one suite workload under
// one governor (Nodes > 1 co-simulates a shared-budget cluster of
// copies instead), an experiment job runs one registry entry and
// captures its rendered output.
//
// A spec is content-addressed: Normalize fills defaults, Canonical
// renders the filled spec deterministically, and the job ID is a hash
// of those bytes — so two submissions of the same spec (same seed
// included) are the same job, and the result cache is keyed by ID.
type JobSpec struct {
	// Workload is a suite workload name (see spec.Names).
	Workload string `json:"workload,omitempty"`
	// Governor is a control.Parse spec, e.g. "pm:limit=14.5";
	// empty means "none" (pinned start state). Must be "none" for
	// cluster jobs, whose coordinator manages per-node PM governors.
	Governor string `json:"governor,omitempty"`
	// Seed drives measurement noise and workload jitter.
	Seed int64 `json:"seed"`
	// Iterations overrides the workload's repeat count; 0 keeps the
	// suite default.
	Iterations int `json:"iterations,omitempty"`
	// Nodes co-simulates a shared-budget cluster of this many copies
	// of the workload; 0/1 is a single machine.
	Nodes int `json:"nodes,omitempty"`
	// BudgetW is the cluster's global power cap; required when
	// Nodes > 1, must be 0 otherwise.
	BudgetW float64 `json:"budget_w,omitempty"`
	// Levels selects the hierarchical fleet coordinator for cluster
	// jobs: 0/1 is the flat coordinator, >1 an allocation tree of that
	// depth (cluster.FleetConfig.Levels). Only valid when Nodes > 1.
	Levels int `json:"levels,omitempty"`
	// Fanout is the allocation tree's children-per-group bound; 0
	// selects the fleet default (64). Only valid when Levels > 1.
	Fanout int `json:"fanout,omitempty"`
	// Chain selects the measurement chain: "ni" (default, the
	// simulated DAQ with gain error/noise/quantization) or "ideal".
	Chain string `json:"chain,omitempty"`
	// Thermal enables the die-temperature model.
	Thermal bool `json:"thermal,omitempty"`
	// MaxTicks bounds the run; 0 keeps the platform default.
	MaxTicks int `json:"max_ticks,omitempty"`
	// Experiment names a registry entry (see experiment.Registry) to
	// run instead of a workload; the result is the rendered text.
	Experiment string `json:"experiment,omitempty"`
	// Scale is the experiment job's workload ScaleDown divisor;
	// 0/1 is full length. Must be 0 for workload jobs.
	Scale int `json:"scale,omitempty"`
	// Tenant attributes the job to one client population for the
	// fair-share scheduler and the intake rate limiter; empty is the
	// shared default tenant (and, being omitempty, leaves untenanted
	// specs' canonical bytes — and therefore their cache keys — exactly
	// as they were before tenancy existed). The tenant participates in
	// the content address, so identical specs from two tenants are
	// distinct jobs with separately attributed results.
	Tenant string `json:"tenant,omitempty"`
}

// Normalize returns the spec with defaults made explicit, so that
// specs differing only in spelled-out defaults canonicalize — and
// therefore cache — identically.
func (js JobSpec) Normalize() JobSpec {
	if js.Experiment == "" {
		if js.Governor == "" {
			js.Governor = "none"
		}
		if js.Nodes <= 1 {
			js.Nodes = 1
		}
		if js.Chain == "" {
			js.Chain = ChainNI
		}
	}
	if js.Scale == 1 {
		js.Scale = 0
	}
	return js
}

// Measurement chain names accepted by JobSpec.Chain.
const (
	ChainNI    = "ni"
	ChainIdeal = "ideal"
)

// Validate checks a normalized spec. The governor spec is fully
// parsed, so an invalid job is rejected at submission, never queued.
func (js JobSpec) Validate() error {
	if err := validTenant(js.Tenant); err != nil {
		return err
	}
	if js.Experiment != "" {
		if js.Workload != "" || js.Governor != "" || js.Nodes != 0 ||
			js.BudgetW != 0 || js.Chain != "" || js.Thermal || js.Iterations != 0 ||
			js.MaxTicks != 0 || js.Levels != 0 || js.Fanout != 0 {
			return fmt.Errorf("serve: experiment job %q takes only seed and scale", js.Experiment)
		}
		if js.Scale < 0 {
			return fmt.Errorf("serve: negative scale")
		}
		for _, e := range experiment.Registry() {
			if e.Name == js.Experiment {
				return nil
			}
		}
		return fmt.Errorf("serve: unknown experiment %q", js.Experiment)
	}
	if js.Workload == "" {
		return fmt.Errorf("serve: missing workload (or experiment)")
	}
	if _, err := spec.ByName(js.Workload); err != nil {
		return err
	}
	if _, err := control.Parse(js.Governor, pstate.PentiumM755()); err != nil {
		return err
	}
	if js.Iterations < 0 {
		return fmt.Errorf("serve: negative iterations")
	}
	if js.MaxTicks < 0 {
		return fmt.Errorf("serve: negative max_ticks")
	}
	if js.Scale != 0 {
		return fmt.Errorf("serve: scale applies only to experiment jobs")
	}
	switch js.Chain {
	case ChainNI, ChainIdeal:
	default:
		return fmt.Errorf("serve: unknown chain %q (want %q or %q)", js.Chain, ChainNI, ChainIdeal)
	}
	if math.IsNaN(js.BudgetW) || math.IsInf(js.BudgetW, 0) || js.BudgetW < 0 {
		return fmt.Errorf("serve: bad budget_w")
	}
	if js.Nodes > 1 {
		if js.BudgetW <= 0 {
			return fmt.Errorf("serve: cluster job needs budget_w > 0")
		}
		if js.Governor != "none" {
			return fmt.Errorf("serve: cluster jobs manage per-node PM governors; omit governor")
		}
		if js.Thermal {
			return fmt.Errorf("serve: cluster jobs do not support the thermal model")
		}
		if js.MaxTicks != 0 {
			return fmt.Errorf("serve: max_ticks applies only to single-machine jobs")
		}
		if js.Levels < 0 || js.Levels > 16 {
			return fmt.Errorf("serve: levels %d out of range [0, 16]", js.Levels)
		}
		if js.Fanout != 0 && js.Levels <= 1 {
			return fmt.Errorf("serve: fanout applies only to hierarchical jobs (levels > 1)")
		}
		if js.Fanout < 0 || js.Fanout == 1 {
			return fmt.Errorf("serve: fanout must be 0 (default) or >= 2")
		}
	} else {
		if js.BudgetW != 0 {
			return fmt.Errorf("serve: budget_w applies only to cluster jobs (nodes > 1)")
		}
		if js.Levels != 0 || js.Fanout != 0 {
			return fmt.Errorf("serve: levels/fanout apply only to cluster jobs (nodes > 1)")
		}
	}
	return nil
}

// validTenant bounds tenant names: they become telemetry label values
// and queue keys, so keep them short and printable.
func validTenant(t string) error {
	if len(t) > 64 {
		return fmt.Errorf("serve: tenant name longer than 64 bytes")
	}
	for _, r := range t {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_', r == '.':
		default:
			return fmt.Errorf("serve: tenant name %q: only [A-Za-z0-9._-] allowed", t)
		}
	}
	return nil
}

// Canonical renders the normalized spec as deterministic bytes — the
// result cache's key material. Go's encoding/json marshals struct
// fields in declaration order, so equal specs yield equal bytes.
func (js JobSpec) Canonical() []byte {
	b, err := json.Marshal(js.Normalize())
	if err != nil {
		// A JobSpec holds only scalars; Marshal cannot fail.
		panic(fmt.Sprintf("serve: canonicalizing spec: %v", err))
	}
	return b
}

// ID returns the job's deterministic content-addressed identifier:
// "j" + the first 16 hex digits of SHA-256 over the canonical spec.
func (js JobSpec) ID() string {
	sum := sha256.Sum256(js.Canonical())
	return "j" + hex.EncodeToString(sum[:8])
}

// State is a job's lifecycle state.
//
// The state machine:
//
//	queued ──▶ running ──▶ done
//	   │          ├──────▶ failed     (run error or deadline)
//	   │          ├──────▶ canceled   (DELETE while running)
//	   │          └──────▶ aborted    (shutdown cut the run short)
//	   ├─────────────────▶ canceled   (DELETE while queued)
//	   └─────────────────▶ aborted    (shutdown drained the queue)
//
// done, failed, canceled and aborted are terminal. Resubmitting a
// spec whose job is queued, running or done joins the existing job
// (the idempotency hit counter increments); resubmitting one whose
// job ended failed/canceled/aborted re-enqueues that job.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
	StateAborted  State = "aborted"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled, StateAborted:
		return true
	}
	return false
}

// Job is one submitted simulation job and, once done, its cached
// result.
type Job struct {
	// ID is the deterministic content hash of Spec; Spec is the
	// normalized submission.
	ID   string
	Spec JobSpec

	mu        sync.Mutex
	state     State
	err       string // terminal error detail (failed/canceled/aborted)
	hits      uint64 // idempotency hits: submissions served by this job after the first
	cancelled bool   // DELETE was observed (distinguishes cancel from deadline)
	cancel    context.CancelFunc
	started   time.Time
	enqueued  time.Time     // last submission/re-enqueue, for the queue-wait span
	wall      time.Duration // run wall-clock once terminal

	// traceID identifies the current run attempt's trace (re-minted on
	// re-enqueue). The trace handle carries sampling and the span sink;
	// the flight recorder is this attempt's always-on postmortem ring,
	// with flightDump holding its marshaled dump once the attempt ends
	// badly (failed/canceled/aborted, or terminal during an SLO burn).
	traceID    string
	trace      *obs.Trace
	flight     *obs.FlightRecorder
	flightDump []byte

	result []byte     // marshaled Result, stored once at completion — cache hits are byte-identical
	run    *trace.Run // single-machine run, for CSV rendering
	events *eventLog
}

// Status is the JSON shape of GET /api/jobs/{id}.
type Status struct {
	ID        string  `json:"id"`
	State     State   `json:"state"`
	Spec      JobSpec `json:"spec"`
	TraceID   string  `json:"trace_id,omitempty"`
	Error     string  `json:"error,omitempty"`
	CacheHits uint64  `json:"cache_hits"`
	WallMs    float64 `json:"wall_ms,omitempty"`
}

// status snapshots the job under its lock.
func (j *Job) status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:        j.ID,
		State:     j.state,
		Spec:      j.Spec,
		TraceID:   j.traceID,
		Error:     j.err,
		CacheHits: j.hits,
	}
	if j.wall > 0 {
		st.WallMs = float64(j.wall) / float64(time.Millisecond)
	}
	return st
}

// TraceID returns the job's current trace ID ("" before first
// admission).
func (j *Job) TraceID() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.traceID
}

// announceLocked records a lifecycle change on both postmortem
// surfaces: the NDJSON event stream and the flight recorder. Callers
// hold j.mu.
func (j *Job) announceLocked(st State, detail string) {
	j.events.emit(progressEvent{Type: "state", State: st, Detail: detail})
	j.flight.Note(obs.FlightEvent{Kind: "state", Name: string(st), Detail: detail})
}

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// NodeResult summarizes one cluster node's run inside a Result.
type NodeResult struct {
	Name        string  `json:"name"`
	DurationSec float64 `json:"duration_sec"`
	EnergyJ     float64 `json:"energy_j"`
	AvgPowerW   float64 `json:"avg_power_w"`
	Transitions int     `json:"transitions"`
}

// Result is the JSON shape of GET /api/jobs/{id}/result. Workload
// jobs fill the run summary (plus Nodes and the cluster aggregates
// for Nodes > 1); experiment jobs fill Output with the rendered text.
type Result struct {
	ID          string  `json:"id"`
	Workload    string  `json:"workload,omitempty"`
	Policy      string  `json:"policy,omitempty"`
	DurationSec float64 `json:"duration_sec,omitempty"`
	EnergyJ     float64 `json:"energy_j,omitempty"`
	AvgPowerW   float64 `json:"avg_power_w,omitempty"`
	Transitions int     `json:"transitions,omitempty"`
	Ticks       int     `json:"ticks,omitempty"`

	Nodes          []NodeResult `json:"nodes,omitempty"`
	MakespanSec    float64      `json:"makespan_sec,omitempty"`
	MachineSeconds float64      `json:"machine_seconds,omitempty"`
	PeakTotalW     float64      `json:"peak_total_w,omitempty"`

	Experiment string `json:"experiment,omitempty"`
	Output     string `json:"output,omitempty"`
}
