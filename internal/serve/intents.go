package serve

import (
	"encoding/json"
	"net/http"
	"strings"

	"aapm/internal/intent"
)

// handleIntents serves the intent collection: declarative submission
// and listing against the resident fleet.
func (s *Service) handleIntents(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		msg := "no resident fleet: start the service with fleet options to use intents"
		if s.fleetErr != "" {
			msg = "resident fleet failed to start: " + s.fleetErr
		}
		httpError(w, http.StatusServiceUnavailable, msg)
		return
	}
	switch r.Method {
	case http.MethodPost:
		s.handleIntentSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, map[string]any{
			"fleet":   s.fleet.info(),
			"intents": s.fleet.ctl.List(),
		})
	default:
		w.Header().Set("Allow", "GET, POST")
		httpError(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

func (s *Service) handleIntentSubmit(w http.ResponseWriter, r *http.Request) {
	var spec intent.Spec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, "bad intent spec: "+err.Error())
		return
	}
	st, created, reason := s.fleet.ctl.Submit(spec)
	if reason != nil {
		// Admission failure is a semantic rejection of a well-formed
		// request: 422, with the machine-readable reason alongside the
		// human-readable error.
		writeJSON(w, http.StatusUnprocessableEntity, map[string]any{
			"error":  reason.Error(),
			"reason": reason,
		})
		return
	}
	code := http.StatusOK // idempotent resubmission
	if created {
		code = http.StatusCreated
	}
	writeJSON(w, code, st)
}

// handleIntent routes /api/intents/{id}[/status].
func (s *Service) handleIntent(w http.ResponseWriter, r *http.Request) {
	if s.fleet == nil {
		msg := "no resident fleet: start the service with fleet options to use intents"
		if s.fleetErr != "" {
			msg = "resident fleet failed to start: " + s.fleetErr
		}
		httpError(w, http.StatusServiceUnavailable, msg)
		return
	}
	rest := strings.TrimPrefix(r.URL.Path, "/api/intents/")
	id, sub, _ := strings.Cut(rest, "/")
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			s.writeIntentStatus(w, id)
		case http.MethodDelete:
			if !s.fleet.ctl.Delete(id) {
				httpError(w, http.StatusNotFound, "unknown intent")
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"id": id, "deleted": true})
		default:
			w.Header().Set("Allow", "GET, DELETE")
			httpError(w, http.StatusMethodNotAllowed, "method not allowed")
		}
	case "status":
		if !requireGet(w, r) {
			return
		}
		s.writeIntentStatus(w, id)
	default:
		httpError(w, http.StatusNotFound, "unknown intent subresource")
	}
}

func (s *Service) writeIntentStatus(w http.ResponseWriter, id string) {
	st, ok := s.fleet.ctl.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, "unknown intent")
		return
	}
	writeJSON(w, http.StatusOK, st)
}
