// Package serve is the asynchronous run service: simulation jobs
// arrive over HTTP, wait in a bounded multi-tenant queue, and execute
// on a fixed worker pool, each under its own context with a deadline.
// The service is the scaling layer the ROADMAP's "heavy traffic" goal
// asks for — callers submit and poll (or stream progress) instead of
// holding a connection per simulation — and it is built to survive
// sustained traffic: the job table is bounded (LRU eviction of
// terminal jobs), intake is rate-limited per tenant, and the queue
// drains tenants by weighted fair share.
//
// Core pieces:
//
//   - Job model (job.go): a content-addressed JobSpec whose
//     deterministic ID doubles as the result-cache key, with a small
//     explicit lifecycle state machine and an optional tenant.
//   - Backpressure (queue.go, ratelimit.go): per-tenant FIFOs under a
//     global bound, drained by deficit round-robin with configurable
//     weights; a full queue or an over-rate tenant rejects the
//     submission immediately (HTTP 429 + a Retry-After computed from
//     the observed drain rate) rather than buffering unboundedly.
//   - Scheduler (this file): min(GOMAXPROCS, Config.Workers) workers
//     drain the queue, reusing the machine/cluster/experiment entry
//     points (exec.go) under a per-job context.Context with a
//     deadline.
//   - Bounded result store (store.go): completed jobs keep their
//     marshaled result, so a resubmission of the same canonical spec
//     is served from memory, byte-identical, with an idempotency hit
//     counter; MaxJobs/MaxResultBytes bound retention, evicting
//     least-recently-used terminal jobs (an evicted ID answers 404
//     with the eviction reason, and a fresh submission of the same
//     spec re-runs to the same bytes).
//   - Streaming progress (events.go): per-job NDJSON event streams
//     fed by the engine's machine.Hook bus.
//   - Telemetry (telemetry.go): queue depth (global and per tenant),
//     jobs by state, per-job wall histogram, cache hit/miss,
//     rejection/rate-limit/eviction counters and the retained-bytes
//     gauge on the shared registry.
//
// Simulation results through the serve path are byte-identical to
// direct runs — every serve-side consumer is a Hook-bus observer, and
// the golden-trace-through-serve test pins it.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
	"time"

	"aapm/internal/obs"
	"aapm/internal/telemetry"
	"aapm/internal/trace"
)

// ErrUnknownJob reports a job ID the service has never seen.
var ErrUnknownJob = errors.New("serve: unknown job")

// Config describes a run service.
type Config struct {
	// QueueDepth bounds the pending-job buffer across all tenants;
	// submissions beyond it are rejected with ErrQueueFull. 0 selects
	// 64.
	QueueDepth int
	// Workers caps the execution pool: the service runs
	// min(GOMAXPROCS, Workers) workers. 0 selects 4.
	Workers int
	// JobTimeout is each job's execution deadline (host wall-clock).
	// 0 selects 2 minutes — generous for virtual-time simulation.
	JobTimeout time.Duration
	// ProgressEvery samples every Nth interval into the job's event
	// stream. 0 selects 25 (4 events per simulated second).
	ProgressEvery int
	// EventBuffer is the per-job progress ring capacity (history
	// replayed to late stream subscribers). 0 selects 256.
	EventBuffer int

	// MaxJobs bounds the retained job table. When a submission would
	// grow it past MaxJobs, least-recently-used *terminal* jobs are
	// evicted (queued/running jobs are never evicted, so size MaxJobs
	// at least QueueDepth+Workers to keep the bound tight). An evicted
	// ID answers ErrUnknownJob with an eviction reason; resubmitting
	// its spec re-runs the job, deterministically byte-identical.
	// 0 disables eviction — retain everything, the round-1 behavior.
	MaxJobs int
	// MaxResultBytes bounds the summed cached-result bytes across
	// retained terminal jobs, evicting LRU terminal jobs when
	// exceeded. 0 disables the byte bound.
	MaxResultBytes int64
	// TenantWeights sets the deficit-round-robin drain weight per
	// tenant name ("" is the default tenant); missing tenants weigh 1.
	// Over any contended window a tenant completes jobs in proportion
	// to its weight.
	TenantWeights map[string]int
	// TenantRatePerSec turns on per-tenant intake rate limiting: each
	// tenant's token bucket refills at this rate and a submission that
	// would enqueue work (new spec, or re-run of a failed/canceled/
	// aborted one) spends a token. Cache-hit submissions are free.
	// 0 disables rate limiting.
	TenantRatePerSec float64
	// TenantBurst is the token bucket capacity; 0 selects
	// max(1, 2×TenantRatePerSec).
	TenantBurst int

	// Telemetry receives the service metrics (and each run's observer
	// series); nil allocates a registry private to this service.
	Telemetry *telemetry.Registry

	// TraceSampleRate is the head-sampling probability for job traces
	// (obs.Config.SampleRate). 0 disables span recording — trace IDs
	// are still minted and echoed in replies and event streams, but the
	// span store sees no traffic and runs pay nothing.
	TraceSampleRate float64
	// TenantTraceRate overrides TraceSampleRate per tenant name.
	TenantTraceRate map[string]float64
	// TraceExport, when non-nil, tees every sampled span to a Perfetto
	// trace-event stream.
	TraceExport *telemetry.TraceEventWriter
	// MaxTraces / MaxTraceSpans bound the in-process span store
	// (obs.Config). 0 selects the obs defaults (256 / 512).
	MaxTraces     int
	MaxTraceSpans int
	// FlightEvents is each job's flight-recorder ring capacity.
	// 0 selects 128.
	FlightEvents int
	// SLOObjectives replaces the default objective set (submit latency,
	// completion latency, error rate, tenant fairness) evaluated by the
	// burn-rate engine behind /api/slo and /healthz.
	SLOObjectives []obs.Objective

	// Fleet, when non-nil, hosts a resident synthetic fleet the intent
	// API (/api/intents) reconciles against. An invalid fleet config
	// leaves the service running without a fleet; the intent endpoints
	// answer 503 naming the error.
	Fleet *FleetOptions

	// beforeRun, when non-nil, runs in the worker goroutine after a
	// job turns running and before it executes — a seam for tests in
	// this package to hold workers at a known point. Unexported on
	// purpose: not part of the service's contract.
	beforeRun func(*Job)
	// now, when non-nil, replaces time.Now for the intake rate
	// limiter — a seam so rate-limit tests advance a fake clock
	// instead of sleeping.
	now func() time.Time
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if max := runtime.GOMAXPROCS(0); c.Workers > max {
		c.Workers = max
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 25
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	return c
}

// Service accepts, queues, executes and caches simulation jobs. Safe
// for concurrent use.
type Service struct {
	cfg     Config
	reg     *telemetry.Registry
	tel     *serveTelemetry
	q       *jobQueue
	limiter *tenantLimiter
	tracer  *obs.Tracer
	slo     *obs.Engine

	// fleet is the resident intent-reconciled fleet (nil when not
	// configured, or when its construction failed — see fleetErr).
	fleet    *fleetHost
	fleetErr string

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu    sync.Mutex
	store *jobStore

	// wallEWMA tracks an exponentially weighted moving average of job
	// wall-clock seconds (float64 bits) — the drain-rate estimate
	// behind RetryAfter. Zero until the first job completes.
	wallEWMA atomic.Uint64

	wg     sync.WaitGroup
	closed atomic.Bool
}

// New starts a run service: its workers are live and draining until
// Shutdown.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	tel := newServeTelemetry(reg)
	objectives := cfg.SLOObjectives
	if objectives == nil {
		objectives = DefaultObjectives(cfg.TenantWeights)
	}
	s := &Service{
		cfg:     cfg,
		reg:     reg,
		tel:     tel,
		store:   newJobStore(cfg.MaxJobs, cfg.MaxResultBytes),
		limiter: newTenantLimiter(cfg.TenantRatePerSec, cfg.TenantBurst, cfg.now),
		tracer: obs.NewTracer(obs.Config{
			SampleRate:       cfg.TraceSampleRate,
			TenantRate:       cfg.TenantTraceRate,
			MaxTraces:        cfg.MaxTraces,
			MaxSpansPerTrace: cfg.MaxTraceSpans,
			Export:           cfg.TraceExport,
		}),
		slo: obs.NewEngine(objectives, cfg.now),
	}
	weightFor := func(tenant string) int { return cfg.TenantWeights[tenant] }
	s.q = newJobQueue(cfg.QueueDepth, weightFor,
		func(n int) { tel.queueDepth.Set(float64(n)) },
		tel.setTenantDepth)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.Fleet != nil {
		fl := obs.NewFlightRecorder(cfg.FlightEvents)
		tr := s.tracer.Start("fleet-intents", "", fl)
		host, err := newFleetHost(*cfg.Fleet, reg, tr, fl)
		if err != nil {
			s.fleetErr = err.Error()
		} else {
			s.fleet = host
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the telemetry registry the service feeds.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Workers returns the execution pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// QueueLen returns the current backlog size.
func (s *Service) QueueLen() int { return s.q.len() }

// JobCount returns the number of retained jobs — bounded by
// Config.MaxJobs (plus in-flight slack) when eviction is on.
func (s *Service) JobCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.len()
}

// RetryAfter estimates how long a rejected submitter should wait
// before retrying: the observed mean job wall-clock times the backlog,
// divided across the worker pool, clamped to [1, 60] seconds. Before
// any job has completed (no drain-rate observation yet) it reports the
// 1 s floor. The HTTP layer stamps this on every 429, queue-full and
// rate-limited alike.
func (s *Service) RetryAfter() time.Duration {
	secs := 1.0
	if w := math.Float64frombits(s.wallEWMA.Load()); w > 0 {
		est := w * float64(s.q.len()) / float64(s.cfg.Workers)
		secs = math.Ceil(est)
	}
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return time.Duration(secs) * time.Second
}

// noteWall folds one completed job's wall-clock into the drain-rate
// EWMA (alpha 0.2 — a few jobs of memory, quick to track load shifts).
func (s *Service) noteWall(wall time.Duration) {
	const alpha = 0.2
	sec := wall.Seconds()
	for {
		old := s.wallEWMA.Load()
		prev := math.Float64frombits(old)
		next := sec
		if prev > 0 {
			next = alpha*sec + (1-alpha)*prev
		}
		if s.wallEWMA.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// EvictedReason reports whether id was evicted from the bounded store
// and why ("lru" or "bytes").
func (s *Service) EvictedReason(id string) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.evictedReason(id)
}

// Submit validates and enqueues a job. created reports whether the
// submission put (or re-put) a job on the queue: false means an
// existing job with the same canonical spec absorbed the submission —
// the idempotency/cache path, counted on the job and in telemetry.
// Terminal-but-unsuccessful jobs (failed, canceled, aborted) are
// re-enqueued by a fresh submission of the same spec. Submissions that
// would enqueue work spend an intake token when rate limiting is on;
// an exhausted tenant bucket rejects with ErrRateLimited.
func (s *Service) Submit(js JobSpec) (j *Job, created bool, err error) {
	intakeStart := time.Now()
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	norm := js.Normalize()
	if err := norm.Validate(); err != nil {
		return nil, false, err
	}
	id := norm.ID()

	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.store.get(id); ok {
		j.mu.Lock()
		if j.state.Terminal() && j.state != StateDone {
			// The previous attempt went nowhere; run it again — which
			// enqueues work, so it pays the intake token.
			if err := s.admitLocked(j); err != nil {
				j.mu.Unlock()
				return nil, false, err
			}
			from := j.state
			j.state = StateQueued
			j.err = ""
			j.cancelled = false
			j.result = nil
			j.run = nil
			j.wall = 0
			// A re-enqueue is a fresh attempt: new trace, new flight
			// ring, event sequence restarting at 1.
			s.mintTraceLocked(j, intakeStart)
			j.announceLocked(StateQueued, "")
			j.mu.Unlock()
			s.store.markLive(id)
			s.tel.resultBytes.Set(float64(s.store.resultBytes()))
			s.tel.transition(from, StateQueued)
			s.slo.ObserveLatency(SLOSubmitLatency, time.Since(intakeStart).Seconds())
			return j, true, nil
		}
		// Queued, running or done: the existing job satisfies this
		// submission (for done, straight from the result cache).
		j.hits++
		j.mu.Unlock()
		s.tel.cacheHits.Inc()
		s.slo.ObserveLatency(SLOSubmitLatency, time.Since(intakeStart).Seconds())
		return j, false, nil
	}

	// The trace, flight ring and event log must exist before admitLocked
	// makes the job poppable — a worker may lock it the moment it hits
	// the queue.
	j = &Job{ID: id, Spec: norm, state: StateQueued}
	s.mintTraceLocked(j, intakeStart)
	if err := s.admitLocked(j); err != nil {
		return nil, false, err
	}
	s.store.add(j)
	s.evictLocked()
	s.tel.cacheMiss.Inc()
	s.tel.transition("", StateQueued)
	j.mu.Lock()
	j.announceLocked(StateQueued, "")
	j.mu.Unlock()
	s.slo.ObserveLatency(SLOSubmitLatency, time.Since(intakeStart).Seconds())
	return j, true, nil
}

// mintTraceLocked starts a fresh trace + flight recorder for one run
// attempt of j (first admission or re-enqueue), replaces the event log
// so the NDJSON sequence restarts at 1 under the new trace ID, and
// records the intake span. Callers hold s.mu, plus j.mu when j is
// already shared (the re-enqueue path).
func (s *Service) mintTraceLocked(j *Job, intakeStart time.Time) {
	fl := obs.NewFlightRecorder(s.cfg.FlightEvents)
	tr := s.tracer.Start(j.ID, j.Spec.Tenant, fl)
	j.flight, j.trace, j.traceID = fl, tr, tr.TraceID()
	j.flightDump = nil
	j.enqueued = intakeStart
	j.events = newJobEventLog(s.cfg.EventBuffer, j.ID, j.traceID)
	tr.Record(obs.Span{
		Name:      "intake",
		Start:     intakeStart,
		WallDurUS: float64(time.Since(intakeStart)) / float64(time.Microsecond),
	})
}

// admitLocked passes j through the tenant rate limiter and onto the
// queue, counting rejections. A token spent on a push the queue then
// rejects is refunded — the tenant did not get the work it paid for.
func (s *Service) admitLocked(j *Job) error {
	tenant := j.Spec.Tenant
	if !s.limiter.allow(tenant) {
		s.tel.tenantRateLimited(tenant)
		return fmt.Errorf("%w (tenant %q)", ErrRateLimited, tenantLabel(tenant))
	}
	if err := s.q.push(j); err != nil {
		s.limiter.refund(tenant)
		if errors.Is(err, ErrQueueFull) {
			s.tel.rejected.Inc()
		}
		return err
	}
	return nil
}

// noteTerminal records a terminal transition in the bounded store:
// the job becomes evictable carrying resultLen cached bytes, its wall
// time (if it ran) feeds the drain-rate EWMA, and the store trims back
// under its bounds. Callers must not hold j.mu.
func (s *Service) noteTerminal(j *Job, resultLen int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// A concurrent resubmission may have re-enqueued the job between
	// the worker's state write and this bookkeeping; a live job must
	// not be marked evictable.
	if !j.State().Terminal() {
		return
	}
	s.store.markTerminal(j.ID, resultLen)
	s.evictLocked()
}

// evictLocked trims the store under its bounds, reflecting each
// eviction in telemetry.
func (s *Service) evictLocked() {
	s.store.evict(func(j *Job, reason string) {
		s.tel.evicted(j.State(), reason)
	})
	s.tel.resultBytes.Set(float64(s.store.resultBytes()))
}

// Get returns a job by ID, marking it recently used.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store.get(id)
}

// List returns every retained job's status in submission order.
func (s *Service) List() []Status {
	s.mu.Lock()
	jobs := s.store.list()
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	return out
}

// Cancel stops a job: a queued job leaves the queue and turns
// canceled immediately; a running job's context is canceled and the
// job turns canceled once its worker observes it (poll the status).
// Terminal jobs are left as they are; the returned state is the
// job's state as of the call.
func (s *Service) Cancel(id string) (State, error) {
	s.mu.Lock()
	j, ok := s.store.get(id)
	s.mu.Unlock()
	if !ok {
		return "", ErrUnknownJob
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		// Best-effort queue removal; if a worker popped the job but
		// has not started it, the state check in runJob skips it.
		s.q.remove(id)
		j.state = StateCanceled
		j.err = "canceled before start"
		j.cancelled = true
		j.announceLocked(StateCanceled, j.err)
		ev, fl := j.events, j.flight
		j.mu.Unlock()
		ev.close()
		s.tel.transition(StateQueued, StateCanceled)
		s.dumpFlight(j, fl, StateCanceled)
		s.noteTerminal(j, 0)
		return StateCanceled, nil
	case StateRunning:
		j.cancelled = true
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
		return StateRunning, nil
	default:
		st := j.state
		j.mu.Unlock()
		return st, nil
	}
}

// worker drains the queue until the service shuts down.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one dequeued job under a fresh context with the
// configured deadline and resolves its terminal state. The worker
// goroutine carries pprof labels (tenant, job) for the duration, so
// CPU profiles attribute simulation time to tenants and jobs.
func (s *Service) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled between pop and start.
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	defer cancel()
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	tr, enqueued := j.trace, j.enqueued
	j.announceLocked(StateRunning, "")
	j.mu.Unlock()
	tr.Record(obs.Span{
		Name:      "queue-wait",
		Start:     enqueued,
		WallDurUS: float64(j.started.Sub(enqueued)) / float64(time.Microsecond),
	})
	s.tel.transition(StateQueued, StateRunning)
	if s.cfg.beforeRun != nil {
		s.cfg.beforeRun(j)
	}

	ctx = obs.NewContext(ctx, tr)
	var res Result
	var run *trace.Run
	var err error
	pprof.Do(ctx, pprof.Labels(
		"aapm_tenant", tenantLabel(j.Spec.Tenant),
		"aapm_job", j.ID,
	), func(ctx context.Context) {
		res, run, err = s.execute(ctx, j)
	})
	wall := time.Since(j.started)
	s.tel.jobWall.Observe(wall.Seconds())
	s.noteWall(wall)
	tr.Record(obs.Span{
		Name:      "run",
		Start:     j.started,
		WallDurUS: float64(wall) / float64(time.Microsecond),
	})

	to, detail := StateDone, ""
	if err != nil {
		j.mu.Lock()
		cancelled := j.cancelled
		j.mu.Unlock()
		switch {
		case s.baseCtx.Err() != nil:
			to, detail = StateAborted, "service shut down mid-run"
		case cancelled:
			to, detail = StateCanceled, "canceled mid-run"
		case errors.Is(err, context.DeadlineExceeded):
			to, detail = StateFailed, fmt.Sprintf("deadline exceeded (%s)", s.cfg.JobTimeout)
		default:
			to, detail = StateFailed, err.Error()
		}
	}

	j.mu.Lock()
	j.wall = wall
	j.state = to
	j.err = detail
	var resultLen int
	if err == nil {
		b, merr := json.Marshal(res)
		if merr != nil {
			// A Result holds only scalars and strings; Marshal cannot
			// fail — but never store a half-built cache entry.
			j.state, j.err = StateFailed, merr.Error()
			to = StateFailed
		} else {
			j.result = b
			j.run = run
			resultLen = len(b)
		}
	}
	j.announceLocked(to, detail)
	ev, fl := j.events, j.flight
	j.mu.Unlock()
	ev.close()
	s.tel.transition(StateRunning, to)
	if to == StateDone {
		s.tel.tenantCompleted(j.Spec.Tenant)
	}

	// Feed the SLO engine: completion latency for every finished run,
	// the error budget (failed/aborted spend it; done and deliberate
	// cancels do not), and the per-tenant fairness share on completions.
	s.slo.ObserveLatency(SLOCompletionLatency, wall.Seconds())
	s.slo.Observe(SLOErrorRate, to == StateDone || to == StateCanceled)
	if to == StateDone {
		s.slo.ObserveKey(SLOTenantFairness, tenantLabel(j.Spec.Tenant))
	}
	s.dumpFlight(j, fl, to)
	s.noteTerminal(j, resultLen)
}

// dumpFlight persists the attempt's flight-recorder ring into the job
// record when the outcome warrants a postmortem: any non-done terminal
// state, or a terminal transition while an SLO objective is burning.
func (s *Service) dumpFlight(j *Job, fl *obs.FlightRecorder, to State) {
	if fl == nil {
		return
	}
	if to == StateDone {
		if healthy, _ := s.slo.Healthy(); healthy {
			return
		}
	}
	b, err := json.Marshal(fl.Dump())
	if err != nil {
		return // a FlightDump holds only scalars; Marshal cannot fail
	}
	j.mu.Lock()
	j.flightDump = b
	j.mu.Unlock()
}

// Shutdown gracefully stops the service: intake closes (submissions
// get ErrClosed), still-queued jobs turn aborted without running, and
// running jobs drain. If ctx expires before the drain completes, the
// running jobs' contexts are canceled and Shutdown waits for the
// workers to observe it, returning ctx's error.
func (s *Service) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	if s.fleet != nil {
		s.fleet.stop()
	}
	for _, j := range s.q.close() {
		j.mu.Lock()
		if j.state != StateQueued {
			j.mu.Unlock()
			continue
		}
		j.state = StateAborted
		j.err = "service shut down before the job started"
		j.announceLocked(StateAborted, j.err)
		ev, fl := j.events, j.flight
		j.mu.Unlock()
		ev.close()
		s.tel.transition(StateQueued, StateAborted)
		s.dumpFlight(j, fl, StateAborted)
		s.noteTerminal(j, 0)
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		err = ctx.Err()
	}
	s.baseCancel()
	return err
}
