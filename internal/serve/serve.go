// Package serve is the asynchronous run service: simulation jobs
// arrive over HTTP, wait in a bounded FIFO queue, and execute on a
// fixed worker pool, each under its own context with a deadline. The
// service is the scaling layer the ROADMAP's "heavy traffic" goal
// asks for — callers submit and poll (or stream progress) instead of
// holding a connection per simulation.
//
// Core pieces:
//
//   - Job model (job.go): a content-addressed JobSpec whose
//     deterministic ID doubles as the result-cache key, with a small
//     explicit lifecycle state machine.
//   - Backpressure (queue.go): a bounded FIFO; a full queue rejects
//     submissions immediately (HTTP 429 + Retry-After) rather than
//     buffering unboundedly.
//   - Scheduler (this file): min(GOMAXPROCS, Config.Workers) workers
//     drain the queue, reusing the machine/cluster/experiment entry
//     points (exec.go) under a per-job context.Context with a
//     deadline.
//   - Result cache: completed jobs keep their marshaled result, so a
//     resubmission of the same canonical spec is served from memory,
//     byte-identical, with an idempotency hit counter.
//   - Streaming progress (events.go): per-job NDJSON event streams
//     fed by the engine's machine.Hook bus.
//   - Telemetry (telemetry.go): queue depth, jobs by state, per-job
//     wall histogram, cache hit/miss and rejection counters on the
//     shared registry.
//
// Simulation results through the serve path are byte-identical to
// direct runs — every serve-side consumer is a Hook-bus observer, and
// the golden-trace-through-serve test pins it.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"aapm/internal/telemetry"
)

// ErrUnknownJob reports a job ID the service has never seen.
var ErrUnknownJob = errors.New("serve: unknown job")

// Config describes a run service.
type Config struct {
	// QueueDepth bounds the pending-job FIFO; submissions beyond it
	// are rejected with ErrQueueFull. 0 selects 64.
	QueueDepth int
	// Workers caps the execution pool: the service runs
	// min(GOMAXPROCS, Workers) workers. 0 selects 4.
	Workers int
	// JobTimeout is each job's execution deadline (host wall-clock).
	// 0 selects 2 minutes — generous for virtual-time simulation.
	JobTimeout time.Duration
	// ProgressEvery samples every Nth interval into the job's event
	// stream. 0 selects 25 (4 events per simulated second).
	ProgressEvery int
	// EventBuffer is the per-job progress ring capacity (history
	// replayed to late stream subscribers). 0 selects 256.
	EventBuffer int
	// Telemetry receives the service metrics (and each run's observer
	// series); nil allocates a registry private to this service.
	Telemetry *telemetry.Registry

	// beforeRun, when non-nil, runs in the worker goroutine after a
	// job turns running and before it executes — a seam for tests in
	// this package to hold workers at a known point. Unexported on
	// purpose: not part of the service's contract.
	beforeRun func(*Job)
}

// withDefaults resolves the zero values.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if max := runtime.GOMAXPROCS(0); c.Workers > max {
		c.Workers = max
	}
	if c.JobTimeout <= 0 {
		c.JobTimeout = 2 * time.Minute
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 25
	}
	if c.EventBuffer <= 0 {
		c.EventBuffer = 256
	}
	return c
}

// Service accepts, queues, executes and caches simulation jobs. Safe
// for concurrent use.
type Service struct {
	cfg Config
	reg *telemetry.Registry
	tel *serveTelemetry
	q   *jobQueue

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for listings

	wg     sync.WaitGroup
	closed atomic.Bool
}

// New starts a run service: its workers are live and draining until
// Shutdown.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	reg := cfg.Telemetry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	tel := newServeTelemetry(reg)
	s := &Service{
		cfg:  cfg,
		reg:  reg,
		tel:  tel,
		jobs: make(map[string]*Job),
	}
	s.q = newJobQueue(cfg.QueueDepth, func(n int) { tel.queueDepth.Set(float64(n)) })
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Registry returns the telemetry registry the service feeds.
func (s *Service) Registry() *telemetry.Registry { return s.reg }

// Workers returns the execution pool size.
func (s *Service) Workers() int { return s.cfg.Workers }

// QueueLen returns the current backlog size.
func (s *Service) QueueLen() int { return s.q.len() }

// Submit validates and enqueues a job. created reports whether the
// submission put (or re-put) a job on the queue: false means an
// existing job with the same canonical spec absorbed the submission —
// the idempotency/cache path, counted on the job and in telemetry.
// Terminal-but-unsuccessful jobs (failed, canceled, aborted) are
// re-enqueued by a fresh submission of the same spec.
func (s *Service) Submit(js JobSpec) (j *Job, created bool, err error) {
	if s.closed.Load() {
		return nil, false, ErrClosed
	}
	norm := js.Normalize()
	if err := norm.Validate(); err != nil {
		return nil, false, err
	}
	id := norm.ID()

	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		j.mu.Lock()
		if j.state.Terminal() && j.state != StateDone {
			// The previous attempt went nowhere; run it again.
			if err := s.q.push(j); err != nil {
				j.mu.Unlock()
				if errors.Is(err, ErrQueueFull) {
					s.tel.rejected.Inc()
				}
				return nil, false, err
			}
			from := j.state
			j.state = StateQueued
			j.err = ""
			j.cancelled = false
			j.result = nil
			j.run = nil
			j.wall = 0
			j.events = newEventLog(s.cfg.EventBuffer)
			j.events.publish(marshalEvent(progressEvent{Type: "state", State: StateQueued}))
			j.mu.Unlock()
			s.tel.transition(from, StateQueued)
			return j, true, nil
		}
		// Queued, running or done: the existing job satisfies this
		// submission (for done, straight from the result cache).
		j.hits++
		j.mu.Unlock()
		s.tel.cacheHits.Inc()
		return j, false, nil
	}

	j = &Job{ID: id, Spec: norm, state: StateQueued, events: newEventLog(s.cfg.EventBuffer)}
	if err := s.q.push(j); err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.tel.rejected.Inc()
		}
		return nil, false, err
	}
	s.jobs[id] = j
	s.order = append(s.order, id)
	s.tel.cacheMiss.Inc()
	s.tel.transition("", StateQueued)
	j.events.publish(marshalEvent(progressEvent{Type: "state", State: StateQueued}))
	return j, true, nil
}

// Get returns a job by ID.
func (s *Service) Get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// List returns every job's status in submission order.
func (s *Service) List() []Status {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status())
	}
	return out
}

// Cancel stops a job: a queued job leaves the queue and turns
// canceled immediately; a running job's context is canceled and the
// job turns canceled once its worker observes it (poll the status).
// Terminal jobs are left as they are; the returned state is the
// job's state as of the call.
func (s *Service) Cancel(id string) (State, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return "", ErrUnknownJob
	}
	j.mu.Lock()
	switch j.state {
	case StateQueued:
		// Best-effort queue removal; if a worker popped the job but
		// has not started it, the state check in runJob skips it.
		s.q.remove(id)
		j.state = StateCanceled
		j.err = "canceled before start"
		j.cancelled = true
		j.events.publish(marshalEvent(progressEvent{Type: "state", State: StateCanceled, Detail: j.err}))
		ev := j.events
		j.mu.Unlock()
		ev.close()
		s.tel.transition(StateQueued, StateCanceled)
		return StateCanceled, nil
	case StateRunning:
		j.cancelled = true
		if j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
		return StateRunning, nil
	default:
		st := j.state
		j.mu.Unlock()
		return st, nil
	}
}

// worker drains the queue until the service shuts down.
func (s *Service) worker() {
	defer s.wg.Done()
	for {
		j, ok := s.q.pop()
		if !ok {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one dequeued job under a fresh context with the
// configured deadline and resolves its terminal state.
func (s *Service) runJob(j *Job) {
	j.mu.Lock()
	if j.state != StateQueued {
		// Canceled between pop and start.
		j.mu.Unlock()
		return
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, s.cfg.JobTimeout)
	defer cancel()
	j.cancel = cancel
	j.state = StateRunning
	j.started = time.Now()
	j.events.publish(marshalEvent(progressEvent{Type: "state", State: StateRunning}))
	j.mu.Unlock()
	s.tel.transition(StateQueued, StateRunning)
	if s.cfg.beforeRun != nil {
		s.cfg.beforeRun(j)
	}

	res, run, err := s.execute(ctx, j)
	wall := time.Since(j.started)
	s.tel.jobWall.Observe(wall.Seconds())

	to, detail := StateDone, ""
	if err != nil {
		j.mu.Lock()
		cancelled := j.cancelled
		j.mu.Unlock()
		switch {
		case s.baseCtx.Err() != nil:
			to, detail = StateAborted, "service shut down mid-run"
		case cancelled:
			to, detail = StateCanceled, "canceled mid-run"
		case errors.Is(err, context.DeadlineExceeded):
			to, detail = StateFailed, fmt.Sprintf("deadline exceeded (%s)", s.cfg.JobTimeout)
		default:
			to, detail = StateFailed, err.Error()
		}
	}

	j.mu.Lock()
	j.wall = wall
	j.state = to
	j.err = detail
	if err == nil {
		b, merr := json.Marshal(res)
		if merr != nil {
			// A Result holds only scalars and strings; Marshal cannot
			// fail — but never store a half-built cache entry.
			j.state, j.err = StateFailed, merr.Error()
			to = StateFailed
		} else {
			j.result = b
			j.run = run
		}
	}
	j.events.publish(marshalEvent(progressEvent{Type: "state", State: to, Detail: detail}))
	ev := j.events
	j.mu.Unlock()
	ev.close()
	s.tel.transition(StateRunning, to)
}

// Shutdown gracefully stops the service: intake closes (submissions
// get ErrClosed), still-queued jobs turn aborted without running, and
// running jobs drain. If ctx expires before the drain completes, the
// running jobs' contexts are canceled and Shutdown waits for the
// workers to observe it, returning ctx's error.
func (s *Service) Shutdown(ctx context.Context) error {
	s.closed.Store(true)
	for _, j := range s.q.close() {
		j.mu.Lock()
		if j.state != StateQueued {
			j.mu.Unlock()
			continue
		}
		j.state = StateAborted
		j.err = "service shut down before the job started"
		j.events.publish(marshalEvent(progressEvent{Type: "state", State: StateAborted, Detail: j.err}))
		ev := j.events
		j.mu.Unlock()
		ev.close()
		s.tel.transition(StateQueued, StateAborted)
	}
	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	var err error
	select {
	case <-drained:
	case <-ctx.Done():
		s.baseCancel()
		<-drained
		err = ctx.Err()
	}
	s.baseCancel()
	return err
}
