package serve

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"aapm/internal/cluster"
	"aapm/internal/obs"
	"aapm/internal/control"
	"aapm/internal/experiment"
	"aapm/internal/kernel"
	"aapm/internal/machine"
	"aapm/internal/sensor"
	"aapm/internal/spec"
	"aapm/internal/telemetry"
	"aapm/internal/thermal"
	"aapm/internal/trace"
)

// execute runs one job under its context, dispatching on the spec
// kind. It returns the JSON result payload and, for single-machine
// jobs, the recorded run (the CSV view). Cancellation and deadline
// both surface as ctx's error.
func (s *Service) execute(ctx context.Context, j *Job) (Result, *trace.Run, error) {
	switch {
	case j.Spec.Experiment != "":
		return s.runExperiment(ctx, j)
	case j.Spec.Nodes > 1:
		return s.runCluster(ctx, j)
	default:
		return s.runSingle(ctx, j)
	}
}

// chainFor resolves the spec's measurement chain name.
func chainFor(name string) sensor.Chain {
	if name == ChainNI {
		return sensor.NIDefault()
	}
	return sensor.Chain{} // ideal
}

// runSingle executes one workload under one governor on a fresh
// machine — the same entry points aapm-run and the dash use, stepped
// here so the job's context is honored between intervals. The trace
// is identical to a direct machine run of the same spec (the hooks on
// the bus are purely observational), which the golden-through-serve
// test pins byte-for-byte.
func (s *Service) runSingle(ctx context.Context, j *Job) (Result, *trace.Run, error) {
	js := j.Spec
	w, err := spec.ByName(js.Workload)
	if err != nil {
		return Result{}, nil, err
	}
	if js.Iterations > 0 {
		w.Iterations = js.Iterations
	}
	mcfg := machine.Config{Chain: chainFor(js.Chain), Seed: js.Seed, MaxTicks: js.MaxTicks}
	if js.Thermal {
		tc := thermal.PentiumMThermal()
		mcfg.Thermal = &tc
	}
	m, err := machine.New(mcfg)
	if err != nil {
		return Result{}, nil, err
	}
	gov, err := control.Parse(js.Governor, m.Table())
	if err != nil {
		return Result{}, nil, err
	}
	policy := "none"
	if gov != nil {
		policy = gov.Name()
	}
	// The run is stepped through the batch kernel. The observer hooks
	// demote it to the kernel's generic body, which replicates the
	// staged event order exactly, so the trace stays byte-identical to
	// a direct machine run of the same spec — the golden-through-serve
	// test pins that equivalence, and with it the kernel itself.
	batch, err := kernel.NewBatch([]kernel.BatchNode{{Machine: m, Workload: w, Governor: gov}}, kernel.BatchOptions{
		RetainTraces: true,
		Hooks: func(int) []machine.Hook {
			return []machine.Hook{
				newProgressHook(j.events, j.flight, "", s.cfg.ProgressEvery),
				telemetry.NewObserver(s.reg, js.Workload, policy),
			}
		},
	})
	if err != nil {
		return Result{}, nil, err
	}
	stepStart := time.Now()
	for {
		if err := ctx.Err(); err != nil {
			return Result{}, nil, err
		}
		if !batch.StepNode(0) {
			break
		}
	}
	if err := batch.NodeErr(0); err != nil {
		return Result{}, nil, err
	}
	run := batch.Result(0)
	if tr := obs.FromContext(ctx); tr.Sampled() {
		tr.Record(obs.Span{
			Name:      "shard-step",
			Start:     stepStart,
			VirtDurUS: float64(run.Duration) / float64(time.Microsecond),
			WallDurUS: float64(time.Since(stepStart)) / float64(time.Microsecond),
			Attrs: map[string]float64{
				"nodes": 1, "ticks": float64(len(run.Rows)),
			},
		})
	}
	return Result{
		ID:          j.ID,
		Workload:    run.Workload,
		Policy:      run.Policy,
		DurationSec: run.Duration.Seconds(),
		EnergyJ:     run.EnergyJ,
		AvgPowerW:   run.AvgPowerW(),
		Transitions: run.Transitions,
		Ticks:       len(run.Rows),
	}, run, nil
}

// runCluster co-simulates Nodes copies of the workload under the
// shared-budget coordinator (cluster.RunContext), streaming per-node
// progress into the job's event log.
func (s *Service) runCluster(ctx context.Context, j *Job) (Result, *trace.Run, error) {
	js := j.Spec
	w, err := spec.ByName(js.Workload)
	if err != nil {
		return Result{}, nil, err
	}
	if js.Iterations > 0 {
		w.Iterations = js.Iterations
	}
	nodes := make([]cluster.Node, js.Nodes)
	for i := range nodes {
		nodes[i] = cluster.Node{Name: fmt.Sprintf("%s-%d", js.Workload, i), Workload: w}
	}
	if js.Levels > 1 {
		return s.runFleet(ctx, j, nodes)
	}
	res, err := cluster.RunContext(ctx, cluster.Config{
		BudgetW:   js.BudgetW,
		Nodes:     nodes,
		Seed:      js.Seed,
		Chain:     chainFor(js.Chain),
		Telemetry: s.reg,
		Observe: func(i int, name string) machine.Hook {
			return newProgressHook(j.events, j.flight, name, s.cfg.ProgressEvery)
		},
	})
	if err != nil {
		// The coordinator wraps a context abort; report the cause so
		// the scheduler classifies it as canceled/aborted, not failed.
		if cerr := ctx.Err(); cerr != nil {
			return Result{}, nil, cerr
		}
		return Result{}, nil, err
	}
	out := Result{
		ID:             j.ID,
		Workload:       js.Workload,
		Policy:         "cluster-pm",
		MakespanSec:    res.Makespan.Seconds(),
		MachineSeconds: res.MachineSeconds,
		PeakTotalW:     res.PeakTotalW,
	}
	for i, run := range res.Runs {
		out.Nodes = append(out.Nodes, NodeResult{
			Name:        res.Names[i],
			DurationSec: run.Duration.Seconds(),
			EnergyJ:     run.EnergyJ,
			AvgPowerW:   run.AvgPowerW(),
			Transitions: run.Transitions,
		})
		out.EnergyJ += run.EnergyJ
		out.Transitions += run.Transitions
		out.Ticks += len(run.Rows)
	}
	out.DurationSec = res.Makespan.Seconds()
	return out, nil, nil
}

// fleetNodeListCap bounds the per-node entries a fleet job's result
// carries: a 10⁵-node result would otherwise be megabytes of JSON the
// caller almost never wants. The aggregates always cover every node.
const fleetNodeListCap = 256

// runFleet co-simulates the nodes under the hierarchical fleet
// coordinator (cluster.RunFleetContext). Per-interval traces are not
// retained — fleet jobs report aggregates plus a capped per-node
// summary list.
func (s *Service) runFleet(ctx context.Context, j *Job, nodes []cluster.Node) (Result, *trace.Run, error) {
	js := j.Spec
	res, err := cluster.RunFleetContext(ctx, cluster.FleetConfig{
		BudgetW:   js.BudgetW,
		Nodes:     nodes,
		Seed:      js.Seed,
		Chain:     chainFor(js.Chain),
		Levels:    js.Levels,
		Fanout:    js.Fanout,
		Telemetry: s.reg,
	})
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Result{}, nil, cerr
		}
		return Result{}, nil, err
	}
	out := Result{
		ID:             j.ID,
		Workload:       js.Workload,
		Policy:         fmt.Sprintf("fleet-pm/L%d", res.Levels),
		MakespanSec:    res.Makespan.Seconds(),
		MachineSeconds: res.MachineSeconds,
		PeakTotalW:     res.PeakTotalW,
		Ticks:          int(res.NodeTicks),
	}
	for i, run := range res.Runs {
		out.EnergyJ += run.EnergyJ
		out.Transitions += run.Transitions
		if i >= fleetNodeListCap {
			continue
		}
		out.Nodes = append(out.Nodes, NodeResult{
			Name:        res.Names[i],
			DurationSec: run.Duration.Seconds(),
			EnergyJ:     run.EnergyJ,
			AvgPowerW:   run.AvgPowerW(),
			Transitions: run.Transitions,
		})
	}
	out.DurationSec = res.Makespan.Seconds()
	return out, nil, nil
}

// runExperiment computes one registry entry on a fresh experiment
// context wired to the job's context (Options.Ctx) and event log
// (Options.Observer), capturing the rendered output as the result.
func (s *Service) runExperiment(ctx context.Context, j *Job) (Result, *trace.Run, error) {
	js := j.Spec
	var entry *experiment.Named
	for _, e := range experiment.Registry() {
		if e.Name == js.Experiment {
			entry = &e
			break
		}
	}
	if entry == nil {
		return Result{}, nil, fmt.Errorf("serve: unknown experiment %q", js.Experiment)
	}
	c, err := experiment.NewContext(experiment.Options{
		Seed:      js.Seed,
		ScaleDown: js.Scale,
		// One core per job: the service's worker pool is the
		// parallelism; an experiment fanning out to GOMAXPROCS inside
		// each worker would oversubscribe the host.
		Parallelism: 1,
		Ctx:         ctx,
		Observer: func(workload, policy string) machine.Hook {
			return newProgressHook(j.events, j.flight, workload+"/"+policy, s.cfg.ProgressEvery)
		},
	})
	if err != nil {
		return Result{}, nil, err
	}
	printable, err := entry.Run(c)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return Result{}, nil, cerr
		}
		return Result{}, nil, err
	}
	var buf bytes.Buffer
	if err := printable.Print(&buf); err != nil {
		return Result{}, nil, err
	}
	return Result{ID: j.ID, Experiment: js.Experiment, Output: buf.String()}, nil, nil
}
