package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Handler returns the service's REST surface:
//
//	POST   /api/jobs              submit (202 created, 200 existing/cache,
//	                              429 + Retry-After on a full queue)
//	GET    /api/jobs              list all jobs
//	GET    /api/jobs/{id}         job status
//	DELETE /api/jobs/{id}         cancel (queued or running)
//	GET    /api/jobs/{id}/result  cached result JSON (?format=csv for the
//	                              single-machine trace)
//	GET    /api/jobs/{id}/events  NDJSON progress stream until terminal
//	GET    /api/jobs/{id}/flight  flight-recorder dump (404 until one exists)
//	GET    /api/trace/{jobID}     recorded spans (?format=perfetto for a
//	                              Chrome trace-event rendering)
//	GET    /api/slo               SLO objective burn-rate status
//	POST   /api/intents           declare an intent against the resident
//	                              fleet (201 created, 200 idempotent
//	                              resubmission, 422 + structured reason
//	                              when infeasible, 503 without a fleet)
//	GET    /api/intents           fleet summary + every intent's status
//	GET    /api/intents/{id}         one intent's reconcile status
//	GET    /api/intents/{id}/status  alias for polling convergence
//	DELETE /api/intents/{id}      withdraw an intent
//	GET    /healthz               200 healthy / 503 + breach reasons
//
// Mount it alongside the dash handler and /metrics on one mux (see
// cmd/aapm-serve).
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/api/jobs", s.handleJobs)
	mux.HandleFunc("/api/jobs/", s.handleJob)
	mux.HandleFunc("/api/trace/", s.handleTrace)
	mux.HandleFunc("/api/slo", s.handleSLO)
	mux.HandleFunc("/api/intents", s.handleIntents)
	mux.HandleFunc("/api/intents/", s.handleIntent)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// handleJobs serves the collection: submission and listing.
func (s *Service) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		s.handleSubmit(w, r)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, s.List())
	default:
		w.Header().Set("Allow", "GET, POST")
		httpError(w, http.StatusMethodNotAllowed, "method not allowed")
	}
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var js JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&js); err != nil {
		httpError(w, http.StatusBadRequest, "bad job spec: "+err.Error())
		return
	}
	j, created, err := s.Submit(js)
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited):
		// The backpressure contract: a full queue or an over-rate
		// tenant answers immediately and names a retry horizon derived
		// from the observed drain rate (mean job wall × backlog ÷
		// workers, clamped to [1, 60] s) instead of buffering.
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter()/time.Second)))
		httpError(w, http.StatusTooManyRequests, err.Error())
		return
	case errors.Is(err, ErrClosed):
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	code := http.StatusOK // existing job (dedup / cache hit)
	if created {
		code = http.StatusAccepted
	}
	writeJSON(w, code, j.status())
}

// handleJob routes /api/jobs/{id}[/result|/events].
func (s *Service) handleJob(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/api/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	j, ok := s.Get(id)
	if !ok {
		// An evicted job is gone but not forgotten: the 404 names the
		// eviction so callers can distinguish "never existed" from
		// "aged out — resubmit the spec to recompute it".
		if reason, evicted := s.EvictedReason(id); evicted {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			_ = json.NewEncoder(w).Encode(map[string]any{
				"error":   "job evicted from the bounded store (" + reason + "); resubmit the spec to re-run it",
				"evicted": true,
				"reason":  reason,
			})
			return
		}
		httpError(w, http.StatusNotFound, ErrUnknownJob.Error())
		return
	}
	switch sub {
	case "":
		switch r.Method {
		case http.MethodGet:
			writeJSON(w, http.StatusOK, j.status())
		case http.MethodDelete:
			st, err := s.Cancel(id)
			if err != nil {
				httpError(w, http.StatusNotFound, err.Error())
				return
			}
			writeJSON(w, http.StatusOK, map[string]any{"id": id, "state": st})
		default:
			w.Header().Set("Allow", "GET, DELETE")
			httpError(w, http.StatusMethodNotAllowed, "method not allowed")
		}
	case "result":
		if !requireGet(w, r) {
			return
		}
		s.handleResult(w, r, j)
	case "events":
		if !requireGet(w, r) {
			return
		}
		s.handleEvents(w, r, j)
	case "flight":
		if !requireGet(w, r) {
			return
		}
		s.handleFlight(w, j)
	default:
		httpError(w, http.StatusNotFound, "unknown job subresource")
	}
}

func (s *Service) handleResult(w http.ResponseWriter, r *http.Request, j *Job) {
	j.mu.Lock()
	state, result, run := j.state, j.result, j.run
	errDetail := j.err
	j.mu.Unlock()
	if state != StateDone {
		msg := "job not finished"
		if state.Terminal() {
			msg = "job ended " + string(state)
			if errDetail != "" {
				msg += ": " + errDetail
			}
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		_ = json.NewEncoder(w).Encode(map[string]any{"error": msg, "state": state})
		return
	}
	if r.URL.Query().Get("format") == "csv" {
		if run == nil {
			httpError(w, http.StatusBadRequest, "no per-interval trace for this job kind (cluster and experiment results are JSON only)")
			return
		}
		w.Header().Set("Content-Type", "text/csv")
		_ = run.WriteCSV(w)
		return
	}
	// The bytes stored at completion, verbatim: every cache hit is
	// byte-identical to the first response.
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(result)
}

// handleEvents streams the job's progress log as NDJSON: buffered
// history first, then live events until the job reaches a terminal
// state (the final line) or the client disconnects.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request, j *Job) {
	j.mu.Lock()
	log := j.events
	j.mu.Unlock()
	replay, ch, cancelSub := log.subscribe()
	defer cancelSub()
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	for _, line := range replay {
		if !writeLine(w, line) {
			return
		}
	}
	flush()
	for {
		select {
		case line, ok := <-ch:
			if !ok {
				return
			}
			if !writeLine(w, line) {
				return
			}
			flush()
		case <-r.Context().Done():
			return
		}
	}
}

func writeLine(w http.ResponseWriter, line []byte) bool {
	if _, err := w.Write(line); err != nil {
		return false
	}
	_, err := w.Write([]byte("\n"))
	return err == nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method not allowed")
		return false
	}
	return true
}
