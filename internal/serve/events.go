package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"aapm/internal/machine"
	"aapm/internal/trace"
)

// eventLog buffers a job's progress events (marshaled NDJSON lines)
// in a bounded ring and fans live events out to stream subscribers.
// A subscriber first receives the buffered history, then live lines;
// the channel closes when the job reaches a terminal state. A slow
// subscriber never stalls the simulation: lines that don't fit its
// channel are dropped (progress ticks are samples, not a transcript).
type eventLog struct {
	mu     sync.Mutex
	ring   [][]byte // circular once full: oldest line at head
	head   int      // index of the oldest line when the ring is full
	cap    int
	closed bool
	subs   map[chan []byte]struct{}
}

func newEventLog(capacity int) *eventLog {
	return &eventLog{cap: capacity, subs: make(map[chan []byte]struct{})}
}

// publish appends one marshaled line to the ring and offers it to
// every live subscriber. No-op once closed. Once the ring is full each
// publish overwrites the oldest slot and advances the head index —
// O(1), where the round-1 ring shifted the whole buffer with an
// O(capacity) copy on every line.
func (l *eventLog) publish(line []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	if len(l.ring) < l.cap {
		l.ring = append(l.ring, line)
	} else {
		l.ring[l.head] = line
		l.head = (l.head + 1) % l.cap
	}
	for ch := range l.subs {
		select {
		case ch <- line:
		default: // slow consumer: drop rather than stall the run
		}
	}
}

// close ends the stream: subscriber channels close after draining.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		close(ch)
	}
	l.subs = make(map[chan []byte]struct{})
}

// subscribe returns the buffered history and a live channel (already
// closed when the log is). cancel detaches the subscriber early.
func (l *eventLog) subscribe() (replay [][]byte, ch chan []byte, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	replay = make([][]byte, 0, len(l.ring))
	replay = append(replay, l.ring[l.head:]...)
	replay = append(replay, l.ring[:l.head]...)
	ch = make(chan []byte, 64)
	if l.closed {
		close(ch)
		return replay, ch, func() {}
	}
	l.subs[ch] = struct{}{}
	return replay, ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, live := l.subs[ch]; live {
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// progressEvent is one NDJSON line of GET /api/jobs/{id}/events.
// Type is "state" for lifecycle changes (queued/running/…; Detail
// carries the terminal error, if any) and "tick" for sampled
// simulation progress.
type progressEvent struct {
	Type    string  `json:"type"`
	State   State   `json:"state,omitempty"`
	Detail  string  `json:"detail,omitempty"`
	Node    string  `json:"node,omitempty"`
	Tick    int     `json:"tick,omitempty"`
	TMs     float64 `json:"t_ms,omitempty"`
	FreqMHz int     `json:"freq_mhz,omitempty"`
	PowerW  float64 `json:"power_w,omitempty"`
	Phase   string  `json:"phase,omitempty"`
}

func marshalEvent(e progressEvent) []byte {
	b, err := json.Marshal(e)
	if err != nil {
		panic(fmt.Sprintf("serve: marshaling progress event: %v", err))
	}
	return b
}

// progressHook subscribes to a session's Hook bus and samples its
// ticks into the job's event log: every 'every'-th interval plus the
// final one, labeled with the node name for cluster jobs. Purely
// observational, so traces through the serve path stay byte-identical
// to direct runs.
type progressHook struct {
	machine.BaseHook
	log   *eventLog
	node  string
	every int
}

func newProgressHook(log *eventLog, node string, every int) *progressHook {
	if every < 1 {
		every = 1
	}
	return &progressHook{log: log, node: node, every: every}
}

// OnTick implements machine.Hook.
func (h *progressHook) OnTick(ts machine.TickState) {
	if !ts.Final && ts.Tick%h.every != 0 {
		return
	}
	p := ts.MeasuredPowerW
	if math.IsNaN(p) || math.IsInf(p, 0) {
		// A faulted sensor can drop a reading; JSON has no NaN.
		p = 0
	}
	h.log.publish(marshalEvent(progressEvent{
		Type:    "tick",
		Node:    h.node,
		Tick:    ts.Tick,
		TMs:     float64(ts.Start+ts.Used) / float64(time.Millisecond),
		FreqMHz: ts.PState.FreqMHz,
		PowerW:  p,
		Phase:   ts.Phase,
	}))
}

// OnDone implements machine.Hook.
func (h *progressHook) OnDone(*trace.Run) {}
