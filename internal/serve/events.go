package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"aapm/internal/machine"
	"aapm/internal/obs"
	"aapm/internal/trace"
)

// eventLog buffers a job's progress events (marshaled NDJSON lines)
// in a bounded ring and fans live events out to stream subscribers.
// A subscriber first receives the buffered history, then live lines;
// the channel closes when the job reaches a terminal state. A slow
// subscriber never stalls the simulation: lines that don't fit its
// channel are dropped (progress ticks are samples, not a transcript).
// Every emitted line carries the job/trace IDs and a monotonically
// increasing sequence number, so a resumed poller can detect ring
// drops (a gap in seq) instead of silently missing events.
type eventLog struct {
	mu     sync.Mutex
	job    string // stamped on every emitted line
	trace  string
	seq    uint64   // last sequence number issued (lines count from 1)
	ring   [][]byte // circular once full: oldest line at head
	head   int      // index of the oldest line when the ring is full
	cap    int
	closed bool
	subs   map[chan []byte]struct{}
}

func newEventLog(capacity int) *eventLog {
	return &eventLog{cap: capacity, subs: make(map[chan []byte]struct{})}
}

// newJobEventLog builds a job's event log with the identity stamped on
// every emitted line.
func newJobEventLog(capacity int, job, trace string) *eventLog {
	l := newEventLog(capacity)
	l.job, l.trace = job, trace
	return l
}

// emit stamps e with the log's identity and the next sequence number,
// marshals it, and publishes the line. All serve-side events flow
// through here; publish stays the raw primitive underneath.
func (l *eventLog) emit(e progressEvent) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.seq++
	e.Seq = l.seq
	e.Job = l.job
	e.Trace = l.trace
	l.publishLocked(marshalEvent(e))
}

// publish appends one marshaled line to the ring and offers it to
// every live subscriber. No-op once closed. Once the ring is full each
// publish overwrites the oldest slot and advances the head index —
// O(1), where the round-1 ring shifted the whole buffer with an
// O(capacity) copy on every line.
func (l *eventLog) publish(line []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.publishLocked(line)
}

func (l *eventLog) publishLocked(line []byte) {
	if len(l.ring) < l.cap {
		l.ring = append(l.ring, line)
	} else {
		l.ring[l.head] = line
		l.head = (l.head + 1) % l.cap
	}
	for ch := range l.subs {
		select {
		case ch <- line:
		default: // slow consumer: drop rather than stall the run
		}
	}
}

// close ends the stream: subscriber channels close after draining.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.closed = true
	for ch := range l.subs {
		close(ch)
	}
	l.subs = make(map[chan []byte]struct{})
}

// subscribe returns the buffered history and a live channel (already
// closed when the log is). cancel detaches the subscriber early.
func (l *eventLog) subscribe() (replay [][]byte, ch chan []byte, cancel func()) {
	l.mu.Lock()
	defer l.mu.Unlock()
	replay = make([][]byte, 0, len(l.ring))
	replay = append(replay, l.ring[l.head:]...)
	replay = append(replay, l.ring[:l.head]...)
	ch = make(chan []byte, 64)
	if l.closed {
		close(ch)
		return replay, ch, func() {}
	}
	l.subs[ch] = struct{}{}
	return replay, ch, func() {
		l.mu.Lock()
		defer l.mu.Unlock()
		if _, live := l.subs[ch]; live {
			delete(l.subs, ch)
			close(ch)
		}
	}
}

// progressEvent is one NDJSON line of GET /api/jobs/{id}/events.
// Type is "state" for lifecycle changes (queued/running/…; Detail
// carries the terminal error, if any) and "tick" for sampled
// simulation progress. Seq increases by exactly 1 per line within one
// job attempt (a re-enqueue starts a fresh log at 1), Job/Trace
// identify the attempt — together they let a poller that reconnects
// mid-run detect how many lines the bounded ring dropped.
type progressEvent struct {
	Type    string  `json:"type"`
	Seq     uint64  `json:"seq,omitempty"`
	Job     string  `json:"job,omitempty"`
	Trace   string  `json:"trace,omitempty"`
	State   State   `json:"state,omitempty"`
	Detail  string  `json:"detail,omitempty"`
	Node    string  `json:"node,omitempty"`
	Tick    int     `json:"tick,omitempty"`
	TMs     float64 `json:"t_ms,omitempty"`
	FreqMHz int     `json:"freq_mhz,omitempty"`
	PowerW  float64 `json:"power_w,omitempty"`
	Phase   string  `json:"phase,omitempty"`
}

func marshalEvent(e progressEvent) []byte {
	b, err := json.Marshal(e)
	if err != nil {
		panic(fmt.Sprintf("serve: marshaling progress event: %v", err))
	}
	return b
}

// progressHook subscribes to a session's Hook bus and samples its
// ticks into the job's event log: every 'every'-th interval plus the
// final one, labeled with the node name for cluster jobs. Transitions
// and degradations additionally land in the job's flight recorder, so
// a postmortem dump shows what the machine was doing when the job
// died. Purely observational, so traces through the serve path stay
// byte-identical to direct runs.
type progressHook struct {
	machine.BaseHook
	log    *eventLog
	flight *obs.FlightRecorder // nil-safe; always-on postmortem ring
	node   string
	every  int
}

func newProgressHook(log *eventLog, flight *obs.FlightRecorder, node string, every int) *progressHook {
	if every < 1 {
		every = 1
	}
	return &progressHook{log: log, flight: flight, node: node, every: every}
}

// OnTick implements machine.Hook.
func (h *progressHook) OnTick(ts machine.TickState) {
	if !ts.Final && ts.Tick%h.every != 0 {
		return
	}
	p := ts.MeasuredPowerW
	if math.IsNaN(p) || math.IsInf(p, 0) {
		// A faulted sensor can drop a reading; JSON has no NaN.
		p = 0
	}
	h.log.emit(progressEvent{
		Type:    "tick",
		Node:    h.node,
		Tick:    ts.Tick,
		TMs:     float64(ts.Start+ts.Used) / float64(time.Millisecond),
		FreqMHz: ts.PState.FreqMHz,
		PowerW:  p,
		Phase:   ts.Phase,
	})
}

// OnTransition implements machine.Hook: p-state changes go to the
// flight recorder (not the event stream — at fleet scale they are far
// too dense to stream, but the bounded per-job ring absorbs them).
func (h *progressHook) OnTransition(tr machine.Transition) {
	h.flight.Note(obs.FlightEvent{
		Kind:   "transition",
		Name:   h.node,
		Detail: fmt.Sprintf("p%d->p%d ok=%t", tr.From, tr.To, tr.OK),
		VirtUS: float64(tr.T) / float64(time.Microsecond),
	})
}

// OnDegradation implements machine.Hook: fault and graceful-
// degradation events go to the flight recorder.
func (h *progressHook) OnDegradation(d trace.Degradation) {
	h.flight.Note(obs.FlightEvent{
		Kind:   "degradation",
		Name:   d.Source + "/" + d.Kind,
		Detail: d.Detail,
		VirtUS: float64(d.T) / float64(time.Microsecond),
	})
}

// OnDone implements machine.Hook.
func (h *progressHook) OnDone(*trace.Run) {}
