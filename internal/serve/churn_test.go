package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestSustainedChurn is the round-2 retention gate: many more distinct
// specs than MaxJobs flow through the HTTP surface, and the service
// must stay bounded — the retained-job table at or under MaxJobs, the
// heap stable — while an evicted Done spec resubmitted later re-runs
// to byte-identical result bytes.
func TestSustainedChurn(t *testing.T) {
	const (
		maxJobs = 16
		total   = 200 // >= 10x maxJobs distinct specs
		wave    = 8
	)
	svc, ts := newTestService(t, Config{
		MaxJobs:    maxJobs,
		QueueDepth: wave,
		Workers:    2,
	})

	churnSpec := func(i int) JobSpec {
		js := quickSpec()
		js.Seed = int64(1000 + i)
		return js
	}

	// Submit in waves of at most QueueDepth, waiting each wave out so
	// admission never 429s and every spec really runs.
	var firstBytes []byte
	firstID := ""
	heapAfterWarm := uint64(0)
	for base := 0; base < total; base += wave {
		var ids []string
		for i := base; i < base+wave && i < total; i++ {
			code, st := postJob(t, ts.URL, churnSpec(i))
			if code != http.StatusAccepted {
				t.Fatalf("spec %d: submit = %d, want 202", i, code)
			}
			ids = append(ids, st.ID)
		}
		for _, id := range ids {
			if st := waitTerminal(t, ts.URL, id); st.State != StateDone {
				t.Fatalf("job %s ended %s (%s)", id, st.State, st.Error)
			}
		}
		if base == 0 {
			// Capture the first job's bytes before churn evicts it.
			firstID = ids[0]
			var code int
			code, _, firstBytes = getBody(t, ts.URL+"/api/jobs/"+firstID+"/result")
			if code != http.StatusOK {
				t.Fatalf("first result = %d", code)
			}
		}
		if base+wave >= total/4 && heapAfterWarm == 0 {
			heapAfterWarm = heapInUse()
		}
	}

	if n := svc.JobCount(); n > maxJobs {
		t.Errorf("retained jobs after churn = %d, want <= %d", n, maxJobs)
	}

	// Heap stability: 4x the churn volume of the warm point must not
	// grow the live heap materially — the round-1 service leaked every
	// job, its events ring and its result bytes forever.
	heapFinal := heapInUse()
	if limit := heapAfterWarm + heapAfterWarm/2 + 8<<20; heapFinal > limit {
		t.Errorf("heap grew under churn: %d B warm vs %d B final (limit %d)", heapAfterWarm, heapFinal, limit)
	}

	// The first job aged out: 404 naming the eviction.
	code, _, body := getBody(t, ts.URL+"/api/jobs/"+firstID)
	if code != http.StatusNotFound || !strings.Contains(string(body), "evicted") {
		t.Fatalf("evicted job GET = %d %s, want 404 naming the eviction", code, body)
	}

	// Resubmitting the evicted spec re-runs it to the same bytes.
	code, st := postJob(t, ts.URL, churnSpec(0))
	if code != http.StatusAccepted {
		t.Fatalf("resubmit of evicted spec = %d, want 202 (a fresh run)", code)
	}
	if st.ID != firstID {
		t.Fatalf("resubmitted spec hashed to %s, want %s", st.ID, firstID)
	}
	if fin := waitTerminal(t, ts.URL, firstID); fin.State != StateDone {
		t.Fatalf("re-run ended %s (%s)", fin.State, fin.Error)
	}
	_, _, again := getBody(t, ts.URL+"/api/jobs/"+firstID+"/result")
	if !bytes.Equal(firstBytes, again) {
		t.Errorf("re-run of evicted spec returned different bytes (%d vs %d)", len(firstBytes), len(again))
	}
}

// heapInUse forces a GC and reads the live-heap size.
func heapInUse() uint64 {
	runtime.GC()
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.HeapInuse
}

// TestEvictionPrefersLRUAndSkipsLive pins victim selection: only
// terminal jobs are evicted, least recently used first, and touching a
// job (a GET) refreshes it.
func TestEvictionPrefersLRUAndSkipsLive(t *testing.T) {
	_, ts := newTestService(t, Config{MaxJobs: 2, Workers: 1})
	run := func(i int) string {
		js := quickSpec()
		js.Seed = int64(3000 + i)
		_, st := postJob(t, ts.URL, js)
		if fin := waitTerminal(t, ts.URL, st.ID); fin.State != StateDone {
			t.Fatalf("job %d ended %s", i, fin.State)
		}
		return st.ID
	}
	a := run(0)
	b := run(1)
	// Touch a so b is now least recently used.
	if code, _, _ := getBody(t, ts.URL+"/api/jobs/"+a); code != http.StatusOK {
		t.Fatal("touch of a failed")
	}
	run(2) // evicts b, not a
	if code, _, _ := getBody(t, ts.URL+"/api/jobs/"+a); code != http.StatusOK {
		t.Errorf("recently-used job a evicted")
	}
	code, _, body := getBody(t, ts.URL+"/api/jobs/"+b)
	if code != http.StatusNotFound || !strings.Contains(string(body), "lru") {
		t.Errorf("LRU job b = %d %s, want 404 with reason lru", code, body)
	}
}

// TestMaxResultBytesEviction pins the byte bound: retained result
// bytes stay under MaxResultBytes even when the job count is tiny.
func TestMaxResultBytesEviction(t *testing.T) {
	// Each ammp result is a few hundred bytes; a 1 KB budget holds
	// only a couple of terminal jobs.
	svc, ts := newTestService(t, Config{MaxResultBytes: 1 << 10, Workers: 1})
	for i := 0; i < 6; i++ {
		js := quickSpec()
		js.Seed = int64(4000 + i)
		_, st := postJob(t, ts.URL, js)
		if fin := waitTerminal(t, ts.URL, st.ID); fin.State != StateDone {
			t.Fatalf("job %d ended %s", i, fin.State)
		}
	}
	svc.mu.Lock()
	retained := svc.store.resultBytes()
	svc.mu.Unlock()
	if retained > 1<<10 {
		t.Errorf("retained result bytes = %d, want <= %d", retained, 1<<10)
	}
	var buf bytes.Buffer
	if err := svc.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), MetricEvicted+`{reason="bytes"}`) {
		t.Error("exposition missing a bytes-reason eviction")
	}
}

// fakeClock is a manually advanced time source for the rate limiter.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

// TestTenantRateLimit pins the intake token bucket: a tenant's
// enqueueing submissions beyond its burst are rejected with
// ErrRateLimited (HTTP 429 + Retry-After), cache-hit submissions stay
// free, and tokens refill with time.
func TestTenantRateLimit(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1_000_000, 0)}
	gate := make(chan struct{})
	defer close(gate)
	svc, ts := newTestService(t, Config{
		Workers:          1,
		TenantRatePerSec: 1,
		TenantBurst:      1,
		now:              clk.now,
		beforeRun:        func(*Job) { <-gate },
	})

	spec := func(seed int64) JobSpec {
		js := quickSpec()
		js.Seed = seed
		js.Tenant = "acme"
		return js
	}
	if _, created, err := svc.Submit(spec(1)); err != nil || !created {
		t.Fatalf("first submit: created=%v err=%v", created, err)
	}
	// Bucket is empty: a second distinct spec is rate-limited.
	if _, _, err := svc.Submit(spec(2)); !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second submit err = %v, want ErrRateLimited", err)
	}
	// A duplicate of the queued spec is a free cache/join hit.
	if _, created, err := svc.Submit(spec(1)); err != nil || created {
		t.Fatalf("duplicate submit: created=%v err=%v, want free join", created, err)
	}
	// Another tenant has its own bucket.
	other := spec(3)
	other.Tenant = "rival"
	if _, _, err := svc.Submit(other); err != nil {
		t.Fatalf("other tenant submit err = %v", err)
	}
	// Refill: one second buys one token.
	clk.advance(time.Second)
	if _, _, err := svc.Submit(spec(2)); err != nil {
		t.Fatalf("post-refill submit err = %v", err)
	}

	// The HTTP surface maps the rejection to 429 with a Retry-After.
	body, _ := json.Marshal(spec(4))
	resp, err := http.Post(ts.URL+"/api/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("rate-limited POST = %d, want 429", resp.StatusCode)
	}
	if ra, err := strconv.Atoi(resp.Header.Get("Retry-After")); err != nil || ra < 1 || ra > 60 {
		t.Errorf("Retry-After = %q, want an integer in [1, 60]", resp.Header.Get("Retry-After"))
	}
	var buf bytes.Buffer
	if err := svc.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), MetricRateLimited+`{tenant="acme"}`) {
		t.Error("exposition missing the per-tenant rate-limited counter")
	}
}

// TestRetryAfterDerivation pins the computed retry horizon: mean job
// wall x backlog / workers, clamped to [1, 60], never the round-1
// hardcoded constant.
func TestRetryAfterDerivation(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{}, 8)
	svc, ts := newTestService(t, Config{Workers: 2, QueueDepth: 64,
		beforeRun: func(*Job) { started <- struct{}{}; <-gate }})
	workers := svc.Workers()

	// No observation yet: the 1 s floor.
	if got := svc.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter before any completion = %v, want 1s", got)
	}

	// Park every worker inside a plug job so the backlog we build next
	// stays exactly where we put it.
	for i := 0; i < workers; i++ {
		js := quickSpec()
		js.Seed = int64(6000 + i)
		if code, _ := postJob(t, ts.URL, js); code != http.StatusAccepted {
			t.Fatalf("plug %d rejected", i)
		}
	}
	for i := 0; i < workers; i++ {
		<-started
	}

	// Seed the EWMA and a backlog directly (unit seam: same package).
	svc.wallEWMA.Store(math.Float64bits(2.0))
	backlog := 6
	for i := 0; i < backlog; i++ {
		j := &Job{ID: fmt.Sprintf("ra%d", i), state: StateQueued, events: newEventLog(4)}
		j.Spec = quickSpec()
		j.Spec.Seed = int64(7000 + i)
		if err := svc.q.push(j); err != nil {
			t.Fatal(err)
		}
	}
	want := time.Duration(math.Ceil(2.0*float64(backlog)/float64(workers))) * time.Second
	if got := svc.RetryAfter(); got != want {
		t.Fatalf("RetryAfter = %v, want %v (ewma 2s x %d backlog / %d workers)", got, want, backlog, workers)
	}

	// Clamp: a pathological backlog estimate saturates at 60 s.
	svc.wallEWMA.Store(math.Float64bits(1000.0))
	if got := svc.RetryAfter(); got != 60*time.Second {
		t.Fatalf("RetryAfter clamp = %v, want 60s", got)
	}
}

// TestTenantFairShareCompletionOrder pins end-to-end weighted fair
// scheduling: with tenant a weighted 3x over b and both backlogged
// behind one worker, jobs start in deterministic 3:1 rounds.
func TestTenantFairShareCompletionOrder(t *testing.T) {
	var mu sync.Mutex
	var order []string
	first := true
	holdFirst := make(chan struct{})
	_, ts := newTestService(t, Config{
		Workers:       1,
		QueueDepth:    32,
		TenantWeights: map[string]int{"a": 3, "b": 1},
		beforeRun: func(j *Job) {
			mu.Lock()
			wasFirst := first
			first = false
			order = append(order, tenantLabel(j.Spec.Tenant))
			mu.Unlock()
			if wasFirst {
				<-holdFirst
			}
		},
	})

	// The plug job occupies the worker while both tenants queue up.
	_, plug := postJob(t, ts.URL, quickSpec())
	deadline := time.Now().Add(5 * time.Second)
	for {
		mu.Lock()
		started := len(order) > 0
		mu.Unlock()
		if started {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("plug job never started")
		}
		time.Sleep(time.Millisecond)
	}

	var ids []string
	for i := 0; i < 8; i++ {
		for _, tenant := range []string{"a", "b"} {
			js := quickSpec()
			js.Seed = int64(5000 + i)
			js.Tenant = tenant
			code, st := postJob(t, ts.URL, js)
			if code != http.StatusAccepted {
				t.Fatalf("submit %s/%d = %d", tenant, i, code)
			}
			ids = append(ids, st.ID)
		}
	}
	close(holdFirst)
	waitTerminal(t, ts.URL, plug.ID)
	for _, id := range ids {
		if st := waitTerminal(t, ts.URL, id); st.State != StateDone {
			t.Fatalf("job %s ended %s (%s)", id, st.State, st.Error)
		}
	}

	mu.Lock()
	got := append([]string(nil), order...)
	mu.Unlock()
	if len(got) != 17 {
		t.Fatalf("started %d jobs, want 17 (plug + 16)", len(got))
	}
	// After the plug, rounds of quantum 3+1: a,a,a,b repeating until a
	// (8 jobs) drains mid-round, then b's remainder.
	want := []string{"default", "a", "a", "a", "b", "a", "a", "a", "b", "a", "a", "b", "b", "b", "b", "b", "b"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("start order = %v, want %v", got, want)
		}
	}
}
