package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"aapm/internal/cluster"
	"aapm/internal/intent"
	"aapm/internal/obs"
	"aapm/internal/sensor"
	"aapm/internal/telemetry"
)

// FleetOptions describes the service's resident fleet: a synthetic
// hierarchical simulation the intent API reconciles against. The
// workloads are finite, so the host runs the fleet in back-to-back
// generations — the intent controller persists across them, and its
// reconcile epochs keep counting.
type FleetOptions struct {
	// Nodes is the leaf count (required, > 0 enables the fleet).
	Nodes int
	// Levels/Fanout shape the allocation tree (0 → 2 levels, fanout 8).
	Levels int
	Fanout int
	// BudgetW is the root power budget (0 → 12 W x Nodes); FloorW the
	// per-node minimum share (0 → the coordinator's 4 W default).
	BudgetW float64
	FloorW  float64
	// Seed fixes each generation's simulation seed (0 → 1).
	Seed int64
	// EpochTicks is the reallocation period (0 → 10, frequent enough
	// that intents converge within seconds of wall clock).
	EpochTicks int
	// GenerationTicks sizes each generation's synthetic workloads
	// (0 → 400 ticks).
	GenerationTicks int
	// Workers caps the fleet's stepping pool (0 → 2: the resident
	// fleet must not starve the job workers).
	Workers int
	// ConvergeEpochs/DeadlineEpochs configure the intent controller
	// (0 → its defaults: 2 consecutive epochs, 8-epoch deadline).
	ConvergeEpochs int
	DeadlineEpochs int
	// GenerationGap is the pause between generations (0 → 50 ms).
	GenerationGap time.Duration
}

func (o FleetOptions) withDefaults() FleetOptions {
	if o.Levels <= 0 {
		o.Levels = 2
	}
	if o.Fanout <= 0 {
		o.Fanout = 8
	}
	if o.BudgetW <= 0 {
		o.BudgetW = 12 * float64(o.Nodes)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.EpochTicks <= 0 {
		o.EpochTicks = 10
	}
	if o.GenerationTicks <= 0 {
		o.GenerationTicks = 400
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.GenerationGap <= 0 {
		o.GenerationGap = 50 * time.Millisecond
	}
	return o
}

// fleetConfig builds one generation's run config.
func (o FleetOptions) fleetConfig(reg *telemetry.Registry) cluster.FleetConfig {
	return cluster.FleetConfig{
		BudgetW:    o.BudgetW,
		FloorW:     o.FloorW,
		Nodes:      cluster.SyntheticFleet(o.Nodes, o.GenerationTicks),
		Seed:       o.Seed,
		Chain:      sensor.NIDefault(),
		Workers:    o.Workers,
		Levels:     o.Levels,
		Fanout:     o.Fanout,
		EpochTicks: o.EpochTicks,
		Telemetry:  reg,
	}
}

// fleetHost runs the resident fleet: a restart loop over finite
// generations with the intent controller as the control plane.
type fleetHost struct {
	opts FleetOptions
	ctl  *intent.Controller

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	generations atomic.Int64

	mu      sync.Mutex
	lastErr string
}

// newFleetHost validates the options, builds the intent controller
// and starts the generation loop. The telemetry registry is shared
// with the service; family registration is idempotent, so each
// generation re-registering the fleet series is safe.
func newFleetHost(opts FleetOptions, reg *telemetry.Registry, tr *obs.Trace, fl *obs.FlightRecorder) (*fleetHost, error) {
	opts = opts.withDefaults()
	cfg := opts.fleetConfig(reg)
	ctl, err := intent.New(intent.Config{
		Capability:     intent.CapabilityOf(cfg),
		ConvergeEpochs: opts.ConvergeEpochs,
		DeadlineEpochs: opts.DeadlineEpochs,
		Trace:          tr,
		Flight:         fl,
		Telemetry:      reg,
	})
	if err != nil {
		return nil, err
	}
	// One dry validation pass before the loop: a config the coordinator
	// rejects should fail service construction, not retry forever.
	probe := cfg
	probe.Nodes = cluster.SyntheticFleet(opts.Nodes, 1)
	probe.Telemetry = nil
	probe.EpochTicks = 1 << 20 // no reallocation during the probe
	if _, err := cluster.RunFleet(probe); err != nil {
		return nil, err
	}
	h := &fleetHost{opts: opts, ctl: ctl, done: make(chan struct{})}
	h.ctx, h.cancel = context.WithCancel(context.Background())
	go h.loop(reg)
	return h, nil
}

func (h *fleetHost) loop(reg *telemetry.Registry) {
	defer close(h.done)
	gauge := reg.Gauge("aapm_fleet_generations", "Resident-fleet generations completed.").With()
	for h.ctx.Err() == nil {
		cfg := h.opts.fleetConfig(reg)
		cfg.Control = h.ctl
		_, err := cluster.RunFleetContext(h.ctx, cfg)
		h.mu.Lock()
		if err != nil && h.ctx.Err() == nil {
			h.lastErr = err.Error()
		} else if err == nil {
			h.lastErr = ""
		}
		h.mu.Unlock()
		if err == nil {
			gauge.Set(float64(h.generations.Add(1)))
		}
		select {
		case <-h.ctx.Done():
		case <-time.After(h.opts.GenerationGap):
		}
	}
}

// stop cancels the generation loop and waits for it to exit.
func (h *fleetHost) stop() {
	h.cancel()
	<-h.done
}

// info summarizes the host for the intents listing.
func (h *fleetHost) info() map[string]any {
	h.mu.Lock()
	lastErr := h.lastErr
	h.mu.Unlock()
	m := map[string]any{
		"nodes":       h.opts.Nodes,
		"levels":      h.opts.Levels,
		"fanout":      h.opts.Fanout,
		"budget_w":    h.opts.BudgetW,
		"epoch_ticks": h.opts.EpochTicks,
		"generations": h.generations.Load(),
	}
	if lastErr != "" {
		m["last_error"] = lastErr
	}
	return m
}
