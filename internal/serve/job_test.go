package serve

import (
	"strings"
	"testing"
)

// TestSpecIDNormalizesDefaults pins the cache-key contract: a spec
// with spelled-out defaults hashes identically to the minimal one.
func TestSpecIDNormalizesDefaults(t *testing.T) {
	minimal := JobSpec{Workload: "ammp", Seed: 1}
	explicit := JobSpec{Workload: "ammp", Seed: 1, Governor: "none", Nodes: 1, Chain: ChainNI}
	if minimal.ID() != explicit.ID() {
		t.Errorf("IDs differ: %s vs %s", minimal.ID(), explicit.ID())
	}
	scaled := JobSpec{Experiment: "fig5", Seed: 1, Scale: 1}
	full := JobSpec{Experiment: "fig5", Seed: 1}
	if scaled.ID() != full.ID() {
		t.Errorf("scale=1 and scale=0 IDs differ: %s vs %s", scaled.ID(), full.ID())
	}
}

func TestSpecIDShape(t *testing.T) {
	id := JobSpec{Workload: "ammp", Seed: 1}.ID()
	if !strings.HasPrefix(id, "j") || len(id) != 17 {
		t.Errorf("id = %q, want j + 16 hex digits", id)
	}
	other := JobSpec{Workload: "ammp", Seed: 2}.ID()
	if id == other {
		t.Error("different seeds hashed to the same job ID")
	}
	if (JobSpec{Workload: "gzip", Seed: 1}).ID() == id {
		t.Error("different workloads hashed to the same job ID")
	}
}

func TestSpecValidate(t *testing.T) {
	valid := []JobSpec{
		{Workload: "ammp", Seed: 1},
		{Workload: "ammp", Governor: "pm:limit=14.5", Seed: 1, Iterations: 2, MaxTicks: 10, Thermal: true},
		{Workload: "gzip", Chain: ChainIdeal},
		{Workload: "gzip", Nodes: 3, BudgetW: 40},
		{Experiment: "fig5", Seed: 3, Scale: 8},
	}
	for _, js := range valid {
		if err := js.Normalize().Validate(); err != nil {
			t.Errorf("%+v rejected: %v", js, err)
		}
	}
	invalid := map[string]JobSpec{
		"empty":                        {},
		"unknown workload":             {Workload: "nope"},
		"unknown governor":             {Workload: "ammp", Governor: "bogus"},
		"bad governor param":           {Workload: "ammp", Governor: "pm:limit=x"},
		"unknown chain":                {Workload: "ammp", Chain: "usb"},
		"negative iterations":          {Workload: "ammp", Iterations: -1},
		"negative max_ticks":           {Workload: "ammp", MaxTicks: -1},
		"scale on workload job":        {Workload: "ammp", Scale: 4},
		"budget on single machine":     {Workload: "ammp", BudgetW: 20},
		"cluster without budget":       {Workload: "ammp", Nodes: 2},
		"cluster with governor":        {Workload: "ammp", Nodes: 2, BudgetW: 30, Governor: "pm:limit=14.5"},
		"cluster with thermal":         {Workload: "ammp", Nodes: 2, BudgetW: 30, Thermal: true},
		"cluster with max_ticks":       {Workload: "ammp", Nodes: 2, BudgetW: 30, MaxTicks: 5},
		"unknown experiment":           {Experiment: "nope"},
		"experiment with workload":     {Experiment: "fig5", Workload: "ammp"},
		"experiment with governor":     {Experiment: "fig5", Governor: "pm:limit=14.5"},
		"experiment with budget":       {Experiment: "fig5", BudgetW: 20},
		"experiment with nodes":        {Experiment: "fig5", Nodes: 2},
		"experiment with iterations":   {Experiment: "fig5", Iterations: 2},
		"experiment negative scale":    {Experiment: "fig5", Scale: -1},
		"negative budget on a cluster": {Workload: "ammp", Nodes: 2, BudgetW: -3},
	}
	for name, js := range invalid {
		if err := js.Normalize().Validate(); err == nil {
			t.Errorf("%s: %+v accepted", name, js)
		}
	}
}

func TestStateTerminal(t *testing.T) {
	for st, want := range map[State]bool{
		StateQueued:   false,
		StateRunning:  false,
		StateDone:     true,
		StateFailed:   true,
		StateCanceled: true,
		StateAborted:  true,
	} {
		if st.Terminal() != want {
			t.Errorf("%s.Terminal() = %v, want %v", st, !want, want)
		}
	}
}
