package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"aapm/internal/obs"
	"aapm/internal/telemetry"
)

// fleetSpec is a small hierarchical job that crosses reallocation
// epochs (gzip ×8 runs ~109 lockstep intervals against the default
// 50-tick epoch).
func fleetSpec(tenant string) JobSpec {
	return JobSpec{
		Workload: "gzip", Seed: 7, Nodes: 8, BudgetW: 120,
		Levels: 2, Fanout: 4, Iterations: 1, Tenant: tenant,
	}
}

// TestTraceFollowsFleetJob is the end-to-end tracing acceptance: with
// the default 1% head sampling plus a per-tenant override, a submitted
// fleet job can be followed from intake to per-shard kernel steps via
// /api/trace/{jobID}, the Perfetto rendering parses, the NDJSON event
// stream carries the job/trace IDs and gap-free sequence numbers, and
// an unsampled tenant's job yields an ID-only trace.
func TestTraceFollowsFleetJob(t *testing.T) {
	_, ts := newTestService(t, Config{
		ProgressEvery:   20,
		TraceSampleRate: 0.01,
		TenantTraceRate: map[string]float64{"traced": 1, "quiet": 0},
	})
	code, st := postJob(t, ts.URL, fleetSpec("traced"))
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	if st.TraceID == "" || !strings.HasPrefix(st.TraceID, "t") {
		t.Fatalf("submit status trace_id = %q", st.TraceID)
	}
	if final := waitTerminal(t, ts.URL, st.ID); final.State != StateDone {
		t.Fatalf("fleet job = %s (%s)", final.State, final.Error)
	}

	// The span store: intake → queue-wait → per-level reallocate →
	// shard windows → run, all on one trace.
	code, _, body := getBody(t, ts.URL+"/api/trace/"+st.ID)
	if code != http.StatusOK {
		t.Fatalf("trace fetch = %d: %s", code, body)
	}
	var tr struct {
		Job     string     `json:"job"`
		TraceID string     `json:"trace_id"`
		Sampled bool       `json:"sampled"`
		Dropped uint64     `json:"dropped"`
		Spans   []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal(body, &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Job != st.ID || tr.TraceID != st.TraceID || !tr.Sampled {
		t.Fatalf("trace header = %+v", tr)
	}
	byName := map[string]int{}
	for _, s := range tr.Spans {
		byName[s.Name]++
		if s.Job != st.ID {
			t.Fatalf("span %q carries job %q, want %q", s.Name, s.Job, st.ID)
		}
	}
	for _, want := range []string{"intake", "queue-wait", "run", "reallocate", "shard-step"} {
		if byName[want] == 0 {
			t.Errorf("no %q span; got %v", want, byName)
		}
	}
	if len(tr.Spans) == 0 || tr.Spans[0].Name != "intake" {
		t.Errorf("first span = %+v, want intake", tr.Spans[:min(1, len(tr.Spans))])
	}

	// The Perfetto rendering is a valid Chrome trace-event array with
	// the spans as complete ("X") events.
	code, _, pb := getBody(t, ts.URL+"/api/trace/"+st.ID+"?format=perfetto")
	if code != http.StatusOK {
		t.Fatalf("perfetto fetch = %d", code)
	}
	var events []telemetry.TraceEvent
	if err := json.Unmarshal(pb, &events); err != nil {
		t.Fatalf("perfetto output does not parse: %v", err)
	}
	var xs, meta int
	for _, ev := range events {
		switch ev.Ph {
		case "X":
			xs++
		case "M":
			meta++
		}
	}
	if xs != len(tr.Spans) || meta == 0 {
		t.Errorf("perfetto events: %d X (want %d), %d metadata", xs, len(tr.Spans), meta)
	}

	// Every NDJSON event line carries the job and trace IDs and a
	// gap-free monotonically increasing sequence number.
	code, _, eb := getBody(t, ts.URL+"/api/jobs/"+st.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events fetch = %d", code)
	}
	sc := bufio.NewScanner(bytes.NewReader(eb))
	var prev uint64
	lines := 0
	for sc.Scan() {
		var ev struct {
			Type  string `json:"type"`
			Seq   uint64 `json:"seq"`
			Job   string `json:"job"`
			Trace string `json:"trace"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if ev.Job != st.ID || ev.Trace != st.TraceID {
			t.Fatalf("event line ids = %q/%q, want %q/%q", ev.Job, ev.Trace, st.ID, st.TraceID)
		}
		if ev.Seq != prev+1 {
			t.Fatalf("event seq %d follows %d: dropped or reordered", ev.Seq, prev)
		}
		prev = ev.Seq
		lines++
	}
	if lines < 3 {
		t.Fatalf("only %d event lines", lines)
	}

	// A healthy, done job retains no flight dump.
	if code, _, _ := getBody(t, ts.URL+"/api/jobs/"+st.ID+"/flight"); code != http.StatusNotFound {
		t.Errorf("flight on healthy done job = %d, want 404", code)
	}

	// The quiet tenant's job still mints a trace ID but records no
	// spans, and has no Perfetto rendering.
	_, qst := postJob(t, ts.URL, fleetSpec("quiet"))
	if waitTerminal(t, ts.URL, qst.ID).State != StateDone {
		t.Fatal("quiet job did not finish")
	}
	if qst.TraceID == "" || qst.TraceID == st.TraceID {
		t.Fatalf("quiet trace_id = %q", qst.TraceID)
	}
	code, _, body = getBody(t, ts.URL+"/api/trace/"+qst.ID)
	if code != http.StatusOK {
		t.Fatalf("quiet trace fetch = %d", code)
	}
	var qtr struct {
		Sampled bool       `json:"sampled"`
		Spans   []obs.Span `json:"spans"`
	}
	if err := json.Unmarshal(body, &qtr); err != nil {
		t.Fatal(err)
	}
	if qtr.Sampled || len(qtr.Spans) != 0 {
		t.Errorf("quiet trace = sampled %t, %d spans", qtr.Sampled, len(qtr.Spans))
	}
	if code, _, _ := getBody(t, ts.URL+"/api/trace/"+qst.ID+"?format=perfetto"); code != http.StatusNotFound {
		t.Errorf("perfetto for unsampled trace = %d, want 404", code)
	}

	// Unknown job.
	if code, _, _ := getBody(t, ts.URL+"/api/trace/nope"); code != http.StatusNotFound {
		t.Errorf("unknown trace = %d, want 404", code)
	}
}

// TestHealthzFlipsOnSLOBurn injects an SLO burn — a tight error-rate
// objective plus a job forced to blow its deadline — and checks the
// burn-rate plumbing end to end: /healthz flips to 503 naming the
// breach, /api/slo reports the burning objective with its peaks, and
// the failed job's flight-recorder dump is retrievable from the store.
func TestHealthzFlipsOnSLOBurn(t *testing.T) {
	svc, ts := newTestService(t, Config{
		Workers:    1,
		JobTimeout: time.Millisecond,
		beforeRun:  func(*Job) { time.Sleep(20 * time.Millisecond) },
		SLOObjectives: []obs.Objective{{
			Name: SLOErrorRate, Kind: obs.KindEvents,
			Budget: 0.001, BurnThreshold: 1, MinSamples: 1,
			FastWindow: time.Minute, SlowWindow: time.Hour,
		}},
	})
	_ = svc

	// Healthy before any sample.
	code, _, body := getBody(t, ts.URL+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz before load = %d: %s", code, body)
	}

	_, st := postJob(t, ts.URL, quickSpec())
	if final := waitTerminal(t, ts.URL, st.ID); final.State != StateFailed {
		t.Fatalf("forced job = %s, want failed", final.State)
	}

	code, _, body = getBody(t, ts.URL+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("healthz after burn = %d: %s", code, body)
	}
	var hz struct {
		Healthy bool     `json:"healthy"`
		Reasons []string `json:"reasons"`
	}
	if err := json.Unmarshal(body, &hz); err != nil {
		t.Fatal(err)
	}
	if hz.Healthy || len(hz.Reasons) == 0 || !strings.Contains(hz.Reasons[0], SLOErrorRate) {
		t.Fatalf("healthz body = %+v", hz)
	}

	code, _, body = getBody(t, ts.URL+"/api/slo")
	if code != http.StatusOK {
		t.Fatalf("slo fetch = %d", code)
	}
	var slo obs.SLOStatus
	if err := json.Unmarshal(body, &slo); err != nil {
		t.Fatal(err)
	}
	if slo.Healthy {
		t.Error("slo status healthy despite burn")
	}
	found := false
	for _, o := range slo.Objectives {
		if o.Name != SLOErrorRate {
			continue
		}
		found = true
		if !o.Breaching || o.FastBurn < 1 || o.PeakFastBurn < o.FastBurn || o.Reason == "" {
			t.Errorf("error_rate status = %+v", o)
		}
	}
	if !found {
		t.Fatal("error_rate objective missing from /api/slo")
	}

	// The failure dumped the flight ring into the store.
	code, _, body = getBody(t, ts.URL+"/api/jobs/"+st.ID+"/flight")
	if code != http.StatusOK {
		t.Fatalf("flight fetch = %d: %s", code, body)
	}
	var dump obs.FlightDump
	if err := json.Unmarshal(body, &dump); err != nil {
		t.Fatal(err)
	}
	states := map[string]bool{}
	spans := 0
	for _, e := range dump.Events {
		switch e.Kind {
		case "state":
			states[e.Name] = true
		case "span":
			spans++
		}
	}
	for _, want := range []string{"queued", "running", "failed"} {
		if !states[want] {
			t.Errorf("flight dump missing %q state event; got %v", want, states)
		}
	}
	if spans == 0 {
		t.Error("flight dump carries no span events")
	}
}

// TestTenantSeriesCapCollapsesToOther pins the 64-series tenant label
// cap: past maxTenantSeries distinct tenants, every per-tenant family
// deterministically routes new tenants to the shared "other" series,
// and the Prometheus exposition stays byte-stable under cap pressure.
func TestTenantSeriesCapCollapsesToOther(t *testing.T) {
	reg := telemetry.NewRegistry()
	tel := newServeTelemetry(reg)
	for i := 0; i < 100; i++ {
		tel.tenantCompleted(fmt.Sprintf("t%02d", i))
	}
	// The cap is shared across the per-tenant families: an over-cap
	// tenant collapses in every family, an under-cap one in none.
	tel.tenantRateLimited("t99")
	tel.tenantRateLimited("t10")
	tel.setTenantDepth("t99", 5)
	tel.setTenantDepth("t10", 2)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.Bytes()
	count := func(family string) (series, other int, otherVal string) {
		for _, line := range strings.Split(string(first), "\n") {
			if !strings.HasPrefix(line, family+"{") {
				continue
			}
			series++
			if strings.Contains(line, `tenant="other"`) {
				other++
				otherVal = strings.TrimSpace(line[strings.LastIndex(line, " ")+1:])
			}
		}
		return
	}
	if series, other, val := count(MetricTenantDone); series != maxTenantSeries+1 || other != 1 || val != "36" {
		t.Errorf("%s: %d series, %d other (value %s); want %d series with other=36",
			MetricTenantDone, series, other, val, maxTenantSeries+1)
	}
	if series, other, val := count(MetricRateLimited); series != 2 || other != 1 || val != "1" {
		t.Errorf("%s: %d series, %d other (value %s); want t10 + other=1",
			MetricRateLimited, series, other, val)
	}
	if series, other, val := count(MetricTenantDepth); series != 2 || other != 1 || val != "5" {
		t.Errorf("%s: %d series, %d other (value %s); want t10 + other=5",
			MetricTenantDepth, series, other, val)
	}
	if !strings.Contains(string(first), MetricTenantDone+`{tenant="t63"}`) {
		t.Error("tenant t63 (last under the cap) lost its own series")
	}
	if strings.Contains(string(first), `tenant="t64"`) {
		t.Error("tenant t64 (first over the cap) minted its own series")
	}

	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf.Bytes()) {
		t.Error("exposition not byte-stable across renders under cap pressure")
	}
}
