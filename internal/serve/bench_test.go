package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// BenchmarkServeSubmitLatency measures the duplicate-submission round
// trip — the cache-hit path: HTTP POST, spec canonicalization and
// hashing, job-table lookup, status marshaling. The first submission
// runs the simulation once outside the timed region.
func BenchmarkServeSubmitLatency(b *testing.B) {
	svc := New(Config{})
	ts := httptest.NewServer(svc.Handler())
	defer func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	}()

	spec := quickSpec()
	body, err := json.Marshal(spec)
	if err != nil {
		b.Fatal(err)
	}
	post := func() int {
		resp, err := http.Post(ts.URL+"/api/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		defer resp.Body.Close()
		var st Status
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			b.Fatal(err)
		}
		return resp.StatusCode
	}
	if code := post(); code != http.StatusAccepted {
		b.Fatalf("first submit = %d", code)
	}
	id := spec.ID()
	for {
		j, ok := svc.Get(id)
		if !ok {
			b.Fatal("job vanished")
		}
		if st := j.State(); st.Terminal() {
			if st != StateDone {
				b.Fatalf("warmup job ended %s", st)
			}
			break
		}
		time.Sleep(time.Millisecond)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if code := post(); code != http.StatusOK {
			b.Fatalf("duplicate submit = %d", code)
		}
	}
}
