package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

// quickSpec is the fast canonical job most tests submit: one ammp
// iteration under the paper's PM limit (the golden-fixture config).
func quickSpec() JobSpec {
	return JobSpec{Workload: "ammp", Governor: "pm:limit=14.5", Seed: 1, Iterations: 1}
}

func newTestService(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc.Shutdown(ctx)
	})
	return svc, ts
}

// postJob submits a spec over HTTP and returns the response status
// code and decoded job status.
func postJob(t *testing.T, base string, js JobSpec) (int, Status) {
	t.Helper()
	body, err := json.Marshal(js)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/api/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

// waitTerminal polls a job's status until it leaves queued/running.
func waitTerminal(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/api/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st Status
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Status{}
}

func getBody(t *testing.T, url string) (int, http.Header, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, b
}

// TestLifecycleEndToEnd walks the whole surface: submit, poll, stream,
// fetch the result, list.
func TestLifecycleEndToEnd(t *testing.T) {
	_, ts := newTestService(t, Config{ProgressEvery: 10})
	code, st := postJob(t, ts.URL, quickSpec())
	if code != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", code)
	}
	if st.ID == "" || (st.State != StateQueued && st.State != StateRunning) {
		t.Fatalf("submit status body = %+v", st)
	}
	// The normalized spec is echoed back.
	if st.Spec.Governor != "pm:limit=14.5" || st.Spec.Chain != ChainNI || st.Spec.Nodes != 1 {
		t.Errorf("normalized spec = %+v", st.Spec)
	}

	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != StateDone {
		t.Fatalf("final state = %s (%s)", final.State, final.Error)
	}

	// The event stream on a finished job replays history and ends with
	// the terminal state line.
	code, hdr, events := getBody(t, ts.URL+"/api/jobs/"+st.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events status = %d", code)
	}
	if ct := hdr.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("events content type = %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(events)), "\n")
	if len(lines) < 3 {
		t.Fatalf("event stream too short: %q", string(events))
	}
	var first, last progressEvent
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if first.Type != "state" || first.State != StateQueued {
		t.Errorf("first event = %+v, want state/queued", first)
	}
	if last.Type != "state" || last.State != StateDone {
		t.Errorf("last event = %+v, want state/done", last)
	}
	var ticks int
	for _, l := range lines {
		var e progressEvent
		if err := json.Unmarshal([]byte(l), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", l, err)
		}
		if e.Type == "tick" {
			ticks++
			if e.FreqMHz <= 0 {
				t.Errorf("tick event without frequency: %+v", e)
			}
		}
	}
	if ticks == 0 {
		t.Error("no tick events in the stream")
	}

	// The result is the run summary.
	code, _, body := getBody(t, ts.URL+"/api/jobs/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result status = %d: %s", code, body)
	}
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.ID != st.ID || res.Workload != "ammp" || res.AvgPowerW <= 0 || res.Ticks <= 0 {
		t.Errorf("result = %+v", res)
	}

	// Listing includes the job.
	code, _, listing := getBody(t, ts.URL+"/api/jobs")
	if code != http.StatusOK {
		t.Fatalf("list status = %d", code)
	}
	var all []Status
	if err := json.Unmarshal(listing, &all); err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 || all[0].ID != st.ID {
		t.Errorf("listing = %+v", all)
	}
}

func TestHTTPErrorSurface(t *testing.T) {
	_, ts := newTestService(t, Config{})
	// Unknown job: status, result, events, cancel.
	for _, path := range []string{"/api/jobs/jdeadbeef", "/api/jobs/jdeadbeef/result", "/api/jobs/jdeadbeef/events"} {
		if code, _, _ := getBody(t, ts.URL+path); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", path, code)
		}
	}
	// Malformed and invalid specs.
	for _, body := range []string{"{", `{"nope":1}`, `{"workload":"nope"}`, `{"workload":"ammp","nodes":2}`} {
		resp, err := http.Post(ts.URL+"/api/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("POST %q = %d, want 400", body, resp.StatusCode)
		}
	}
	// Method checks.
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/api/jobs", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != "GET, POST" {
		t.Errorf("PUT /api/jobs = %d Allow=%q", resp.StatusCode, resp.Header.Get("Allow"))
	}
	// Result of an unfinished job conflicts.
	gate := make(chan struct{})
	started := make(chan string, 1)
	svc2 := New(Config{Workers: 1, beforeRun: func(j *Job) { started <- j.ID; <-gate }})
	ts2 := httptest.NewServer(svc2.Handler())
	defer func() {
		close(gate)
		ts2.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = svc2.Shutdown(ctx)
	}()
	_, st := postJob(t, ts2.URL, quickSpec())
	<-started
	if code, _, body := getBody(t, ts2.URL+"/api/jobs/"+st.ID+"/result"); code != http.StatusConflict {
		t.Errorf("result of running job = %d (%s), want 409", code, body)
	}
}

// TestDuplicateSubmitIsCacheHit pins idempotency: resubmitting the
// same canonical spec joins the existing job, counts a hit, and serves
// byte-identical result bytes.
func TestDuplicateSubmitIsCacheHit(t *testing.T) {
	svc, ts := newTestService(t, Config{})
	code, st := postJob(t, ts.URL, quickSpec())
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	waitTerminal(t, ts.URL, st.ID)
	_, _, first := getBody(t, ts.URL+"/api/jobs/"+st.ID+"/result")

	// Same spec with defaults spelled out: same job, no new run.
	dup := quickSpec()
	dup.Chain = ChainNI
	dup.Nodes = 1
	code, st2 := postJob(t, ts.URL, dup)
	if code != http.StatusOK {
		t.Fatalf("duplicate submit = %d, want 200", code)
	}
	if st2.ID != st.ID || st2.State != StateDone || st2.CacheHits != 1 {
		t.Errorf("duplicate status = %+v", st2)
	}
	_, _, second := getBody(t, ts.URL+"/api/jobs/"+st.ID+"/result")
	if !bytes.Equal(first, second) {
		t.Error("cache hit result bytes differ from the original response")
	}
	if code, _ := postJob(t, ts.URL, quickSpec()); code != http.StatusOK {
		t.Errorf("third submit = %d, want 200", code)
	}
	if n := len(svc.List()); n != 1 {
		t.Errorf("service holds %d jobs, want 1", n)
	}
}

// TestQueueFullRejects429 pins the backpressure contract with workers
// held at a gate: depth+workers jobs are admitted, the next is
// rejected with 429 and a Retry-After header.
func TestQueueFullRejects429(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 8)
	svc, ts := newTestService(t, Config{
		QueueDepth: 2,
		Workers:    1,
		beforeRun:  func(j *Job) { started <- j.ID; <-gate },
	})
	defer close(gate)

	// Job 1 occupies the worker; jobs 2 and 3 fill the queue.
	for seed := int64(1); seed <= 3; seed++ {
		js := quickSpec()
		js.Seed = seed
		if code, _ := postJob(t, ts.URL, js); code != http.StatusAccepted {
			t.Fatalf("seed %d submit = %d, want 202", seed, code)
		}
		if seed == 1 {
			<-started // worker is now blocked inside job 1
		}
	}
	if n := svc.QueueLen(); n != 2 {
		t.Fatalf("queue length = %d, want 2", n)
	}

	js := quickSpec()
	js.Seed = 4
	body, _ := json.Marshal(js)
	resp, err := http.Post(ts.URL+"/api/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("429 without Retry-After")
	}
}

// TestCancelQueuedAndRunning covers both DELETE paths of the state
// machine, plus resubmission of a canceled job.
func TestCancelQueuedAndRunning(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 8)
	_, ts := newTestService(t, Config{
		Workers:   1,
		beforeRun: func(j *Job) { started <- j.ID; <-gate },
	})
	defer close(gate)

	runningSpec := quickSpec()
	_, running := postJob(t, ts.URL, runningSpec)
	<-started
	queuedSpec := quickSpec()
	queuedSpec.Seed = 2
	_, queued := postJob(t, ts.URL, queuedSpec)

	del := func(id string) (int, map[string]any) {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&m)
		return resp.StatusCode, m
	}

	// Queued job: canceled immediately, before any execution.
	if code, m := del(queued.ID); code != http.StatusOK || m["state"] != string(StateCanceled) {
		t.Fatalf("cancel queued = %d %v", code, m)
	}
	// Running job: the DELETE reports running; the worker resolves the
	// cancellation once it observes the context.
	if code, m := del(running.ID); code != http.StatusOK || m["state"] != string(StateRunning) {
		t.Fatalf("cancel running = %d %v", code, m)
	}
	gate <- struct{}{} // release the running job into its canceled context
	st := waitTerminal(t, ts.URL, running.ID)
	if st.State != StateCanceled {
		t.Fatalf("running job after cancel = %s (%s)", st.State, st.Error)
	}
	// Result of a canceled job is a conflict naming the state.
	if code, _, body := getBody(t, ts.URL+"/api/jobs/"+running.ID+"/result"); code != http.StatusConflict || !strings.Contains(string(body), "canceled") {
		t.Errorf("result of canceled job = %d %s", code, body)
	}

	// Resubmitting the canceled spec re-enqueues the same job.
	code, st2 := postJob(t, ts.URL, runningSpec)
	if code != http.StatusAccepted || st2.ID != running.ID {
		t.Fatalf("resubmit after cancel = %d %+v", code, st2)
	}
	<-started
	gate <- struct{}{}
	if st := waitTerminal(t, ts.URL, running.ID); st.State != StateDone {
		t.Fatalf("re-run after cancel = %s (%s)", st.State, st.Error)
	}
}

// TestShutdownDrains pins graceful shutdown: intake closes, queued
// jobs abort without running, the running job completes.
func TestShutdownDrains(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 8)
	svc := New(Config{Workers: 1, beforeRun: func(j *Job) { started <- j.ID; <-gate }})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	_, running := postJob(t, ts.URL, quickSpec())
	<-started
	queuedSpec := quickSpec()
	queuedSpec.Seed = 2
	_, queued := postJob(t, ts.URL, queuedSpec)

	errc := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		errc <- svc.Shutdown(ctx)
	}()

	// Intake is closed while the drain runs.
	deadline := time.Now().Add(5 * time.Second)
	for {
		js := quickSpec()
		js.Seed = 3
		body, _ := json.Marshal(js)
		resp, err := http.Post(ts.URL+"/api/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("submit during shutdown = %d, want 503", resp.StatusCode)
		}
		time.Sleep(2 * time.Millisecond)
	}

	close(gate) // let the running job finish
	if err := <-errc; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	if j, _ := svc.Get(running.ID); j.State() != StateDone {
		t.Errorf("running job drained to %s, want done", j.State())
	}
	if j, _ := svc.Get(queued.ID); j.State() != StateAborted {
		t.Errorf("queued job drained to %s, want aborted", j.State())
	}
}

// TestShutdownForcedAbort pins the hard path: when the drain deadline
// expires, running jobs' contexts are canceled and they end aborted.
func TestShutdownForcedAbort(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 1)
	svc := New(Config{Workers: 1, beforeRun: func(j *Job) { started <- j.ID; <-gate }})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Long enough that the drain deadline expires mid-run; the per-tick
	// context check then lands deterministically.
	js := quickSpec()
	js.Iterations = 100000
	_, st := postJob(t, ts.URL, js)
	<-started
	close(gate)

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	errc := make(chan error, 1)
	go func() { errc <- svc.Shutdown(ctx) }()
	if err := <-errc; !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("forced shutdown returned %v, want DeadlineExceeded", err)
	}
	j, _ := svc.Get(st.ID)
	if j.State() != StateAborted {
		t.Errorf("job after forced shutdown = %s, want aborted", j.State())
	}
}

// TestGoldenTraceThroughServe pins end-to-end determinism: the golden
// fixture configuration submitted as a job yields the exact bytes of
// testdata/golden_pm_ammp.csv through the serve path.
func TestGoldenTraceThroughServe(t *testing.T) {
	_, ts := newTestService(t, Config{})
	_, st := postJob(t, ts.URL, quickSpec())
	if final := waitTerminal(t, ts.URL, st.ID); final.State != StateDone {
		t.Fatalf("job = %s (%s)", final.State, final.Error)
	}
	code, hdr, got := getBody(t, ts.URL+"/api/jobs/"+st.ID+"/result?format=csv")
	if code != http.StatusOK {
		t.Fatalf("csv result = %d: %s", code, got)
	}
	if ct := hdr.Get("Content-Type"); ct != "text/csv" {
		t.Errorf("csv content type = %q", ct)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "testdata", "golden_pm_ammp.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("serve-path trace differs from the golden fixture (%d vs %d bytes)", len(got), len(want))
	}
}

// TestClusterAndExperimentJobs exercises the two non-single dispatch
// paths end to end.
func TestClusterAndExperimentJobs(t *testing.T) {
	_, ts := newTestService(t, Config{})
	_, cl := postJob(t, ts.URL, JobSpec{Workload: "gzip", Seed: 7, Nodes: 2, BudgetW: 30, Iterations: 1})
	_, ex := postJob(t, ts.URL, JobSpec{Experiment: "table4", Seed: 7})

	if st := waitTerminal(t, ts.URL, cl.ID); st.State != StateDone {
		t.Fatalf("cluster job = %s (%s)", st.State, st.Error)
	}
	_, _, body := getBody(t, ts.URL+"/api/jobs/"+cl.ID+"/result")
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Nodes) != 2 || res.MakespanSec <= 0 || res.PeakTotalW <= 0 {
		t.Errorf("cluster result = %+v", res)
	}
	// Cluster jobs have no single-machine trace.
	if code, _, _ := getBody(t, ts.URL+"/api/jobs/"+cl.ID+"/result?format=csv"); code != http.StatusBadRequest {
		t.Errorf("cluster csv = %d, want 400", code)
	}

	if st := waitTerminal(t, ts.URL, ex.ID); st.State != StateDone {
		t.Fatalf("experiment job = %s (%s)", st.State, st.Error)
	}
	_, _, body = getBody(t, ts.URL+"/api/jobs/"+ex.ID+"/result")
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Experiment != "table4" || res.Output == "" {
		t.Errorf("experiment result = %+v", res)
	}
}

// TestFleetJob routes a levels>1 cluster job through the hierarchical
// fleet coordinator and checks the aggregate-only result shape.
func TestFleetJob(t *testing.T) {
	_, ts := newTestService(t, Config{})
	_, fl := postJob(t, ts.URL, JobSpec{
		Workload: "gzip", Seed: 7, Nodes: 8, BudgetW: 120,
		Levels: 2, Fanout: 4, Iterations: 1,
	})
	if st := waitTerminal(t, ts.URL, fl.ID); st.State != StateDone {
		t.Fatalf("fleet job = %s (%s)", st.State, st.Error)
	}
	_, _, body := getBody(t, ts.URL+"/api/jobs/"+fl.ID+"/result")
	var res Result
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Policy != "fleet-pm/L2" {
		t.Errorf("policy = %q, want fleet-pm/L2", res.Policy)
	}
	if len(res.Nodes) != 8 || res.MakespanSec <= 0 || res.PeakTotalW <= 0 ||
		res.EnergyJ <= 0 || res.Ticks <= 0 {
		t.Errorf("fleet result = %+v", res)
	}
	// Fleet jobs retain no per-interval trace.
	if code, _, _ := getBody(t, ts.URL+"/api/jobs/"+fl.ID+"/result?format=csv"); code != http.StatusBadRequest {
		t.Errorf("fleet csv = %d, want 400", code)
	}

	// Validation: fanout without levels, and levels out of range.
	if code, _ := postJob(t, ts.URL, JobSpec{Workload: "gzip", Nodes: 4, BudgetW: 60, Fanout: 4}); code != http.StatusBadRequest {
		t.Errorf("fanout-without-levels = %d, want 400", code)
	}
	if code, _ := postJob(t, ts.URL, JobSpec{Workload: "gzip", Nodes: 4, BudgetW: 60, Levels: 99}); code != http.StatusBadRequest {
		t.Errorf("levels=99 = %d, want 400", code)
	}
}

// TestAcceptance32Jobs is the issue's acceptance scenario: 32 jobs
// against queue depth 8 with 4 workers either complete or are rejected
// with 429, deterministically — the workers are gated so admission
// arithmetic is exact: workers + depth accepted, the rest rejected.
func TestAcceptance32Jobs(t *testing.T) {
	const n = 32
	gate := make(chan struct{})
	started := make(chan string, n)
	svc, ts := newTestService(t, Config{
		QueueDepth: 8,
		Workers:    4,
		beforeRun: func(j *Job) {
			started <- j.ID
			<-gate
		},
	})
	workers := svc.Workers() // min(GOMAXPROCS, 4) on small hosts

	var accepted, rejected []string
	for i := 0; i < n; i++ {
		js := quickSpec()
		js.Seed = int64(100 + i)
		code, st := postJob(t, ts.URL, js)
		switch code {
		case http.StatusAccepted:
			accepted = append(accepted, st.ID)
		case http.StatusTooManyRequests:
			rejected = append(rejected, js.ID())
		default:
			t.Fatalf("job %d: status %d", i, code)
		}
		if len(accepted) == workers {
			// Wait until every worker is parked inside a job so the
			// remaining admissions are purely queue slots.
			for len(started) < workers {
				time.Sleep(time.Millisecond)
			}
		}
	}
	if want := workers + 8; len(accepted) != want {
		t.Fatalf("accepted %d jobs, want %d (workers=%d + depth=8)", len(accepted), want, workers)
	}
	if len(accepted)+len(rejected) != n {
		t.Fatalf("accepted %d + rejected %d != %d", len(accepted), len(rejected), n)
	}
	close(gate)
	for _, id := range accepted {
		if st := waitTerminal(t, ts.URL, id); st.State != StateDone {
			t.Errorf("accepted job %s ended %s (%s)", id, st.State, st.Error)
		}
	}
	// Every rejected spec was never registered.
	for _, id := range rejected {
		if _, ok := svc.Get(id); ok {
			t.Errorf("rejected job %s is registered", id)
		}
	}
}

// TestMetricsScrapeUnderLoad runs 4 jobs while concurrently rendering
// the Prometheus exposition — the -race check that the serve telemetry
// and the per-run observers share the registry safely.
func TestMetricsScrapeUnderLoad(t *testing.T) {
	svc, ts := newTestService(t, Config{Workers: 4})
	var ids []string
	for i := 0; i < 4; i++ {
		js := quickSpec()
		js.Seed = int64(200 + i)
		code, st := postJob(t, ts.URL, js)
		if code != http.StatusAccepted {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids = append(ids, st.ID)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	var scrapes int
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			if err := svc.Registry().WritePrometheus(&buf); err != nil {
				t.Errorf("scrape: %v", err)
				return
			}
			scrapes++
		}
	}()
	for _, id := range ids {
		if st := waitTerminal(t, ts.URL, id); st.State != StateDone {
			t.Errorf("job %s = %s (%s)", id, st.State, st.Error)
		}
	}
	close(stop)
	wg.Wait()
	if scrapes == 0 {
		t.Fatal("no concurrent scrapes completed")
	}
	var buf bytes.Buffer
	if err := svc.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	expo := buf.String()
	for _, want := range []string{
		MetricQueueDepth,
		MetricJobs + `{state="done"} 4`,
		MetricCacheMiss + " 4",
		MetricJobWall + "_count 4",
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestEventStreamLive subscribes before the job finishes and checks
// the stream delivers live lines and terminates at the terminal state.
func TestEventStreamLive(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan string, 1)
	_, ts := newTestService(t, Config{
		Workers:       1,
		ProgressEvery: 10,
		beforeRun:     func(j *Job) { started <- j.ID; <-gate },
	})
	_, st := postJob(t, ts.URL, quickSpec())
	<-started

	resp, err := http.Get(ts.URL + "/api/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	close(gate)                     // job runs while we read
	b, err := io.ReadAll(resp.Body) // returns once the stream closes at terminal state
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(b)), "\n")
	var last progressEvent
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &last); err != nil {
		t.Fatal(err)
	}
	if last.Type != "state" || last.State != StateDone {
		t.Errorf("stream ended on %+v, want state/done", last)
	}
}

// TestDeadlineFailsJob pins the per-job timeout: a job that cannot
// finish inside JobTimeout ends failed with a deadline message.
func TestDeadlineFailsJob(t *testing.T) {
	_, ts := newTestService(t, Config{JobTimeout: 30 * time.Millisecond})
	js := JobSpec{Workload: "ammp", Seed: 1, Iterations: 100000}
	_, st := postJob(t, ts.URL, js)
	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "deadline") {
		t.Fatalf("state = %s (%q), want failed with deadline detail", final.State, final.Error)
	}
	// A fresh submission of the failed spec re-enqueues it.
	code, _ := postJob(t, ts.URL, js)
	if code != http.StatusAccepted {
		t.Errorf("resubmit of failed job = %d, want 202", code)
	}
	waitTerminal(t, ts.URL, st.ID)
}
