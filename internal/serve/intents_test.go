package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aapm/internal/intent"
)

// newFleetService starts a service hosting a small resident fleet.
func newFleetService(t *testing.T) (*Service, *httptest.Server) {
	t.Helper()
	s := New(Config{
		Workers: 1,
		Fleet: &FleetOptions{
			Nodes:           8,
			Levels:          2,
			Fanout:          4,
			EpochTicks:      5,
			GenerationTicks: 100,
			GenerationGap:   5 * time.Millisecond,
		},
	})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	if s.fleet == nil {
		t.Fatalf("fleet host missing: %s", s.fleetErr)
	}
	return s, srv
}

func postIntent(t *testing.T, srv *httptest.Server, body string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/api/intents", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, m
}

// TestIntentAPIEndToEnd drives the full REST surface against a live
// resident fleet: declare a cap, watch it converge, bounce an
// infeasible floor with a structured 422, exercise idempotent
// resubmission and deletion.
func TestIntentAPIEndToEnd(t *testing.T) {
	_, srv := newFleetService(t)

	// Declare a binding cap on group 0 (4 nodes drawing ~55 W when
	// unconstrained under the default 96 W budget).
	resp, _ := postIntent(t, srv, `{"kind":"cap","level":1,"group":0,"watts":30}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("POST intent = %d, want 201", resp.StatusCode)
	}
	id := intent.Spec{Kind: intent.KindCap, Level: 1, Group: 0, Watts: 30}.ID()

	// Resubmission of the identical spec is an idempotent 200.
	resp, _ = postIntent(t, srv, `{"kind":"cap","level":1,"group":0,"watts":30}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("idempotent POST = %d, want 200", resp.StatusCode)
	}

	// Poll status until the reconcile loop reports convergence.
	deadline := time.Now().Add(15 * time.Second)
	var st intent.Status
	for {
		r, err := http.Get(srv.URL + "/api/intents/" + id + "/status")
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET status = %d", r.StatusCode)
		}
		if err := json.NewDecoder(r.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if st.State == intent.StateConverged {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("intent never converged: %+v", st)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if st.ObservedW > 30+1e-9 {
		t.Errorf("converged at %.2f W over the 30 W cap", st.ObservedW)
	}
	if st.Phase != intent.PhaseSoft {
		t.Errorf("soft enforcement sufficed but phase = %s", st.Phase)
	}

	// Infeasible intent: a floor past the subtree's achievable power
	// answers 422 with a machine-readable reason.
	resp, m := postIntent(t, srv, `{"kind":"floor","level":1,"group":1,"watts":500}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("infeasible POST = %d, want 422", resp.StatusCode)
	}
	var reason intent.Reason
	if err := json.Unmarshal(m["reason"], &reason); err != nil {
		t.Fatalf("422 without structured reason: %v (%s)", err, m)
	}
	if reason.Code != intent.ReasonFloorExceedsCap || reason.Detail == "" {
		t.Errorf("reason %+v", reason)
	}

	// Malformed specs are 4xx too: bad JSON 400, bad shape 422.
	resp, _ = postIntent(t, srv, `{"kind":"boost","level":1,"group":0}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("unknown kind = %d, want 422", resp.StatusCode)
	}

	// Listing shows the fleet summary and the admitted intent.
	r, err := http.Get(srv.URL + "/api/intents")
	if err != nil {
		t.Fatal(err)
	}
	var listing struct {
		Fleet   map[string]any  `json:"fleet"`
		Intents []intent.Status `json:"intents"`
	}
	if err := json.NewDecoder(r.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if len(listing.Intents) != 1 || listing.Intents[0].ID != id {
		t.Fatalf("listing %+v", listing.Intents)
	}
	if listing.Fleet["nodes"] != float64(8) {
		t.Errorf("fleet info %+v", listing.Fleet)
	}

	// Withdraw the intent; a second delete 404s.
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/api/intents/"+id, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", dresp.StatusCode)
	}
	dresp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("second DELETE = %d, want 404", dresp.StatusCode)
	}
}

// TestIntentAPIWithoutFleet pins the 503 contract when the service
// hosts no fleet.
func TestIntentAPIWithoutFleet(t *testing.T) {
	s := New(Config{Workers: 1})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	for _, path := range []string{"/api/intents", "/api/intents/nabc"} {
		r, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("GET %s = %d, want 503", path, r.StatusCode)
		}
	}
}

// TestFleetHostInvalidConfig pins the degraded mode: a fleet config
// the coordinator rejects leaves the service serving jobs, with the
// intent endpoints naming the failure.
func TestFleetHostInvalidConfig(t *testing.T) {
	s := New(Config{
		Workers: 1,
		// Budget below the floor guarantee: the coordinator rejects it.
		Fleet: &FleetOptions{Nodes: 8, BudgetW: 1},
	})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	if s.fleet != nil || s.fleetErr == "" {
		t.Fatalf("fleet host %v, err %q", s.fleet, s.fleetErr)
	}
	r, err := http.Get(srv.URL + "/api/intents")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET = %d, want 503", r.StatusCode)
	}
	var m map[string]string
	if err := json.NewDecoder(r.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(m["error"], "failed to start") {
		t.Errorf("503 body %+v does not name the failure", m)
	}
}
