package serve

import "container/list"

// Eviction reasons recorded per evicted job and used as the telemetry
// label on the evicted-jobs counter.
const (
	evictReasonLRU   = "lru"   // retained-job count exceeded MaxJobs
	evictReasonBytes = "bytes" // summed result bytes exceeded MaxResultBytes
)

// storeEntry is one retained job plus its positions in the store's two
// orderings.
type storeEntry struct {
	job *Job
	sub *list.Element // submission order (listings)
	lru *list.Element // access order, front = least recently used

	// terminal mirrors the job's lifecycle so eviction scans never take
	// a job lock: the service flips it on every terminal transition and
	// clears it on re-enqueue, always under the service mutex.
	terminal bool
	// accounted is the result-byte count charged against MaxResultBytes
	// for this entry (len of the cached result at completion).
	accounted int64
}

// jobStore is the bounded job table behind Service.jobs in round 1:
// every retained job, in submission order for listings and LRU order
// for eviction. Only *terminal* jobs are ever evicted — queued and
// running jobs are pinned regardless of pressure — so with
// maxJobs >= QueueDepth + Workers the retained count stays at or under
// maxJobs whenever the service is quiescent, and within the live-job
// slack otherwise. maxJobs/maxBytes of 0 disable that bound (the
// round-1 retain-everything behavior, which the pre-existing e2e suite
// runs under).
//
// Evicted IDs are remembered (id → reason) in a bounded ring so a
// later GET can answer "404: evicted (reason)" instead of a bare
// unknown-job 404; once the ring wraps, the oldest evictions degrade
// to plain 404s.
//
// The store does no locking: every method runs under Service.mu.
type jobStore struct {
	maxJobs  int
	maxBytes int64

	entries map[string]*storeEntry
	bySub   *list.List // of *storeEntry
	byLRU   *list.List // of *storeEntry
	bytes   int64      // summed accounted result bytes

	evicted     map[string]string // id → reason, for 404-with-reason
	evictedRing []string          // FIFO of recorded ids, bounds the map
	evictedNext int
}

// evictedMemory bounds the evicted-id record independently of MaxJobs:
// enough to answer any plausible in-flight poller, small enough to
// never matter for the heap bound the churn test pins.
const evictedMemory = 4096

func newJobStore(maxJobs int, maxBytes int64) *jobStore {
	return &jobStore{
		maxJobs:  maxJobs,
		maxBytes: maxBytes,
		entries:  make(map[string]*storeEntry),
		bySub:    list.New(),
		byLRU:    list.New(),
		evicted:  make(map[string]string),
	}
}

// add inserts a brand-new job (most recently used). Any eviction
// record for the same ID is cleared: the spec is live again.
func (st *jobStore) add(j *Job) {
	e := &storeEntry{job: j}
	e.sub = st.bySub.PushBack(e)
	e.lru = st.byLRU.PushBack(e)
	st.entries[j.ID] = e
	delete(st.evicted, j.ID)
}

// get returns the job and marks it most recently used.
func (st *jobStore) get(id string) (*Job, bool) {
	e, ok := st.entries[id]
	if !ok {
		return nil, false
	}
	st.byLRU.MoveToBack(e.lru)
	return e.job, true
}

// list returns the retained jobs in submission order.
func (st *jobStore) list() []*Job {
	out := make([]*Job, 0, st.bySub.Len())
	for el := st.bySub.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*storeEntry).job)
	}
	return out
}

func (st *jobStore) len() int { return len(st.entries) }

// resultBytes returns the summed cached-result bytes currently
// retained (the telemetry gauge).
func (st *jobStore) resultBytes() int64 { return st.bytes }

// markTerminal records that the job reached a terminal state carrying
// resultLen cached bytes, making it eligible for eviction.
func (st *jobStore) markTerminal(id string, resultLen int) {
	e, ok := st.entries[id]
	if !ok || e.terminal {
		return
	}
	e.terminal = true
	e.accounted = int64(resultLen)
	st.bytes += e.accounted
}

// markLive clears a re-enqueued job's terminal flag (and its byte
// charge — the re-run discards the old result).
func (st *jobStore) markLive(id string) {
	e, ok := st.entries[id]
	if !ok || !e.terminal {
		return
	}
	e.terminal = false
	st.bytes -= e.accounted
	e.accounted = 0
}

// evict drops least-recently-used terminal jobs until the store is
// back under both bounds, reporting each eviction (job, reason) to
// onEvict. Live jobs are skipped, so a burst of in-flight work larger
// than maxJobs is tolerated and trimmed as it completes.
func (st *jobStore) evict(onEvict func(j *Job, reason string)) {
	for {
		var reason string
		switch {
		case st.maxJobs > 0 && len(st.entries) > st.maxJobs:
			reason = evictReasonLRU
		case st.maxBytes > 0 && st.bytes > st.maxBytes:
			reason = evictReasonBytes
		default:
			return
		}
		victim := (*storeEntry)(nil)
		for el := st.byLRU.Front(); el != nil; el = el.Next() {
			if e := el.Value.(*storeEntry); e.terminal {
				victim = e
				break
			}
		}
		if victim == nil {
			return // everything retained is live; trim later
		}
		st.remove(victim, reason)
		if onEvict != nil {
			onEvict(victim.job, reason)
		}
	}
}

// remove drops an entry and records why.
func (st *jobStore) remove(e *storeEntry, reason string) {
	delete(st.entries, e.job.ID)
	st.bySub.Remove(e.sub)
	st.byLRU.Remove(e.lru)
	st.bytes -= e.accounted
	st.recordEvicted(e.job.ID, reason)
}

// recordEvicted remembers an evicted ID in the bounded ring,
// forgetting the oldest record once full.
func (st *jobStore) recordEvicted(id, reason string) {
	if len(st.evictedRing) < evictedMemory {
		st.evictedRing = append(st.evictedRing, id)
	} else {
		old := st.evictedRing[st.evictedNext]
		// A resubmission may have cleared the record already; only
		// forget it if it still refers to the evicted generation.
		if _, live := st.entries[old]; !live {
			delete(st.evicted, old)
		}
		st.evictedRing[st.evictedNext] = id
		st.evictedNext = (st.evictedNext + 1) % evictedMemory
	}
	st.evicted[id] = reason
}

// evictedReason reports whether (and why) an ID was evicted.
func (st *jobStore) evictedReason(id string) (string, bool) {
	r, ok := st.evicted[id]
	return r, ok
}
