package serve

import (
	"net/http"
	"strings"

	"aapm/internal/obs"
)

// Names of the default SLO objectives the service feeds. Custom
// Config.SLOObjectives sets reuse these names to keep the built-in
// instrumentation flowing into them.
const (
	// SLOSubmitLatency is a latency objective over Submit wall time
	// (every accepted submission, cache hits included).
	SLOSubmitLatency = "submit_p99"
	// SLOCompletionLatency is a latency objective over run wall time
	// (every job that reached a worker).
	SLOCompletionLatency = "completion_latency"
	// SLOErrorRate is an events objective: failed/aborted outcomes
	// spend the budget; done and deliberate cancels do not.
	SLOErrorRate = "error_rate"
	// SLOTenantFairness is a share objective over per-tenant
	// completions, judged against the DRR TenantWeights.
	SLOTenantFairness = "tenant_fairness"
)

// DefaultObjectives is the objective set a Service evaluates when
// Config.SLOObjectives is nil: submit p99 ≤ 250 ms at a 1% budget,
// completion latency ≤ 30 s at 5%, error rate ≤ 1%, and per-tenant
// completion shares within 20% of the DRR weights. All use the
// standard 5 m / 1 h burn windows with threshold 2.
func DefaultObjectives(tenantWeights map[string]int) []obs.Objective {
	weights := make(map[string]float64, len(tenantWeights))
	for t, w := range tenantWeights {
		if w > 0 {
			weights[tenantLabel(t)] = float64(w)
		}
	}
	return []obs.Objective{
		{
			Name:        SLOSubmitLatency,
			Description: "99% of submissions admitted within 250ms",
			TargetSec:   0.25, Budget: 0.01,
		},
		{
			Name:        SLOCompletionLatency,
			Description: "95% of runs complete within 30s of starting",
			TargetSec:   30, Budget: 0.05,
		},
		{
			Name:        SLOErrorRate,
			Kind:        obs.KindEvents,
			Description: "99% of runs end done (or deliberately canceled)",
			Budget:      0.01,
		},
		{
			Name:         SLOTenantFairness,
			Kind:         obs.KindShare,
			Description:  "per-tenant completion shares track the DRR weights",
			MaxDeviation: 0.2,
			Weights:      weights,
			MinSamples:   20,
		},
	}
}

// SLO exposes the service's burn-rate engine (tests and embedders
// inject observations or read status directly).
func (s *Service) SLO() *obs.Engine { return s.slo }

// Tracer exposes the service's span store.
func (s *Service) Tracer() *obs.Tracer { return s.tracer }

// handleSLO serves GET /api/slo: every objective's burn-rate state.
func (s *Service) handleSLO(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, http.StatusOK, s.slo.Status())
}

// handleHealthz serves GET /healthz: 200 while no SLO objective
// breaches, 503 with the breach reasons once one does — the shape load
// balancers and the loadgen exit gate consume.
func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	healthy, reasons := s.slo.Healthy()
	code := http.StatusOK
	body := map[string]any{"healthy": healthy}
	if !healthy {
		code = http.StatusServiceUnavailable
		body["reasons"] = reasons
	}
	writeJSON(w, code, body)
}

// traceStatus is the JSON shape of GET /api/trace/{jobID}.
type traceStatus struct {
	Job     string     `json:"job"`
	TraceID string     `json:"trace_id,omitempty"`
	Sampled bool       `json:"sampled"`
	Dropped uint64     `json:"dropped,omitempty"`
	Spans   []obs.Span `json:"spans"`
}

// handleTrace serves GET /api/trace/{jobID}: the job's current
// attempt's recorded spans from the bounded span store. Unsampled
// traces answer 200 with sampled=false and no spans (the trace ID is
// real; the store just never saw it). ?format=perfetto renders the
// spans as a Chrome trace-event JSON array instead.
func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	id := strings.TrimPrefix(r.URL.Path, "/api/trace/")
	if id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusNotFound, "want /api/trace/{jobID}")
		return
	}
	j, ok := s.Get(id)
	if !ok {
		httpError(w, http.StatusNotFound, ErrUnknownJob.Error())
		return
	}
	tid := j.TraceID()
	spans, dropped, sampled := s.tracer.Spans(tid)
	if r.URL.Query().Get("format") == "perfetto" {
		if !sampled {
			httpError(w, http.StatusNotFound, "trace not sampled (raise TraceSampleRate or the tenant's rate)")
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = obs.WritePerfetto(w, tid, spans)
		return
	}
	if spans == nil {
		spans = []obs.Span{}
	}
	writeJSON(w, http.StatusOK, traceStatus{
		Job: j.ID, TraceID: tid, Sampled: sampled, Dropped: dropped, Spans: spans,
	})
}

// handleFlight serves GET /api/jobs/{id}/flight: the flight-recorder
// dump stored when the job's last attempt ended badly. 404 until (and
// unless) a dump exists.
func (s *Service) handleFlight(w http.ResponseWriter, j *Job) {
	j.mu.Lock()
	dump := j.flightDump
	j.mu.Unlock()
	if dump == nil {
		httpError(w, http.StatusNotFound, "no flight-recorder dump for this job (dumps are stored when an attempt fails, aborts, or lands during an SLO burn)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(dump)
}
