package serve

import (
	"sync"
	"time"
)

// tenantLimiter is a per-tenant token bucket set gating job intake:
// each tenant's bucket refills at rate tokens/sec up to burst, and a
// submission that would enqueue work spends one token. A submission
// with no token available is rejected (HTTP 429) — cache-hit and
// join-existing submissions are free, since they enqueue nothing.
//
// The bucket map is bounded: when it outgrows maxBuckets, buckets that
// have refilled back to full are dropped — a full bucket is
// indistinguishable from a fresh one, so forgetting it changes
// nothing.
type tenantLimiter struct {
	rate  float64 // tokens per second; <= 0 disables the limiter
	burst float64
	now   func() time.Time

	mu sync.Mutex
	m  map[string]*tokenBucket
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

const maxBuckets = 4096

// newTenantLimiter returns nil when rate <= 0 (limiting off); a nil
// limiter admits everything.
func newTenantLimiter(rate float64, burst int, now func() time.Time) *tenantLimiter {
	if rate <= 0 {
		return nil
	}
	b := float64(burst)
	if b < 1 {
		// Default burst: a couple of seconds of headroom, at least one
		// whole token so a single submission is always admissible.
		b = 2 * rate
		if b < 1 {
			b = 1
		}
	}
	if now == nil {
		now = time.Now
	}
	return &tenantLimiter{rate: rate, burst: b, now: now, m: make(map[string]*tokenBucket)}
}

// allow spends one of the tenant's tokens, reporting false when none
// has accrued yet.
func (l *tenantLimiter) allow(tenant string) bool {
	if l == nil {
		return true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.refillLocked(tenant)
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// refund returns a spent token (the submission was admitted by the
// limiter but then rejected by the queue — the tenant did not get the
// work it paid for).
func (l *tenantLimiter) refund(tenant string) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.refillLocked(tenant)
	if b.tokens++; b.tokens > l.burst {
		b.tokens = l.burst
	}
}

func (l *tenantLimiter) refillLocked(tenant string) *tokenBucket {
	t := l.now()
	b, ok := l.m[tenant]
	if !ok {
		if len(l.m) >= maxBuckets {
			l.dropFullLocked(t)
		}
		b = &tokenBucket{tokens: l.burst, last: t}
		l.m[tenant] = b
		return b
	}
	if dt := t.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
	}
	b.last = t
	return b
}

// dropFullLocked forgets buckets that have refilled to capacity.
func (l *tenantLimiter) dropFullLocked(t time.Time) {
	for tenant, b := range l.m {
		if b.tokens+t.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.m, tenant)
		}
	}
}
