package serve

import (
	"errors"
	"sync"
)

// Queue-admission errors. The HTTP layer maps ErrQueueFull to
// 429 Too Many Requests with a Retry-After header (the service's
// backpressure contract: a full queue rejects immediately — it never
// buffers unboundedly) and ErrClosed to 503 Service Unavailable.
var (
	ErrQueueFull = errors.New("serve: job queue full")
	ErrClosed    = errors.New("serve: service shutting down")
)

// jobQueue is a bounded FIFO of pending jobs. push never blocks (a
// full queue is an immediate error — backpressure belongs to the
// caller, not to a growing buffer); pop blocks until a job, or until
// the queue is closed and empty. onDepth, when set, observes every
// depth change (the telemetry queue-depth gauge).
type jobQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	items   []*Job
	depth   int
	closed  bool
	onDepth func(n int)
}

func newJobQueue(depth int, onDepth func(int)) *jobQueue {
	q := &jobQueue{depth: depth, onDepth: onDepth}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// push appends j, failing fast when the queue is full or closed.
func (q *jobQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if len(q.items) >= q.depth {
		return ErrQueueFull
	}
	q.items = append(q.items, j)
	q.noteDepthLocked()
	q.cond.Signal()
	return nil
}

// pop removes and returns the oldest job, blocking while the queue is
// open and empty. ok is false once the queue is closed and drained —
// the workers' exit signal.
func (q *jobQueue) pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j = q.items[0]
	q.items = q.items[1:]
	q.noteDepthLocked()
	return j, true
}

// remove deletes the job with the given ID if it is still pending
// (a queued-job cancellation), preserving FIFO order of the rest.
func (q *jobQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for i, j := range q.items {
		if j.ID == id {
			q.items = append(q.items[:i], q.items[i+1:]...)
			q.noteDepthLocked()
			return true
		}
	}
	return false
}

// close marks the queue closed and returns every still-pending job
// (shutdown marks them aborted). Blocked pops wake and return false
// once the backlog is gone.
func (q *jobQueue) close() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed && len(q.items) == 0 {
		return nil
	}
	q.closed = true
	drained := q.items
	q.items = nil
	q.noteDepthLocked()
	q.cond.Broadcast()
	return drained
}

// len returns the current backlog size.
func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *jobQueue) noteDepthLocked() {
	if q.onDepth != nil {
		q.onDepth(len(q.items))
	}
}
