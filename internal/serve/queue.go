package serve

import (
	"errors"
	"sync"
)

// Queue-admission errors. The HTTP layer maps ErrQueueFull and
// ErrRateLimited to 429 Too Many Requests with a computed Retry-After
// header (the service's backpressure contract: a full queue or an
// over-rate tenant is rejected immediately — the service never buffers
// unboundedly) and ErrClosed to 503 Service Unavailable.
var (
	ErrQueueFull   = errors.New("serve: job queue full")
	ErrRateLimited = errors.New("serve: tenant over intake rate")
	ErrClosed      = errors.New("serve: service shutting down")
)

// tenantFIFO is one tenant's pending sub-queue: a head-index slice so
// pop is O(1) without re-slicing away the backing array. Every vacated
// slot is nil'ed immediately — a popped or removed *Job must become
// collectable the moment the caller drops it, not when the backing
// array happens to be reallocated (the round-1 retention bug).
type tenantFIFO struct {
	tenant  string
	items   []*Job // items[head:] holds the pending window; removed slots are nil
	head    int
	n       int // live (non-nil) entries in items[head:]
	deficit int // deficit round-robin credit, in jobs
	weight  int // credit added per scheduling round
	active  bool
}

// popFront returns the oldest live job, nil'ing its slot. The caller
// guarantees n > 0.
func (f *tenantFIFO) popFront() *Job {
	var j *Job
	for j == nil {
		j = f.items[f.head]
		f.items[f.head] = nil
		f.head++
	}
	f.n--
	f.compact()
	return j
}

// compact bounds the backing array: once the consumed prefix reaches
// half the slice, shift the live window down and truncate, nil'ing the
// vacated tail so no *Job outlives its dequeue. Amortized O(1).
func (f *tenantFIFO) compact() {
	if f.head == len(f.items) {
		f.items = f.items[:0]
		f.head = 0
		return
	}
	if f.head < 64 || f.head*2 < len(f.items) {
		return
	}
	n := copy(f.items, f.items[f.head:])
	tail := f.items[n:]
	for i := range tail {
		tail[i] = nil
	}
	f.items = f.items[:n]
	f.head = 0
}

// jobQueue is the bounded pending-job buffer, split into per-tenant
// FIFOs drained by deficit round-robin: each scheduling round, an
// active tenant earns `weight` credits and pops one job per credit, so
// over any contended window tenants complete work in proportion to
// their weights (all jobs cost one credit — fairness is in job counts,
// which the load harness verifies end to end).
//
// push never blocks (a full queue is an immediate error — backpressure
// belongs to the caller, not to a growing buffer); pop blocks until a
// job, or until the queue is closed and empty. onDepth/onTenantDepth,
// when set, observe every depth change (the telemetry gauges).
type jobQueue struct {
	mu      sync.Mutex
	cond    *sync.Cond
	depth   int // global bound across all tenants
	size    int // total pending
	closed  bool
	tenants map[string]*tenantFIFO
	ring    []*tenantFIFO // active (non-empty) tenants in round-robin order
	cursor  int

	weightFor     func(tenant string) int
	onDepth       func(n int)
	onTenantDepth func(tenant string, n int)
}

func newJobQueue(depth int, weightFor func(string) int, onDepth func(int), onTenantDepth func(string, int)) *jobQueue {
	if weightFor == nil {
		weightFor = func(string) int { return 1 }
	}
	q := &jobQueue{
		depth:         depth,
		tenants:       make(map[string]*tenantFIFO),
		weightFor:     weightFor,
		onDepth:       onDepth,
		onTenantDepth: onTenantDepth,
	}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// fifoFor returns (creating if needed) the tenant's sub-queue.
func (q *jobQueue) fifoFor(tenant string) *tenantFIFO {
	f, ok := q.tenants[tenant]
	if !ok {
		w := q.weightFor(tenant)
		if w < 1 {
			w = 1
		}
		f = &tenantFIFO{tenant: tenant, weight: w}
		q.tenants[tenant] = f
	}
	return f
}

// push appends j to its tenant's FIFO, failing fast when the queue is
// full or closed.
func (q *jobQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if q.size >= q.depth {
		return ErrQueueFull
	}
	f := q.fifoFor(j.Spec.Tenant)
	f.items = append(f.items, j)
	f.n++
	if !f.active {
		f.active = true
		f.deficit = 0
		q.ring = append(q.ring, f)
	}
	q.size++
	q.noteDepthLocked(f)
	q.cond.Signal()
	return nil
}

// pop removes and returns the next job under deficit round-robin,
// blocking while the queue is open and empty. ok is false once the
// queue is closed and drained — the workers' exit signal.
func (q *jobQueue) pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.size == 0 && !q.closed {
		q.cond.Wait()
	}
	if q.size == 0 {
		return nil, false
	}
	// size > 0 guarantees some ring entry is non-empty, so this scan
	// terminates: empty tenants leave the ring (resetting their credit,
	// per classic DRR, so an idle tenant cannot hoard a burst).
	for {
		f := q.ring[q.cursor]
		if f.n == 0 {
			q.deactivateLocked(q.cursor)
			continue
		}
		if f.deficit < 1 {
			f.deficit += f.weight // weight >= 1, so one round suffices
		}
		j = f.popFront()
		f.deficit--
		q.size--
		if f.n == 0 {
			q.deactivateLocked(q.cursor)
		} else if f.deficit < 1 {
			q.cursor = (q.cursor + 1) % len(q.ring)
		}
		q.noteDepthLocked(f)
		return j, true
	}
}

// deactivateLocked drops ring[i], keeping the cursor on the element
// that slides into its place (modulo wrap).
func (q *jobQueue) deactivateLocked(i int) {
	f := q.ring[i]
	f.active = false
	f.deficit = 0
	copy(q.ring[i:], q.ring[i+1:])
	q.ring[len(q.ring)-1] = nil
	q.ring = q.ring[:len(q.ring)-1]
	if len(q.ring) == 0 {
		q.cursor = 0
	} else {
		q.cursor %= len(q.ring)
	}
}

// remove deletes the job with the given ID if it is still pending
// (a queued-job cancellation), preserving FIFO order of the rest. The
// slot is nil'ed in place; pop skips it.
func (q *jobQueue) remove(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, f := range q.tenants {
		for i := f.head; i < len(f.items); i++ {
			if j := f.items[i]; j != nil && j.ID == id {
				f.items[i] = nil
				f.n--
				q.size--
				q.noteDepthLocked(f)
				return true
			}
		}
	}
	return false
}

// close marks the queue closed and returns every still-pending job
// (shutdown marks them aborted), tenant by tenant in ring order, FIFO
// within each tenant. Blocked pops wake and return false once the
// backlog is gone.
func (q *jobQueue) close() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed && q.size == 0 {
		return nil
	}
	q.closed = true
	var drained []*Job
	for _, f := range q.ring {
		if f == nil {
			continue
		}
		for i := f.head; i < len(f.items); i++ {
			if j := f.items[i]; j != nil {
				drained = append(drained, j)
				f.items[i] = nil
			}
		}
		f.items, f.head, f.n, f.active, f.deficit = nil, 0, 0, false, 0
		q.noteTenantDepthLocked(f)
	}
	q.ring, q.cursor, q.size = nil, 0, 0
	if q.onDepth != nil {
		q.onDepth(0)
	}
	q.cond.Broadcast()
	return drained
}

// len returns the current backlog size across all tenants.
func (q *jobQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

func (q *jobQueue) noteDepthLocked(f *tenantFIFO) {
	if q.onDepth != nil {
		q.onDepth(q.size)
	}
	q.noteTenantDepthLocked(f)
}

func (q *jobQueue) noteTenantDepthLocked(f *tenantFIFO) {
	if q.onTenantDepth != nil {
		q.onTenantDepth(f.tenant, f.n)
	}
}
