package serve

import (
	"sync"

	"aapm/internal/telemetry"
)

// Serve-layer metric family names.
const (
	MetricQueueDepth = "aapm_serve_queue_depth"
	MetricJobs       = "aapm_serve_jobs"
	MetricJobWall    = "aapm_serve_job_wall_seconds"
	MetricCacheHits  = "aapm_serve_cache_hits_total"
	MetricCacheMiss  = "aapm_serve_cache_misses_total"
	MetricRejected   = "aapm_serve_jobs_rejected_total"
)

// jobWallBuckets spans sub-millisecond cache-priming runs to the
// multi-second cluster co-simulations.
var jobWallBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// serveTelemetry owns the run service's metric families: queue depth,
// a jobs-by-state gauge set, the per-job wall-clock histogram, and
// the cache-hit/miss and rejected-submission counters. All updates go
// through here so the by-state gauges stay consistent with the job
// state machine.
type serveTelemetry struct {
	queueDepth *telemetry.Series
	jobWall    *telemetry.Series
	cacheHits  *telemetry.Series
	cacheMiss  *telemetry.Series
	rejected   *telemetry.Series

	mu     sync.Mutex
	byName map[State]*telemetry.Series
	counts map[State]int
	jobs   *telemetry.Family
}

func newServeTelemetry(reg *telemetry.Registry) *serveTelemetry {
	t := &serveTelemetry{
		queueDepth: reg.Gauge(MetricQueueDepth, "Jobs waiting in the bounded FIFO queue.").With(),
		jobWall:    reg.Histogram(MetricJobWall, "Wall-clock from job start to terminal state (seconds).", jobWallBuckets).With(),
		cacheHits:  reg.Counter(MetricCacheHits, "Submissions served by an existing job (same canonical spec).").With(),
		cacheMiss:  reg.Counter(MetricCacheMiss, "Submissions that enqueued a new job.").With(),
		rejected:   reg.Counter(MetricRejected, "Submissions rejected by backpressure (queue full).").With(),
		jobs:       reg.Gauge(MetricJobs, "Jobs currently in each lifecycle state.", "state"),
		byName:     make(map[State]*telemetry.Series),
		counts:     make(map[State]int),
	}
	// Pre-create every state's series so a scrape shows the full state
	// space at zero instead of series popping into existence.
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateAborted} {
		t.byName[s] = t.jobs.With(string(s))
		t.byName[s].Set(0)
	}
	return t
}

// transition moves one job between states in the by-state gauges;
// from "" counts a brand-new job.
func (t *serveTelemetry) transition(from, to State) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if from != "" {
		t.counts[from]--
		t.byName[from].Set(float64(t.counts[from]))
	}
	t.counts[to]++
	t.byName[to].Set(float64(t.counts[to]))
}
