package serve

import (
	"sync"

	"aapm/internal/telemetry"
)

// Serve-layer metric family names.
const (
	MetricQueueDepth  = "aapm_serve_queue_depth"
	MetricTenantDepth = "aapm_serve_tenant_queue_depth"
	MetricJobs        = "aapm_serve_jobs"
	MetricJobWall     = "aapm_serve_job_wall_seconds"
	MetricCacheHits   = "aapm_serve_cache_hits_total"
	MetricCacheMiss   = "aapm_serve_cache_misses_total"
	MetricRejected    = "aapm_serve_jobs_rejected_total"
	MetricRateLimited = "aapm_serve_rate_limited_total"
	MetricEvicted     = "aapm_serve_jobs_evicted_total"
	MetricResultBytes = "aapm_serve_result_bytes"
	MetricTenantDone  = "aapm_serve_tenant_completions_total"
)

// jobWallBuckets spans sub-millisecond cache-priming runs to the
// multi-second cluster co-simulations.
var jobWallBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// maxTenantSeries caps the tenant label cardinality across the
// per-tenant families: the first maxTenantSeries distinct tenants get
// their own series, the rest aggregate under "other" — a scrape must
// not grow without bound just because tenant names do.
const maxTenantSeries = 64

// tenantLabel maps the spec's tenant (possibly empty) to the
// exposition label value.
func tenantLabel(t string) string {
	if t == "" {
		return "default"
	}
	return t
}

// serveTelemetry owns the run service's metric families: queue depth
// (global and per tenant), a jobs-by-state gauge set, the per-job
// wall-clock histogram, cache-hit/miss, rejection (queue-full and
// rate-limit), eviction and per-tenant completion counters, and the
// retained-result-bytes gauge. All updates go through here so the
// by-state gauges stay consistent with the job state machine.
type serveTelemetry struct {
	queueDepth  *telemetry.Series
	jobWall     *telemetry.Series
	cacheHits   *telemetry.Series
	cacheMiss   *telemetry.Series
	rejected    *telemetry.Series
	resultBytes *telemetry.Series

	tenantDepthF *telemetry.Family
	tenantDoneF  *telemetry.Family
	rateLimitedF *telemetry.Family
	evictedF     *telemetry.Family

	mu          sync.Mutex
	byName      map[State]*telemetry.Series
	counts      map[State]int
	jobs        *telemetry.Family
	tenantDepth map[string]*telemetry.Series
	tenantDone  map[string]*telemetry.Series
	rateLimited map[string]*telemetry.Series
	tenantSeen  map[string]struct{}
}

func newServeTelemetry(reg *telemetry.Registry) *serveTelemetry {
	t := &serveTelemetry{
		queueDepth:   reg.Gauge(MetricQueueDepth, "Jobs waiting across all tenant sub-queues.").With(),
		jobWall:      reg.Histogram(MetricJobWall, "Wall-clock from job start to terminal state (seconds).", jobWallBuckets).With(),
		cacheHits:    reg.Counter(MetricCacheHits, "Submissions served by an existing job (same canonical spec).").With(),
		cacheMiss:    reg.Counter(MetricCacheMiss, "Submissions that enqueued a new job.").With(),
		rejected:     reg.Counter(MetricRejected, "Submissions rejected by backpressure (queue full).").With(),
		resultBytes:  reg.Gauge(MetricResultBytes, "Cached result bytes retained across terminal jobs.").With(),
		tenantDepthF: reg.Gauge(MetricTenantDepth, "Jobs waiting in one tenant's sub-queue.", "tenant"),
		tenantDoneF:  reg.Counter(MetricTenantDone, "Jobs completed (done) per tenant.", "tenant"),
		rateLimitedF: reg.Counter(MetricRateLimited, "Submissions rejected by the tenant intake rate limiter.", "tenant"),
		evictedF:     reg.Counter(MetricEvicted, "Terminal jobs evicted from the bounded store.", "reason"),
		jobs:         reg.Gauge(MetricJobs, "Jobs currently in each lifecycle state.", "state"),
		byName:       make(map[State]*telemetry.Series),
		counts:       make(map[State]int),
		tenantDepth:  make(map[string]*telemetry.Series),
		tenantDone:   make(map[string]*telemetry.Series),
		rateLimited:  make(map[string]*telemetry.Series),
		tenantSeen:   make(map[string]struct{}),
	}
	// Pre-create every state's series so a scrape shows the full state
	// space at zero instead of series popping into existence. Same for
	// the two eviction reasons.
	for _, s := range []State{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled, StateAborted} {
		t.byName[s] = t.jobs.With(string(s))
		t.byName[s].Set(0)
	}
	for _, r := range []string{evictReasonLRU, evictReasonBytes} {
		t.evictedF.With(r)
	}
	return t
}

// transition moves one job between states in the by-state gauges;
// from "" counts a brand-new job.
func (t *serveTelemetry) transition(from, to State) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if from != "" {
		t.counts[from]--
		t.byName[from].Set(float64(t.counts[from]))
	}
	t.counts[to]++
	t.byName[to].Set(float64(t.counts[to]))
}

// evicted removes an evicted job from its terminal state's gauge and
// counts the eviction under its reason.
func (t *serveTelemetry) evicted(state State, reason string) {
	t.mu.Lock()
	t.counts[state]--
	t.byName[state].Set(float64(t.counts[state]))
	t.mu.Unlock()
	t.evictedF.With(reason).Inc()
}

// tenantSeriesLocked resolves (creating on first use) one tenant's
// series in fam, degrading to the shared "other" series past the
// cardinality cap.
func (t *serveTelemetry) tenantSeriesLocked(fam *telemetry.Family, cache map[string]*telemetry.Series, tenant string) *telemetry.Series {
	label := tenantLabel(tenant)
	if s, ok := cache[label]; ok {
		return s
	}
	if _, seen := t.tenantSeen[label]; !seen {
		if len(t.tenantSeen) >= maxTenantSeries {
			label = "other"
		} else {
			t.tenantSeen[label] = struct{}{}
		}
	}
	s, ok := cache[label]
	if !ok {
		s = fam.With(label)
		cache[label] = s
	}
	return s
}

// setTenantDepth is the per-tenant queue-depth gauge hook.
func (t *serveTelemetry) setTenantDepth(tenant string, n int) {
	t.mu.Lock()
	s := t.tenantSeriesLocked(t.tenantDepthF, t.tenantDepth, tenant)
	t.mu.Unlock()
	s.Set(float64(n))
}

// tenantCompleted counts one done job for the tenant.
func (t *serveTelemetry) tenantCompleted(tenant string) {
	t.mu.Lock()
	s := t.tenantSeriesLocked(t.tenantDoneF, t.tenantDone, tenant)
	t.mu.Unlock()
	s.Inc()
}

// tenantRateLimited counts one rate-limited rejection for the tenant.
func (t *serveTelemetry) tenantRateLimited(tenant string) {
	t.mu.Lock()
	s := t.tenantSeriesLocked(t.rateLimitedF, t.rateLimited, tenant)
	t.mu.Unlock()
	s.Inc()
}
