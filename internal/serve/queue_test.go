package serve

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"
)

func qjob(id string) *Job { return &Job{ID: id, state: StateQueued} }

func TestQueueFIFOAndFull(t *testing.T) {
	q := newJobQueue(2, nil, nil, nil)
	if err := q.push(qjob("a")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("b")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push beyond depth: err = %v, want ErrQueueFull", err)
	}
	for _, want := range []string{"a", "b"} {
		j, ok := q.pop()
		if !ok || j.ID != want {
			t.Fatalf("pop = %v/%v, want %s", j, ok, want)
		}
	}
	// Drained queue admits again.
	if err := q.push(qjob("d")); err != nil {
		t.Fatal(err)
	}
}

func TestQueueRemove(t *testing.T) {
	q := newJobQueue(4, nil, nil, nil)
	for _, id := range []string{"a", "b", "c"} {
		if err := q.push(qjob(id)); err != nil {
			t.Fatal(err)
		}
	}
	if !q.remove("b") {
		t.Fatal("remove of a pending job failed")
	}
	if q.remove("b") {
		t.Fatal("second remove of the same job succeeded")
	}
	for _, want := range []string{"a", "c"} {
		j, ok := q.pop()
		if !ok || j.ID != want {
			t.Fatalf("pop after remove = %v/%v, want %s", j, ok, want)
		}
	}
}

func TestQueueCloseWakesBlockedPop(t *testing.T) {
	q := newJobQueue(2, nil, nil, nil)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond) // let the pop block
	if backlog := q.close(); len(backlog) != 0 {
		t.Errorf("backlog = %d, want 0", len(backlog))
	}
	select {
	case ok := <-done:
		if ok {
			t.Error("pop on a closed empty queue reported a job")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop never woke after close")
	}
	if err := q.push(qjob("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("push after close: err = %v, want ErrClosed", err)
	}
}

func TestQueueCloseReturnsBacklog(t *testing.T) {
	q := newJobQueue(4, nil, nil, nil)
	for _, id := range []string{"a", "b"} {
		if err := q.push(qjob(id)); err != nil {
			t.Fatal(err)
		}
	}
	backlog := q.close()
	if len(backlog) != 2 || backlog[0].ID != "a" || backlog[1].ID != "b" {
		t.Errorf("backlog = %v", backlog)
	}
	if _, ok := q.pop(); ok {
		t.Error("pop after close returned a job")
	}
}

func TestQueueDepthCallback(t *testing.T) {
	var depths []int
	q := newJobQueue(3, nil, func(n int) { depths = append(depths, n) }, nil)
	_ = q.push(qjob("a"))
	_ = q.push(qjob("b"))
	q.pop()
	q.remove("b")
	want := []int{1, 2, 1, 0}
	if len(depths) != len(want) {
		t.Fatalf("depths = %v, want %v", depths, want)
	}
	for i := range want {
		if depths[i] != want[i] {
			t.Fatalf("depths = %v, want %v", depths, want)
		}
	}
}

// qtjob builds a queued job attributed to a tenant.
func qtjob(id, tenant string) *Job {
	return &Job{ID: id, Spec: JobSpec{Tenant: tenant}, state: StateQueued}
}

// TestQueuePopReleasesJob pins that a popped job's queue slot is
// nil'ed: once the caller drops the job, nothing in the queue keeps it
// alive.
func TestQueuePopReleasesJob(t *testing.T) {
	q := newJobQueue(4, nil, nil, nil)
	fin := make(chan struct{})
	func() {
		j := qjob("pop-release")
		runtime.SetFinalizer(j, func(*Job) { close(fin) })
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
		got, ok := q.pop()
		if !ok || got.ID != "pop-release" {
			t.Fatalf("pop = %v/%v", got, ok)
		}
	}() // both references go out of scope here
	waitCollected(t, fin, "popped job still referenced by the queue's backing array")
	_ = q.len() // keep q alive past the GC loop
}

// TestQueueRemoveReleasesJob pins the same for remove: the canceled
// queued job's slot must not pin the job.
func TestQueueRemoveReleasesJob(t *testing.T) {
	q := newJobQueue(4, nil, nil, nil)
	fin := make(chan struct{})
	func() {
		j := qjob("rm-release")
		runtime.SetFinalizer(j, func(*Job) { close(fin) })
		if err := q.push(j); err != nil {
			t.Fatal(err)
		}
		// A sibling stays queued so the backing array survives.
		if err := q.push(qjob("stays")); err != nil {
			t.Fatal(err)
		}
		if !q.remove("rm-release") {
			t.Fatal("remove failed")
		}
	}()
	waitCollected(t, fin, "removed job still referenced by the queue's backing array")
	_ = q.len()
}

// waitCollected fails the test if the finalizer never runs.
func waitCollected(t *testing.T, fin chan struct{}, msg string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		select {
		case <-fin:
			return
		default:
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal(msg)
}

// TestQueueDeficitRoundRobin pins the weighted fair-share drain: with
// tenants a (weight 3) and b (weight 1) both backlogged, pops serve
// them 3:1 in deterministic rounds.
func TestQueueDeficitRoundRobin(t *testing.T) {
	weights := map[string]int{"a": 3, "b": 1}
	q := newJobQueue(64, func(tenant string) int { return weights[tenant] }, nil, nil)
	for i := 0; i < 12; i++ {
		if err := q.push(qtjob(fmt.Sprintf("a%d", i), "a")); err != nil {
			t.Fatal(err)
		}
		if err := q.push(qtjob(fmt.Sprintf("b%d", i), "b")); err != nil {
			t.Fatal(err)
		}
	}
	var order []string
	counts := map[string]int{}
	for i := 0; i < 16; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		order = append(order, j.Spec.Tenant)
		counts[j.Spec.Tenant]++
	}
	// 16 pops = 4 full rounds of quantum 3+1.
	if counts["a"] != 12 || counts["b"] != 4 {
		t.Fatalf("drain mix over 16 pops = %v (order %v), want a:12 b:4", counts, order)
	}
}

// TestQueueFIFOWithinTenant pins per-tenant ordering under DRR: a
// tenant's own jobs still drain strictly first-in first-out.
func TestQueueFIFOWithinTenant(t *testing.T) {
	q := newJobQueue(64, nil, nil, nil)
	for i := 0; i < 4; i++ {
		_ = q.push(qtjob(fmt.Sprintf("a%d", i), "a"))
		_ = q.push(qtjob(fmt.Sprintf("b%d", i), "b"))
	}
	last := map[string]int{"a": -1, "b": -1}
	for i := 0; i < 8; i++ {
		j, ok := q.pop()
		if !ok {
			t.Fatal("queue drained early")
		}
		seq := int(j.ID[1] - '0')
		if seq <= last[j.Spec.Tenant] {
			t.Fatalf("tenant %s served out of order: %s after index %d", j.Spec.Tenant, j.ID, last[j.Spec.Tenant])
		}
		last[j.Spec.Tenant] = seq
	}
}

// TestQueueDRRResetsIdleCredit pins the classic-DRR rule that an
// emptied tenant forfeits its credit: after draining completely, a
// returning tenant starts a fresh round instead of burning banked
// deficit.
func TestQueueDRRResetsIdleCredit(t *testing.T) {
	weights := map[string]int{"a": 4}
	q := newJobQueue(64, func(tenant string) int { return weights[tenant] }, nil, nil)
	if err := q.push(qtjob("a0", "a")); err != nil {
		t.Fatal(err)
	}
	if j, _ := q.pop(); j.ID != "a0" {
		t.Fatal("expected a0")
	}
	// a left the ring with deficit reset. b and a return together; the
	// first round serves a its full fresh quantum (4), then b.
	_ = q.push(qtjob("a1", "a"))
	_ = q.push(qtjob("a2", "a"))
	_ = q.push(qtjob("b0", "b"))
	var got []string
	for i := 0; i < 3; i++ {
		j, _ := q.pop()
		got = append(got, j.ID)
	}
	want := []string{"a1", "a2", "b0"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order = %v, want %v", got, want)
		}
	}
}

// TestQueueTenantDepthCallback pins the per-tenant depth hook.
func TestQueueTenantDepthCallback(t *testing.T) {
	type obs struct {
		tenant string
		n      int
	}
	var seen []obs
	q := newJobQueue(8, nil, nil, func(tenant string, n int) { seen = append(seen, obs{tenant, n}) })
	_ = q.push(qtjob("a0", "a"))
	_ = q.push(qtjob("b0", "b"))
	_ = q.push(qtjob("a1", "a"))
	q.pop()
	want := []obs{{"a", 1}, {"b", 1}, {"a", 2}, {"a", 1}}
	if len(seen) != len(want) {
		t.Fatalf("tenant depths = %v, want %v", seen, want)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("tenant depths = %v, want %v", seen, want)
		}
	}
}
