package serve

import (
	"errors"
	"testing"
	"time"
)

func qjob(id string) *Job { return &Job{ID: id, state: StateQueued} }

func TestQueueFIFOAndFull(t *testing.T) {
	q := newJobQueue(2, nil)
	if err := q.push(qjob("a")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("b")); err != nil {
		t.Fatal(err)
	}
	if err := q.push(qjob("c")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("push beyond depth: err = %v, want ErrQueueFull", err)
	}
	for _, want := range []string{"a", "b"} {
		j, ok := q.pop()
		if !ok || j.ID != want {
			t.Fatalf("pop = %v/%v, want %s", j, ok, want)
		}
	}
	// Drained queue admits again.
	if err := q.push(qjob("d")); err != nil {
		t.Fatal(err)
	}
}

func TestQueueRemove(t *testing.T) {
	q := newJobQueue(4, nil)
	for _, id := range []string{"a", "b", "c"} {
		if err := q.push(qjob(id)); err != nil {
			t.Fatal(err)
		}
	}
	if !q.remove("b") {
		t.Fatal("remove of a pending job failed")
	}
	if q.remove("b") {
		t.Fatal("second remove of the same job succeeded")
	}
	for _, want := range []string{"a", "c"} {
		j, ok := q.pop()
		if !ok || j.ID != want {
			t.Fatalf("pop after remove = %v/%v, want %s", j, ok, want)
		}
	}
}

func TestQueueCloseWakesBlockedPop(t *testing.T) {
	q := newJobQueue(2, nil)
	done := make(chan bool, 1)
	go func() {
		_, ok := q.pop()
		done <- ok
	}()
	time.Sleep(10 * time.Millisecond) // let the pop block
	if backlog := q.close(); len(backlog) != 0 {
		t.Errorf("backlog = %d, want 0", len(backlog))
	}
	select {
	case ok := <-done:
		if ok {
			t.Error("pop on a closed empty queue reported a job")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("pop never woke after close")
	}
	if err := q.push(qjob("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("push after close: err = %v, want ErrClosed", err)
	}
}

func TestQueueCloseReturnsBacklog(t *testing.T) {
	q := newJobQueue(4, nil)
	for _, id := range []string{"a", "b"} {
		if err := q.push(qjob(id)); err != nil {
			t.Fatal(err)
		}
	}
	backlog := q.close()
	if len(backlog) != 2 || backlog[0].ID != "a" || backlog[1].ID != "b" {
		t.Errorf("backlog = %v", backlog)
	}
	if _, ok := q.pop(); ok {
		t.Error("pop after close returned a job")
	}
}

func TestQueueDepthCallback(t *testing.T) {
	var depths []int
	q := newJobQueue(3, func(n int) { depths = append(depths, n) })
	_ = q.push(qjob("a"))
	_ = q.push(qjob("b"))
	q.pop()
	q.remove("b")
	want := []int{1, 2, 1, 0}
	if len(depths) != len(want) {
		t.Fatalf("depths = %v, want %v", depths, want)
	}
	for i := range want {
		if depths[i] != want[i] {
			t.Fatalf("depths = %v, want %v", depths, want)
		}
	}
}
