package serve

import (
	"bytes"
	"fmt"
	"testing"
)

// lines renders a replay for failure messages.
func lines(replay [][]byte) []string {
	out := make([]string, len(replay))
	for i, b := range replay {
		out[i] = string(b)
	}
	return out
}

// TestEventLogReplayBelowCapacity pins the easy half: fewer lines than
// the ring holds replay verbatim, in publish order.
func TestEventLogReplayBelowCapacity(t *testing.T) {
	l := newEventLog(4)
	l.publish([]byte("1"))
	l.publish([]byte("2"))
	replay, _, cancel := l.subscribe()
	defer cancel()
	if len(replay) != 2 || string(replay[0]) != "1" || string(replay[1]) != "2" {
		t.Fatalf("replay = %v, want [1 2]", lines(replay))
	}
}

// TestEventLogReplayAcrossWrap pins the head-index ring at and past
// the wrap boundary: replay is always the last cap lines, oldest
// first, exactly as the round-1 shift-down ring ordered them.
func TestEventLogReplayAcrossWrap(t *testing.T) {
	const capacity = 4
	for published := capacity; published <= 3*capacity+1; published++ {
		l := newEventLog(capacity)
		for i := 1; i <= published; i++ {
			l.publish([]byte(fmt.Sprintf("%d", i)))
		}
		replay, _, cancel := l.subscribe()
		cancel()
		if len(replay) != capacity {
			t.Fatalf("after %d publishes: replay holds %d lines, want %d", published, len(replay), capacity)
		}
		for i := 0; i < capacity; i++ {
			want := fmt.Sprintf("%d", published-capacity+1+i)
			if string(replay[i]) != want {
				t.Fatalf("after %d publishes: replay = %v, want last %d in order", published, lines(replay), capacity)
			}
		}
	}
}

// TestEventLogLiveDeliveryAfterWrap pins that a subscriber attached
// after the ring has wrapped still gets live lines alongside the
// replayed window.
func TestEventLogLiveDeliveryAfterWrap(t *testing.T) {
	l := newEventLog(2)
	for i := 1; i <= 5; i++ {
		l.publish([]byte(fmt.Sprintf("%d", i)))
	}
	replay, ch, cancel := l.subscribe()
	defer cancel()
	if len(replay) != 2 || string(replay[0]) != "4" || string(replay[1]) != "5" {
		t.Fatalf("replay = %v, want [4 5]", lines(replay))
	}
	l.publish([]byte("6"))
	if got := <-ch; !bytes.Equal(got, []byte("6")) {
		t.Fatalf("live line = %q, want 6", got)
	}
	l.close()
	if _, ok := <-ch; ok {
		t.Fatal("channel still open after close")
	}
}
