package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"aapm/internal/control"
	"aapm/internal/faults"
	"aapm/internal/machine"
	"aapm/internal/sensor"
)

// traceRun executes one test run with a RunHook subscribed (stage
// timing on) and returns the decoded event stream.
func traceRun(t *testing.T, faulty bool) ([]map[string]any, *TraceEventWriter) {
	t.Helper()
	cfg := machine.Config{Seed: 1, Chain: sensor.NIDefault()}
	if faulty {
		plan := faults.Preset(0.1)
		cfg.Faults = &plan
	}
	m, err := machine.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: 12.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := NewTraceEventWriter(&buf)
	s, err := m.NewSession(testWorkload(), pm)
	if err != nil {
		t.Fatal(err)
	}
	s.Subscribe(tw.RunHook("n0", "pm"))
	s.EnableStageTiming()
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	s.Result()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace output is not a JSON array: %v", err)
	}
	if len(events) != tw.Events() {
		t.Fatalf("decoded %d events, writer reports %d", len(events), tw.Events())
	}
	return events, tw
}

// TestTraceEventSchema validates the stream against the trace-event
// format: required keys per phase, known phases, non-negative
// timestamps, and the specific span/instant/counter shapes the
// exporter promises.
func TestTraceEventSchema(t *testing.T) {
	events, _ := traceRun(t, false)
	if len(events) < 10 {
		t.Fatalf("only %d events", len(events))
	}
	counts := map[string]int{}
	var lastTickTS = -1.0
	for i, ev := range events {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if name == "" {
			t.Fatalf("event %d missing name: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d missing pid: %v", i, ev)
		}
		ts, ok := ev["ts"].(float64)
		if !ok || ts < 0 {
			t.Fatalf("event %d bad ts: %v", i, ev)
		}
		counts[ph]++
		switch ph {
		case "M":
			args, _ := ev["args"].(map[string]any)
			if args["name"] == "" {
				t.Fatalf("metadata event %d missing args.name: %v", i, ev)
			}
		case "X":
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("span %d bad dur: %v", i, ev)
			}
			if cat, _ := ev["cat"].(string); cat == "tick" {
				// Interval spans are emitted in virtual-time order.
				if ts < lastTickTS {
					t.Fatalf("tick span %d ts %g < previous %g", i, ts, lastTickTS)
				}
				lastTickTS = ts
				args, _ := ev["args"].(map[string]any)
				if _, ok := args["freq_mhz"].(float64); !ok {
					t.Fatalf("tick span %d missing freq_mhz: %v", i, ev)
				}
			}
		case "i":
			if s, _ := ev["s"].(string); s != "t" && s != "p" && s != "g" {
				t.Fatalf("instant %d bad scope %q", i, ev["s"])
			}
		case "C":
			args, _ := ev["args"].(map[string]any)
			if len(args) == 0 {
				t.Fatalf("counter %d missing args: %v", i, ev)
			}
		default:
			t.Fatalf("event %d unknown phase %q", i, ph)
		}
	}
	if counts["M"] < 3 {
		t.Errorf("want process+thread metadata, got %d M events", counts["M"])
	}
	for _, ph := range []string{"X", "i", "C"} {
		if counts[ph] == 0 {
			t.Errorf("no %q events emitted", ph)
		}
	}
	// The PM at a tight limit must shift p-states: transition instants.
	var transitions, stages int
	for _, ev := range events {
		switch ev["cat"] {
		case "transition":
			transitions++
		case "stage":
			stages++
		}
	}
	if transitions == 0 {
		t.Error("no transition instants in a PM run")
	}
	if stages == 0 {
		t.Error("stage timing enabled but no stage spans")
	}
}

// TestTraceEventFaultedRunStaysValid pins the NaN guards: a run with
// sensor dropout (NaN measured power) must still close cleanly and
// produce valid JSON, with degradation instants present.
func TestTraceEventFaultedRunStaysValid(t *testing.T) {
	events, _ := traceRun(t, true)
	var degr int
	for _, ev := range events {
		if ev["cat"] == "degradation" {
			degr++
		}
	}
	if degr == 0 {
		t.Error("faulted run emitted no degradation instants")
	}
}

// TestTraceEventMultiRun checks pid allocation: two hooks on one
// writer produce distinct process tracks with their own metadata.
func TestTraceEventMultiRun(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceEventWriter(&buf)
	h1 := tw.RunHook("a", "pm")
	h2 := tw.RunHook("b", "ps")
	_ = h1
	_ = h2
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatal(err)
	}
	pids := map[float64][]string{}
	for _, ev := range events {
		if ev["name"] == "process_name" {
			args := ev["args"].(map[string]any)
			pid := ev["pid"].(float64)
			pids[pid] = append(pids[pid], args["name"].(string))
		}
	}
	if len(pids) != 2 {
		t.Fatalf("want 2 process tracks, got %v", pids)
	}
	var names []string
	for _, ns := range pids {
		names = append(names, ns...)
	}
	joined := strings.Join(names, ";")
	if !strings.Contains(joined, "a [pm]") || !strings.Contains(joined, "b [ps]") {
		t.Errorf("process names = %v", names)
	}
}

func TestTraceEventCloseIdempotent(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceEventWriter(&buf)
	tw.Emit(TraceEvent{Name: "x", Ph: "i", PID: 1, Scope: "g"})
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	n := buf.Len()
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != n {
		t.Error("second Close wrote more bytes")
	}
	tw.Emit(TraceEvent{Name: "late", Ph: "i", PID: 1, Scope: "g"})
	if buf.Len() != n || tw.Events() != 1 {
		t.Error("Emit after Close must be a no-op")
	}
}
