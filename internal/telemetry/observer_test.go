package telemetry

import (
	"math"
	"testing"

	"aapm/internal/control"
	"aapm/internal/faults"
	"aapm/internal/machine"
	"aapm/internal/metrics"
	"aapm/internal/phase"
	"aapm/internal/sensor"
)

func testWorkload() phase.Workload {
	return phase.Workload{
		Name: "obs-test",
		Phases: []phase.Params{{
			Name: "p", Instructions: 5e8,
			CPICore: 0.5, L2APKI: 10, MemAPKI: 1, MLP: 2, SpecFactor: 1.2, StallFrac: 0.05,
		}},
	}
}

// TestObserverMatchesCollector cross-checks the registry totals against
// the canonical metrics.Collector on the same bus.
func TestObserverMatchesCollector(t *testing.T) {
	m, err := machine.New(machine.Config{Seed: 1, Chain: sensor.NIDefault()})
	if err != nil {
		t.Fatal(err)
	}
	pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: 14.5})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	obs := NewObserver(reg, "n0", "pm")
	col := &metrics.Collector{}
	run, err := m.RunWith(testWorkload(), pm, obs, col)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	get := func(fam string, labels ...string) (SeriesSnapshot, bool) {
		for _, f := range snap.Families {
			if f.Name != fam {
				continue
			}
			for _, s := range f.Series {
				if len(s.Labels) != len(labels) {
					continue
				}
				match := true
				for i := range labels {
					if s.Labels[i] != labels[i] {
						match = false
						break
					}
				}
				if match {
					return s, true
				}
			}
		}
		return SeriesSnapshot{}, false
	}

	ticks, ok := get(MetricTicks, "n0", "pm")
	if !ok || int(ticks.Value) != col.Ticks {
		t.Errorf("ticks = %v (ok=%v), want %d", ticks.Value, ok, col.Ticks)
	}
	virt, _ := get(MetricVirtualSec, "n0", "pm")
	if math.Abs(virt.Value-col.Duration.Seconds()) > 1e-9 {
		t.Errorf("virtual seconds = %g, want %g", virt.Value, col.Duration.Seconds())
	}
	energy, _ := get(MetricEnergy, "n0", "pm")
	if math.Abs(energy.Value-col.EnergyJ) > 1e-9*col.EnergyJ {
		t.Errorf("energy = %g, want %g", energy.Value, col.EnergyJ)
	}
	transOK, _ := get(MetricTransitions, "n0", "pm", "ok")
	if int(transOK.Value) != col.Transitions {
		t.Errorf("ok transitions = %v, want %d", transOK.Value, col.Transitions)
	}
	transFail, ok := get(MetricTransitions, "n0", "pm", "failed")
	if !ok || int(transFail.Value) != col.FailedTransitions {
		t.Errorf("failed transitions = %v, want %d", transFail.Value, col.FailedTransitions)
	}
	done, _ := get(MetricRunsDone, "n0", "pm")
	if done.Value != 1 {
		t.Errorf("runs completed = %v, want 1", done.Value)
	}
	hist, ok := get(MetricIntervalW, "n0", "pm")
	if !ok || hist.Count != uint64(col.Ticks) {
		t.Errorf("interval histogram count = %d, want %d ticks", hist.Count, col.Ticks)
	}
	freq, _ := get(MetricFreq, "n0", "pm")
	if freq.Value <= 0 {
		t.Errorf("frequency gauge = %v", freq.Value)
	}
	if len(run.Rows) != col.Ticks {
		t.Fatalf("collector ticks %d != trace rows %d", col.Ticks, len(run.Rows))
	}
}

// TestObserverDegradations feeds a faulted run and checks degradation
// counters appear per source without poisoning the power counters with
// the NaN measurements dropout produces.
func TestObserverDegradations(t *testing.T) {
	plan := faults.Preset(0.1)
	m, err := machine.New(machine.Config{Seed: 3, Chain: sensor.NIDefault(), Faults: &plan})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	col := &metrics.Collector{}
	if _, err := m.RunWith(testWorkload(), nil, NewObserver(reg, "n0", "none"), col); err != nil {
		t.Fatal(err)
	}
	if col.Degradations == 0 {
		t.Fatal("fault preset produced no degradations; test is vacuous")
	}
	var total float64
	for _, f := range reg.Snapshot().Families {
		if f.Name != MetricDegradations {
			continue
		}
		for _, s := range f.Series {
			total += s.Value
		}
	}
	if int(total) != col.Degradations {
		t.Errorf("degradation series sum = %v, want %d", total, col.Degradations)
	}
	for _, f := range reg.Snapshot().Families {
		for _, s := range f.Series {
			if math.IsNaN(s.Value) || math.IsNaN(s.Sum) {
				t.Errorf("family %s has NaN after faulted run", f.Name)
			}
		}
	}
}

func TestSampleRuntime(t *testing.T) {
	reg := NewRegistry()
	SampleRuntime(reg)
	snap := reg.Snapshot()
	if len(snap.Families) == 0 {
		t.Fatal("SampleRuntime registered no families")
	}
	var goroutines float64
	for _, f := range snap.Families {
		if f.Name == "go_goroutines" {
			goroutines = f.Series[0].Value
		}
	}
	if goroutines < 1 {
		t.Errorf("go_goroutines = %g, want >= 1", goroutines)
	}
}
