package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sync"
	"time"

	"aapm/internal/machine"
	"aapm/internal/trace"
)

// TraceEvent is one Chrome trace-event record — the JSON shape
// Perfetto and chrome://tracing load. Timestamps and durations are in
// microseconds of *virtual* time, so the viewer shows the simulated
// timeline, free of host jitter.
type TraceEvent struct {
	Name string `json:"name"`
	// Cat is the event category ("tick", "stage", "transition",
	// "degradation", "power").
	Cat string `json:"cat,omitempty"`
	// Ph is the phase: "X" complete span, "i" instant, "C" counter,
	// "M" metadata.
	Ph  string  `json:"ph"`
	TS  float64 `json:"ts"`
	Dur float64 `json:"dur,omitempty"`
	PID int     `json:"pid"`
	TID int     `json:"tid"`
	// Scope applies to instants: "t" thread, "p" process, "g" global.
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Track (tid) assignment within one run's process.
const (
	tidTicks  = 1 // per-interval spans, transition/degradation instants, counters
	tidStages = 2 // per-stage sub-spans (virtual placement, wall-clock proportions)
)

// TraceEventWriter streams trace events as a Chrome trace-event JSON
// array, one event per line (JSONL inside the array, the format both
// Perfetto and chrome://tracing accept). Each run gets its own pid
// ("process") with named tracks. Safe for concurrent hooks — parallel
// experiment runs interleave their events under the writer's lock;
// viewers order by timestamp, so interleaving does not affect the
// rendered timeline.
type TraceEventWriter struct {
	mu      sync.Mutex
	bw      *bufio.Writer
	err     error
	n       int
	nextPID int
	closed  bool
}

// NewTraceEventWriter starts a trace-event stream on w. Call Close to
// terminate the JSON array; a truncated (unclosed) file still loads,
// per the trace-event format's forgiving array grammar.
func NewTraceEventWriter(w io.Writer) *TraceEventWriter {
	tw := &TraceEventWriter{bw: bufio.NewWriterSize(w, 1<<16), nextPID: 1}
	_, tw.err = tw.bw.WriteString("[\n")
	return tw
}

// Emit appends one event. Marshal errors and write errors stick; the
// first one is reported by Close.
func (tw *TraceEventWriter) Emit(ev TraceEvent) {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	tw.emitLocked(ev)
}

func (tw *TraceEventWriter) emitLocked(ev TraceEvent) {
	if tw.err != nil || tw.closed {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		tw.err = err
		return
	}
	if tw.n > 0 {
		if _, err := tw.bw.WriteString(",\n"); err != nil {
			tw.err = err
			return
		}
	}
	if _, err := tw.bw.Write(b); err != nil {
		tw.err = err
		return
	}
	tw.n++
}

// Events returns the number of events emitted so far.
func (tw *TraceEventWriter) Events() int {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	return tw.n
}

// Close terminates the JSON array and reports the first emission or
// write error. It does not close the underlying writer.
func (tw *TraceEventWriter) Close() error {
	tw.mu.Lock()
	defer tw.mu.Unlock()
	if tw.closed {
		return tw.err
	}
	tw.closed = true
	if tw.err == nil {
		_, tw.err = tw.bw.WriteString("\n]\n")
	}
	if err := tw.bw.Flush(); tw.err == nil {
		tw.err = err
	}
	return tw.err
}

// RunHook allocates a process id for one run and returns the
// machine.Hook that exports it: a span per monitoring interval (named
// by the active workload phase), per-stage sub-spans when stage
// timing is enabled, a power counter track, and instants for p-state
// transitions and degradation events. Subscribe the hook to exactly
// one session.
func (tw *TraceEventWriter) RunHook(node, policy string) machine.Hook {
	tw.mu.Lock()
	pid := tw.nextPID
	tw.nextPID++
	// Process + thread naming metadata so the viewer labels tracks.
	tw.emitLocked(TraceEvent{Name: "process_name", Ph: "M", PID: pid, Args: map[string]any{"name": fmt.Sprintf("%s [%s]", node, policy)}})
	tw.emitLocked(TraceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tidTicks, Args: map[string]any{"name": "intervals"}})
	tw.emitLocked(TraceEvent{Name: "thread_name", Ph: "M", PID: pid, TID: tidStages, Args: map[string]any{"name": "stages (wall-clock proportions)"}})
	tw.mu.Unlock()
	return &runExporter{tw: tw, pid: pid}
}

// runExporter is the per-run trace hook.
type runExporter struct {
	tw  *TraceEventWriter
	pid int
}

func micros(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// OnTick implements machine.Hook.
func (e *runExporter) OnTick(ts machine.TickState) {
	name := ts.Phase
	if name == "" {
		name = "interval"
	}
	args := map[string]any{
		"freq_mhz": ts.PState.FreqMHz,
		"duty":     ts.Duty,
	}
	// NaN/Inf (dropped or faulted acquisitions) are not representable
	// in JSON; omit the key rather than poisoning the stream.
	if finite(ts.TruePowerW) {
		args["true_w"] = ts.TruePowerW
	}
	if finite(ts.MeasuredPowerW) {
		args["measured_w"] = ts.MeasuredPowerW
	}
	if ts.TempC != 0 && finite(ts.TempC) {
		args["temp_c"] = ts.TempC
	}
	e.tw.mu.Lock()
	defer e.tw.mu.Unlock()
	e.tw.emitLocked(TraceEvent{
		Name: name, Cat: "tick", Ph: "X",
		TS: micros(ts.Start), Dur: micros(ts.Used),
		PID: e.pid, TID: tidTicks, Args: args,
	})
	if finite(ts.TruePowerW) {
		e.tw.emitLocked(TraceEvent{
			Name: "power_w", Cat: "power", Ph: "C",
			TS: micros(ts.Start), PID: e.pid, TID: tidTicks,
			Args: map[string]any{"true": ts.TruePowerW},
		})
	}
	// Stage sub-spans: wall-clock stage costs rescaled onto the
	// interval's virtual extent, so the relative weight of
	// execute/measure/observe/govern/actuate is visible in-line with
	// the tick it belongs to.
	var totalNs int64
	for _, n := range ts.StageNanos {
		totalNs += n
	}
	if totalNs <= 0 {
		return
	}
	start := ts.Start
	for i, n := range ts.StageNanos {
		if n <= 0 {
			continue
		}
		dur := time.Duration(float64(ts.Used) * float64(n) / float64(totalNs))
		e.tw.emitLocked(TraceEvent{
			Name: machine.StageNames[i], Cat: "stage", Ph: "X",
			TS: micros(start), Dur: micros(dur),
			PID: e.pid, TID: tidStages,
			Args: map[string]any{"wall_ns": n},
		})
		start += dur
	}
}

// OnTransition implements machine.Hook.
func (e *runExporter) OnTransition(tr machine.Transition) {
	name := fmt.Sprintf("P%d->P%d", tr.From, tr.To)
	if !tr.OK {
		name += " (failed)"
	}
	e.tw.Emit(TraceEvent{
		Name: name, Cat: "transition", Ph: "i",
		TS: micros(tr.T), PID: e.pid, TID: tidTicks, Scope: "t",
		Args: map[string]any{"from": tr.From, "to": tr.To, "ok": tr.OK, "stall_us": micros(tr.Stall)},
	})
}

// OnDegradation implements machine.Hook.
func (e *runExporter) OnDegradation(d trace.Degradation) {
	args := map[string]any{"kind": d.Kind}
	if d.Detail != "" {
		args["detail"] = d.Detail
	}
	e.tw.Emit(TraceEvent{
		Name: d.Source + "/" + d.Kind, Cat: "degradation", Ph: "i",
		TS: micros(d.T), PID: e.pid, TID: tidTicks, Scope: "t",
		Args: args,
	})
}

// OnDone implements machine.Hook.
func (e *runExporter) OnDone(run *trace.Run) {
	e.tw.Emit(TraceEvent{
		Name: "run_done", Cat: "tick", Ph: "i",
		TS: micros(run.Duration), PID: e.pid, TID: tidTicks, Scope: "p",
		Args: map[string]any{"energy_j": run.EnergyJ, "transitions": run.Transitions},
	})
}
