package telemetry

import (
	"math"
	"runtime/metrics"
)

// runtimeSamples maps a curated set of runtime/metrics samples onto
// exposition-friendly gauge names. Kept small on purpose: the dash
// scrapes these on every /metrics hit, and the full runtime set is
// pprof's job (aapm-dash -pprof).
var runtimeSamples = []struct {
	runtime string // runtime/metrics sample name
	name    string // exposition family name
	help    string
}{
	{"/sched/goroutines:goroutines", "go_goroutines", "Live goroutines."},
	{"/memory/classes/heap/objects:bytes", "go_heap_objects_bytes", "Bytes occupied by live heap objects."},
	{"/memory/classes/total:bytes", "go_memory_total_bytes", "Total bytes mapped by the Go runtime."},
	{"/gc/cycles/total:gc-cycles", "go_gc_cycles", "Completed GC cycles."},
	{"/gc/heap/allocs:bytes", "go_gc_heap_allocs_bytes", "Cumulative bytes allocated on the heap."},
}

// SampleRuntime reads the curated runtime/metrics set into gauges on
// reg. Call it immediately before rendering an exposition so scrapes
// see current values; the self-observation cost is a handful of
// runtime reads per scrape, not per tick.
func SampleRuntime(reg *Registry) {
	samples := make([]metrics.Sample, len(runtimeSamples))
	for i := range runtimeSamples {
		samples[i].Name = runtimeSamples[i].runtime
	}
	metrics.Read(samples)
	for i, s := range samples {
		var v float64
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v = float64(s.Value.Uint64())
		case metrics.KindFloat64:
			v = s.Value.Float64()
		default:
			// KindBad: the metric does not exist in this Go version.
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		reg.Gauge(runtimeSamples[i].name, runtimeSamples[i].help).With().Set(v)
	}
}
