package telemetry

import (
	"math"
	"math/rand"
	"testing"
)

func TestCounter(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("t_total", "help", "node").With("a")
	c.Inc()
	c.Add(2.5)
	if got := c.Value(); got != 3.5 {
		t.Errorf("Value = %g, want 3.5", got)
	}
	// NaN, Inf and negative deltas are dropped, not applied.
	c.Add(math.NaN())
	c.Add(math.Inf(1))
	c.Add(-1)
	if got := c.Value(); got != 3.5 {
		t.Errorf("Value after bad deltas = %g, want 3.5", got)
	}
}

func TestGauge(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("t_gauge", "help").With()
	g.Set(12.5)
	g.Set(math.NaN()) // dropped acquisitions keep the last good value
	g.Set(math.Inf(-1))
	if got := g.Value(); got != 12.5 {
		t.Errorf("Value = %g, want 12.5", got)
	}
	g.Set(-3)
	if got := g.Value(); got != -3 {
		t.Errorf("gauges must accept negatives: got %g", got)
	}
}

func TestWithReturnsStableHandle(t *testing.T) {
	reg := NewRegistry()
	f := reg.Counter("t_total", "help", "node")
	if f.With("a") != f.With("a") {
		t.Error("With returned different handles for the same labels")
	}
	if f.With("a") == f.With("b") {
		t.Error("With returned the same handle for different labels")
	}
	// Re-registration with identical shape is idempotent.
	if reg.Counter("t_total", "help", "node") != f {
		t.Error("idempotent re-registration returned a new family")
	}
}

func TestRegistryPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("ok_total", "help", "node")
	expectPanic("bad metric name", func() { reg.Counter("1bad", "h") })
	expectPanic("bad label key", func() { reg.Counter("ok2_total", "h", "0x") })
	expectPanic("reserved label key", func() { reg.Counter("ok3_total", "h", "__name__") })
	expectPanic("kind conflict", func() { reg.Gauge("ok_total", "help", "node") })
	expectPanic("help conflict", func() { reg.Counter("ok_total", "other", "node") })
	expectPanic("label conflict", func() { reg.Counter("ok_total", "help", "governor") })
	expectPanic("label arity", func() { reg.Counter("ok_total", "help", "node").With("a", "b") })
	expectPanic("no buckets", func() { reg.Histogram("h1", "h", nil) })
	expectPanic("non-increasing buckets", func() { reg.Histogram("h2", "h", []float64{1, 1}) })
	expectPanic("non-finite bucket", func() { reg.Histogram("h3", "h", []float64{1, math.Inf(1)}) })
	expectPanic("Set on counter", func() { reg.Counter("ok_total", "help", "node").With("a").Set(1) })
	expectPanic("Observe on counter", func() { reg.Counter("ok_total", "help", "node").With("a").Observe(1) })
	expectPanic("Add on gauge", func() { reg.Gauge("g1", "h").With().Add(1) })
	expectPanic("Quantile on gauge", func() { reg.Gauge("g1", "h").With().Quantile(0.5) })
}

func TestHistogramQuantileKnownDistribution(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_hist", "help", []float64{1, 2, 4}).With()
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Error("empty histogram quantile should be NaN")
	}
	// 10 observations uniformly in (0,1]: the whole mass sits in the
	// first bucket, so quantiles interpolate on [0,1].
	for i := 1; i <= 10; i++ {
		h.Observe(float64(i) / 10)
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("q1 = %g, want 1 (upper bound of first bucket)", got)
	}
	if got := h.Quantile(0.5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("q0.5 = %g, want 0.5", got)
	}
	// An observation beyond every bound lands in +Inf and clamps to the
	// largest finite bound.
	h.Observe(100)
	if got := h.Quantile(1); got != 4 {
		t.Errorf("q1 with +Inf mass = %g, want clamp to 4", got)
	}
	if !math.IsNaN(h.Quantile(-0.1)) || !math.IsNaN(h.Quantile(1.1)) {
		t.Error("out-of-range q must return NaN")
	}
}

// TestHistogramProperties is the satellite property test: for random
// observation sets, (a) the per-bucket counts sum to the observation
// count, and (b) the quantile estimate is monotone non-decreasing in q.
func TestHistogramProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		reg := NewRegistry()
		// Random strictly increasing bucket bounds.
		nb := 1 + rng.Intn(8)
		buckets := make([]float64, nb)
		b := rng.Float64()
		for i := range buckets {
			b += 0.1 + rng.Float64()*5
			buckets[i] = b
		}
		h := reg.Histogram("t_hist", "help", buckets).With()
		n := rng.Intn(200)
		var sum float64
		for i := 0; i < n; i++ {
			v := rng.Float64() * (buckets[nb-1] * 1.5) // some land in +Inf
			sum += v
			h.Observe(v)
		}
		if got := h.Count(); got != uint64(n) {
			t.Fatalf("trial %d: Count = %d, want %d", trial, got, n)
		}
		// Bucket counts sum to the observation count. The snapshot
		// carries cumulative finite-bound counts; the +Inf remainder is
		// Count - last cumulative, which must be non-negative.
		snap := reg.Snapshot()
		if n > 0 {
			s := snap.Families[0].Series[0]
			if s.Count != uint64(n) {
				t.Fatalf("trial %d: snapshot count = %d, want %d", trial, s.Count, n)
			}
			if math.Abs(s.Sum-sum) > 1e-9*math.Abs(sum) {
				t.Fatalf("trial %d: snapshot sum = %g, want %g", trial, s.Sum, sum)
			}
			var prev uint64
			for i, bs := range s.Buckets {
				if bs.Count < prev {
					t.Fatalf("trial %d: cumulative bucket counts not monotone at %d", trial, i)
				}
				prev = bs.Count
			}
			if prev > uint64(n) {
				t.Fatalf("trial %d: cumulative bucket count %d exceeds observations %d", trial, prev, n)
			}
		}
		// Quantile estimates are monotone in q.
		if n > 0 {
			prevQ := math.Inf(-1)
			for q := 0.0; q <= 1.0; q += 0.05 {
				v := h.Quantile(q)
				if math.IsNaN(v) {
					t.Fatalf("trial %d: Quantile(%g) is NaN with %d observations", trial, q, n)
				}
				if v < prevQ {
					t.Fatalf("trial %d: Quantile(%g) = %g < previous %g", trial, q, v, prevQ)
				}
				prevQ = v
			}
		}
	}
}

func TestHistogramDropsNonFinite(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("t_hist", "help", []float64{1}).With()
	h.Observe(math.NaN())
	h.Observe(math.Inf(1))
	if h.Count() != 0 {
		t.Errorf("Count = %d after non-finite observations, want 0", h.Count())
	}
}
