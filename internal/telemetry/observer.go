package telemetry

import (
	"aapm/internal/machine"
	"aapm/internal/trace"
)

// Metric family names the observer feeds. Exported so consumers
// (dash, tests) can reference them without string drift.
const (
	MetricTicks        = "aapm_ticks_total"
	MetricVirtualSec   = "aapm_virtual_seconds_total"
	MetricInstructions = "aapm_instructions_total"
	MetricEnergy       = "aapm_energy_joules_total"
	MetricStallSec     = "aapm_stall_seconds_total"
	MetricBusySec      = "aapm_busy_seconds_total"
	MetricTransitions  = "aapm_transitions_total"
	MetricDegradations = "aapm_degradations_total"
	MetricPower        = "aapm_power_watts"
	MetricMeasuredW    = "aapm_measured_power_watts"
	MetricFreq         = "aapm_frequency_mhz"
	MetricTemp         = "aapm_temperature_celsius"
	MetricIntervalW    = "aapm_interval_power_watts"
	MetricStageSec     = "aapm_stage_seconds_total"
	MetricRunsDone     = "aapm_runs_completed_total"
)

// PowerBuckets are the interval-power histogram bounds (watts),
// spanning the Pentium M 755's operating range with headroom.
var PowerBuckets = []float64{4, 6, 8, 10, 12, 14, 16, 18, 20, 25}

// Observer is a machine.Hook that feeds a Registry with one labeled
// series set per (node, governor) pair: per-tick engine counters,
// power/frequency/temperature gauges, an interval-power histogram and
// per-stage wall-clock totals (populated only when the session has
// stage timing enabled). Subscribe one Observer per session; the
// series handles are resolved once here, keeping the per-tick cost to
// a handful of mutex-guarded adds.
type Observer struct {
	ticks, virtSec, instr, energy, stall, busy *Series
	transOK, transFail                         *Series
	power, measured, freq, temp                *Series
	intervalW                                  *Series
	runsDone                                   *Series
	stageSec                                   [machine.NumStages]*Series

	degrFamily *Family
	degrBySrc  map[string]*Series
	node, gov  string
}

// NewObserver registers the aapm_* families on reg (idempotent) and
// returns an Observer labeling every series with the given node and
// governor names.
func NewObserver(reg *Registry, node, governor string) *Observer {
	lk := []string{"node", "governor"}
	o := &Observer{node: node, gov: governor, degrBySrc: make(map[string]*Series)}
	o.ticks = reg.Counter(MetricTicks, "Recorded monitoring intervals.", lk...).With(node, governor)
	o.virtSec = reg.Counter(MetricVirtualSec, "Simulated (virtual) seconds elapsed.", lk...).With(node, governor)
	o.instr = reg.Counter(MetricInstructions, "Instructions retired.", lk...).With(node, governor)
	o.energy = reg.Counter(MetricEnergy, "True energy consumed (joules).", lk...).With(node, governor)
	o.stall = reg.Counter(MetricStallSec, "Halted time: transition latency plus modulated-clock stop fraction.", lk...).With(node, governor)
	o.busy = reg.Counter(MetricBusySec, "Compute time.", lk...).With(node, governor)
	trans := reg.Counter(MetricTransitions, "P-state transition attempts by outcome.", "node", "governor", "result")
	o.transOK = trans.With(node, governor, "ok")
	o.transFail = trans.With(node, governor, "failed")
	o.degrFamily = reg.Counter(MetricDegradations, "Degradation events by source (injected faults and governor graceful degradation).", "node", "governor", "source")
	o.power = reg.Gauge(MetricPower, "True interval-average power of the last interval (watts).", lk...).With(node, governor)
	o.measured = reg.Gauge(MetricMeasuredW, "Sensed interval-average power of the last interval (watts).", lk...).With(node, governor)
	o.freq = reg.Gauge(MetricFreq, "P-state frequency the last interval ran at (MHz).", lk...).With(node, governor)
	o.temp = reg.Gauge(MetricTemp, "Die temperature at last interval end (Celsius); 0 without a thermal model.", lk...).With(node, governor)
	o.intervalW = reg.Histogram(MetricIntervalW, "Distribution of true interval-average power (watts).", PowerBuckets, lk...).With(node, governor)
	stage := reg.Counter(MetricStageSec, "Host wall-clock spent per engine stage (seconds); zero unless stage timing is enabled.", "node", "governor", "stage")
	for i, name := range machine.StageNames {
		o.stageSec[i] = stage.With(node, governor, name)
	}
	o.runsDone = reg.Counter(MetricRunsDone, "Finalized runs.", lk...).With(node, governor)
	return o
}

// OnTick implements machine.Hook.
func (o *Observer) OnTick(ts machine.TickState) {
	o.ticks.Inc()
	o.virtSec.Add(ts.Used.Seconds())
	o.instr.Add(ts.Instructions)
	o.energy.Add(ts.TruePowerW * ts.Used.Seconds())
	o.stall.Add(ts.Stall.Seconds())
	o.busy.Add(ts.Busy.Seconds())
	o.power.Set(ts.TruePowerW)
	o.measured.Set(ts.MeasuredPowerW) // NaN (dropped acquisition) keeps the last good value
	o.freq.Set(float64(ts.PState.FreqMHz))
	o.temp.Set(ts.TempC)
	o.intervalW.Observe(ts.TruePowerW)
	for i, n := range ts.StageNanos {
		if n > 0 {
			o.stageSec[i].Add(float64(n) / 1e9)
		}
	}
}

// OnTransition implements machine.Hook.
func (o *Observer) OnTransition(tr machine.Transition) {
	if tr.OK {
		o.transOK.Inc()
	} else {
		o.transFail.Inc()
	}
}

// OnDegradation implements machine.Hook.
func (o *Observer) OnDegradation(d trace.Degradation) {
	s, ok := o.degrBySrc[d.Source]
	if !ok {
		s = o.degrFamily.With(o.node, o.gov, d.Source)
		o.degrBySrc[d.Source] = s
	}
	s.Inc()
}

// OnDone implements machine.Hook.
func (o *Observer) OnDone(*trace.Run) { o.runsDone.Inc() }
