package telemetry

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): for each family a # HELP and
// # TYPE line followed by one sample line per series, histograms
// expanded into cumulative _bucket series plus _sum and _count. The
// output is deterministic — families sorted by name, series by label
// values, labels in the family's declared key order — so the format
// itself is pinned by a golden test.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.sortedFamilies() {
		series := f.sortedSeries()
		if len(series) == 0 {
			continue
		}
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *Family, s *Series) error {
	switch f.kind {
	case KindCounter, KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(f.labels, s.labels, "", 0), formatValue(s.Value()))
		return err
	case KindHistogram:
		s.mu.Lock()
		counts := append([]uint64(nil), s.counts...)
		sum, count := s.sum, s.count
		s.mu.Unlock()
		var cum uint64
		for i, c := range counts {
			cum += c
			le := "+Inf"
			if i < len(f.buckets) {
				le = formatValue(f.buckets[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(f.labels, s.labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(f.labels, s.labels, "", 0), formatValue(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(f.labels, s.labels, "", 0), count)
		return err
	}
	return nil
}

// labelString renders {k="v",...}, appending the extra pair (the
// histogram le label) when extraKey is non-empty; empty when there
// are no labels at all.
func labelString(keys, values []string, extraKey string, extraVal any) string {
	if len(keys) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(fmt.Sprint(extraVal))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip representation.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// escapeHelp escapes a HELP string (backslash and newline only).
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

// Snapshot is the JSON-friendly view of the whole registry, consumed
// by the dash's /api/telemetry endpoint. Histogram buckets carry
// cumulative counts for the finite bounds; the +Inf count is Count.
type Snapshot struct {
	Families []FamilySnapshot `json:"families"`
}

// FamilySnapshot is one family's snapshot.
type FamilySnapshot struct {
	Name   string           `json:"name"`
	Help   string           `json:"help,omitempty"`
	Kind   string           `json:"kind"`
	Labels []string         `json:"labels,omitempty"`
	Series []SeriesSnapshot `json:"series"`
}

// SeriesSnapshot is one series' snapshot.
type SeriesSnapshot struct {
	// Labels holds the label values in the family's key order.
	Labels []string `json:"labels,omitempty"`
	// Value is the counter total or gauge value.
	Value float64 `json:"value"`
	// Sum/Count/Buckets are histogram-only.
	Sum     float64          `json:"sum,omitempty"`
	Count   uint64           `json:"count,omitempty"`
	Buckets []BucketSnapshot `json:"buckets,omitempty"`
}

// BucketSnapshot is one finite histogram bound with its cumulative
// count.
type BucketSnapshot struct {
	LE    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Snapshot captures the registry's current state with the same
// deterministic ordering as the exposition.
func (r *Registry) Snapshot() Snapshot {
	var snap Snapshot
	for _, f := range r.sortedFamilies() {
		series := f.sortedSeries()
		if len(series) == 0 {
			continue
		}
		fs := FamilySnapshot{
			Name:   f.name,
			Help:   f.help,
			Kind:   f.kind.String(),
			Labels: append([]string(nil), f.labels...),
		}
		for _, s := range series {
			ss := SeriesSnapshot{Labels: append([]string(nil), s.labels...)}
			switch f.kind {
			case KindHistogram:
				s.mu.Lock()
				ss.Sum, ss.Count = s.sum, s.count
				var cum uint64
				for i, c := range s.counts[:len(f.buckets)] {
					cum += c
					ss.Buckets = append(ss.Buckets, BucketSnapshot{LE: f.buckets[i], Count: cum})
				}
				s.mu.Unlock()
			default:
				ss.Value = s.Value()
			}
			fs.Series = append(fs.Series, ss)
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
