// Package telemetry is the live observability layer over the staged
// engine and the cluster coordinator: a dependency-free metrics
// registry (counters, gauges, fixed-bucket histograms with labeled
// series) fed by Hook-bus subscribers, exported as Prometheus text
// exposition and as a JSON snapshot, plus a Chrome trace-event
// (Perfetto) exporter for loading runs into a standard trace viewer.
//
// Telemetry is strictly observational: observers subscribe to the
// Hook bus like any other consumer and never mutate the session, so
// golden traces stay byte-identical with telemetry enabled, and with
// no subscriber attached the engine pays nothing beyond the existing
// bus fan-out (pinned by BenchmarkTelemetryOff against
// BenchmarkStagedTick, budget ≤5%).
//
// The registry is safe for concurrent use: cluster workers feed
// series from their stepping goroutines while a scrape renders the
// exposition — per-series mutexes serialize the writes, a registry
// RWMutex the family set.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
)

// Kind is a metric family's type.
type Kind uint8

const (
	// KindCounter is a monotonically increasing total.
	KindCounter Kind = iota
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry holds a set of metric families. The zero value is not
// usable; call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

// Family is one named metric with a fixed label-key set and one
// series per label-value combination.
type Family struct {
	name    string
	help    string
	kind    Kind
	labels  []string
	buckets []float64 // histogram upper bounds, strictly increasing; +Inf implicit

	mu     sync.Mutex
	series map[string]*Series
}

// Counter registers (or returns the existing) counter family.
// Re-registration with a different kind, help or label set panics:
// family identity is a programming contract, not runtime input.
func (r *Registry) Counter(name, help string, labels ...string) *Family {
	return r.family(name, help, KindCounter, nil, labels)
}

// Gauge registers (or returns the existing) gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Family {
	return r.family(name, help, KindGauge, nil, labels)
}

// Histogram registers (or returns the existing) histogram family with
// the given bucket upper bounds (strictly increasing; a final +Inf
// bucket is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Family {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %s has no buckets", name))
	}
	for i, b := range buckets {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("telemetry: histogram %s bucket %d is not finite", name, i))
		}
		if i > 0 && b <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s buckets not strictly increasing at %d", name, i))
		}
	}
	bs := make([]float64, len(buckets))
	copy(bs, buckets)
	return r.family(name, help, KindHistogram, bs, labels)
}

func (r *Registry) family(name, help string, kind Kind, buckets []float64, labels []string) *Family {
	if !validName(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validName(l) || strings.HasPrefix(l, "__") {
			panic(fmt.Sprintf("telemetry: invalid label key %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.kind != kind || f.help != help || !equalStrings(f.labels, labels) || !equalFloats(f.buckets, buckets) {
			panic(fmt.Sprintf("telemetry: conflicting re-registration of %s", name))
		}
		return f
	}
	f := &Family{
		name:    name,
		help:    help,
		kind:    kind,
		labels:  append([]string(nil), labels...),
		buckets: buckets,
		series:  make(map[string]*Series),
	}
	r.families[name] = f
	return f
}

// Name returns the family name.
func (f *Family) Name() string { return f.name }

// Kind returns the family type.
func (f *Family) Kind() Kind { return f.kind }

// With returns the series for the given label values (created on
// first use), in the family's declared label-key order. The returned
// handle is stable — hot paths should cache it rather than re-resolve
// per event. Panics on arity mismatch.
func (f *Family) With(labelValues ...string) *Series {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := &Series{f: f, labels: append([]string(nil), labelValues...)}
	if f.kind == KindHistogram {
		s.counts = make([]uint64, len(f.buckets)+1)
	}
	f.series[key] = s
	return s
}

// Series is one labeled time series. All methods are safe for
// concurrent use.
type Series struct {
	f      *Family
	labels []string

	mu     sync.Mutex
	val    float64  // counter total or gauge value
	sum    float64  // histogram sum of observations
	count  uint64   // histogram observation count
	counts []uint64 // histogram per-bucket (non-cumulative) counts; last = +Inf
}

// Inc adds 1 to a counter.
func (s *Series) Inc() { s.Add(1) }

// Add increases a counter by v (v must be non-negative and finite;
// NaN and negative deltas are dropped — fault-corrupted observations
// must not poison totals).
func (s *Series) Add(v float64) {
	if s.f.kind != KindCounter {
		panic(fmt.Sprintf("telemetry: Add on non-counter %s", s.f.name))
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return
	}
	s.mu.Lock()
	s.val += v
	s.mu.Unlock()
}

// Set sets a gauge (NaN/Inf are dropped, keeping the last good value).
func (s *Series) Set(v float64) {
	if s.f.kind != KindGauge {
		panic(fmt.Sprintf("telemetry: Set on non-gauge %s", s.f.name))
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	s.mu.Lock()
	s.val = v
	s.mu.Unlock()
}

// Observe records one histogram sample (NaN/Inf are dropped).
func (s *Series) Observe(v float64) {
	if s.f.kind != KindHistogram {
		panic(fmt.Sprintf("telemetry: Observe on non-histogram %s", s.f.name))
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	i := sort.SearchFloat64s(s.f.buckets, v) // first bucket with bound >= v
	s.mu.Lock()
	s.counts[i]++
	s.count++
	s.sum += v
	s.mu.Unlock()
}

// Value returns a counter's total or a gauge's current value.
func (s *Series) Value() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.val
}

// Count returns a histogram's observation count.
func (s *Series) Count() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of a histogram by
// linear interpolation within the bucket holding the target rank,
// the standard Prometheus histogram_quantile estimate. The +Inf
// bucket clamps to the largest finite bound. Returns NaN before any
// observation or for q outside [0,1].
func (s *Series) Quantile(q float64) float64 {
	if s.f.kind != KindHistogram {
		panic(fmt.Sprintf("telemetry: Quantile on non-histogram %s", s.f.name))
	}
	if math.IsNaN(q) || q < 0 || q > 1 {
		return math.NaN()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.count == 0 {
		return math.NaN()
	}
	rank := q * float64(s.count)
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(s.f.buckets) {
			// Target rank lands in +Inf: clamp to the largest finite
			// bound, as histogram_quantile does.
			return s.f.buckets[len(s.f.buckets)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.f.buckets[i-1]
		}
		hi := s.f.buckets[i]
		if c == 0 {
			return hi
		}
		frac := (rank - float64(cum-c)) / float64(c)
		if frac < 0 {
			frac = 0
		}
		return lo + (hi-lo)*frac
	}
	return s.f.buckets[len(s.f.buckets)-1]
}

// snapshotLocked returns the family's series sorted by label values.
func (f *Family) sortedSeries() []*Series {
	f.mu.Lock()
	out := make([]*Series, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].labels, out[j].labels
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// sortedFamilies returns the registry's families sorted by name.
func (r *Registry) sortedFamilies() []*Family {
	r.mu.RLock()
	out := make([]*Family, 0, len(r.families))
	for _, f := range r.families {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// validName reports whether s is a legal Prometheus metric or label
// name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
