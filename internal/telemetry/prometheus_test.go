package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the exposition golden fixture under testdata/")

// goldenRegistry builds a registry exercising every exposition shape:
// unlabeled and labeled counters, gauges, a histogram with +Inf mass,
// label-value escaping and HELP escaping.
func goldenRegistry() *Registry {
	reg := NewRegistry()
	reg.Counter("zz_last_total", "Sorts last.").With().Add(1)
	c := reg.Counter("aapm_ticks_total", "Recorded monitoring intervals.", "node", "governor")
	c.With("n1", "pm").Add(120)
	c.With("n0", "pm").Add(240) // series sort by label values, so n0 first
	g := reg.Gauge("aapm_power_watts", "True interval-average power of the last interval (watts).", "node", "governor")
	g.With("n0", "pm").Set(14.25)
	h := reg.Histogram("aapm_interval_power_watts", "Distribution of true interval-average power (watts).", []float64{10, 15, 20}, "node")
	hs := h.With("n0")
	for _, v := range []float64{9, 11, 14.5, 19, 30} {
		hs.Observe(v)
	}
	reg.Counter("esc_total", "Help with a \\ backslash\nand a newline.", "path").
		With("a\"b\\c\nd").Inc()
	reg.Gauge("empty_family_gauge", "No series: omitted entirely.")
	return reg
}

// TestPrometheusGolden pins the exposition format byte-for-byte:
// family ordering, HELP/TYPE lines, label ordering and escaping,
// histogram bucket/sum/count expansion and value formatting.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_exposition.prom")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/telemetry -run TestPrometheusGolden -update` to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("exposition drifted from %s:\n--- got ---\n%s\n--- want ---\n%s", path, buf.String(), want)
	}
}

// TestPrometheusWellFormed parses the exposition line by line and
// checks the structural invariants a scraper relies on.
func TestPrometheusWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	var families []string
	typeOf := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line %q", line)
			}
			families = append(families, parts[2])
			typeOf[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if line == "" || !strings.Contains(line, " ") {
			t.Fatalf("malformed sample line %q", line)
		}
	}
	for i := 1; i < len(families); i++ {
		if families[i-1] >= families[i] {
			t.Errorf("families not sorted: %q before %q", families[i-1], families[i])
		}
	}
	if typeOf["aapm_interval_power_watts"] != "histogram" {
		t.Errorf("histogram TYPE = %q", typeOf["aapm_interval_power_watts"])
	}
	out := buf.String()
	// Histogram expansion: cumulative buckets end at +Inf == _count.
	for _, want := range []string{
		`aapm_interval_power_watts_bucket{node="n0",le="10"} 1`,
		`aapm_interval_power_watts_bucket{node="n0",le="15"} 3`,
		`aapm_interval_power_watts_bucket{node="n0",le="20"} 4`,
		`aapm_interval_power_watts_bucket{node="n0",le="+Inf"} 5`,
		`aapm_interval_power_watts_count{node="n0"} 5`,
		`esc_total{path="a\"b\\c\nd"} 1`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "empty_family_gauge") {
		t.Error("family with no series must be omitted")
	}
}

func TestSnapshotJSON(t *testing.T) {
	snap := goldenRegistry().Snapshot()
	raw, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Families) != len(snap.Families) {
		t.Fatalf("round-trip families = %d, want %d", len(back.Families), len(snap.Families))
	}
	// Families sorted by name, kinds present, histogram carries buckets.
	var sawHist bool
	for i := 1; i < len(snap.Families); i++ {
		if snap.Families[i-1].Name >= snap.Families[i].Name {
			t.Errorf("snapshot families not sorted at %d", i)
		}
	}
	for _, f := range snap.Families {
		if f.Kind != "counter" && f.Kind != "gauge" && f.Kind != "histogram" {
			t.Errorf("family %s has kind %q", f.Name, f.Kind)
		}
		if f.Kind == "histogram" {
			sawHist = true
			for _, s := range f.Series {
				if len(s.Buckets) == 0 {
					t.Errorf("histogram %s series missing buckets", f.Name)
				}
			}
		}
	}
	if !sawHist {
		t.Error("snapshot missing the histogram family")
	}
}
