// Package spec provides the synthetic SPEC CPU2000 workload suite.
//
// The original study runs the 26 SPEC CPU2000 benchmarks on real
// hardware. Reference inputs and a Pentium M are not available here,
// so each benchmark is modeled as a phase-trace workload whose
// architectural parameters are calibrated to the characterizations the
// paper reports:
//
//   - swim, lucas, equake, mcf, applu and art are memory-bound: high
//     DCU-miss-outstanding occupancy driven by DRAM (not L2) traffic,
//     so their performance barely responds to frequency (Fig. 2,
//     Fig. 7 left).
//   - perlbmk, mesa, eon, crafty and sixtrack are core-bound with low
//     stall rates and scale almost linearly with frequency (Fig. 7
//     right).
//   - crafty and perlbmk have the highest average power (high decode
//     and L2 request rates), followed by galgel; bzip2 sits slightly
//     lower (§IV-A.2).
//   - galgel is bursty, alternating low-power and peak phases, with
//     the highest individual 10 ms power samples of the suite — the
//     workload PM finds hardest to contain (§IV-A.2).
//   - ammp alternates memory- and core-bound regions on a timescale
//     visible in the paper's PM/PS timelines (Fig. 5, Fig. 8).
//   - art and mcf sit in the sparse middle of the training space; with
//     the 0.81 exponent PS violates their floors (art 42.2%, mcf
//     27.7% at the 80% floor), largely repaired by 0.59 (§IV-B.2).
//
// Parameters are expressed as stall budgets per instruction at the
// 2 GHz reference point and converted to the analytic phase model's
// access intensities.
package spec

import (
	"fmt"
	"sort"

	"aapm/internal/phase"
	"aapm/internal/pstate"
)

// Class is the paper's qualitative workload grouping.
type Class int

// Workload classes.
const (
	// CoreBound workloads scale with frequency.
	CoreBound Class = iota
	// MemoryBound workloads are dominated by DRAM latency.
	MemoryBound
	// Mixed workloads alternate or sit between the extremes.
	Mixed
)

// String names the class.
func (c Class) String() string {
	switch c {
	case CoreBound:
		return "core-bound"
	case MemoryBound:
		return "memory-bound"
	case Mixed:
		return "mixed"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// seg is one phase segment: a stall-budget parametrization at the
// 2 GHz reference plus its duration there.
type seg struct {
	name string
	// ms is the segment duration in milliseconds at 2 GHz.
	ms float64
	// c is core CPI; l2 and mem are L2/DRAM stall cycles per
	// instruction at 2 GHz; mlp, spec, stall as in phase.Params.
	c, l2, mem float64
	mlp, spec  float64
	stall      float64
}

// specIntNames is the SPECint subset; the rest of the suite is SPECfp.
var specIntNames = map[string]bool{
	"gzip": true, "vpr": true, "gcc": true, "mcf": true, "crafty": true,
	"parser": true, "eon": true, "perlbmk": true, "gap": true,
	"vortex": true, "bzip2": true, "twolf": true,
}

// bench is one benchmark definition.
type bench struct {
	name   string
	class  Class
	jitter float64
	// seconds is the approximate full-run duration at 2 GHz.
	seconds float64
	segs    []seg
}

// reference frequency for the stall-budget parametrization.
const refMHz = 2000

// toPhase converts a segment to phase parameters.
//
// Derivation: the analytic model charges (L2APKI/1000)*L2Lat/MLP
// cycles per instruction for L2 stalls (frequency independent) and
// (MemAPKI/1000)*(MemLatNs*f/1000)/MLP for DRAM stalls; equating those
// to the l2/mem budgets at 2 GHz gives the access intensities.
func (s seg) toPhase(ps pstate.PState) (phase.Params, error) {
	l2apki := s.l2 * 1000 * s.mlp / phase.L2LatencyCycles
	memLatCyclesRef := phase.MemLatencyNs * refMHz / 1000
	memapki := s.mem * 1000 * s.mlp / memLatCyclesRef
	if memapki > l2apki {
		return phase.Params{}, fmt.Errorf("spec: segment %q: DRAM intensity %g exceeds L2 intensity %g; raise l2 budget", s.name, memapki, l2apki)
	}
	p := phase.Params{
		Name: s.name,
		// Placeholder so the behaviour query below does not treat the
		// phase as idle; replaced with the duration-derived count.
		Instructions: 1,
		CPICore:      s.c,
		L2APKI:       l2apki,
		MemAPKI:      memapki,
		MemBPI:       memapki * 64 / 1000,
		MLP:          s.mlp,
		SpecFactor:   s.spec,
		StallFrac:    s.stall,
	}
	// Instructions for the segment's duration at the reference state.
	b := p.At(ps)
	p.Instructions = ps.FreqHz() * (s.ms / 1000) * b.IPC
	return p, nil
}

// Workload materializes the benchmark as a runnable phase workload.
func (b bench) workload() (phase.Workload, error) {
	ref, err := pstate.PentiumM755().ByFreq(refMHz)
	if err != nil {
		return phase.Workload{}, err
	}
	var phases []phase.Params
	var perIterMs float64
	for _, s := range b.segs {
		s.name = b.name + "/" + s.name
		p, err := s.toPhase(ref)
		if err != nil {
			return phase.Workload{}, fmt.Errorf("%s: %w", b.name, err)
		}
		phases = append(phases, p)
		perIterMs += s.ms
	}
	iters := int(b.seconds*1000/perIterMs + 0.5)
	if iters < 1 {
		iters = 1
	}
	w := phase.Workload{
		Name:       b.name,
		Phases:     phases,
		Iterations: iters,
		JitterPct:  b.jitter,
	}
	if err := w.Validate(); err != nil {
		return phase.Workload{}, err
	}
	return w, nil
}

// benches defines the whole suite. Stall budgets (l2, mem) are cycles
// per instruction at 2 GHz; see the package comment for the published
// characteristics each entry encodes.
var benches = []bench{
	// --- strongly memory-bound (DRAM-dominated) ---
	{name: "swim", class: MemoryBound, jitter: 0.02, seconds: 26, segs: []seg{
		{name: "stream", ms: 700, c: 0.35, l2: 0.35, mem: 6.0, mlp: 4, spec: 1.30, stall: 0.10},
		{name: "stencil", ms: 300, c: 0.40, l2: 0.40, mem: 5.4, mlp: 4, spec: 1.28, stall: 0.10},
	}},
	{name: "lucas", class: MemoryBound, jitter: 0.02, seconds: 25, segs: []seg{
		{name: "fft", ms: 600, c: 0.45, l2: 0.40, mem: 5.0, mlp: 3, spec: 1.35, stall: 0.10},
		{name: "twiddle", ms: 400, c: 0.42, l2: 0.42, mem: 4.6, mlp: 3, spec: 1.32, stall: 0.10},
	}},
	{name: "equake", class: MemoryBound, jitter: 0.03, seconds: 25, segs: []seg{
		{name: "sparse", ms: 800, c: 0.35, l2: 0.40, mem: 5.2, mlp: 2.5, spec: 1.40, stall: 0.12},
		{name: "assemble", ms: 200, c: 0.40, l2: 0.40, mem: 4.6, mlp: 2.5, spec: 1.38, stall: 0.12},
	}},
	{name: "mcf", class: MemoryBound, jitter: 0.03, seconds: 28, segs: []seg{
		{name: "simplex", ms: 1000, c: 0.629, l2: 0.40, mem: 3.0, mlp: 1.2, spec: 1.45, stall: 0.15},
	}},
	{name: "applu", class: MemoryBound, jitter: 0.02, seconds: 25, segs: []seg{
		{name: "rhs", ms: 600, c: 0.40, l2: 0.45, mem: 5.0, mlp: 3, spec: 1.35, stall: 0.10},
		{name: "blts", ms: 400, c: 0.42, l2: 0.42, mem: 4.6, mlp: 3, spec: 1.33, stall: 0.10},
	}},
	{name: "art", class: MemoryBound, jitter: 0.03, seconds: 28, segs: []seg{
		{name: "scan", ms: 1000, c: 0.896, l2: 1.00, mem: 2.0, mlp: 2, spec: 1.50, stall: 0.15},
	}},

	// --- mixed / in-between ---
	{name: "gap", class: Mixed, jitter: 0.03, seconds: 24, segs: []seg{
		{name: "groups", ms: 700, c: 0.75, l2: 0.50, mem: 0.70, mlp: 2, spec: 1.40, stall: 0.12},
		{name: "gc", ms: 300, c: 0.80, l2: 0.55, mem: 0.60, mlp: 2, spec: 1.38, stall: 0.12},
	}},
	{name: "vpr", class: Mixed, jitter: 0.03, seconds: 24, segs: []seg{
		{name: "place", ms: 600, c: 0.90, l2: 0.45, mem: 0.70, mlp: 1.8, spec: 1.50, stall: 0.14},
		{name: "route", ms: 400, c: 0.85, l2: 0.50, mem: 0.65, mlp: 1.8, spec: 1.48, stall: 0.14},
	}},
	{name: "gcc", class: Mixed, jitter: 0.04, seconds: 22, segs: []seg{
		{name: "parse", ms: 400, c: 0.80, l2: 0.55, mem: 0.60, mlp: 2, spec: 1.60, stall: 0.16},
		{name: "rtl", ms: 400, c: 0.75, l2: 0.60, mem: 0.55, mlp: 2, spec: 1.62, stall: 0.16},
		{name: "regalloc", ms: 200, c: 0.85, l2: 0.50, mem: 0.60, mlp: 2, spec: 1.58, stall: 0.16},
	}},
	{name: "parser", class: Mixed, jitter: 0.03, seconds: 24, segs: []seg{
		{name: "dict", ms: 1000, c: 0.85, l2: 0.50, mem: 0.65, mlp: 1.6, spec: 1.55, stall: 0.14},
	}},
	{name: "facerec", class: Mixed, jitter: 0.02, seconds: 24, segs: []seg{
		{name: "graph", ms: 600, c: 0.70, l2: 0.45, mem: 0.72, mlp: 2.5, spec: 1.35, stall: 0.11},
		{name: "match", ms: 400, c: 0.75, l2: 0.40, mem: 0.60, mlp: 2.5, spec: 1.33, stall: 0.11},
	}},
	{name: "wupwise", class: Mixed, jitter: 0.02, seconds: 24, segs: []seg{
		{name: "zgemm", ms: 1000, c: 0.60, l2: 0.40, mem: 0.75, mlp: 3, spec: 1.30, stall: 0.10},
	}},
	{name: "mgrid", class: MemoryBound, jitter: 0.02, seconds: 25, segs: []seg{
		{name: "resid", ms: 700, c: 0.40, l2: 0.50, mem: 5.0, mlp: 3.5, spec: 1.30, stall: 0.10},
		{name: "interp", ms: 300, c: 0.42, l2: 0.48, mem: 4.5, mlp: 3.5, spec: 1.28, stall: 0.10},
	}},
	{name: "apsi", class: Mixed, jitter: 0.02, seconds: 24, segs: []seg{
		{name: "fields", ms: 1000, c: 0.70, l2: 0.50, mem: 0.68, mlp: 2.2, spec: 1.35, stall: 0.11},
	}},
	{name: "fma3d", class: Mixed, jitter: 0.02, seconds: 24, segs: []seg{
		{name: "elements", ms: 1000, c: 0.65, l2: 0.45, mem: 0.70, mlp: 2.4, spec: 1.35, stall: 0.11},
	}},
	{name: "ammp", class: Mixed, jitter: 0.03, seconds: 32, segs: []seg{
		{name: "neighbor", ms: 900, c: 0.35, l2: 0.45, mem: 5.00, mlp: 2, spec: 1.35, stall: 0.12},
		{name: "force", ms: 700, c: 0.55, l2: 0.25, mem: 0.15, mlp: 2, spec: 1.35, stall: 0.10},
	}},
	{name: "vortex", class: Mixed, jitter: 0.03, seconds: 23, segs: []seg{
		{name: "oodb", ms: 1000, c: 0.70, l2: 0.55, mem: 0.50, mlp: 1.8, spec: 1.55, stall: 0.14},
	}},
	{name: "gzip", class: Mixed, jitter: 0.03, seconds: 22, segs: []seg{
		{name: "deflate", ms: 600, c: 0.75, l2: 0.40, mem: 0.45, mlp: 1.8, spec: 1.50, stall: 0.13},
		{name: "inflate", ms: 400, c: 0.70, l2: 0.35, mem: 0.35, mlp: 1.8, spec: 1.48, stall: 0.13},
	}},
	// galgel alternates: short full-pipeline bursts (the suite's highest
	// individual samples), an L2-request-heavy stretch whose power the
	// DPC-only model underestimates (the source of its PM limit
	// violations at 13.5 W), and lower-activity stretches long enough
	// for PM's 100 ms up-shift hysteresis to fire.
	{name: "galgel", class: Mixed, jitter: 0.04, seconds: 26, segs: []seg{
		{name: "peak", ms: 50, c: 0.48, l2: 0.10, mem: 0.02, mlp: 3, spec: 1.25, stall: 0.08},
		{name: "low", ms: 50, c: 0.75, l2: 0.50, mem: 0.30, mlp: 2, spec: 1.69, stall: 0.12},
		{name: "quiet", ms: 130, c: 0.75, l2: 0.50, mem: 0.30, mlp: 2, spec: 1.69, stall: 0.12},
		{name: "l2heavy", ms: 100, c: 0.984, l2: 0.150, mem: 0.02, mlp: 16, spec: 1.212, stall: 0.10},
	}},
	{name: "bzip2", class: Mixed, jitter: 0.03, seconds: 23, segs: []seg{
		{name: "sort", ms: 700, c: 0.55, l2: 0.25, mem: 0.35, mlp: 2, spec: 1.85, stall: 0.12},
		{name: "huffman", ms: 300, c: 0.60, l2: 0.30, mem: 0.40, mlp: 2, spec: 1.82, stall: 0.12},
	}},
	{name: "twolf", class: CoreBound, jitter: 0.03, seconds: 24, segs: []seg{
		{name: "anneal", ms: 1000, c: 1.00, l2: 0.50, mem: 0.30, mlp: 1.5, spec: 1.50, stall: 0.14},
	}},

	// --- core-bound ---
	{name: "perlbmk", class: CoreBound, jitter: 0.02, seconds: 22, segs: []seg{
		{name: "interp", ms: 1000, c: 0.52, l2: 0.12, mem: 0.03, mlp: 2, spec: 1.20, stall: 0.08},
	}},
	{name: "mesa", class: CoreBound, jitter: 0.02, seconds: 22, segs: []seg{
		{name: "raster", ms: 1000, c: 0.70, l2: 0.15, mem: 0.05, mlp: 2, spec: 1.10, stall: 0.08},
	}},
	{name: "eon", class: CoreBound, jitter: 0.02, seconds: 22, segs: []seg{
		{name: "raytrace", ms: 1000, c: 0.75, l2: 0.08, mem: 0.01, mlp: 2, spec: 1.05, stall: 0.07},
	}},
	{name: "crafty", class: CoreBound, jitter: 0.02, seconds: 22, segs: []seg{
		{name: "search", ms: 1000, c: 0.50, l2: 0.10, mem: 0.02, mlp: 2, spec: 1.18, stall: 0.08},
	}},
	{name: "sixtrack", class: CoreBound, jitter: 0.02, seconds: 24, segs: []seg{
		{name: "track", ms: 1000, c: 0.73, l2: 0.05, mem: 0.005, mlp: 2, spec: 1.04, stall: 0.06},
	}},
}

// Names returns all benchmark names in suite order.
func Names() []string {
	out := make([]string, len(benches))
	for i, b := range benches {
		out[i] = b.name
	}
	return out
}

// SortedNames returns the names alphabetically.
func SortedNames() []string {
	out := Names()
	sort.Strings(out)
	return out
}

// ClassOf returns the paper's qualitative class for a benchmark.
func ClassOf(name string) (Class, error) {
	for _, b := range benches {
		if b.name == name {
			return b.class, nil
		}
	}
	return 0, fmt.Errorf("spec: unknown benchmark %q", name)
}

// IsInteger reports whether the benchmark is in SPECint (vs SPECfp).
func IsInteger(name string) (bool, error) {
	for _, b := range benches {
		if b.name == name {
			return specIntNames[name], nil
		}
	}
	return false, fmt.Errorf("spec: unknown benchmark %q", name)
}

// ByName materializes one benchmark.
func ByName(name string) (phase.Workload, error) {
	for _, b := range benches {
		if b.name == name {
			return b.workload()
		}
	}
	return phase.Workload{}, fmt.Errorf("spec: unknown benchmark %q", name)
}

// All materializes the whole suite in suite order.
func All() ([]phase.Workload, error) {
	out := make([]phase.Workload, 0, len(benches))
	for _, b := range benches {
		w, err := b.workload()
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}
