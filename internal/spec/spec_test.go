package spec

import (
	"testing"

	"aapm/internal/model"
	"aapm/internal/phase"
	"aapm/internal/pstate"
)

func TestSuiteHas26UniqueBenchmarks(t *testing.T) {
	names := Names()
	if len(names) != 26 {
		t.Fatalf("suite has %d benchmarks, want 26", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate benchmark %q", n)
		}
		seen[n] = true
	}
	// The canonical CPU2000 names must all be present.
	want := []string{
		"gzip", "vpr", "gcc", "mcf", "crafty", "parser", "eon", "perlbmk",
		"gap", "vortex", "bzip2", "twolf",
		"wupwise", "swim", "mgrid", "applu", "mesa", "galgel", "art",
		"equake", "facerec", "ammp", "lucas", "fma3d", "sixtrack", "apsi",
	}
	for _, n := range want {
		if !seen[n] {
			t.Errorf("missing benchmark %q", n)
		}
	}
	sorted := SortedNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Fatalf("SortedNames not sorted at %d", i)
		}
	}
}

func TestSPECintMembership(t *testing.T) {
	isInt, err := IsInteger("gcc")
	if err != nil || !isInt {
		t.Errorf("gcc integer = %v, %v", isInt, err)
	}
	isInt, err = IsInteger("swim")
	if err != nil || isInt {
		t.Errorf("swim integer = %v, %v", isInt, err)
	}
	if _, err := IsInteger("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	n := 0
	for _, name := range Names() {
		if ok, _ := IsInteger(name); ok {
			n++
		}
	}
	if n != 12 {
		t.Errorf("SPECint count = %d, want 12", n)
	}
}

func TestAllWorkloadsValidate(t *testing.T) {
	ws, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 26 {
		t.Fatalf("All returned %d workloads", len(ws))
	}
	for _, w := range ws {
		if err := w.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if w.TotalInstructions() <= 0 {
			t.Errorf("%s has no instructions", w.Name)
		}
	}
}

func TestByName(t *testing.T) {
	w, err := ByName("ammp")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "ammp" || len(w.Phases) != 2 {
		t.Errorf("ammp = %d phases", len(w.Phases))
	}
	if _, err := ByName("spice"); err == nil {
		t.Error("unknown benchmark accepted")
	}
	if _, err := ClassOf("spice"); err == nil {
		t.Error("unknown benchmark class accepted")
	}
}

func TestClassStrings(t *testing.T) {
	if CoreBound.String() != "core-bound" || MemoryBound.String() != "memory-bound" || Mixed.String() != "mixed" {
		t.Error("class names wrong")
	}
	if Class(9).String() != "class(9)" {
		t.Error("unknown class name wrong")
	}
}

// instrWeightedStallPerInst returns the benchmark's DCU/IPC at the
// given p-state, weighted by per-phase instruction counts.
func instrWeightedStallPerInst(t *testing.T, w phase.Workload, ps pstate.PState) float64 {
	t.Helper()
	var stall, instr float64
	for _, p := range w.Phases {
		stall += p.StallPerInst(ps) * p.Instructions
		instr += p.Instructions
	}
	if instr == 0 {
		t.Fatalf("%s has no instructions", w.Name)
	}
	return stall / instr
}

// TestClassesMatchModelClassification pins the paper's groupings: the
// six memory-bound benchmarks classify memory-bound under eq. 3's
// threshold at 2 GHz; the five core-bound ones classify core-bound.
func TestClassesMatchModelClassification(t *testing.T) {
	ps2000 := pstate.PentiumM755().Max()
	for _, n := range Names() {
		w, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		cls, err := ClassOf(n)
		if err != nil {
			t.Fatal(err)
		}
		stall := instrWeightedStallPerInst(t, w, ps2000)
		memBound := stall >= model.PaperDCUThreshold
		switch cls {
		case MemoryBound:
			if !memBound {
				t.Errorf("%s labeled memory-bound but DCU/IPC@2GHz = %.2f < %.2f", n, stall, model.PaperDCUThreshold)
			}
		case CoreBound:
			if memBound {
				t.Errorf("%s labeled core-bound but DCU/IPC@2GHz = %.2f", n, stall)
			}
		}
	}
}

// TestPaperMemoryBoundGroup checks the six benchmarks the paper calls
// out as DRAM-bound gain almost nothing from 1800 -> 2000 MHz.
func TestPaperMemoryBoundGroup(t *testing.T) {
	tab := pstate.PentiumM755()
	p1800, _ := tab.ByFreq(1800)
	p2000, _ := tab.ByFreq(2000)
	// art sits at the right edge of the memory-bound group in Fig 7
	// (it is the "in-between" workload), so it gets a looser bound.
	limits := map[string]float64{
		"swim": 1.05, "lucas": 1.05, "equake": 1.05,
		"mcf": 1.05, "applu": 1.05, "art": 1.07,
	}
	for n, lim := range limits {
		w, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		gain := w.TimeAt(p1800).Seconds() / w.TimeAt(p2000).Seconds()
		if gain > lim {
			t.Errorf("%s speeds up %.1f%% from 1800->2000, want < %.0f%%", n, (gain-1)*100, (lim-1)*100)
		}
	}
}

// TestPaperCoreBoundGroup checks the core-bound five scale nearly
// linearly with frequency.
func TestPaperCoreBoundGroup(t *testing.T) {
	tab := pstate.PentiumM755()
	p1800, _ := tab.ByFreq(1800)
	p2000, _ := tab.ByFreq(2000)
	for _, n := range []string{"perlbmk", "mesa", "eon", "crafty", "sixtrack"} {
		w, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		gain := w.TimeAt(p1800).Seconds() / w.TimeAt(p2000).Seconds()
		if gain < 1.09 {
			t.Errorf("%s speeds up only %.1f%% from 1800->2000, want ~11%%", n, (gain-1)*100)
		}
	}
}

// TestRunDurationsReasonable bounds full-run times at 2 GHz so the
// experiment sweeps stay tractable.
func TestRunDurationsReasonable(t *testing.T) {
	ps2000 := pstate.PentiumM755().Max()
	ws, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range ws {
		d := w.TimeAt(ps2000).Seconds()
		if d < 15 || d > 60 {
			t.Errorf("%s runs %.1fs at 2 GHz, want 15..60s", w.Name, d)
		}
	}
}

// TestArtMcfCalibration pins the two PS-violation benchmarks to the
// in-between region: memory-classified at 2 GHz and still
// memory-classified at 800 MHz (so PS holds them low), yet with enough
// frequency sensitivity to break their floors (§IV-B.2).
func TestArtMcfCalibration(t *testing.T) {
	tab := pstate.PentiumM755()
	p800, _ := tab.ByFreq(800)
	p2000, _ := tab.ByFreq(2000)
	for _, n := range []string{"art", "mcf"} {
		w, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		at2000 := instrWeightedStallPerInst(t, w, p2000)
		at800 := instrWeightedStallPerInst(t, w, p800)
		if at2000 < model.PaperDCUThreshold || at800 < model.PaperDCUThreshold {
			t.Errorf("%s declassifies: DCU/IPC %.2f@2GHz, %.2f@800MHz", n, at2000, at800)
		}
		// True performance loss at 800 MHz must exceed the 20% the
		// 80% floor allows (the paper's violation).
		loss := 1 - w.TimeAt(p2000).Seconds()/w.TimeAt(p800).Seconds()
		if loss < 0.25 {
			t.Errorf("%s loses only %.1f%% at 800 MHz; too mild to violate the floor", n, loss*100)
		}
	}
}
