// Package pstate models ACPI-style processor performance states
// (p-states) for the simulated Pentium M 755 platform.
//
// A p-state is a voltage/frequency operating point. The table of
// available p-states mirrors Table II of the paper: eight states from
// 600 MHz / 0.998 V to 2000 MHz / 1.340 V. The package also provides
// an Actuator that models the (small) latency of a DVFS transition,
// matching the machine-specific-register + voltage-regulator sequencing
// the paper's driver performs.
package pstate

import (
	"fmt"
	"sort"
	"time"

	"aapm/internal/paperref"
)

// PState describes one voltage/frequency operating point.
type PState struct {
	// FreqMHz is the core clock frequency in MHz.
	FreqMHz int
	// VoltageV is the supply voltage in volts.
	VoltageV float64
}

// String returns a compact human-readable form such as "1800MHz@1.292V".
func (p PState) String() string {
	return fmt.Sprintf("%dMHz@%.3fV", p.FreqMHz, p.VoltageV)
}

// FreqHz returns the frequency in Hz.
func (p PState) FreqHz() float64 { return float64(p.FreqMHz) * 1e6 }

// CyclesIn returns the number of core cycles elapsed in d at this p-state.
func (p PState) CyclesIn(d time.Duration) float64 {
	return p.FreqHz() * d.Seconds()
}

// Table is an ordered set of p-states, lowest frequency first.
type Table struct {
	states []PState
}

// PentiumM755 returns the p-state table of the paper's experimental
// platform (Table II voltage/frequency pairs, from package paperref).
func PentiumM755() *Table {
	states := make([]PState, 0, len(paperref.TableII))
	for _, r := range paperref.TableII {
		states = append(states, PState{FreqMHz: r.FreqMHz, VoltageV: r.VoltageV})
	}
	t, err := NewTable(states)
	if err != nil {
		panic("pstate: built-in table invalid: " + err.Error())
	}
	return t
}

// PentiumM738LV returns a synthetic low-voltage sibling platform: the
// same frequency ladder up to 1400 MHz at uniformly lower supply
// voltages. It exists to demonstrate the paper's §II point that
// counter-based power models are platform-specific: coefficients
// trained on the 755 misestimate this part until retrained.
func PentiumM738LV() *Table {
	t, err := NewTable([]PState{
		{600, 0.956},
		{800, 1.004},
		{1000, 1.052},
		{1200, 1.100},
		{1400, 1.148},
	})
	if err != nil {
		panic("pstate: built-in 738LV table invalid: " + err.Error())
	}
	return t
}

// NewTable validates and returns a p-state table. States must have
// strictly increasing frequency and non-decreasing voltage, mirroring
// physical DVFS tables where higher frequency requires at least as much
// supply voltage.
func NewTable(states []PState) (*Table, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("pstate: empty table")
	}
	s := make([]PState, len(states))
	copy(s, states)
	sort.Slice(s, func(i, j int) bool { return s[i].FreqMHz < s[j].FreqMHz })
	for i, p := range s {
		if p.FreqMHz <= 0 {
			return nil, fmt.Errorf("pstate: state %d has non-positive frequency %d", i, p.FreqMHz)
		}
		if p.VoltageV <= 0 {
			return nil, fmt.Errorf("pstate: state %d has non-positive voltage %g", i, p.VoltageV)
		}
		if i > 0 {
			if p.FreqMHz == s[i-1].FreqMHz {
				return nil, fmt.Errorf("pstate: duplicate frequency %d MHz", p.FreqMHz)
			}
			if p.VoltageV < s[i-1].VoltageV {
				return nil, fmt.Errorf("pstate: voltage decreases from %g to %g at %d MHz",
					s[i-1].VoltageV, p.VoltageV, p.FreqMHz)
			}
		}
	}
	return &Table{states: s}, nil
}

// Len returns the number of p-states.
func (t *Table) Len() int { return len(t.states) }

// At returns the i-th p-state, lowest frequency first.
func (t *Table) At(i int) PState { return t.states[i] }

// States returns a copy of all p-states, lowest frequency first.
func (t *Table) States() []PState {
	out := make([]PState, len(t.states))
	copy(out, t.states)
	return out
}

// Min returns the lowest-frequency p-state.
func (t *Table) Min() PState { return t.states[0] }

// Max returns the highest-frequency p-state.
func (t *Table) Max() PState { return t.states[len(t.states)-1] }

// IndexOf returns the index of the state with the given frequency, or
// -1 if the table has no such state.
func (t *Table) IndexOf(freqMHz int) int {
	for i, p := range t.states {
		if p.FreqMHz == freqMHz {
			return i
		}
	}
	return -1
}

// ByFreq returns the state with the given frequency.
func (t *Table) ByFreq(freqMHz int) (PState, error) {
	if i := t.IndexOf(freqMHz); i >= 0 {
		return t.states[i], nil
	}
	return PState{}, fmt.Errorf("pstate: no state with frequency %d MHz", freqMHz)
}

// HighestBelow returns the highest-frequency state whose frequency is
// at most freqMHz. It returns the minimum state if every state is above.
func (t *Table) HighestBelow(freqMHz int) PState {
	best := t.states[0]
	for _, p := range t.states {
		if p.FreqMHz <= freqMHz {
			best = p
		}
	}
	return best
}

// LowestAtOrAbove returns the lowest-frequency state whose frequency is
// at least freqMHz. It returns the maximum state if every state is below.
func (t *Table) LowestAtOrAbove(freqMHz int) PState {
	for _, p := range t.states {
		if p.FreqMHz >= freqMHz {
			return p
		}
	}
	return t.states[len(t.states)-1]
}

// Actuator applies p-state changes with a transition latency, modeling
// the PLL relock and voltage-regulator slew of a real DVFS transition.
// The zero latency Actuator switches instantaneously.
type Actuator struct {
	table   *Table
	current int // index into table
	latency time.Duration

	transitions int
	failed      int
	stallTotal  time.Duration
}

// DefaultTransitionLatency approximates an Enhanced SpeedStep
// transition (PLL relock + VID ramp): tens of microseconds, negligible
// against the 10 ms control interval, but not zero.
const DefaultTransitionLatency = 30 * time.Microsecond

// NewActuator returns an actuator positioned at the table's maximum
// frequency with the default transition latency.
func NewActuator(t *Table) *Actuator {
	return &Actuator{table: t, current: t.Len() - 1, latency: DefaultTransitionLatency}
}

// SetTransitionLatency overrides the modeled DVFS transition latency.
func (a *Actuator) SetTransitionLatency(d time.Duration) {
	if d < 0 {
		d = 0
	}
	a.latency = d
}

// Latency returns the modeled DVFS transition latency.
func (a *Actuator) Latency() time.Duration { return a.latency }

// RecordFailure charges the stall cost of an abandoned transition
// attempt (fault injection) without moving the actuator.
func (a *Actuator) RecordFailure(stall time.Duration) {
	if stall < 0 {
		stall = 0
	}
	a.failed++
	a.stallTotal += stall
}

// Table returns the actuator's p-state table.
func (a *Actuator) Table() *Table { return a.table }

// Current returns the active p-state.
func (a *Actuator) Current() PState { return a.table.At(a.current) }

// CurrentIndex returns the active p-state's table index.
func (a *Actuator) CurrentIndex() int { return a.current }

// Set switches to the p-state at index i and returns the stall time the
// transition costs. Setting the already-active state is free.
func (a *Actuator) Set(i int) (time.Duration, error) {
	if i < 0 || i >= a.table.Len() {
		return 0, fmt.Errorf("pstate: index %d out of range [0,%d)", i, a.table.Len())
	}
	if i == a.current {
		return 0, nil
	}
	a.current = i
	a.transitions++
	a.stallTotal += a.latency
	return a.latency, nil
}

// SetFreq switches to the state with the given frequency.
func (a *Actuator) SetFreq(freqMHz int) (time.Duration, error) {
	i := a.table.IndexOf(freqMHz)
	if i < 0 {
		return 0, fmt.Errorf("pstate: no state with frequency %d MHz", freqMHz)
	}
	return a.Set(i)
}

// ResetStats zeroes the transition counters without moving the
// actuator, e.g. after positioning it at a run's start state.
func (a *Actuator) ResetStats() {
	a.transitions = 0
	a.failed = 0
	a.stallTotal = 0
}

// Transitions returns the number of completed p-state changes.
func (a *Actuator) Transitions() int { return a.transitions }

// FailedTransitions returns the number of abandoned change attempts.
func (a *Actuator) FailedTransitions() int { return a.failed }

// StallTotal returns the cumulative transition stall time.
func (a *Actuator) StallTotal() time.Duration { return a.stallTotal }
