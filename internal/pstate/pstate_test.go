package pstate

import (
	"testing"
	"testing/quick"
	"time"
)

func TestPentiumM755Table(t *testing.T) {
	tab := PentiumM755()
	if got, want := tab.Len(), 8; got != want {
		t.Fatalf("Len() = %d, want %d", got, want)
	}
	if got := tab.Min(); got.FreqMHz != 600 || got.VoltageV != 0.998 {
		t.Errorf("Min() = %v, want 600MHz@0.998V", got)
	}
	if got := tab.Max(); got.FreqMHz != 2000 || got.VoltageV != 1.340 {
		t.Errorf("Max() = %v, want 2000MHz@1.340V", got)
	}
	// Paper Table II frequencies in order.
	want := []int{600, 800, 1000, 1200, 1400, 1600, 1800, 2000}
	for i, f := range want {
		if tab.At(i).FreqMHz != f {
			t.Errorf("At(%d).FreqMHz = %d, want %d", i, tab.At(i).FreqMHz, f)
		}
	}
}

func TestNewTableValidation(t *testing.T) {
	cases := []struct {
		name   string
		states []PState
	}{
		{"empty", nil},
		{"zero frequency", []PState{{0, 1.0}}},
		{"negative frequency", []PState{{-5, 1.0}}},
		{"zero voltage", []PState{{600, 0}}},
		{"duplicate frequency", []PState{{600, 1.0}, {600, 1.1}}},
		{"voltage decreases with frequency", []PState{{600, 1.2}, {800, 1.0}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewTable(tc.states); err == nil {
				t.Errorf("NewTable(%v) succeeded, want error", tc.states)
			}
		})
	}
}

func TestNewTableSortsInput(t *testing.T) {
	tab, err := NewTable([]PState{{2000, 1.34}, {600, 0.998}, {1400, 1.196}})
	if err != nil {
		t.Fatal(err)
	}
	if tab.At(0).FreqMHz != 600 || tab.At(1).FreqMHz != 1400 || tab.At(2).FreqMHz != 2000 {
		t.Errorf("table not sorted: %v", tab.States())
	}
}

func TestTableLookups(t *testing.T) {
	tab := PentiumM755()
	if i := tab.IndexOf(1400); i != 4 {
		t.Errorf("IndexOf(1400) = %d, want 4", i)
	}
	if i := tab.IndexOf(700); i != -1 {
		t.Errorf("IndexOf(700) = %d, want -1", i)
	}
	if _, err := tab.ByFreq(999); err == nil {
		t.Error("ByFreq(999) succeeded, want error")
	}
	if p := tab.HighestBelow(1700); p.FreqMHz != 1600 {
		t.Errorf("HighestBelow(1700) = %v, want 1600", p)
	}
	if p := tab.HighestBelow(100); p.FreqMHz != 600 {
		t.Errorf("HighestBelow(100) = %v, want min 600", p)
	}
	if p := tab.LowestAtOrAbove(1601); p.FreqMHz != 1800 {
		t.Errorf("LowestAtOrAbove(1601) = %v, want 1800", p)
	}
	if p := tab.LowestAtOrAbove(99999); p.FreqMHz != 2000 {
		t.Errorf("LowestAtOrAbove(99999) = %v, want max 2000", p)
	}
}

func TestTableStatesIsACopy(t *testing.T) {
	tab := PentiumM755()
	s := tab.States()
	s[0].FreqMHz = 1
	if tab.At(0).FreqMHz == 1 {
		t.Error("mutating States() result changed the table")
	}
}

// Property: HighestBelow(f) always returns a state <= f when any state
// is <= f; and LowestAtOrAbove(f) >= f when any state is >= f.
func TestBracketingProperties(t *testing.T) {
	tab := PentiumM755()
	f := func(q uint16) bool {
		freq := int(q)%2500 + 1
		hb := tab.HighestBelow(freq)
		la := tab.LowestAtOrAbove(freq)
		if freq >= 600 && hb.FreqMHz > freq {
			return false
		}
		if freq <= 2000 && la.FreqMHz < freq {
			return false
		}
		// The two must bracket freq whenever it is inside the range.
		if freq >= 600 && freq <= 2000 && !(hb.FreqMHz <= freq && freq <= la.FreqMHz) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPStateDerivedValues(t *testing.T) {
	p := PState{FreqMHz: 2000, VoltageV: 1.34}
	if got := p.FreqHz(); got != 2e9 {
		t.Errorf("FreqHz() = %g, want 2e9", got)
	}
	if got := p.CyclesIn(10 * time.Millisecond); got != 2e7 {
		t.Errorf("CyclesIn(10ms) = %g, want 2e7", got)
	}
	if got, want := p.String(), "2000MHz@1.340V"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestActuatorTransitions(t *testing.T) {
	tab := PentiumM755()
	a := NewActuator(tab)
	if a.CurrentIndex() != tab.Len()-1 {
		t.Fatalf("new actuator at index %d, want max %d", a.CurrentIndex(), tab.Len()-1)
	}
	a.SetTransitionLatency(50 * time.Microsecond)

	d, err := a.Set(0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 50*time.Microsecond {
		t.Errorf("transition stall = %v, want 50us", d)
	}
	if a.Current().FreqMHz != 600 {
		t.Errorf("Current() = %v, want 600MHz", a.Current())
	}
	// Setting the same state is free and not counted.
	d, err = a.Set(0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("same-state transition stall = %v, want 0", d)
	}
	if a.Transitions() != 1 {
		t.Errorf("Transitions() = %d, want 1", a.Transitions())
	}
	if a.StallTotal() != 50*time.Microsecond {
		t.Errorf("StallTotal() = %v, want 50us", a.StallTotal())
	}
}

func TestActuatorSetFreqAndErrors(t *testing.T) {
	a := NewActuator(PentiumM755())
	if _, err := a.Set(-1); err == nil {
		t.Error("Set(-1) succeeded, want error")
	}
	if _, err := a.Set(99); err == nil {
		t.Error("Set(99) succeeded, want error")
	}
	if _, err := a.SetFreq(1700); err == nil {
		t.Error("SetFreq(1700) succeeded, want error")
	}
	if _, err := a.SetFreq(1000); err != nil {
		t.Errorf("SetFreq(1000): %v", err)
	}
	if a.Current().FreqMHz != 1000 {
		t.Errorf("after SetFreq(1000), Current() = %v", a.Current())
	}
}

func TestActuatorResetStats(t *testing.T) {
	a := NewActuator(PentiumM755())
	if _, err := a.Set(0); err != nil {
		t.Fatal(err)
	}
	a.ResetStats()
	if a.Transitions() != 0 || a.StallTotal() != 0 {
		t.Errorf("after ResetStats: transitions=%d stall=%v, want zeros", a.Transitions(), a.StallTotal())
	}
	if a.CurrentIndex() != 0 {
		t.Errorf("ResetStats moved the actuator to %d", a.CurrentIndex())
	}
}

func TestActuatorNegativeLatencyClamped(t *testing.T) {
	a := NewActuator(PentiumM755())
	a.SetTransitionLatency(-time.Second)
	d, err := a.Set(0)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("stall = %v, want 0 after clamping negative latency", d)
	}
}
