// Package dash serves an interactive dashboard over the simulated
// platform: pick a workload and a governor spec, run it, and see the
// power/frequency/temperature timeline rendered in the browser. The
// handler is plain net/http with inline SVG — no external assets — so
// cmd/aapm-dash stays a single static binary.
package dash

import (
	"encoding/json"
	"html/template"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"aapm/internal/control"
	"aapm/internal/machine"
	"aapm/internal/metrics"
	"aapm/internal/sensor"
	"aapm/internal/spec"
	"aapm/internal/telemetry"
	"aapm/internal/thermal"
	"aapm/internal/trace"
)

// Options configures the dashboard handler.
type Options struct {
	// Telemetry backs /metrics and /api/telemetry; nil allocates a
	// registry private to this handler. Every /api/run feeds it, so
	// scrapes see counters accumulated across requests.
	Telemetry *telemetry.Registry
	// PProf additionally mounts the net/http/pprof handlers under
	// /debug/pprof/ for live profiling of the simulator.
	PProf bool
}

// server holds the per-handler state behind the mux.
type server struct {
	reg *telemetry.Registry
}

// Handler returns the dashboard's HTTP handler with default options.
func Handler() http.Handler { return NewHandler(Options{}) }

// NewHandler returns the dashboard's HTTP handler.
func NewHandler(opts Options) http.Handler {
	srv := &server{reg: opts.Telemetry}
	if srv.reg == nil {
		srv.reg = telemetry.NewRegistry()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/", index)
	mux.HandleFunc("/api/workloads", apiWorkloads)
	mux.HandleFunc("/api/run", srv.apiRun)
	mux.HandleFunc("/api/telemetry", srv.apiTelemetry)
	mux.HandleFunc("/metrics", srv.metrics)
	if opts.PProf {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// requireGet answers non-GET requests with 405 + Allow, the same
// contract as /api/run.
func requireGet(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method not allowed")
		return false
	}
	return true
}

// metrics serves the registry in Prometheus text exposition format,
// refreshing the Go runtime gauges on every scrape.
func (srv *server) metrics(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	telemetry.SampleRuntime(srv.reg)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = srv.reg.WritePrometheus(w)
}

// apiTelemetry serves the registry as structured JSON — the same data
// as /metrics, for clients that would rather not parse exposition
// text.
func (srv *server) apiTelemetry(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, srv.reg.Snapshot())
}

// runRow is the JSON shape of one trace interval.
type runRow struct {
	TMs     float64 `json:"t_ms"`
	FreqMHz int     `json:"freq_mhz"`
	PowerW  float64 `json:"power_w"`
	IPC     float64 `json:"ipc"`
	DPC     float64 `json:"dpc"`
	TempC   float64 `json:"temp_c,omitempty"`
	Duty    float64 `json:"duty,omitempty"`
	Phase   string  `json:"phase"`
}

// runMetrics is the engine-counter block of /api/run, aggregated by a
// metrics.Collector on the session's Hook bus.
type runMetrics struct {
	Ticks             int     `json:"ticks"`
	Transitions       int     `json:"transitions"`
	FailedTransitions int     `json:"failed_transitions,omitempty"`
	StallMs           float64 `json:"stall_ms"`
	Degradations      int     `json:"degradations,omitempty"`
	// StageUs is per-stage wall-clock (microseconds, summed over the
	// run) keyed by machine.StageNames — real time spent simulating,
	// not virtual time.
	StageUs map[string]float64 `json:"stage_us,omitempty"`
}

// runResponse is the JSON payload of /api/run.
type runResponse struct {
	Workload    string     `json:"workload"`
	Policy      string     `json:"policy"`
	DurationSec float64    `json:"duration_sec"`
	EnergyJ     float64    `json:"energy_j"`
	AvgPowerW   float64    `json:"avg_power_w"`
	Transitions int        `json:"transitions"`
	Metrics     runMetrics `json:"metrics"`
	Rows        []runRow   `json:"rows"`
}

func apiWorkloads(w http.ResponseWriter, r *http.Request) {
	if !requireGet(w, r) {
		return
	}
	writeJSON(w, spec.Names())
}

// maxRunSeconds bounds a dashboard run so a request cannot hold the
// server arbitrarily long (simulated seconds, not wall-clock; the
// simulator covers a minute of virtual time in well under a second).
const maxRunSeconds = 300

func (srv *server) apiRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		httpError(w, http.StatusMethodNotAllowed, "method not allowed")
		return
	}
	q := r.URL.Query()
	name := q.Get("workload")
	if name == "" {
		httpError(w, http.StatusBadRequest, "missing workload parameter")
		return
	}
	wl, err := spec.ByName(name)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	govSpec := q.Get("gov")
	if govSpec == "" {
		govSpec = "none"
	}
	var seed int64 = 7
	if s := q.Get("seed"); s != "" {
		// ParseInt rejects trailing garbage ("7abc") that Sscanf's %d
		// would silently accept.
		seed, err = strconv.ParseInt(s, 10, 64)
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad seed")
			return
		}
	}
	tc := thermal.PentiumMThermal()
	m, err := machine.New(machine.Config{
		Chain:    sensor.NIDefault(),
		Seed:     seed,
		Thermal:  &tc,
		MaxTicks: maxRunSeconds * 100,
	})
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	gov, err := control.Parse(govSpec, m.Table())
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	col := &metrics.Collector{}
	s, err := m.NewSession(wl, gov)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	policy := "none"
	if gov != nil {
		policy = gov.Name()
	}
	s.Subscribe(col)
	s.Subscribe(telemetry.NewObserver(srv.reg, name, policy))
	s.EnableStageTiming()
	ctx := r.Context()
	for {
		// A disconnected client cancels the request context: abandon
		// the simulation instead of burning a core to completion for
		// a response nobody will read.
		if ctx.Err() != nil {
			return
		}
		done, err := s.Step()
		if err != nil {
			httpError(w, http.StatusInternalServerError, err.Error())
			return
		}
		if done {
			break
		}
	}
	writeJSON(w, toResponse(s.Result(), col))
}

func toResponse(run *trace.Run, col *metrics.Collector) runResponse {
	resp := runResponse{
		Workload:    run.Workload,
		Policy:      run.Policy,
		DurationSec: run.Duration.Seconds(),
		EnergyJ:     run.EnergyJ,
		AvgPowerW:   run.AvgPowerW(),
		Transitions: run.Transitions,
		Metrics: runMetrics{
			Ticks:             col.Ticks,
			Transitions:       col.Transitions,
			FailedTransitions: col.FailedTransitions,
			StallMs:           float64(col.StallTime) / float64(time.Millisecond),
			Degradations:      col.Degradations,
		},
	}
	if col.StageTotal() > 0 {
		resp.Metrics.StageUs = make(map[string]float64, machine.NumStages)
		for i, n := range col.StageNanos {
			resp.Metrics.StageUs[machine.StageNames[i]] = float64(n) / 1e3
		}
	}
	for _, row := range run.Rows {
		resp.Rows = append(resp.Rows, runRow{
			TMs:     float64(row.T) / float64(time.Millisecond),
			FreqMHz: row.FreqMHz,
			PowerW:  row.MeasuredPowerW,
			IPC:     row.IPC,
			DPC:     row.DPC,
			TempC:   row.TempC,
			Duty:    row.Duty,
			Phase:   row.Phase,
		})
	}
	return resp
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// Headers are out; nothing more to do than drop the conn.
		return
	}
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

var indexTmpl = template.Must(template.New("index").Parse(`<!doctype html>
<html><head><title>aapm dashboard</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; max-width: 70rem; }
svg { border: 1px solid #ccc; width: 100%; height: 16rem; }
label { margin-right: 1rem; }
#summary { margin: 1rem 0; font-variant-numeric: tabular-nums; }
#slo table { border-collapse: collapse; font-variant-numeric: tabular-nums; }
#slo th, #slo td { border: 1px solid #ccc; padding: 0.2rem 0.6rem; text-align: left; }
#slo .breach { color: #b00; font-weight: bold; }
</style></head>
<body>
<h1>aapm — simulated Pentium M power management</h1>
<p>Pick a workload and a governor spec (e.g. <code>pm:limit=14.5</code>,
<code>ps:floor=0.8</code>, <code>thermal:limit=75</code>, <code>none</code>).</p>
<label>workload <select id="workload"></select></label>
<label>governor <input id="gov" value="pm:limit=14.5" size="28"></label>
<label>seed <input id="seed" value="7" size="4"></label>
<button id="go">run</button>
<div id="summary"></div>
<div id="slo" style="display:none">
<h3>SLO burn rates</h3>
<table><thead><tr>
<th>objective</th><th>kind</th><th>fast burn</th><th>slow burn</th>
<th>peak fast</th><th>peak slow</th><th>state</th>
</tr></thead><tbody id="slorows"></tbody></table>
</div>
<h3>power (W)</h3><svg id="power" viewBox="0 0 1000 200" preserveAspectRatio="none"></svg>
<h3>frequency (MHz)</h3><svg id="freq" viewBox="0 0 1000 200" preserveAspectRatio="none"></svg>
<h3>die temperature (°C)</h3><svg id="temp" viewBox="0 0 1000 200" preserveAspectRatio="none"></svg>
<script>
async function init() {
  const names = await (await fetch('/api/workloads')).json();
  const sel = document.getElementById('workload');
  for (const n of names) {
    const o = document.createElement('option');
    o.value = o.textContent = n;
    sel.appendChild(o);
  }
  sel.value = 'ammp';
}
function poly(svg, xs, ys) {
  svg.innerHTML = '';
  if (!ys.length) return;
  const lo = Math.min(...ys), hi = Math.max(...ys), span = (hi - lo) || 1;
  const pts = ys.map((y, i) =>
    (1000 * i / (ys.length - 1 || 1)).toFixed(1) + ',' +
    (195 - 190 * (y - lo) / span).toFixed(1)).join(' ');
  const pl = document.createElementNS('http://www.w3.org/2000/svg', 'polyline');
  pl.setAttribute('points', pts);
  pl.setAttribute('fill', 'none');
  pl.setAttribute('stroke', '#0a5');
  pl.setAttribute('stroke-width', '1.5');
  svg.appendChild(pl);
  const label = document.createElementNS('http://www.w3.org/2000/svg', 'text');
  label.setAttribute('x', 5); label.setAttribute('y', 14);
  label.setAttribute('font-size', 12);
  label.textContent = lo.toFixed(1) + ' … ' + hi.toFixed(1);
  svg.appendChild(label);
}
// The SLO panel only appears when the dashboard shares a mux with the
// run service (cmd/aapm-serve): a standalone dash has no /api/slo, the
// fetch 404s, and the panel stays hidden.
async function slo() {
  let data;
  try {
    const resp = await fetch('/api/slo');
    if (!resp.ok) return;
    data = await resp.json();
  } catch (e) { return; }
  if (!data.objectives) return;
  const tb = document.getElementById('slorows');
  tb.innerHTML = '';
  for (const o of data.objectives) {
    const tr = document.createElement('tr');
    const state = o.breaching ? 'BREACH — ' + (o.reason || 'burn over threshold') : 'ok';
    const cells = [o.name, o.kind, o.fast_burn.toFixed(3), o.slow_burn.toFixed(3),
                   o.peak_fast_burn.toFixed(3), o.peak_slow_burn.toFixed(3), state];
    for (const v of cells) {
      const td = document.createElement('td');
      td.textContent = v;
      tr.appendChild(td);
    }
    if (o.breaching) tr.className = 'breach';
    tb.appendChild(tr);
  }
  document.getElementById('slo').style.display = '';
  setTimeout(slo, 5000);
}
document.getElementById('go').onclick = async () => {
  const w = document.getElementById('workload').value;
  const g = encodeURIComponent(document.getElementById('gov').value);
  const s = document.getElementById('seed').value;
  const resp = await fetch('/api/run?workload=' + w + '&gov=' + g + '&seed=' + s);
  const data = await resp.json();
  if (data.error) { document.getElementById('summary').textContent = 'error: ' + data.error; return; }
  document.getElementById('summary').textContent =
    data.policy + ': ' + data.duration_sec.toFixed(2) + 's, ' +
    data.energy_j.toFixed(1) + 'J, avg ' + data.avg_power_w.toFixed(2) + 'W, ' +
    data.transitions + ' transitions, ' + data.metrics.ticks + ' ticks, ' +
    data.metrics.stall_ms.toFixed(1) + 'ms stalled';
  poly(document.getElementById('power'), null, data.rows.map(r => r.power_w));
  poly(document.getElementById('freq'), null, data.rows.map(r => r.freq_mhz));
  poly(document.getElementById('temp'), null, data.rows.map(r => r.temp_c));
};
init();
slo();
</script>
</body></html>`))

func index(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = indexTmpl.Execute(w, nil)
}
