package dash

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aapm/internal/machine"
	"aapm/internal/telemetry"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestIndexServesHTML(t *testing.T) {
	rec := get(t, Handler(), "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "aapm dashboard") {
		t.Error("index missing title")
	}
}

// TestIndexHasSLOPanel pins the burn-rate panel: the page ships a
// hidden SLO section whose script polls /api/slo and reveals it only
// when the endpoint answers (i.e. when the dash shares a mux with the
// run service, as in cmd/aapm-serve).
func TestIndexHasSLOPanel(t *testing.T) {
	body := get(t, Handler(), "/").Body.String()
	for _, want := range []string{
		`id="slo"`, `id="slorows"`, "/api/slo",
		"fast burn", "slow burn", "peak fast", "peak slow",
		"o.breaching", "peak_fast_burn",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("index missing %q", want)
		}
	}
	// The panel starts hidden: a standalone dash has no /api/slo.
	if !strings.Contains(body, `<div id="slo" style="display:none">`) {
		t.Error("SLO panel must start hidden")
	}
}

func TestIndexNotFoundElsewhere(t *testing.T) {
	rec := get(t, Handler(), "/nope")
	if rec.Code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", rec.Code)
	}
}

func TestAPIWorkloads(t *testing.T) {
	rec := get(t, Handler(), "/api/workloads")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var names []string
	if err := json.Unmarshal(rec.Body.Bytes(), &names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 26 {
		t.Errorf("workloads = %d", len(names))
	}
}

func TestAPIRun(t *testing.T) {
	rec := get(t, Handler(), "/api/run?workload=gzip&gov=ps:floor=0.8&seed=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp runResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workload != "gzip" || !strings.HasPrefix(resp.Policy, "PS(") {
		t.Errorf("resp header = %+v", resp)
	}
	if resp.DurationSec <= 0 || len(resp.Rows) == 0 {
		t.Error("degenerate run payload")
	}
	// The thermal model is always on for the dashboard.
	if resp.Rows[len(resp.Rows)-1].TempC <= 0 {
		t.Error("missing temperature series")
	}
	// Stage timing is always on for the dashboard: every stage gets a
	// wall-clock entry and at least one must be nonzero.
	if len(resp.Metrics.StageUs) != machine.NumStages {
		t.Fatalf("stage_us has %d entries, want %d: %v", len(resp.Metrics.StageUs), machine.NumStages, resp.Metrics.StageUs)
	}
	var total float64
	for _, us := range resp.Metrics.StageUs {
		if us < 0 {
			t.Errorf("negative stage wall-clock: %v", resp.Metrics.StageUs)
		}
		total += us
	}
	if total <= 0 {
		t.Errorf("all stage wall-clocks zero: %v", resp.Metrics.StageUs)
	}
	if resp.Metrics.Ticks == 0 {
		t.Error("collector saw no ticks")
	}
}

func TestAPIRunErrors(t *testing.T) {
	cases := map[string]int{
		"/api/run":                              http.StatusBadRequest,
		"/api/run?workload=nope":                http.StatusNotFound,
		"/api/run?workload=gzip&gov=bogus":      http.StatusBadRequest,
		"/api/run?workload=gzip&seed=notanint":  http.StatusBadRequest,
		"/api/run?workload=gzip&seed=7abc":      http.StatusBadRequest, // trailing garbage Sscanf used to accept
		"/api/run?workload=gzip&seed=0x10":      http.StatusBadRequest,
		"/api/run?workload=gzip&gov=pm:limit=x": http.StatusBadRequest,
	}
	for path, want := range cases {
		rec := get(t, Handler(), path)
		if rec.Code != want {
			t.Errorf("%s -> %d, want %d", path, rec.Code, want)
		}
		var e map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error payload %q", path, rec.Body.String())
		}
	}
}

func TestAPIRunMethodNotAllowed(t *testing.T) {
	h := Handler()
	for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
		req := httptest.NewRequest(method, "/api/run?workload=gzip", nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s /api/run -> %d, want 405", method, rec.Code)
		}
		if allow := rec.Header().Get("Allow"); allow != http.MethodGet {
			t.Errorf("%s /api/run Allow = %q, want GET", method, allow)
		}
	}
}

// TestGetOnlyEndpointsMethodNotAllowed pins the read-only contract on
// the GET surfaces: anything but GET answers 405 and names the allowed
// method.
func TestGetOnlyEndpointsMethodNotAllowed(t *testing.T) {
	h := Handler()
	for _, path := range []string{"/api/workloads", "/api/telemetry", "/metrics"} {
		for _, method := range []string{http.MethodPost, http.MethodPut, http.MethodDelete} {
			req := httptest.NewRequest(method, path, nil)
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, req)
			if rec.Code != http.StatusMethodNotAllowed {
				t.Errorf("%s %s -> %d, want 405", method, path, rec.Code)
			}
			if allow := rec.Header().Get("Allow"); allow != http.MethodGet {
				t.Errorf("%s %s Allow = %q, want GET", method, path, allow)
			}
		}
	}
}

// TestAPIRunNoGovernor pins the gov=none path: control.Parse returns a
// nil governor there, which used to panic when building the telemetry
// observer's policy label.
func TestAPIRunNoGovernor(t *testing.T) {
	rec := get(t, Handler(), "/api/run?workload=gzip&gov=none&seed=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp runResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workload != "gzip" || len(resp.Rows) == 0 {
		t.Errorf("degenerate run payload: %+v", resp)
	}
}

// TestAPIRunClientDisconnect checks the run loop honors the request
// context: with the context already canceled the handler abandons the
// simulation and writes no payload.
func TestAPIRunClientDisconnect(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/api/run?workload=gzip&gov=pm:limit=14.5", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, req)
	if rec.Body.Len() != 0 {
		t.Errorf("canceled request still produced %d bytes", rec.Body.Len())
	}
}

// TestMetricsEndpoint drives a run and checks /metrics serves valid
// Prometheus text with the acceptance floor of 10 metric families.
func TestMetricsEndpoint(t *testing.T) {
	h := Handler()
	if rec := get(t, h, "/api/run?workload=gzip&gov=pm:limit=14.5"); rec.Code != http.StatusOK {
		t.Fatalf("run status = %d: %s", rec.Code, rec.Body.String())
	}
	rec := get(t, h, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body := rec.Body.String()
	if n := strings.Count(body, "# TYPE "); n < 10 {
		t.Errorf("exposition has %d families, want >= 10:\n%s", n, body)
	}
	for _, want := range []string{
		"# TYPE " + telemetry.MetricTicks + " counter",
		"# TYPE " + telemetry.MetricIntervalW + " histogram",
		"# TYPE go_goroutines gauge",
		telemetry.MetricTicks + `{node="gzip",governor=`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Counters accumulate across requests on the same handler.
	tickLine := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, telemetry.MetricTicks+"{") {
				return line
			}
		}
		return ""
	}
	first := tickLine(body)
	if rec := get(t, h, "/api/run?workload=gzip&gov=pm:limit=14.5"); rec.Code != http.StatusOK {
		t.Fatalf("second run status = %d", rec.Code)
	}
	second := tickLine(get(t, h, "/metrics").Body.String())
	if first == "" || first == second {
		t.Errorf("tick counter did not accumulate: %q then %q", first, second)
	}
}

func TestAPITelemetry(t *testing.T) {
	h := Handler()
	if rec := get(t, h, "/api/run?workload=gzip&gov=ps:floor=0.8"); rec.Code != http.StatusOK {
		t.Fatalf("run status = %d", rec.Code)
	}
	rec := get(t, h, "/api/telemetry")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	var sawTicks bool
	for _, f := range snap.Families {
		if f.Name == telemetry.MetricTicks {
			sawTicks = true
			if len(f.Series) == 0 || f.Series[0].Value <= 0 {
				t.Errorf("tick series = %+v", f.Series)
			}
		}
	}
	if !sawTicks {
		t.Error("snapshot missing the ticks family")
	}
}

func TestPProfMounting(t *testing.T) {
	// Off by default.
	if rec := get(t, Handler(), "/debug/pprof/"); rec.Code != http.StatusNotFound {
		t.Errorf("pprof off: status = %d, want 404", rec.Code)
	}
	h := NewHandler(Options{PProf: true})
	rec := get(t, h, "/debug/pprof/")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "goroutine") {
		t.Errorf("pprof index: status = %d", rec.Code)
	}
	if rec := get(t, h, "/debug/pprof/cmdline"); rec.Code != http.StatusOK {
		t.Errorf("pprof cmdline: status = %d", rec.Code)
	}
}
