package dash

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"aapm/internal/machine"
)

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func TestIndexServesHTML(t *testing.T) {
	rec := get(t, Handler(), "/")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Errorf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "aapm dashboard") {
		t.Error("index missing title")
	}
}

func TestIndexNotFoundElsewhere(t *testing.T) {
	rec := get(t, Handler(), "/nope")
	if rec.Code != http.StatusNotFound {
		t.Errorf("status = %d, want 404", rec.Code)
	}
}

func TestAPIWorkloads(t *testing.T) {
	rec := get(t, Handler(), "/api/workloads")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	var names []string
	if err := json.Unmarshal(rec.Body.Bytes(), &names); err != nil {
		t.Fatal(err)
	}
	if len(names) != 26 {
		t.Errorf("workloads = %d", len(names))
	}
}

func TestAPIRun(t *testing.T) {
	rec := get(t, Handler(), "/api/run?workload=gzip&gov=ps:floor=0.8&seed=3")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var resp runResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Workload != "gzip" || !strings.HasPrefix(resp.Policy, "PS(") {
		t.Errorf("resp header = %+v", resp)
	}
	if resp.DurationSec <= 0 || len(resp.Rows) == 0 {
		t.Error("degenerate run payload")
	}
	// The thermal model is always on for the dashboard.
	if resp.Rows[len(resp.Rows)-1].TempC <= 0 {
		t.Error("missing temperature series")
	}
	// Stage timing is always on for the dashboard: every stage gets a
	// wall-clock entry and at least one must be nonzero.
	if len(resp.Metrics.StageUs) != machine.NumStages {
		t.Fatalf("stage_us has %d entries, want %d: %v", len(resp.Metrics.StageUs), machine.NumStages, resp.Metrics.StageUs)
	}
	var total float64
	for _, us := range resp.Metrics.StageUs {
		if us < 0 {
			t.Errorf("negative stage wall-clock: %v", resp.Metrics.StageUs)
		}
		total += us
	}
	if total <= 0 {
		t.Errorf("all stage wall-clocks zero: %v", resp.Metrics.StageUs)
	}
	if resp.Metrics.Ticks == 0 {
		t.Error("collector saw no ticks")
	}
}

func TestAPIRunErrors(t *testing.T) {
	cases := map[string]int{
		"/api/run":                              http.StatusBadRequest,
		"/api/run?workload=nope":                http.StatusNotFound,
		"/api/run?workload=gzip&gov=bogus":      http.StatusBadRequest,
		"/api/run?workload=gzip&seed=notanint":  http.StatusBadRequest,
		"/api/run?workload=gzip&gov=pm:limit=x": http.StatusBadRequest,
	}
	for path, want := range cases {
		rec := get(t, Handler(), path)
		if rec.Code != want {
			t.Errorf("%s -> %d, want %d", path, rec.Code, want)
		}
		var e map[string]string
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error payload %q", path, rec.Body.String())
		}
	}
}
