// Package trace records the per-interval time series of a platform
// run: p-state, counter rates, true and measured power. Experiments
// consume runs to compute the paper's tables and figures; the package
// also renders compact CSV and ASCII-chart views of a run.
package trace

import (
	"fmt"
	"io"
	"time"

	"aapm/internal/stats"
)

// Row is one monitoring interval.
type Row struct {
	// T is the interval start; Interval its length.
	T        time.Duration
	Interval time.Duration
	// FreqMHz is the p-state frequency active during the interval.
	FreqMHz int
	// Counter-derived activity rates for the interval.
	DPC, IPC, DCU, L2PC, MemPC float64
	// TruePowerW is the ground-truth average power; MeasuredPowerW is
	// what the sensing chain reported.
	TruePowerW     float64
	MeasuredPowerW float64
	// Instructions retired during the interval.
	Instructions float64
	// Phase labels the workload phase active at interval end.
	Phase string
	// TempC is the thermal sensor reading at interval end (0 when the
	// platform has no thermal model).
	TempC float64
	// Duty is the clock-modulation duty cycle the interval ran at
	// (1 when no throttling governor is active).
	Duty float64
}

// Run is a complete workload execution under one policy.
type Run struct {
	Workload string
	Policy   string
	Rows     []Row

	// Duration is total wall-clock (virtual) time.
	Duration time.Duration
	// Instructions is total retired instructions.
	Instructions float64
	// EnergyJ integrates true power; MeasuredEnergyJ integrates the
	// measured samples the way the paper computes energy.
	EnergyJ         float64
	MeasuredEnergyJ float64
	// Transitions counts p-state changes the policy made;
	// FailedTransitions counts change attempts the (faulted) actuator
	// abandoned.
	Transitions       int
	FailedTransitions int

	// Degradations is the run's degradation log: injected faults and
	// the governor's graceful-degradation responses, in time order.
	// The slice is capped at DegradationLogCap entries;
	// DegradationCounts tallies every event by "source/kind"
	// regardless of the cap.
	Degradations      []Degradation
	DegradationCounts map[string]int
}

// Degradation is one entry in a run's degradation log: either a fault
// the platform injected (Source "sensor", "counters", "actuator") or
// a governor's response to degraded inputs (Source "pm", "ps", ...).
type Degradation struct {
	// T is the virtual time the event was recorded.
	T time.Duration
	// Source names the subsystem that emitted the entry.
	Source string
	// Kind names the event (e.g. "dropout", "miss", "hold-dpc",
	// "offline-fallback").
	Kind string
	// Detail is an optional human-readable annotation.
	Detail string
}

// DegradationLogCap bounds Run.Degradations so high fault rates on
// long runs don't balloon the trace; DegradationCounts keeps exact
// totals past the cap.
const DegradationLogCap = 512

// AddDegradation appends d to the log (up to DegradationLogCap) and
// tallies it in DegradationCounts.
func (r *Run) AddDegradation(d Degradation) {
	if r.DegradationCounts == nil {
		r.DegradationCounts = make(map[string]int)
	}
	r.DegradationCounts[d.Source+"/"+d.Kind]++
	if len(r.Degradations) < DegradationLogCap {
		r.Degradations = append(r.Degradations, d)
	}
}

// DegradationTotal returns the total number of logged events
// (including those past the cap).
func (r *Run) DegradationTotal() int {
	n := 0
	for _, v := range r.DegradationCounts {
		n += v
	}
	return n
}

// AvgPowerW returns time-weighted average true power.
func (r *Run) AvgPowerW() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return r.EnergyJ / r.Duration.Seconds()
}

// IPS returns average instructions per second (the paper's performance
// metric is total execution time; IPS is its reciprocal scaled by
// work, convenient for cross-run comparison).
func (r *Run) IPS() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return r.Instructions / r.Duration.Seconds()
}

// EDP returns the energy-delay product (J·s) from true energy — the
// standard efficiency metric weighing savings against slowdown.
func (r *Run) EDP() float64 {
	return r.EnergyJ * r.Duration.Seconds()
}

// ED2P returns the energy-delay-squared product (J·s²), which weighs
// performance more heavily (appropriate when voltage scaling is the
// lever, since energy falls superlinearly with frequency).
func (r *Run) ED2P() float64 {
	d := r.Duration.Seconds()
	return r.EnergyJ * d * d
}

// MeasuredPowers returns the per-interval measured power series.
func (r *Run) MeasuredPowers() []float64 {
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.MeasuredPowerW
	}
	return out
}

// TruePowers returns the per-interval true power series.
func (r *Run) TruePowers() []float64 {
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.TruePowerW
	}
	return out
}

// Freqs returns the per-interval frequency series in MHz.
func (r *Run) Freqs() []float64 {
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = float64(row.FreqMHz)
	}
	return out
}

// MovingAvg returns the moving average of xs over window w (the
// paper's power-limit adherence metric uses w=10 over 10 ms samples).
func MovingAvg(xs []float64, w int) []float64 {
	if w <= 1 || len(xs) == 0 {
		out := make([]float64, len(xs))
		copy(out, xs)
		return out
	}
	out := make([]float64, 0, len(xs))
	win := stats.NewWindow(w)
	for _, x := range xs {
		win.Push(x)
		out = append(out, win.Mean())
	}
	return out
}

// FractionAbove returns the fraction of xs strictly above limit.
func FractionAbove(xs []float64, limit float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > limit {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Temps returns the per-interval thermal sensor series.
func (r *Run) Temps() []float64 {
	out := make([]float64, len(r.Rows))
	for i, row := range r.Rows {
		out[i] = row.TempC
	}
	return out
}

// WriteCSV emits the run as CSV with a header row.
func (r *Run) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "t_ms,interval_ms,freq_mhz,dpc,ipc,dcu,l2pc,mempc,true_w,meas_w,instructions,phase,temp_c,duty"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		_, err := fmt.Fprintf(w, "%.1f,%.1f,%d,%.4f,%.4f,%.4f,%.5f,%.5f,%.3f,%.3f,%.0f,%s,%.1f,%.3f\n",
			float64(row.T)/float64(time.Millisecond),
			float64(row.Interval)/float64(time.Millisecond),
			row.FreqMHz, row.DPC, row.IPC, row.DCU, row.L2PC, row.MemPC,
			row.TruePowerW, row.MeasuredPowerW, row.Instructions, row.Phase,
			row.TempC, row.Duty)
		if err != nil {
			return err
		}
	}
	return nil
}
