package trace

import (
	"fmt"
	"io"
	"strings"
	"time"

	"aapm/internal/stats"
)

// Series is a named float series for chart rendering.
type Series struct {
	Name   string
	Values []float64
}

// RenderASCII draws the series as a fixed-width ASCII line chart with
// one glyph per series, the terminal stand-in for the paper's figures.
// width and height bound the plot area; the series are downsampled by
// bucket averaging to fit.
func RenderASCII(w io.Writer, title string, width, height int, series ...Series) error {
	if width < 10 {
		width = 10
	}
	if height < 4 {
		height = 4
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}

	lo, hi := minMax(series)
	if hi == lo {
		hi = lo + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		ds := downsample(s.Values, width)
		for x, v := range ds {
			y := int((v - lo) / (hi - lo) * float64(height-1))
			if y < 0 {
				y = 0
			}
			if y >= height {
				y = height - 1
			}
			grid[height-1-y][x] = g
		}
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	for i, row := range grid {
		label := "        "
		switch i {
		case 0:
			label = fmt.Sprintf("%7.2f ", hi)
		case height - 1:
			label = fmt.Sprintf("%7.2f ", lo)
		}
		if _, err := fmt.Fprintf(w, "%s|%s|\n", label, string(row)); err != nil {
			return err
		}
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c=%s", glyphs[si%len(glyphs)], s.Name))
	}
	_, err := fmt.Fprintf(w, "        %s\n", strings.Join(legend, "  "))
	return err
}

func minMax(series []Series) (lo, hi float64) {
	lo, hi = 0, 0
	first := true
	for _, s := range series {
		for _, v := range s.Values {
			if first {
				lo, hi = v, v
				first = false
				continue
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	return lo, hi
}

func downsample(xs []float64, width int) []float64 {
	if len(xs) == 0 {
		return nil
	}
	if len(xs) <= width {
		out := make([]float64, len(xs))
		copy(out, xs)
		return out
	}
	out := make([]float64, width)
	for i := 0; i < width; i++ {
		a := i * len(xs) / width
		b := (i + 1) * len(xs) / width
		if b <= a {
			b = a + 1
		}
		out[i] = stats.Mean(xs[a:b])
	}
	return out
}

// RenderBars draws a horizontal ASCII bar chart: one labelled bar per
// (label, value) pair, scaled to maxWidth columns.
func RenderBars(w io.Writer, title string, labels []string, values []float64, maxWidth int) error {
	if len(labels) != len(values) {
		return fmt.Errorf("trace: %d labels vs %d values", len(labels), len(values))
	}
	if maxWidth < 10 {
		maxWidth = 10
	}
	if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
		return err
	}
	hi := stats.Max(values)
	lo := stats.Min(values)
	if lo > 0 {
		lo = 0
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	wide := 0
	for _, l := range labels {
		if len(l) > wide {
			wide = len(l)
		}
	}
	for i, l := range labels {
		n := int((values[i] - lo) / span * float64(maxWidth))
		if n < 0 {
			n = 0
		}
		bar := strings.Repeat("=", n)
		if _, err := fmt.Fprintf(w, "  %-*s |%s %.3f\n", wide, l, bar, values[i]); err != nil {
			return err
		}
	}
	return nil
}

// TimelineSummary prints a compact numeric digest of a run: duration,
// energy, average power/frequency, and residency per p-state.
func (r *Run) TimelineSummary(w io.Writer) error {
	resid := map[int]time.Duration{}
	for _, row := range r.Rows {
		resid[row.FreqMHz] += row.Interval
	}
	if _, err := fmt.Fprintf(w, "run %s/%s: %.2fs, %.1fJ (true) %.1fJ (measured), avg %.2fW, %d transitions\n",
		r.Workload, r.Policy, r.Duration.Seconds(), r.EnergyJ, r.MeasuredEnergyJ, r.AvgPowerW(), r.Transitions); err != nil {
		return err
	}
	freqs := make([]int, 0, len(resid))
	for f := range resid {
		freqs = append(freqs, f)
	}
	for i := 0; i < len(freqs); i++ {
		for j := i + 1; j < len(freqs); j++ {
			if freqs[j] < freqs[i] {
				freqs[i], freqs[j] = freqs[j], freqs[i]
			}
		}
	}
	for _, f := range freqs {
		share := float64(resid[f]) / float64(r.Duration) * 100
		if _, err := fmt.Fprintf(w, "  %4d MHz: %5.1f%%\n", f, share); err != nil {
			return err
		}
	}
	return nil
}
