package trace

import (
	"strings"
	"testing"
)

// FuzzReadCSV checks the importer never panics and that accepted
// traces have internally consistent totals.
func FuzzReadCSV(f *testing.F) {
	var sb strings.Builder
	if err := sampleRun().WriteCSV(&sb); err != nil {
		f.Fatal(err)
	}
	f.Add(sb.String())
	f.Add("t_ms,interval_ms,freq_mhz,dpc,ipc,dcu,l2pc,mempc,true_w,meas_w,instructions,phase,temp_c,duty\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, in string) {
		run, err := ReadCSV(strings.NewReader(in))
		if err != nil {
			return
		}
		var dur float64
		for _, r := range run.Rows {
			dur += r.Interval.Seconds()
		}
		if d := run.Duration.Seconds() - dur; d > 1e-6 || d < -1e-6 {
			t.Fatalf("inconsistent duration: %v vs %v", run.Duration.Seconds(), dur)
		}
	})
}
