package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"time"
)

// ReadCSV parses a trace previously written by WriteCSV, recovering
// the per-interval rows (run-level totals are recomputed from them).
// It is the import path for external analysis of dumped traces.
func ReadCSV(r io.Reader) (*Run, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 14
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	if header[0] != "t_ms" || header[11] != "phase" {
		return nil, fmt.Errorf("trace: unrecognized CSV header %v", header)
	}
	run := &Run{}
	for line := 2; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		row, err := parseRow(rec)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		run.Rows = append(run.Rows, row)
		run.Duration += row.Interval
		run.Instructions += row.Instructions
		run.EnergyJ += row.TruePowerW * row.Interval.Seconds()
		run.MeasuredEnergyJ += row.MeasuredPowerW * row.Interval.Seconds()
	}
	return run, nil
}

func parseRow(rec []string) (Row, error) {
	f := make([]float64, len(rec))
	for i, s := range rec {
		if i == 11 { // phase label
			continue
		}
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Row{}, fmt.Errorf("field %d %q: %w", i, s, err)
		}
		f[i] = v
	}
	return Row{
		T:              time.Duration(f[0] * float64(time.Millisecond)),
		Interval:       time.Duration(f[1] * float64(time.Millisecond)),
		FreqMHz:        int(f[2]),
		DPC:            f[3],
		IPC:            f[4],
		DCU:            f[5],
		L2PC:           f[6],
		MemPC:          f[7],
		TruePowerW:     f[8],
		MeasuredPowerW: f[9],
		Instructions:   f[10],
		Phase:          rec[11],
		TempC:          f[12],
		Duty:           f[13],
	}, nil
}
