package trace

import (
	"math"
	"strings"
	"testing"
)

func TestCSVRoundTrip(t *testing.T) {
	orig := sampleRun()
	orig.Rows[2].Phase = "other"
	orig.Rows[3].TempC = 66.5
	orig.Rows[3].Duty = 0.875
	var sb strings.Builder
	if err := orig.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(orig.Rows) {
		t.Fatalf("rows = %d, want %d", len(back.Rows), len(orig.Rows))
	}
	for i := range orig.Rows {
		a, b := orig.Rows[i], back.Rows[i]
		if a.T != b.T || a.Interval != b.Interval || a.FreqMHz != b.FreqMHz || a.Phase != b.Phase {
			t.Errorf("row %d mismatch: %+v vs %+v", i, a, b)
		}
		if math.Abs(a.TruePowerW-b.TruePowerW) > 0.001 || math.Abs(a.TempC-b.TempC) > 0.1 {
			t.Errorf("row %d power/temp mismatch", i)
		}
		if math.Abs(a.Duty-b.Duty) > 0.001 {
			t.Errorf("row %d duty mismatch: %g vs %g", i, a.Duty, b.Duty)
		}
	}
	if math.Abs(back.Duration.Seconds()-orig.Duration.Seconds()) > 1e-9 {
		t.Errorf("duration = %v, want %v", back.Duration, orig.Duration)
	}
	if math.Abs(back.EnergyJ-orig.EnergyJ) > 0.01 {
		t.Errorf("energy = %g, want %g", back.EnergyJ, orig.EnergyJ)
	}
}

func TestReadCSVRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":      "",
		"bad header": "a,b,c\n",
		"bad field":  "t_ms,interval_ms,freq_mhz,dpc,ipc,dcu,l2pc,mempc,true_w,meas_w,instructions,phase,temp_c,duty\nx,10,2000,1,1,0,0,0,10,10,1,ph,0,1\n",
		"short row":  "t_ms,interval_ms,freq_mhz,dpc,ipc,dcu,l2pc,mempc,true_w,meas_w,instructions,phase,temp_c,duty\n1,2,3\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(in)); err == nil {
				t.Errorf("accepted %q", in)
			}
		})
	}
}
