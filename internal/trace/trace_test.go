package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func sampleRun() *Run {
	r := &Run{Workload: "w", Policy: "p"}
	for i := 0; i < 4; i++ {
		r.Rows = append(r.Rows, Row{
			T:              time.Duration(i) * 10 * time.Millisecond,
			Interval:       10 * time.Millisecond,
			FreqMHz:        2000,
			DPC:            1.5,
			IPC:            1.0,
			TruePowerW:     float64(10 + i),
			MeasuredPowerW: float64(10 + i),
			Instructions:   2e7,
			Phase:          "ph",
		})
	}
	r.Duration = 40 * time.Millisecond
	r.Instructions = 8e7
	r.EnergyJ = 0.01 * (10 + 11 + 12 + 13)
	r.MeasuredEnergyJ = r.EnergyJ
	return r
}

func TestRunAggregates(t *testing.T) {
	r := sampleRun()
	if got := r.AvgPowerW(); math.Abs(got-11.5) > 1e-9 {
		t.Errorf("AvgPowerW = %g, want 11.5", got)
	}
	if got := r.IPS(); math.Abs(got-2e9) > 1 {
		t.Errorf("IPS = %g, want 2e9", got)
	}
	if got := r.MeasuredPowers(); len(got) != 4 || got[3] != 13 {
		t.Errorf("MeasuredPowers = %v", got)
	}
	if got := r.TruePowers(); got[0] != 10 {
		t.Errorf("TruePowers = %v", got)
	}
	if got := r.Freqs(); got[0] != 2000 {
		t.Errorf("Freqs = %v", got)
	}
	empty := &Run{}
	if empty.AvgPowerW() != 0 || empty.IPS() != 0 {
		t.Error("empty run aggregates nonzero")
	}
}

func TestMovingAvg(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	got := MovingAvg(xs, 2)
	want := []float64{1, 1.5, 2.5, 3.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("MovingAvg[%d] = %g, want %g", i, got[i], want[i])
		}
	}
	// Window of 1 (or less) copies input.
	same := MovingAvg(xs, 1)
	for i := range xs {
		if same[i] != xs[i] {
			t.Errorf("MovingAvg(w=1)[%d] = %g", i, same[i])
		}
	}
	if len(MovingAvg(nil, 3)) != 0 {
		t.Error("MovingAvg(nil) non-empty")
	}
}

func TestFractionAbove(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionAbove(xs, 2); got != 0.5 {
		t.Errorf("FractionAbove = %g, want 0.5", got)
	}
	if got := FractionAbove(xs, 10); got != 0 {
		t.Errorf("FractionAbove = %g, want 0", got)
	}
	if got := FractionAbove(nil, 1); got != 0 {
		t.Errorf("FractionAbove(nil) = %g", got)
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	if err := sampleRun().WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("CSV has %d lines, want header+4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t_ms,interval_ms,freq_mhz") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "2000") || !strings.Contains(lines[1], "ph") {
		t.Errorf("row = %q", lines[1])
	}
}

func TestRenderASCII(t *testing.T) {
	var sb strings.Builder
	err := RenderASCII(&sb, "title", 40, 6,
		Series{Name: "a", Values: []float64{1, 2, 3, 4, 5}},
		Series{Name: "b", Values: []float64{5, 4, 3, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "*=a") || !strings.Contains(out, "+=b") {
		t.Errorf("chart output missing pieces:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 { // title + 6 grid + legend
		t.Errorf("chart has %d lines, want 8", len(lines))
	}
}

func TestRenderASCIIConstantSeries(t *testing.T) {
	var sb strings.Builder
	if err := RenderASCII(&sb, "flat", 20, 4, Series{Name: "c", Values: []float64{2, 2, 2}}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderASCIIDownsamples(t *testing.T) {
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = float64(i)
	}
	var sb strings.Builder
	if err := RenderASCII(&sb, "big", 50, 5, Series{Name: "x", Values: vals}); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(sb.String(), "\n")[1:6] {
		if len(line) > 70 {
			t.Errorf("grid line too wide: %d", len(line))
		}
	}
}

func TestRenderBars(t *testing.T) {
	var sb strings.Builder
	err := RenderBars(&sb, "bars", []string{"aa", "b"}, []float64{1, 2}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "aa") || !strings.Contains(sb.String(), "==") {
		t.Errorf("bars output:\n%s", sb.String())
	}
	if err := RenderBars(&sb, "bad", []string{"a"}, []float64{1, 2}, 20); err == nil {
		t.Error("mismatched labels/values accepted")
	}
}

func TestTimelineSummary(t *testing.T) {
	var sb strings.Builder
	if err := sampleRun().TimelineSummary(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "run w/p") || !strings.Contains(out, "2000 MHz: 100.0%") {
		t.Errorf("summary:\n%s", out)
	}
}

func TestEnergyDelayProducts(t *testing.T) {
	r := sampleRun() // 0.04 s, 0.46 J
	if got, want := r.EDP(), 0.46*0.04; math.Abs(got-want) > 1e-12 {
		t.Errorf("EDP = %g, want %g", got, want)
	}
	if got, want := r.ED2P(), 0.46*0.04*0.04; math.Abs(got-want) > 1e-12 {
		t.Errorf("ED2P = %g, want %g", got, want)
	}
}
