package phasedetect

import "testing"

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 0.2); err == nil {
		t.Error("window 1 accepted")
	}
	if _, err := New(4, 0); err == nil {
		t.Error("zero threshold accepted")
	}
}

func TestDetectsStepChange(t *testing.T) {
	d, err := New(4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	fired := -1
	for i := 0; i < 40; i++ {
		x := 1.0
		if i >= 20 {
			x = 2.0
		}
		if d.Observe(x) && fired < 0 {
			fired = i
		}
	}
	if fired < 20 || fired > 28 {
		t.Errorf("step at 20 detected at %d", fired)
	}
	if d.Changes() == 0 {
		t.Error("no change counted")
	}
}

func TestIgnoresSteadySignal(t *testing.T) {
	d, _ := New(4, 0.25)
	for i := 0; i < 100; i++ {
		if d.Observe(1.0 + 0.01*float64(i%3)) {
			t.Fatalf("false positive at %d", i)
		}
	}
}

func TestCooldownPreventsRetriggering(t *testing.T) {
	d, _ := New(4, 0.25)
	count := 0
	for i := 0; i < 40; i++ {
		x := 1.0
		if i >= 10 {
			x = 3.0
		}
		if d.Observe(x) {
			count++
		}
	}
	// One edge: at most two reports (the edge sweeping through both
	// windows can legitimately fire once more after cooldown).
	if count == 0 || count > 2 {
		t.Errorf("edge reported %d times", count)
	}
}

func TestZeroBaselineHandled(t *testing.T) {
	d, _ := New(3, 0.5)
	for i := 0; i < 6; i++ {
		d.Observe(0)
	}
	if !d.Observe(1.0) {
		// The shift from zero is far above threshold once windows fill.
		for i := 0; i < 3; i++ {
			if d.Observe(1.0) {
				return
			}
		}
		t.Error("shift from zero baseline never detected")
	}
}
