// Package phasedetect provides a small online phase-change detector
// over counter-rate series.
//
// The paper's PM deliberately waits 100 ms of consistent samples
// before raising frequency "to minimize power-limit violations during
// difficult-to-predict periods of workload behavior". A detector that
// recognizes when the workload has switched to a genuinely different
// regime lets a policy treat the new regime as fresh evidence instead
// of waiting out the full hysteresis — the classic phase-tracking idea
// the paper's continuous-monitoring philosophy invites.
package phasedetect

import "fmt"

// Detector compares the means of two adjacent sliding windows of the
// observed rate; when they differ by more than a relative threshold it
// reports a phase change, then holds off for a window to avoid
// retriggering on the same edge.
type Detector struct {
	win      int
	relDelta float64
	buf      []float64
	n        int
	cooldown int

	changes uint64
}

// New builds a detector with the given window length (samples) and
// relative mean-shift threshold (e.g. 0.25 = 25%).
func New(window int, relDelta float64) (*Detector, error) {
	if window < 2 {
		return nil, fmt.Errorf("phasedetect: window %d too small", window)
	}
	if relDelta <= 0 {
		return nil, fmt.Errorf("phasedetect: non-positive threshold %g", relDelta)
	}
	return &Detector{
		win:      window,
		relDelta: relDelta,
		buf:      make([]float64, 0, 2*window),
	}, nil
}

// Changes returns the number of phase changes reported so far.
func (d *Detector) Changes() uint64 { return d.changes }

// Observe consumes the next sample and reports whether a phase change
// was detected at this sample.
func (d *Detector) Observe(x float64) bool {
	if len(d.buf) < 2*d.win {
		d.buf = append(d.buf, x)
	} else {
		copy(d.buf, d.buf[1:])
		d.buf[len(d.buf)-1] = x
	}
	d.n++
	if d.cooldown > 0 {
		d.cooldown--
		return false
	}
	if len(d.buf) < 2*d.win {
		return false
	}
	var older, newer float64
	for i := 0; i < d.win; i++ {
		older += d.buf[i]
		newer += d.buf[d.win+i]
	}
	older /= float64(d.win)
	newer /= float64(d.win)
	base := older
	if base < 1e-9 {
		base = 1e-9
	}
	diff := newer - older
	if diff < 0 {
		diff = -diff
	}
	if diff/base >= d.relDelta {
		d.changes++
		d.cooldown = d.win
		return true
	}
	return false
}
