// Package stats provides the small numerical toolkit the reproduction
// needs: linear fits (least squares and least absolute error, the
// paper's power-model objective), moving windows, and summary
// statistics. Everything is dependency-free and deterministic.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Linear is a fitted line y = Alpha*x + Beta.
type Linear struct {
	Alpha float64
	Beta  float64
}

// Eval returns Alpha*x + Beta.
func (l Linear) Eval(x float64) float64 { return l.Alpha*x + l.Beta }

// String formats the line as "y = a*x + b".
func (l Linear) String() string { return fmt.Sprintf("y = %.4g*x + %.4g", l.Alpha, l.Beta) }

// FitLeastSquares fits y = a*x + b minimizing squared error.
func FitLeastSquares(xs, ys []float64) (Linear, error) {
	if len(xs) != len(ys) {
		return Linear{}, fmt.Errorf("stats: length mismatch %d vs %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if n < 2 {
		return Linear{}, fmt.Errorf("stats: need at least 2 points, got %d", len(xs))
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Linear{}, fmt.Errorf("stats: degenerate x values")
	}
	a := (n*sxy - sx*sy) / den
	b := (sy - a*sx) / n
	return Linear{Alpha: a, Beta: b}, nil
}

// FitLeastAbs fits y = a*x + b minimizing the sum of absolute errors
// (the objective the paper uses for its DPC power model). It uses
// iteratively reweighted least squares, which converges to the L1
// solution for the small, well-conditioned training sets used here.
func FitLeastAbs(xs, ys []float64) (Linear, error) {
	fit, err := FitLeastSquares(xs, ys)
	if err != nil {
		return Linear{}, err
	}
	const (
		iters = 60
		eps   = 1e-6
	)
	w := make([]float64, len(xs))
	for iter := 0; iter < iters; iter++ {
		for i := range xs {
			r := math.Abs(ys[i] - fit.Eval(xs[i]))
			if r < eps {
				r = eps
			}
			w[i] = 1 / r
		}
		next, err := fitWeighted(xs, ys, w)
		if err != nil {
			return Linear{}, err
		}
		if math.Abs(next.Alpha-fit.Alpha) < 1e-10 && math.Abs(next.Beta-fit.Beta) < 1e-10 {
			fit = next
			break
		}
		fit = next
	}
	return fit, nil
}

func fitWeighted(xs, ys, w []float64) (Linear, error) {
	var sw, swx, swy, swxx, swxy float64
	for i := range xs {
		sw += w[i]
		swx += w[i] * xs[i]
		swy += w[i] * ys[i]
		swxx += w[i] * xs[i] * xs[i]
		swxy += w[i] * xs[i] * ys[i]
	}
	den := sw*swxx - swx*swx
	if den == 0 {
		return Linear{}, fmt.Errorf("stats: degenerate weighted system")
	}
	a := (sw*swxy - swx*swy) / den
	b := (swy - a*swx) / sw
	return Linear{Alpha: a, Beta: b}, nil
}

// MeanAbsError returns the mean |y - f(x)| over the points.
func MeanAbsError(f Linear, xs, ys []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for i := range xs {
		s += math.Abs(ys[i] - f.Eval(xs[i]))
	}
	return s / float64(len(xs))
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Min returns the minimum, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Quantile returns the q-quantile (0 <= q <= 1) by linear interpolation
// of the sorted values. It returns 0 for an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Window is a fixed-capacity moving window over float64 samples, used
// by PM's 100 ms moving-average power check (ten 10 ms samples).
type Window struct {
	buf  []float64
	next int
	n    int
}

// NewWindow returns a moving window holding up to capacity samples.
func NewWindow(capacity int) *Window {
	if capacity <= 0 {
		capacity = 1
	}
	return &Window{buf: make([]float64, capacity)}
}

// Push adds a sample, evicting the oldest once full.
func (w *Window) Push(x float64) {
	w.buf[w.next] = x
	w.next = (w.next + 1) % len(w.buf)
	if w.n < len(w.buf) {
		w.n++
	}
}

// Len returns the number of samples currently held.
func (w *Window) Len() int { return w.n }

// Full reports whether the window holds capacity samples.
func (w *Window) Full() bool { return w.n == len(w.buf) }

// Mean returns the mean of held samples (0 when empty).
func (w *Window) Mean() float64 {
	if w.n == 0 {
		return 0
	}
	var s float64
	for i := 0; i < w.n; i++ {
		s += w.buf[i]
	}
	return s / float64(w.n)
}

// Max returns the maximum held sample (-Inf when empty).
func (w *Window) Max() float64 {
	if w.n == 0 {
		return math.Inf(-1)
	}
	m := math.Inf(-1)
	for i := 0; i < w.n; i++ {
		if w.buf[i] > m {
			m = w.buf[i]
		}
	}
	return m
}

// Reset empties the window.
func (w *Window) Reset() {
	w.n = 0
	w.next = 0
}

// Summary captures descriptive statistics of a series.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  Min(xs),
		Max:  Max(xs),
		P50:  Quantile(xs, 0.50),
		P95:  Quantile(xs, 0.95),
		P99:  Quantile(xs, 0.99),
	}
}
