package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitLeastSquaresRecoversExactLine(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 2.5*x - 1.25
	}
	fit, err := FitLeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Alpha-2.5) > 1e-12 || math.Abs(fit.Beta+1.25) > 1e-12 {
		t.Errorf("fit = %v, want y = 2.5x - 1.25", fit)
	}
}

func TestFitLeastSquaresErrors(t *testing.T) {
	if _, err := FitLeastSquares([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := FitLeastSquares([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, err := FitLeastSquares([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("degenerate x values accepted")
	}
}

func TestFitLeastAbsRobustToOutlier(t *testing.T) {
	// Nine points on y = x, one gross outlier. The L1 fit should stay
	// near the line while least squares is dragged away.
	var xs, ys []float64
	for i := 0; i < 9; i++ {
		xs = append(xs, float64(i))
		ys = append(ys, float64(i))
	}
	xs = append(xs, 4.5)
	ys = append(ys, 40)

	l1, err := FitLeastAbs(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := FitLeastSquares(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l1.Alpha-1) > 0.05 {
		t.Errorf("L1 slope = %g, want ~1", l1.Alpha)
	}
	if math.Abs(l1.Beta) > 0.3 {
		t.Errorf("L1 intercept = %g, want ~0", l1.Beta)
	}
	if math.Abs(l2.Beta) < math.Abs(l1.Beta) {
		t.Errorf("least squares (beta %g) unexpectedly more robust than L1 (beta %g)", l2.Beta, l1.Beta)
	}
}

func TestMeanAbsError(t *testing.T) {
	f := Linear{Alpha: 1, Beta: 0}
	got := MeanAbsError(f, []float64{0, 1, 2}, []float64{0.5, 1, 2.5})
	if math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("MeanAbsError = %g, want 1/3", got)
	}
	if MeanAbsError(f, nil, nil) != 0 {
		t.Error("empty MeanAbsError != 0")
	}
}

func TestSummaryStatistics(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summarize = %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2)) > 1e-12 {
		t.Errorf("Std = %g, want sqrt(2)", s.Std)
	}
	if got := (Summary{}); Summarize(nil) != got {
		t.Errorf("Summarize(nil) = %+v, want zero", Summarize(nil))
	}
}

func TestQuantileInterpolation(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	cases := []struct{ q, want float64 }{
		{0, 10}, {1, 40}, {0.5, 25}, {1.0 / 3.0, 20},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("Quantile(nil) != 0")
	}
}

func TestMinMaxEmpty(t *testing.T) {
	if !math.IsInf(Min(nil), 1) {
		t.Error("Min(nil) not +Inf")
	}
	if !math.IsInf(Max(nil), -1) {
		t.Error("Max(nil) not -Inf")
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(3)
	if w.Full() {
		t.Error("empty window reports full")
	}
	w.Push(1)
	w.Push(2)
	w.Push(3)
	if !w.Full() || w.Len() != 3 {
		t.Errorf("window not full after 3 pushes: len=%d", w.Len())
	}
	if w.Mean() != 2 {
		t.Errorf("Mean = %g, want 2", w.Mean())
	}
	w.Push(10) // evicts 1
	if w.Mean() != 5 {
		t.Errorf("Mean after eviction = %g, want 5", w.Mean())
	}
	if w.Max() != 10 {
		t.Errorf("Max = %g, want 10", w.Max())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Error("Reset did not empty window")
	}
	if !math.IsInf(w.Max(), -1) {
		t.Error("empty window Max not -Inf")
	}
}

func TestWindowZeroCapacityClamped(t *testing.T) {
	w := NewWindow(0)
	w.Push(7)
	if w.Mean() != 7 {
		t.Errorf("Mean = %g, want 7", w.Mean())
	}
}

// Property: the L1 fit of points exactly on a line recovers the line.
func TestFitLeastAbsExactLine(t *testing.T) {
	f := func(a8, b8 int8, n8 uint8) bool {
		a := float64(a8) / 16
		b := float64(b8) / 16
		n := int(n8)%8 + 3
		var xs, ys []float64
		for i := 0; i < n; i++ {
			xs = append(xs, float64(i))
			ys = append(ys, a*float64(i)+b)
		}
		fit, err := FitLeastAbs(xs, ys)
		if err != nil {
			return false
		}
		return math.Abs(fit.Alpha-a) < 1e-6 && math.Abs(fit.Beta-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: window mean is always between min and max of pushed values.
func TestWindowMeanBounds(t *testing.T) {
	f := func(vals []float64, cap8 uint8) bool {
		if len(vals) == 0 {
			return true
		}
		for _, v := range vals {
			// Skip pathological magnitudes whose running sum overflows;
			// the window targets power samples in ordinary ranges.
			if math.IsNaN(v) || math.Abs(v) > 1e12 {
				return true
			}
		}
		w := NewWindow(int(cap8%10) + 1)
		for _, v := range vals {
			w.Push(v)
		}
		lo, hi := math.Inf(1), math.Inf(-1)
		start := len(vals) - w.Len()
		for _, v := range vals[start:] {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		m := w.Mean()
		return m >= lo-1e-9*math.Abs(lo)-1e-9 && m <= hi+1e-9*math.Abs(hi)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
