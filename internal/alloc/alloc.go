// Package alloc is the level-agnostic budget-allocation layer: the
// water-filling split plus the demand/hold/margin policy the cluster
// coordinator grew (PR 3), extracted so every level of a hierarchy —
// the root over pods, a pod over racks, a rack over nodes — runs the
// same Allocator over Aggregate summaries of the level below.
//
// The policy, unchanged from the flat coordinator:
//
//   - A child with a usable observation asks for its model appetite at
//     the recent decode rate plus MarginW of headroom, never less than
//     its recent measured draw (demonstrated consumption lower-bounds
//     demand).
//   - A child with no usable signal asks for its guaranteed minimum.
//   - A stale child — active but dark all epoch — keeps its previous
//     share untouched, off the top of the budget (hold).
//   - Inactive children release their share entirely.
//   - What remains is water-filled: the cheapest desires are satisfied
//     fully and the rest split the remainder evenly, floored at each
//     child's guaranteed minimum.
//
// Determinism contract: Allocate is a pure function of the children's
// summaries (read in index order) and mutates nothing but its own
// scratch before the apply callbacks fire in index order. When every
// fresh child's minimum equals the scalar floor — always true for leaf
// nodes — the arithmetic is operation-for-operation the flat
// coordinator's, so a one-level hierarchy reproduces its shares bit
// for bit.
package alloc

import (
	"math"
	"sort"
)

// DefaultMarginW is the headroom added to each child's model desire so
// intensity jitter does not trip a tightly fitted limit.
const DefaultMarginW = 0.5

// Aggregate is one child's epoch summary as its parent's allocator
// sees it: a leaf node reports its own demand signals; an interior
// group reports sums over its subtree.
type Aggregate interface {
	// Active reports whether the child still has work; inactive
	// children receive nothing and their previous share is released.
	Active() bool
	// Stale reports an active child that produced no usable
	// observation all epoch: its previous share is held untouched.
	Stale() bool
	// HeldW is the child's current share, consumed when Stale.
	HeldW() float64
	// DesireW is the model-projected appetite at the child's recent
	// decode rate (a leaf: PM budget desire; a group: the sum of its
	// children's effective desires). NaN when the child has no usable
	// signal, in which case the desire falls back to MinW.
	DesireW() float64
	// RecentPowerW is the epoch-average measured draw (0 when
	// unknown); it lower-bounds the effective desire.
	RecentPowerW() float64
	// RecentDPC is the epoch-average decode rate behind DesireW
	// (informational: telemetry and diagnostics; the allocator
	// consumes the already-projected DesireW).
	RecentDPC() float64
	// MinW is the child's guaranteed minimum at the given per-leaf
	// floor: the floor itself for a leaf, the sum of its subtree's
	// guarantees (held shares included) for a group.
	MinW(floorW float64) float64
}

// Allocator splits one budget over one set of children. The zero
// value is ready to use with MarginW = 0; scratch buffers grow to the
// largest child count seen and are reused across epochs, so a
// per-level Allocator allocates nothing in steady state. Not safe for
// concurrent use; one Allocator per hierarchy level.
type Allocator struct {
	// MarginW is the per-child desire headroom (DefaultMarginW in the
	// cluster coordinator).
	MarginW float64
	// OnDecision, when non-nil, receives each fresh child's
	// (pre-clamp) desire and granted limit after it is applied —
	// the debug/test hook the flat coordinator exposed.
	OnDecision func(child int, desireW, limitW float64)

	idx     []int
	desires []float64
	mins    []float64
	clamped []float64
	sorted  []float64
	lims    []float64
	bps     []breakpoint
}

// sized returns *buf resized to n, reusing capacity.
func sized(buf *[]float64, n int) []float64 {
	if cap(*buf) < n {
		*buf = make([]float64, n)
	}
	*buf = (*buf)[:n]
	return *buf
}

// rawDesireW is the demand policy for one fresh child: the model
// appetite plus margin, lower-bounded by the recent measured draw,
// falling back to minW when the child has no usable signal. The
// returned desire is pre-clamp (it may sit below minW; the waterfill
// clamps), matching the flat coordinator's arithmetic exactly.
func (al *Allocator) rawDesireW(c Aggregate, minW float64) float64 {
	desire := minW
	if d := c.DesireW(); !math.IsNaN(d) {
		desire = d + al.MarginW
		if w := c.RecentPowerW(); w > desire {
			desire = w
		}
	}
	return desire
}

// EffectiveDesireW is what the child will effectively request under
// Allocate: its held share when stale, otherwise its policy desire
// clamped up to its guaranteed minimum. Interior levels sum this over
// their children to build the group-level DesireW.
func (al *Allocator) EffectiveDesireW(c Aggregate, floorW float64) float64 {
	if c.Stale() {
		return c.HeldW()
	}
	minW := c.MinW(floorW)
	if d := al.rawDesireW(c, minW); d > minW {
		return d
	}
	return minW
}

// Allocate splits budgetW over the children: held shares come off the
// top, fresh children are water-filled over the remainder, and apply
// receives each fresh child's new limit in index order. Stale and
// inactive children get no apply call — their recorded shares are the
// caller's to keep or release. Provided the guaranteed minimums fit
// the budget, the granted limits plus held shares sum to at most
// budgetW; when held shares squeeze the fresh children below their
// minimums, the minimum guarantee wins over the budget (the overshoot
// lasts at most until the held children wake or finish).
func (al *Allocator) Allocate(budgetW, floorW float64, children []Aggregate, apply func(child int, limitW float64)) {
	al.idx = al.idx[:0]
	al.desires = al.desires[:0]
	al.mins = al.mins[:0]
	var held float64
	uniform := true
	for i, c := range children {
		if !c.Active() {
			continue
		}
		if c.Stale() {
			held += c.HeldW()
			continue
		}
		minW := c.MinW(floorW)
		if minW != floorW {
			uniform = false
		}
		al.idx = append(al.idx, i)
		al.desires = append(al.desires, al.rawDesireW(c, minW))
		al.mins = append(al.mins, minW)
	}
	if len(al.idx) == 0 {
		return
	}
	avail := budgetW - held
	var lims []float64
	if uniform {
		// Every fresh child is guaranteed exactly the scalar floor —
		// the leaf case. This path is the flat coordinator's
		// arithmetic verbatim, including the pathological clamp.
		if min := floorW * float64(len(al.idx)); avail < min {
			avail = min
		}
		lims = al.waterfill(avail, floorW, al.desires)
	} else {
		var sumMin float64
		for _, m := range al.mins {
			sumMin += m
		}
		if avail < sumMin {
			avail = sumMin
		}
		lims = al.waterfillMins(avail, al.mins, al.desires)
	}
	for k, i := range al.idx {
		apply(i, lims[k])
		if al.OnDecision != nil {
			al.OnDecision(i, al.desires[k], lims[k])
		}
	}
}

// waterfill computes per-child limits from the children's desires:
// everyone receives min(desire, level) where the common water level
// spends the whole budget — the cheapest desires are satisfied fully
// and what remains splits evenly among the rest. Desires below the
// floor clamp up so no child starves. Provided floor*len(desires) <=
// budget, the returned limits sum to at most budget.
//
// This is the flat coordinator's waterfill moved verbatim (scratch
// reuse aside): the loop structure and every float operation are
// unchanged, which the one-level byte-identity differential depends
// on. The returned slice is the Allocator's scratch.
func (al *Allocator) waterfill(budget, floor float64, desires []float64) []float64 {
	n := len(desires)
	limits := sized(&al.lims, n)
	if n == 0 {
		return limits
	}
	clamped := sized(&al.clamped, n)
	for i, d := range desires {
		if d < floor {
			d = floor
		}
		clamped[i] = d
	}
	sorted := sized(&al.sorted, n)
	copy(sorted, clamped)
	sort.Float64s(sorted)

	remaining := budget
	level := 0.0
	for k, d := range sorted {
		evenShare := remaining / float64(n-k)
		if d >= evenShare {
			level = evenShare
			break
		}
		remaining -= d
		level = d // all remaining nodes satisfied
	}
	for i, d := range clamped {
		limit := d
		if limit > level {
			limit = level
		}
		if limit < floor {
			limit = floor
		}
		limits[i] = limit
	}
	return limits
}

// Waterfill is the standalone scalar-floor waterfill, for callers and
// tests that want the pure function without an Allocator.
func Waterfill(budget, floor float64, desires []float64) []float64 {
	var al Allocator
	lims := al.waterfill(budget, floor, desires)
	out := make([]float64, len(lims))
	copy(out, lims)
	return out
}

// MinTotalW is the budget needed to honor a set of guaranteed minima:
// entry i contributes max(mins[i], floorW*units[i]), where units[i] is
// how many scalar-floor leaves the entry spans (1 for a leaf, the leaf
// count for an interior group). Admission layers use it to check that
// declared floors fit under a cap before the water-fill ever sees
// them; mins may be nil (pure scalar floors).
func MinTotalW(floorW float64, units []int, mins []float64) float64 {
	var total float64
	for i, u := range units {
		m := floorW * float64(u)
		if mins != nil && mins[i] > m {
			m = mins[i]
		}
		total += m
	}
	return total
}

// breakpoint is one slope-change event of the heterogeneous-floor
// water level sweep.
type breakpoint struct {
	v  float64
	dz int
}

// waterfillMins is the heterogeneous-floor generalization for
// interior levels, where each child's guaranteed minimum is the sum
// of its subtree's guarantees: child k receives
// clamp(level, mins[k], max(desires[k], mins[k])) with the common
// water level chosen so the grants spend the whole budget (or every
// child is satisfied). Solved exactly by a sorted-breakpoint sweep of
// the piecewise-linear grant sum — no iteration, fully deterministic.
// The returned slice is the Allocator's scratch.
func (al *Allocator) waterfillMins(budget float64, mins, desires []float64) []float64 {
	n := len(desires)
	limits := sized(&al.lims, n)
	if n == 0 {
		return limits
	}
	clamped := sized(&al.clamped, n)
	var sumMin float64
	if cap(al.bps) < 2*n {
		al.bps = make([]breakpoint, 2*n)
	}
	bps := al.bps[:0]
	for i, d := range desires {
		if d < mins[i] {
			d = mins[i]
		}
		clamped[i] = d
		sumMin += mins[i]
		bps = append(bps, breakpoint{mins[i], +1}, breakpoint{d, -1})
	}
	al.bps = bps
	sort.Slice(bps, func(a, b int) bool {
		if bps[a].v != bps[b].v {
			return bps[a].v < bps[b].v
		}
		return bps[a].dz < bps[b].dz
	})

	// Sweep the water level upward. Between breakpoints the grant sum
	// grows linearly with slope = number of children whose minimum is
	// below the level and whose desire is above it.
	level := math.Inf(1) // budget >= sum of desires: everyone satisfied
	sum := sumMin
	slope := 0
	prev := bps[0].v
	for _, bp := range bps {
		if dv := bp.v - prev; slope > 0 && dv > 0 {
			if next := sum + float64(slope)*dv; next >= budget {
				level = prev + (budget-sum)/float64(slope)
				break
			} else {
				sum = next
			}
		}
		prev = bp.v
		slope += bp.dz
	}
	for i, d := range clamped {
		limit := d
		if limit > level {
			limit = level
		}
		if limit < mins[i] {
			limit = mins[i]
		}
		limits[i] = limit
	}
	return limits
}
