package alloc

import (
	"math"
	"math/rand"
	"testing"
)

// Property: water-filling never over-commits the shared budget
// (whenever the floor is coverable), never starves a node below the
// floor, and never hands a node more than it asked for.
func TestPropertyWaterfillRespectsBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5000; trial++ {
		n := 1 + rng.Intn(12)
		floor := 1 + rng.Float64()*5
		// Budget always covers the floor (Run rejects the rest).
		budget := floor*float64(n) + rng.Float64()*100
		desires := make([]float64, n)
		for i := range desires {
			desires[i] = rng.Float64() * 30
		}
		limits := Waterfill(budget, floor, desires)
		if len(limits) != n {
			t.Fatalf("trial %d: %d limits for %d nodes", trial, len(limits), n)
		}
		var sum float64
		for i, l := range limits {
			sum += l
			if l < floor-1e-9 {
				t.Fatalf("trial %d: node %d limit %.4f below floor %.4f", trial, i, l, floor)
			}
			want := desires[i]
			if want < floor {
				want = floor
			}
			if l > want+1e-9 {
				t.Fatalf("trial %d: node %d limit %.4f above clamped desire %.4f", trial, i, l, want)
			}
		}
		if sum > budget+1e-6 {
			t.Fatalf("trial %d: limits sum %.6f exceed budget %.6f (floor %.3f, n %d, desires %v)",
				trial, sum, budget, floor, n, desires)
		}
	}
}

// When the budget covers every desire, everyone gets exactly what they
// asked for (clamped to the floor).
func TestWaterfillSatisfiesAllWhenAmple(t *testing.T) {
	desires := []float64{5, 12, 8.5, 3}
	limits := Waterfill(100, 4, desires)
	want := []float64{5, 12, 8.5, 4}
	for i := range want {
		if limits[i] != want[i] {
			t.Fatalf("limits = %v, want %v", limits, want)
		}
	}
}

// When everyone wants more than an even share, the level is exactly
// budget/n.
func TestWaterfillEvenSplitUnderUniformPressure(t *testing.T) {
	limits := Waterfill(30, 4, []float64{20, 25, 30})
	for i, l := range limits {
		if diff := l - 10; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("node %d limit %.6f, want 10", i, l)
		}
	}
}

func TestWaterfillEmpty(t *testing.T) {
	if got := Waterfill(10, 1, nil); len(got) != 0 {
		t.Fatalf("Waterfill(nil) = %v", got)
	}
}

// TestWaterfillAtFleetScale pins the fleet-scale contract the
// hierarchy depends on: at 1e5 synthetic demands the scalar waterfill
// conserves the budget (Σ limits ≤ budget), respects the floor for
// every child, and grants nobody more than their clamped desire.
func TestWaterfillAtFleetScale(t *testing.T) {
	const n = 100_000
	rng := rand.New(rand.NewSource(11))
	desires := make([]float64, n)
	for i := range desires {
		desires[i] = rng.Float64() * 25
	}
	const floor = 4.0
	budget := floor*n + 150_000.0 // tight: well under the ~1.25e6 W total ask
	limits := Waterfill(budget, floor, desires)
	var sum float64
	for i, l := range limits {
		sum += l
		if l < floor {
			t.Fatalf("node %d limit %.6f below floor", i, l)
		}
		want := math.Max(desires[i], floor)
		if l > want+1e-9 {
			t.Fatalf("node %d limit %.6f above clamped desire %.6f", i, l, want)
		}
	}
	// The sum tolerance scales with n: each grant contributes one
	// rounding error against the analytically spent budget.
	if sum > budget+1e-6*n {
		t.Fatalf("limits sum %.3f exceeds budget %.3f", sum, budget)
	}
}

// TestPropertyWaterfillMonotoneInDesire pins monotonicity: raising one
// child's desire (budget fixed) never lowers that child's grant and
// never raises any other child's grant.
func TestPropertyWaterfillMonotoneInDesire(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := 2 + rng.Intn(10)
		floor := 1 + rng.Float64()*4
		budget := floor*float64(n) + rng.Float64()*60
		desires := make([]float64, n)
		for i := range desires {
			desires[i] = rng.Float64() * 25
		}
		base := Waterfill(budget, floor, desires)
		j := rng.Intn(n)
		bumped := make([]float64, n)
		copy(bumped, desires)
		bumped[j] += rng.Float64() * 10
		next := Waterfill(budget, floor, bumped)
		if next[j] < base[j]-1e-9 {
			t.Fatalf("trial %d: raising node %d's desire lowered its grant %.6f -> %.6f",
				trial, j, base[j], next[j])
		}
		for i := range base {
			if i == j {
				continue
			}
			if next[i] > base[i]+1e-9 {
				t.Fatalf("trial %d: raising node %d's desire raised node %d's grant %.6f -> %.6f",
					trial, j, i, base[i], next[i])
			}
		}
	}
}

// TestPropertyWaterfillMinsConserves pins the heterogeneous-floor
// generalization used at interior hierarchy levels: budget
// conservation whenever the minimums fit, per-child minimum respect,
// and grants bounded by the clamped desires — at group counts from
// tiny to 1e5.
func TestPropertyWaterfillMinsConserves(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var al Allocator
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(40)
		if trial == 0 {
			n = 100_000 // one fleet-scale pass
		}
		mins := make([]float64, n)
		desires := make([]float64, n)
		var sumMin float64
		for i := range mins {
			mins[i] = rng.Float64() * 20
			sumMin += mins[i]
			desires[i] = rng.Float64() * 60
		}
		budget := sumMin + rng.Float64()*float64(n)*10
		limits := al.waterfillMins(budget, mins, desires)
		var sum float64
		for i, l := range limits {
			sum += l
			if l < mins[i]-1e-9 {
				t.Fatalf("trial %d: child %d granted %.6f below its %.6f minimum", trial, i, l, mins[i])
			}
			want := math.Max(desires[i], mins[i])
			if l > want+1e-9 {
				t.Fatalf("trial %d: child %d granted %.6f above clamped desire %.6f", trial, i, l, want)
			}
		}
		if sum > budget+1e-6*float64(n) {
			t.Fatalf("trial %d: grants sum %.6f exceed budget %.6f (n=%d)", trial, sum, budget, n)
		}
	}
}

// TestWaterfillMinsSatisfiesAllWhenAmple mirrors the scalar ample-budget
// case with per-child minimums.
func TestWaterfillMinsSatisfiesAllWhenAmple(t *testing.T) {
	var al Allocator
	limits := al.waterfillMins(1000, []float64{4, 10, 2}, []float64{5, 8, 30})
	want := []float64{5, 10, 30}
	for i := range want {
		if limits[i] != want[i] {
			t.Fatalf("limits = %v, want %v", limits, want)
		}
	}
}

// agg is a plain-value Aggregate for allocator tests.
type agg struct {
	active  bool
	stale   bool
	heldW   float64
	desireW float64 // NaN = no signal
	recentW float64
	minW    float64 // 0 = scalar floor
}

func (a *agg) Active() bool          { return a.active }
func (a *agg) Stale() bool           { return a.stale }
func (a *agg) HeldW() float64        { return a.heldW }
func (a *agg) DesireW() float64      { return a.desireW }
func (a *agg) RecentPowerW() float64 { return a.recentW }
func (a *agg) RecentDPC() float64    { return 0 }
func (a *agg) MinW(floorW float64) float64 {
	if a.minW > 0 {
		return a.minW
	}
	return floorW
}

func children(aggs []agg) []Aggregate {
	out := make([]Aggregate, len(aggs))
	for i := range aggs {
		out[i] = &aggs[i]
	}
	return out
}

// TestAllocateHoldsAndReleases pins the demand/hold policy at the
// Allocator level: stale children's held share comes off the top and
// they get no apply call, inactive children get no apply call, and the
// fresh child is granted at most the unheld budget.
func TestAllocateHoldsAndReleases(t *testing.T) {
	aggs := []agg{
		{active: true, desireW: 40, recentW: 0},
		{active: true, stale: true, heldW: 12},
		{active: false},
	}
	var al Allocator
	al.MarginW = DefaultMarginW
	got := map[int]float64{}
	al.Allocate(30, 4, children(aggs), func(i int, w float64) { got[i] = w })
	if _, ok := got[1]; ok {
		t.Fatal("stale child received an apply call")
	}
	if _, ok := got[2]; ok {
		t.Fatal("inactive child received an apply call")
	}
	w, ok := got[0]
	if !ok {
		t.Fatal("fresh child received no grant")
	}
	if w > 18+1e-9 {
		t.Fatalf("fresh child granted %.4f W, exceeding the 18 W left after the hold", w)
	}
}

// TestAllocateRecentPowerFloorsDesire pins that a child's measured
// draw lower-bounds its effective desire.
func TestAllocateRecentPowerFloorsDesire(t *testing.T) {
	aggs := []agg{{active: true, desireW: 10, recentW: 17}}
	var al Allocator
	al.MarginW = DefaultMarginW
	var gotDesire, gotLimit float64
	al.OnDecision = func(child int, desireW, limitW float64) { gotDesire, gotLimit = desireW, limitW }
	al.Allocate(40, 4, children(aggs), func(i int, w float64) {})
	if gotDesire != 17 {
		t.Fatalf("desire %.4f, want the 17 W recent draw to floor it", gotDesire)
	}
	if gotLimit != 17 {
		t.Fatalf("limit %.4f, want 17 under an ample budget", gotLimit)
	}
}

// TestAllocateNoSignalFallsBackToMin pins the no-signal fallback: a
// fresh child with NaN desire asks for exactly its minimum.
func TestAllocateNoSignalFallsBackToMin(t *testing.T) {
	aggs := []agg{
		{active: true, desireW: math.NaN()},
		{active: true, desireW: 50},
	}
	var al Allocator
	got := map[int]float64{}
	al.Allocate(30, 4, children(aggs), func(i int, w float64) { got[i] = w })
	if got[0] != 4 {
		t.Fatalf("no-signal child granted %.4f, want the 4 W floor", got[0])
	}
	if got[1] <= got[0] {
		t.Fatalf("hungry child granted %.4f, not above the idle one", got[1])
	}
}

// TestEffectiveDesireMatchesAllocate pins that the aggregation helper
// interior levels use reports exactly what Allocate grants under an
// ample budget.
func TestEffectiveDesireMatchesAllocate(t *testing.T) {
	aggs := []agg{
		{active: true, desireW: 12, recentW: 3},
		{active: true, desireW: math.NaN()},
		{active: true, stale: true, heldW: 9},
		{active: true, desireW: 2, recentW: 8, minW: 6},
	}
	var al Allocator
	al.MarginW = DefaultMarginW
	got := map[int]float64{}
	al.Allocate(1e6, 4, children(aggs), func(i int, w float64) { got[i] = w })
	for i := range aggs {
		want := al.EffectiveDesireW(&aggs[i], 4)
		if aggs[i].stale {
			if want != aggs[i].heldW {
				t.Fatalf("child %d: stale effective desire %.4f != held %.4f", i, want, aggs[i].heldW)
			}
			continue
		}
		if got[i] != want {
			t.Fatalf("child %d: granted %.6f under ample budget, EffectiveDesireW %.6f", i, got[i], want)
		}
	}
}

// TestAllocatorScratchReuse pins that repeated epochs on one Allocator
// produce identical results to fresh Allocators (scratch reuse is
// value-invisible).
func TestAllocatorScratchReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var reused Allocator
	reused.MarginW = DefaultMarginW
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(30)
		aggs := make([]agg, n)
		for i := range aggs {
			aggs[i] = agg{
				active:  rng.Intn(10) > 0,
				stale:   rng.Intn(10) == 0,
				heldW:   rng.Float64() * 10,
				desireW: rng.Float64() * 40,
				recentW: rng.Float64() * 20,
			}
			if rng.Intn(4) == 0 {
				aggs[i].desireW = math.NaN()
			}
			if rng.Intn(3) == 0 {
				aggs[i].minW = 4 + rng.Float64()*10
			}
		}
		budget := 40 + rng.Float64()*400
		a := map[int]float64{}
		b := map[int]float64{}
		reused.Allocate(budget, 4, children(aggs), func(i int, w float64) { a[i] = w })
		fresh := Allocator{MarginW: DefaultMarginW}
		fresh.Allocate(budget, 4, children(aggs), func(i int, w float64) { b[i] = w })
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d grants", trial, len(a), len(b))
		}
		for i, w := range a {
			if b[i] != w {
				t.Fatalf("trial %d child %d: reused %.9f != fresh %.9f", trial, i, w, b[i])
			}
		}
	}
}

// FuzzWaterfill fuzzes both waterfills with adversarial budgets and
// desire patterns, checking the conservation and bound invariants.
func FuzzWaterfill(f *testing.F) {
	f.Add(int64(1), 10, 56.0, 4.0)
	f.Add(int64(9), 3, 12.0, 0.5)
	f.Add(int64(42), 1, 1e9, 1e-3)
	f.Fuzz(func(t *testing.T, seed int64, n int, budget, floor float64) {
		if n <= 0 || n > 4096 {
			t.Skip()
		}
		if !(floor > 0) || !(budget > 0) || math.IsInf(budget, 0) || math.IsInf(floor, 0) {
			t.Skip()
		}
		if floor*float64(n) > budget {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		desires := make([]float64, n)
		mins := make([]float64, n)
		var sumMin float64
		for i := range desires {
			desires[i] = rng.Float64() * budget
			mins[i] = rng.Float64() * floor
			sumMin += mins[i]
		}
		limits := Waterfill(budget, floor, desires)
		var sum float64
		for i, l := range limits {
			sum += l
			if l < floor {
				t.Fatalf("scalar: child %d below floor: %g < %g", i, l, floor)
			}
			if want := math.Max(desires[i], floor); l > want*(1+1e-12)+1e-9 {
				t.Fatalf("scalar: child %d above clamped desire: %g > %g", i, l, want)
			}
		}
		if sum > budget*(1+1e-9)+1e-6*float64(n) {
			t.Fatalf("scalar: sum %g exceeds budget %g", sum, budget)
		}
		if sumMin <= budget {
			var al Allocator
			lims := al.waterfillMins(budget, mins, desires)
			sum = 0
			for i, l := range lims {
				sum += l
				if l < mins[i]*(1-1e-12)-1e-9 {
					t.Fatalf("mins: child %d below min: %g < %g", i, l, mins[i])
				}
				if want := math.Max(desires[i], mins[i]); l > want*(1+1e-12)+1e-9 {
					t.Fatalf("mins: child %d above clamped desire: %g > %g", i, l, want)
				}
			}
			if sum > budget*(1+1e-9)+1e-6*float64(n) {
				t.Fatalf("mins: sum %g exceeds budget %g", sum, budget)
			}
		}
	})
}
