package experiment

import (
	"fmt"
	"io"
	"math"

	"aapm/internal/machine"
	"aapm/internal/mloops"
	"aapm/internal/model"
	"aapm/internal/power"
	"aapm/internal/pstate"
)

// PlatformResult demonstrates the paper's §II point that counter-based
// power models are platform-specific: the Table II model trained for
// the 755 misestimates a low-voltage sibling part until retrained on
// that part's own measurements.
type PlatformResult struct {
	// MAE755On755 is the published model's per-sample error on its own
	// platform's training data (the baseline fit quality).
	MAE755On755 float64
	// MAE755On738 is the published 755 model applied, frequency by
	// frequency, to the low-voltage 738 platform.
	MAE755On738 float64
	// MAE738Retrained is the error after retraining on the 738's own
	// training runs.
	MAE738Retrained float64
	// Rows detail the per-p-state comparison on the 738.
	Rows []PlatformRow
}

// PlatformRow is one shared frequency's coefficients and errors.
type PlatformRow struct {
	FreqMHz         int
	Alpha755        float64
	AlphaRetrained  float64
	MAE755, MAERetr float64
}

// PlatformSpecificity trains and cross-applies the power model across
// the two platforms.
func (c *Context) PlatformSpecificity() (*PlatformResult, error) {
	set, err := mloops.TrainingSet()
	if err != nil {
		return nil, err
	}

	// Training data on each platform.
	pts755, err := model.CollectTrainingData(machine.Config{Chain: c.chain, Seed: c.opts.Seed}, set, trainingInstructions)
	if err != nil {
		return nil, err
	}
	t738 := pstate.PentiumM738LV()
	truth738, err := power.NewInterpolatedGroundTruth(t738)
	if err != nil {
		return nil, err
	}
	pts738, err := model.CollectTrainingData(machine.Config{
		Truth: truth738,
		Chain: c.chain,
		Seed:  c.opts.Seed,
	}, set, trainingInstructions)
	if err != nil {
		return nil, err
	}

	paper := model.PaperPowerModel()
	retrained, err := model.FitPowerModel(t738, pts738)
	if err != nil {
		return nil, err
	}

	res := &PlatformResult{}
	// Published model on its own platform.
	var sum float64
	var n int
	for _, p := range pts755 {
		sum += math.Abs(p.PowerW - paper.Estimate(p.PStateIndex, p.DPC))
		n++
	}
	res.MAE755On755 = sum / float64(n)

	// Published model (matched by frequency) and retrained model on
	// the 738.
	perState := map[int][3]float64{} // freq -> {n, err755, errRetr}
	sum, n = 0, 0
	var sumR float64
	for _, p := range pts738 {
		idx755 := paper.Table().IndexOf(p.FreqMHz)
		if idx755 < 0 {
			return nil, fmt.Errorf("experiment: 738 frequency %d MHz missing from the 755 table", p.FreqMHz)
		}
		e755 := math.Abs(p.PowerW - paper.Estimate(idx755, p.DPC))
		eRetr := math.Abs(p.PowerW - retrained.Estimate(p.PStateIndex, p.DPC))
		sum += e755
		sumR += eRetr
		n++
		acc := perState[p.FreqMHz]
		perState[p.FreqMHz] = [3]float64{acc[0] + 1, acc[1] + e755, acc[2] + eRetr}
	}
	res.MAE755On738 = sum / float64(n)
	res.MAE738Retrained = sumR / float64(n)

	for i := 0; i < t738.Len(); i++ {
		f := t738.At(i).FreqMHz
		acc := perState[f]
		idx755 := paper.Table().IndexOf(f)
		res.Rows = append(res.Rows, PlatformRow{
			FreqMHz:        f,
			Alpha755:       paper.Coefficients(idx755).Alpha,
			AlphaRetrained: retrained.Coefficients(i).Alpha,
			MAE755:         acc[1] / acc[0],
			MAERetr:        acc[2] / acc[0],
		})
	}
	return res, nil
}

// Print writes the cross-platform comparison.
func (r *PlatformResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Platform specificity: Table II model vs a low-voltage sibling part (§II)"); err != nil {
		return err
	}
	fmt.Fprintf(w, "755 model on 755 training data: MAE %.3f W\n", r.MAE755On755)
	fmt.Fprintf(w, "755 model on 738LV:             MAE %.3f W\n", r.MAE755On738)
	fmt.Fprintf(w, "retrained on 738LV:             MAE %.3f W\n", r.MAE738Retrained)
	fmt.Fprintf(w, "%6s %10s %12s %10s %10s\n", "MHz", "alpha 755", "alpha 738fit", "mae 755", "mae retr")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%6d %10.3f %12.3f %9.3fW %9.3fW\n",
			row.FreqMHz, row.Alpha755, row.AlphaRetrained, row.MAE755, row.MAERetr)
	}
	return nil
}
