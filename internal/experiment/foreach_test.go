package experiment

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func foreachCtx(t *testing.T, par int) *Context {
	t.Helper()
	c, err := NewContext(Options{Seed: 1, Parallelism: par})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestForEachNStopsLaunchingAfterError(t *testing.T) {
	c := foreachCtx(t, 4)
	boom := errors.New("boom")
	var invoked atomic.Int64
	err := c.forEachN(64, func(i int) error {
		invoked.Add(1)
		if i == 0 {
			return boom
		}
		// Keep non-failing jobs slow enough that the launcher observes
		// the stop signal long before the loop could run dry.
		time.Sleep(10 * time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n := invoked.Load(); n >= 64 {
		t.Errorf("all %d jobs ran despite an early error", n)
	}
}

func TestForEachNJoinsAllErrors(t *testing.T) {
	c := foreachCtx(t, 4)
	// A barrier holds every job open until all four have launched, so
	// each one's error must appear in the joined result.
	var started sync.WaitGroup
	started.Add(4)
	err := c.forEachN(4, func(i int) error {
		started.Done()
		started.Wait()
		return fmt.Errorf("job %d failed", i)
	})
	if err == nil {
		t.Fatal("no error returned")
	}
	for i := 0; i < 4; i++ {
		if want := fmt.Sprintf("job %d failed", i); !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q: %v", want, err)
		}
	}
}

func TestForEachNSerialStopsImmediately(t *testing.T) {
	c := foreachCtx(t, 1)
	boom := errors.New("boom")
	var invoked int
	err := c.forEachN(10, func(i int) error {
		invoked++
		if i == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if invoked != 3 {
		t.Errorf("invoked %d jobs, want exactly 3 (serial stops at the error)", invoked)
	}
}

func TestForEachNAllSucceed(t *testing.T) {
	c := foreachCtx(t, 3)
	var invoked atomic.Int64
	if err := c.forEachN(17, func(int) error {
		invoked.Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if invoked.Load() != 17 {
		t.Errorf("invoked %d jobs, want 17", invoked.Load())
	}
}
