package experiment

import (
	"fmt"
	"io"
	"time"

	"aapm/internal/stats"
	"aapm/internal/trace"
)

// Fig5Result is the PM timeline on ammp (Figure 5): unconstrained
// 2 GHz against PM at 14.5 W and 10.5 W.
type Fig5Result struct {
	Unconstrained *trace.Run
	PM145         *trace.Run
	PM105         *trace.Run
}

// Fig5PMTimeline runs the three ammp configurations.
func (c *Context) Fig5PMTimeline() (*Fig5Result, error) {
	res := &Fig5Result{}
	jobs := []func() error{
		func() (err error) { res.Unconstrained, err = c.RunStatic("ammp", 2000); return },
		func() (err error) { res.PM145, err = c.RunPM("ammp", 14.5); return },
		func() (err error) { res.PM105, err = c.RunPM("ammp", 10.5); return },
	}
	if err := c.forEachN(len(jobs), func(i int) error { return jobs[i]() }); err != nil {
		return nil, err
	}
	return res, nil
}

// Print renders the three timelines as ASCII charts plus summaries.
func (r *Fig5Result) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig 5: PerformanceMaximizer on ammp (runs to completion in each case)\n"); err != nil {
		return err
	}
	for _, run := range []*trace.Run{r.Unconstrained, r.PM145, r.PM105} {
		if err := run.TimelineSummary(w); err != nil {
			return err
		}
		if err := trace.RenderASCII(w, fmt.Sprintf("  power (W), %s", run.Policy), 100, 10,
			trace.Series{Name: "power", Values: run.MeasuredPowers()}); err != nil {
			return err
		}
		if err := trace.RenderASCII(w, fmt.Sprintf("  frequency (MHz), %s", run.Policy), 100, 8,
			trace.Series{Name: "freq", Values: run.Freqs()}); err != nil {
			return err
		}
	}
	return nil
}

// Fig6Result is normalized performance versus power limit for PM's
// dynamic clocking against worst-case static clocking (Figure 6).
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6Row is one power limit's suite performance.
type Fig6Row struct {
	LimitW float64
	// StaticMHz is the Table IV frequency for the limit.
	StaticMHz int
	// NormPerfPM and NormPerfStatic are suite performance normalized
	// to unconstrained 2 GHz execution (total-time ratios, <= 1).
	NormPerfPM     float64
	NormPerfStatic float64
}

// Fig6PerfVsPowerLimit sweeps the eight limits over the full suite.
func (c *Context) Fig6PerfVsPowerLimit() (*Fig6Result, error) {
	t4, err := c.TableIVStaticFrequencies()
	if err != nil {
		return nil, err
	}
	names := c.SuiteNames()
	limits := PowerLimits()

	// Pre-run everything in parallel: unconstrained, statics, PMs.
	type job struct {
		name  string
		limit float64 // 0 = static at freq
		freq  int
	}
	var jobs []job
	for _, n := range names {
		jobs = append(jobs, job{name: n, freq: 2000})
		for _, l := range limits {
			f, err := t4.StaticFreqFor(l)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, job{name: n, freq: f})
			jobs = append(jobs, job{name: n, limit: l})
		}
	}
	if err := c.forEachN(len(jobs), func(i int) error {
		j := jobs[i]
		if j.limit > 0 {
			_, err := c.RunPM(j.name, j.limit)
			return err
		}
		_, err := c.RunStatic(j.name, j.freq)
		return err
	}); err != nil {
		return nil, err
	}

	baseTotal, err := c.suiteTime(func(n string) (*trace.Run, error) { return c.RunStatic(n, 2000) })
	if err != nil {
		return nil, err
	}
	res := &Fig6Result{}
	for _, l := range limits {
		f, err := t4.StaticFreqFor(l)
		if err != nil {
			return nil, err
		}
		pmTotal, err := c.suiteTime(func(n string) (*trace.Run, error) { return c.RunPM(n, l) })
		if err != nil {
			return nil, err
		}
		stTotal, err := c.suiteTime(func(n string) (*trace.Run, error) { return c.RunStatic(n, f) })
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig6Row{
			LimitW:         l,
			StaticMHz:      f,
			NormPerfPM:     baseTotal.Seconds() / pmTotal.Seconds(),
			NormPerfStatic: baseTotal.Seconds() / stTotal.Seconds(),
		})
	}
	return res, nil
}

func (c *Context) suiteTime(get func(name string) (*trace.Run, error)) (time.Duration, error) {
	var total time.Duration
	for _, n := range c.SuiteNames() {
		r, err := get(n)
		if err != nil {
			return 0, err
		}
		total += r.Duration
	}
	return total, nil
}

func (c *Context) suiteEnergy(get func(name string) (*trace.Run, error)) (float64, error) {
	var total float64
	for _, n := range c.SuiteNames() {
		r, err := get(n)
		if err != nil {
			return 0, err
		}
		total += r.MeasuredEnergyJ
	}
	return total, nil
}

// Print writes the Figure 6 series.
func (r *Fig6Result) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig 6: suite performance vs power limit (normalized to unconstrained 2 GHz)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %10s %12s %14s\n", "limit(W)", "staticMHz", "PM(dynamic)", "static")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8.1f %10d %12.4f %14.4f\n", row.LimitW, row.StaticMHz, row.NormPerfPM, row.NormPerfStatic)
	}
	return nil
}

// Fig7Result is the per-benchmark PM speedup study at the 17.5 W
// limit (Figure 7): PM and unconstrained speedups over 1800 MHz
// static clocking, sorted by the unconstrained speedup.
type Fig7Result struct {
	Rows []Fig7Row
	// SuiteSpeedupPM and SuiteSpeedupMax are total-time suite
	// speedups over static clocking; FractionOfPossible is
	// (PM-1)/(Max-1), the paper's 86% headline.
	SuiteSpeedupPM     float64
	SuiteSpeedupMax    float64
	FractionOfPossible float64
}

// Fig7Row is one benchmark's speedups at the 17.5 W limit.
type Fig7Row struct {
	Name string
	// SpeedupPM is T(static 1800)/T(PM@17.5) - 1.
	SpeedupPM float64
	// SpeedupMax is T(static 1800)/T(2000 unconstrained) - 1.
	SpeedupMax float64
}

// Fig7Limit is the power limit of the Figure 7 study.
const Fig7Limit = 17.5

// Fig7PMSpeedup computes per-benchmark and suite speedups at 17.5 W.
func (c *Context) Fig7PMSpeedup() (*Fig7Result, error) {
	t4, err := c.TableIVStaticFrequencies()
	if err != nil {
		return nil, err
	}
	staticMHz, err := t4.StaticFreqFor(Fig7Limit)
	if err != nil {
		return nil, err
	}
	names := c.SuiteNames()
	if err := c.forEachN(3*len(names), func(i int) error {
		n := names[i/3]
		switch i % 3 {
		case 0:
			_, err := c.RunStatic(n, staticMHz)
			return err
		case 1:
			_, err := c.RunStatic(n, 2000)
			return err
		default:
			_, err := c.RunPM(n, Fig7Limit)
			return err
		}
	}); err != nil {
		return nil, err
	}

	res := &Fig7Result{}
	order := map[string]float64{}
	var totStatic, totPM, totMax float64
	for _, n := range names {
		st, err := c.RunStatic(n, staticMHz)
		if err != nil {
			return nil, err
		}
		pm, err := c.RunPM(n, Fig7Limit)
		if err != nil {
			return nil, err
		}
		mx, err := c.RunStatic(n, 2000)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{
			Name:       n,
			SpeedupPM:  st.Duration.Seconds()/pm.Duration.Seconds() - 1,
			SpeedupMax: st.Duration.Seconds()/mx.Duration.Seconds() - 1,
		}
		res.Rows = append(res.Rows, row)
		order[n] = row.SpeedupMax
		totStatic += st.Duration.Seconds()
		totPM += pm.Duration.Seconds()
		totMax += mx.Duration.Seconds()
	}
	// Sort rows by unconstrained speedup, as the paper plots them.
	sorted := sortByValue(names, order, true)
	byName := map[string]Fig7Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	res.Rows = res.Rows[:0]
	for _, n := range sorted {
		res.Rows = append(res.Rows, byName[n])
	}
	res.SuiteSpeedupPM = totStatic/totPM - 1
	res.SuiteSpeedupMax = totStatic/totMax - 1
	if res.SuiteSpeedupMax > 0 {
		res.FractionOfPossible = res.SuiteSpeedupPM / res.SuiteSpeedupMax
	}
	return res, nil
}

// Print writes the Figure 7 bars.
func (r *Fig7Result) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig 7: speedup over static 1800 MHz at the 17.5 W limit (sorted by unconstrained speedup)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %14s\n", "benchmark", "PM", "unconstrained")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %+9.1f%% %+13.1f%%\n", row.Name, row.SpeedupPM*100, row.SpeedupMax*100)
	}
	_, err := fmt.Fprintf(w, "suite: PM %+.2f%%, max %+.2f%% -> PM achieves %.0f%% of the possible speedup (paper: 86%%)\n",
		r.SuiteSpeedupPM*100, r.SuiteSpeedupMax*100, r.FractionOfPossible*100)
	return err
}

// AdherenceResult quantifies PM power-limit compliance over 100 ms
// moving-average windows (§IV-A.2).
type AdherenceResult struct {
	Rows []AdherenceRow
	// Worst names the workload/limit with the highest over-limit
	// fraction (galgel at 13.5 W in the paper).
	Worst AdherenceRow
}

// AdherenceRow is compliance for one (benchmark, limit).
type AdherenceRow struct {
	Name   string
	LimitW float64
	// OverFrac is the fraction of run-time (10 ms samples) above the
	// limit — the paper's "~10% of run-time" metric for galgel.
	OverFrac float64
	// OverFracWindows is the fraction of full 100 ms moving-average
	// windows above the limit.
	OverFracWindows float64
	// PeakWindowW is the maximum 100 ms moving-average power.
	PeakWindowW float64
	// PeakSampleW is the maximum individual 10 ms sample.
	PeakSampleW float64
}

// adherenceWindow is ten 10 ms samples, the paper's enforcement window.
const adherenceWindow = 10

// PMLimitAdherence checks every benchmark at every limit.
func (c *Context) PMLimitAdherence() (*AdherenceResult, error) {
	names := c.SuiteNames()
	limits := PowerLimits()
	if err := c.forEachN(len(names)*len(limits), func(i int) error {
		_, err := c.RunPM(names[i/len(limits)], limits[i%len(limits)])
		return err
	}); err != nil {
		return nil, err
	}
	res := &AdherenceResult{}
	for _, n := range names {
		for _, l := range limits {
			run, err := c.RunPM(n, l)
			if err != nil {
				return nil, err
			}
			meas := run.MeasuredPowers()
			win := trace.MovingAvg(meas, adherenceWindow)
			// Skip warm-up partial windows: only averages over a full
			// ten samples count toward enforcement.
			if len(win) >= adherenceWindow {
				win = win[adherenceWindow-1:]
			}
			row := AdherenceRow{
				Name: n, LimitW: l,
				OverFrac:        trace.FractionAbove(meas, l),
				OverFracWindows: trace.FractionAbove(win, l),
				PeakWindowW:     stats.Max(win),
				PeakSampleW:     stats.Max(meas),
			}
			res.Rows = append(res.Rows, row)
			if row.OverFrac > res.Worst.OverFrac {
				res.Worst = row
			}
		}
	}
	return res, nil
}

// Print writes the adherence summary: violating rows only, plus the
// worst case.
func (r *AdherenceResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "PM power-limit adherence (100 ms moving-average windows)\n"); err != nil {
		return err
	}
	n := 0
	for _, row := range r.Rows {
		if row.OverFrac > 0.02 {
			fmt.Fprintf(w, "  %-10s limit %5.1fW: %5.1f%% of run-time over (%4.1f%% of 100ms windows); peak window %5.2fW, peak sample %5.2fW\n",
				row.Name, row.LimitW, row.OverFrac*100, row.OverFracWindows*100, row.PeakWindowW, row.PeakSampleW)
			n++
		}
	}
	if n == 0 {
		fmt.Fprintln(w, "  all benchmarks within limits at all eight limits")
	}
	_, err := fmt.Fprintf(w, "worst: %s at %.1fW, %.1f%% of run-time over (paper: galgel, ~10%% at 13.5W)\n",
		r.Worst.Name, r.Worst.LimitW, r.Worst.OverFrac*100)
	return err
}
