package experiment

// Rendering coverage: every experiment's Print output must carry its
// key rows. Results come from the shared cached context, so these are
// cheap despite exercising the full pipeline.

import (
	"strings"
	"testing"
)

func printed(t *testing.T, p Printable) string {
	t.Helper()
	var sb strings.Builder
	if err := p.Print(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestPrintFig2(t *testing.T) {
	r, err := sharedCtx(t).Fig2PstatePerformance()
	if err != nil {
		t.Fatal(err)
	}
	out := printed(t, r)
	for _, want := range []string{"swim", "gap", "sixtrack", "1600", "2000"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig2 print missing %q", want)
		}
	}
}

func TestPrintTableI(t *testing.T) {
	r, err := sharedCtx(t).TableIMicrobenchmarks()
	if err != nil {
		t.Fatal(err)
	}
	out := printed(t, r)
	for _, want := range []string{"DAXPY-16KB", "FMA-256KB", "MLOAD_RAND-8MB", "CPIcore"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 print missing %q", want)
		}
	}
}

func TestPrintTableIIIAndIV(t *testing.T) {
	t3, err := sharedCtx(t).TableIIIWorstCase()
	if err != nil {
		t.Fatal(err)
	}
	out := printed(t, t3)
	if !strings.Contains(out, "17.78") { // published 2 GHz value
		t.Errorf("table3 print missing paper column:\n%s", out)
	}
	t4, err := sharedCtx(t).TableIVStaticFrequencies()
	if err != nil {
		t.Fatal(err)
	}
	out = printed(t, t4)
	for _, want := range []string{"17.5", "1800", "10.5", "1400"} {
		if !strings.Contains(out, want) {
			t.Errorf("table4 print missing %q", want)
		}
	}
}

func TestPrintFig6(t *testing.T) {
	r, err := sharedCtx(t).Fig6PerfVsPowerLimit()
	if err != nil {
		t.Fatal(err)
	}
	out := printed(t, r)
	if !strings.Contains(out, "PM(dynamic)") || !strings.Contains(out, "static") {
		t.Errorf("fig6 print incomplete:\n%s", out)
	}
	if strings.Count(out, "\n") < 10 {
		t.Errorf("fig6 print too short")
	}
}

func TestPrintFig7(t *testing.T) {
	r, err := sharedCtx(t).Fig7PMSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	out := printed(t, r)
	for _, want := range []string{"crafty", "sixtrack", "possible speedup", "86%"} {
		if !strings.Contains(out, want) {
			t.Errorf("fig7 print missing %q", want)
		}
	}
}

func TestPrintAdherence(t *testing.T) {
	r, err := sharedCtx(t).PMLimitAdherence()
	if err != nil {
		t.Fatal(err)
	}
	out := printed(t, r)
	if !strings.Contains(out, "galgel") || !strings.Contains(out, "13.5") {
		t.Errorf("adherence print missing worst case:\n%s", out)
	}
}

func TestPrintFig10AndFig11IncludeAllBench(t *testing.T) {
	f10, err := sharedCtx(t).Fig10EnergySavings()
	if err != nil {
		t.Fatal(err)
	}
	out := printed(t, f10)
	if strings.Count(out, "ALLBENCH") != 1 {
		t.Errorf("fig10 print ALLBENCH count wrong:\n%s", out)
	}
	// 26 benchmarks + ALLBENCH + header rows.
	if got := strings.Count(out, "%"); got < 26*5 {
		t.Errorf("fig10 print has only %d percent cells", got)
	}
	f11, err := sharedCtx(t).Fig11PerfReduction()
	if err != nil {
		t.Fatal(err)
	}
	out = printed(t, f11)
	if strings.Count(out, "ALLBENCH") != 1 {
		t.Errorf("fig11 print ALLBENCH count wrong")
	}
	if !strings.Contains(out, "floor violations with exponent 0.81") {
		t.Errorf("fig11 print missing violation section")
	}
}

func TestPrintTableII(t *testing.T) {
	r, err := sharedCtx(t).TableIIPowerModel()
	if err != nil {
		t.Fatal(err)
	}
	out := printed(t, r)
	for _, want := range []string{"2.93", "12.11", "eq.3 fit", "overall training MAE"} {
		if !strings.Contains(out, want) {
			t.Errorf("table2 print missing %q", want)
		}
	}
}
