package experiment

import (
	"fmt"
	"io"

	"aapm/internal/control"
	"aapm/internal/counters"
	"aapm/internal/machine"
	"aapm/internal/model"
	"aapm/internal/trace"
)

// CharacterizationResult is the per-benchmark counter-rate table
// behind the paper's Figure 7 discussion: DCU miss-outstanding,
// resource stalls, L2 requests and memory requests per cycle at 2 GHz,
// which explain each workload's frequency sensitivity and power.
type CharacterizationResult struct {
	Rows []CharacterizationRow
}

// CharacterizationRow is one benchmark's counter rates.
type CharacterizationRow struct {
	Name string
	// Per-cycle rates at 2 GHz.
	DPC, IPC, DCU, StallPC, L2PC, MemPC float64
	// DCUPerInst is the eq. 3 classification measure; MemBound is its
	// verdict at the published threshold.
	DCUPerInst float64
	MemBound   bool
	MeanW      float64
}

// WorkloadCharacterization tabulates the counter rates of every suite
// benchmark at 2 GHz.
func (c *Context) WorkloadCharacterization() (*CharacterizationResult, error) {
	names := c.SuiteNames()
	if err := c.forEach(names, func(n string) error {
		_, err := c.RunStatic(n, 2000)
		return err
	}); err != nil {
		return nil, err
	}
	res := &CharacterizationResult{}
	for _, n := range names {
		run, err := c.RunStatic(n, 2000)
		if err != nil {
			return nil, err
		}
		row := CharacterizationRow{
			Name:       n,
			DPC:        avgRow(run, func(r trace.Row) float64 { return r.DPC }),
			IPC:        avgRow(run, func(r trace.Row) float64 { return r.IPC }),
			DCU:        avgRow(run, func(r trace.Row) float64 { return r.DCU }),
			L2PC:       avgRow(run, func(r trace.Row) float64 { return r.L2PC }),
			MemPC:      avgRow(run, func(r trace.Row) float64 { return r.MemPC }),
			DCUPerInst: runDCUPerInst(run),
			MeanW:      meanMeasured(run),
		}
		row.MemBound = row.DCUPerInst >= model.PaperDCUThreshold
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the characterization table.
func (r *CharacterizationResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Workload characterization at 2 GHz (per-cycle counter rates, §IV-A.2 discussion)"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %6s %6s %6s %7s %7s %7s %6s %7s\n",
		"benchmark", "DPC", "IPC", "DCU", "L2PC", "MemPC", "DCU/I", "class", "mean W")
	for _, row := range r.Rows {
		class := "core"
		if row.MemBound {
			class = "mem"
		}
		fmt.Fprintf(w, "%-10s %6.3f %6.3f %6.3f %7.4f %7.4f %7.2f %6s %7.2f\n",
			row.Name, row.DPC, row.IPC, row.DCU, row.L2PC, row.MemPC, row.DCUPerInst, class, row.MeanW)
	}
	return nil
}

// MuxResult quantifies the cost of realistic counter scarcity: PS
// driven through a two-counter PMU that must rotate its events versus
// ideal full-width monitoring.
type MuxResult struct {
	Rows []MuxRow
}

// MuxRow compares ideal vs multiplexed monitoring for one workload.
type MuxRow struct {
	Workload string
	// Loss* and Save* are perf loss / energy savings vs 2 GHz.
	LossIdeal, SaveIdeal float64
	LossMux, SaveMux     float64
	FloorViolatedMux     bool
}

// MultiplexStudy runs PS(80%) on phase-alternating and steady
// workloads with a deliberately starved single-counter PMU (retired
// instructions and DCU stalls rotate), measuring what event staleness
// costs.
func (c *Context) MultiplexStudy() (*MuxResult, error) {
	res := &MuxResult{}
	for _, name := range []string{"ammp", "swim", "crafty"} {
		base, err := c.RunStatic(name, 2000)
		if err != nil {
			return nil, err
		}
		ideal, err := c.RunPS(name, 0.8, model.PaperExponent)
		if err != nil {
			return nil, err
		}
		w, err := c.Workload(name)
		if err != nil {
			return nil, err
		}
		m, err := machine.New(machine.Config{Chain: c.chain, Seed: c.opts.Seed})
		if err != nil {
			return nil, err
		}
		inner, err := control.NewPowerSave(control.PSConfig{Floor: 0.8})
		if err != nil {
			return nil, err
		}
		gov, err := control.NewMultiplexed(inner, 1, []counters.Event{
			counters.InstRetired, counters.DCUMissOutstanding,
		})
		if err != nil {
			return nil, err
		}
		mux, err := m.Run(w, gov)
		if err != nil {
			return nil, err
		}
		row := MuxRow{
			Workload:  name,
			LossIdeal: 1 - base.Duration.Seconds()/ideal.Duration.Seconds(),
			SaveIdeal: 1 - ideal.MeasuredEnergyJ/base.MeasuredEnergyJ,
			LossMux:   1 - base.Duration.Seconds()/mux.Duration.Seconds(),
			SaveMux:   1 - mux.MeasuredEnergyJ/base.MeasuredEnergyJ,
		}
		row.FloorViolatedMux = row.LossMux > 0.20+0.01
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the multiplexing comparison.
func (r *MuxResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "PS(80%) with ideal vs single-counter multiplexed monitoring"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s | %10s %10s | %10s %10s %8s\n",
		"workload", "loss", "save", "mux loss", "mux save", "violates")
	for _, row := range r.Rows {
		v := ""
		if row.FloorViolatedMux {
			v = "YES"
		}
		fmt.Fprintf(w, "%-8s | %9.1f%% %9.1f%% | %9.1f%% %9.1f%% %8s\n",
			row.Workload, row.LossIdeal*100, row.SaveIdeal*100,
			row.LossMux*100, row.SaveMux*100, v)
	}
	return nil
}
