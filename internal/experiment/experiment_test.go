package experiment

import (
	"math"
	"strings"
	"testing"

	"aapm/internal/sensor"
)

// ctx returns a shared full-length context; experiments cache runs so
// the suite cost is paid once per test binary.
func ctx(t *testing.T) *Context {
	t.Helper()
	c, err := NewContext(Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

var shared *Context

func sharedCtx(t *testing.T) *Context {
	t.Helper()
	if shared == nil {
		shared = ctx(t)
	}
	return shared
}

func TestOptionsValidation(t *testing.T) {
	if _, err := NewContext(Options{ScaleDown: -1}); err == nil {
		t.Error("negative ScaleDown accepted")
	}
	if _, err := NewContext(Options{Chain: &badChain}); err == nil {
		t.Error("invalid chain accepted")
	}
}

func TestScaleDownShortensRuns(t *testing.T) {
	full, err := NewContext(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	small, err := NewContext(Options{Seed: 1, ScaleDown: 10})
	if err != nil {
		t.Fatal(err)
	}
	wf, err := full.Workload("swim")
	if err != nil {
		t.Fatal(err)
	}
	ws, err := small.Workload("swim")
	if err != nil {
		t.Fatal(err)
	}
	if ws.Repeats() >= wf.Repeats() {
		t.Errorf("scaled repeats %d not below full %d", ws.Repeats(), wf.Repeats())
	}
	if _, err := full.Workload("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestFig1PowerVariation(t *testing.T) {
	r, err := sharedCtx(t).Fig1PowerVariation()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 26 {
		t.Fatalf("fig1 rows = %d", len(r.Rows))
	}
	// Paper: the range spans over 35% of peak operating power.
	if r.RangeFrac < 0.35 {
		t.Errorf("power range = %.1f%% of peak, want > 35%%", r.RangeFrac*100)
	}
	// galgel has the highest individual samples.
	if r.MaxSampleBench != "galgel" {
		t.Errorf("highest sample from %s, want galgel", r.MaxSampleBench)
	}
	// crafty and perlbmk have the highest average power.
	mean := map[string]float64{}
	for _, row := range r.Rows {
		mean[row.Name] = row.MeanW
	}
	for n, m := range mean {
		if n == "crafty" || n == "perlbmk" {
			continue
		}
		if m > mean["perlbmk"] {
			t.Errorf("%s mean %.2fW above perlbmk %.2fW", n, m, mean["perlbmk"])
		}
	}
	if mean["crafty"] < mean["perlbmk"] {
		t.Errorf("crafty %.2fW below perlbmk %.2fW", mean["crafty"], mean["perlbmk"])
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "galgel") {
		t.Error("print output incomplete")
	}
}

func TestFig2PstatePerformance(t *testing.T) {
	r, err := sharedCtx(t).Fig2PstatePerformance()
	if err != nil {
		t.Fatal(err)
	}
	rel := map[string][]float64{}
	for _, row := range r.Rows {
		rel[row.Name] = row.RelPerf
	}
	// swim nearly flat; sixtrack nearly linear; gap in between.
	if rel["swim"][0] < 0.95 {
		t.Errorf("swim at 1600 = %.3f, want > 0.95 (memory-bound flat)", rel["swim"][0])
	}
	if rel["sixtrack"][0] > 0.83 {
		t.Errorf("sixtrack at 1600 = %.3f, want ~0.80 (linear scaling)", rel["sixtrack"][0])
	}
	if g := rel["gap"][0]; g < rel["sixtrack"][0] || g > rel["swim"][0] {
		t.Errorf("gap at 1600 = %.3f not between sixtrack %.3f and swim %.3f",
			g, rel["sixtrack"][0], rel["swim"][0])
	}
}

func TestTableIII(t *testing.T) {
	r, err := sharedCtx(t).TableIIIWorstCase()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("table III rows = %d", len(r.Rows))
	}
	prev := 0.0
	for _, row := range r.Rows {
		if row.PowerW <= prev {
			t.Errorf("power not increasing at %d MHz", row.FreqMHz)
		}
		prev = row.PowerW
		// Within 20% of the published column (the simulated platform
		// deviates most at the lowest p-states).
		if row.HavePaper && math.Abs(row.DeltaPct) > 20 {
			t.Errorf("%d MHz: %.2fW deviates %.1f%% from paper %.2fW",
				row.FreqMHz, row.PowerW, row.DeltaPct, row.PaperW)
		}
	}
}

func TestTableIVMatchesPaperExactly(t *testing.T) {
	r, err := sharedCtx(t).TableIVStaticFrequencies()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range r.Rows {
		if row.FreqMHz != row.PaperMHz {
			t.Errorf("limit %.1fW -> %d MHz, paper says %d", row.LimitW, row.FreqMHz, row.PaperMHz)
		}
	}
	if _, err := r.StaticFreqFor(9.0); err == nil {
		t.Error("unknown limit accepted")
	}
}

func TestFig6DynamicBeatsStatic(t *testing.T) {
	r, err := sharedCtx(t).Fig6PerfVsPowerLimit()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 8 {
		t.Fatalf("fig6 rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.NormPerfPM <= row.NormPerfStatic {
			t.Errorf("limit %.1fW: PM %.4f not above static %.4f",
				row.LimitW, row.NormPerfPM, row.NormPerfStatic)
		}
		if row.NormPerfPM > 1.0+1e-9 {
			t.Errorf("limit %.1fW: PM normalized perf %.4f above unconstrained", row.LimitW, row.NormPerfPM)
		}
	}
	// Performance decreases as the limit tightens.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].NormPerfPM > r.Rows[i-1].NormPerfPM+1e-6 {
			t.Errorf("PM performance not monotone across limits at %.1fW", r.Rows[i].LimitW)
		}
	}
}

func TestFig7FractionOfPossibleSpeedup(t *testing.T) {
	r, err := sharedCtx(t).Fig7PMSpeedup()
	if err != nil {
		t.Fatal(err)
	}
	// Paper headline: 86% of the possible speedup at the 17.5 W limit.
	if r.FractionOfPossible < 0.75 || r.FractionOfPossible > 0.97 {
		t.Errorf("fraction of possible speedup = %.0f%%, paper reports 86%%", r.FractionOfPossible*100)
	}
	// Rows are sorted by unconstrained speedup: swim-like first,
	// sixtrack-like last.
	if len(r.Rows) != 26 {
		t.Fatalf("fig7 rows = %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].SpeedupMax < r.Rows[i-1].SpeedupMax-1e-9 {
			t.Errorf("rows not sorted at %d", i)
		}
	}
	byName := map[string]Fig7Row{}
	for _, row := range r.Rows {
		byName[row.Name] = row
	}
	// crafty is power-limited: PM gives it almost none of its possible
	// ~11% speedup. sixtrack is not: PM gives nearly all of it.
	if byName["crafty"].SpeedupPM > 0.03 {
		t.Errorf("crafty PM speedup = %.1f%%, want ~0 (power-limited)", byName["crafty"].SpeedupPM*100)
	}
	if byName["sixtrack"].SpeedupPM < 0.09 {
		t.Errorf("sixtrack PM speedup = %.1f%%, want ~11%%", byName["sixtrack"].SpeedupPM*100)
	}
}

func TestPMLimitAdherence(t *testing.T) {
	r, err := sharedCtx(t).PMLimitAdherence()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 26*8 {
		t.Fatalf("adherence rows = %d", len(r.Rows))
	}
	// Paper: every benchmark within limits except galgel, worst at the
	// 13.5 W limit.
	if r.Worst.Name != "galgel" {
		t.Errorf("worst offender = %s, want galgel", r.Worst.Name)
	}
	if r.Worst.LimitW != 13.5 {
		t.Errorf("worst limit = %.1fW, want 13.5", r.Worst.LimitW)
	}
	if r.Worst.OverFrac < 0.02 || r.Worst.OverFrac > 0.2 {
		t.Errorf("galgel over-limit fraction = %.1f%%, paper ~10%%", r.Worst.OverFrac*100)
	}
	for _, row := range r.Rows {
		if row.Name == "galgel" {
			continue
		}
		if row.OverFrac > 0.03 {
			t.Errorf("%s at %.1fW over limit %.1f%% of run-time; paper says only galgel violates",
				row.Name, row.LimitW, row.OverFrac*100)
		}
	}
}

func TestFig5Timeline(t *testing.T) {
	r, err := sharedCtx(t).Fig5PMTimeline()
	if err != nil {
		t.Fatal(err)
	}
	// PM at tighter limits: lower average power, longer runtime.
	if !(r.PM105.AvgPowerW() < r.PM145.AvgPowerW() && r.PM145.AvgPowerW() < r.Unconstrained.AvgPowerW()) {
		t.Errorf("avg powers not ordered: %.2f / %.2f / %.2f",
			r.PM105.AvgPowerW(), r.PM145.AvgPowerW(), r.Unconstrained.AvgPowerW())
	}
	if !(r.PM105.Duration > r.PM145.Duration && r.PM145.Duration >= r.Unconstrained.Duration) {
		t.Errorf("durations not ordered: %v / %v / %v",
			r.PM105.Duration, r.PM145.Duration, r.Unconstrained.Duration)
	}
	// The PM runs modulate frequency with ammp's phases.
	if r.PM145.Transitions < 4 {
		t.Errorf("PM 14.5W made only %d transitions; expected phase-driven modulation", r.PM145.Transitions)
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestFig8PSTimeline(t *testing.T) {
	r, err := sharedCtx(t).Fig8PSTimeline()
	if err != nil {
		t.Fatal(err)
	}
	loss := 1 - r.Unconstrained.Duration.Seconds()/r.PS80.Duration.Seconds()
	if loss > 0.20+0.01 {
		t.Errorf("ammp PS(80%%) loss = %.1f%%, exceeds floor", loss*100)
	}
	if save := 1 - r.PS80.MeasuredEnergyJ/r.Unconstrained.MeasuredEnergyJ; save < 0.15 {
		t.Errorf("ammp PS(80%%) savings = %.1f%%, want substantial", save*100)
	}
	// PS modulates between low (memory phase) and higher (core phase)
	// frequencies.
	freqs := map[float64]bool{}
	for _, f := range r.PS80.Freqs() {
		freqs[f] = true
	}
	if !freqs[800] || !freqs[1600] {
		t.Errorf("PS(80%%) frequencies = %v, want 800 and 1600 residency", freqs)
	}
}

func TestFig9SuiteCompliance(t *testing.T) {
	r, err := sharedCtx(t).Fig9PSSuite()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("fig9 rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if row.Violated {
			t.Errorf("suite-level floor %.0f%% violated: loss %.1f%%", row.Floor*100, row.PerfReduction*100)
		}
		if row.EnergySavings <= 0 {
			t.Errorf("floor %.0f%%: no energy savings", row.Floor*100)
		}
	}
	// Lower floors allow more loss and more savings.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].PerfReduction < r.Rows[i-1].PerfReduction ||
			r.Rows[i].EnergySavings < r.Rows[i-1].EnergySavings {
			t.Errorf("fig9 rows not monotone at floor %.0f%%", r.Rows[i].Floor*100)
		}
	}
	// The 600 MHz bound dominates every floor's savings.
	if r.MinFreq.EnergySavings < r.Rows[len(r.Rows)-1].EnergySavings {
		t.Errorf("600 MHz savings %.1f%% below lowest floor's %.1f%%",
			r.MinFreq.EnergySavings*100, r.Rows[len(r.Rows)-1].EnergySavings*100)
	}
}

func TestFig10EnergySavingsOrdering(t *testing.T) {
	r, err := sharedCtx(t).Fig10EnergySavings()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 26 {
		t.Fatalf("fig10 rows = %d", len(r.Rows))
	}
	// Sorted by the 600 MHz bound, descending.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].At600 > r.Rows[i-1].At600+1e-9 {
			t.Errorf("rows not sorted at %d", i)
		}
	}
	pos := map[string]int{}
	for i, row := range r.Rows {
		pos[row.Name] = i
	}
	// Memory-bound workloads save the most; core-bound the least
	// (paper Fig 10: swim... on the left, eon/sixtrack/crafty right).
	for _, memName := range []string{"swim", "mcf"} {
		for _, coreName := range []string{"eon", "sixtrack", "crafty", "mesa"} {
			if pos[memName] > pos[coreName] {
				t.Errorf("%s (memory) saves less than %s (core)", memName, coreName)
			}
		}
	}
}

func TestFig11ViolationsAndAblation(t *testing.T) {
	r, err := sharedCtx(t).Fig11PerfReduction()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: art and mcf violate at the 80% floor with exponent 0.81;
	// no other benchmark violates significantly.
	var artV, mcfV *Violation
	for i := range r.Violations {
		v := &r.Violations[i]
		if v.Floor == 0.80 {
			switch v.Name {
			case "art":
				artV = v
			case "mcf":
				mcfV = v
			default:
				t.Errorf("unexpected 80%%-floor violator %s (%.1f%%)", v.Name, v.Reduction081*100)
			}
		}
	}
	if artV == nil || mcfV == nil {
		t.Fatalf("missing art/mcf violations: %+v", r.Violations)
	}
	// Paper: art 42.2%, mcf 27.7% at the 80% floor.
	if math.Abs(artV.Reduction081-0.422) > 0.06 {
		t.Errorf("art reduction = %.1f%%, paper 42.2%%", artV.Reduction081*100)
	}
	if math.Abs(mcfV.Reduction081-0.277) > 0.05 {
		t.Errorf("mcf reduction = %.1f%%, paper 27.7%%", mcfV.Reduction081*100)
	}
	// With exponent 0.59, mcf becomes compliant and art improves
	// substantially (paper: 17.9% and 26.3%).
	if mcfV.Reduction059 > 0.20 {
		t.Errorf("mcf with e=0.59 = %.1f%%, want compliant (< 20%%)", mcfV.Reduction059*100)
	}
	if artV.Reduction059 > artV.Reduction081-0.10 {
		t.Errorf("art with e=0.59 = %.1f%%, want ~16pt better than %.1f%%",
			artV.Reduction059*100, artV.Reduction081*100)
	}
}

func TestFloorsAndLimitsConstants(t *testing.T) {
	if len(PowerLimits()) != 8 || PowerLimits()[0] != 17.5 || PowerLimits()[7] != 10.5 {
		t.Errorf("PowerLimits = %v", PowerLimits())
	}
	if len(Floors()) != 4 || Floors()[0] != 0.80 || Floors()[3] != 0.20 {
		t.Errorf("Floors = %v", Floors())
	}
}

// badChain is an invalid measurement chain for option validation.
var badChain = sensor.Chain{NoiseStdW: -1}
