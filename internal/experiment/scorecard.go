package experiment

import (
	"fmt"
	"io"
	"math"

	"aapm/internal/paperref"
)

// Scorecard is the reproduction's self-assessment: every headline
// claim of the paper, the published value, the measured value, and a
// verdict under an explicit tolerance. `aapm-eval -exp scorecard`
// regenerates it; TestScorecardAllPass pins it in CI.
type Scorecard struct {
	Rows []ScoreRow
}

// ScoreRow is one claim's comparison.
type ScoreRow struct {
	Claim    string
	Paper    float64
	Measured float64
	// Tolerance is the absolute allowance on the measured value;
	// Pass reports whether |measured-paper| <= tolerance (or, for
	// qualitative rows, whether the condition held).
	Tolerance   float64
	Pass        bool
	Qualitative bool
	// Note carries the qualitative condition's description.
	Note string
}

func (s *Scorecard) add(claim string, paper, measured, tol float64) {
	s.Rows = append(s.Rows, ScoreRow{
		Claim: claim, Paper: paper, Measured: measured, Tolerance: tol,
		Pass: math.Abs(measured-paper) <= tol,
	})
}

func (s *Scorecard) addQual(claim, note string, pass bool) {
	s.Rows = append(s.Rows, ScoreRow{Claim: claim, Qualitative: true, Note: note, Pass: pass})
}

// Passed reports whether every row passed.
func (s *Scorecard) Passed() bool {
	for _, r := range s.Rows {
		if !r.Pass {
			return false
		}
	}
	return true
}

// PaperComparison computes the scorecard from the evaluation results.
func (c *Context) PaperComparison() (*Scorecard, error) {
	sc := &Scorecard{}

	fig1, err := c.Fig1PowerVariation()
	if err != nil {
		return nil, err
	}
	sc.addQual("Fig 1: power range exceeds 35% of peak",
		fmt.Sprintf("measured %.1f%%", fig1.RangeFrac*100), fig1.RangeFrac > 0.35)
	sc.addQual("Fig 1: galgel has the highest individual samples",
		fig1.MaxSampleBench, fig1.MaxSampleBench == "galgel")

	t4, err := c.TableIVStaticFrequencies()
	if err != nil {
		return nil, err
	}
	allMatch := true
	for _, row := range t4.Rows {
		if row.FreqMHz != row.PaperMHz {
			allMatch = false
		}
	}
	sc.addQual("Table IV: static frequency at all 8 limits", "derived = published", allMatch)

	fig7, err := c.Fig7PMSpeedup()
	if err != nil {
		return nil, err
	}
	sc.add("Fig 7: PM fraction of possible speedup at 17.5 W",
		paperref.PMFractionOfPossibleSpeedup, fig7.FractionOfPossible, 0.08)

	adh, err := c.PMLimitAdherence()
	if err != nil {
		return nil, err
	}
	sc.addQual("Adherence: galgel is the only significant violator, worst at 13.5 W",
		fmt.Sprintf("worst: %s at %.1f W", adh.Worst.Name, adh.Worst.LimitW),
		adh.Worst.Name == "galgel" && adh.Worst.LimitW == 13.5)
	sc.add("Adherence: galgel's worst over-limit run-time fraction",
		paperref.GalgelOverFracAt135, adh.Worst.OverFrac, 0.05)

	fig9, err := c.Fig9PSSuite()
	if err != nil {
		return nil, err
	}
	compliant := true
	for _, row := range fig9.Rows {
		if row.Violated {
			compliant = false
		}
	}
	sc.addQual("Fig 9: PS meets every suite-level floor", "all four floors", compliant)
	sc.add("Fig 9: suite loss at the 60% floor",
		paperref.PSLossAt60Floor, fig9.Rows[1].PerfReduction, 0.05)
	sc.add("Fig 9: suite savings at the 80% floor",
		paperref.PSSavingsAt80Floor, fig9.Rows[0].EnergySavings, 0.12)

	fig11, err := c.Fig11PerfReduction()
	if err != nil {
		return nil, err
	}
	var art80, mcf80 *Violation
	extra := false
	for i := range fig11.Violations {
		v := &fig11.Violations[i]
		if v.Floor != 0.80 {
			continue
		}
		switch v.Name {
		case "art":
			art80 = v
		case "mcf":
			mcf80 = v
		default:
			extra = true
		}
	}
	sc.addQual("Fig 11: art and mcf are the only 80%-floor violators",
		fmt.Sprintf("%d violations recorded", len(fig11.Violations)),
		art80 != nil && mcf80 != nil && !extra)
	if art80 != nil {
		sc.add("Fig 11: art loss at 80% floor (e=0.81)", paperref.ArtLossAt80, art80.Reduction081, 0.05)
		sc.add("Fig 11: art loss at 80% floor (e=0.59)", paperref.ArtLossAt80Alt, art80.Reduction059, 0.05)
	}
	if mcf80 != nil {
		sc.add("Fig 11: mcf loss at 80% floor (e=0.81)", paperref.McfLossAt80, mcf80.Reduction081, 0.05)
		sc.add("Fig 11: mcf loss at 80% floor (e=0.59)", paperref.McfLossAt80Alt, mcf80.Reduction059, 0.05)
		sc.addQual("Fig 11: exponent 0.59 repairs mcf's floor",
			fmt.Sprintf("loss %.1f%%", mcf80.Reduction059*100), mcf80.Reduction059 <= 0.20)
	}
	return sc, nil
}

// Print writes the scorecard.
func (s *Scorecard) Print(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Reproduction scorecard (paper vs measured)"); err != nil {
		return err
	}
	for _, r := range s.Rows {
		mark := "PASS"
		if !r.Pass {
			mark = "FAIL"
		}
		if r.Qualitative {
			fmt.Fprintf(w, "  [%s] %-58s %s\n", mark, r.Claim, r.Note)
			continue
		}
		fmt.Fprintf(w, "  [%s] %-58s paper %6.3f measured %6.3f (tol %.3f)\n",
			mark, r.Claim, r.Paper, r.Measured, r.Tolerance)
	}
	verdict := "ALL CLAIMS REPRODUCED"
	if !s.Passed() {
		verdict = "SOME CLAIMS NOT REPRODUCED"
	}
	_, err := fmt.Fprintf(w, "verdict: %s\n", verdict)
	return err
}
