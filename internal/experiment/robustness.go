package experiment

import (
	"fmt"
	"io"

	"aapm/internal/control"
	"aapm/internal/machine"
	"aapm/internal/stats"
	"aapm/internal/trace"
)

// SeedResult reports how the headline metrics move across simulation
// seeds — the reproduction's answer to "is this one lucky run?".
type SeedResult struct {
	Seeds []int64
	Rows  []SeedRow
}

// SeedRow is one metric's distribution over seeds.
type SeedRow struct {
	Metric     string
	Values     []float64
	Mean, Std  float64
	MinV, MaxV float64
}

// SeedSensitivity recomputes three headline metrics on fresh contexts
// across five seeds: PM's fraction of possible speedup, galgel's
// over-limit fraction at 13.5 W, and art's 80%-floor loss.
func (c *Context) SeedSensitivity() (*SeedResult, error) {
	seeds := []int64{c.opts.Seed, c.opts.Seed + 101, c.opts.Seed + 202, c.opts.Seed + 303, c.opts.Seed + 404}
	res := &SeedResult{Seeds: seeds}
	metrics := map[string][]float64{}
	for _, seed := range seeds {
		opts := c.opts
		opts.Seed = seed
		ctx, err := NewContext(opts)
		if err != nil {
			return nil, err
		}
		fig7, err := ctx.Fig7PMSpeedup()
		if err != nil {
			return nil, err
		}
		metrics["PM fraction of possible speedup"] = append(metrics["PM fraction of possible speedup"], fig7.FractionOfPossible)

		galgel, err := ctx.RunPM("galgel", 13.5)
		if err != nil {
			return nil, err
		}
		metrics["galgel over-limit fraction at 13.5W"] = append(metrics["galgel over-limit fraction at 13.5W"],
			trace.FractionAbove(galgel.MeasuredPowers(), 13.5))

		base, err := ctx.RunStatic("art", 2000)
		if err != nil {
			return nil, err
		}
		ps, err := ctx.RunPS("art", 0.8, 0.81)
		if err != nil {
			return nil, err
		}
		metrics["art loss at 80% floor (e=0.81)"] = append(metrics["art loss at 80% floor (e=0.81)"],
			1-base.Duration.Seconds()/ps.Duration.Seconds())
	}
	for _, name := range []string{
		"PM fraction of possible speedup",
		"galgel over-limit fraction at 13.5W",
		"art loss at 80% floor (e=0.81)",
	} {
		vals := metrics[name]
		res.Rows = append(res.Rows, SeedRow{
			Metric: name,
			Values: vals,
			Mean:   stats.Mean(vals),
			Std:    stats.StdDev(vals),
			MinV:   stats.Min(vals),
			MaxV:   stats.Max(vals),
		})
	}
	return res, nil
}

// Print writes the seed-sensitivity table.
func (r *SeedResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Seed sensitivity over %d seeds\n", len(r.Seeds)); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-38s %8s %8s %8s %8s\n", "metric", "mean", "std", "min", "max")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-38s %8.3f %8.4f %8.3f %8.3f\n",
			row.Metric, row.Mean, row.Std, row.MinV, row.MaxV)
	}
	return nil
}

// GuardbandSweepResult is the PM guardband sensitivity surface on the
// hardest workload: over-limit time and performance per (guardband,
// limit) cell.
type GuardbandSweepResult struct {
	Guardbands []float64
	Limits     []float64
	// OverFrac[i][j] and NormPerf[i][j] index [guardband][limit].
	OverFrac [][]float64
	NormPerf [][]float64
}

// GuardbandSweep sweeps the PM guardband on galgel across all limits —
// the two-dimensional view behind the paper's single 0.5 W choice.
func (c *Context) GuardbandSweep() (*GuardbandSweepResult, error) {
	res := &GuardbandSweepResult{
		Guardbands: []float64{-1, 0.25, 0.5, 1.0}, // -1 = disabled
		Limits:     PowerLimits(),
	}
	base, err := c.RunStatic("galgel", 2000)
	if err != nil {
		return nil, err
	}
	w, err := c.Workload("galgel")
	if err != nil {
		return nil, err
	}
	for _, gb := range res.Guardbands {
		var overs, perfs []float64
		for _, limit := range res.Limits {
			m, err := machine.New(machine.Config{Chain: c.chain, Seed: c.opts.Seed})
			if err != nil {
				return nil, err
			}
			pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: limit, GuardbandW: gb})
			if err != nil {
				return nil, err
			}
			run, err := m.Run(w, pm)
			if err != nil {
				return nil, err
			}
			overs = append(overs, trace.FractionAbove(run.MeasuredPowers(), limit))
			perfs = append(perfs, base.Duration.Seconds()/run.Duration.Seconds())
		}
		res.OverFrac = append(res.OverFrac, overs)
		res.NormPerf = append(res.NormPerf, perfs)
	}
	return res, nil
}

// Print writes the sweep as two small matrices.
func (r *GuardbandSweepResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "PM guardband sweep on galgel (rows: guardband, cols: power limit)"); err != nil {
		return err
	}
	header := func() {
		fmt.Fprintf(w, "%10s", "")
		for _, l := range r.Limits {
			fmt.Fprintf(w, " %6.1fW", l)
		}
		fmt.Fprintln(w)
	}
	label := func(gb float64) string {
		if gb < 0 {
			return "off"
		}
		return fmt.Sprintf("%.2fW", gb)
	}
	fmt.Fprintln(w, "over-limit run-time fraction (%):")
	header()
	for i, gb := range r.Guardbands {
		fmt.Fprintf(w, "%10s", label(gb))
		for _, v := range r.OverFrac[i] {
			fmt.Fprintf(w, " %6.1f%%", v*100)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "performance relative to unconstrained 2 GHz (%):")
	header()
	for i, gb := range r.Guardbands {
		fmt.Fprintf(w, "%10s", label(gb))
		for _, v := range r.NormPerf[i] {
			fmt.Fprintf(w, " %6.1f%%", v*100)
		}
		fmt.Fprintln(w)
	}
	return nil
}
