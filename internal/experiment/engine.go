package experiment

import (
	"fmt"
	"io"
	"time"

	"aapm/internal/control"
	"aapm/internal/machine"
	"aapm/internal/metrics"
	"aapm/internal/model"
)

// EngineRow is one policy's aggregated engine counters on the probe
// workload.
type EngineRow struct {
	Policy            string
	Ticks             int
	Transitions       int
	FailedTransitions int
	StallMs           float64
	EnergyJ           float64
	AvgPowerW         float64
	Violations        int
	Degradations      int
}

// EngineMetricsResult reports the staged tick engine's per-run
// counters — collected through the Hook bus, not the trace — for the
// probe workload under the paper's three canonical policies.
type EngineMetricsResult struct {
	Workload string
	LimitW   float64
	Rows     []EngineRow
}

// Print renders the counters table.
func (r *EngineMetricsResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Engine metrics on %s (Hook-bus collectors; PM limit %.1f W):\n", r.Workload, r.LimitW); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-14s %7s %6s %6s %9s %9s %7s %6s %6s\n",
		"policy", "ticks", "trans", "fail", "stall-ms", "energy-J", "avg-W", "viol", "degr"); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if _, err := fmt.Fprintf(w, "%-14s %7d %6d %6d %9.1f %9.1f %7.2f %6d %6d\n",
			row.Policy, row.Ticks, row.Transitions, row.FailedTransitions,
			row.StallMs, row.EnergyJ, row.AvgPowerW, row.Violations, row.Degradations); err != nil {
			return err
		}
	}
	return nil
}

// EngineMetrics runs the probe workload under unconstrained, PM and PS
// policies with a metrics.Collector subscribed to each session's Hook
// bus and reports the aggregated counters. It demonstrates (and pins
// under test) that per-run accounting flows through the observer bus
// rather than through trace post-processing.
func (c *Context) EngineMetrics() (*EngineMetricsResult, error) {
	const workload = "ammp"
	const limitW = 14.5
	w, err := c.Workload(workload)
	if err != nil {
		return nil, err
	}
	res := &EngineMetricsResult{Workload: workload, LimitW: limitW}
	type policy struct {
		name   string
		limitW float64 // violation threshold for the collector; 0 = off
		mk     func() (machine.Governor, error)
	}
	policies := []policy{
		{"unconstrained", 0, func() (machine.Governor, error) { return nil, nil }},
		{fmt.Sprintf("pm%.1f", limitW), limitW, func() (machine.Governor, error) {
			return control.NewPerformanceMaximizer(control.PMConfig{LimitW: limitW})
		}},
		{"ps0.80", 0, func() (machine.Governor, error) {
			return control.NewPowerSave(control.PSConfig{
				Floor: 0.8,
				Perf:  model.PerfModel{Threshold: model.PaperDCUThreshold, Exponent: model.PaperExponent},
			})
		}},
	}
	for _, p := range policies {
		m, err := machine.New(machine.Config{Chain: c.chain, Seed: c.opts.Seed})
		if err != nil {
			return nil, err
		}
		g, err := p.mk()
		if err != nil {
			return nil, err
		}
		col := &metrics.Collector{LimitW: p.limitW}
		if _, err := m.RunWith(w, g, col); err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, EngineRow{
			Policy:            p.name,
			Ticks:             col.Ticks,
			Transitions:       col.Transitions,
			FailedTransitions: col.FailedTransitions,
			StallMs:           float64(col.StallTime) / float64(time.Millisecond),
			EnergyJ:           col.EnergyJ,
			AvgPowerW:         col.AvgPowerW(),
			Violations:        col.Violations,
			Degradations:      col.Degradations,
		})
	}
	return res, nil
}
