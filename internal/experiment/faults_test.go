package experiment

import (
	"strings"
	"testing"

	"aapm/internal/control"
	"aapm/internal/faults"
	"aapm/internal/machine"
	"aapm/internal/trace"
)

// The ISSUE's acceptance criterion: under a 5% sensor-dropout plan at
// an identical seed, PM with graceful degradation must keep its
// limit-violation fraction (judged on ground-truth power) strictly
// below naive PM's.
func TestPMDegradationBeatsNaiveUnderDropout(t *testing.T) {
	c, err := NewContext(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Sensor: faults.SensorPlan{DropoutProb: 0.05, DropoutTicks: 10}}
	const limit = 13.5
	run := func(degrade bool) *trace.Run {
		r, err := c.runFaulted("galgel", plan, func() (machine.Governor, error) {
			return control.NewPerformanceMaximizer(control.PMConfig{LimitW: limit, Degrade: degrade})
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	naive := run(false)
	degraded := run(true)
	nv := trace.FractionAbove(naive.TruePowers(), limit)
	dv := trace.FractionAbove(degraded.TruePowers(), limit)
	t.Logf("naive violation %.3f%%, degraded %.3f%%", nv*100, dv*100)
	if !(dv < nv) {
		t.Fatalf("degraded PM violation fraction %.4f not strictly below naive %.4f", dv, nv)
	}
	if degraded.DegradationTotal() == 0 {
		t.Fatal("degraded run logged no degradation events")
	}
	if degraded.DegradationCounts["pm/sensor-dropout"] == 0 {
		t.Fatalf("no pm/sensor-dropout responses logged: %v", degraded.DegradationCounts)
	}
}

// PS with degradation must keep delivering what a clean PS delivers
// when counter misses starve the projection, where naive PS misreads
// zero samples as idle and sinks toward minimum frequency. (The floor
// itself is a guarantee on projected performance — art is the paper's
// known case where true performance lands below it even when clean.)
func TestPSDegradationHoldsFloorUnderCounterMiss(t *testing.T) {
	c, err := NewContext(Options{Seed: 1, ScaleDown: 4})
	if err != nil {
		t.Fatal(err)
	}
	base, err := c.RunStatic("art", 2000)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := c.RunPS("art", 0.8, 0.81)
	if err != nil {
		t.Fatal(err)
	}
	plan := faults.Plan{Counter: faults.CounterPlan{MissProb: 0.3}}
	const floor = 0.8
	run := func(degrade bool) *trace.Run {
		r, err := c.runFaulted("art", plan, func() (machine.Governor, error) {
			return control.NewPowerSave(control.PSConfig{Floor: floor, Degrade: degrade})
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	perf := func(r *trace.Run) float64 {
		return (r.Instructions / r.Duration.Seconds()) / (base.Instructions / base.Duration.Seconds())
	}
	cleanPerf := perf(clean)
	naive := perf(run(false))
	degraded := perf(run(true))
	t.Logf("clean PS %.1f%%, naive faulted %.1f%%, degraded faulted %.1f%% of peak", cleanPerf*100, naive*100, degraded*100)
	if degraded <= naive {
		t.Fatalf("degraded PS perf %.3f not above naive %.3f under 30%% counter miss", degraded, naive)
	}
	if degraded < cleanPerf-0.03 {
		t.Fatalf("degraded PS perf %.3f fell more than 3pp below clean PS %.3f", degraded, cleanPerf)
	}
}

func TestFaultSweepRunsScaledDown(t *testing.T) {
	c, err := NewContext(Options{Seed: 5, ScaleDown: 12})
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.FaultSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PM) != len(FaultRates()) || len(res.PS) != len(FaultRates()) {
		t.Fatalf("rows: PM %d PS %d, want %d", len(res.PM), len(res.PS), len(FaultRates()))
	}
	if res.PM[0].NaiveEvents != 0 || res.PM[0].DegradedEvents != 0 {
		t.Fatalf("clean rate logged events: %+v", res.PM[0])
	}
	last := res.PM[len(res.PM)-1]
	if last.DegradedEvents == 0 {
		t.Fatalf("10%% dropout logged no events: %+v", last)
	}
	var sb strings.Builder
	if err := res.Print(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"galgel", "art", "naive viol", "degr perf"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Print output missing %q", want)
		}
	}
}

func TestFaultsRegistered(t *testing.T) {
	for _, e := range Registry() {
		if e.Name == "faults" {
			return
		}
	}
	t.Fatal("faults experiment not in registry")
}
