package experiment

import (
	"fmt"
	"io"

	"aapm/internal/control"
	"aapm/internal/faults"
	"aapm/internal/machine"
	"aapm/internal/trace"
)

// FaultRates are the per-interval fault rates the robustness sweep
// evaluates; 0 is the clean reference point.
func FaultRates() []float64 { return []float64{0, 0.01, 0.02, 0.05, 0.10} }

// FaultRow compares a naive governor against its degradation-enabled
// variant at one fault rate. Both run on the identical seed, so they
// observe the same environment fault timeline.
type FaultRow struct {
	Rate float64
	// Viol is the governor's limit metric: for PM, the fraction of
	// intervals whose TRUE power exceeds the limit; for PS, the
	// shortfall below the performance floor (0 when the floor holds).
	NaiveViol, DegradedViol float64
	// Perf is performance relative to the clean unconstrained run.
	NaivePerf, DegradedPerf float64
	// Events is the run's total degradation-log entries (injected
	// faults plus governor responses).
	NaiveEvents, DegradedEvents int
}

// FaultSweepResult is the robustness experiment: how the PM and PS
// governors hold their guarantees as fault rates rise, with and
// without graceful degradation.
type FaultSweepResult struct {
	PMWorkload string
	LimitW     float64
	PM         []FaultRow

	PSWorkload string
	Floor      float64
	PS         []FaultRow
}

// runFaulted executes workload under the factory's governor on a fresh
// machine with the given fault plan. Faulted runs are not cached: the
// run cache keys don't encode plans, and the sweep visits each
// configuration once.
func (c *Context) runFaulted(workload string, plan faults.Plan, f govFactory) (*trace.Run, error) {
	w, err := c.Workload(workload)
	if err != nil {
		return nil, err
	}
	m, err := machine.New(machine.Config{Chain: c.chain, Seed: c.opts.Seed, Faults: &plan})
	if err != nil {
		return nil, err
	}
	g, err := f()
	if err != nil {
		return nil, err
	}
	return m.Run(w, g)
}

// FaultSweep sweeps fault rates over the hardest PM workload (galgel
// at 13.5 W under sensor dropout) and a memory-bound PS workload (art
// at the 80% floor under counter misses), comparing each naive
// governor to its degradation-enabled variant at identical seeds.
// Violations are judged against ground-truth power — faults corrupt
// only what governors observe.
func (c *Context) FaultSweep() (*FaultSweepResult, error) {
	const (
		pmWorkload = "galgel"
		limitW     = 13.5
		psWorkload = "art"
		floor      = 0.8
	)
	res := &FaultSweepResult{
		PMWorkload: pmWorkload, LimitW: limitW,
		PSWorkload: psWorkload, Floor: floor,
		PM: make([]FaultRow, len(FaultRates())),
		PS: make([]FaultRow, len(FaultRates())),
	}
	pmBase, err := c.RunStatic(pmWorkload, 2000)
	if err != nil {
		return nil, err
	}
	psBase, err := c.RunStatic(psWorkload, 2000)
	if err != nil {
		return nil, err
	}
	pmGov := func(degrade bool) govFactory {
		return func() (machine.Governor, error) {
			return control.NewPerformanceMaximizer(control.PMConfig{LimitW: limitW, Degrade: degrade})
		}
	}
	psGov := func(degrade bool) govFactory {
		return func() (machine.Governor, error) {
			return control.NewPowerSave(control.PSConfig{Floor: floor, Degrade: degrade})
		}
	}
	rates := FaultRates()
	err = c.forEachN(len(rates), func(i int) error {
		rate := rates[i]
		// PM: sensor dropout episodes hide measured power from the
		// governor while it keeps controlling near the limit.
		pmPlan := faults.Plan{Sensor: faults.SensorPlan{DropoutProb: rate, DropoutTicks: 10}}
		// PS: missed counter reads starve the performance projection.
		psPlan := faults.Plan{Counter: faults.CounterPlan{MissProb: rate}}

		row := FaultRow{Rate: rate}
		for _, v := range []struct {
			degrade bool
			viol    *float64
			perf    *float64
			events  *int
		}{
			{false, &row.NaiveViol, &row.NaivePerf, &row.NaiveEvents},
			{true, &row.DegradedViol, &row.DegradedPerf, &row.DegradedEvents},
		} {
			run, err := c.runFaulted(pmWorkload, pmPlan, pmGov(v.degrade))
			if err != nil {
				return err
			}
			*v.viol = trace.FractionAbove(run.TruePowers(), limitW)
			*v.perf = run.Instructions / run.Duration.Seconds() /
				(pmBase.Instructions / pmBase.Duration.Seconds())
			*v.events = run.DegradationTotal()
		}
		res.PM[i] = row

		row = FaultRow{Rate: rate}
		for _, v := range []struct {
			degrade bool
			viol    *float64
			perf    *float64
			events  *int
		}{
			{false, &row.NaiveViol, &row.NaivePerf, &row.NaiveEvents},
			{true, &row.DegradedViol, &row.DegradedPerf, &row.DegradedEvents},
		} {
			run, err := c.runFaulted(psWorkload, psPlan, psGov(v.degrade))
			if err != nil {
				return err
			}
			perf := run.Instructions / run.Duration.Seconds() /
				(psBase.Instructions / psBase.Duration.Seconds())
			*v.perf = perf
			if short := floor - perf; short > 0 {
				*v.viol = short
			}
			*v.events = run.DegradationTotal()
		}
		res.PS[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Print writes the two robustness tables.
func (r *FaultSweepResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Governor robustness under injected faults (naive vs degraded, identical seeds)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "PM on %s at %.1f W, sensor-dropout plan; violation = true power over limit\n", r.PMWorkload, r.LimitW)
	fmt.Fprintf(w, "%6s %12s %12s %11s %11s %9s %9s\n",
		"rate", "naive viol", "degr viol", "naive perf", "degr perf", "naive ev", "degr ev")
	for _, row := range r.PM {
		fmt.Fprintf(w, "%5.0f%% %11.2f%% %11.2f%% %10.1f%% %10.1f%% %9d %9d\n",
			row.Rate*100, row.NaiveViol*100, row.DegradedViol*100,
			row.NaivePerf*100, row.DegradedPerf*100, row.NaiveEvents, row.DegradedEvents)
	}
	fmt.Fprintf(w, "PS on %s at the %.0f%% floor, counter-miss plan; violation = shortfall below floor\n", r.PSWorkload, r.Floor*100)
	fmt.Fprintf(w, "%6s %12s %12s %11s %11s %9s %9s\n",
		"rate", "naive viol", "degr viol", "naive perf", "degr perf", "naive ev", "degr ev")
	for _, row := range r.PS {
		fmt.Fprintf(w, "%5.0f%% %11.2f%% %11.2f%% %10.1f%% %10.1f%% %9d %9d\n",
			row.Rate*100, row.NaiveViol*100, row.DegradedViol*100,
			row.NaivePerf*100, row.DegradedPerf*100, row.NaiveEvents, row.DegradedEvents)
	}
	return nil
}
