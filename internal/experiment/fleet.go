package experiment

import (
	"fmt"
	"io"
	"time"

	"aapm/internal/cluster"
	"aapm/internal/sensor"
)

// FleetScaleResult is the hierarchical-coordinator scaling study: one
// fleet-sized synthetic run through the allocation tree, preceded by
// a determinism cross-check of the one-level hierarchy against the
// flat coordinator on real suite workloads.
type FleetScaleResult struct {
	Nodes          int
	Levels         int
	Fanout         int
	GroupsPerLevel []int
	BudgetW        float64
	Workers        int

	Epochs          int
	Intervals       int
	NodeTicks       int64
	WallSec         float64
	NodeTicksPerSec float64
	MakespanSec     float64
	PeakTotalW      float64
	OverFrac        float64

	// FlatIdentical is true when a one-level fleet reproduced the flat
	// coordinator's aggregates exactly on an 8-node suite population.
	FlatIdentical bool
}

// FleetScale cross-checks the hierarchy against the flat coordinator,
// then times a fleet-sized synthetic run (Options.FleetNodes /
// FleetLevels / FleetFanout; defaults 100k nodes, 3 levels, fanout
// 64) and reports node-ticks/sec. The big run uses the ideal
// measurement chain and jitter-free workloads so no node carries an
// RNG — the memory-lean configuration the fleet coordinator is
// specified against.
func (c *Context) FleetScale() (*FleetScaleResult, error) {
	n := c.opts.FleetNodes
	if n == 0 {
		n = 100_000
		// Honor the context's fidelity/speed trade like workload
		// iteration counts do, so scaled-down eval runs stay quick.
		if c.opts.ScaleDown > 1 {
			n = max(1_000, n/c.opts.ScaleDown)
		}
	}
	levels := c.opts.FleetLevels
	if levels == 0 {
		levels = 3
	}
	fanout := c.opts.FleetFanout

	// Determinism cross-check on real workloads with the noisy chain.
	names := []string{"swim", "mcf", "lucas", "crafty", "gzip", "gcc", "art", "ammp"}
	var ns []cluster.Node
	for _, name := range names {
		w, err := c.Workload(name)
		if err != nil {
			return nil, err
		}
		w.Iterations = max(1, w.Iterations/8)
		ns = append(ns, cluster.Node{Workload: w})
	}
	const checkBudget = 104.0
	flat, err := cluster.RunContext(c.opts.Ctx, cluster.Config{
		BudgetW: checkBudget, Nodes: ns, Seed: c.opts.Seed, Chain: c.chain, Workers: 1,
	})
	if err != nil {
		return nil, err
	}
	one, err := cluster.RunFleetContext(c.opts.Ctx, cluster.FleetConfig{
		BudgetW: checkBudget, Nodes: ns, Seed: c.opts.Seed, Chain: c.chain, Levels: 1,
	})
	if err != nil {
		return nil, err
	}
	identical := flat.MachineSeconds == one.MachineSeconds &&
		flat.Makespan == one.Makespan &&
		flat.PeakTotalW == one.PeakTotalW &&
		flat.OverFrac == one.OverFrac

	// The timed fleet run: ~120 intervals per node, budget ample
	// enough that every node runs its top p-state.
	const ticks = 120
	start := time.Now()
	res, err := cluster.RunFleetContext(c.opts.Ctx, cluster.FleetConfig{
		BudgetW: 30 * float64(n),
		Nodes:   cluster.SyntheticFleet(n, ticks),
		Seed:    c.opts.Seed,
		Chain:   sensor.Chain{}, // ideal
		Levels:  levels,
		Fanout:  fanout,
		Workers: c.opts.Parallelism,
	})
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()
	out := &FleetScaleResult{
		Nodes:          res.Nodes,
		Levels:         res.Levels,
		Fanout:         res.Fanout,
		GroupsPerLevel: res.GroupsPerLevel,
		BudgetW:        30 * float64(n),
		Workers:        res.Workers,
		Epochs:         res.Epochs,
		Intervals:      res.Intervals,
		NodeTicks:      res.NodeTicks,
		WallSec:        wall,
		MakespanSec:    res.Makespan.Seconds(),
		PeakTotalW:     res.PeakTotalW,
		OverFrac:       res.OverFrac,
		FlatIdentical:  identical,
	}
	if wall > 0 {
		out.NodeTicksPerSec = float64(res.NodeTicks) / wall
	}
	return out, nil
}

// Print writes the fleet scaling report.
func (r *FleetScaleResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Hierarchical fleet coordinator: %d nodes, %d level(s), fanout %d (groups per level %v)\n",
		r.Nodes, r.Levels, r.Fanout, r.GroupsPerLevel); err != nil {
		return err
	}
	fmt.Fprintf(w, "budget %.0f W, %d stepping worker(s)\n", r.BudgetW, r.Workers)
	fmt.Fprintf(w, "%d intervals, %d reallocation epochs, %d node-ticks in %.2f s = %.2fM node-ticks/sec\n",
		r.Intervals, r.Epochs, r.NodeTicks, r.WallSec, r.NodeTicksPerSec/1e6)
	fmt.Fprintf(w, "peak total power %.0f W; budget exceeded %.2f%% of intervals\n", r.PeakTotalW, r.OverFrac*100)
	verdict := "identical to the flat coordinator (deterministic)"
	if !r.FlatIdentical {
		verdict = "DIVERGED from the flat coordinator — determinism violated"
	}
	_, err := fmt.Fprintf(w, "one-level cross-check on 8 suite nodes: %s\n", verdict)
	return err
}
