package experiment

import (
	"fmt"
	"io"
	"sort"

	"aapm/internal/machine"
	"aapm/internal/mloops"
	"aapm/internal/model"
	"aapm/internal/paperref"
	"aapm/internal/phase"
	"aapm/internal/stats"
	"aapm/internal/trace"
)

// Fig1Result is the power-variation study: per-benchmark power at a
// fixed 2 GHz (Figure 1).
type Fig1Result struct {
	// Rows hold one summary per benchmark, suite order.
	Rows []Fig1Row
	// SuiteMinW/SuiteMaxW span every 10 ms sample of the suite.
	SuiteMinW, SuiteMaxW float64
	// PeakW is the highest individual sample (the proxy for peak
	// operating power); RangeFrac is (max-min)/peak, the paper's
	// ">35% of peak" headline.
	PeakW     float64
	RangeFrac float64
	// MaxSampleBench is the benchmark with the highest single sample
	// (galgel in the paper).
	MaxSampleBench string
}

// Fig1Row summarizes one benchmark's 2 GHz power samples.
type Fig1Row struct {
	Name                 string
	MeanW, MinW, MaxW    float64
	StdW                 float64
	AvgIPC, AvgDPC, DCUI float64
}

// Fig1PowerVariation runs the whole suite at 2000 MHz and summarizes
// the measured 10 ms power samples.
func (c *Context) Fig1PowerVariation() (*Fig1Result, error) {
	names := c.SuiteNames()
	if err := c.forEach(names, func(n string) error {
		_, err := c.RunStatic(n, 2000)
		return err
	}); err != nil {
		return nil, err
	}
	res := &Fig1Result{}
	first := true
	for _, n := range names {
		run, err := c.RunStatic(n, 2000)
		if err != nil {
			return nil, err
		}
		ps := run.MeasuredPowers()
		s := stats.Summarize(ps)
		row := Fig1Row{
			Name: n, MeanW: s.Mean, MinW: s.Min, MaxW: s.Max, StdW: s.Std,
			AvgIPC: avgRow(run, func(r trace.Row) float64 { return r.IPC }),
			AvgDPC: avgRow(run, func(r trace.Row) float64 { return r.DPC }),
			DCUI:   runDCUPerInst(run),
		}
		res.Rows = append(res.Rows, row)
		if first || s.Min < res.SuiteMinW {
			res.SuiteMinW = s.Min
		}
		if first || s.Max > res.SuiteMaxW {
			res.SuiteMaxW = s.Max
			res.MaxSampleBench = n
		}
		first = false
	}
	res.PeakW = res.SuiteMaxW
	if res.PeakW > 0 {
		res.RangeFrac = (res.SuiteMaxW - res.SuiteMinW) / res.PeakW
	}
	return res, nil
}

// Print writes the Figure 1 table.
func (r *Fig1Result) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig 1: SPEC CPU2000 power at 2 GHz (measured 10 ms samples)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %7s %7s %7s\n",
		"benchmark", "mean(W)", "min(W)", "max(W)", "std(W)", "IPC", "DPC", "DCU/I")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %8.2f %8.2f %8.2f %8.2f %7.3f %7.3f %7.2f\n",
			row.Name, row.MeanW, row.MinW, row.MaxW, row.StdW, row.AvgIPC, row.AvgDPC, row.DCUI)
	}
	_, err := fmt.Fprintf(w, "suite range: %.2f..%.2f W; span %.1f%% of peak %.2f W (highest sample: %s)\n",
		r.SuiteMinW, r.SuiteMaxW, r.RangeFrac*100, r.PeakW, r.MaxSampleBench)
	return err
}

// Fig2Result is the p-state performance-impact study (Figure 2):
// execution time relative to 2000 MHz for three representative
// workloads across 1600/1800/2000 MHz.
type Fig2Result struct {
	Freqs []int
	Rows  []Fig2Row
}

// Fig2Row is one workload's relative performance per frequency.
type Fig2Row struct {
	Name string
	// RelPerf[i] is perf(freq[i]) / perf(2000).
	RelPerf []float64
}

// Fig2Workloads are the paper's three examples spanning the spectrum.
func Fig2Workloads() []string { return []string{"swim", "gap", "sixtrack"} }

// Fig2PstatePerformance measures relative performance across the three
// highest p-states.
func (c *Context) Fig2PstatePerformance() (*Fig2Result, error) {
	freqs := []int{1600, 1800, 2000}
	names := Fig2Workloads()
	type key struct {
		name string
		freq int
	}
	var pairs []key
	for _, n := range names {
		for _, f := range freqs {
			pairs = append(pairs, key{n, f})
		}
	}
	if err := c.forEachN(len(pairs), func(i int) error {
		_, err := c.RunStatic(pairs[i].name, pairs[i].freq)
		return err
	}); err != nil {
		return nil, err
	}
	res := &Fig2Result{Freqs: freqs}
	for _, n := range names {
		base, err := c.RunStatic(n, 2000)
		if err != nil {
			return nil, err
		}
		row := Fig2Row{Name: n}
		for _, f := range freqs {
			run, err := c.RunStatic(n, f)
			if err != nil {
				return nil, err
			}
			row.RelPerf = append(row.RelPerf, base.Duration.Seconds()/run.Duration.Seconds())
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes the Figure 2 table.
func (r *Fig2Result) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig 2: performance relative to 2000 MHz\n%-10s", "benchmark"); err != nil {
		return err
	}
	for _, f := range r.Freqs {
		fmt.Fprintf(w, " %8d", f)
	}
	fmt.Fprintln(w)
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s", row.Name)
		for _, p := range row.RelPerf {
			fmt.Fprintf(w, " %8.3f", p)
		}
		fmt.Fprintln(w)
	}
	return nil
}

// TableIResult is the MS-Loops characterization (Table I's loops with
// their simulated memory-hierarchy profiles).
type TableIResult struct {
	Rows []TableIRow
}

// TableIRow is one loop/footprint configuration.
type TableIRow struct {
	Config      string
	Description string
	CPICore     float64
	L2APKI      float64
	MemAPKI     float64
	MemBPI      float64
	IPC2G       float64
	DPC2G       float64
	DCUI2G      float64
}

// TableIMicrobenchmarks characterizes the 12 training configurations.
func (c *Context) TableIMicrobenchmarks() (*TableIResult, error) {
	params, err := mloops.TrainingSet()
	if err != nil {
		return nil, err
	}
	ps2000, err := c.table.ByFreq(2000)
	if err != nil {
		return nil, err
	}
	res := &TableIResult{}
	cfgs := mloops.Configs()
	for i, p := range params {
		b := p.At(ps2000)
		res.Rows = append(res.Rows, TableIRow{
			Config:      p.Name,
			Description: cfgs[i].Loop.Description(),
			CPICore:     p.CPICore,
			L2APKI:      p.L2APKI,
			MemAPKI:     p.MemAPKI,
			MemBPI:      p.MemBPI,
			IPC2G:       b.IPC,
			DPC2G:       b.DPC,
			DCUI2G:      b.DCU / b.IPC,
		})
	}
	return res, nil
}

// Print writes the Table I characterization.
func (r *TableIResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table I: MS-Loops training set (simulated hierarchy characterization)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-17s %8s %8s %8s %8s %7s %7s %7s\n",
		"config", "CPIcore", "L2APKI", "MemAPKI", "MemBPI", "IPC@2G", "DPC@2G", "DCU/I")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-17s %8.3f %8.1f %8.2f %8.2f %7.3f %7.3f %7.2f\n",
			row.Config, row.CPICore, row.L2APKI, row.MemAPKI, row.MemBPI, row.IPC2G, row.DPC2G, row.DCUI2G)
	}
	return nil
}

// TableIIResult compares the trained per-p-state power model with the
// paper's published Table II.
type TableIIResult struct {
	Rows []TableIIRow
	// Fit diagnostics on the training set.
	MeanAbsErrW float64
	// PerfFit is the companion eq. 3 parameter fit.
	PerfFit model.PerfFit
}

// TableIIRow is one p-state's fitted vs published coefficients.
type TableIIRow struct {
	FreqMHz                  int
	VoltageV                 float64
	Alpha, Beta              float64
	PaperAlpha, PaperBeta    float64
	AlphaErrPct, BetaErrPct  float64
	TrainPoints              int
	TrainMeanAbsErrW         float64
	TrainMaxAbsErrW          float64
	TrainMinDPC, TrainMaxDPC float64
}

// trainingInstructions bounds each training run; long enough for tens
// of samples at the slowest p-state.
const trainingInstructions = 3e8

// TableIIPowerModel regenerates the power and performance model
// parameters from the MS-Loops training set.
func (c *Context) TableIIPowerModel() (*TableIIResult, error) {
	set, err := mloops.TrainingSet()
	if err != nil {
		return nil, err
	}
	points, err := model.CollectTrainingData(machine.Config{
		Chain: c.chain,
		Seed:  c.opts.Seed,
	}, set, trainingInstructions)
	if err != nil {
		return nil, err
	}
	fitted, err := model.FitPowerModel(c.table, points)
	if err != nil {
		return nil, err
	}
	perfFit, err := model.FitPerfModel(points)
	if err != nil {
		return nil, err
	}
	paper := model.PaperPowerModel()
	res := &TableIIResult{PerfFit: perfFit}
	var totErr float64
	var totN int
	for i := 0; i < c.table.Len(); i++ {
		st := c.table.At(i)
		f := fitted.Coefficients(i)
		p := paper.Coefficients(i)
		row := TableIIRow{
			FreqMHz: st.FreqMHz, VoltageV: st.VoltageV,
			Alpha: f.Alpha, Beta: f.Beta,
			PaperAlpha: p.Alpha, PaperBeta: p.Beta,
			AlphaErrPct: 100 * (f.Alpha - p.Alpha) / p.Alpha,
			BetaErrPct:  100 * (f.Beta - p.Beta) / p.Beta,
			TrainMinDPC: 1e18, TrainMaxDPC: -1e18,
		}
		for _, pt := range points {
			if pt.PStateIndex != i {
				continue
			}
			row.TrainPoints++
			e := pt.PowerW - f.Eval(pt.DPC)
			if e < 0 {
				e = -e
			}
			row.TrainMeanAbsErrW += e
			if e > row.TrainMaxAbsErrW {
				row.TrainMaxAbsErrW = e
			}
			if pt.DPC < row.TrainMinDPC {
				row.TrainMinDPC = pt.DPC
			}
			if pt.DPC > row.TrainMaxDPC {
				row.TrainMaxDPC = pt.DPC
			}
			totErr += e
			totN++
		}
		if row.TrainPoints > 0 {
			row.TrainMeanAbsErrW /= float64(row.TrainPoints)
		}
		res.Rows = append(res.Rows, row)
	}
	if totN > 0 {
		res.MeanAbsErrW = totErr / float64(totN)
	}
	return res, nil
}

// Print writes the fitted-vs-published Table II.
func (r *TableIIResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table II: DPC power model per p-state (fitted on MS-Loops vs published)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%5s %7s | %7s %7s | %7s %7s | %7s %7s | %6s %8s\n",
		"MHz", "V", "alpha", "beta", "a.paper", "b.paper", "aerr%", "berr%", "points", "mae(W)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%5d %7.3f | %7.3f %7.3f | %7.2f %7.2f | %+6.1f%% %+6.1f%% | %6d %8.3f\n",
			row.FreqMHz, row.VoltageV, row.Alpha, row.Beta,
			row.PaperAlpha, row.PaperBeta, row.AlphaErrPct, row.BetaErrPct,
			row.TrainPoints, row.TrainMeanAbsErrW)
	}
	fmt.Fprintf(w, "overall training MAE: %.3f W\n", r.MeanAbsErrW)
	fmt.Fprintf(w, "eq.3 fit: threshold=%.2f exponent=%.2f (paper: %.2f / %.2f, alt %.2f); mean |rel err| %.3f; exponent minima %v\n",
		r.PerfFit.Best.Threshold, r.PerfFit.Best.Exponent,
		model.PaperDCUThreshold, model.PaperExponent, model.PaperExponentAlt,
		r.PerfFit.MeanAbsRelErr, r.PerfFit.ExponentMinima)
	return nil
}

// TableIIIResult is the worst-case workload power per p-state.
type TableIIIResult struct {
	Rows []TableIIIRow
}

// TableIIIRow is FMA-256KB's measured power at one frequency.
type TableIIIRow struct {
	FreqMHz   int
	PowerW    float64
	PaperW    float64
	DeltaPct  float64
	HavePaper bool
}

// TableIIIWorstCase measures FMA-256KB power at every p-state. The
// result is computed once per context (Table IV, Fig 6 and Fig 7 all
// depend on it).
func (c *Context) TableIIIWorstCase() (*TableIIIResult, error) {
	c.tableIIIOnce.Do(func() {
		c.tableIII, c.tableIIIErr = c.tableIIIWorstCase()
	})
	return c.tableIII, c.tableIIIErr
}

func (c *Context) tableIIIWorstCase() (*TableIIIResult, error) {
	p, err := mloops.Characterize(mloops.Config{Loop: mloops.FMA, Footprint: mloops.FootprintL2}, trainingInstructions)
	if err != nil {
		return nil, err
	}
	res := &TableIIIResult{}
	for i := 0; i < c.table.Len(); i++ {
		st := c.table.At(i)
		m, err := machine.New(machine.Config{
			Chain:        c.chain,
			Seed:         c.opts.Seed,
			StartFreqMHz: st.FreqMHz,
		})
		if err != nil {
			return nil, err
		}
		w := phaseWorkload(p)
		run, err := m.Run(w, nil)
		if err != nil {
			return nil, err
		}
		row := TableIIIRow{FreqMHz: st.FreqMHz, PowerW: meanMeasured(run)}
		if pw, ok := paperref.TableIII[st.FreqMHz]; ok {
			row.PaperW = pw
			row.HavePaper = true
			row.DeltaPct = 100 * (row.PowerW - pw) / pw
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print writes Table III.
func (r *TableIIIResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table III: FMA-256KB (worst-case proxy) measured power vs frequency\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%5s %10s %10s %8s\n", "MHz", "meas(W)", "paper(W)", "delta")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%5d %10.2f %10.2f %+7.1f%%\n", row.FreqMHz, row.PowerW, row.PaperW, row.DeltaPct)
	}
	return nil
}

// TableIVResult maps power limits to static-clocking frequencies.
type TableIVResult struct {
	Rows []TableIVRow
}

// TableIVRow is one limit's static frequency choice.
type TableIVRow struct {
	LimitW     float64
	FreqMHz    int
	PaperMHz   int
	WorstCaseW float64
}

// TableIVStaticFrequencies derives, for each power limit, the highest
// frequency whose worst-case (FMA-256KB) power fits the limit — the
// paper's static-clocking design rule.
func (c *Context) TableIVStaticFrequencies() (*TableIVResult, error) {
	t3, err := c.TableIIIWorstCase()
	if err != nil {
		return nil, err
	}
	res := &TableIVResult{}
	for _, limit := range PowerLimits() {
		best := TableIVRow{LimitW: limit, FreqMHz: c.table.Min().FreqMHz}
		for _, row := range t3.Rows {
			if row.PowerW <= limit && row.FreqMHz > best.FreqMHz {
				best.FreqMHz = row.FreqMHz
				best.WorstCaseW = row.PowerW
			}
		}
		if best.WorstCaseW == 0 {
			for _, row := range t3.Rows {
				if row.FreqMHz == best.FreqMHz {
					best.WorstCaseW = row.PowerW
				}
			}
		}
		best.PaperMHz = paperref.TableIV[limit]
		res.Rows = append(res.Rows, best)
	}
	return res, nil
}

// StaticFreqFor returns the static frequency the Table IV rule selects
// for the limit.
func (r *TableIVResult) StaticFreqFor(limitW float64) (int, error) {
	for _, row := range r.Rows {
		if row.LimitW == limitW {
			return row.FreqMHz, nil
		}
	}
	return 0, fmt.Errorf("experiment: no Table IV row for %.1f W", limitW)
}

// Print writes Table IV.
func (r *TableIVResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Table IV: power limit -> static frequency (worst-case rule)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %10s %10s %12s\n", "limit(W)", "MHz", "paper", "worst(W)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8.1f %10d %10d %12.2f\n", row.LimitW, row.FreqMHz, row.PaperMHz, row.WorstCaseW)
	}
	return nil
}

// shared helpers

// phaseWorkload wraps one characterized phase as a runnable workload.
func phaseWorkload(p phase.Params) phase.Workload {
	return phase.Workload{Name: p.Name, Phases: []phase.Params{p}}
}

func avgRow(r *trace.Run, f func(trace.Row) float64) float64 {
	var num, den float64
	for _, row := range r.Rows {
		s := row.Interval.Seconds()
		num += f(row) * s
		den += s
	}
	if den == 0 {
		return 0
	}
	return num / den
}

func runDCUPerInst(r *trace.Run) float64 {
	var dcu, instr float64
	for _, row := range r.Rows {
		cyc := row.Interval.Seconds() * float64(row.FreqMHz) * 1e6
		dcu += row.DCU * cyc
		instr += row.Instructions
	}
	if instr == 0 {
		return 0
	}
	return dcu / instr
}

func meanMeasured(r *trace.Run) float64 {
	return avgRow(r, func(row trace.Row) float64 { return row.MeasuredPowerW })
}

func sortByValue(names []string, vals map[string]float64, ascending bool) []string {
	out := make([]string, len(names))
	copy(out, names)
	sort.SliceStable(out, func(i, j int) bool {
		if ascending {
			return vals[out[i]] < vals[out[j]]
		}
		return vals[out[i]] > vals[out[j]]
	})
	return out
}
