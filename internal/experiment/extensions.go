package experiment

// Extension studies beyond the paper's evaluation section: the
// measured-power feedback idea §IV-A.2 sketches, a thermal-envelope
// controller in the spirit of the Foxton work the paper cites, the
// DVFS-vs-clock-throttling comparison from the companion technical
// report [20], and the utilization study behind §IV-B's critique of
// demand-based switching.

import (
	"fmt"
	"io"
	"time"

	"aapm/internal/cluster"
	"aapm/internal/control"
	"aapm/internal/machine"
	"aapm/internal/mixes"
	"aapm/internal/model"
	"aapm/internal/stats"
	"aapm/internal/thermal"
	"aapm/internal/trace"
)

// FeedbackResult compares plain PM with the measured-power feedback
// extension on the workload and limit where the static model fails
// (galgel at 13.5 W).
type FeedbackResult struct {
	Limit float64
	Rows  []FeedbackRow
}

// FeedbackRow is one policy variant's outcome.
type FeedbackRow struct {
	Policy   string
	OverFrac float64
	// NormPerf is performance relative to unconstrained 2 GHz.
	NormPerf float64
	AvgW     float64
}

// FeedbackExtension evaluates PM with and without measured-power
// feedback on galgel across feedback gains.
func (c *Context) FeedbackExtension() (*FeedbackResult, error) {
	const limit = 13.5
	w, err := c.Workload("galgel")
	if err != nil {
		return nil, err
	}
	base, err := c.RunStatic("galgel", 2000)
	if err != nil {
		return nil, err
	}
	res := &FeedbackResult{Limit: limit}
	for _, gain := range []float64{0, 0.1, 0.3} {
		m, err := machine.New(machine.Config{Chain: c.chain, Seed: c.opts.Seed})
		if err != nil {
			return nil, err
		}
		pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: limit, FeedbackGain: gain})
		if err != nil {
			return nil, err
		}
		run, err := m.Run(w, pm)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, FeedbackRow{
			Policy:   pm.Name(),
			OverFrac: trace.FractionAbove(run.MeasuredPowers(), limit),
			NormPerf: base.Duration.Seconds() / run.Duration.Seconds(),
			AvgW:     run.AvgPowerW(),
		})
	}
	return res, nil
}

// Print writes the feedback comparison.
func (r *FeedbackResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Measured-power feedback extension (galgel, %.1f W limit; paper §IV-A.2 future work)\n", r.Limit); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-14s %12s %10s %8s\n", "policy", "%time over", "norm perf", "avg W")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %11.1f%% %10.3f %8.2f\n", row.Policy, row.OverFrac*100, row.NormPerf, row.AvgW)
	}
	return nil
}

// ThermalResult compares thermal-management strategies on the suite's
// hottest workload.
type ThermalResult struct {
	LimitC float64
	Rows   []ThermalRow
}

// ThermalRow is one strategy's outcome.
type ThermalRow struct {
	Policy string
	// OverFrac is the fraction of run-time the die spent above LimitC.
	OverFrac float64
	MaxC     float64
	// NormPerf is performance relative to unmanaged 2 GHz.
	NormPerf float64
}

// ThermalStudy runs crafty (the highest-power workload) against a
// 75 °C envelope that unconstrained 2 GHz operation slightly exceeds,
// comparing no management, reactive stepping, and the predictive
// headroom-budget controller.
func (c *Context) ThermalStudy() (*ThermalResult, error) {
	const limitC = 75
	tc := thermal.PentiumMThermal()
	w, err := c.Workload("crafty")
	if err != nil {
		return nil, err
	}
	mk := func() (*machine.Machine, error) {
		return machine.New(machine.Config{Chain: c.chain, Seed: c.opts.Seed, Thermal: &tc})
	}
	govs := []func() (machine.Governor, error){
		func() (machine.Governor, error) { return nil, nil },
		func() (machine.Governor, error) {
			return control.NewThermalGuard(control.ThermalGuardConfig{LimitC: limitC, Thermal: tc, Reactive: true})
		},
		func() (machine.Governor, error) {
			return control.NewThermalGuard(control.ThermalGuardConfig{LimitC: limitC, Thermal: tc})
		},
	}
	res := &ThermalResult{LimitC: limitC}
	var baseDur time.Duration
	for i, gf := range govs {
		m, err := mk()
		if err != nil {
			return nil, err
		}
		g, err := gf()
		if err != nil {
			return nil, err
		}
		run, err := m.Run(w, g)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			baseDur = run.Duration
		}
		name := "unmanaged-2GHz"
		if g != nil {
			name = g.Name()
		}
		temps := run.Temps()
		res.Rows = append(res.Rows, ThermalRow{
			Policy:   name,
			OverFrac: trace.FractionAbove(temps, limitC),
			MaxC:     stats.Max(temps),
			NormPerf: baseDur.Seconds() / run.Duration.Seconds(),
		})
	}
	return res, nil
}

// Print writes the thermal comparison.
func (r *ThermalResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Thermal envelope study (crafty, %.0f °C limit)\n", r.LimitC); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %12s %8s %10s\n", "policy", "%time over", "max °C", "norm perf")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-16s %11.1f%% %8.2f %10.3f\n", row.Policy, row.OverFrac*100, row.MaxC, row.NormPerf)
	}
	return nil
}

// ThrottleResult compares DVFS (PowerSave) against ACPI T-state clock
// modulation (ThrottleSave) at matched performance floors.
type ThrottleResult struct {
	Rows []ThrottleRow
}

// ThrottleRow is one (workload, floor) comparison.
type ThrottleRow struct {
	Workload string
	Floor    float64
	// DVFS* and Throttle* report measured loss and savings for the
	// two mechanisms.
	DVFSLoss, DVFSSave         float64
	ThrottleLoss, ThrottleSave float64
}

// DVFSvsThrottling runs three representative workloads at two floors
// under both mechanisms. DVFS saves disproportionately because voltage
// drops with frequency (eq. 1); throttling saves roughly linearly at
// best.
func (c *Context) DVFSvsThrottling() (*ThrottleResult, error) {
	res := &ThrottleResult{}
	for _, name := range []string{"swim", "gap", "crafty"} {
		base, err := c.RunStatic(name, 2000)
		if err != nil {
			return nil, err
		}
		for _, floor := range []float64{0.75, 0.50} {
			ps, err := c.RunPS(name, floor, model.PaperExponent)
			if err != nil {
				return nil, err
			}
			w, err := c.Workload(name)
			if err != nil {
				return nil, err
			}
			m, err := machine.New(machine.Config{Chain: c.chain, Seed: c.opts.Seed})
			if err != nil {
				return nil, err
			}
			th, err := control.NewThrottleSave(control.ThrottleSaveConfig{Floor: floor})
			if err != nil {
				return nil, err
			}
			tr, err := m.Run(w, th)
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, ThrottleRow{
				Workload:     name,
				Floor:        floor,
				DVFSLoss:     1 - base.Duration.Seconds()/ps.Duration.Seconds(),
				DVFSSave:     1 - ps.MeasuredEnergyJ/base.MeasuredEnergyJ,
				ThrottleLoss: 1 - base.Duration.Seconds()/tr.Duration.Seconds(),
				ThrottleSave: 1 - tr.MeasuredEnergyJ/base.MeasuredEnergyJ,
			})
		}
	}
	return res, nil
}

// Print writes the mechanism comparison.
func (r *ThrottleResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "DVFS (PowerSave) vs clock throttling (T-states) at matched floors"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %6s | %10s %10s | %10s %10s\n",
		"workload", "floor", "dvfs loss", "dvfs save", "thr loss", "thr save")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %5.0f%% | %9.1f%% %9.1f%% | %9.1f%% %9.1f%%\n",
			row.Workload, row.Floor*100,
			row.DVFSLoss*100, row.DVFSSave*100,
			row.ThrottleLoss*100, row.ThrottleSave*100)
	}
	return nil
}

// UtilizationResult contrasts governors across the utilization axis.
type UtilizationResult struct {
	Rows []UtilizationRow
}

// UtilizationRow is one workload mix's outcome per governor.
type UtilizationRow struct {
	Workload string
	// Savings relative to static 2 GHz for each policy.
	OnDemandSave float64
	PSSave       float64
	// Losses in total completion time relative to static 2 GHz.
	OnDemandLoss float64
	PSLoss       float64
}

// UtilizationStudy runs the interactive/server/batch mixes under an
// ondemand-style governor and PS(80%). At 100% load ondemand saves
// nothing (the paper's critique of demand-based switching); PS keeps
// saving because it trades explicit performance headroom.
func (c *Context) UtilizationStudy() (*UtilizationResult, error) {
	res := &UtilizationResult{}
	for _, w := range mixes.All() {
		run := func(g machine.Governor) (*trace.Run, error) {
			m, err := machine.New(machine.Config{Chain: c.chain, Seed: c.opts.Seed})
			if err != nil {
				return nil, err
			}
			return m.Run(w, g)
		}
		base, err := run(control.NewStaticClock(c.table.Len()-1, "static2000"))
		if err != nil {
			return nil, err
		}
		od, err := run(&control.OnDemand{})
		if err != nil {
			return nil, err
		}
		psGov, err := control.NewPowerSave(control.PSConfig{Floor: 0.8})
		if err != nil {
			return nil, err
		}
		ps, err := run(psGov)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, UtilizationRow{
			Workload:     w.Name,
			OnDemandSave: 1 - od.MeasuredEnergyJ/base.MeasuredEnergyJ,
			PSSave:       1 - ps.MeasuredEnergyJ/base.MeasuredEnergyJ,
			OnDemandLoss: 1 - base.Duration.Seconds()/od.Duration.Seconds(),
			PSLoss:       1 - base.Duration.Seconds()/ps.Duration.Seconds(),
		})
	}
	return res, nil
}

// Print writes the utilization comparison.
func (r *UtilizationResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Governors across the utilization axis (savings/loss vs static 2 GHz)"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s | %12s %12s | %12s %12s\n",
		"mix", "od save", "od loss", "PS80 save", "PS80 loss")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s | %11.1f%% %11.1f%% | %11.1f%% %11.1f%%\n",
			row.Workload,
			row.OnDemandSave*100, row.OnDemandLoss*100,
			row.PSSave*100, row.PSLoss*100)
	}
	return nil
}

// BaselineResult compares the counter-driven governors at suite level:
// the related-work baselines (ondemand/DBS, Process-Cruise-Control)
// against PowerSave.
type BaselineResult struct {
	Rows []BaselineRow
}

// BaselineRow is one governor's suite-level outcome.
type BaselineRow struct {
	Policy string
	// Loss and Save are total-time performance reduction and
	// measured-energy savings vs static 2 GHz over the full suite.
	Loss, Save float64
}

// BaselineComparison runs the full suite under each governor.
func (c *Context) BaselineComparison() (*BaselineResult, error) {
	names := c.SuiteNames()
	govs := []struct {
		key string
		f   govFactory
	}{
		{"ondemand", func() (machine.Governor, error) { return &control.OnDemand{}, nil }},
		{"cruise10", func() (machine.Governor, error) {
			return control.NewCruiseControl(control.CruiseControlConfig{Slowdown: 0.10})
		}},
		{"cruise20", func() (machine.Governor, error) {
			return control.NewCruiseControl(control.CruiseControlConfig{Slowdown: 0.20})
		}},
		{"ps80", nil}, // via RunPS for cache sharing
	}
	// Warm the baselines in parallel.
	if err := c.forEachN(len(names)*(len(govs)+1), func(i int) error {
		n := names[i/(len(govs)+1)]
		k := i % (len(govs) + 1)
		switch {
		case k == 0:
			_, err := c.RunStatic(n, 2000)
			return err
		case govs[k-1].f == nil:
			_, err := c.RunPS(n, 0.8, model.PaperExponent)
			return err
		default:
			g := govs[k-1]
			_, err := c.run(fmt.Sprintf("%s/%s", n, g.key), n, g.f)
			return err
		}
	}); err != nil {
		return nil, err
	}

	baseT, err := c.suiteTime(func(n string) (*trace.Run, error) { return c.RunStatic(n, 2000) })
	if err != nil {
		return nil, err
	}
	baseE, err := c.suiteEnergy(func(n string) (*trace.Run, error) { return c.RunStatic(n, 2000) })
	if err != nil {
		return nil, err
	}
	res := &BaselineResult{}
	for _, g := range govs {
		g := g
		get := func(n string) (*trace.Run, error) {
			if g.f == nil {
				return c.RunPS(n, 0.8, model.PaperExponent)
			}
			return c.run(fmt.Sprintf("%s/%s", n, g.key), n, g.f)
		}
		tt, err := c.suiteTime(get)
		if err != nil {
			return nil, err
		}
		ee, err := c.suiteEnergy(get)
		if err != nil {
			return nil, err
		}
		label := g.key
		if g.f == nil {
			label = "PS(80%)"
		}
		res.Rows = append(res.Rows, BaselineRow{
			Policy: label,
			Loss:   1 - baseT.Seconds()/tt.Seconds(),
			Save:   1 - ee/baseE,
		})
	}
	return res, nil
}

// Print writes the suite-level governor comparison.
func (r *BaselineResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "Counter-driven governors over the full SPEC suite (vs static 2 GHz)"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %10s %10s\n", "policy", "perf loss", "save")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-10s %9.1f%% %9.1f%%\n", row.Policy, row.Loss*100, row.Save*100)
	}
	return nil
}

// SharedBudgetResult is the closed-loop shared-budget co-simulation:
// four machines under one cap, equal split vs demand-aware
// reallocation (the paper's motivating deployment (i) for PM).
type SharedBudgetResult struct {
	BudgetW float64
	Rows    []SharedBudgetRow
	// Speedup is equal-split machine-seconds over demand-aware.
	Speedup float64
	// OverFracDyn/OverFracStatic are budget-violation interval
	// fractions for the two modes.
	OverFracDyn, OverFracStatic float64
	// Workers is the stepping-goroutine count each coordinator used;
	// TickWallUs is the demand-aware run's mean per-worker shard-step
	// wall-clock in microseconds (merged across workers).
	Workers    int
	TickWallUs float64
}

// SharedBudgetRow is one node's completion times under both modes.
type SharedBudgetRow struct {
	Node                string
	EqualSec, DemandSec float64
}

// SharedBudget runs the co-simulation both ways. The two modes run
// concurrently through the context's bounded parallelism, and each
// coordinator steps its nodes across the cluster worker pool — the
// same sharding, one level up.
func (c *Context) SharedBudget() (*SharedBudgetResult, error) {
	const budget = 56.0
	mk := func(static bool) (*cluster.Result, error) {
		var ns []cluster.Node
		for _, name := range []string{"swim", "mcf", "lucas", "crafty"} {
			w, err := c.Workload(name)
			if err != nil {
				return nil, err
			}
			ns = append(ns, cluster.Node{Workload: w})
		}
		return cluster.Run(cluster.Config{
			BudgetW: budget,
			Nodes:   ns,
			Seed:    c.opts.Seed,
			Chain:   c.chain,
			Static:  static,
			Workers: c.opts.Parallelism,
		})
	}
	results := make([]*cluster.Result, 2)
	if err := c.forEachN(2, func(i int) error {
		r, err := mk(i == 1)
		results[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	dyn, st := results[0], results[1]
	res := &SharedBudgetResult{
		BudgetW:        budget,
		Speedup:        st.MachineSeconds / dyn.MachineSeconds,
		OverFracDyn:    dyn.OverFrac,
		OverFracStatic: st.OverFrac,
		Workers:        dyn.Workers,
		TickWallUs:     float64(dyn.TickWall.Avg().Nanoseconds()) / 1e3,
	}
	for i := range dyn.Runs {
		res.Rows = append(res.Rows, SharedBudgetRow{
			Node:      dyn.Names[i],
			EqualSec:  st.Runs[i].Duration.Seconds(),
			DemandSec: dyn.Runs[i].Duration.Seconds(),
		})
	}
	return res, nil
}

// Print writes the shared-budget comparison.
func (r *SharedBudgetResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Shared %.0f W budget across four machines: equal vs demand-aware PM limits\n", r.BudgetW); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-8s %12s %12s\n", "node", "equal (s)", "demand (s)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-8s %12.2f %12.2f\n", row.Node, row.EqualSec, row.DemandSec)
	}
	if _, err := fmt.Fprintf(w, "demand-aware completes the set %.1f%% faster; budget exceeded %.1f%% (dyn) / %.1f%% (equal) of intervals\n",
		(r.Speedup-1)*100, r.OverFracDyn*100, r.OverFracStatic*100); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "coordinator: %d stepping worker(s), %.1f us mean wall-clock per shard-step\n",
		r.Workers, r.TickWallUs)
	return err
}

// ClusterScaleResult is the parallel-coordinator scaling study: one
// 8-node shared-budget run per worker count, with the coordinator's
// per-tick wall-clock and a determinism cross-check against the
// serial reference.
type ClusterScaleResult struct {
	Nodes   int
	BudgetW float64
	Rows    []ClusterScaleRow
	// Deterministic is true when every worker count reproduced the
	// serial reference's aggregates exactly.
	Deterministic bool
}

// ClusterScaleRow is one worker count's stepping cost: the merged
// per-worker shard wall-clock (Result.TickWall), tails included.
type ClusterScaleRow struct {
	Workers     int
	Steps       int
	AvgStepUs   float64
	MinStepUs   float64
	MaxStepUs   float64
	MakespanSec float64
}

// ClusterScale runs the 8-node shared-budget co-simulation at worker
// counts 1, 2, 4 and 8 and reports the coordinator's per-tick
// wall-clock at each. The serial run is the reference; the study also
// verifies the parallel runs reproduce its schedule exactly, so the
// table doubles as a determinism check on real workloads.
func (c *Context) ClusterScale() (*ClusterScaleResult, error) {
	const budget = 104.0
	names := []string{"swim", "mcf", "lucas", "crafty", "gzip", "gcc", "art", "ammp"}
	mk := func(workers int) (*cluster.Result, error) {
		var ns []cluster.Node
		for _, name := range names {
			w, err := c.Workload(name)
			if err != nil {
				return nil, err
			}
			ns = append(ns, cluster.Node{Workload: w})
		}
		return cluster.Run(cluster.Config{
			BudgetW: budget,
			Nodes:   ns,
			Seed:    c.opts.Seed,
			Chain:   c.chain,
			Workers: workers,
		})
	}
	counts := []int{1, 2, 4, 8}
	results := make([]*cluster.Result, len(counts))
	if err := c.forEachN(len(counts), func(i int) error {
		r, err := mk(counts[i])
		results[i] = r
		return err
	}); err != nil {
		return nil, err
	}
	res := &ClusterScaleResult{Nodes: len(names), BudgetW: budget, Deterministic: true}
	ref := results[0]
	for _, r := range results {
		if r.MachineSeconds != ref.MachineSeconds || r.Makespan != ref.Makespan ||
			r.PeakTotalW != ref.PeakTotalW || r.OverFrac != ref.OverFrac {
			res.Deterministic = false
		}
		res.Rows = append(res.Rows, ClusterScaleRow{
			Workers:     r.Workers,
			Steps:       r.TickWall.N,
			AvgStepUs:   float64(r.TickWall.Avg().Nanoseconds()) / 1e3,
			MinStepUs:   float64(r.TickWall.Min.Nanoseconds()) / 1e3,
			MaxStepUs:   float64(r.TickWall.Max.Nanoseconds()) / 1e3,
			MakespanSec: r.Makespan.Seconds(),
		})
	}
	return res, nil
}

// Print writes the scaling table.
func (r *ClusterScaleResult) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Parallel coordinator scaling: %d nodes under a shared %.0f W budget\n", r.Nodes, r.BudgetW); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %8s %12s %12s %12s %13s\n", "workers", "steps", "avg us/step", "min us/step", "max us/step", "makespan (s)")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%8d %8d %12.1f %12.1f %12.1f %13.2f\n", row.Workers, row.Steps, row.AvgStepUs, row.MinStepUs, row.MaxStepUs, row.MakespanSec)
	}
	verdict := "identical to serial (deterministic)"
	if !r.Deterministic {
		verdict = "DIVERGED from serial — determinism violated"
	}
	_, err := fmt.Fprintf(w, "all worker counts %s\n", verdict)
	return err
}
