package experiment

import "io"

// Printable is any experiment result that can render itself.
type Printable interface {
	Print(io.Writer) error
}

// Named is one registry entry: a stable name (the aapm-eval -exp key)
// and the entry point that computes the result on a context.
type Named struct {
	// Name is the selection key.
	Name string
	// Describe is a one-line summary for listings.
	Describe string
	// Run computes the result.
	Run func(*Context) (Printable, error)
}

// Registry lists every experiment in presentation order: first the
// paper's tables and figures, then the extension studies.
func Registry() []Named {
	return []Named{
		{"fig1", "power variation across SPEC at 2 GHz", func(c *Context) (Printable, error) { return c.Fig1PowerVariation() }},
		{"fig2", "p-state performance impact (swim/gap/sixtrack)", func(c *Context) (Printable, error) { return c.Fig2PstatePerformance() }},
		{"table1", "MS-Loops training-set characterization", func(c *Context) (Printable, error) { return c.TableIMicrobenchmarks() }},
		{"table2", "trained power model vs published Table II", func(c *Context) (Printable, error) { return c.TableIIPowerModel() }},
		{"table3", "worst-case FMA-256KB power vs frequency", func(c *Context) (Printable, error) { return c.TableIIIWorstCase() }},
		{"table4", "power limit to static frequency rule", func(c *Context) (Printable, error) { return c.TableIVStaticFrequencies() }},
		{"fig5", "PM timeline on ammp", func(c *Context) (Printable, error) { return c.Fig5PMTimeline() }},
		{"fig6", "suite performance vs power limit", func(c *Context) (Printable, error) { return c.Fig6PerfVsPowerLimit() }},
		{"fig7", "per-benchmark PM speedup at 17.5 W", func(c *Context) (Printable, error) { return c.Fig7PMSpeedup() }},
		{"adherence", "PM power-limit adherence", func(c *Context) (Printable, error) { return c.PMLimitAdherence() }},
		{"fig8", "PS timeline on ammp at the 80% floor", func(c *Context) (Printable, error) { return c.Fig8PSTimeline() }},
		{"fig9", "suite PS loss and savings per floor", func(c *Context) (Printable, error) { return c.Fig9PSSuite() }},
		{"fig10", "per-workload PS energy savings", func(c *Context) (Printable, error) { return c.Fig10EnergySavings() }},
		{"fig11", "per-workload PS loss + exponent ablation", func(c *Context) (Printable, error) { return c.Fig11PerfReduction() }},
		{"characterization", "per-benchmark counter rates at 2 GHz", func(c *Context) (Printable, error) { return c.WorkloadCharacterization() }},
		{"scorecard", "paper-vs-measured verdict on every claim", func(c *Context) (Printable, error) { return c.PaperComparison() }},
		// Extension studies beyond the paper's evaluation section.
		{"feedback", "measured-power feedback PM (paper future work)", func(c *Context) (Printable, error) { return c.FeedbackExtension() }},
		{"mux", "PS under two-counter PMU multiplexing", func(c *Context) (Printable, error) { return c.MultiplexStudy() }},
		{"baselines", "ondemand and cruise-control baselines", func(c *Context) (Printable, error) { return c.BaselineComparison() }},
		{"sharedbudget", "closed-loop shared power budget", func(c *Context) (Printable, error) { return c.SharedBudget() }},
		{"clusterscale", "parallel coordinator scaling + determinism", func(c *Context) (Printable, error) { return c.ClusterScale() }},
		{"fleetscale", "hierarchical fleet coordinator at 10^5 nodes", func(c *Context) (Printable, error) { return c.FleetScale() }},
		{"thermal", "thermal envelope control", func(c *Context) (Printable, error) { return c.ThermalStudy() }},
		{"throttle", "DVFS vs T-state clock throttling", func(c *Context) (Printable, error) { return c.DVFSvsThrottling() }},
		{"utilization", "governors across the utilization axis", func(c *Context) (Printable, error) { return c.UtilizationStudy() }},
		{"seeds", "headline-metric stability across seeds", func(c *Context) (Printable, error) { return c.SeedSensitivity() }},
		{"guardband", "PM guardband sweep on galgel", func(c *Context) (Printable, error) { return c.GuardbandSweep() }},
		{"faults", "governor robustness under injected faults", func(c *Context) (Printable, error) { return c.FaultSweep() }},
		{"engine", "staged-engine counters via the Hook bus", func(c *Context) (Printable, error) { return c.EngineMetrics() }},
		{"platform", "power-model platform specificity", func(c *Context) (Printable, error) { return c.PlatformSpecificity() }},
	}
}
