package experiment

import (
	"strings"
	"testing"
)

func TestFeedbackExtensionReducesViolations(t *testing.T) {
	r, err := sharedCtx(t).FeedbackExtension()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("feedback rows = %d", len(r.Rows))
	}
	plain := r.Rows[0]
	if !strings.HasPrefix(plain.Policy, "PM(") {
		t.Fatalf("first row is %q, want plain PM", plain.Policy)
	}
	for _, fb := range r.Rows[1:] {
		if fb.OverFrac >= plain.OverFrac/2 {
			t.Errorf("%s over-limit %.1f%% not clearly below plain PM's %.1f%%",
				fb.Policy, fb.OverFrac*100, plain.OverFrac*100)
		}
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestThermalStudy(t *testing.T) {
	r, err := sharedCtx(t).ThermalStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("thermal rows = %d", len(r.Rows))
	}
	unmanaged, reactive, predictive := r.Rows[0], r.Rows[1], r.Rows[2]
	if unmanaged.OverFrac < 0.2 {
		t.Errorf("unmanaged run spent only %.1f%% over the limit; crafty should exceed it", unmanaged.OverFrac*100)
	}
	for _, managed := range []ThermalRow{reactive, predictive} {
		if managed.OverFrac > 0.02 {
			t.Errorf("%s spent %.1f%% over the limit", managed.Policy, managed.OverFrac*100)
		}
		if managed.NormPerf <= 0.8 || managed.NormPerf > 1.0+1e-9 {
			t.Errorf("%s performance %.3f implausible", managed.Policy, managed.NormPerf)
		}
	}
	// The predictive controller holds margin below the ceiling; the
	// reactive one rides it.
	if predictive.MaxC >= reactive.MaxC {
		t.Errorf("predictive max %.1f°C not below reactive %.1f°C", predictive.MaxC, reactive.MaxC)
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestDVFSBeatsThrottling(t *testing.T) {
	r, err := sharedCtx(t).DVFSvsThrottling()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Fatalf("throttle rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// DVFS saves energy at every floor; throttling saves less — on
		// this platform it actually costs energy (same V·f, longer
		// runtime, idle draw during stopped clocks).
		if row.DVFSSave <= row.ThrottleSave {
			t.Errorf("%s@%.0f%%: DVFS save %.1f%% not above throttling %.1f%%",
				row.Workload, row.Floor*100, row.DVFSSave*100, row.ThrottleSave*100)
		}
		if row.DVFSSave <= 0 {
			t.Errorf("%s@%.0f%%: DVFS saved nothing", row.Workload, row.Floor*100)
		}
		// Throttling's loss tracks duty exactly (1 - floor-rounded
		// duty); DVFS loses no more than throttling on memory-bound
		// work.
		if row.Workload == "swim" && row.DVFSLoss >= row.ThrottleLoss {
			t.Errorf("swim: DVFS loss %.1f%% not below throttling %.1f%%",
				row.DVFSLoss*100, row.ThrottleLoss*100)
		}
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationStudy(t *testing.T) {
	r, err := sharedCtx(t).UtilizationStudy()
	if err != nil {
		t.Fatal(err)
	}
	rows := map[string]UtilizationRow{}
	for _, row := range r.Rows {
		rows[row.Workload] = row
	}
	batch, ok := rows["batch"]
	if !ok {
		t.Fatalf("missing batch row: %+v", r.Rows)
	}
	// The paper's §IV-B critique: at full load, demand-based switching
	// saves nothing; PS still saves by trading explicit headroom.
	if batch.OnDemandSave > 0.02 {
		t.Errorf("ondemand saved %.1f%% at full load, want ~0", batch.OnDemandSave*100)
	}
	if batch.PSSave < 0.10 {
		t.Errorf("PS saved only %.1f%% at full load", batch.PSSave*100)
	}
	office, ok := rows["office"]
	if !ok {
		t.Fatal("missing office row")
	}
	if office.OnDemandSave < 0.20 {
		t.Errorf("ondemand saved only %.1f%% on the idle-heavy mix", office.OnDemandSave*100)
	}
	// PS dominates ondemand on every mix (it saves during both idle
	// and busy periods).
	for name, row := range rows {
		if row.PSSave < row.OnDemandSave-1e-9 {
			t.Errorf("%s: PS save %.1f%% below ondemand %.1f%%", name, row.PSSave*100, row.OnDemandSave*100)
		}
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestWorkloadCharacterization(t *testing.T) {
	r, err := sharedCtx(t).WorkloadCharacterization()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 26 {
		t.Fatalf("characterization rows = %d", len(r.Rows))
	}
	rows := map[string]CharacterizationRow{}
	for _, row := range r.Rows {
		rows[row.Name] = row
	}
	// The paper's Fig 7 discussion: the memory-bound six show high DCU
	// occupancy and high memory requests; the core-bound five show low
	// rates of both.
	for _, n := range []string{"swim", "lucas", "equake", "mcf", "applu", "art"} {
		if !rows[n].MemBound {
			t.Errorf("%s not classified memory-bound", n)
		}
		if rows[n].DCU < 0.6 {
			t.Errorf("%s DCU occupancy %.2f too low for a memory-bound workload", n, rows[n].DCU)
		}
	}
	for _, n := range []string{"perlbmk", "mesa", "eon", "crafty", "sixtrack"} {
		if rows[n].MemBound {
			t.Errorf("%s classified memory-bound", n)
		}
		if rows[n].DCU > 0.3 {
			t.Errorf("%s DCU occupancy %.2f too high for a core-bound workload", n, rows[n].DCU)
		}
	}
	// crafty and perlbmk pair high decode rates with high L2 request
	// rates — the paper's explanation for their power.
	for _, n := range []string{"crafty", "perlbmk"} {
		if rows[n].DPC < 1.7 {
			t.Errorf("%s DPC %.2f, want high", n, rows[n].DPC)
		}
		if rows[n].L2PC < rows["sixtrack"].L2PC {
			t.Errorf("%s L2 rate below sixtrack's", n)
		}
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplexStudy(t *testing.T) {
	r, err := sharedCtx(t).MultiplexStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("mux rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// Rotating two events through one counter at 10 ms granularity
		// must not break the floor or change outcomes materially —
		// the substance of the paper's "small number of counters"
		// feasibility claim.
		if row.FloorViolatedMux {
			t.Errorf("%s violated its floor under multiplexing (%.1f%%)", row.Workload, row.LossMux*100)
		}
		if d := row.LossMux - row.LossIdeal; d > 0.02 || d < -0.02 {
			t.Errorf("%s: multiplexing changed loss by %.1f points", row.Workload, d*100)
		}
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestMedianOfThreeMethodology(t *testing.T) {
	ctx3, err := NewContext(Options{Seed: 21, ScaleDown: 6, Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	a, err := ctx3.RunStatic("gzip", 2000)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic: a second context reproduces the same median run.
	ctx3b, err := NewContext(Options{Seed: 21, ScaleDown: 6, Repeats: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ctx3b.RunStatic("gzip", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if a.Duration != b.Duration || a.MeasuredEnergyJ != b.MeasuredEnergyJ {
		t.Errorf("median-of-3 not deterministic: %v/%g vs %v/%g",
			a.Duration, a.MeasuredEnergyJ, b.Duration, b.MeasuredEnergyJ)
	}
	// The median differs from at least one single-seed run.
	ctx1, err := NewContext(Options{Seed: 21, ScaleDown: 6})
	if err != nil {
		t.Fatal(err)
	}
	single, err := ctx1.RunStatic("gzip", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if single.Duration <= 0 || a.Duration <= 0 {
		t.Fatal("degenerate runs")
	}
}

func TestSharedBudget(t *testing.T) {
	r, err := sharedCtx(t).SharedBudget()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if r.Speedup <= 1.0 {
		t.Errorf("demand-aware speedup = %.3f, want > 1", r.Speedup)
	}
	if r.OverFracDyn > 0.05 || r.OverFracStatic > 0.05 {
		t.Errorf("budget violations: dyn %.1f%%, static %.1f%%", r.OverFracDyn*100, r.OverFracStatic*100)
	}
	// The power-hungry node is the main beneficiary.
	var crafty *SharedBudgetRow
	for i := range r.Rows {
		if r.Rows[i].Node == "crafty" {
			crafty = &r.Rows[i]
		}
	}
	if crafty == nil {
		t.Fatal("crafty row missing")
	}
	if crafty.DemandSec >= crafty.EqualSec {
		t.Errorf("crafty did not benefit: %.2fs vs %.2fs", crafty.DemandSec, crafty.EqualSec)
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestScorecardAllPass(t *testing.T) {
	sc, err := sharedCtx(t).PaperComparison()
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Rows) < 12 {
		t.Fatalf("scorecard has only %d rows", len(sc.Rows))
	}
	for _, row := range sc.Rows {
		if !row.Pass {
			t.Errorf("claim not reproduced: %s (paper %.3f, measured %.3f, tol %.3f, note %q)",
				row.Claim, row.Paper, row.Measured, row.Tolerance, row.Note)
		}
	}
	var sb strings.Builder
	if err := sc.Print(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ALL CLAIMS REPRODUCED") {
		t.Error("scorecard verdict not positive")
	}
}

func TestSeedSensitivity(t *testing.T) {
	ctx, err := NewContext(Options{Seed: 7, ScaleDown: 4})
	if err != nil {
		t.Fatal(err)
	}
	r, err := ctx.SeedSensitivity()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 || len(r.Seeds) != 5 {
		t.Fatalf("seed result shape: %d rows, %d seeds", len(r.Rows), len(r.Seeds))
	}
	for _, row := range r.Rows {
		if len(row.Values) != 5 {
			t.Errorf("%s has %d values", row.Metric, len(row.Values))
		}
		// The headline numbers must be stable across seeds — tight
		// relative spread, not one lucky draw.
		if row.Mean <= 0 {
			t.Errorf("%s mean %.3f", row.Metric, row.Mean)
		}
		if row.Std > 0.25*row.Mean+0.01 {
			t.Errorf("%s unstable across seeds: mean %.3f std %.3f", row.Metric, row.Mean, row.Std)
		}
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestGuardbandSweep(t *testing.T) {
	r, err := sharedCtx(t).GuardbandSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.OverFrac) != len(r.Guardbands) || len(r.OverFrac[0]) != len(r.Limits) {
		t.Fatalf("sweep shape wrong")
	}
	// Averaged over the limits, larger guardbands reduce over-limit
	// time and cost performance — the trade the paper's 0.5 W sits on.
	avg := func(vs []float64) float64 {
		var s float64
		for _, v := range vs {
			s += v
		}
		return s / float64(len(vs))
	}
	overOff, overBig := avg(r.OverFrac[0]), avg(r.OverFrac[len(r.OverFrac)-1])
	if overBig >= overOff {
		t.Errorf("1.0W guardband over-limit %.3f not below disabled %.3f", overBig, overOff)
	}
	perfOff, perfBig := avg(r.NormPerf[0]), avg(r.NormPerf[len(r.NormPerf)-1])
	if perfBig >= perfOff {
		t.Errorf("1.0W guardband perf %.3f not below disabled %.3f", perfBig, perfOff)
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestPlatformSpecificity(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-platform training is slow; skipped with -short")
	}
	r, err := sharedCtx(t).PlatformSpecificity()
	if err != nil {
		t.Fatal(err)
	}
	// The published model degrades substantially off-platform and
	// retraining recovers it — §II's platform-specificity claim.
	if r.MAE755On738 < 2*r.MAE755On755 {
		t.Errorf("755 model on 738 MAE %.3f not clearly worse than on-platform %.3f",
			r.MAE755On738, r.MAE755On755)
	}
	if r.MAE738Retrained > r.MAE755On738/3 {
		t.Errorf("retraining left MAE %.3f vs cross-platform %.3f", r.MAE738Retrained, r.MAE755On738)
	}
	if len(r.Rows) != 5 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// The low-voltage part needs smaller-or-equal alpha at every
		// shared frequency (dynamic power scales with V^2).
		if row.AlphaRetrained > row.Alpha755*1.05 {
			t.Errorf("%d MHz: retrained alpha %.3f above 755's %.3f", row.FreqMHz, row.AlphaRetrained, row.Alpha755)
		}
	}
	var sb strings.Builder
	if err := r.Print(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestRegistryWellFormed(t *testing.T) {
	names := map[string]bool{}
	for _, e := range Registry() {
		if e.Name == "" || e.Describe == "" || e.Run == nil {
			t.Errorf("incomplete registry entry %+v", e)
		}
		if names[e.Name] {
			t.Errorf("duplicate registry name %q", e.Name)
		}
		names[e.Name] = true
	}
	for _, want := range []string{"fig1", "fig11", "table4", "scorecard", "sharedbudget", "platform"} {
		if !names[want] {
			t.Errorf("registry missing %q", want)
		}
	}
	// Smoke-run a cheap entry through the registry interface.
	ctx, err := NewContext(Options{Seed: 3, ScaleDown: 10})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range Registry() {
		if e.Name != "fig2" {
			continue
		}
		res, err := e.Run(ctx)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.Print(&sb); err != nil {
			t.Fatal(err)
		}
	}
}
