// Package experiment regenerates every table and figure of the
// paper's evaluation on the simulated platform. Each entry point
// returns a typed result with a Print method that emits the same rows
// or series the paper reports; EXPERIMENTS.md records the paper-vs-
// measured comparison.
//
// All experiments are deterministic for a given Options.Seed: the
// platform runs on a virtual clock and every run derives its noise
// stream from the seed and workload name only, so policy comparisons
// are paired.
package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"aapm/internal/control"
	"aapm/internal/kernel"
	"aapm/internal/machine"
	"aapm/internal/model"
	"aapm/internal/phase"
	"aapm/internal/pstate"
	"aapm/internal/sensor"
	"aapm/internal/spec"
	"aapm/internal/trace"
)

// Options configures an experiment context.
type Options struct {
	// Seed drives measurement noise and workload jitter.
	Seed int64
	// Chain overrides the measurement chain; nil selects NIDefault.
	Chain *sensor.Chain
	// ScaleDown divides every workload's iteration count, trading
	// fidelity for speed (used by short test runs); 0/1 = full length.
	ScaleDown int
	// Parallelism bounds concurrent runs; 0 = GOMAXPROCS.
	Parallelism int
	// Repeats runs each configuration this many times on derived seeds
	// and keeps the run with the median execution time — the paper's
	// "execute three times and report the median run" methodology.
	// 0/1 = single run.
	Repeats int
	// Observer, when non-nil, is invoked once per executed run with the
	// workload and policy names; a non-nil hook it returns is
	// subscribed to that run's session. Hooks on the bus are purely
	// observational, so traces (and therefore cached results) are
	// unchanged. Runs may execute concurrently — the factory and its
	// hooks must tolerate that.
	Observer func(workload, policy string) machine.Hook
	// Engine selects the tick engine executing each run: "" or
	// "batch" steps runs through the batch kernel (internal/kernel)
	// — the zero-allocation fast path — while "staged" forces the
	// staged reference engine (machine.Session). The two are
	// byte-identical by construction (the differential suite pins
	// it), so results and caches are engine-independent; "staged"
	// exists for cross-checks and honest baseline timing.
	Engine string
	// FleetNodes sizes the fleetscale experiment's population; 0
	// selects 100,000 nodes.
	FleetNodes int
	// FleetLevels is the fleetscale allocation-tree depth; 0 selects 3.
	FleetLevels int
	// FleetFanout is the fleetscale children-per-group bound; 0
	// selects the fleet default (64).
	FleetFanout int
	// Ctx, when non-nil, cancels in-flight experiment work: once it
	// is done, no new run is started (forEach stops launching and run
	// repetitions stop between executions) and the context's error is
	// returned. Results are unchanged for work that did complete —
	// cancellation only cuts the computation short. nil means never
	// canceled.
	Ctx context.Context
}

// ctxErr returns the configured context's error, if any.
func (c *Context) ctxErr() error {
	if c.opts.Ctx == nil {
		return nil
	}
	return c.opts.Ctx.Err()
}

// ctxDone returns the configured context's done channel (nil — which
// never fires in a select — when no context was configured).
func (c *Context) ctxDone() <-chan struct{} {
	if c.opts.Ctx == nil {
		return nil
	}
	return c.opts.Ctx.Done()
}

// Context owns the shared platform configuration and a cache of
// completed runs, so figures that share baselines (e.g. the
// unconstrained 2 GHz suite) don't recompute them.
type Context struct {
	opts  Options
	table *pstate.Table
	chain sensor.Chain

	mu        sync.Mutex
	runs      map[string]*trace.Run
	workloads map[string]phase.Workload

	tableIIIOnce sync.Once
	tableIII     *TableIIIResult
	tableIIIErr  error
}

// NewContext builds an experiment context.
func NewContext(opts Options) (*Context, error) {
	chain := sensor.NIDefault()
	if opts.Chain != nil {
		chain = *opts.Chain
	}
	if err := chain.Validate(); err != nil {
		return nil, err
	}
	if opts.ScaleDown < 0 {
		return nil, fmt.Errorf("experiment: negative ScaleDown")
	}
	switch opts.Engine {
	case "", "batch", "staged":
	default:
		return nil, fmt.Errorf("experiment: unknown engine %q", opts.Engine)
	}
	ws, err := spec.All()
	if err != nil {
		return nil, err
	}
	byName := make(map[string]phase.Workload, len(ws))
	for _, w := range ws {
		if opts.ScaleDown > 1 {
			w.Iterations = max(1, w.Repeats()/opts.ScaleDown)
		}
		byName[w.Name] = w
	}
	return &Context{
		opts:      opts,
		table:     pstate.PentiumM755(),
		chain:     chain,
		runs:      make(map[string]*trace.Run),
		workloads: byName,
	}, nil
}

// Table returns the platform's p-state table.
func (c *Context) Table() *pstate.Table { return c.table }

// Workload returns the (possibly scaled) suite workload by name.
func (c *Context) Workload(name string) (phase.Workload, error) {
	w, ok := c.workloads[name]
	if !ok {
		return phase.Workload{}, fmt.Errorf("experiment: unknown workload %q", name)
	}
	return w, nil
}

// SuiteNames returns the benchmark names in suite order.
func (c *Context) SuiteNames() []string { return spec.Names() }

// govFactory builds a fresh governor per run (governors are stateful).
// A nil factory result means "no governor" (pinned start state).
type govFactory func() (machine.Governor, error)

// run executes the named workload under the factory's governor on a
// fresh machine, caching by key.
func (c *Context) run(key, workload string, f govFactory) (*trace.Run, error) {
	c.mu.Lock()
	if r, ok := c.runs[key]; ok {
		c.mu.Unlock()
		return r, nil
	}
	c.mu.Unlock()

	w, err := c.Workload(workload)
	if err != nil {
		return nil, err
	}
	reps := c.opts.Repeats
	if reps < 1 {
		reps = 1
	}
	runs := make([]*trace.Run, 0, reps)
	for rep := 0; rep < reps; rep++ {
		if err := c.ctxErr(); err != nil {
			return nil, err
		}
		// Each repetition gets its own noise/jitter stream; governors
		// are stateful, so each gets a fresh instance too.
		m, err := machine.New(machine.Config{Chain: c.chain, Seed: c.opts.Seed + int64(rep)*1_000_003})
		if err != nil {
			return nil, err
		}
		var g machine.Governor
		if f != nil {
			g, err = f()
			if err != nil {
				return nil, err
			}
		}
		var hooks []machine.Hook
		if c.opts.Observer != nil {
			policy := "none"
			if g != nil {
				policy = g.Name()
			}
			if h := c.opts.Observer(w.Name, policy); h != nil {
				hooks = append(hooks, h)
			}
		}
		r, err := c.execute(m, w, g, hooks)
		if err != nil {
			return nil, err
		}
		runs = append(runs, r)
	}
	r := medianByDuration(runs)
	c.mu.Lock()
	c.runs[key] = r
	c.mu.Unlock()
	return r, nil
}

// execute runs one workload/governor pair on the configured engine.
// The default is the batch kernel, which is byte-identical to the
// staged reference by construction; Options.Engine == "staged" forces
// the reference path for cross-checks and baseline timing.
func (c *Context) execute(m *machine.Machine, w phase.Workload, g machine.Governor, hooks []machine.Hook) (*trace.Run, error) {
	if c.opts.Engine == "staged" {
		return m.RunWith(w, g, hooks...)
	}
	opts := kernel.BatchOptions{RetainTraces: true}
	if len(hooks) > 0 {
		opts.Hooks = func(int) []machine.Hook { return hooks }
	}
	b, err := kernel.NewBatch([]kernel.BatchNode{{Machine: m, Workload: w, Governor: g}}, opts)
	if err != nil {
		return nil, err
	}
	if err := b.Run(); err != nil {
		return nil, err
	}
	return b.Result(0), nil
}

// medianByDuration returns the run with the median execution time (the
// paper's SPEC reporting convention).
func medianByDuration(runs []*trace.Run) *trace.Run {
	if len(runs) == 1 {
		return runs[0]
	}
	sorted := make([]*trace.Run, len(runs))
	copy(sorted, runs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Duration < sorted[j].Duration })
	return sorted[len(sorted)/2]
}

// RunStatic runs a workload pinned at freqMHz.
func (c *Context) RunStatic(workload string, freqMHz int) (*trace.Run, error) {
	idx := c.table.IndexOf(freqMHz)
	if idx < 0 {
		return nil, fmt.Errorf("experiment: no p-state %d MHz", freqMHz)
	}
	key := fmt.Sprintf("%s/static%d", workload, freqMHz)
	return c.run(key, workload, func() (machine.Governor, error) {
		return control.NewStaticClock(idx, fmt.Sprintf("static%d", freqMHz)), nil
	})
}

// RunPM runs a workload under PerformanceMaximizer at limitW.
func (c *Context) RunPM(workload string, limitW float64) (*trace.Run, error) {
	key := fmt.Sprintf("%s/pm%.1f", workload, limitW)
	return c.run(key, workload, func() (machine.Governor, error) {
		return control.NewPerformanceMaximizer(control.PMConfig{LimitW: limitW})
	})
}

// RunPS runs a workload under PowerSave at the given floor using the
// eq. 3 model with the given exponent.
func (c *Context) RunPS(workload string, floor, exponent float64) (*trace.Run, error) {
	key := fmt.Sprintf("%s/ps%.2f/e%.2f", workload, floor, exponent)
	return c.run(key, workload, func() (machine.Governor, error) {
		return control.NewPowerSave(control.PSConfig{
			Floor: floor,
			Perf:  model.PerfModel{Threshold: model.PaperDCUThreshold, Exponent: exponent},
		})
	})
}

// forEach runs fn over the names with bounded parallelism, stopping
// early on error.
func (c *Context) forEach(names []string, fn func(name string) error) error {
	return c.forEachN(len(names), func(i int) error { return fn(names[i]) })
}

// forEachN runs fn over 0..n-1 with bounded parallelism. The first
// error stops new work from being launched (already-running jobs
// finish), and every error observed is returned joined rather than
// silently discarded.
func (c *Context) forEachN(n int, fn func(i int) error) error {
	par := c.opts.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := c.ctxErr(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		sem      = make(chan struct{}, par)
		stop     = make(chan struct{})
		stopOnce sync.Once
		mu       sync.Mutex
		errs     []error
		wg       sync.WaitGroup
	)
launch:
	for i := 0; i < n; i++ {
		select {
		case <-stop:
			// A job failed: abandon the remaining work.
			break launch
		case <-c.ctxDone():
			// Canceled: stop launching; running jobs finish and the
			// context error joins whatever they returned.
			mu.Lock()
			errs = append(errs, c.ctxErr())
			mu.Unlock()
			break launch
		default:
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			if err := fn(i); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
				stopOnce.Do(func() { close(stop) })
			}
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// PowerLimits are the eight PM evaluation limits of §IV-A.2.
func PowerLimits() []float64 {
	return []float64{17.5, 16.5, 15.5, 14.5, 13.5, 12.5, 11.5, 10.5}
}

// Floors are the four PS evaluation performance floors of §IV-B.2.
func Floors() []float64 { return []float64{0.80, 0.60, 0.40, 0.20} }
