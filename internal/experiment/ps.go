package experiment

import (
	"fmt"
	"io"

	"aapm/internal/model"
	"aapm/internal/trace"
)

// Fig8Result is the PS timeline on ammp with an 80% performance floor
// (Figure 8).
type Fig8Result struct {
	Unconstrained *trace.Run
	PS80          *trace.Run
}

// Fig8PSTimeline runs ammp unconstrained and under PS at 80%.
func (c *Context) Fig8PSTimeline() (*Fig8Result, error) {
	res := &Fig8Result{}
	jobs := []func() error{
		func() (err error) { res.Unconstrained, err = c.RunStatic("ammp", 2000); return },
		func() (err error) { res.PS80, err = c.RunPS("ammp", 0.80, model.PaperExponent); return },
	}
	if err := c.forEachN(len(jobs), func(i int) error { return jobs[i]() }); err != nil {
		return nil, err
	}
	return res, nil
}

// Print renders the PS timeline.
func (r *Fig8Result) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig 8: PowerSave on ammp with an 80%% performance floor\n"); err != nil {
		return err
	}
	for _, run := range []*trace.Run{r.Unconstrained, r.PS80} {
		if err := run.TimelineSummary(w); err != nil {
			return err
		}
	}
	if err := trace.RenderASCII(w, "  frequency (MHz) under PS(80%)", 100, 8,
		trace.Series{Name: "freq", Values: r.PS80.Freqs()}); err != nil {
		return err
	}
	loss := 1 - r.Unconstrained.Duration.Seconds()/r.PS80.Duration.Seconds()
	save := 1 - r.PS80.MeasuredEnergyJ/r.Unconstrained.MeasuredEnergyJ
	_, err := fmt.Fprintf(w, "ammp @80%%: perf loss %.1f%%, energy savings %.1f%%\n", loss*100, save*100)
	return err
}

// Fig9Result is the suite-level PS study (Figure 9): performance
// reduction and energy savings per floor, plus the 600 MHz bound.
type Fig9Result struct {
	Rows []Fig9Row
	// MinFreq is the 600 MHz upper bound on savings.
	MinFreq Fig9Row
}

// Fig9Row is one floor's suite outcome.
type Fig9Row struct {
	Floor float64
	// PerfReduction is 1 - T(2GHz)/T(PS) over suite total time.
	PerfReduction float64
	// EnergySavings is 1 - E(PS)/E(2GHz) over suite total energy.
	EnergySavings float64
	// Violated reports whether the suite-level reduction exceeded the
	// allowed 1-Floor.
	Violated bool
}

// Fig9PSSuite sweeps the four floors over the full suite with the
// published eq. 3 model (exponent 0.81).
func (c *Context) Fig9PSSuite() (*Fig9Result, error) {
	names := c.SuiteNames()
	floors := Floors()
	// 2 GHz + 600 MHz + each floor, per benchmark.
	if err := c.forEachN(len(names)*(len(floors)+2), func(i int) error {
		n := names[i/(len(floors)+2)]
		k := i % (len(floors) + 2)
		switch k {
		case 0:
			_, err := c.RunStatic(n, 2000)
			return err
		case 1:
			_, err := c.RunStatic(n, 600)
			return err
		default:
			_, err := c.RunPS(n, floors[k-2], model.PaperExponent)
			return err
		}
	}); err != nil {
		return nil, err
	}

	baseT, err := c.suiteTime(func(n string) (*trace.Run, error) { return c.RunStatic(n, 2000) })
	if err != nil {
		return nil, err
	}
	baseE, err := c.suiteEnergy(func(n string) (*trace.Run, error) { return c.RunStatic(n, 2000) })
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	for _, f := range floors {
		f := f
		t, err := c.suiteTime(func(n string) (*trace.Run, error) { return c.RunPS(n, f, model.PaperExponent) })
		if err != nil {
			return nil, err
		}
		e, err := c.suiteEnergy(func(n string) (*trace.Run, error) { return c.RunPS(n, f, model.PaperExponent) })
		if err != nil {
			return nil, err
		}
		row := Fig9Row{
			Floor:         f,
			PerfReduction: 1 - baseT.Seconds()/t.Seconds(),
			EnergySavings: 1 - e/baseE,
		}
		row.Violated = row.PerfReduction > (1-f)+1e-9
		res.Rows = append(res.Rows, row)
	}
	tMin, err := c.suiteTime(func(n string) (*trace.Run, error) { return c.RunStatic(n, 600) })
	if err != nil {
		return nil, err
	}
	eMin, err := c.suiteEnergy(func(n string) (*trace.Run, error) { return c.RunStatic(n, 600) })
	if err != nil {
		return nil, err
	}
	res.MinFreq = Fig9Row{
		Floor:         0,
		PerfReduction: 1 - baseT.Seconds()/tMin.Seconds(),
		EnergySavings: 1 - eMin/baseE,
	}
	return res, nil
}

// Print writes the Figure 9 series.
func (r *Fig9Result) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig 9: suite perf reduction and energy savings vs PS floor (exponent 0.81)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%8s %12s %12s %10s\n", "floor", "perf loss", "energy save", "compliant")
	for _, row := range r.Rows {
		ok := "yes"
		if row.Violated {
			ok = "NO"
		}
		fmt.Fprintf(w, "%7.0f%% %11.1f%% %11.1f%% %10s\n",
			row.Floor*100, row.PerfReduction*100, row.EnergySavings*100, ok)
	}
	_, err := fmt.Fprintf(w, "600 MHz bound: perf loss %.1f%%, energy save %.1f%%\n",
		r.MinFreq.PerfReduction*100, r.MinFreq.EnergySavings*100)
	return err
}

// Fig10Result is per-workload energy savings per floor (Figure 10),
// sorted by the maximum 600 MHz benefit, with the ALLBENCH divider.
type Fig10Result struct {
	Floors []float64
	Rows   []Fig10Row
	// AllBench is the suite-total row the paper uses to split above-
	// and below-average savers.
	AllBench Fig10Row
}

// Fig10Row is one workload's savings.
type Fig10Row struct {
	Name string
	// Savings[i] corresponds to Floors[i]; At600 is the bound.
	Savings []float64
	At600   float64
}

// Fig10EnergySavings computes the per-workload savings table.
func (c *Context) Fig10EnergySavings() (*Fig10Result, error) {
	if _, err := c.Fig9PSSuite(); err != nil { // ensures all runs exist
		return nil, err
	}
	names := c.SuiteNames()
	floors := Floors()
	res := &Fig10Result{Floors: floors}
	order := map[string]float64{}
	var sumBase, sum600 float64
	sums := make([]float64, len(floors))
	for _, n := range names {
		base, err := c.RunStatic(n, 2000)
		if err != nil {
			return nil, err
		}
		min, err := c.RunStatic(n, 600)
		if err != nil {
			return nil, err
		}
		row := Fig10Row{Name: n, At600: 1 - min.MeasuredEnergyJ/base.MeasuredEnergyJ}
		for i, f := range floors {
			ps, err := c.RunPS(n, f, model.PaperExponent)
			if err != nil {
				return nil, err
			}
			row.Savings = append(row.Savings, 1-ps.MeasuredEnergyJ/base.MeasuredEnergyJ)
			sums[i] += ps.MeasuredEnergyJ
		}
		order[n] = row.At600
		sumBase += base.MeasuredEnergyJ
		sum600 += min.MeasuredEnergyJ
		res.Rows = append(res.Rows, row)
	}
	sorted := sortByValue(names, order, false)
	byName := map[string]Fig10Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	res.Rows = res.Rows[:0]
	for _, n := range sorted {
		res.Rows = append(res.Rows, byName[n])
	}
	res.AllBench = Fig10Row{Name: "ALLBENCH", At600: 1 - sum600/sumBase}
	for i := range floors {
		res.AllBench.Savings = append(res.AllBench.Savings, 1-sums[i]/sumBase)
	}
	return res, nil
}

// Print writes the Figure 10 table.
func (r *Fig10Result) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig 10: energy savings per workload and PS floor (sorted by 600 MHz bound)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s", "benchmark")
	for _, f := range r.Floors {
		fmt.Fprintf(w, " %7.0f%%", f*100)
	}
	fmt.Fprintf(w, " %8s\n", "@600MHz")
	printRow := func(row Fig10Row) {
		fmt.Fprintf(w, "%-10s", row.Name)
		for _, s := range row.Savings {
			fmt.Fprintf(w, " %7.1f%%", s*100)
		}
		fmt.Fprintf(w, " %7.1f%%\n", row.At600*100)
	}
	inserted := false
	for _, row := range r.Rows {
		if !inserted && row.At600 < r.AllBench.At600 {
			printRow(r.AllBench)
			inserted = true
		}
		printRow(row)
	}
	if !inserted {
		printRow(r.AllBench)
	}
	return nil
}

// Fig11Result is per-workload performance reduction per floor
// (Figure 11), with floor-violation detection and the exponent
// ablation of §IV-B.2.
type Fig11Result struct {
	Floors []float64
	Rows   []Fig11Row
	// AllBench divides above/below-average reduction.
	AllBench Fig11Row
	// Violations lists (workload, floor) pairs whose reduction
	// exceeded the allowance with the 0.81 exponent.
	Violations []Violation
}

// Fig11Row is one workload's reductions.
type Fig11Row struct {
	Name       string
	Reductions []float64
	At600      float64
}

// Violation is one floor violation with both exponents' outcomes.
type Violation struct {
	Name  string
	Floor float64
	// Reduction081/Reduction059 are the measured perf losses with the
	// two exponents; allowed is 1-Floor.
	Reduction081 float64
	Reduction059 float64
	Allowed      float64
}

// violationSlack: reductions beyond allowance by more than this count
// as violations (filters boundary rounding on exact-floor states).
const violationSlack = 0.01

// Fig11PerfReduction computes the per-workload reduction table and
// the art/mcf exponent ablation.
func (c *Context) Fig11PerfReduction() (*Fig11Result, error) {
	if _, err := c.Fig9PSSuite(); err != nil {
		return nil, err
	}
	names := c.SuiteNames()
	floors := Floors()
	res := &Fig11Result{Floors: floors}
	order := map[string]float64{}
	var sumBase, sum600 float64
	sums := make([]float64, len(floors))
	for _, n := range names {
		base, err := c.RunStatic(n, 2000)
		if err != nil {
			return nil, err
		}
		min, err := c.RunStatic(n, 600)
		if err != nil {
			return nil, err
		}
		row := Fig11Row{Name: n, At600: 1 - base.Duration.Seconds()/min.Duration.Seconds()}
		for i, f := range floors {
			ps, err := c.RunPS(n, f, model.PaperExponent)
			if err != nil {
				return nil, err
			}
			red := 1 - base.Duration.Seconds()/ps.Duration.Seconds()
			row.Reductions = append(row.Reductions, red)
			sums[i] += ps.Duration.Seconds()
			if red > (1-f)+violationSlack {
				alt, err := c.RunPS(n, f, model.PaperExponentAlt)
				if err != nil {
					return nil, err
				}
				res.Violations = append(res.Violations, Violation{
					Name: n, Floor: f,
					Reduction081: red,
					Reduction059: 1 - base.Duration.Seconds()/alt.Duration.Seconds(),
					Allowed:      1 - f,
				})
			}
		}
		order[n] = row.At600
		sumBase += base.Duration.Seconds()
		sum600 += min.Duration.Seconds()
		res.Rows = append(res.Rows, row)
	}
	sorted := sortByValue(names, order, true)
	byName := map[string]Fig11Row{}
	for _, r := range res.Rows {
		byName[r.Name] = r
	}
	res.Rows = res.Rows[:0]
	for _, n := range sorted {
		res.Rows = append(res.Rows, byName[n])
	}
	res.AllBench = Fig11Row{Name: "ALLBENCH", At600: 1 - sumBase/sum600}
	for i := range floors {
		res.AllBench.Reductions = append(res.AllBench.Reductions, 1-sumBase/sums[i])
	}
	return res, nil
}

// Print writes the Figure 11 table and the violation/ablation report.
func (r *Fig11Result) Print(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "Fig 11: performance reduction per workload and PS floor (sorted by 600 MHz reduction)\n"); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s", "benchmark")
	for _, f := range r.Floors {
		fmt.Fprintf(w, " %7.0f%%", f*100)
	}
	fmt.Fprintf(w, " %8s\n", "@600MHz")
	printRow := func(row Fig11Row) {
		fmt.Fprintf(w, "%-10s", row.Name)
		for _, s := range row.Reductions {
			fmt.Fprintf(w, " %7.1f%%", s*100)
		}
		fmt.Fprintf(w, " %7.1f%%\n", row.At600*100)
	}
	inserted := false
	for _, row := range r.Rows {
		if !inserted && row.At600 > r.AllBench.At600 {
			printRow(r.AllBench)
			inserted = true
		}
		printRow(row)
	}
	if !inserted {
		printRow(r.AllBench)
	}
	if len(r.Violations) == 0 {
		fmt.Fprintln(w, "no floor violations (paper: art and mcf violate with exponent 0.81)")
		return nil
	}
	fmt.Fprintln(w, "floor violations with exponent 0.81, re-run with 0.59 (paper: art 42.2%->26.3%/48.3%, mcf 27.7%->17.9%):")
	for _, v := range r.Violations {
		fmt.Fprintf(w, "  %-8s floor %2.0f%%: loss %5.1f%% (allowed %2.0f%%) -> with e=0.59: %5.1f%%\n",
			v.Name, v.Floor*100, v.Reduction081*100, v.Allowed*100, v.Reduction059*100)
	}
	return nil
}
