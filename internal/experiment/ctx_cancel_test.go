package experiment

import (
	"context"
	"errors"
	"testing"
)

// TestCanceledContextAbandonsRuns pins Options.Ctx: a canceled context
// makes experiment entry points fail fast instead of simulating.
func TestCanceledContextAbandonsRuns(t *testing.T) {
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, par := range []int{1, 4} {
		c, err := NewContext(Options{Seed: 7, Parallelism: par, Ctx: cctx})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Fig1PowerVariation(); !errors.Is(err, context.Canceled) {
			t.Errorf("Parallelism=%d: err = %v, want context.Canceled", par, err)
		}
	}
}
