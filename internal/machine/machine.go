// Package machine assembles the simulated Pentium M platform: the
// p-state actuator, the PMU, the ground-truth power model and the
// measurement chain, driven by a virtual 10 ms sampling clock.
//
// A Machine executes a phase-trace workload (package phase) under a
// Governor — the power-management policy. Each tick runs the staged
// engine (stages.go): execute synthesizes the interval's counter
// activity from the active phase and p-state, measure computes true
// power and the sensed sample, observe exposes the PMU/thermal view,
// govern asks the policy for the next p-state, and actuate applies
// it. Cross-cutting consumers — trace recording, degradation logs,
// metrics, cluster coordination — subscribe to the per-tick Hook bus
// (tick.go) rather than living inline in the loop. Everything runs on
// virtual time with a seeded RNG, so runs are deterministic and free
// of host GC/runtime jitter.
package machine

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"

	"aapm/internal/counters"
	"aapm/internal/faults"
	"aapm/internal/phase"
	"aapm/internal/power"
	"aapm/internal/pstate"
	"aapm/internal/sensor"
	"aapm/internal/thermal"
	"aapm/internal/trace"
)

// TickInfo is what a governor observes each monitoring interval —
// exactly what the paper's user-level prototype sees: the elapsed
// counters for the interval, the active p-state, and (for policies
// that use measured-power feedback, an extension the paper proposes)
// the sensed power sample.
type TickInfo struct {
	// Now is the virtual time at the end of the interval; Interval is
	// its length.
	Now      time.Duration
	Interval time.Duration
	// Sample holds the interval's counter deltas.
	Sample counters.Sample
	// PState is the state the interval executed at; PStateIndex its
	// table index.
	PState      pstate.PState
	PStateIndex int
	// Table is the platform's p-state table.
	Table *pstate.Table
	// MeasuredPowerW is the sensed average power for the interval.
	MeasuredPowerW float64
	// TempC is the digital thermal sensor reading at interval end;
	// 0 when the platform has no thermal model configured.
	TempC float64
	// Duty is the clock-modulation duty cycle the interval ran at.
	Duty float64
}

// Governor decides the p-state for the next interval. Implementations
// live in package control.
type Governor interface {
	// Name labels the policy in traces.
	Name() string
	// Tick returns the desired p-state index for the next interval.
	Tick(TickInfo) int
}

// InitialStater is optionally implemented by governors that want a
// specific starting p-state (e.g. a static-clocking baseline); it
// overrides the machine's configured start.
type InitialStater interface {
	// InitialIndex returns the starting p-state index given the
	// machine's default.
	InitialIndex(defaultIndex int) int
}

// Throttler is optionally implemented by governors that additionally
// drive ACPI T-state style clock modulation. Duty is queried after
// each Tick and applies to the next interval: the core receives
// duty*f cycles per second; the stopped fraction draws gated idle
// power. Values outside (0,1] clamp.
type Throttler interface {
	Duty() float64
}

// DegradationReporter is optionally implemented by governors that
// degrade gracefully under faulted inputs. The session drains the log
// after every tick, stamps each entry with the virtual time, and
// appends it to the run's degradation log.
type DegradationReporter interface {
	// DrainDegradations returns and clears the events accumulated
	// since the last call.
	DrainDegradations() []trace.Degradation
}

// Config describes a platform instance.
type Config struct {
	// Table is the p-state table; nil selects the Pentium M 755 table.
	Table *pstate.Table
	// Truth is the ground-truth power model; nil selects the built-in
	// Pentium M truth (requires the default table).
	Truth *power.GroundTruth
	// Chain is the power measurement chain; the zero value is ideal.
	Chain sensor.Chain
	// SamplePeriod is the monitoring interval; 0 selects 10 ms.
	SamplePeriod time.Duration
	// TransitionLatency is the DVFS switch cost; negative selects the
	// default, 0 is instantaneous.
	TransitionLatency time.Duration
	// Thermal, when non-nil, enables the die-temperature model; the
	// sensor reading is exposed to governors via TickInfo.TempC.
	Thermal *thermal.Config
	// Faults, when non-nil and non-zero, injects sensor, counter and
	// actuator faults into every run (package faults). Faults corrupt
	// only what policies observe — measured power, the PMU sample the
	// governor sees, and transition outcomes — never the ground-truth
	// physics, so adherence evaluation against true power stays exact.
	Faults *faults.Plan
	// Seed drives measurement noise and workload jitter. Runs of the
	// same workload on the same seed observe identical jitter
	// regardless of policy, so policy comparisons are paired.
	Seed int64
	// StartFreqMHz is the initial p-state frequency; 0 selects the
	// highest state (matching how the paper's runs begin at full
	// speed). Any other value must name a table state.
	StartFreqMHz int
	// MaxTicks bounds a run; 0 selects a generous default.
	MaxTicks int
}

// DefaultSamplePeriod matches the paper's 10 ms monitoring interval.
const DefaultSamplePeriod = 10 * time.Millisecond

const defaultMaxTicks = 4_000_000

// Machine is a simulated platform instance.
type Machine struct {
	table    *pstate.Table
	truth    *power.GroundTruth
	chain    sensor.Chain
	period   time.Duration
	translat time.Duration
	thermal  *thermal.Config
	faults   *faults.Plan
	seed     int64
	startIdx int
	maxTicks int

	recorder *sensor.Recorder
}

// New validates cfg and builds a Machine.
func New(cfg Config) (*Machine, error) {
	var (
		t     *pstate.Table
		truth *power.GroundTruth
	)
	switch {
	case cfg.Truth != nil:
		truth = cfg.Truth
		t = truth.Table()
		if cfg.Table != nil && cfg.Table != t {
			return nil, fmt.Errorf("machine: Table differs from Truth's table")
		}
	case cfg.Table != nil:
		t = cfg.Table
		var err error
		truth, err = power.NewGroundTruth(t)
		if err != nil {
			return nil, err
		}
	default:
		t = pstate.PentiumM755()
		truth = power.PentiumM755Truth()
	}
	if err := cfg.Chain.Validate(); err != nil {
		return nil, err
	}
	period := cfg.SamplePeriod
	if period == 0 {
		period = DefaultSamplePeriod
	}
	if period < 0 {
		return nil, fmt.Errorf("machine: negative sample period")
	}
	translat := cfg.TransitionLatency
	if translat < 0 {
		translat = pstate.DefaultTransitionLatency
	}
	start := t.Len() - 1
	if cfg.StartFreqMHz != 0 {
		start = t.IndexOf(cfg.StartFreqMHz)
		if start < 0 {
			return nil, fmt.Errorf("machine: no p-state with frequency %d MHz", cfg.StartFreqMHz)
		}
	}
	maxTicks := cfg.MaxTicks
	if maxTicks <= 0 {
		maxTicks = defaultMaxTicks
	}
	if cfg.Thermal != nil {
		if err := cfg.Thermal.Validate(); err != nil {
			return nil, err
		}
	}
	var plan *faults.Plan
	if cfg.Faults != nil && !cfg.Faults.Zero() {
		if err := cfg.Faults.Validate(); err != nil {
			return nil, err
		}
		p := *cfg.Faults
		plan = &p
	}
	return &Machine{
		table:    t,
		truth:    truth,
		chain:    cfg.Chain,
		period:   period,
		translat: translat,
		thermal:  cfg.Thermal,
		faults:   plan,
		seed:     cfg.Seed,
		startIdx: start,
		maxTicks: maxTicks,
		recorder: &sensor.Recorder{},
	}, nil
}

// Table returns the platform's p-state table.
func (m *Machine) Table() *pstate.Table { return m.table }

// Truth returns the platform's ground-truth power model. Policies must
// not use it (they only get TickInfo); experiments use it to evaluate
// adherence.
func (m *Machine) Truth() *power.GroundTruth { return m.truth }

// SamplePeriod returns the monitoring interval.
func (m *Machine) SamplePeriod() time.Duration { return m.period }

// Recorder returns the acquisition stream of all runs so far.
func (m *Machine) Recorder() *sensor.Recorder { return m.recorder }

// runState tracks workload progress across intervals.
type runState struct {
	w         phase.Workload
	iter      int     // current repeat
	idx       int     // current phase within the list
	remInstr  float64 // remaining instructions of current phase
	remIdle   time.Duration
	exhausted bool
}

func newRunState(w phase.Workload) *runState {
	s := &runState{w: w}
	s.load()
	return s
}

func (s *runState) load() {
	for {
		if s.idx >= len(s.w.Phases) {
			s.idx = 0
			s.iter++
			if s.iter >= s.w.Repeats() {
				s.exhausted = true
				return
			}
		}
		p := s.w.Phases[s.idx]
		if p.Idle() {
			s.remIdle = p.IdleDuration
			if s.remIdle > 0 {
				return
			}
		} else if p.Instructions > 0 {
			s.remInstr = p.Instructions
			return
		}
		s.idx++
	}
}

func (s *runState) current() phase.Params { return s.w.Phases[s.idx] }

func (s *runState) advance() {
	s.idx++
	s.load()
}

// Session is an in-progress run advanced one monitoring interval at a
// time. It exists for co-simulation: a coordinator can interleave the
// steps of several machines and retarget their governors between
// intervals (e.g. reassigning per-machine power limits from a shared
// budget). Machine.Run is the single-machine convenience wrapper.
//
// Concurrency: a Session is not safe for concurrent use — one
// goroutine at a time may call Step (or any other method), though the
// goroutine may change between calls given a happens-before edge (the
// cluster worker pool's barrier provides one). Distinct sessions may
// be stepped concurrently: a session's mutable state is its own
// (per-session RNG, actuator, thermal model, trace, hooks), and the
// machine state it shares — the p-state table, sensor chain, power
// truth, config — is read-only after New; the shared sensor.Recorder
// is internally locked. Governor retargeting (e.g. SetLimit) must
// happen between steps, from the coordinating goroutine.
type Session struct {
	m      *Machine
	w      phase.Workload
	g      Governor
	policy string

	rng *rand.Rand
	act *pstate.Actuator
	st  *runState
	tm  *thermal.Model
	inj *faults.Injector
	run *trace.Run

	hooks []Hook
	clock stageClock

	now        time.Duration
	pendStall  time.Duration
	energyTrue power.Energy
	energyMeas power.Energy
	duty       float64
	tick       int
	done       bool
	finalized  bool
}

// NewSession validates the workload and prepares an incremental run.
func (m *Machine) NewSession(w phase.Workload, g Governor) (*Session, error) {
	if err := w.Validate(); err != nil {
		return nil, err
	}
	act := pstate.NewActuator(m.table)
	act.SetTransitionLatency(m.translat)
	start := m.startIdx
	if is, ok := g.(InitialStater); ok {
		start = is.InitialIndex(start)
	}
	if _, err := act.Set(start); err != nil {
		return nil, err
	}
	act.ResetStats() // positioning is not a policy transition

	policy := "static"
	if g != nil {
		policy = g.Name()
	}
	var tm *thermal.Model
	if m.thermal != nil {
		var err error
		tm, err = thermal.New(*m.thermal)
		if err != nil {
			return nil, err
		}
	}
	var inj *faults.Injector
	if m.faults != nil {
		// The injector's streams derive from seed+workload (like the
		// noise stream) so fault timelines are stable per run and
		// identical across policies — but from a separate source, so
		// enabling faults does not perturb the existing noise/jitter
		// sequence.
		var err error
		inj, err = faults.NewInjector(*m.faults, m.seed^int64(hashName(w.Name)))
		if err != nil {
			return nil, err
		}
	}
	s := &Session{
		m:      m,
		w:      w,
		g:      g,
		policy: policy,
		rng:    rand.New(rand.NewSource(m.seed ^ int64(hashName(w.Name)))),
		act:    act,
		st:     newRunState(w),
		tm:     tm,
		inj:    inj,
		run:    &trace.Run{Workload: w.Name, Policy: policy},
		duty:   1.0,
	}
	// The canonical trace recorder is the bus's first subscriber; every
	// row and degradation entry the rest of the system reads is built
	// by this hook, not by the engine itself.
	s.hooks = []Hook{&runRecorder{run: s.run}}
	m.recorder.Mark(0, w.Name, true)
	return s, nil
}

// Subscribe adds h to the session's observer bus. Hooks fire in
// subscription order, after the canonical trace recorder. Subscribe
// before the first Step; hooks must not mutate the session.
func (s *Session) Subscribe(h Hook) { s.hooks = append(s.hooks, h) }

// EnableStageTiming records per-stage wall-clock into every
// TickState.StageNanos the bus delivers. Off by default (each tick
// costs a handful of clock reads when on); purely observational, so
// virtual-time results are unaffected either way.
func (s *Session) EnableStageTiming() { s.clock.enabled = true }

// Done reports whether the workload has completed.
func (s *Session) Done() bool { return s.done }

// Now returns the session's virtual time.
func (s *Session) Now() time.Duration { return s.now }

// Governor returns the session's policy (nil for a pinned run).
func (s *Session) Governor() Governor { return s.g }

// LastRow returns the most recent trace row, if any interval completed.
func (s *Session) LastRow() (trace.Row, bool) {
	if len(s.run.Rows) == 0 {
		return trace.Row{}, false
	}
	return s.run.Rows[len(s.run.Rows)-1], true
}

// Result finalizes and returns the recorded trace. It may be called
// once the session is done (or early, to inspect a truncated run);
// finalization is idempotent and fires each hook's OnDone exactly
// once.
func (s *Session) Result() *trace.Run {
	if !s.finalized {
		s.m.recorder.Mark(s.now, s.w.Name, false)
		s.run.Duration = s.now
		s.run.EnergyJ = s.energyTrue.Joules()
		s.run.MeasuredEnergyJ = s.energyMeas.Joules()
		s.run.Transitions = s.act.Transitions()
		s.run.FailedTransitions = s.act.FailedTransitions()
		s.finalized = true
		for _, h := range s.hooks {
			h.OnDone(s.run)
		}
	}
	return s.run
}

// Run executes w under governor g (nil g pins the start p-state) and
// returns the recorded trace.
func (m *Machine) Run(w phase.Workload, g Governor) (*trace.Run, error) {
	return m.RunWith(w, g)
}

// RunWith executes w under governor g with the given hooks subscribed
// to the session's tick bus, returning the recorded trace.
func (m *Machine) RunWith(w phase.Workload, g Governor, hooks ...Hook) (*trace.Run, error) {
	s, err := m.NewSession(w, g)
	if err != nil {
		return nil, err
	}
	for _, h := range hooks {
		s.Subscribe(h)
	}
	for {
		done, err := s.Step()
		if err != nil {
			return nil, err
		}
		if done {
			return s.Result(), nil
		}
	}
}

// addActivity accumulates cycles of execution of behaviour b (with
// intensity jitter applied to the instruction-proportional rates) into
// the interval sample.
func addActivity(s *counters.Sample, b phase.Behavior, jitter, cycles float64) {
	addActivityP(s, &b, jitter, cycles)
}

// addActivityP is addActivity without the Behavior copy — the batch
// kernel's entry point (machine.AddActivityP). Same operations in the
// same order.
// setActivityP is addActivityP when the sample is known to be zero —
// adding to zero counts is setting them, so the read-modify-write pairs
// collapse to stores. Bit-identical results.
func setActivityP(s *counters.Sample, b *phase.Behavior, jitter, cycles float64) {
	s.SetCount(counters.Cycles, uint64(cycles+0.5))
	s.SetCount(counters.InstDecoded, uint64(b.DPC*jitter*cycles+0.5))
	s.SetCount(counters.InstRetired, uint64(b.IPC*jitter*cycles+0.5))
	s.SetCount(counters.DCUMissOutstanding, uint64(b.DCU*cycles+0.5))
	s.SetCount(counters.L2Requests, uint64(b.L2PC*jitter*cycles+0.5))
	s.SetCount(counters.MemRequests, uint64(b.MemPC*jitter*cycles+0.5))
	s.SetCount(counters.ResourceStalls, uint64(b.StallPC*cycles+0.5))
}

func addActivityP(s *counters.Sample, b *phase.Behavior, jitter, cycles float64) {
	// Unrolled (no closure) so the sample stays in registers on the
	// batch hot path; each count is rate*cycles+0.5 truncated, with the
	// rate grouped exactly as before (b.X*jitter, then *cycles).
	s.SetCount(counters.Cycles, s.Count(counters.Cycles)+uint64(cycles+0.5))
	s.SetCount(counters.InstDecoded, s.Count(counters.InstDecoded)+uint64(b.DPC*jitter*cycles+0.5))
	s.SetCount(counters.InstRetired, s.Count(counters.InstRetired)+uint64(b.IPC*jitter*cycles+0.5))
	s.SetCount(counters.DCUMissOutstanding, s.Count(counters.DCUMissOutstanding)+uint64(b.DCU*cycles+0.5))
	s.SetCount(counters.L2Requests, s.Count(counters.L2Requests)+uint64(b.L2PC*jitter*cycles+0.5))
	s.SetCount(counters.MemRequests, s.Count(counters.MemRequests)+uint64(b.MemPC*jitter*cycles+0.5))
	s.SetCount(counters.ResourceStalls, s.Count(counters.ResourceStalls)+uint64(b.StallPC*cycles+0.5))
}

// idlePowerFraction is the fraction of the p-state's base power drawn
// while the core is halted (deep clock gating).
const idlePowerFraction = 0.5

// intervalPower returns the interval-average true power: active power
// from counter rates over the busy portion, gated idle power over the
// rest.
func (m *Machine) intervalPower(idx int, s *counters.Sample, busy, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	c := m.truth.Coefficients(idx)
	idleW := c.Base * idlePowerFraction
	if busy <= 0 {
		return idleW
	}
	dpc, l2pc, mempc, dcu := s.PowerRates()
	activeW := m.truth.PowerFromRates(idx, dpc, l2pc, mempc, dcu)
	if busy == total {
		// bf below would be exactly 1 (x/x for finite nonzero x), making
		// the blend activeW*1 + idleW*0 — bit-identical to activeW for
		// any finite positive activeW, so the common fully-busy interval
		// skips the divisions.
		return activeW
	}
	bf := busy.Seconds() / total.Seconds()
	if bf > 1 {
		bf = 1
	}
	return activeW*bf + idleW*(1-bf)
}

func hashName(name string) uint32 {
	h := fnv.New32a()
	_, _ = h.Write([]byte(name))
	return h.Sum32()
}
