package machine

import (
	"fmt"
	"math"
	"time"
)

// Step advances the session by one monitoring interval and reports
// whether the workload completed. It drives the staged tick engine:
// execute → measure → observe → govern → actuate, each stage writing
// into one TickState record that the hook bus receives at the end of
// the interval.
func (s *Session) Step() (bool, error) {
	if s.done {
		return true, nil
	}
	if s.tick >= s.m.maxTicks {
		return false, fmt.Errorf("machine: run %s/%s exceeded %d ticks", s.w.Name, s.policy, s.m.maxTicks)
	}
	s.tick++
	ts := TickState{
		Tick:        s.tick,
		Start:       s.now,
		Interval:    s.m.period,
		PState:      s.act.Current(),
		PStateIndex: s.act.CurrentIndex(),
		Duty:        s.duty,
		Jitter:      1.0,
	}
	ts.WantIndex = ts.PStateIndex
	ts.NextDuty = ts.Duty

	s.clock.start()
	if !s.execute(&ts) {
		// The workload was already exhausted: nothing ran, so there is
		// no interval to report.
		s.done = true
		return true, nil
	}
	s.clock.mark(&ts, StageExecute)
	s.measure(&ts)
	s.clock.mark(&ts, StageMeasure)
	s.observe(&ts)
	s.clock.mark(&ts, StageObserve)

	s.now += ts.Used
	if s.st.exhausted {
		ts.Final = true
		s.done = true
		s.emitTick(ts)
		return true, nil
	}

	s.govern(&ts)
	s.clock.mark(&ts, StageGovern)
	if err := s.actuate(&ts); err != nil {
		return false, err
	}
	s.clock.mark(&ts, StageActuate)
	s.emitTick(ts)
	return false, nil
}

// execute advances the workload through the interval: it draws the
// per-interval intensity jitter, charges pending transition stall and
// the stopped fraction of a modulated clock, then walks phases
// accumulating cycles, instructions and counter activity into the
// tick's sample. It reports false when the workload was already
// exhausted (zero-length interval).
func (s *Session) execute(ts *TickState) bool {
	// Per-interval workload intensity jitter, identical across
	// policies for a given seed+workload+tick.
	if s.w.JitterPct > 0 {
		ts.Jitter = jitterFactor(s.w.JitterPct, s.rng.NormFloat64())
	}

	// Transition stall consumes interval time with the core halted,
	// as does the stopped fraction of a modulated clock (T-states).
	activeTime := ts.Interval
	stall := s.pendStall
	if stall > activeTime {
		stall = activeTime
	}
	s.pendStall -= stall
	if s.duty < 1 {
		stall += time.Duration(float64(activeTime-stall) * (1 - s.duty))
	}
	ts.Stall = stall
	remaining := activeTime - stall

	ps := ts.PState
	for remaining > 0 && !s.st.exhausted {
		p := s.st.current()
		ts.Phase = p.Name
		if p.Idle() {
			idle := s.st.remIdle
			if idle > remaining {
				s.st.remIdle -= remaining
				remaining = 0
				break
			}
			remaining -= idle
			s.st.remIdle = 0
			s.st.advance()
			continue
		}
		b := p.At(ps)
		ipcEff := b.IPC * ts.Jitter
		cyclesAvail := ps.FreqHz() * remaining.Seconds()
		instrPossible := cyclesAvail * ipcEff
		if instrPossible >= s.st.remInstr {
			// Phase completes within the interval.
			cyclesUsed := s.st.remInstr / ipcEff
			dt := time.Duration(cyclesUsed / ps.FreqHz() * float64(time.Second))
			if dt > remaining {
				dt = remaining
			}
			addActivity(&ts.Sample, b, ts.Jitter, cyclesUsed)
			ts.Instructions += s.st.remInstr
			ts.Busy += dt
			remaining -= dt
			s.st.advance()
			continue
		}
		addActivity(&ts.Sample, b, ts.Jitter, cyclesAvail)
		ts.Instructions += instrPossible
		s.st.remInstr -= instrPossible
		ts.Busy += remaining
		remaining = 0
	}
	// The interval may end early if the workload finished mid-interval;
	// a zero-length interval means it was already exhausted.
	ts.Used = ts.Interval - remaining
	return ts.Used > 0
}

// measure produces the interval's power observation: ground-truth
// interval-average power, the sensing chain's reading of it, and —
// when a fault plan is active — the injector's corruption of both the
// reading and the governor-visible counter sample. True and measured
// energy integrate here, and the acquisition stream records the
// sample.
func (s *Session) measure(ts *TickState) {
	m := s.m
	ts.TruePowerW = m.intervalPower(ts.PStateIndex, &ts.Sample, ts.Busy, ts.Used)
	ts.MeasuredPowerW = m.chain.Measure(ts.TruePowerW, s.rng)
	// The governor-visible sample; fault injection corrupts it (and
	// the measured power) without touching the true physics above.
	ts.Observed = ts.Sample
	if s.inj != nil {
		s.inj.BeginTick()
		ts.Observed = s.inj.Counters(ts.Sample)
		ts.MeasuredPowerW = s.inj.Sense(ts.MeasuredPowerW)
		s.drainInjector(ts.Start + ts.Used)
	}
	s.energyTrue.Add(ts.TruePowerW, ts.Used.Seconds())
	if !math.IsNaN(ts.MeasuredPowerW) {
		// Dropped acquisitions contribute no measured energy, the way
		// the paper's integration simply lacks the missing samples.
		s.energyMeas.Add(ts.MeasuredPowerW, ts.Used.Seconds())
	}
	m.recorder.Record(ts.Start+ts.Used, ts.MeasuredPowerW)
}

// observe finalizes what the monitoring layer exposes beyond the PMU
// sample: the thermal model integrates the interval's true power and
// its sensor reading becomes the tick's temperature.
func (s *Session) observe(ts *TickState) {
	if s.tm != nil {
		s.tm.Step(ts.TruePowerW, ts.Used)
		ts.TempC = s.tm.SensorC()
	}
}

// govern runs the policy tick on the interval's observations and
// drains the governor's graceful-degradation log onto the bus.
func (s *Session) govern(ts *TickState) {
	if s.g == nil {
		return
	}
	ts.WantIndex = s.g.Tick(TickInfo{
		Now:            s.now,
		Interval:       ts.Used,
		Sample:         ts.Observed,
		PState:         ts.PState,
		PStateIndex:    ts.PStateIndex,
		Table:          s.m.table,
		MeasuredPowerW: ts.MeasuredPowerW,
		TempC:          ts.TempC,
		Duty:           ts.Duty,
	})
	if dr, ok := s.g.(DegradationReporter); ok {
		for _, d := range dr.DrainDegradations() {
			d.T = s.now
			s.emitDegradation(d)
		}
	}
}

// actuate applies the governed decision: the p-state transition
// (possibly resolved through a faulted actuator) with its stall
// charged to upcoming intervals, then the next interval's
// clock-modulation duty.
func (s *Session) actuate(ts *TickState) error {
	if s.g == nil {
		return nil
	}
	if ts.WantIndex != ts.PStateIndex {
		ok, extra := true, time.Duration(0)
		if s.inj != nil {
			ok, extra = s.inj.Transition(s.act.Latency())
			s.drainInjector(s.now)
		}
		if ok {
			d, err := s.act.Set(ts.WantIndex)
			if err != nil {
				return fmt.Errorf("machine: governor %s: %w", s.policy, err)
			}
			s.pendStall += d + extra
			s.emitTransition(Transition{T: s.now, From: ts.PStateIndex, To: ts.WantIndex, OK: true, Stall: d + extra})
		} else {
			// Transition abandoned: the actuator stays put and the
			// failed attempts' stall time is still paid.
			s.act.RecordFailure(extra)
			s.pendStall += extra
			s.emitTransition(Transition{T: s.now, From: ts.PStateIndex, To: ts.WantIndex, OK: false, Stall: extra})
		}
	}
	if th, ok := s.g.(Throttler); ok {
		s.duty = clampDuty(th.Duty())
	}
	ts.NextDuty = s.duty
	return nil
}
