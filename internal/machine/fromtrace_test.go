package machine

// Record-and-replay round trip: the FromTrace inversion lives in
// package phase but can only be exercised end-to-end with a machine,
// so the integration test lives here.

import (
	"math"
	"testing"

	"aapm/internal/phase"
	"aapm/internal/spec"
)

func TestFromTraceReplayReproducesRun(t *testing.T) {
	w, err := spec.ByName("gap")
	if err != nil {
		t.Fatal(err)
	}
	w.Iterations = 3
	w.JitterPct = 0 // inversion reproduces means, not the jitter draw

	m, err := New(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := m.Run(w, nil)
	if err != nil {
		t.Fatal(err)
	}

	replayW, err := phase.FromTrace("gap-replay", orig.Rows, m.Table(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	replay, err := m2.Run(replayW, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Same frequency, same counters: duration, instructions and true
	// energy must all reproduce closely.
	if d := relErr(replay.Duration.Seconds(), orig.Duration.Seconds()); d > 0.02 {
		t.Errorf("replay duration off by %.1f%%: %v vs %v", d*100, replay.Duration, orig.Duration)
	}
	if d := relErr(replay.Instructions, orig.Instructions); d > 0.02 {
		t.Errorf("replay instructions off by %.1f%%", d*100)
	}
	if d := relErr(replay.EnergyJ, orig.EnergyJ); d > 0.05 {
		t.Errorf("replay energy off by %.1f%%: %g vs %g", d*100, replay.EnergyJ, orig.EnergyJ)
	}
}

func TestFromTracePreservesFrequencySensitivity(t *testing.T) {
	// Record swim (memory-bound) at 2 GHz, replay at 600 MHz: the
	// reconstruction must keep it memory-bound, i.e. lose far less
	// than the 70% a core-bound workload would.
	w, err := spec.ByName("swim")
	if err != nil {
		t.Fatal(err)
	}
	w.Iterations = 2
	w.JitterPct = 0

	m, _ := New(Config{Seed: 9})
	orig, err := m.Run(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	replayW, err := phase.FromTrace("swim-replay", orig.Rows, m.Table(), 4)
	if err != nil {
		t.Fatal(err)
	}
	slow, _ := New(Config{Seed: 9, StartFreqMHz: 600})
	slowRun, err := slow.Run(replayW, nil)
	if err != nil {
		t.Fatal(err)
	}
	loss := 1 - orig.Duration.Seconds()/slowRun.Duration.Seconds()
	if loss > 0.35 {
		t.Errorf("replayed swim loses %.1f%% at 600 MHz; memory-boundedness not preserved", loss*100)
	}
}

func TestFromTraceHandlesIdleRows(t *testing.T) {
	m, _ := New(Config{Seed: 2})
	w := phase.Workload{
		Name: "idleful",
		Phases: []phase.Params{
			{Name: "work", Instructions: 2e8, CPICore: 0.5, MLP: 1, SpecFactor: 1.1},
			{Name: "idle", IdleDuration: 100_000_000}, // 100ms
		},
	}
	orig, err := m.Run(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	replayW, err := phase.FromTrace("idle-replay", orig.Rows, m.Table(), 2)
	if err != nil {
		t.Fatal(err)
	}
	m2, _ := New(Config{Seed: 2})
	replay, err := m2.Run(replayW, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := relErr(replay.Duration.Seconds(), orig.Duration.Seconds()); d > 0.05 {
		t.Errorf("idle replay duration off by %.1f%%", d*100)
	}
}

func TestFromTraceRejectsEmpty(t *testing.T) {
	m, _ := New(Config{Seed: 1})
	if _, err := phase.FromTrace("x", nil, m.Table(), 2); err == nil {
		t.Error("empty trace accepted")
	}
}

func relErr(a, b float64) float64 {
	if b == 0 {
		return math.Abs(a)
	}
	return math.Abs(a-b) / math.Abs(b)
}
