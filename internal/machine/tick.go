package machine

import (
	"time"

	"aapm/internal/counters"
	"aapm/internal/pstate"
	"aapm/internal/trace"
)

// The staged tick engine decomposes one monitoring interval into five
// named stages, mirroring the paper's Monitor → Estimate/Predict →
// Control loop (§III) plus the physics that drives it:
//
//	execute  — phase advance, stall accounting, instruction/cycle work
//	measure  — ground-truth power → sensor chain → fault corruption
//	observe  — what the monitoring layer exposes (PMU sample, thermal)
//	govern   — the policy tick and its degradation drain
//	actuate  — p-state transition, T-state duty, stall charging
//
// Stage indices into TickState.StageNanos and StageNames.
const (
	StageExecute = iota
	StageMeasure
	StageObserve
	StageGovern
	StageActuate

	// NumStages is the number of engine stages per tick.
	NumStages
)

// StageNames labels the stages in StageNanos order.
var StageNames = [NumStages]string{"execute", "measure", "observe", "govern", "actuate"}

// TickState is the single record one monitoring interval accumulates
// as it flows through the staged engine. Every stage reads what
// earlier stages wrote and fills in its own fields; hooks receive the
// completed record once per interval.
type TickState struct {
	// Tick is the 1-based interval ordinal within the run.
	Tick int
	// Start is the virtual time at interval start; Interval the
	// configured monitoring period; Used the portion actually simulated
	// (the final interval may end early when the workload completes).
	Start    time.Duration
	Interval time.Duration
	Used     time.Duration

	// PState is the state the interval executed at; PStateIndex its
	// table index. Transitions apply to the *next* interval.
	PState      pstate.PState
	PStateIndex int
	// Duty is the clock-modulation duty cycle the interval ran at.
	Duty float64
	// Jitter is the interval's workload-intensity multiplier.
	Jitter float64

	// Stall is halted time charged this interval (pending transition
	// latency plus the stopped fraction of a modulated clock); Busy is
	// compute time; Instructions the work retired; Phase the workload
	// phase active at interval end.
	Stall        time.Duration
	Busy         time.Duration
	Instructions float64
	Phase        string

	// Sample is the true PMU activity; Observed is what the governor
	// sees (identical unless a fault plan corrupts it).
	Sample   counters.Sample
	Observed counters.Sample

	// TruePowerW is ground truth; MeasuredPowerW what the sensing
	// chain (and fault injector) reported; TempC the thermal sensor
	// reading at interval end.
	TruePowerW     float64
	MeasuredPowerW float64
	TempC          float64

	// WantIndex is the p-state the governor requested for the next
	// interval (== PStateIndex when unchanged or ungoverned); NextDuty
	// the duty cycle the next interval will run at.
	WantIndex int
	NextDuty  float64

	// StageNanos holds per-stage wall-clock when the session has
	// stage timing enabled (Session.EnableStageTiming); all zero
	// otherwise. Purely observational — never part of virtual time.
	StageNanos [NumStages]int64

	// Final marks the run's last recorded interval.
	Final bool
}

// Transition describes one p-state change attempt the actuate stage
// resolved.
type Transition struct {
	// T is the virtual time of the decision.
	T time.Duration
	// From and To are table indices. On a failed attempt the actuator
	// stays at From.
	From, To int
	// OK reports whether the transition took effect (false when a
	// faulted actuator abandoned it).
	OK bool
	// Stall is the latency charged against upcoming intervals.
	Stall time.Duration
}

// Hook observes a session's staged tick engine. Implementations
// subscribe via Session.Subscribe and receive events in subscription
// order; embed BaseHook to implement only the events of interest.
// Hooks must not mutate the session they observe.
type Hook interface {
	// OnTick fires once per recorded interval, after every stage ran.
	OnTick(TickState)
	// OnTransition fires when the actuate stage resolves a p-state
	// change attempt (successful or abandoned).
	OnTransition(Transition)
	// OnDegradation fires for every degradation event — injected
	// faults and governor graceful-degradation responses — in the
	// order the stages emit them.
	OnDegradation(trace.Degradation)
	// OnDone fires once when the session's result is finalized.
	OnDone(*trace.Run)
}

// BaseHook is a no-op Hook for embedding.
type BaseHook struct{}

// OnTick implements Hook.
func (BaseHook) OnTick(TickState) {}

// OnTransition implements Hook.
func (BaseHook) OnTransition(Transition) {}

// OnDegradation implements Hook.
func (BaseHook) OnDegradation(trace.Degradation) {}

// OnDone implements Hook.
func (BaseHook) OnDone(*trace.Run) {}

// emitTick fans a completed interval out to the bus.
func (s *Session) emitTick(ts TickState) {
	for _, h := range s.hooks {
		h.OnTick(ts)
	}
}

// emitTransition fans a resolved transition out to the bus.
func (s *Session) emitTransition(tr Transition) {
	for _, h := range s.hooks {
		h.OnTransition(tr)
	}
}

// emitDegradation fans one degradation event out to the bus. All
// degradation routing — injector drains and governor drains alike —
// funnels through here, so the log lives behind the bus instead of
// three inline drain loops.
func (s *Session) emitDegradation(d trace.Degradation) {
	for _, h := range s.hooks {
		h.OnDegradation(d)
	}
}

// drainInjector forwards the fault injector's pending events to the
// bus, stamped at virtual time t.
func (s *Session) drainInjector(t time.Duration) {
	for _, e := range s.inj.Drain() {
		s.emitDegradation(trace.Degradation{T: t, Source: e.Source, Kind: e.Kind, Detail: e.Detail})
	}
}

// runRecorder is the canonical trace hook: it builds the trace.Run
// rows and degradation log every consumer reads. It is always the
// bus's first subscriber.
type runRecorder struct {
	run *trace.Run
}

func (r *runRecorder) OnTick(ts TickState) {
	r.run.Rows = append(r.run.Rows, trace.Row{
		T:              ts.Start,
		Interval:       ts.Used,
		FreqMHz:        ts.PState.FreqMHz,
		DPC:            ts.Observed.DPC(),
		IPC:            ts.Observed.IPC(),
		DCU:            ts.Observed.DCU(),
		L2PC:           ts.Observed.L2PC(),
		MemPC:          ts.Observed.MemPC(),
		TruePowerW:     ts.TruePowerW,
		MeasuredPowerW: ts.MeasuredPowerW,
		Instructions:   ts.Instructions,
		Phase:          ts.Phase,
		TempC:          ts.TempC,
		Duty:           ts.Duty,
	})
	r.run.Instructions += ts.Instructions
}

func (r *runRecorder) OnTransition(Transition) {}

func (r *runRecorder) OnDegradation(d trace.Degradation) { r.run.AddDegradation(d) }

func (r *runRecorder) OnDone(*trace.Run) {}

// stageClock stamps per-stage wall-clock into a TickState when
// enabled; disabled it costs one branch per stage.
type stageClock struct {
	enabled bool
	last    time.Time
}

func (c *stageClock) start() {
	if c.enabled {
		c.last = time.Now()
	}
}

func (c *stageClock) mark(ts *TickState, stage int) {
	if !c.enabled {
		return
	}
	now := time.Now()
	ts.StageNanos[stage] = now.Sub(c.last).Nanoseconds()
	c.last = now
}
