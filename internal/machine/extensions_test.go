package machine

import (
	"testing"

	"aapm/internal/phase"
	"aapm/internal/thermal"
	"aapm/internal/trace"
)

func mustRunOn(t *testing.T, m *Machine, w phase.Workload, g Governor) *trace.Run {
	t.Helper()
	run, err := m.Run(w, g)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// throttleGov pins max frequency at a fixed duty cycle.
type throttleGov struct{ duty float64 }

func (g *throttleGov) Name() string           { return "throttle" }
func (g *throttleGov) Tick(info TickInfo) int { return info.Table.Len() - 1 }
func (g *throttleGov) Duty() float64          { return g.duty }
func (g *throttleGov) InitialIndex(d int) int { return d }

func TestThrottlingScalesRuntimeAndPower(t *testing.T) {
	w := testWorkload(2e9)
	full := mustRun(t, Config{Seed: 4}, w, nil)
	half := mustRun(t, Config{Seed: 4}, w, &throttleGov{duty: 0.5})

	// Delivered cycles halve: runtime ~doubles (first interval runs at
	// full duty before the governor is consulted).
	ratio := half.Duration.Seconds() / full.Duration.Seconds()
	if ratio < 1.9 || ratio > 2.1 {
		t.Errorf("duty-0.5 runtime ratio = %.2f, want ~2", ratio)
	}
	// Average power drops toward (active+idle)/2 but stays well above
	// half of full power (no voltage scaling).
	if half.AvgPowerW() >= full.AvgPowerW() {
		t.Error("throttling did not reduce power")
	}
	if half.AvgPowerW() < 0.5*full.AvgPowerW() {
		t.Errorf("throttled power %.2fW implausibly low vs %.2fW", half.AvgPowerW(), full.AvgPowerW())
	}
	// Energy goes UP: same work, similar dynamic energy, plus idle
	// draw over the stretched runtime.
	if half.EnergyJ <= full.EnergyJ {
		t.Errorf("throttled energy %.1fJ not above full-speed %.1fJ", half.EnergyJ, full.EnergyJ)
	}
	// Duty recorded in the trace.
	if half.Rows[len(half.Rows)-1].Duty != 0.5 {
		t.Errorf("trace duty = %g, want 0.5", half.Rows[len(half.Rows)-1].Duty)
	}
}

func TestThrottleDutyClamped(t *testing.T) {
	w := testWorkload(5e8)
	run := mustRun(t, Config{Seed: 4}, w, &throttleGov{duty: -3})
	// Clamped to 0.05, not zero (which would deadlock).
	if d := run.Rows[len(run.Rows)-1].Duty; d != 0.05 {
		t.Errorf("clamped duty = %g, want 0.05", d)
	}
	run2 := mustRun(t, Config{Seed: 4}, w, &throttleGov{duty: 7})
	if d := run2.Rows[len(run2.Rows)-1].Duty; d != 1 {
		t.Errorf("clamped duty = %g, want 1", d)
	}
}

func TestThermalModelIntegration(t *testing.T) {
	tc := thermal.PentiumMThermal()
	m, err := New(Config{Seed: 2, Thermal: &tc})
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.Run(testWorkload(6e9), nil)
	if err != nil {
		t.Fatal(err)
	}
	temps := run.Temps()
	if temps[0] < tc.AmbientC {
		t.Errorf("first temp %.1f below ambient", temps[0])
	}
	// Temperature rises monotonically toward the steady state for this
	// constant-power workload.
	last := temps[len(temps)-1]
	if last <= temps[0] {
		t.Errorf("temperature did not rise: %.1f -> %.1f", temps[0], last)
	}
	steady := tc.SteadyC(run.AvgPowerW())
	if last > steady+1 {
		t.Errorf("final temp %.1f overshoots steady %.1f", last, steady)
	}
	// Without a thermal model, TempC stays zero.
	m2, _ := New(Config{Seed: 2})
	run2, err := m2.Run(testWorkload(5e8), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range run2.Rows {
		if r.TempC != 0 {
			t.Fatal("TempC nonzero without thermal model")
		}
	}
}

func TestInvalidThermalConfigRejected(t *testing.T) {
	bad := thermal.Config{AmbientC: 45, ResistanceCW: -1, CapacitanceJC: 2}
	if _, err := New(Config{Thermal: &bad}); err == nil {
		t.Error("invalid thermal config accepted")
	}
}

func TestThermalSensorTracksPowerChanges(t *testing.T) {
	tc := thermal.PentiumMThermal()
	m, err := New(Config{Seed: 2, Thermal: &tc})
	if err != nil {
		t.Fatal(err)
	}
	hot := mustRunOn(t, m, testWorkload(4e9), nil)
	cold := func() float64 {
		m2, _ := New(Config{Seed: 2, Thermal: &tc})
		run := mustRunOn(t, m2, testWorkload(4e9), &fixedGov{idx: 0})
		return run.Temps()[len(run.Rows)-1]
	}()
	hotEnd := hot.Temps()[len(hot.Rows)-1]
	if hotEnd <= cold {
		t.Errorf("2 GHz end temp %.1f not above 600 MHz end temp %.1f", hotEnd, cold)
	}
}
