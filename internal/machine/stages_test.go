package machine

import (
	"math"
	"testing"
	"time"

	"aapm/internal/faults"
	"aapm/internal/phase"
	"aapm/internal/trace"
)

// newTickState builds the record Step seeds each interval with, so
// stage bodies can be exercised in isolation.
func newTickState(s *Session) TickState {
	ts := TickState{
		Tick:        s.tick + 1,
		Start:       s.now,
		Interval:    s.m.period,
		PState:      s.act.Current(),
		PStateIndex: s.act.CurrentIndex(),
		Duty:        s.duty,
		Jitter:      1.0,
	}
	ts.WantIndex = ts.PStateIndex
	ts.NextDuty = ts.Duty
	return ts
}

func mustSession(t *testing.T, cfg Config, w phase.Workload, g Governor) *Session {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := m.NewSession(w, g)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestExecuteIdlePhase(t *testing.T) {
	w := phase.Workload{
		Name: "idle-first",
		Phases: []phase.Params{
			{Name: "idle", IdleDuration: 100 * time.Millisecond},
			{Name: "work", Instructions: 1e8, CPICore: 0.5, MLP: 1, SpecFactor: 1.1},
		},
	}
	s := mustSession(t, Config{Seed: 1}, w, nil)
	ts := newTickState(s)
	if !s.execute(&ts) {
		t.Fatal("execute reported exhausted on a fresh workload")
	}
	if ts.Used != ts.Interval {
		t.Errorf("idle interval Used = %v, want full %v", ts.Used, ts.Interval)
	}
	if ts.Busy != 0 {
		t.Errorf("idle interval Busy = %v, want 0", ts.Busy)
	}
	if ts.Instructions != 0 {
		t.Errorf("idle interval retired %g instructions, want 0", ts.Instructions)
	}
	if ts.Phase != "idle" {
		t.Errorf("phase = %q, want idle", ts.Phase)
	}
	if ts.Stall != 0 {
		t.Errorf("stall = %v, want 0", ts.Stall)
	}
}

func TestExecuteExhaustedWorkload(t *testing.T) {
	s := mustSession(t, Config{Seed: 1}, testWorkload(1e7), nil)
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	ts := newTickState(s)
	if s.execute(&ts) {
		t.Error("execute on an exhausted workload reported work done")
	}
	if ts.Used != 0 {
		t.Errorf("exhausted interval Used = %v, want 0", ts.Used)
	}
	// Step stays terminal and side-effect free once done.
	rows := len(s.run.Rows)
	done, err := s.Step()
	if err != nil || !done {
		t.Errorf("Step after done = (%v, %v), want (true, nil)", done, err)
	}
	if len(s.run.Rows) != rows {
		t.Errorf("Step after done appended rows: %d -> %d", rows, len(s.run.Rows))
	}
}

func TestExecuteChargesPendingStall(t *testing.T) {
	s := mustSession(t, Config{Seed: 1}, testWorkload(1e9), nil)
	s.pendStall = 3 * time.Millisecond
	ts := newTickState(s)
	if !s.execute(&ts) {
		t.Fatal("execute reported exhausted")
	}
	if ts.Stall != 3*time.Millisecond {
		t.Errorf("stall = %v, want 3ms", ts.Stall)
	}
	if s.pendStall != 0 {
		t.Errorf("pending stall not consumed: %v", s.pendStall)
	}
	if ts.Busy > ts.Interval-ts.Stall {
		t.Errorf("busy %v exceeds interval minus stall", ts.Busy)
	}
}

func TestMeasureNaNDropout(t *testing.T) {
	s := mustSession(t, Config{
		Seed:   1,
		Faults: &faults.Plan{Sensor: faults.SensorPlan{DropoutProb: 1, DropoutTicks: 1}},
	}, testWorkload(5e8), nil)
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	run := s.Result()
	if len(run.Rows) == 0 {
		t.Fatal("no rows")
	}
	for i, r := range run.Rows {
		if !math.IsNaN(r.MeasuredPowerW) {
			t.Fatalf("row %d measured %g W, want NaN under total dropout", i, r.MeasuredPowerW)
		}
	}
	// Ground truth is untouched: true energy integrates, measured does
	// not (dropped acquisitions contribute nothing).
	if run.EnergyJ <= 0 {
		t.Error("true energy not integrated")
	}
	if run.MeasuredEnergyJ != 0 {
		t.Errorf("measured energy %g J, want 0 under total dropout", run.MeasuredEnergyJ)
	}
	if len(run.Degradations) == 0 {
		t.Error("dropout faults produced no degradation log entries")
	}
}

// transitionTap records every transition event on the bus.
type transitionTap struct {
	BaseHook
	events []Transition
}

func (h *transitionTap) OnTransition(tr Transition) { h.events = append(h.events, tr) }

func TestActuateAbandonedTransition(t *testing.T) {
	s := mustSession(t, Config{
		Seed:              1,
		TransitionLatency: time.Millisecond,
		Faults:            &faults.Plan{Actuator: faults.ActuatorPlan{FailProb: 1, Retries: 0}},
	}, testWorkload(5e8), &flipGov{})
	tap := &transitionTap{}
	s.Subscribe(tap)
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	run := s.Result()
	if len(tap.events) == 0 {
		t.Fatal("flip governor produced no transition attempts")
	}
	for i, tr := range tap.events {
		if tr.OK {
			t.Fatalf("event %d OK with FailProb=1", i)
		}
		if tr.Stall != time.Millisecond {
			t.Errorf("event %d stall = %v, want the failed attempt's 1ms", i, tr.Stall)
		}
	}
	// The actuator never moves: every interval stays at the start state.
	for i, r := range run.Rows {
		if r.FreqMHz != run.Rows[0].FreqMHz {
			t.Fatalf("row %d at %d MHz despite abandoned transitions", i, r.FreqMHz)
		}
	}
	if run.Transitions != 0 {
		t.Errorf("run counted %d applied transitions, want 0", run.Transitions)
	}
	if run.FailedTransitions != len(tap.events) {
		t.Errorf("run.FailedTransitions = %d, want %d", run.FailedTransitions, len(tap.events))
	}
}

// busTap counts bus events and checks the canonical recorder ran first.
type busTap struct {
	name     string
	order    *[]string
	run      *trace.Run
	t        *testing.T
	ticks    int
	dones    int
	trans    int
	degrades int
}

func (h *busTap) OnTick(ts TickState) {
	h.ticks++
	*h.order = append(*h.order, h.name)
	// The recorder subscribes first, so the row for this tick is
	// already appended when later hooks observe it.
	if len(h.run.Rows) != h.ticks {
		h.t.Errorf("hook %s saw %d rows at tick %d", h.name, len(h.run.Rows), h.ticks)
	}
}

func (h *busTap) OnTransition(Transition) { h.trans++ }

func (h *busTap) OnDegradation(trace.Degradation) { h.degrades++ }

func (h *busTap) OnDone(*trace.Run) { h.dones++ }

func TestHookBusOrderAndCounts(t *testing.T) {
	s := mustSession(t, Config{Seed: 1}, testWorkload(3e8), &flipGov{})
	var order []string
	a := &busTap{name: "a", order: &order, run: s.run, t: t}
	b := &busTap{name: "b", order: &order, run: s.run, t: t}
	s.Subscribe(a)
	s.Subscribe(b)
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	run := s.Result()
	if a.ticks != len(run.Rows) || b.ticks != len(run.Rows) {
		t.Errorf("tick events %d/%d, want %d (one per row)", a.ticks, b.ticks, len(run.Rows))
	}
	if a.trans != run.Transitions {
		t.Errorf("transition events %d, want %d", a.trans, run.Transitions)
	}
	if a.dones != 1 {
		t.Errorf("OnDone fired %d times, want 1", a.dones)
	}
	s.Result() // finalization is idempotent
	if a.dones != 1 {
		t.Errorf("second Result re-fired OnDone: %d", a.dones)
	}
	// Subscription order holds on every tick: a before b.
	if len(order) != 2*len(run.Rows) {
		t.Fatalf("order log has %d entries, want %d", len(order), 2*len(run.Rows))
	}
	for i := 0; i < len(order); i += 2 {
		if order[i] != "a" || order[i+1] != "b" {
			t.Fatalf("tick %d fired hooks as %v, want [a b]", i/2, order[i:i+2])
		}
	}
}

// timingTap sums per-stage wall-clock across ticks.
type timingTap struct {
	BaseHook
	nanos [NumStages]int64
}

func (h *timingTap) OnTick(ts TickState) {
	for i, n := range ts.StageNanos {
		h.nanos[i] += n
	}
}

func (h *timingTap) total() int64 {
	var sum int64
	for _, n := range h.nanos {
		sum += n
	}
	return sum
}

func TestStageTimingGated(t *testing.T) {
	// Timing off (the default): every StageNanos stays zero.
	s := mustSession(t, Config{Seed: 1}, testWorkload(2e8), nil)
	off := &timingTap{}
	s.Subscribe(off)
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if off.total() != 0 {
		t.Errorf("stage timing recorded %d ns while disabled", off.total())
	}

	// Timing on: the run accumulates nonzero wall-clock, and the
	// virtual-time result is unaffected.
	s2 := mustSession(t, Config{Seed: 1}, testWorkload(2e8), nil)
	on := &timingTap{}
	s2.Subscribe(on)
	s2.EnableStageTiming()
	for {
		done, err := s2.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	if on.total() <= 0 {
		t.Error("stage timing enabled but no wall-clock recorded")
	}
	if d1, d2 := s.Result().Duration, s2.Result().Duration; d1 != d2 {
		t.Errorf("stage timing changed virtual duration: %v vs %v", d1, d2)
	}
}
