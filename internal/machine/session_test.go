package machine

import (
	"testing"
)

func TestSessionStepMatchesRun(t *testing.T) {
	w := testWorkload(1e9)
	w.JitterPct = 0.05

	m1, err := New(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	whole, err := m1.Run(w, nil)
	if err != nil {
		t.Fatal(err)
	}

	m2, err := New(Config{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	s, err := m2.NewSession(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
	}
	stepped := s.Result()
	if stepped.Duration != whole.Duration || stepped.EnergyJ != whole.EnergyJ ||
		stepped.Instructions != whole.Instructions || len(stepped.Rows) != len(whole.Rows) {
		t.Errorf("stepped run differs from Run: %v/%g/%g/%d vs %v/%g/%g/%d",
			stepped.Duration, stepped.EnergyJ, stepped.Instructions, len(stepped.Rows),
			whole.Duration, whole.EnergyJ, whole.Instructions, len(whole.Rows))
	}
	// The final Step either records the last (possibly partial) row and
	// reports done, or observes exhaustion without producing a row.
	if steps != len(stepped.Rows) && steps != len(stepped.Rows)+1 {
		t.Errorf("steps = %d for %d rows", steps, len(stepped.Rows))
	}
}

func TestSessionAccessors(t *testing.T) {
	m, _ := New(Config{Seed: 1})
	s, err := m.NewSession(testWorkload(3e8), nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Done() {
		t.Error("fresh session already done")
	}
	if _, ok := s.LastRow(); ok {
		t.Error("fresh session has a last row")
	}
	if s.Governor() != nil {
		t.Error("nil governor not preserved")
	}
	if _, err := s.Step(); err != nil {
		t.Fatal(err)
	}
	row, ok := s.LastRow()
	if !ok || row.FreqMHz != 2000 {
		t.Errorf("LastRow = %+v, %v", row, ok)
	}
	if s.Now() != row.Interval {
		t.Errorf("Now = %v, want %v", s.Now(), row.Interval)
	}
}

func TestSessionStepAfterDoneIsNoop(t *testing.T) {
	m, _ := New(Config{Seed: 1})
	s, _ := m.NewSession(testWorkload(1e7), nil)
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	rows := len(s.Result().Rows)
	done, err := s.Step()
	if err != nil || !done {
		t.Errorf("Step after done = %v, %v", done, err)
	}
	if len(s.Result().Rows) != rows {
		t.Error("Step after done appended rows")
	}
}

func TestSessionResultIdempotent(t *testing.T) {
	m, _ := New(Config{Seed: 1})
	s, _ := m.NewSession(testWorkload(1e8), nil)
	for {
		done, err := s.Step()
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	a := s.Result()
	b := s.Result()
	if a != b {
		t.Error("Result not idempotent")
	}
	// Finalization emitted exactly one falling GPIO marker.
	markers := m.Recorder().Markers()
	falling := 0
	for _, mk := range markers {
		if !mk.Rising {
			falling++
		}
	}
	if falling != 1 {
		t.Errorf("falling markers = %d, want 1", falling)
	}
}

func TestSessionInvalidWorkload(t *testing.T) {
	m, _ := New(Config{Seed: 1})
	if _, err := m.NewSession(testWorkload(-1), nil); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestSessionEarlyResultTruncates(t *testing.T) {
	m, _ := New(Config{Seed: 1})
	s, _ := m.NewSession(testWorkload(5e9), nil)
	for i := 0; i < 10; i++ {
		if _, err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	run := s.Result()
	if len(run.Rows) != 10 {
		t.Errorf("truncated run has %d rows", len(run.Rows))
	}
	if run.Duration != s.Now() {
		t.Errorf("duration %v != now %v", run.Duration, s.Now())
	}
}
