package machine

import "testing"

func TestClampGauss(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{0, 0},
		{1.5, 1.5},
		{-1.5, -1.5},
		{2, 2},
		{-2, -2},
		{3.7, 2},
		{-5, -2},
	}
	for _, c := range cases {
		if got := clampGauss(c.in); got != c.want {
			t.Errorf("clampGauss(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestJitterFactor(t *testing.T) {
	cases := []struct {
		pct, g, want float64
	}{
		{0.1, 0, 1},
		{0.1, 1, 1.1},
		{0.1, -1, 0.9},
		{0.1, 5, 1.2},   // draw clamps at +2σ
		{0.1, -5, 0.8},  // draw clamps at -2σ
		{0.5, -2, 0.2},  // 1 - 0.5*2 = 0 floors at 0.2
		{0.9, -2, 0.2},  // would be negative without the floor
	}
	for _, c := range cases {
		if got := jitterFactor(c.pct, c.g); got != c.want {
			t.Errorf("jitterFactor(%g, %g) = %g, want %g", c.pct, c.g, got, c.want)
		}
	}
}

func TestClampDuty(t *testing.T) {
	cases := []struct {
		in, want float64
	}{
		{1, 1},
		{0.5, 0.5},
		{0.05, 0.05},
		{0.01, 0.05}, // below the T-state floor
		{0, 0.05},
		{-1, 0.05},
		{2, 1}, // cannot exceed full speed
	}
	for _, c := range cases {
		if got := clampDuty(c.in); got != c.want {
			t.Errorf("clampDuty(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}
