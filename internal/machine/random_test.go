package machine_test

// Property-based hardening: arbitrary valid workloads must run to
// completion under every governor with sane traces — no panics, no
// stuck runs, no impossible counter rates.

import (
	"math/rand"
	"testing"

	"aapm/internal/control"
	"aapm/internal/machine"
	"aapm/internal/phase"
	"aapm/internal/sensor"
)

// randomWorkload draws a small multi-phase workload with parameters
// across the whole plausible envelope.
func randomWorkload(rng *rand.Rand, name string) phase.Workload {
	nPhases := 1 + rng.Intn(4)
	w := phase.Workload{Name: name, JitterPct: rng.Float64() * 0.1}
	for i := 0; i < nPhases; i++ {
		if rng.Float64() < 0.2 {
			w.Phases = append(w.Phases, phase.Params{
				Name:         "idle",
				IdleDuration: machine.DefaultSamplePeriod * 3,
			})
			continue
		}
		mlp := 1 + rng.Float64()*7
		l2 := rng.Float64() * 300
		p := phase.Params{
			Name:         "busy",
			Instructions: 5e7 + rng.Float64()*5e8,
			CPICore:      0.3 + rng.Float64()*1.5,
			L2APKI:       l2,
			MemAPKI:      rng.Float64() * l2,
			MemBPI:       rng.Float64() * 10,
			MLP:          mlp,
			SpecFactor:   1 + rng.Float64(),
			StallFrac:    rng.Float64() * 0.5,
		}
		w.Phases = append(w.Phases, p)
	}
	return w
}

func TestRandomWorkloadsRunSane(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	govs := []func() machine.Governor{
		func() machine.Governor { return nil },
		func() machine.Governor {
			pm, err := control.NewPerformanceMaximizer(control.PMConfig{LimitW: 13.5, FeedbackGain: 0.2})
			if err != nil {
				t.Fatal(err)
			}
			return pm
		},
		func() machine.Governor {
			ps, err := control.NewPowerSave(control.PSConfig{Floor: 0.6})
			if err != nil {
				t.Fatal(err)
			}
			return ps
		},
		func() machine.Governor { return &control.OnDemand{} },
		func() machine.Governor {
			th, err := control.NewThrottleSave(control.ThrottleSaveConfig{Floor: 0.5})
			if err != nil {
				t.Fatal(err)
			}
			return th
		},
	}
	for trial := 0; trial < 25; trial++ {
		w := randomWorkload(rng, "rnd")
		if err := w.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid workload: %v", trial, err)
		}
		for gi, gf := range govs {
			m, err := machine.New(machine.Config{Chain: sensor.NIDefault(), Seed: int64(trial)})
			if err != nil {
				t.Fatal(err)
			}
			run, err := m.Run(w, gf())
			if err != nil {
				t.Fatalf("trial %d gov %d: %v", trial, gi, err)
			}
			if run.Duration <= 0 {
				t.Fatalf("trial %d gov %d: zero duration", trial, gi)
			}
			if run.EnergyJ <= 0 {
				t.Fatalf("trial %d gov %d: zero energy", trial, gi)
			}
			for ri, row := range run.Rows {
				if row.IPC < 0 || row.DPC < row.IPC-1e-9 || row.DPC > 8 {
					t.Fatalf("trial %d gov %d row %d: implausible rates %+v", trial, gi, ri, row)
				}
				if row.TruePowerW < 0 || row.TruePowerW > 40 {
					t.Fatalf("trial %d gov %d row %d: implausible power %g", trial, gi, ri, row.TruePowerW)
				}
				if row.Duty < 0.05-1e-9 || row.Duty > 1+1e-9 {
					t.Fatalf("trial %d gov %d row %d: duty %g", trial, gi, ri, row.Duty)
				}
			}
			// Work conservation: every policy retires the same total
			// instructions (within interval-rounding slack).
			want := w.TotalInstructions()
			if rel := (run.Instructions - want) / want; rel > 0.02 || rel < -0.02 {
				t.Fatalf("trial %d gov %d: retired %.3g of %.3g instructions", trial, gi, run.Instructions, want)
			}
		}
	}
}
