package machine

// clampGauss limits a standard-normal draw to ±2σ so a single
// unlucky draw cannot swing an interval's intensity arbitrarily far.
func clampGauss(g float64) float64 {
	if g > 2 {
		return 2
	}
	if g < -2 {
		return -2
	}
	return g
}

// jitterFactor converts a (clamped) standard-normal draw into the
// interval's workload-intensity multiplier: 1 + pct·g, floored at 0.2
// so jitter never makes an interval fully dead.
func jitterFactor(pct, g float64) float64 {
	j := 1 + pct*clampGauss(g)
	if j < 0.2 {
		return 0.2
	}
	return j
}

// clampDuty bounds a throttler's requested duty cycle to [0.05, 1]:
// T-state modulation can neither stop the clock entirely nor exceed
// full speed.
func clampDuty(d float64) float64 {
	if d > 1 {
		return 1
	}
	if d < 0.05 {
		return 0.05
	}
	return d
}
