package machine

import (
	"math"
	"testing"
	"time"

	"aapm/internal/phase"
	"aapm/internal/pstate"
	"aapm/internal/sensor"
	"aapm/internal/trace"
)

func testWorkload(instr float64) phase.Workload {
	return phase.Workload{
		Name: "test",
		Phases: []phase.Params{{
			Name: "p", Instructions: instr,
			CPICore: 0.5, L2APKI: 10, MemAPKI: 1, MLP: 2, SpecFactor: 1.2, StallFrac: 0.05,
		}},
	}
}

func TestNewConfigResolution(t *testing.T) {
	m, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Table().Len() != 8 || m.Table().Max().FreqMHz != 2000 {
		t.Errorf("default table wrong: %v", m.Table().States())
	}
	if m.SamplePeriod() != 10*time.Millisecond {
		t.Errorf("default sample period = %v", m.SamplePeriod())
	}
	if _, err := New(Config{StartFreqMHz: 1700}); err == nil {
		t.Error("unknown start frequency accepted")
	}
	if _, err := New(Config{SamplePeriod: -time.Second}); err == nil {
		t.Error("negative sample period accepted")
	}
	if _, err := New(Config{Chain: sensor.Chain{NoiseStdW: -1}}); err == nil {
		t.Error("invalid chain accepted")
	}
	if _, err := New(Config{Table: pstate.PentiumM755()}); err != nil {
		t.Errorf("table-only config rejected: %v", err)
	}
}

func TestRunCompletesWorkload(t *testing.T) {
	m, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	w := testWorkload(2e9)
	run, err := m.Run(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(run.Instructions-2e9)/2e9 > 0.01 {
		t.Errorf("retired %g instructions, want ~2e9", run.Instructions)
	}
	// At 2 GHz with CPI ~ 0.912 (0.5 + 0.05 l2 + 0.362... computed by
	// the model), duration = instr*CPI/f; just check a plausible band.
	if run.Duration < 500*time.Millisecond || run.Duration > 2*time.Second {
		t.Errorf("duration = %v", run.Duration)
	}
	if run.EnergyJ <= 0 {
		t.Error("no energy recorded")
	}
	if len(run.Rows) == 0 {
		t.Fatal("no trace rows")
	}
	if run.Rows[0].FreqMHz != 2000 {
		t.Errorf("first interval at %d MHz, want 2000 (default start)", run.Rows[0].FreqMHz)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	w := testWorkload(5e8)
	w.JitterPct = 0.05
	run1 := mustRun(t, Config{Seed: 9, Chain: sensor.NIDefault()}, w, nil)
	run2 := mustRun(t, Config{Seed: 9, Chain: sensor.NIDefault()}, w, nil)
	if run1.Duration != run2.Duration || run1.EnergyJ != run2.EnergyJ {
		t.Errorf("same seed differs: %v/%g vs %v/%g", run1.Duration, run1.EnergyJ, run2.Duration, run2.EnergyJ)
	}
	run3 := mustRun(t, Config{Seed: 10, Chain: sensor.NIDefault()}, w, nil)
	if run1.EnergyJ == run3.EnergyJ {
		t.Error("different seeds produced identical measured energy")
	}
}

func mustRun(t *testing.T, cfg Config, w phase.Workload, g Governor) *trace.Run {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.Run(w, g)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestEnergyIntegratesPower(t *testing.T) {
	m, _ := New(Config{Seed: 3})
	run, err := m.Run(testWorkload(1e9), nil)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, r := range run.Rows {
		sum += r.TruePowerW * r.Interval.Seconds()
	}
	if math.Abs(sum-run.EnergyJ)/run.EnergyJ > 1e-9 {
		t.Errorf("row-integrated energy %g != EnergyJ %g", sum, run.EnergyJ)
	}
}

// fixedGov pins a given index from the first tick.
type fixedGov struct{ idx int }

func (g *fixedGov) Name() string         { return "fixed" }
func (g *fixedGov) Tick(TickInfo) int    { return g.idx }
func (g *fixedGov) InitialIndex(int) int { return g.idx }

func TestGovernorInitialIndexHonored(t *testing.T) {
	m, _ := New(Config{Seed: 1})
	run, err := m.Run(testWorkload(5e8), &fixedGov{idx: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range run.Rows {
		if r.FreqMHz != 600 {
			t.Fatalf("row %d at %d MHz, want 600 for all rows", i, r.FreqMHz)
		}
	}
	if run.Transitions != 0 {
		t.Errorf("transitions = %d, want 0", run.Transitions)
	}
}

// flipGov alternates between min and max every tick.
type flipGov struct{ n int }

func (g *flipGov) Name() string { return "flip" }
func (g *flipGov) Tick(info TickInfo) int {
	g.n++
	if g.n%2 == 0 {
		return 0
	}
	return info.Table.Len() - 1
}

func TestTransitionsCountedAndStallApplied(t *testing.T) {
	m, _ := New(Config{Seed: 1, TransitionLatency: 1 * time.Millisecond})
	run, err := m.Run(testWorkload(1e9), &flipGov{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Transitions < 10 {
		t.Errorf("transitions = %d, want many", run.Transitions)
	}
	// Stalls lengthen the run versus a stall-free flip schedule.
	m2, _ := New(Config{Seed: 1, TransitionLatency: 0})
	run2, err := m2.Run(testWorkload(1e9), &flipGov{})
	if err != nil {
		t.Fatal(err)
	}
	if run.Duration <= run2.Duration {
		t.Errorf("stalls did not lengthen run: %v vs %v", run.Duration, run2.Duration)
	}
}

func TestJitterPairedAcrossPolicies(t *testing.T) {
	// The same seed+workload must present identical jitter regardless
	// of governor, so measured DPC of the first interval matches.
	w := testWorkload(2e9)
	w.JitterPct = 0.1
	a := mustRun(t, Config{Seed: 5}, w, nil)
	b := mustRun(t, Config{Seed: 5}, w, &fixedGov{idx: 7})
	if a.Rows[0].DPC != b.Rows[0].DPC {
		t.Errorf("first-interval DPC differs across policies: %g vs %g", a.Rows[0].DPC, b.Rows[0].DPC)
	}
}

func TestIdlePhases(t *testing.T) {
	w := phase.Workload{
		Name: "idleful",
		Phases: []phase.Params{
			{Name: "work", Instructions: 2e8, CPICore: 0.5, MLP: 1, SpecFactor: 1.1},
			{Name: "idle", IdleDuration: 200 * time.Millisecond},
		},
	}
	m, _ := New(Config{Seed: 1})
	run, err := m.Run(w, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The idle stretch runs at gated power: some intervals must be far
	// below the active ones.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range run.Rows {
		lo = math.Min(lo, r.TruePowerW)
		hi = math.Max(hi, r.TruePowerW)
	}
	if lo > 0.7*hi {
		t.Errorf("idle power %g not clearly below active %g", lo, hi)
	}
	if run.Duration < 250*time.Millisecond {
		t.Errorf("duration %v too short to include idle", run.Duration)
	}
}

func TestInvalidWorkloadRejected(t *testing.T) {
	m, _ := New(Config{})
	if _, err := m.Run(phase.Workload{Name: "empty"}, nil); err == nil {
		t.Error("empty workload accepted")
	}
}

func TestMaxTicksGuard(t *testing.T) {
	m, err := New(Config{Seed: 1, MaxTicks: 10})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(testWorkload(1e12), nil); err == nil {
		t.Error("run exceeding MaxTicks did not error")
	}
}

func TestRecorderMarksRunBoundaries(t *testing.T) {
	m, _ := New(Config{Seed: 1})
	if _, err := m.Run(testWorkload(3e8), nil); err != nil {
		t.Fatal(err)
	}
	samples, err := m.Recorder().Between("test")
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) == 0 {
		t.Error("no samples between GPIO markers")
	}
}

func TestTruthAndTableMismatch(t *testing.T) {
	tab := pstate.PentiumM755()
	m, err := New(Config{Table: tab})
	if err != nil {
		t.Fatal(err)
	}
	other := pstate.PentiumM755()
	if _, err := New(Config{Table: other, Truth: m.Truth()}); err == nil {
		t.Error("table differing from truth's table accepted")
	}
}
