package machine

import (
	"time"

	"aapm/internal/counters"
	"aapm/internal/faults"
	"aapm/internal/phase"
	"aapm/internal/sensor"
	"aapm/internal/thermal"
)

// This file exports the staged engine's arithmetic primitives and the
// machine fields an alternative engine needs to replay a session
// exactly. The batch kernel (internal/kernel) is required to produce
// byte-identical traces to Session.Step, which is only tractable if
// both engines execute the *same* float operations in the same order —
// so rather than duplicating the formulas there, the staged engine's
// helpers are exported here and shared. Any change to the staged
// physics below automatically carries to the batch kernel; the
// differential suite (TestBatchMatchesStaged) pins the equivalence.

// JitterFactor converts a Gaussian draw into the per-interval workload
// intensity multiplier. Identical to the staged execute stage's draw.
func JitterFactor(pct, gauss float64) float64 { return jitterFactor(pct, gauss) }

// AddActivity accumulates cycles of execution of behaviour b into the
// interval sample, exactly as the staged execute stage does.
func AddActivity(s *counters.Sample, b phase.Behavior, jitter, cycles float64) {
	addActivityP(s, &b, jitter, cycles)
}

// AddActivityP is AddActivity taking the behaviour by pointer, for the
// batch hot path. Identical operations in identical order.
func AddActivityP(s *counters.Sample, b *phase.Behavior, jitter, cycles float64) {
	addActivityP(s, b, jitter, cycles)
}

// SetActivityP is AddActivityP for a sample known to be all-zero (the
// first busy segment after the per-tick reset): adding to zero is
// setting, so the loads drop out. Bit-identical results.
func SetActivityP(s *counters.Sample, b *phase.Behavior, jitter, cycles float64) {
	setActivityP(s, b, jitter, cycles)
}

// ClampDuty clamps a governor-requested duty cycle the way the actuate
// stage does.
func ClampDuty(d float64) float64 { return clampDuty(d) }

// IntervalPower returns the interval-average true power for a sample
// accumulated over busy time within a total interval — the measure
// stage's ground truth. The pointer receiver for the sample avoids a
// copy on the batch hot path; the arithmetic is the staged engine's.
func (m *Machine) IntervalPower(idx int, s *counters.Sample, busy, total time.Duration) float64 {
	return m.intervalPower(idx, s, busy, total)
}

// Chain returns the machine's power measurement chain.
func (m *Machine) Chain() sensor.Chain { return m.chain }

// TransitionLatency returns the configured DVFS switch cost.
func (m *Machine) TransitionLatency() time.Duration { return m.translat }

// ThermalConfig returns the thermal model configuration, nil when the
// platform has none.
func (m *Machine) ThermalConfig() *thermal.Config { return m.thermal }

// FaultPlan returns the active fault plan, nil when fault injection is
// off.
func (m *Machine) FaultPlan() *faults.Plan { return m.faults }

// MaxTicks returns the per-run tick bound.
func (m *Machine) MaxTicks() int { return m.maxTicks }

// SessionSeed returns the per-run RNG seed a session of workload name
// derives — the same source feeds measurement noise and workload
// jitter, and (from an independent stream) the fault injector.
func (m *Machine) SessionSeed(workload string) int64 {
	return m.seed ^ int64(hashName(workload))
}

// StartIndex returns the p-state index a session of governor g starts
// at, honoring an InitialStater override exactly as NewSession does.
func (m *Machine) StartIndex(g Governor) int {
	start := m.startIdx
	if is, ok := g.(InitialStater); ok {
		start = is.InitialIndex(start)
	}
	return start
}
