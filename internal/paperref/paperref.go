// Package paperref is the single source of truth for the numbers the
// paper publishes: Table II's model coefficients, Table III's measured
// worst-case power, Table IV's static-frequency rule, the eq. 3
// constants, and the headline evaluation claims. Everything the
// reproduction compares against lives here, so the published values
// appear exactly once in the codebase.
package paperref

// TableII lists the published per-p-state power model: frequency
// (MHz), supply voltage (V), and the eq. 2 coefficients.
type TableIIRow struct {
	FreqMHz  int
	VoltageV float64
	Alpha    float64
	Beta     float64
}

// TableII is the paper's Table II.
var TableII = []TableIIRow{
	{600, 0.998, 0.34, 2.58},
	{800, 1.052, 0.54, 3.56},
	{1000, 1.100, 0.77, 4.49},
	{1200, 1.148, 1.06, 5.60},
	{1400, 1.196, 1.42, 6.95},
	{1600, 1.244, 1.82, 8.44},
	{1800, 1.292, 2.36, 10.18},
	{2000, 1.340, 2.93, 12.11},
}

// TableIIByFreq returns the Table II row for a frequency.
func TableIIByFreq(freqMHz int) (TableIIRow, bool) {
	for _, r := range TableII {
		if r.FreqMHz == freqMHz {
			return r, true
		}
	}
	return TableIIRow{}, false
}

// TableIII is the measured FMA-256KB (worst-case proxy) power per
// frequency, in watts.
var TableIII = map[int]float64{
	600: 3.86, 800: 5.21, 1000: 6.56, 1200: 8.16,
	1400: 10.16, 1600: 12.46, 1800: 15.29, 2000: 17.78,
}

// TableIV maps each evaluated power limit (W) to the static frequency
// (MHz) the worst-case rule selects.
var TableIV = map[float64]int{
	17.5: 1800, 16.5: 1800, 15.5: 1800, 14.5: 1600,
	13.5: 1600, 12.5: 1600, 11.5: 1400, 10.5: 1400,
}

// eq. 3 constants.
const (
	// DCUThreshold classifies a sample memory-bound when DCU stalls
	// per instruction reach it.
	DCUThreshold = 1.21
	// Exponent is the primary frequency-dependence local minimum.
	Exponent = 0.81
	// ExponentAlt is the second local minimum the authors switch to
	// after observing floor violations (§IV-B.2).
	ExponentAlt = 0.59
)

// Headline evaluation claims (§IV, §V).
const (
	// PMFractionOfPossibleSpeedup: PM reaches this fraction of the
	// maximum possible speedup for the full suite at the 17.5 W limit.
	PMFractionOfPossibleSpeedup = 0.86
	// GalgelOverFracAt135: galgel's worst case spends about this
	// fraction of run-time over the 13.5 W limit.
	GalgelOverFracAt135 = 0.10
	// PSLossAt60Floor: suite performance loss at the 60% floor.
	PSLossAt60Floor = 0.308
	// PSSavingsAt80Floor: suite energy savings at the 80% floor.
	PSSavingsAt80Floor = 0.192
	// ArtLossAt80 and McfLossAt80: the two floor violations with
	// exponent 0.81.
	ArtLossAt80 = 0.422
	McfLossAt80 = 0.277
	// ArtLossAt60 is art's reduction at the 60% floor (also violating).
	ArtLossAt60 = 0.543
	// McfLossAt80Alt and ArtLossAt80Alt are the repaired values with
	// exponent 0.59.
	McfLossAt80Alt = 0.179
	ArtLossAt80Alt = 0.263
	// ArtLossAt60Alt is art's repaired 60%-floor reduction.
	ArtLossAt60Alt = 0.483
)

// Platform facts.
const (
	// SamplePeriodMs is the monitoring interval.
	SamplePeriodMs = 10
	// GuardbandW is PM's estimation guardband.
	GuardbandW = 0.5
	// EnforcementWindowSamples is PM's moving-average window (ten
	// 10 ms samples).
	EnforcementWindowSamples = 10
	// PhysicalCounters is the Pentium M's programmable counter count.
	PhysicalCounters = 2
	// CounterEvents is the number of selectable PMU events.
	CounterEvents = 92
)
