package paperref

import "testing"

func TestTableIIWellFormed(t *testing.T) {
	if len(TableII) != 8 {
		t.Fatalf("Table II has %d rows", len(TableII))
	}
	for i, r := range TableII {
		if i == 0 {
			continue
		}
		prev := TableII[i-1]
		if r.FreqMHz <= prev.FreqMHz {
			t.Errorf("frequencies not increasing at row %d", i)
		}
		if r.VoltageV <= prev.VoltageV {
			t.Errorf("voltages not increasing at row %d", i)
		}
		if r.Alpha <= prev.Alpha || r.Beta <= prev.Beta {
			t.Errorf("coefficients not increasing at row %d", i)
		}
	}
	if r, ok := TableIIByFreq(2000); !ok || r.Alpha != 2.93 || r.Beta != 12.11 {
		t.Errorf("TableIIByFreq(2000) = %+v, %v", r, ok)
	}
	if _, ok := TableIIByFreq(700); ok {
		t.Error("TableIIByFreq(700) found a row")
	}
}

func TestTablesCoverSameFrequencies(t *testing.T) {
	for _, r := range TableII {
		if _, ok := TableIII[r.FreqMHz]; !ok {
			t.Errorf("Table III missing %d MHz", r.FreqMHz)
		}
	}
	if len(TableIII) != len(TableII) {
		t.Errorf("Table III has %d rows", len(TableIII))
	}
}

func TestTableIVConsistentWithTableIII(t *testing.T) {
	// The published static frequencies must be exactly what the
	// worst-case rule derives from the published Table III powers:
	// the highest frequency whose worst-case power fits the limit.
	for limit, wantMHz := range TableIV {
		best := 0
		for f, w := range TableIII {
			if w <= limit && f > best {
				best = f
			}
		}
		if best != wantMHz {
			t.Errorf("limit %.1f W: rule derives %d MHz, table says %d", limit, best, wantMHz)
		}
	}
}

func TestHeadlineClaimsPlausible(t *testing.T) {
	// Sanity relations between the published numbers.
	if !(ArtLossAt80 > 1-0.80 && McfLossAt80 > 1-0.80) {
		t.Error("published violations do not exceed the 80% floor allowance")
	}
	if McfLossAt80Alt >= 1-0.80 {
		t.Error("mcf's repaired loss still violates the floor")
	}
	if !(ArtLossAt80Alt < ArtLossAt80 && ArtLossAt60Alt < ArtLossAt60) {
		t.Error("repaired art losses not improvements")
	}
	if PSLossAt60Floor > 1-0.60 {
		t.Error("published loss at the 60 percent floor violates its own allowance")
	}
	if PMFractionOfPossibleSpeedup <= 0 || PMFractionOfPossibleSpeedup > 1 {
		t.Error("headline fraction out of range")
	}
}
