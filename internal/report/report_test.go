package report

import (
	"strings"
	"testing"

	"aapm/internal/experiment"
)

func TestGenerate(t *testing.T) {
	ctx, err := experiment.NewContext(experiment.Options{Seed: 7, ScaleDown: 6})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Generate(ctx, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# Application-Aware Power Management",
		"Figure 1", "Figure 2", "Table II", "Table IV",
		"Figure 7", "Figure 9", "Figure 11",
		"galgel", "possible speedup",
		"| 17.5 | 1800 | 1800 |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	if len(out) < 2000 {
		t.Errorf("report suspiciously short: %d bytes", len(out))
	}
}
