// Package report compiles every experiment into a single markdown
// document — a regenerable EXPERIMENTS-style report with the measured
// numbers of the current build, so reproduction claims never go stale
// against the code.
package report

import (
	"fmt"
	"io"

	"aapm/internal/experiment"
)

// Generate runs the full evaluation on ctx and writes the report.
func Generate(ctx *experiment.Context, w io.Writer) error {
	p := &printer{w: w}
	p.h1("Application-Aware Power Management — regenerated evaluation")
	p.line("All numbers produced by this build on the simulated Pentium M platform.")
	p.line("")

	fig1, err := ctx.Fig1PowerVariation()
	if err != nil {
		return err
	}
	p.h2("Power variation at 2 GHz (Figure 1)")
	p.linef("Suite range %.2f–%.2f W — %.1f%% of the %.2f W peak sample (%s).",
		fig1.SuiteMinW, fig1.SuiteMaxW, fig1.RangeFrac*100, fig1.PeakW, fig1.MaxSampleBench)
	p.table([]string{"benchmark", "mean W", "max W", "DCU/I"}, func(add func(...string)) {
		for _, r := range fig1.Rows {
			add(r.Name, f2(r.MeanW), f2(r.MaxW), f2(r.DCUI))
		}
	})

	fig2, err := ctx.Fig2PstatePerformance()
	if err != nil {
		return err
	}
	p.h2("P-state performance impact (Figure 2)")
	p.table([]string{"benchmark", "1600", "1800", "2000"}, func(add func(...string)) {
		for _, r := range fig2.Rows {
			add(r.Name, f3(r.RelPerf[0]), f3(r.RelPerf[1]), f3(r.RelPerf[2]))
		}
	})

	t2, err := ctx.TableIIPowerModel()
	if err != nil {
		return err
	}
	p.h2("Trained power model (Table II)")
	p.linef("Training MAE %.3f W; eq. 3 fit threshold %.2f, exponent %.2f (paper 1.21/0.81).",
		t2.MeanAbsErrW, t2.PerfFit.Best.Threshold, t2.PerfFit.Best.Exponent)
	p.table([]string{"MHz", "α fit", "α paper", "β fit", "β paper"}, func(add func(...string)) {
		for _, r := range t2.Rows {
			add(fmt.Sprint(r.FreqMHz), f3(r.Alpha), f2(r.PaperAlpha), f3(r.Beta), f2(r.PaperBeta))
		}
	})

	t4, err := ctx.TableIVStaticFrequencies()
	if err != nil {
		return err
	}
	p.h2("Power limit → static frequency (Table IV)")
	p.table([]string{"limit W", "MHz", "paper"}, func(add func(...string)) {
		for _, r := range t4.Rows {
			add(f1(r.LimitW), fmt.Sprint(r.FreqMHz), fmt.Sprint(r.PaperMHz))
		}
	})

	fig7, err := ctx.Fig7PMSpeedup()
	if err != nil {
		return err
	}
	p.h2("PM speedup at 17.5 W (Figure 7)")
	p.linef("Suite: PM %+.2f%% vs static, unconstrained %+.2f%% — **%.0f%% of the possible speedup** (paper: 86%%).",
		fig7.SuiteSpeedupPM*100, fig7.SuiteSpeedupMax*100, fig7.FractionOfPossible*100)

	adh, err := ctx.PMLimitAdherence()
	if err != nil {
		return err
	}
	p.h2("PM limit adherence")
	p.linef("Worst offender: %s at %.1f W, %.1f%% of run-time over (paper: galgel, ~10%% at 13.5 W).",
		adh.Worst.Name, adh.Worst.LimitW, adh.Worst.OverFrac*100)

	fig9, err := ctx.Fig9PSSuite()
	if err != nil {
		return err
	}
	p.h2("PS suite results (Figure 9)")
	p.table([]string{"floor", "perf loss", "energy save", "compliant"}, func(add func(...string)) {
		for _, r := range fig9.Rows {
			ok := "yes"
			if r.Violated {
				ok = "NO"
			}
			add(pct(r.Floor), pct(r.PerfReduction), pct(r.EnergySavings), ok)
		}
	})

	fig11, err := ctx.Fig11PerfReduction()
	if err != nil {
		return err
	}
	p.h2("PS floor violations and exponent repair (Figure 11)")
	if len(fig11.Violations) == 0 {
		p.line("No violations.")
	} else {
		p.table([]string{"workload", "floor", "loss e=0.81", "loss e=0.59", "allowed"}, func(add func(...string)) {
			for _, v := range fig11.Violations {
				add(v.Name, pct(v.Floor), pct(v.Reduction081), pct(v.Reduction059), pct(v.Allowed))
			}
		})
	}

	eng, err := ctx.EngineMetrics()
	if err != nil {
		return err
	}
	p.h2("Staged engine metrics")
	p.linef("Per-run counters aggregated by a Hook-bus subscriber on %s (PM limit %.1f W).",
		eng.Workload, eng.LimitW)
	p.table([]string{"policy", "ticks", "transitions", "stall ms", "energy J", "avg W", "over-limit"}, func(add func(...string)) {
		for _, r := range eng.Rows {
			add(r.Policy, fmt.Sprint(r.Ticks), fmt.Sprint(r.Transitions), f1(r.StallMs), f1(r.EnergyJ), f2(r.AvgPowerW), fmt.Sprint(r.Violations))
		}
	})

	base, err := ctx.BaselineComparison()
	if err != nil {
		return err
	}
	p.h2("Counter-driven governor baselines")
	p.table([]string{"policy", "perf loss", "energy save"}, func(add func(...string)) {
		for _, r := range base.Rows {
			add(r.Policy, pct(r.Loss), pct(r.Save))
		}
	})

	sc, err := ctx.PaperComparison()
	if err != nil {
		return err
	}
	p.h2("Reproduction scorecard")
	p.table([]string{"claim", "paper", "measured", "verdict"}, func(add func(...string)) {
		for _, r := range sc.Rows {
			verdict := "PASS"
			if !r.Pass {
				verdict = "FAIL"
			}
			if r.Qualitative {
				add(r.Claim, "—", r.Note, verdict)
				continue
			}
			add(r.Claim, f3(r.Paper), f3(r.Measured), verdict)
		}
	})
	if sc.Passed() {
		p.line("")
		p.line("**All claims reproduced.**")
	}

	return p.err
}

// printer accumulates output, capturing the first write error.
type printer struct {
	w   io.Writer
	err error
}

func (p *printer) write(s string) {
	if p.err != nil {
		return
	}
	_, p.err = io.WriteString(p.w, s)
}

func (p *printer) h1(s string)              { p.write("# " + s + "\n\n") }
func (p *printer) h2(s string)              { p.write("\n## " + s + "\n\n") }
func (p *printer) line(s string)            { p.write(s + "\n") }
func (p *printer) linef(f string, a ...any) { p.line(fmt.Sprintf(f, a...)) }

// table writes a markdown table; fill calls add once per row.
func (p *printer) table(header []string, fill func(add func(...string))) {
	p.write("|")
	for _, h := range header {
		p.write(" " + h + " |")
	}
	p.write("\n|")
	for range header {
		p.write("---|")
	}
	p.write("\n")
	fill(func(cells ...string) {
		p.write("|")
		for _, c := range cells {
			p.write(" " + c + " |")
		}
		p.write("\n")
	})
}

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
