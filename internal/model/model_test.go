package model

import (
	"math"
	"testing"
	"testing/quick"

	"aapm/internal/pstate"
	"aapm/internal/stats"
)

func TestPaperPowerModelMatchesTableII(t *testing.T) {
	m := PaperPowerModel()
	want := map[int][2]float64{
		600: {0.34, 2.58}, 800: {0.54, 3.56}, 1000: {0.77, 4.49},
		1200: {1.06, 5.60}, 1400: {1.42, 6.95}, 1600: {1.82, 8.44},
		1800: {2.36, 10.18}, 2000: {2.93, 12.11},
	}
	for i := 0; i < m.Table().Len(); i++ {
		f := m.Table().At(i).FreqMHz
		c := m.Coefficients(i)
		if c.Alpha != want[f][0] || c.Beta != want[f][1] {
			t.Errorf("%d MHz: (%g, %g), want %v", f, c.Alpha, c.Beta, want[f])
		}
	}
}

func TestEstimate(t *testing.T) {
	m := PaperPowerModel()
	i2000 := m.Table().IndexOf(2000)
	// FMA-256KB's DPC ~1.93 at the 2 GHz line should land near the
	// paper's 17.78 W measured value.
	got := m.Estimate(i2000, 1.935)
	if math.Abs(got-17.78) > 0.15 {
		t.Errorf("Estimate(2000, 1.935) = %g, want ~17.78", got)
	}
}

func TestNewPowerModelLengthCheck(t *testing.T) {
	tab := pstate.PentiumM755()
	if _, err := NewPowerModel(tab, make([]stats.Linear, 3)); err == nil {
		t.Error("mismatched fit count accepted")
	}
}

func TestProjectDPC(t *testing.T) {
	// Lowering frequency scales DPC up by f/f' (conservative for
	// memory-bound work).
	if got := ProjectDPC(1.0, 2000, 1000); got != 2.0 {
		t.Errorf("down-projection = %g, want 2.0", got)
	}
	// Raising frequency keeps DPC.
	if got := ProjectDPC(1.0, 1000, 2000); got != 1.0 {
		t.Errorf("up-projection = %g, want 1.0", got)
	}
	if got := ProjectDPC(1.3, 1800, 1800); got != 1.3 {
		t.Errorf("same-frequency projection = %g, want 1.3", got)
	}
}

func TestEstimateAtUsesProjection(t *testing.T) {
	m := PaperPowerModel()
	i600 := m.Table().IndexOf(600)
	// Observed DPC 0.6 at 1200 MHz -> projected 1.2 at 600 MHz.
	got := m.EstimateAt(i600, 0.6, 1200)
	want := 0.34*1.2 + 2.58
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EstimateAt = %g, want %g", got, want)
	}
}

func TestPerfModelClassification(t *testing.T) {
	m := PaperPerfModel()
	if m.Threshold != 1.21 || m.Exponent != 0.81 {
		t.Fatalf("paper model = %+v", m)
	}
	if m.MemoryBound(1.20) {
		t.Error("1.20 classified memory-bound")
	}
	if !m.MemoryBound(1.21) {
		t.Error("1.21 classified core-bound")
	}
	if alt := PaperPerfModelAlt(); alt.Exponent != 0.59 {
		t.Errorf("alt exponent = %g", alt.Exponent)
	}
}

func TestProjectIPC(t *testing.T) {
	m := PaperPerfModel()
	// Core-bound: IPC unchanged.
	if got := m.ProjectIPC(1.5, 0.2, 2000, 600); got != 1.5 {
		t.Errorf("core projection = %g, want unchanged", got)
	}
	// Memory-bound lowering frequency: IPC rises by (f/f')^0.81.
	got := m.ProjectIPC(0.2, 3.0, 2000, 1000)
	want := 0.2 * math.Pow(2.0, 0.81)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("memory projection = %g, want %g", got, want)
	}
	// Zero IPC passes through.
	if got := m.ProjectIPC(0, 3.0, 2000, 1000); got != 0 {
		t.Errorf("zero-IPC projection = %g", got)
	}
}

func TestProjectPerfDirections(t *testing.T) {
	m := PaperPerfModel()
	// Memory-bound: relative performance at half frequency is
	// (1/2)^(1-0.81) ~ 0.877 of peak.
	p1000 := m.ProjectPerf(0.2, 3.0, 2000, 1000)
	p2000 := m.ProjectPerf(0.2, 3.0, 2000, 2000)
	rel := p1000 / p2000
	want := math.Pow(0.5, 1-0.81)
	if math.Abs(rel-want) > 1e-9 {
		t.Errorf("memory relative perf = %g, want %g", rel, want)
	}
	// Core-bound: relative performance is f'/f.
	c1000 := m.ProjectPerf(1.5, 0.1, 2000, 1000)
	c2000 := m.ProjectPerf(1.5, 0.1, 2000, 2000)
	if math.Abs(c1000/c2000-0.5) > 1e-12 {
		t.Errorf("core relative perf = %g, want 0.5", c1000/c2000)
	}
}

func TestPerfModelValidate(t *testing.T) {
	if err := PaperPerfModel().Validate(); err != nil {
		t.Errorf("paper model invalid: %v", err)
	}
	bad := []PerfModel{
		{Threshold: 0, Exponent: 0.8},
		{Threshold: 1.2, Exponent: 0},
		{Threshold: 1.2, Exponent: 2},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("Validate accepted %+v", m)
		}
	}
}

// Property: memory-bound projection is monotone — lower target
// frequency never lowers projected IPC.
func TestProjectIPCMonotone(t *testing.T) {
	m := PaperPerfModel()
	f := func(ipc8 uint8, f1, f2 uint16) bool {
		ipc := 0.1 + float64(ipc8)/256
		a := int(f1)%1900 + 100
		b := int(f2)%1900 + 100
		if a > b {
			a, b = b, a
		}
		// From 2000, project to the lower and higher of a,b.
		lo := m.ProjectIPC(ipc, 2.0, 2000, a)
		hi := m.ProjectIPC(ipc, 2.0, 2000, b)
		return lo >= hi-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitPowerModelRecoversSyntheticTruth(t *testing.T) {
	tab := pstate.PentiumM755()
	truth := PaperPowerModel()
	var pts []TrainingPoint
	for i := 0; i < tab.Len(); i++ {
		for _, dpc := range []float64{0.1, 0.5, 1.0, 1.5, 2.0} {
			pts = append(pts, TrainingPoint{
				Config:      "synthetic",
				PStateIndex: i,
				FreqMHz:     tab.At(i).FreqMHz,
				DPC:         dpc,
				PowerW:      truth.Estimate(i, dpc),
			})
		}
	}
	fit, err := FitPowerModel(tab, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tab.Len(); i++ {
		got := fit.Coefficients(i)
		want := truth.Coefficients(i)
		if math.Abs(got.Alpha-want.Alpha) > 1e-6 || math.Abs(got.Beta-want.Beta) > 1e-6 {
			t.Errorf("p-state %d: fit %v, want %v", i, got, want)
		}
	}
}

func TestFitPowerModelErrors(t *testing.T) {
	tab := pstate.PentiumM755()
	if _, err := FitPowerModel(tab, nil); err == nil {
		t.Error("empty training data accepted")
	}
	pts := []TrainingPoint{{PStateIndex: 0, DPC: 1, PowerW: 3}}
	if _, err := FitPowerModel(tab, pts); err == nil {
		t.Error("single-state data accepted for 8-state table")
	}
}

func TestFitPerfModelRecoversKnownExponent(t *testing.T) {
	tab := pstate.PentiumM755()
	const (
		trueExp = 0.70
		trueTh  = 1.0
	)
	gen := PerfModel{Threshold: trueTh, Exponent: trueExp}
	var pts []TrainingPoint
	// Two synthetic configs: one core-bound (IPC constant), one
	// memory-bound following the exact power law.
	for i := 0; i < tab.Len(); i++ {
		f := tab.At(i).FreqMHz
		pts = append(pts, TrainingPoint{
			Config: "core", PStateIndex: i, FreqMHz: f,
			IPC: 1.4, DCUPerInst: 0.2,
		})
		pts = append(pts, TrainingPoint{
			Config: "mem", PStateIndex: i, FreqMHz: f,
			IPC:        gen.ProjectIPC(0.3, 3.0, 2000, f),
			DCUPerInst: 3.0,
		})
	}
	fit, err := FitPerfModel(pts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Best.Exponent-trueExp) > 0.015 {
		t.Errorf("fitted exponent = %g, want ~%g", fit.Best.Exponent, trueExp)
	}
	if fit.Best.Threshold <= 0.2 || fit.Best.Threshold > 3.0 {
		t.Errorf("fitted threshold = %g out of range", fit.Best.Threshold)
	}
	if fit.MeanAbsRelErr > 0.01 {
		t.Errorf("training error = %g, want ~0", fit.MeanAbsRelErr)
	}
}

func TestFitPerfModelEmpty(t *testing.T) {
	if _, err := FitPerfModel(nil); err == nil {
		t.Error("empty training data accepted")
	}
}
