package model

import (
	"math"
	"testing"
)

// Fuzzers surfaced that NaN/Inf counter rates flow into eq. 3 and make
// every downstream comparison false; the projection must return 0 for
// unphysical inputs instead.
func TestProjectIPCRejectsUnphysicalInputs(t *testing.T) {
	m := PaperPerfModel()
	cases := []struct {
		name     string
		ipc, dcu float64
		from, to int
	}{
		{"nan ipc", math.NaN(), 0.5, 2000, 600},
		{"inf ipc", math.Inf(1), 0.5, 2000, 600},
		{"neg ipc", -1, 0.5, 2000, 600},
		{"nan dcu", 1, math.NaN(), 2000, 600},
		{"inf dcu", 1, math.Inf(-1), 2000, 600},
		{"neg dcu", 1, -0.1, 2000, 600},
		{"zero from", 1, 2, 0, 600},
		{"neg to", 1, 2, 2000, -600},
	}
	for _, c := range cases {
		if got := m.ProjectIPC(c.ipc, c.dcu, c.from, c.to); got != 0 {
			t.Errorf("%s: ProjectIPC = %g, want 0", c.name, got)
		}
		if got := m.ProjectPerf(c.ipc, c.dcu, c.from, c.to); got != 0 {
			t.Errorf("%s: ProjectPerf = %g, want 0", c.name, got)
		}
	}
}

func TestProjectIPCStillProjectsGoodInputs(t *testing.T) {
	m := PaperPerfModel()
	got := m.ProjectIPC(1.0, 2.0, 2000, 1000)
	want := math.Pow(2.0, m.Exponent)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("memory-bound projection = %g, want %g", got, want)
	}
	if got := m.ProjectIPC(1.0, 0.0, 2000, 1000); got != 1.0 {
		t.Fatalf("core-bound projection = %g, want 1", got)
	}
}
