// Package model implements the paper's online estimation models — the
// core of application-aware power management:
//
//   - a per-p-state linear power model driven by the decoded
//     instructions per cycle (DPC) counter (paper eq. 2, Table II),
//     fitted to minimize absolute error on the MS-Loops training set;
//   - the conservative DPC projection across p-states (eq. 4);
//   - the two-class performance model (eq. 3) that classifies a
//     sample core- or memory-bound by its DCU/IPC ratio and scales
//     IPC by (f/f')^e for memory-bound samples.
//
// Package trainer regenerates all parameters from simulated
// microbenchmark runs; the constructors here provide the paper's
// published values as defaults.
package model

import (
	"fmt"
	"math"

	"aapm/internal/paperref"
	"aapm/internal/pstate"
	"aapm/internal/stats"
)

// PowerModel estimates processor power from DPC, one line per p-state
// (paper eq. 2: Power = alpha*DPC + beta).
type PowerModel struct {
	table *pstate.Table
	fits  []stats.Linear
}

// NewPowerModel wraps per-p-state fits (index-aligned with the table).
func NewPowerModel(t *pstate.Table, fits []stats.Linear) (*PowerModel, error) {
	if len(fits) != t.Len() {
		return nil, fmt.Errorf("model: %d fits for %d p-states", len(fits), t.Len())
	}
	f := make([]stats.Linear, len(fits))
	copy(f, fits)
	return &PowerModel{table: t, fits: f}, nil
}

// PaperPowerModel returns the published Table II coefficients for the
// Pentium M 755 table (from package paperref).
func PaperPowerModel() *PowerModel {
	t := pstate.PentiumM755()
	fits := make([]stats.Linear, t.Len())
	for i := 0; i < t.Len(); i++ {
		r, ok := paperref.TableIIByFreq(t.At(i).FreqMHz)
		if !ok {
			panic(fmt.Sprintf("model: no Table II row for %d MHz", t.At(i).FreqMHz))
		}
		fits[i] = stats.Linear{Alpha: r.Alpha, Beta: r.Beta}
	}
	m, err := NewPowerModel(t, fits)
	if err != nil {
		panic("model: paper power model invalid: " + err.Error())
	}
	return m
}

// Table returns the model's p-state table.
func (m *PowerModel) Table() *pstate.Table { return m.table }

// Coefficients returns the fit for p-state index i.
func (m *PowerModel) Coefficients(i int) stats.Linear { return m.fits[i] }

// Estimate returns the predicted power (watts) at p-state index i for
// decode rate dpc.
func (m *PowerModel) Estimate(i int, dpc float64) float64 {
	return m.fits[i].Eval(dpc)
}

// ProjectDPC applies the paper's eq. 4: the conservative decode-rate
// projection from frequency f to f' (both MHz). Lowering frequency
// scales DPC up by f/f' (exact for fully memory-bound work, an
// overestimate otherwise — safe for power limiting); raising frequency
// keeps DPC (exact for core-bound work, again an overestimate).
func ProjectDPC(dpc float64, fromMHz, toMHz int) float64 {
	if toMHz <= fromMHz && toMHz > 0 {
		return dpc * float64(fromMHz) / float64(toMHz)
	}
	return dpc
}

// EstimateAt projects the decode rate observed at fromMHz to p-state
// index i and evaluates the power model there — the PM control loop's
// inner computation.
func (m *PowerModel) EstimateAt(i int, dpc float64, fromMHz int) float64 {
	return m.Estimate(i, ProjectDPC(dpc, fromMHz, m.table.At(i).FreqMHz))
}

// Performance-model constants from the paper (package paperref holds
// the authoritative values).
const (
	// PaperDCUThreshold is eq. 3's memory-boundedness threshold on
	// DCU miss-outstanding cycles per instruction.
	PaperDCUThreshold = paperref.DCUThreshold
	// PaperExponent is eq. 3's frequency-dependence exponent, the
	// primary local minimum of the training error.
	PaperExponent = paperref.Exponent
	// PaperExponentAlt is the second local minimum (0.59) the authors
	// switch to after observing art/mcf floor violations (§IV-B.2).
	PaperExponentAlt = paperref.ExponentAlt
)

// PerfModel is the two-class IPC projection model of eq. 3.
type PerfModel struct {
	// Threshold on DCU/IPC separating core- from memory-bound.
	Threshold float64
	// Exponent of the (f/f') scaling for memory-bound samples.
	Exponent float64
}

// PaperPerfModel returns eq. 3 with the published 1.21 / 0.81
// parameters.
func PaperPerfModel() PerfModel {
	return PerfModel{Threshold: PaperDCUThreshold, Exponent: PaperExponent}
}

// PaperPerfModelAlt returns the repaired model with exponent 0.59.
func PaperPerfModelAlt() PerfModel {
	return PerfModel{Threshold: PaperDCUThreshold, Exponent: PaperExponentAlt}
}

// MemoryBound classifies a sample by its DCU/IPC ratio.
func (m PerfModel) MemoryBound(dcuPerInst float64) bool {
	return dcuPerInst >= m.Threshold
}

// ProjectIPC predicts IPC at frequency toMHz given the observed ipc
// and dcuPerInst at fromMHz (eq. 3). Unphysical inputs — NaN, Inf or
// negative rates, non-positive frequencies — project to 0 rather than
// poisoning downstream comparisons (every NaN comparison is false, so
// a NaN projection would silently disable a governor's floor check).
func (m PerfModel) ProjectIPC(ipc, dcuPerInst float64, fromMHz, toMHz int) float64 {
	if math.IsNaN(ipc) || math.IsInf(ipc, 0) || ipc < 0 ||
		math.IsNaN(dcuPerInst) || math.IsInf(dcuPerInst, 0) || dcuPerInst < 0 ||
		fromMHz <= 0 || toMHz <= 0 {
		return 0
	}
	if fromMHz == toMHz || ipc == 0 {
		return ipc
	}
	if !m.MemoryBound(dcuPerInst) {
		return ipc
	}
	return ipc * math.Pow(float64(fromMHz)/float64(toMHz), m.Exponent)
}

// ProjectPerf predicts relative performance (instruction throughput,
// IPC*f) at toMHz versus fromMHz. For core-bound samples this is
// f'/f; for memory-bound samples (f'/f)^(1-e).
func (m PerfModel) ProjectPerf(ipc, dcuPerInst float64, fromMHz, toMHz int) float64 {
	ipcTo := m.ProjectIPC(ipc, dcuPerInst, fromMHz, toMHz)
	return ipcTo * float64(toMHz)
}

// Validate reports implausible parameters.
func (m PerfModel) Validate() error {
	switch {
	case m.Threshold <= 0:
		return fmt.Errorf("model: non-positive DCU threshold %g", m.Threshold)
	case m.Exponent <= 0 || m.Exponent > 1.5:
		return fmt.Errorf("model: exponent %g outside (0,1.5]", m.Exponent)
	}
	return nil
}
