package model

import (
	"fmt"
	"math"
	"sort"

	"aapm/internal/machine"
	"aapm/internal/phase"
	"aapm/internal/pstate"
	"aapm/internal/stats"
	"aapm/internal/trace"
)

// TrainingPoint is one (configuration, p-state) observation from the
// characterization runs: the counter rates the models consume plus the
// measured power they are fitted against.
type TrainingPoint struct {
	Config      string
	PStateIndex int
	FreqMHz     int
	DPC         float64
	PowerW      float64
	IPC         float64
	DCUPerInst  float64
}

// CollectTrainingData runs every training phase at every p-state of
// the platform described by cfg (its StartFreqMHz is overridden) and
// returns one observation per (phase, p-state) — the paper's 12
// data points per p-state setting when given the MS-Loops set.
// instructions bounds each characterization run's length.
func CollectTrainingData(cfg machine.Config, set []phase.Params, instructions float64) ([]TrainingPoint, error) {
	if len(set) == 0 {
		return nil, fmt.Errorf("model: empty training set")
	}
	if instructions <= 0 {
		return nil, fmt.Errorf("model: non-positive training run length")
	}
	var out []TrainingPoint
	// Build one probe machine to learn the table size.
	probe, err := machine.New(cfg)
	if err != nil {
		return nil, err
	}
	nStates := probe.Table().Len()
	for idx := 0; idx < nStates; idx++ {
		mcfg := cfg
		mcfg.StartFreqMHz = probe.Table().At(idx).FreqMHz
		m, err := machine.New(mcfg)
		if err != nil {
			return nil, err
		}
		for _, p := range set {
			p := p
			p.Instructions = instructions
			w := phase.Workload{Name: p.Name, Phases: []phase.Params{p}}
			run, err := m.Run(w, nil)
			if err != nil {
				return nil, fmt.Errorf("model: training run %s@%s: %w", p.Name, m.Table().At(idx), err)
			}
			if len(run.Rows) == 0 {
				return nil, fmt.Errorf("model: training run %s@%s produced no samples", p.Name, m.Table().At(idx))
			}
			out = append(out, TrainingPoint{
				Config:      p.Name,
				PStateIndex: idx,
				FreqMHz:     m.Table().At(idx).FreqMHz,
				DPC:         timeWeighted(run.Rows, func(r trace.Row) float64 { return r.DPC }),
				PowerW:      timeWeighted(run.Rows, func(r trace.Row) float64 { return r.MeasuredPowerW }),
				IPC:         timeWeighted(run.Rows, func(r trace.Row) float64 { return r.IPC }),
				DCUPerInst:  dcuPerInst(run.Rows),
			})
		}
	}
	return out, nil
}

// FitPowerModel fits the per-p-state DPC power lines by least absolute
// error, the paper's objective.
func FitPowerModel(t *pstate.Table, points []TrainingPoint) (*PowerModel, error) {
	byState := map[int][][2]float64{}
	maxIdx := -1
	for _, p := range points {
		byState[p.PStateIndex] = append(byState[p.PStateIndex], [2]float64{p.DPC, p.PowerW})
		if p.PStateIndex > maxIdx {
			maxIdx = p.PStateIndex
		}
	}
	if t.Len() != maxIdx+1 {
		return nil, fmt.Errorf("model: training data covers %d p-states, table has %d", maxIdx+1, t.Len())
	}
	fits := make([]stats.Linear, t.Len())
	for idx := 0; idx < t.Len(); idx++ {
		pts := byState[idx]
		if len(pts) < 3 {
			return nil, fmt.Errorf("model: p-state %d has only %d training points", idx, len(pts))
		}
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, xy := range pts {
			xs[i], ys[i] = xy[0], xy[1]
		}
		fit, err := stats.FitLeastAbs(xs, ys)
		if err != nil {
			return nil, fmt.Errorf("model: p-state %d: %w", idx, err)
		}
		fits[idx] = fit
	}
	return NewPowerModel(t, fits)
}

// PerfFit is the result of fitting eq. 3's parameters.
type PerfFit struct {
	Best PerfModel
	// MeanAbsRelErr is the best model's training error.
	MeanAbsRelErr float64
	// ExponentMinima lists exponents that are local minima of the
	// training error at the best threshold, mirroring the paper's
	// observation of two usable values (0.81 and 0.59).
	ExponentMinima []float64
}

// FitPerfModel grid-searches the DCU/IPC threshold and frequency
// exponent minimizing mean absolute relative IPC-prediction error over
// all ordered p-state pairs of every training configuration.
func FitPerfModel(points []TrainingPoint) (PerfFit, error) {
	byConfig := map[string][]TrainingPoint{}
	for _, p := range points {
		byConfig[p.Config] = append(byConfig[p.Config], p)
	}
	if len(byConfig) == 0 {
		return PerfFit{}, fmt.Errorf("model: no training points")
	}
	names := make([]string, 0, len(byConfig))
	for n := range byConfig {
		sort.Slice(byConfig[n], func(i, j int) bool {
			return byConfig[n][i].FreqMHz < byConfig[n][j].FreqMHz
		})
		names = append(names, n)
	}
	sort.Strings(names)

	evalErr := func(m PerfModel) float64 {
		var sum float64
		var n int
		for _, name := range names {
			pts := byConfig[name]
			for _, from := range pts {
				for _, to := range pts {
					if from.FreqMHz == to.FreqMHz || to.IPC == 0 {
						continue
					}
					pred := m.ProjectIPC(from.IPC, from.DCUPerInst, from.FreqMHz, to.FreqMHz)
					sum += math.Abs(pred-to.IPC) / to.IPC
					n++
				}
			}
		}
		if n == 0 {
			return math.Inf(1)
		}
		return sum / float64(n)
	}

	best := PerfFit{MeanAbsRelErr: math.Inf(1)}
	for th := 0.10; th <= 3.0+1e-9; th += 0.05 {
		for e := 0.30; e <= 1.20+1e-9; e += 0.01 {
			m := PerfModel{Threshold: th, Exponent: e}
			err := evalErr(m)
			if err < best.MeanAbsRelErr {
				best.Best = m
				best.MeanAbsRelErr = err
			}
		}
	}
	// The training set is sparse between the core- and memory-bound
	// extremes, so a whole plateau of thresholds ties for the optimum
	// (the paper notes the same sparsity). Report the middle of the
	// plateau containing the optimum rather than its first grid point.
	tied := func(th float64) bool {
		return evalErr(PerfModel{Threshold: th, Exponent: best.Best.Exponent}) <= best.MeanAbsRelErr+1e-12
	}
	lo, hi := best.Best.Threshold, best.Best.Threshold
	for th := lo - 0.05; th >= 0.10-1e-9 && tied(th); th -= 0.05 {
		lo = th
	}
	for th := hi + 0.05; th <= 3.0+1e-9 && tied(th); th += 0.05 {
		hi = th
	}
	best.Best.Threshold = (lo + hi) / 2
	// Scan the exponent axis at the best threshold for local minima.
	type ePt struct{ e, err float64 }
	var curve []ePt
	for e := 0.30; e <= 1.20+1e-9; e += 0.01 {
		curve = append(curve, ePt{e, evalErr(PerfModel{Threshold: best.Best.Threshold, Exponent: e})})
	}
	for i := 1; i < len(curve)-1; i++ {
		if curve[i].err < curve[i-1].err && curve[i].err < curve[i+1].err {
			best.ExponentMinima = append(best.ExponentMinima, curve[i].e)
		}
	}
	return best, nil
}

// helpers over trace rows; kept here so the trace package stays free
// of model-specific aggregation choices.

func timeWeighted(rows []trace.Row, f func(trace.Row) float64) float64 {
	var num, den float64
	for _, r := range rows {
		w := r.Interval.Seconds()
		num += f(r) * w
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// dcuPerInst aggregates DCU cycles over retired instructions across
// the whole run (count-weighted, matching how a counter delta over the
// full run would read).
func dcuPerInst(rows []trace.Row) float64 {
	var dcuCycles, instr float64
	for _, r := range rows {
		cyc := r.Interval.Seconds() * float64(r.FreqMHz) * 1e6
		dcuCycles += r.DCU * cyc
		instr += r.Instructions
	}
	if instr == 0 {
		return 0
	}
	return dcuCycles / instr
}
