package model_test

import (
	"math"
	"testing"

	"aapm/internal/machine"
	"aapm/internal/mloops"
	"aapm/internal/model"
	"aapm/internal/phase"
	"aapm/internal/sensor"
)

func TestCollectTrainingDataValidation(t *testing.T) {
	if _, err := model.CollectTrainingData(machine.Config{}, nil, 1e6); err == nil {
		t.Error("empty training set accepted")
	}
	set := []phase.Params{{
		Name: "p", Instructions: 1e6, CPICore: 0.5, MLP: 1, SpecFactor: 1.1,
	}}
	if _, err := model.CollectTrainingData(machine.Config{}, set, 0); err == nil {
		t.Error("zero run length accepted")
	}
}

func TestCollectTrainingDataShape(t *testing.T) {
	set := []phase.Params{
		{Name: "core", Instructions: 1, CPICore: 0.5, MLP: 1, SpecFactor: 1.1},
		{Name: "mem", Instructions: 1, CPICore: 0.5, L2APKI: 150, MemAPKI: 120, MLP: 2, SpecFactor: 1.3},
	}
	pts, err := model.CollectTrainingData(machine.Config{Seed: 3}, set, 3e8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2*8 {
		t.Fatalf("collected %d points, want 16", len(pts))
	}
	for _, p := range pts {
		if p.DPC <= 0 || p.PowerW <= 0 || p.IPC <= 0 {
			t.Errorf("degenerate point %+v", p)
		}
	}
	// The memory config's DCU/IPC must dominate the core config's at
	// every p-state.
	byState := map[int]map[string]model.TrainingPoint{}
	for _, p := range pts {
		if byState[p.PStateIndex] == nil {
			byState[p.PStateIndex] = map[string]model.TrainingPoint{}
		}
		byState[p.PStateIndex][p.Config] = p
	}
	for idx, m := range byState {
		if m["mem"].DCUPerInst <= m["core"].DCUPerInst {
			t.Errorf("p-state %d: mem DCU/IPC %g <= core %g", idx, m["mem"].DCUPerInst, m["core"].DCUPerInst)
		}
	}
}

// TestTrainingRecoversTableII is the end-to-end training pipeline: the
// MS-Loops 12-configuration set, characterized through the simulated
// cache hierarchy and run at all eight p-states with measurement
// noise, must fit back close to the published Table II coefficients.
func TestTrainingRecoversTableII(t *testing.T) {
	if testing.Short() {
		t.Skip("training pipeline is slow; skipped with -short")
	}
	set, err := mloops.TrainingSet()
	if err != nil {
		t.Fatal(err)
	}
	pts, err := model.CollectTrainingData(machine.Config{
		Chain: sensor.NIDefault(),
		Seed:  7,
	}, set, 3e8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12*8 {
		t.Fatalf("collected %d points, want 96 (the paper's 12 per p-state)", len(pts))
	}
	paper := model.PaperPowerModel()
	fit, err := model.FitPowerModel(paper.Table(), pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < paper.Table().Len(); i++ {
		got := fit.Coefficients(i)
		want := paper.Coefficients(i)
		if math.Abs(got.Alpha-want.Alpha)/want.Alpha > 0.25 {
			t.Errorf("%d MHz: fitted alpha %.3f vs paper %.3f",
				paper.Table().At(i).FreqMHz, got.Alpha, want.Alpha)
		}
		if math.Abs(got.Beta-want.Beta)/want.Beta > 0.15 {
			t.Errorf("%d MHz: fitted beta %.3f vs paper %.3f",
				paper.Table().At(i).FreqMHz, got.Beta, want.Beta)
		}
	}

	// The performance-model fit must classify with a sub-3 threshold
	// and land the exponent in the paper's (0.59..0.81) neighbourhood.
	pf, err := model.FitPerfModel(pts)
	if err != nil {
		t.Fatal(err)
	}
	if pf.Best.Exponent < 0.45 || pf.Best.Exponent > 1.05 {
		t.Errorf("fitted exponent = %.2f, expected near the paper's 0.59..0.81 band", pf.Best.Exponent)
	}
	if pf.MeanAbsRelErr > 0.25 {
		t.Errorf("perf-model training error = %.3f, want < 0.25", pf.MeanAbsRelErr)
	}
}
