package mloops

import (
	"strings"
	"testing"

	"aapm/internal/pstate"
)

func TestFootprints(t *testing.T) {
	fs := Footprints()
	if len(fs) != 3 {
		t.Fatalf("Footprints = %v", fs)
	}
	if FootprintL1.Bytes() != 16<<10 || FootprintL2.Bytes() != 256<<10 || FootprintMem.Bytes() != 8<<20 {
		t.Error("footprint sizes wrong")
	}
	if FootprintL1.String() != "16KB" || FootprintL2.String() != "256KB" || FootprintMem.String() != "8MB" {
		t.Error("footprint names wrong")
	}
	if Footprint(9).Bytes() != 0 {
		t.Error("unknown footprint bytes != 0")
	}
}

func TestLoopsAndDescriptions(t *testing.T) {
	ls := Loops()
	if len(ls) != 4 {
		t.Fatalf("Loops = %v", ls)
	}
	names := map[Loop]string{DAXPY: "DAXPY", FMA: "FMA", MCOPY: "MCOPY", MLOADRand: "MLOAD_RAND"}
	for l, n := range names {
		if l.String() != n {
			t.Errorf("%v name = %q", l, l.String())
		}
		if l.Description() == "" {
			t.Errorf("%v has no description", l)
		}
	}
}

func TestConfigsEnumerateTrainingSet(t *testing.T) {
	cfgs := Configs()
	if len(cfgs) != 12 {
		t.Fatalf("Configs = %d entries, want 12 (4 loops x 3 footprints)", len(cfgs))
	}
	seen := map[string]bool{}
	for _, c := range cfgs {
		if seen[c.String()] {
			t.Errorf("duplicate config %s", c)
		}
		seen[c.String()] = true
	}
	if !seen["FMA-256KB"] {
		t.Error("missing the paper's worst-case FMA-256KB config")
	}
}

func TestGeneratorsProduceBoundedAddresses(t *testing.T) {
	for _, c := range Configs() {
		g := NewGenerator(c.Loop, c.Footprint)
		if !strings.Contains(g.Name(), c.Loop.String()) {
			t.Errorf("generator name %q missing loop name", g.Name())
		}
		for i := 0; i < 10000; i++ {
			op := g.Next()
			if op.Instrs <= 0 || op.CoreCycles <= 0 {
				t.Fatalf("%s: op with non-positive accounting %+v", c, op)
			}
			if len(op.Refs) == 0 {
				t.Fatalf("%s: op without references", c)
			}
		}
	}
}

func TestCharacterizationShapes(t *testing.T) {
	set, err := TrainingSet()
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 12 {
		t.Fatalf("training set has %d entries", len(set))
	}
	byName := map[string]int{}
	for i, p := range set {
		byName[p.Name] = i
	}
	ps2000 := pstate.PentiumM755().Max()

	// L1-resident configurations have no cache traffic.
	for _, n := range []string{"DAXPY-16KB", "FMA-16KB", "MCOPY-16KB", "MLOAD_RAND-16KB"} {
		p := set[byName[n]]
		if p.L2APKI > 1 || p.MemAPKI > 0.5 {
			t.Errorf("%s shows traffic: L2APKI=%g MemAPKI=%g", n, p.L2APKI, p.MemAPKI)
		}
	}
	// L2-resident FMA misses L1 but not DRAM.
	fma256 := set[byName["FMA-256KB"]]
	if fma256.L2APKI < 20 {
		t.Errorf("FMA-256KB L2APKI = %g, want substantial", fma256.L2APKI)
	}
	if fma256.MemBPI > 0.5 {
		t.Errorf("FMA-256KB DRAM traffic = %g B/instr, want ~0", fma256.MemBPI)
	}
	// FMA has the best core IPC of the suite (the paper's highest-power
	// loop) — its 16KB config must out-decode the others.
	var maxDPC float64
	var maxName string
	for _, p := range set {
		if d := p.At(ps2000).DPC; d > maxDPC {
			maxDPC, maxName = d, p.Name
		}
	}
	if !strings.HasPrefix(maxName, "FMA") {
		t.Errorf("highest DPC config = %s (%.2f), want an FMA config", maxName, maxDPC)
	}
	// 8MB streaming loops are DRAM-bandwidth-bound: far lower IPC than
	// their L2-resident configurations.
	for _, l := range []string{"DAXPY", "FMA", "MCOPY"} {
		small := set[byName[l+"-256KB"]].At(ps2000).IPC
		big := set[byName[l+"-8MB"]].At(ps2000).IPC
		if big > 0.5*small {
			t.Errorf("%s-8MB IPC %g not clearly below 256KB IPC %g", l, big, small)
		}
		if set[byName[l+"-8MB"]].MemBPI <= 0 {
			t.Errorf("%s-8MB shows no DRAM traffic", l)
		}
	}
	// MLOAD_RAND-8MB is the latency extreme: highest stall per
	// instruction in the whole training set.
	mlr := set[byName["MLOAD_RAND-8MB"]]
	for _, p := range set {
		if p.Name == mlr.Name {
			continue
		}
		if p.StallPerInst(ps2000) >= mlr.StallPerInst(ps2000) {
			t.Errorf("%s stall/inst %g >= MLOAD_RAND-8MB %g", p.Name, p.StallPerInst(ps2000), mlr.StallPerInst(ps2000))
		}
	}
}

func TestTrainingSetIsCached(t *testing.T) {
	a, err := TrainingSet()
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainingSet()
	if err != nil {
		t.Fatal(err)
	}
	if &a[0] != &b[0] {
		t.Error("TrainingSet re-characterized instead of caching")
	}
}

func TestWorkloadIsRunnable(t *testing.T) {
	w, err := Workload(Config{Loop: FMA, Footprint: FootprintL2})
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "FMA-256KB" || len(w.Phases) != 1 {
		t.Errorf("workload = %+v", w)
	}
	if w.JitterPct != 0 {
		t.Error("microbenchmark has jitter; the paper's loops are stable")
	}
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}
