// Package mloops implements the MS-Loops microbenchmark suite of the
// paper's Table I: DAXPY, FMA, MCOPY and MLOAD_RAND, each run at three
// data footprints chosen to exercise the L1 cache, the L2 cache and
// DRAM. The 4x3 = 12 configurations per p-state form the training set
// for the power and performance models.
//
// Each loop is defined as a memory-reference generator; package kernel
// runs it through the simulated cache hierarchy and the result is
// distilled into analytic phase parameters the platform executes.
package mloops

import (
	"fmt"
	"sync"

	"aapm/internal/kernel"
	"aapm/internal/phase"
)

// Footprint selects the array size of a loop configuration.
type Footprint int

// The three footprints of the study.
const (
	// FootprintL1 fits comfortably in the 32 KB L1 data cache.
	FootprintL1 Footprint = iota
	// FootprintL2 exceeds L1 but fits the 2 MB L2.
	FootprintL2
	// FootprintMem exceeds L2 and streams from DRAM.
	FootprintMem
)

// Bytes returns the total data footprint in bytes.
func (f Footprint) Bytes() int {
	switch f {
	case FootprintL1:
		return 16 << 10
	case FootprintL2:
		return 256 << 10
	case FootprintMem:
		return 8 << 20
	default:
		return 0
	}
}

// String names the footprint ("16KB", "256KB", "8MB").
func (f Footprint) String() string {
	switch f {
	case FootprintL1:
		return "16KB"
	case FootprintL2:
		return "256KB"
	case FootprintMem:
		return "8MB"
	default:
		return fmt.Sprintf("footprint(%d)", int(f))
	}
}

// Footprints lists all three footprints in increasing size.
func Footprints() []Footprint { return []Footprint{FootprintL1, FootprintL2, FootprintMem} }

// Loop identifies one of the four microbenchmarks.
type Loop int

// The four MS-Loops.
const (
	DAXPY Loop = iota
	FMA
	MCOPY
	MLOADRand
)

// Loops lists all four loops.
func Loops() []Loop { return []Loop{DAXPY, FMA, MCOPY, MLOADRand} }

// String names the loop as the paper does.
func (l Loop) String() string {
	switch l {
	case DAXPY:
		return "DAXPY"
	case FMA:
		return "FMA"
	case MCOPY:
		return "MCOPY"
	case MLOADRand:
		return "MLOAD_RAND"
	default:
		return fmt.Sprintf("loop(%d)", int(l))
	}
}

// Description returns the paper's Table I description.
func (l Loop) Description() string {
	switch l {
	case DAXPY:
		return "Linpack daxpy: scales one FP array by a constant adding into a second"
	case FMA:
		return "floating-point multiply-add over adjacent pairs of one array; exercises the hardware prefetcher most"
	case MCOPY:
		return "sequential array copy; tests bandwidth limits of the accessed level"
	case MLOADRand:
		return "random loads over an array; exposes the latency of the accessed level"
	default:
		return ""
	}
}

// microarchitectural accounting per loop iteration. Instruction counts
// and core cycles approximate a 3-wide Pentium M executing the scalar
// loop bodies; MLP and SpecFactor are per-loop structural properties
// (streaming loops overlap misses, the random-load loop cannot).
type loopCosts struct {
	instrs     float64
	coreCycles float64
	mlp        float64
	spec       float64
}

func (l Loop) costs() loopCosts {
	switch l {
	case DAXPY:
		// load x, load y, mul, add, store y, index/branch.
		return loopCosts{instrs: 6, coreCycles: 4.0, mlp: 4, spec: 1.05}
	case FMA:
		// load a[2i], load a[2i+1], mul, add into register, branch.
		// Dense independent FP work: best ILP of the suite.
		return loopCosts{instrs: 5, coreCycles: 2.2, mlp: 6, spec: 1.02}
	case MCOPY:
		// load a, store b, index/branch.
		return loopCosts{instrs: 3, coreCycles: 1.6, mlp: 4, spec: 1.04}
	case MLOADRand:
		// compute index, load, accumulate, branch; serialized misses.
		return loopCosts{instrs: 4, coreCycles: 2.4, mlp: 1, spec: 1.08}
	default:
		return loopCosts{}
	}
}

const elemBytes = 8 // float64 elements

// generator implements kernel.Generator for one loop+footprint.
type generator struct {
	loop  Loop
	bytes uint64
	i     uint64
	n     uint64 // elements per array
	rng   uint64 // LCG state for MLOAD_RAND
	costs loopCosts
}

// NewGenerator returns the reference generator for loop l at
// footprint f. Array bases are spaced so distinct arrays do not alias.
func NewGenerator(l Loop, f Footprint) kernel.Generator {
	total := uint64(f.Bytes())
	g := &generator{loop: l, bytes: total, costs: l.costs()}
	switch l {
	case DAXPY, MCOPY:
		g.n = total / 2 / elemBytes // two arrays share the footprint
	default:
		g.n = total / elemBytes
	}
	g.Reset()
	return g
}

func (g *generator) Name() string { return fmt.Sprintf("%s-%s", g.loop, footprintOf(g.bytes)) }

func footprintOf(bytes uint64) Footprint {
	for _, f := range Footprints() {
		if uint64(f.Bytes()) == bytes {
			return f
		}
	}
	return FootprintL1
}

func (g *generator) Reset() {
	g.i = 0
	g.rng = 0x9E3779B97F4A7C15
}

// array base addresses, far apart to avoid aliasing.
const (
	baseA = 0x10000000
	baseB = 0x50000000
)

func (g *generator) Next() Op {
	defer func() { g.i = (g.i + 1) % g.n }()
	c := g.costs
	op := Op{Instrs: c.instrs, CoreCycles: c.coreCycles}
	switch g.loop {
	case DAXPY:
		op.Refs = []kernel.Ref{
			{Addr: baseA + g.i*elemBytes},
			{Addr: baseB + g.i*elemBytes},
			{Addr: baseB + g.i*elemBytes, Write: true},
		}
	case FMA:
		// adjacent pair a[2i], a[2i+1]; wrap at n elements.
		idx := (2 * g.i) % g.n
		op.Refs = []kernel.Ref{
			{Addr: baseA + idx*elemBytes},
			{Addr: baseA + (idx+1)%g.n*elemBytes},
		}
	case MCOPY:
		op.Refs = []kernel.Ref{
			{Addr: baseA + g.i*elemBytes},
			{Addr: baseB + g.i*elemBytes, Write: true},
		}
	case MLOADRand:
		g.rng = g.rng*6364136223846793005 + 1442695040888963407
		idx := (g.rng >> 17) % g.n
		op.Refs = []kernel.Ref{{Addr: baseA + idx*elemBytes}}
	}
	return op
}

// Op re-exports kernel.Op for generator construction.
type Op = kernel.Op

// Config names one training-set configuration.
type Config struct {
	Loop      Loop
	Footprint Footprint
}

// String returns e.g. "FMA-256KB".
func (c Config) String() string { return fmt.Sprintf("%s-%s", c.Loop, c.Footprint) }

// Configs returns all 12 training configurations (4 loops x 3
// footprints), loops-major as the paper tabulates them.
func Configs() []Config {
	var out []Config
	for _, l := range Loops() {
		for _, f := range Footprints() {
			out = append(out, Config{Loop: l, Footprint: f})
		}
	}
	return out
}

// characterization window sizes: enough iterations to cycle the
// largest footprint several times so steady-state cache behaviour
// dominates.
const (
	warmupOps = 2_000_000
	windowOps = 2_000_000
)

// Characterize runs the configuration through a fresh simulated memory
// hierarchy and returns its analytic phase parameters. Instructions is
// the phase length used when the loop runs as a workload.
func Characterize(c Config, instructions float64) (phase.Params, error) {
	h, err := kernel.NewPentiumMHierarchy()
	if err != nil {
		return phase.Params{}, err
	}
	g := NewGenerator(c.Loop, c.Footprint)
	prof, err := kernel.Characterize(g, h, warmupOps, windowOps)
	if err != nil {
		return phase.Params{}, fmt.Errorf("mloops: characterize %s: %w", c, err)
	}
	costs := c.Loop.costs()
	p := phase.Params{
		Name:         c.String(),
		Instructions: instructions,
		CPICore:      prof.CPICore(),
		L2APKI:       prof.L2APKI(),
		MemAPKI:      prof.MemAPKI(),
		MemBPI:       float64(prof.MemTraffic) * 64 / prof.Instructions,
		MLP:          costs.mlp,
		SpecFactor:   costs.spec,
		StallFrac:    0.05,
	}
	if err := p.Validate(); err != nil {
		return phase.Params{}, fmt.Errorf("mloops: %s characterization implausible: %w", c, err)
	}
	return p, nil
}

// DefaultInstructions is the per-run instruction count for a loop used
// as a workload: long enough for hundreds of 10 ms samples at 2 GHz.
const DefaultInstructions = 20e9

// Workload returns the configuration as a runnable single-phase
// workload. Microbenchmarks are steady by construction (zero jitter),
// matching the paper's observation that their behaviour is stable
// within and across runs.
func Workload(c Config) (phase.Workload, error) {
	p, err := Characterize(c, DefaultInstructions)
	if err != nil {
		return phase.Workload{}, err
	}
	w := phase.Workload{
		Name:   c.String(),
		Phases: []phase.Params{p},
	}
	if err := w.Validate(); err != nil {
		return phase.Workload{}, err
	}
	return w, nil
}

var trainingCache struct {
	once   sync.Once
	params []phase.Params
	err    error
}

// TrainingSet characterizes all 12 configurations. Characterization
// simulates millions of cache accesses, so the result is computed once
// per process and shared; callers must not mutate the returned slice.
func TrainingSet() ([]phase.Params, error) {
	trainingCache.once.Do(func() {
		cfgs := Configs()
		out := make([]phase.Params, 0, len(cfgs))
		for _, c := range cfgs {
			p, err := Characterize(c, DefaultInstructions)
			if err != nil {
				trainingCache.err = err
				return
			}
			out = append(out, p)
		}
		trainingCache.params = out
	})
	return trainingCache.params, trainingCache.err
}
